// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, each running the corresponding
// experiment at the tiny scale (see DESIGN.md §3 for the experiment index
// and cmd/tables / cmd/figures for the full-scale reproductions).
package repro

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func benchScale() experiments.Scale {
	s := experiments.Tiny()
	s.Rounds = 2
	return s
}

func runMethod(b *testing.B, method string, fleetKind string) {
	b.Helper()
	s := benchScale()
	var factory experiments.ClientFactory
	switch fleetKind {
	case "het":
		factory, _, _ = experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	case "hom":
		factory, _, _ = experiments.NewHomogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	case "proto":
		factory, _, _ = experiments.NewProtoFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(method, experiments.Fashion, factory, s, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// runThroughput measures committed rounds per unit of virtual cluster time
// for one scheduler over a homogeneous fleet with a 2×-slow straggler; the
// rounds/vtime metric is what the sync-vs-async comparison reads.
func runThroughput(b *testing.B, kind fl.SchedulerKind) {
	b.Helper()
	s := benchScale()
	s.Rounds = 6
	factory, _, err := experiments.NewHomogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	sched := fl.SchedulerConfig{
		Kind:  kind,
		Decay: 0.5,
		Costs: experiments.StragglerCosts(s.Clients, 1, 2),
	}
	var simTime float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist, err := experiments.RunScheduled(experiments.MethodFedAvg, experiments.Fashion, factory, s, 1.0, sched, comm.Spec{Value: comm.F64})
		if err != nil {
			b.Fatal(err)
		}
		simTime = hist[len(hist)-1].SimTime
	}
	if simTime > 0 {
		b.ReportMetric(float64(s.Rounds)/simTime, "rounds/vtime")
	}
}

// --- Scheduler round throughput under straggler heterogeneity ---

func BenchmarkRoundThroughputSync(b *testing.B)  { runThroughput(b, fl.SchedSync) }
func BenchmarkRoundThroughputAsync(b *testing.B) { runThroughput(b, fl.SchedAsyncBounded) }
func BenchmarkRoundThroughputSemiSync(b *testing.B) {
	runThroughput(b, fl.SchedSemiSync)
}

// BenchmarkRoundThroughput10k runs rounds over a 10 000-client virtual
// fleet at cohort-proportional cost: clients materialize on dispatch and at
// most 64 stay resident. The interesting number is that this completes at
// all in benchmark time — an eager fleet of this size would spend the whole
// budget constructing 10 000 models.
func BenchmarkRoundThroughput10k(b *testing.B) {
	s := benchScale()
	const k = 10_000
	build, _, err := experiments.NewLazyFleetBuilder(experiments.Fashion, data.Dirichlet, "homogeneous", k, s)
	if err != nil {
		b.Fatal(err)
	}
	sched := fl.SchedulerConfig{Kind: fl.SchedSync}
	var simTime float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist, err := experiments.RunLazyScheduled(experiments.MethodFedAvg, experiments.Fashion, build, k, s, 0.0008, 64, 0, sched, comm.Spec{Value: comm.F64})
		if err != nil {
			b.Fatal(err)
		}
		simTime = hist[len(hist)-1].SimTime
	}
	if simTime > 0 {
		b.ReportMetric(float64(s.Rounds)/simTime, "rounds/vtime")
	}
}

// BenchmarkRoundThroughputTree runs the 2-level aggregation tree — a root
// server, two edge aggregators and the client nodes, all over the inproc
// transport — so the hierarchical wire path's round cost sits in the same
// BENCH file as the flat schedulers it amortizes.
func BenchmarkRoundThroughputTree(b *testing.B) {
	s := benchScale()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "homogeneous", s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunTreeNodes(context.Background(), experiments.MethodFedAvg, experiments.Fashion,
			build, s.Clients, 2, s, 1.0, comm.Spec{Value: comm.F64}, transport.NewInproc(transport.Options{}), "bench-tree")
		if err != nil {
			b.Fatal(err)
		}
	}
}

// lazyRunHeap runs a short lazy-fleet experiment at fleet size k with a
// fixed cohort size and returns the live heap while the simulation is still
// reachable — the memory the virtual fleet actually retains.
func lazyRunHeap(t *testing.T, k int, rate float64) uint64 {
	t.Helper()
	s := benchScale()
	build, _, err := experiments.NewLazyFleetBuilder(experiments.Fashion, data.Dirichlet, "homogeneous", k, s)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := experiments.NewAlgorithm(experiments.MethodBaseline, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	sim := fl.NewLazySimulation(k, build, 16, fl.Config{
		Rounds: s.Rounds, SampleRate: rate, BatchSize: s.BatchSize, Seed: s.Seed + 7,
	})
	if _, err := sim.RunScheduled(algo, fl.SchedulerConfig{Kind: fl.SchedSync}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(sim)
	return ms.HeapAlloc
}

// TestLazyFleetMemorySublinear is the memory gate of the virtual-fleet
// contract: growing the fleet 10× at a fixed cohort size must not grow the
// retained heap anywhere near 10×. The bookkeeping that legitimately scales
// with N (per-client churn/idle arrays, ~9 bytes each) is far below the
// ~10× model-state blowup an eager fleet would show.
func TestLazyFleetMemorySublinear(t *testing.T) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	// Rate scales inversely with fleet size: cohort = ⌈k·rate⌉ = 10 both times.
	h10k := lazyRunHeap(t, 10_000, 0.001)
	h100k := lazyRunHeap(t, 100_000, 0.0001)
	grow10k := int64(h10k) - int64(base.HeapAlloc)
	grow100k := int64(h100k) - int64(base.HeapAlloc)
	if grow10k < 0 {
		grow10k = 0
	}
	const slack = 8 << 20
	if grow100k > 3*grow10k+slack {
		t.Fatalf("10× fleet grew retained heap %d → %d bytes — memory is not cohort-proportional", grow10k, grow100k)
	}
}

// --- Quantized codec hot path ---

func BenchmarkQuantizedMarshalI8(b *testing.B) {
	payload := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := comm.MarshalAs(comm.I8, 1, payload)
		if _, _, _, err := comm.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalTopK measures the sparse encode hot path — top-k
// selection plus varint-delta index packing into a reused buffer — and
// reports the frame size so -compare catches both speed and density
// regressions.
func BenchmarkMarshalTopK(b *testing.B) {
	payload := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	spec := comm.NewSpec(comm.F32, 0.05, false)
	buf := make([]byte, 0, comm.MarshalSpecBound(spec, len(payload)))
	b.ResetTimer()
	var frame []byte
	for i := 0; i < b.N; i++ {
		frame = comm.MarshalSpecInto(buf[:0], spec, 1, payload, nil)
	}
	b.ReportMetric(float64(len(frame)), "frame-B/op")
}

// BenchmarkDecodeDelta measures the delta decode hot path: fold a residual
// frame into the connection's basis. Encoder and decoder bases advance in
// lockstep outside the timed region's allocations (scratch is reused), so
// steady state is zero-alloc.
func BenchmarkDecodeDelta(b *testing.B) {
	payload := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	spec := comm.NewSpec(comm.I8, 0, true)
	encRef := &comm.DeltaRef{}
	decRef := &comm.DeltaRef{}
	buf := make([]byte, 0, comm.MarshalSpecBound(spec, len(payload)))
	// Establish the basis on both ends, then pre-encode one residual frame.
	basis := comm.MarshalSpecInto(buf[:0], spec, 1, payload, encRef)
	scratch := make([]float64, len(payload))
	if _, _, err := comm.DecodeSpec(scratch, basis, decRef); err != nil {
		b.Fatal(err)
	}
	for i := range payload {
		payload[i] += 0.01 * rng.NormFloat64()
	}
	frame := append([]byte(nil), comm.MarshalSpecInto(buf[:0], spec, 1, payload, encRef)...)
	savedTag, savedBase := decRef.Tag, append([]float64(nil), decRef.Base...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := comm.DecodeSpec(scratch, frame, decRef); err != nil {
			b.Fatal(err)
		}
		// Rewind the basis so every iteration decodes the same frame.
		decRef.Tag = savedTag
		copy(decRef.Base, savedBase)
	}
	b.ReportMetric(float64(len(frame)), "frame-B/op")
}

// --- Table 2: heterogeneous personalized FL (one bench per method) ---

func BenchmarkTable2_Baseline(b *testing.B) { runMethod(b, experiments.MethodBaseline, "het") }
func BenchmarkTable2_FedProto(b *testing.B) { runMethod(b, experiments.MethodFedProto, "proto") }
func BenchmarkTable2_KTpFL(b *testing.B)    { runMethod(b, experiments.MethodKTpFL, "het") }
func BenchmarkTable2_Proposed(b *testing.B) { runMethod(b, experiments.MethodProposed, "het") }

// --- Table 3: homogeneous FL ---

func BenchmarkTable3_FedAvg(b *testing.B)  { runMethod(b, experiments.MethodFedAvg, "hom") }
func BenchmarkTable3_FedProx(b *testing.B) { runMethod(b, experiments.MethodFedProx, "hom") }
func BenchmarkTable3_KTpFLWeight(b *testing.B) {
	runMethod(b, experiments.MethodKTpFLWeight, "hom")
}
func BenchmarkTable3_ProposedWeight(b *testing.B) {
	runMethod(b, experiments.MethodProposedWeight, "hom")
}

// --- Table 4: ablation ---

func BenchmarkTable4_Ablation(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(s, []experiments.DatasetName{experiments.Fashion}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: communication cost ---

func BenchmarkTable5_CommCost(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(s, experiments.CIFAR10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 2/3: non-iid partitions ---

func BenchmarkFigure2_Partition(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure23(experiments.CIFAR10, data.Dirichlet, s.Clients, s)
		experiments.Figure23(experiments.CIFAR10, data.Skewed, s.Clients, s)
	}
}

func BenchmarkFigure3_PartitionEMNIST(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure23(experiments.EMNIST, data.Dirichlet, s.Clients, s)
		experiments.Figure23(experiments.EMNIST, data.Skewed, s.Clients, s)
	}
}

// --- Figures 4/5: heterogeneous learning curves ---

func BenchmarkFigure4_Curves(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure45(experiments.Fashion, data.Dirichlet, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_CurvesSkewed(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure45(experiments.Fashion, data.Skewed, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 6/7: homogeneous learning curves ---

func BenchmarkFigure6_Curves(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure67(experiments.Fashion, s.Clients, 1.0, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7_CurvesSampled(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure67(experiments.Fashion, s.LargeClients, 0.1, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: t-SNE feature clustering ---

func BenchmarkFigure8_TSNE(b *testing.B) {
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(experiments.Fashion, s, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9: layer conductance ---

func BenchmarkFigure9_Conductance(b *testing.B) {
	s := benchScale()
	s.Rounds = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(experiments.Fashion, s); err != nil {
			// At tiny scale a shared probe may not exist; that is a valid
			// outcome of the experiment, not a harness failure.
			b.Skipf("no shared probe at tiny scale: %v", err)
		}
	}
}

// --- Micro-benchmarks of the numerical substrate ---

func BenchmarkMatMul64(b *testing.B) {
	a := tensor.New(64, 64)
	c := tensor.New(64, 64)
	a.Fill(0.5)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}

// BenchmarkMatMulInto64 measures the steady-state (allocation-free) GEMM
// path the layers use.
func BenchmarkMatMulInto64(b *testing.B) {
	a := tensor.New(64, 64)
	c := tensor.New(64, 64)
	out := tensor.New(64, 64)
	a.Fill(0.5)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, c)
	}
}

func BenchmarkConvForward(b *testing.B) {
	s := benchScale()
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	c := factory()[0]
	x := tensor.New(8, 1, 12, 12)
	x.Fill(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Model.Forward(x, true)
	}
}

// BenchmarkConvTrainStep measures one forward+backward pass of a single
// convolution layer on the batched im2col path.
func BenchmarkConvTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	layer := nn.NewConv2D(8, 16, 3, 1, 1, 1, rng)
	x := tensor.New(8, 8, 12, 12)
	x.FillRandn(rng, 1)
	grad := tensor.New(8, 16, 12, 12)
	grad.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
		layer.Backward(grad)
	}
}

func BenchmarkClientLocalEpoch(b *testing.B) {
	s := benchScale()
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	clients := factory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients[i%len(clients)].TrainEpochCE(s.BatchSize)
	}
}

// --- float32 fast path: the same hot paths at the narrow dtype ---

func BenchmarkMatMul32(b *testing.B) {
	a := tensor.NewOf(tensor.F32, 64, 64)
	c := tensor.NewOf(tensor.F32, 64, 64)
	a.Fill(0.5)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}

func BenchmarkMatMulInto32(b *testing.B) {
	a := tensor.NewOf(tensor.F32, 64, 64)
	c := tensor.NewOf(tensor.F32, 64, 64)
	out := tensor.NewOf(tensor.F32, 64, 64)
	a.Fill(0.5)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, c)
	}
}

func BenchmarkConvForward32(b *testing.B) {
	s := benchScale()
	s.DType = tensor.F32
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	c := factory()[0]
	x := tensor.NewOf(tensor.F32, 8, 1, 12, 12)
	x.Fill(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Model.Forward(x, true)
	}
}

func BenchmarkConvTrainStep32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	layer := nn.NewConv2D(8, 16, 3, 1, 1, 1, rng)
	nn.ConvertParams(layer.Params(), tensor.F32)
	x := tensor.NewOf(tensor.F32, 8, 8, 12, 12)
	x.FillRandn(rng, 1)
	grad := tensor.NewOf(tensor.F32, 8, 16, 12, 12)
	grad.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
		layer.Backward(grad)
	}
}

func BenchmarkClientLocalEpoch32(b *testing.B) {
	s := benchScale()
	s.DType = tensor.F32
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	clients := factory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients[i%len(clients)].TrainEpochCE(s.BatchSize)
	}
}

func BenchmarkClassifierAveraging(b *testing.B) {
	s := benchScale()
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		b.Fatal(err)
	}
	clients := factory()
	dst := clients[0].Model.ClassifierParams()
	srcs := make([][]*nn.Param, len(clients))
	weights := make([]float64, len(clients))
	for i, c := range clients {
		srcs[i] = c.Model.ClassifierParams()
		weights[i] = 1 / float64(len(clients))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nn.AverageInto(dst, srcs, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity guard: the bench harness itself must produce valid accuracies.
func TestBenchHarnessSanity(t *testing.T) {
	s := benchScale()
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := experiments.Run(experiments.MethodProposed, experiments.Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fin := experiments.Final(hist)
	if fin.MeanAcc < 0 || fin.MeanAcc > 1 || fin.UpBytes <= 0 {
		t.Fatalf("bad metrics: %+v", fin)
	}
	var _ []*fl.Client = factory()
	var _ = models.ArchResNet
}
