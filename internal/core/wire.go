package core

import (
	"errors"
	"fmt"

	"repro/internal/fl"
	"repro/internal/nn"
)

// The wire-split half of FedClassAvg: the server side owns the global
// classifier (and, with ShareAllWeights, the global model) plus the
// sharded accumulators, and the client side owns one model's composite
// local update. Numerics reuse the same helpers as the monolithic rounds:
// the initial global state is the |D_k|-weighted average of the clients'
// join payloads — exactly Setup's arithmetic, fed by wire vectors instead
// of local models — and each round's aggregation is the accumulator
// commit with mix 1, the async engine's plain weighted average.
//
// Payload layout: one vector per message. The classifier variant moves
// the flat classifier both ways; ShareAllWeights moves the full flat
// parameter vector, whose tail IS the classifier (extractor precedes
// classifier in the flattening order), so the proximal reference and the
// classifier average are recovered from the tail instead of paying for a
// second vector on the wire.

var _ fl.WireAlgorithm = (*FedClassAvg)(nil)

// WireInit returns the client's initial classifier (or, with
// ShareAllWeights, its full flat weights) for the server's setup average.
func (f *FedClassAvg) WireInit(c *fl.Client) ([][]float64, error) {
	if f.Opts.ShareAllWeights {
		return [][]float64{nn.FlattenParams(c.Model.Params())}, nil
	}
	return [][]float64{nn.FlattenParams(c.Model.ClassifierParams())}, nil
}

// WireSetup validates fleet geometry from the joins and initializes the
// global state as the |D_k|-weighted average of the init payloads.
func (f *FedClassAvg) WireSetup(joins []fl.WireJoin, shards int) error {
	if len(joins) == 0 {
		return errors.New("core: no clients")
	}
	ref := joins[0]
	for _, j := range joins[1:] {
		if j.FeatDim != ref.FeatDim || j.NumClasses != ref.NumClasses {
			return fmt.Errorf("core: client %d classifier shape (%d→%d) differs from client 0 (%d→%d)",
				j.ID, j.FeatDim, j.NumClasses, ref.FeatDim, ref.NumClasses)
		}
		if f.Opts.ShareAllWeights && j.NumParams != ref.NumParams {
			return fmt.Errorf("core: ShareAllWeights requires homogeneous models; client %d differs", j.ID)
		}
	}
	want := ref.NumClassifier
	if f.Opts.ShareAllWeights {
		want = ref.NumParams
	}
	sizes := make([]int, len(joins))
	flats := make([][]float64, len(joins))
	for i, j := range joins {
		if len(j.Init) != 1 || len(j.Init[0]) != want {
			return fmt.Errorf("core: client %d joined with a malformed init payload", j.ID)
		}
		sizes[i] = j.TrainSize
		flats[i] = j.Init[0]
	}
	if f.Opts.ShareAllWeights {
		f.globalAll = wireWeightedAverage(sizes, flats)
		nC := ref.NumClassifier
		if nC <= 0 || nC > len(f.globalAll) {
			return fmt.Errorf("core: client 0 declared %d classifier weights of %d total", nC, len(f.globalAll))
		}
		f.globalClassifier = append([]float64(nil), f.globalAll[len(f.globalAll)-nC:]...)
		f.accAll = fl.NewSharded(len(f.globalAll), shards)
	} else {
		f.globalClassifier = wireWeightedAverage(sizes, flats)
	}
	f.accC = fl.NewSharded(len(f.globalClassifier), shards)
	f.mix = 1
	return nil
}

// WireDispatch broadcasts the committed classifier (or full model).
func (f *FedClassAvg) WireDispatch(client int) ([][]float64, error) {
	if f.Opts.ShareAllWeights {
		return [][]float64{f.globalAll}, nil
	}
	return [][]float64{f.globalClassifier}, nil
}

// WireLocal installs the broadcast, runs the composite-objective local
// epochs against it (the proximal reference is the downloaded classifier —
// for ShareAllWeights, the tail of the downloaded model) and uploads the
// trained weights.
func (f *FedClassAvg) WireLocal(c *fl.Client, batchSize int, dispatch [][]float64) (*fl.Update, error) {
	if len(dispatch) != 1 || dispatch[0] == nil {
		return nil, fmt.Errorf("core: %s expects one broadcast vector, got %d", f.Name(), len(dispatch))
	}
	var ref []float64
	if f.Opts.ShareAllWeights {
		if err := nn.SetFlatParams(c.Model.Params(), dispatch[0]); err != nil {
			return nil, err
		}
		nC := nn.NumParams(c.Model.ClassifierParams())
		ref = dispatch[0][len(dispatch[0])-nC:]
	} else {
		if err := nn.SetFlatParams(c.Model.ClassifierParams(), dispatch[0]); err != nil {
			return nil, err
		}
		ref = dispatch[0]
	}
	f.localUpdate(c, batchSize, ref)
	u := &fl.Update{Client: c.ID, Scale: fl.DataScale(c)}
	if f.Opts.ShareAllWeights {
		u.Vecs = [][]float64{nn.FlattenParams(c.Model.Params())}
	} else {
		u.Vecs = [][]float64{nn.FlattenParams(c.Model.ClassifierParams())}
	}
	return u, nil
}

// WireApply folds one weighted upload into the accumulators. For
// ShareAllWeights the single uploaded vector feeds both: its tail is the
// classifier.
func (f *FedClassAvg) WireApply(u *fl.Update) error {
	if len(u.Vecs) != 1 || u.Vecs[0] == nil {
		return fmt.Errorf("core: client %d uploaded %d vectors, want 1", u.Client, len(u.Vecs))
	}
	v := u.Vecs[0]
	if f.Opts.ShareAllWeights {
		if len(v) != f.accAll.Len() {
			return fmt.Errorf("core: client %d uploaded %d weights, server expects %d", u.Client, len(v), f.accAll.Len())
		}
		f.accC.Accumulate(v[len(v)-f.accC.Len():], u.Weight)
		f.accAll.Accumulate(v, u.Weight)
		return nil
	}
	if len(v) != f.accC.Len() {
		return fmt.Errorf("core: client %d uploaded %d classifier weights, server expects %d", u.Client, len(v), f.accC.Len())
	}
	f.accC.Accumulate(v, u.Weight)
	return nil
}

// WireCommit merges the round's accumulated averages into the globals.
func (f *FedClassAvg) WireCommit() error {
	f.accC.CommitInto(f.globalClassifier, f.mix, nil)
	if f.Opts.ShareAllWeights {
		f.accAll.CommitInto(f.globalAll, f.mix, nil)
	}
	return nil
}

// wireWeightedAverage is weightedFlatAverage fed by join-time sizes
// instead of a live simulation: weight |D_k|/|D|, empty clients weighted
// 1/|D| so their payload still counts.
func wireWeightedAverage(sizes []int, flats [][]float64) []float64 {
	var total float64
	for _, s := range sizes {
		total += float64(s)
	}
	if total == 0 {
		total = float64(len(sizes))
	}
	var out []float64
	for i, flat := range flats {
		wgt := float64(sizes[i]) / total
		if sizes[i] == 0 {
			wgt = 1 / total
		}
		if out == nil {
			out = make([]float64, len(flat))
		}
		for j, v := range flat {
			out[j] += wgt * v
		}
	}
	return out
}
