package core

import (
	"math"
	"testing"

	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
)

// runWireRounds drives the wire half of FedClassAvg by hand — joins,
// setup, then rounds of dispatch → local → apply → commit — exactly the
// sequence a ServerNode and its ClientNodes perform, minus the transport.
func runWireRounds(t *testing.T, algo *FedClassAvg, clients []*fl.Client, rounds, batch int) {
	t.Helper()
	joins := make([]fl.WireJoin, len(clients))
	for i, c := range clients {
		init, err := algo.WireInit(c)
		if err != nil {
			t.Fatal(err)
		}
		joins[i] = fl.WireJoin{
			ID:            c.ID,
			TrainSize:     len(c.Train),
			FeatDim:       c.Model.Cfg.FeatDim,
			NumClasses:    c.Model.Cfg.NumClasses,
			NumParams:     nn.NumParams(c.Model.Params()),
			NumClassifier: nn.NumParams(c.Model.ClassifierParams()),
			Init:          init,
		}
	}
	if err := algo.WireSetup(joins, 4); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= rounds; round++ {
		updates := make([]*fl.Update, len(clients))
		for i, c := range clients {
			vecs, err := algo.WireDispatch(c.ID)
			if err != nil {
				t.Fatal(err)
			}
			u, err := algo.WireLocal(c, batch, vecs)
			if err != nil {
				t.Fatal(err)
			}
			updates[i] = u
		}
		for _, u := range updates {
			u.Weight = u.Scale
			if err := algo.WireApply(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := algo.WireCommit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireHalvesMatchSyncRounds is the split-parity unit test: running
// FedClassAvg through the wire decomposition must land within floating-
// point tolerance of the monolithic sync rounds on an identical fleet —
// both the classifier-only and the ShareAllWeights variants.
func TestWireHalvesMatchSyncRounds(t *testing.T) {
	cases := []struct {
		name  string
		arch  func(int) models.Arch
		share bool
	}{
		{"classifier-only", hetArch, false},
		{"share-all-weights", mlpArch, true},
	}
	const rounds, batch = 2, 8
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.ShareAllWeights = tc.share

			syncClients := fleet(t, 4, tc.arch)
			sim := fl.NewSimulation(syncClients, fl.Config{Rounds: rounds, BatchSize: batch, Seed: 1})
			syncAlgo := New(opts)
			if err := syncAlgo.Setup(sim); err != nil {
				t.Fatal(err)
			}
			all := []int{0, 1, 2, 3}
			for round := 1; round <= rounds; round++ {
				if err := syncAlgo.Round(sim, round, all); err != nil {
					t.Fatal(err)
				}
			}

			wireClients := fleet(t, 4, tc.arch)
			wireAlgo := New(opts)
			runWireRounds(t, wireAlgo, wireClients, rounds, batch)

			const tol = 1e-9
			sg, wg := syncAlgo.GlobalClassifier(), wireAlgo.GlobalClassifier()
			if len(sg) != len(wg) {
				t.Fatalf("global classifier lengths differ: %d vs %d", len(sg), len(wg))
			}
			for j := range sg {
				if math.Abs(sg[j]-wg[j]) > tol {
					t.Fatalf("global[%d]: sync %v vs wire %v", j, sg[j], wg[j])
				}
			}
			for i := range syncClients {
				sp := nn.FlattenParams(syncClients[i].Model.Params())
				wp := nn.FlattenParams(wireClients[i].Model.Params())
				for j := range sp {
					if math.Abs(sp[j]-wp[j]) > tol {
						t.Fatalf("client %d param %d: sync %v vs wire %v", i, j, sp[j], wp[j])
					}
				}
			}
		})
	}
}

// TestWireSetupRejectsBadFleets mirrors the monolithic Setup validations
// at the join boundary.
func TestWireSetupRejectsBadFleets(t *testing.T) {
	algo := New(DefaultOptions())
	if err := algo.WireSetup(nil, 4); err == nil {
		t.Fatal("empty federation must fail setup")
	}
	joins := []fl.WireJoin{
		{ID: 0, FeatDim: 8, NumClasses: 10, NumClassifier: 90, Init: [][]float64{make([]float64, 90)}},
		{ID: 1, FeatDim: 16, NumClasses: 10, NumClassifier: 170, Init: [][]float64{make([]float64, 170)}},
	}
	if err := algo.WireSetup(joins, 4); err == nil {
		t.Fatal("mismatched classifier shapes must fail setup")
	}
	share := New(Options{LocalEpochs: 1, ShareAllWeights: true})
	joins = []fl.WireJoin{
		{ID: 0, FeatDim: 8, NumClasses: 10, NumParams: 100, NumClassifier: 90, Init: [][]float64{make([]float64, 100)}},
		{ID: 1, FeatDim: 8, NumClasses: 10, NumParams: 200, NumClassifier: 90, Init: [][]float64{make([]float64, 200)}},
	}
	if err := share.WireSetup(joins, 4); err == nil {
		t.Fatal("+weight with heterogeneous models must fail setup")
	}
}

// TestCompositeObjectiveComponents checks each term of the paper's
// composite loss L_CL + L_CE + ρ·L_R changes training: at a fixed seed
// the four ablation configurations reach four distinct classifiers, and
// every configuration is bit-reproducible.
func TestCompositeObjectiveComponents(t *testing.T) {
	configs := map[string]Options{
		"CA":       {LocalEpochs: 1},
		"CA+PR":    {LocalEpochs: 1, UseProximal: true, Rho: 0.5},
		"CA+CL":    {LocalEpochs: 1, UseContrastive: true},
		"CA+PR+CL": {LocalEpochs: 1, UseProximal: true, Rho: 0.5, UseContrastive: true},
	}
	run := func(opts Options) []float64 {
		clients := fleet(t, 3, hetArch)
		sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 5})
		algo := New(opts)
		if _, err := sim.Run(algo); err != nil {
			t.Fatal(err)
		}
		return algo.GlobalClassifier()
	}
	results := make(map[string][]float64, len(configs))
	for name, opts := range configs {
		first, second := run(opts), run(opts)
		for j := range first {
			if first[j] != second[j] {
				t.Fatalf("%s is not bit-reproducible at a fixed seed", name)
			}
		}
		results[name] = first
	}
	names := []string{"CA", "CA+PR", "CA+CL", "CA+PR+CL"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := results[names[i]], results[names[j]]
			same := true
			for p := range a {
				if a[p] != b[p] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("ablations %s and %s trained to identical classifiers — a loss term has no effect",
					names[i], names[j])
			}
		}
	}
}
