package core

import (
	"fmt"

	"repro/internal/fl"
)

// FedClassAvg's edge-aggregator half. Classifier (and full-model)
// averaging is associative: an aggregator folds its subtree's uploads into
// one exact Σ w_c·v_c, and the root merges pre-weighted sums instead of
// per-client vectors. The ShareAllWeights tail trick survives reduction
// unchanged — the tail of an exact elementwise sum IS the exact sum of the
// tails, so the root recovers the classifier aggregate from the merged
// full-model sum just as it does from a single client's upload.
var _ fl.ReducibleWireAlgorithm = (*FedClassAvg)(nil)

// PreReduce folds the subtree's uploads into one exact weighted sum.
func (f *FedClassAvg) PreReduce(updates []*fl.Update) (*fl.AggUpdate, error) {
	au := &fl.AggUpdate{Children: len(updates)}
	var acc *fl.ExactAccumulator
	for _, u := range updates {
		if len(u.Vecs) != 1 || u.Vecs[0] == nil {
			return nil, fmt.Errorf("core: client %d uploaded %d vectors, want 1", u.Client, len(u.Vecs))
		}
		if acc == nil {
			acc = fl.NewExactAccumulator(len(u.Vecs[0]))
		} else if len(u.Vecs[0]) != acc.Len() {
			return nil, fmt.Errorf("core: client %d uploaded %d weights, subtree peers uploaded %d",
				u.Client, len(u.Vecs[0]), acc.Len())
		}
		acc.Fold(u.Vecs[0], u.Weight)
	}
	if acc != nil {
		sum, w := acc.Round()
		au.Vecs = [][]float64{sum}
		au.Weight = w
	}
	return au, nil
}

// WireApplyAggregate merges one pre-weighted subtree sum into the
// accumulators; with ShareAllWeights its tail feeds the classifier shards.
func (f *FedClassAvg) WireApplyAggregate(u *fl.AggUpdate) error {
	if u.Children == 0 {
		return nil
	}
	if len(u.Vecs) != 1 || u.Vecs[0] == nil {
		return fmt.Errorf("core: aggregator %d forwarded %d vectors, want 1", u.Agg, len(u.Vecs))
	}
	v := u.Vecs[0]
	if f.Opts.ShareAllWeights {
		if len(v) != f.accAll.Len() {
			return fmt.Errorf("core: aggregator %d forwarded %d weights, server expects %d", u.Agg, len(v), f.accAll.Len())
		}
		f.accC.Merge(v[len(v)-f.accC.Len():], u.Weight)
		f.accAll.Merge(v, u.Weight)
		return nil
	}
	if len(v) != f.accC.Len() {
		return fmt.Errorf("core: aggregator %d forwarded %d classifier weights, server expects %d", u.Agg, len(v), f.accC.Len())
	}
	f.accC.Merge(v, u.Weight)
	return nil
}
