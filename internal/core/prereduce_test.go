package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// FedClassAvg's pre-reduction, both variants: integer-valued data commits
// byte-identically to flat fan-in under any grouping, and with
// ShareAllWeights the classifier recovered from the tail of the merged
// full-model sum matches the flat classifier average exactly.
func TestFedClassAvgPreReduceParity(t *testing.T) {
	const nAll, nC, k = 24, 8, 6
	rng := rand.New(rand.NewSource(13))
	for _, shareAll := range []bool{false, true} {
		want := nC
		if shareAll {
			want = nAll
		}
		init := make([]float64, want)
		for i := range init {
			init[i] = float64(i % 7)
		}
		joins := make([]fl.WireJoin, k)
		for i := range joins {
			joins[i] = fl.WireJoin{ID: i, TrainSize: 10 + i, FeatDim: 4, NumClasses: 2,
				NumParams: nAll, NumClassifier: nC, Init: [][]float64{init}}
		}
		ups := make([]*fl.Update, k)
		for c := range ups {
			v := make([]float64, want)
			for i := range v {
				v[i] = float64(rng.Intn(512) - 256)
			}
			ups[c] = &fl.Update{Client: c, Weight: float64(1 + rng.Intn(4)), Vecs: [][]float64{v}}
		}
		run := func(sizes []int) ([]float64, []float64) {
			algo := &FedClassAvg{Opts: Options{ShareAllWeights: shareAll}}
			if err := algo.WireSetup(joins, 3); err != nil {
				t.Fatal(err)
			}
			if sizes == nil {
				for _, u := range ups {
					if err := algo.WireApply(u); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				c := 0
				for a, sz := range sizes {
					au, err := algo.PreReduce(ups[c : c+sz])
					if err != nil {
						t.Fatalf("PreReduce group %d: %v", a, err)
					}
					if err := algo.WireApplyAggregate(au); err != nil {
						t.Fatalf("WireApplyAggregate group %d: %v", a, err)
					}
					c += sz
				}
			}
			if err := algo.WireCommit(); err != nil {
				t.Fatal(err)
			}
			return append([]float64(nil), algo.globalClassifier...),
				append([]float64(nil), algo.globalAll...)
		}

		wantC, wantAll := run(nil)
		for _, sizes := range [][]int{{1, 1, 1, 1, 1, 1}, {3, 3}, {2, 4}, {6}} {
			gotC, gotAll := run(sizes)
			for i := range gotC {
				if math.Float64bits(gotC[i]) != math.Float64bits(wantC[i]) {
					t.Fatalf("shareAll=%v grouping %v: classifier[%d] = %v, want %v", shareAll, sizes, i, gotC[i], wantC[i])
				}
			}
			for i := range gotAll {
				if math.Float64bits(gotAll[i]) != math.Float64bits(wantAll[i]) {
					t.Fatalf("shareAll=%v grouping %v: all[%d] = %v, want %v", shareAll, sizes, i, gotAll[i], wantAll[i])
				}
			}
		}
	}
}
