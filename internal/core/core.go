// Package core implements FedClassAvg, the paper's contribution: federated
// classifier averaging with local representation learning for personalized
// federated learning over heterogeneous client models.
//
// Each communication round (Algorithm 1 of the paper):
//
//  1. The server broadcasts the global classifier weights w_C to the
//     sampled clients, which overwrite their local classifiers.
//  2. Every client trains locally minimizing
//     L_k = L_CL(F_k(x'), F_k(x”)) + L_CE(y, ŷ) + ρ·L_R(C, C_k)
//     — the supervised contrastive loss over two augmented views, the
//     cross-entropy on view one, and the L2 proximal pull of the local
//     classifier toward the global classifier.
//  3. Clients upload classifiers; the server averages them weighted by
//     local dataset size: w_C ← Σ_k (|D_k|/|D|)·w_Ck.
//
// Only the classifier (one fully connected layer) crosses the network, so
// the per-round payload is O(featDim·numClasses) — the paper's 2 KB claim.
//
// The UseProximal/UseContrastive switches reproduce the Table 4 ablation;
// ShareAllWeights reproduces the homogeneous "+weight" variant of Table 3,
// where extractor weights are averaged too (proximal regularization still
// applies to the classifier only, as in the paper).
package core

import (
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Options configures FedClassAvg.
type Options struct {
	// Rho is the proximal regularization coefficient ρ (paper Table 1:
	// 0.1 for CIFAR-10/EMNIST, 0.4662 for Fashion-MNIST).
	Rho float64
	// Tau is the supervised contrastive temperature.
	Tau float64
	// LocalEpochs is E in Algorithm 1 (paper: 1).
	LocalEpochs int
	// UseProximal enables the ρ·L_R term (ablation switch PR).
	UseProximal bool
	// UseContrastive enables the L_CL term (ablation switch CL).
	UseContrastive bool
	// ShareAllWeights additionally averages extractor weights; valid only
	// when all clients share one architecture (the "+weight" rows of
	// Table 3).
	ShareAllWeights bool
}

// DefaultOptions mirrors the paper's full method.
func DefaultOptions() Options {
	return Options{Rho: 0.1, Tau: 0.1, LocalEpochs: 1, UseProximal: true, UseContrastive: true}
}

// FedClassAvg implements fl.Algorithm and fl.AsyncAlgorithm.
type FedClassAvg struct {
	Opts Options

	globalClassifier []float64
	globalAll        []float64 // only with ShareAllWeights

	// Async-scheduler state: sharded accumulators for the classifier (and,
	// with ShareAllWeights, the full weights), the commit mixing rate, and
	// per-client snapshots of the classifier the client downloaded — the
	// proximal pull must reference that broadcast, not the server's
	// continuously moving aggregate.
	accC   *fl.ShardedAccumulator
	accAll *fl.ShardedAccumulator
	mix    float64
	snapC  [][]float64
}

// New builds the algorithm.
func New(opts Options) *FedClassAvg {
	if opts.LocalEpochs <= 0 {
		opts.LocalEpochs = 1
	}
	if opts.Tau <= 0 {
		opts.Tau = 0.1
	}
	return &FedClassAvg{Opts: opts}
}

// Name identifies the algorithm (with ablation suffixes for clarity).
func (f *FedClassAvg) Name() string {
	n := "FedClassAvg"
	switch {
	case f.Opts.UseProximal && f.Opts.UseContrastive:
	case f.Opts.UseProximal:
		n += "(CA+PR)"
	case f.Opts.UseContrastive:
		n += "(CA+CL)"
	default:
		n += "(CA)"
	}
	if f.Opts.ShareAllWeights {
		n += "+weight"
	}
	return n
}

// EpochsPerRound reports E.
func (f *FedClassAvg) EpochsPerRound() int { return f.Opts.LocalEpochs }

// LossyUploads marks FedClassAvg's weight uploads (classifier, and full
// model under ShareAllWeights) as tolerant of wire sparsification and
// delta framing: the server only ever averages them.
func (f *FedClassAvg) LossyUploads() bool { return true }

// Setup checks classifier compatibility and initializes the global
// classifier (and, with ShareAllWeights, the global model) as the
// data-weighted average of the clients' initial weights.
func (f *FedClassAvg) Setup(sim *fl.Simulation) error {
	if sim.NumClients() == 0 {
		return errors.New("core: no clients")
	}
	// SetupIDs is the whole fleet for an eager simulation (the historical
	// initial average) and a fixed budget-independent prefix for a lazy one,
	// where averaging a million initial classifiers would materialize them
	// all for weights that wash out after the first commit anyway.
	probe := sim.SetupIDs()
	ref := sim.Client(probe[0]).Model
	for _, id := range probe[1:] {
		c := sim.Client(id)
		if c.Model.Cfg.FeatDim != ref.Cfg.FeatDim || c.Model.Cfg.NumClasses != ref.Cfg.NumClasses {
			return fmt.Errorf("core: client %d classifier shape (%d→%d) differs from client 0 (%d→%d)",
				c.ID, c.Model.Cfg.FeatDim, c.Model.Cfg.NumClasses, ref.Cfg.FeatDim, ref.Cfg.NumClasses)
		}
		if f.Opts.ShareAllWeights && nn.NumParams(c.Model.Params()) != nn.NumParams(ref.Params()) {
			return fmt.Errorf("core: ShareAllWeights requires homogeneous models; client %d differs", c.ID)
		}
	}
	f.globalClassifier = f.averageFlat(sim, probe, func(c *fl.Client) []*nn.Param {
		return c.Model.ClassifierParams()
	})
	if f.Opts.ShareAllWeights {
		f.globalAll = f.averageFlat(sim, probe, func(c *fl.Client) []*nn.Param {
			return c.Model.Params()
		})
	}
	return nil
}

// Round performs one FedClassAvg communication round.
func (f *FedClassAvg) Round(sim *fl.Simulation, round int, participants []int) error {
	if len(participants) == 0 {
		return nil
	}
	// Broadcast + local update, one goroutine per participant. Errors are
	// collected per index to stay race-free under the worker pool.
	errs := make([]error, len(participants))
	flatC := make([][]float64, len(participants))
	var flatAll [][]float64
	if f.Opts.ShareAllWeights {
		flatAll = make([][]float64, len(participants))
	}
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		if f.Opts.ShareAllWeights {
			errs[idx] = nn.SetFlatParams(c.Model.Params(), f.globalAll)
			sim.Ledger.RecordDown(c.ID, len(f.globalAll))
		} else {
			errs[idx] = nn.SetFlatParams(c.Model.ClassifierParams(), f.globalClassifier)
			sim.Ledger.RecordDown(c.ID, len(f.globalClassifier))
		}
		if errs[idx] != nil {
			return
		}
		f.localUpdate(c, sim.Cfg.BatchSize, f.globalClassifier)
		if f.Opts.ShareAllWeights {
			// The classifier rides inside the one full-weight frame
			// (extractor then classifier), so it is the quantized tail of
			// that upload — never fresher than what crossed the wire.
			flatAll[idx] = sim.Uplink(c.ID, nn.FlattenParams(c.Model.Params()))
			nC := nn.NumParams(c.Model.ClassifierParams())
			flatC[idx] = flatAll[idx][len(flatAll[idx])-nC:]
		} else {
			flatC[idx] = sim.Uplink(c.ID, nn.FlattenParams(c.Model.ClassifierParams()))
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Aggregate.
	f.globalClassifier = weightedFlatAverage(sim, participants, flatC)
	if f.Opts.ShareAllWeights {
		f.globalAll = weightedFlatAverage(sim, participants, flatAll)
	}
	return nil
}

// AsyncSetup sizes the sharded aggregation state.
func (f *FedClassAvg) AsyncSetup(sim *fl.Simulation, sched *fl.SchedulerConfig) error {
	f.accC = fl.NewSharded(len(f.globalClassifier), sched.Shards)
	if f.Opts.ShareAllWeights {
		f.accAll = fl.NewSharded(len(f.globalAll), sched.Shards)
	}
	f.mix = sched.MixRate
	f.snapC = make([][]float64, sim.NumClients())
	return nil
}

// AsyncDispatch broadcasts the committed classifier (or, with
// ShareAllWeights, the full model) and snapshots the proximal reference.
func (f *FedClassAvg) AsyncDispatch(sim *fl.Simulation, client int) error {
	c := sim.Client(client)
	if f.Opts.ShareAllWeights {
		if err := nn.SetFlatParams(c.Model.Params(), f.globalAll); err != nil {
			return err
		}
		sim.Ledger.RecordDown(c.ID, len(f.globalAll))
	} else {
		if err := nn.SetFlatParams(c.Model.ClassifierParams(), f.globalClassifier); err != nil {
			return err
		}
		sim.Ledger.RecordDown(c.ID, len(f.globalClassifier))
	}
	f.snapC[client] = append(f.snapC[client][:0], f.globalClassifier...)
	return nil
}

// AsyncLocal runs the composite-objective local epochs against the
// dispatch snapshot and uploads the classifier (and full weights when
// shared).
func (f *FedClassAvg) AsyncLocal(sim *fl.Simulation, client int) (*fl.Update, error) {
	c := sim.Client(client)
	f.localUpdate(c, sim.Cfg.BatchSize, f.snapC[client])
	u := &fl.Update{Client: client, Scale: fl.DataScale(c)}
	if f.Opts.ShareAllWeights {
		// As in the sync round, the classifier is the quantized tail of
		// the single full-weight frame.
		all, bytes := sim.QuantizeUplink(client, nn.FlattenParams(c.Model.Params()))
		nC := nn.NumParams(c.Model.ClassifierParams())
		u.Vecs = [][]float64{all[len(all)-nC:], all}
		u.UpFloats = len(all)
		u.UpBytes = bytes
	} else {
		flat, bytes := sim.QuantizeUplink(client, nn.FlattenParams(c.Model.ClassifierParams()))
		u.Vecs = [][]float64{flat}
		u.UpFloats = len(flat)
		u.UpBytes = bytes
	}
	return u, nil
}

// AsyncApply folds the staleness-weighted classifier (and optionally full
// weights) into the shards.
func (f *FedClassAvg) AsyncApply(sim *fl.Simulation, u *fl.Update) error {
	f.accC.Accumulate(u.Vecs[0], u.Weight)
	if f.Opts.ShareAllWeights {
		f.accAll.Accumulate(u.Vecs[1], u.Weight)
	}
	return nil
}

// AsyncCommit merges the buffered aggregates into the committed globals.
func (f *FedClassAvg) AsyncCommit(sim *fl.Simulation) error {
	f.accC.CommitInto(f.globalClassifier, f.mix, nil)
	if f.Opts.ShareAllWeights {
		f.accAll.CommitInto(f.globalAll, f.mix, nil)
	}
	return nil
}

// GlobalClassifier exposes the current global classifier weights (a copy),
// used by analysis tooling.
func (f *FedClassAvg) GlobalClassifier() []float64 {
	return append([]float64(nil), f.globalClassifier...)
}

// AlgoSnapshot captures the server state. Layout: Ints = [shareAll,
// hasAcc]; Vecs = [globalClassifier, globalAll?] plus, under async
// schedulers, the classifier accumulator's sums and weights and (with
// ShareAllWeights) the full-weight accumulator's. Per-client proximal
// snapshots (snapC) are not captured — dead after the engine's quiesce.
func (f *FedClassAvg) AlgoSnapshot(sim *fl.Simulation) (*fl.AlgoState, error) {
	shareAll := int64(0)
	st := &fl.AlgoState{Vecs: [][]float64{fl.CloneVec(f.globalClassifier)}}
	if f.Opts.ShareAllWeights {
		shareAll = 1
		st.Vecs = append(st.Vecs, fl.CloneVec(f.globalAll))
	}
	hasAcc := int64(0)
	if f.accC != nil {
		hasAcc = 1
		sum, wsum := f.accC.Snapshot()
		st.Vecs = append(st.Vecs, sum, wsum)
		if f.Opts.ShareAllWeights {
			sumA, wsumA := f.accAll.Snapshot()
			st.Vecs = append(st.Vecs, sumA, wsumA)
		}
	}
	st.Ints = []int64{shareAll, hasAcc}
	return st, nil
}

// AlgoRestore is the inverse of AlgoSnapshot.
func (f *FedClassAvg) AlgoRestore(sim *fl.Simulation, st *fl.AlgoState) error {
	if len(st.Ints) != 2 || len(st.Vecs) < 1 {
		return fmt.Errorf("core: malformed %s state (%d ints, %d vecs)", f.Name(), len(st.Ints), len(st.Vecs))
	}
	shareAll := st.Ints[0] == 1
	if shareAll != f.Opts.ShareAllWeights {
		return fmt.Errorf("core: checkpoint ShareAllWeights=%v, algorithm has %v", shareAll, f.Opts.ShareAllWeights)
	}
	if len(st.Vecs[0]) != len(f.globalClassifier) {
		return fmt.Errorf("core: checkpoint has %d classifier weights, model has %d",
			len(st.Vecs[0]), len(f.globalClassifier))
	}
	copy(f.globalClassifier, st.Vecs[0])
	next := 1
	if shareAll {
		if len(st.Vecs) < 2 || len(st.Vecs[1]) != len(f.globalAll) {
			return fmt.Errorf("core: checkpoint full-weight vector does not match the model")
		}
		copy(f.globalAll, st.Vecs[1])
		next = 2
	}
	if st.Ints[1] == 1 {
		want := next + 2
		if shareAll {
			want += 2
		}
		if f.accC == nil || len(st.Vecs) != want {
			return fmt.Errorf("core: checkpoint carries accumulator state for a different scheduler")
		}
		if err := f.accC.RestoreState(st.Vecs[next], st.Vecs[next+1]); err != nil {
			return err
		}
		if shareAll {
			return f.accAll.RestoreState(st.Vecs[next+2], st.Vecs[next+3])
		}
	}
	return nil
}

// LocalUpdate runs the client's local epochs with the paper's composite
// objective. Exported so ablation and analysis code can drive single
// clients directly.
func (f *FedClassAvg) LocalUpdate(c *fl.Client, batchSize int) {
	f.localUpdate(c, batchSize, f.globalClassifier)
}

// localUpdate is LocalUpdate against an explicit global-classifier
// reference (the client's dispatch snapshot under async schedulers).
func (f *FedClassAvg) localUpdate(c *fl.Client, batchSize int, globalC []float64) {
	for e := 0; e < f.Opts.LocalEpochs; e++ {
		for _, batch := range data.Batches(c.Train, batchSize, c.Rng) {
			f.step(c, batch, globalC)
		}
	}
}

// step performs one mini-batch update.
func (f *FedClassAvg) step(c *fl.Client, batch []data.Example, globalC []float64) {
	n := len(batch)
	ch, h, w := c.InputGeometry()
	dim := ch * h * w
	dt := c.DType()
	labels := make([]int, n)
	// The input batch and the feature-gradient accumulator are pooled (in
	// the model dtype): both are fully consumed by the extractor's backward
	// pass, so they return to the pool at the end of the step. Augmented
	// views arrive as float64 bookkeeping and narrow while packing.
	var x *tensor.Tensor
	if f.Opts.UseContrastive {
		// Stack both augmented views: rows [0,n) = x', rows [n,2n) = x''.
		x = tensor.GetTensorOf(dt, 2*n, ch, h, w)
		for i, ex := range batch {
			v1, v2 := c.Aug.TwoViews(ex.X, c.Rng)
			x.WriteFloat64sAt(i*dim, v1)
			x.WriteFloat64sAt((n+i)*dim, v2)
			labels[i] = ex.Y
		}
	} else {
		x = tensor.GetTensorOf(dt, n, ch, h, w)
		for i, ex := range batch {
			x.WriteFloat64sAt(i*dim, c.Aug.Apply(ex.X, c.Rng))
			labels[i] = ex.Y
		}
	}
	feats := c.Model.Extractor.Forward(x, true)
	// Cross-entropy on view one.
	view1 := feats.SliceRows(0, n)
	logits := c.Model.Classifier.Forward(view1, true)
	_, dlogits := loss.CrossEntropy(logits, labels)
	dview1 := c.Model.Classifier.Backward(dlogits)
	dfeats := tensor.GetTensorOf(dt, feats.Rows(), feats.Cols())
	tensor.CopySegment(dfeats, 0, dview1, 0, n*feats.Cols())
	if f.Opts.UseContrastive {
		_, dcl := loss.SupCon(feats, labels, loss.SupConOptions{Temperature: f.Opts.Tau})
		dfeats.AddInPlace(dcl)
	}
	c.Model.Extractor.Backward(dfeats)
	tensor.PutTensor(dfeats)
	tensor.PutTensor(x)
	if f.Opts.UseProximal && globalC != nil {
		loss.Proximal(c.Model.ClassifierParams(), globalC, f.Opts.Rho)
	}
	params := c.Model.Params()
	c.Optimizer.Step(params)
	nn.ZeroGrads(params)
}

// averageFlat computes the |D_k|-weighted average of the selected clients'
// chosen parameter subsets, flattened.
func (f *FedClassAvg) averageFlat(sim *fl.Simulation, ids []int, pick func(*fl.Client) []*nn.Param) []float64 {
	flats := make([][]float64, len(ids))
	for i, id := range ids {
		flats[i] = nn.FlattenParams(pick(sim.Client(id)))
	}
	return weightedFlatAverage(sim, ids, flats)
}

// weightedFlatAverage folds pre-flattened (and wire-quantized) uploads with
// the same |D_k| weighting as averageFlat.
func weightedFlatAverage(sim *fl.Simulation, ids []int, flats [][]float64) []float64 {
	var total float64
	for _, id := range ids {
		total += float64(len(sim.Client(id).Train))
	}
	if total == 0 {
		total = float64(len(ids))
	}
	var out []float64
	for i, id := range ids {
		c := sim.Client(id)
		wgt := float64(len(c.Train)) / total
		if len(c.Train) == 0 {
			wgt = 1 / total
		}
		flat := flats[i]
		if out == nil {
			out = make([]float64, len(flat))
		}
		for j, v := range flat {
			out[j] += wgt * v
		}
	}
	return out
}
