package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/xrand"
)

func fleet(t *testing.T, k int, arch func(int) models.Arch) []*fl.Client {
	t.Helper()
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, k)
	for i := range clients {
		m := models.New(models.Config{
			Arch: arch(i), InC: ds.C, InH: ds.H, InW: ds.W, FeatDim: 8, NumClasses: ds.NumClasses, Hidden: 12,
		}, xrand.New(int64(i+1)))
		clients[i] = &fl.Client{
			ID: i, Model: m, Train: parts[i].Train, Test: parts[i].Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rand.New(rand.NewSource(int64(i + 50))),
			Optimizer: opt.NewAdam(0.005),
		}
	}
	return clients
}

func hetArch(i int) models.Arch { return models.HeterogeneousSet[i%len(models.HeterogeneousSet)] }
func mlpArch(int) models.Arch   { return models.ArchMLP }

func TestSetupRejectsMismatchedClassifiers(t *testing.T) {
	clients := fleet(t, 2, mlpArch)
	// Rebuild client 1 with a different feature dim.
	clients[1].Model = models.New(models.Config{
		Arch: models.ArchMLP, InC: 1, InH: 12, InW: 12, FeatDim: 16, NumClasses: 10,
	}, xrand.New(9))
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(New(DefaultOptions())); err == nil {
		t.Fatal("mismatched classifier shapes must fail setup")
	}
}

func TestShareAllWeightsRejectsHeterogeneous(t *testing.T) {
	clients := fleet(t, 4, hetArch)
	o := DefaultOptions()
	o.ShareAllWeights = true
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(New(o)); err == nil {
		t.Fatal("+weight on heterogeneous models must fail")
	}
}

func TestClassifierConvergesToAgreement(t *testing.T) {
	clients := fleet(t, 4, hetArch)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 3, BatchSize: 8, Seed: 1})
	algo := New(DefaultOptions())
	if _, err := sim.Run(algo); err != nil {
		t.Fatal(err)
	}
	global := algo.GlobalClassifier()
	if len(global) != 8*10+10 {
		t.Fatalf("global classifier has %d floats", len(global))
	}
	// The global classifier must equal the data-weighted average of the
	// final client classifiers (full participation, equal sizes).
	var avg []float64
	for _, c := range clients {
		flat := nn.FlattenParams(c.Model.ClassifierParams())
		if avg == nil {
			avg = make([]float64, len(flat))
		}
		for j, v := range flat {
			avg[j] += v / float64(len(clients))
		}
	}
	for j := range avg {
		if math.Abs(avg[j]-global[j]) > 1e-9 {
			t.Fatalf("global[%d] = %v, want average %v", j, global[j], avg[j])
		}
	}
}

func TestOnlyClassifierIsExchanged(t *testing.T) {
	clients := fleet(t, 4, hetArch)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 1})
	if _, err := sim.Run(New(DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	classifierFloats := nn.NumParams(clients[0].Model.ClassifierParams())
	modelFloats := nn.NumParams(clients[0].Model.Params())
	perRound := sim.Ledger.Rounds()[0]
	// Up traffic per round = K clients × classifier payload — far below a
	// single full model.
	wantUp := int64(len(clients)) * wireSize(classifierFloats)
	if perRound.UpBytes != wantUp {
		t.Fatalf("up bytes %d, want %d", perRound.UpBytes, wantUp)
	}
	if perRound.UpBytes >= wireSize(modelFloats) {
		t.Fatalf("classifier traffic %d should be below one model payload %d",
			perRound.UpBytes, wireSize(modelFloats))
	}
}

func wireSize(n int) int64 { return int64(12 + 8*n) }

func TestShareAllWeightsExchangesEverything(t *testing.T) {
	clients := fleet(t, 3, mlpArch)
	o := DefaultOptions()
	o.ShareAllWeights = true
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, BatchSize: 8, Seed: 1})
	if _, err := sim.Run(New(o)); err != nil {
		t.Fatal(err)
	}
	modelFloats := nn.NumParams(clients[0].Model.Params())
	perRound := sim.Ledger.Rounds()[0]
	if perRound.UpBytes != int64(len(clients))*wireSize(modelFloats) {
		t.Fatalf("+weight up bytes %d, want %d", perRound.UpBytes, int64(len(clients))*wireSize(modelFloats))
	}
}

func TestDownloadOverwritesLocalClassifier(t *testing.T) {
	clients := fleet(t, 2, mlpArch)
	algo := New(Options{LocalEpochs: 1}) // CA only: no prox/contrastive noise
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, BatchSize: 8, Seed: 1})
	if err := algo.Setup(sim); err != nil {
		t.Fatal(err)
	}
	before := algo.GlobalClassifier()
	// Poison client 0's classifier; Round must overwrite it before training.
	for _, p := range clients[0].Model.ClassifierParams() {
		p.Value.Fill(123)
	}
	if err := algo.Round(sim, 1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	after := nn.FlattenParams(clients[0].Model.ClassifierParams())
	// After one epoch of training from `before`, weights should be near
	// `before`, nowhere near 123.
	var dist float64
	for j := range after {
		d := after[j] - before[j]
		dist += d * d
	}
	if math.Sqrt(dist) > 50 {
		t.Fatalf("classifier looks unreplaced (distance %g from global)", math.Sqrt(dist))
	}
}

func TestAblationNames(t *testing.T) {
	cases := map[string]Options{
		"FedClassAvg(CA)":    {},
		"FedClassAvg(CA+PR)": {UseProximal: true},
		"FedClassAvg(CA+CL)": {UseContrastive: true},
		"FedClassAvg":        {UseProximal: true, UseContrastive: true},
		"FedClassAvg+weight": {UseProximal: true, UseContrastive: true, ShareAllWeights: true},
	}
	for want, opts := range cases {
		if got := New(opts).Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestEmptyParticipantsRoundIsNoop(t *testing.T) {
	clients := fleet(t, 2, mlpArch)
	algo := New(DefaultOptions())
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if err := algo.Setup(sim); err != nil {
		t.Fatal(err)
	}
	before := algo.GlobalClassifier()
	if err := algo.Round(sim, 1, nil); err != nil {
		t.Fatal(err)
	}
	after := algo.GlobalClassifier()
	for j := range before {
		if before[j] != after[j] {
			t.Fatal("empty round must not move the global classifier")
		}
	}
}

func TestProximalPullsTowardGlobal(t *testing.T) {
	// With a huge rho and zero-ish learning signal, the classifier should
	// move toward the global weights rather than away.
	clients := fleet(t, 2, mlpArch)
	algoStrong := New(Options{LocalEpochs: 1, UseProximal: true, Rho: 5})
	algoNone := New(Options{LocalEpochs: 1})
	distAfter := func(a *FedClassAvg) float64 {
		cl := fleet(t, 2, mlpArch)
		sim := fl.NewSimulation(cl, fl.Config{Rounds: 1, BatchSize: 8, Seed: 1})
		if err := a.Setup(sim); err != nil {
			t.Fatal(err)
		}
		global := a.GlobalClassifier()
		if err := a.Round(sim, 1, []int{0, 1}); err != nil {
			t.Fatal(err)
		}
		flat := nn.FlattenParams(cl[0].Model.ClassifierParams())
		var d float64
		for j := range flat {
			dd := flat[j] - global[j]
			d += dd * dd
		}
		return d
	}
	_ = clients
	if distAfter(algoStrong) >= distAfter(algoNone) {
		t.Fatal("strong proximal term should keep classifiers closer to global")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		clients := fleet(t, 3, hetArch)
		sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 4})
		algo := New(DefaultOptions())
		if _, err := sim.Run(algo); err != nil {
			t.Fatal(err)
		}
		return algo.GlobalClassifier()
	}
	a, b := run(), run()
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("FedClassAvg run is not deterministic")
		}
	}
}
