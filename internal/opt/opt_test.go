package opt

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic problem: minimize Σ (w_i - target_i)², gradient 2(w - t).
func quadParams(rng *rand.Rand, n int) (*nn.Param, []float64) {
	p := &nn.Param{Name: "w", Value: tensor.New(n), Grad: tensor.New(n)}
	p.Value.FillRandn(rng, 1)
	target := make([]float64, n)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	return p, target
}

func lossAndGrad(p *nn.Param, target []float64) float64 {
	var l float64
	for i, w := range p.Value.Data {
		d := w - target[i]
		l += d * d
		p.Grad.Data[i] = 2 * d
	}
	return l
}

func converges(t *testing.T, o Optimizer, steps int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p, target := quadParams(rng, 8)
	initial := lossAndGrad(p, target)
	for i := 0; i < steps; i++ {
		lossAndGrad(p, target)
		o.Step([]*nn.Param{p})
	}
	final := lossAndGrad(p, target)
	if final > initial*tol {
		t.Fatalf("did not converge: %g → %g", initial, final)
	}
}

func TestSGDConverges(t *testing.T) {
	converges(t, NewSGD(0.05, 0, 0), 200, 1e-4)
}

func TestSGDMomentumConverges(t *testing.T) {
	converges(t, NewSGD(0.02, 0.9, 0), 200, 1e-4)
}

func TestAdamConverges(t *testing.T) {
	converges(t, NewAdam(0.1), 300, 1e-3)
}

func TestSGDStepDirection(t *testing.T) {
	p := &nn.Param{Name: "w", Value: tensor.FromSlice([]float64{1}, 1), Grad: tensor.FromSlice([]float64{2}, 1)}
	NewSGD(0.5, 0, 0).Step([]*nn.Param{p})
	if p.Value.Data[0] != 0 {
		t.Fatalf("w = %v, want 1 - 0.5·2 = 0", p.Value.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := &nn.Param{Name: "w", Value: tensor.FromSlice([]float64{10}, 1), Grad: tensor.New(1)}
	NewSGD(0.1, 0, 0.5).Step([]*nn.Param{p})
	// w ← w − lr·λ·w = 10 − 0.1·0.5·10 = 9.5
	if math.Abs(p.Value.Data[0]-9.5) > 1e-12 {
		t.Fatalf("w = %v, want 9.5", p.Value.Data[0])
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ≈ lr
	// regardless of gradient scale.
	for _, g := range []float64{1e-6, 1, 1e6} {
		p := &nn.Param{Name: "w", Value: tensor.New(1), Grad: tensor.FromSlice([]float64{g}, 1)}
		NewAdam(0.01).Step([]*nn.Param{p})
		if math.Abs(math.Abs(p.Value.Data[0])-0.01) > 1e-3 {
			t.Fatalf("first step %v for grad %v, want ≈ 0.01", p.Value.Data[0], g)
		}
	}
}

func TestOptimizerStatePerParameter(t *testing.T) {
	// Momentum must be tracked per parameter, not shared.
	a := &nn.Param{Name: "a", Value: tensor.New(1), Grad: tensor.FromSlice([]float64{1}, 1)}
	b := &nn.Param{Name: "b", Value: tensor.New(1), Grad: tensor.FromSlice([]float64{-1}, 1)}
	o := NewSGD(0.1, 0.9, 0)
	o.Step([]*nn.Param{a, b})
	o.Step([]*nn.Param{a, b})
	if a.Value.Data[0] >= 0 || b.Value.Data[0] <= 0 {
		t.Fatalf("momentum mixed across params: a=%v b=%v", a.Value.Data[0], b.Value.Data[0])
	}
	if math.Abs(a.Value.Data[0]+b.Value.Data[0]) > 1e-12 {
		t.Fatalf("symmetric problem should stay symmetric: a=%v b=%v", a.Value.Data[0], b.Value.Data[0])
	}
}

// A restored snapshot from a differently shaped model must fail with the
// shape diagnostic at the next Step — at either dtype — rather than an
// index-out-of-range inside the update loop.
func TestRestoredStateShapeMismatchPanics(t *testing.T) {
	for _, dt := range []tensor.DType{tensor.F64, tensor.F32} {
		rng := rand.New(rand.NewSource(41))
		layer := nn.NewDense(3, 2, rng)
		nn.ConvertParams(layer.Params(), dt)
		ad := NewAdam(0.01)
		if err := ad.SetState(State{Ints: []int64{1}, Vecs: [][]float64{{1, 2}, {3, 4}}}); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%v: mismatched restored state must panic", dt)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "restored state") {
					t.Fatalf("%v: want the shape diagnostic, got %v", dt, r)
				}
			}()
			ad.Step(layer.Params())
		}()
	}
}
