// Package opt implements the first-order optimizers used by the
// reproduction: SGD with momentum/weight decay and Adam. Optimizers keep
// per-parameter state keyed by position, so a single optimizer instance must
// stay paired with one parameter list for its lifetime.
//
// Moment vectors live in the model dtype (they are touched once per element
// per step, exactly like the parameters), while the serializable State
// snapshot is always float64 bookkeeping: float32 moments widen exactly, so
// checkpoint round trips are lossless at either dtype. A restored State is
// held widened until the first Step reveals the parameter dtype, then
// migrates onto the matching fast path.
package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to params using their Grad fields. The caller
	// is responsible for zeroing gradients between steps.
	Step(params []*nn.Param)
}

// State is a serializable snapshot of an optimizer's internal state:
// integer counters (Adam's step count) plus per-parameter moment vectors,
// widened to float64. The exact layout is optimizer-specific; a State
// produced by one optimizer type must only be restored into the same type.
type State struct {
	Ints []int64
	Vecs [][]float64
}

// Checkpointable is implemented by optimizers whose internal state can be
// captured into a checkpoint and restored, so a resumed run continues the
// exact update trajectory of an uninterrupted one.
type Checkpointable interface {
	Optimizer
	State() State
	SetState(State) error
}

func cloneVecs(vecs [][]float64) [][]float64 {
	if vecs == nil {
		return nil
	}
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// moments is a dtype-dispatched set of per-parameter state vectors: exactly
// one of f64/f32 is non-nil once initialized. Snapshots widen to float64;
// restores stage the widened form and narrow lazily on first use.
type moments struct {
	f64 [][]float64
	f32 [][]float32
}

func (m *moments) empty() bool { return m.f64 == nil && m.f32 == nil }

func (m *moments) reset() { m.f64, m.f32 = nil, nil }

// ensure sizes the state for the parameter list in its dtype, migrating a
// restored float64 snapshot onto the f32 path when the model turns out to
// be float32 (widening/narrowing of f32-exact values is lossless).
func (m *moments) ensure(params []*nn.Param) {
	if nn.ParamsDType(params).Backing() == tensor.F32 {
		if m.f32 != nil {
			checkVecCount(len(m.f32), len(params))
			return
		}
		m.f32 = make([][]float32, len(params))
		if m.f64 != nil { // restored snapshot: narrow it
			checkVecCount(len(m.f64), len(params))
			for i, v := range m.f64 {
				m.f32[i] = make([]float32, len(v))
				for j, x := range v {
					m.f32[i][j] = float32(x)
				}
			}
			m.f64 = nil
			return
		}
		for i, p := range params {
			m.f32[i] = make([]float32, p.Value.Size())
		}
		return
	}
	if m.f64 != nil {
		checkVecCount(len(m.f64), len(params))
		return
	}
	if m.f32 != nil {
		panic("opt: float32 optimizer state applied to a float64 model")
	}
	m.f64 = make([][]float64, len(params))
	for i, p := range params {
		m.f64[i] = make([]float64, p.Value.Size())
	}
}

// checkVecCount turns a state/model shape mismatch (a restored snapshot
// from a differently shaped model) into a diagnostic panic instead of an
// index-out-of-range deep inside the update loop, symmetrically for both
// dtypes.
func checkVecCount(have, want int) {
	if have != want {
		panic(fmt.Sprintf("opt: restored state has %d vectors, model has %d parameters", have, want))
	}
}

// snapshot widens the state to the float64 bookkeeping representation.
func (m *moments) snapshot() [][]float64 {
	if m.f32 != nil {
		out := make([][]float64, len(m.f32))
		for i, v := range m.f32 {
			w := make([]float64, len(v))
			for j, x := range v {
				w[j] = float64(x)
			}
			out[i] = w
		}
		return out
	}
	return cloneVecs(m.f64)
}

// restore stages a widened snapshot; the next ensure narrows it if needed.
func (m *moments) restore(vecs [][]float64) {
	m.f64 = cloneVecs(vecs)
	m.f32 = nil
}

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity moments
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies v ← μv + g + λw; w ← w − η·v.
func (s *SGD) Step(params []*nn.Param) {
	if s.Momentum != 0 {
		s.velocity.ensure(params)
	}
	f32 := nn.ParamsDType(params).Backing() == tensor.F32
	for i, p := range params {
		if f32 {
			var v []float32
			if s.Momentum != 0 {
				v = s.velocity.f32[i]
			}
			sgdStep(tensor.Of[float32](p.Value), tensor.Of[float32](p.Grad), v,
				float32(s.LR), float32(s.Momentum), float32(s.WeightDecay))
			// BF16 storage invariant: parameters re-narrow after every
			// mutation so serialized values round-trip exactly. Velocity
			// stays full float32 — it is optimizer state, not storage.
			tensor.RoundBF16InPlace(p.Value)
		} else {
			var v []float64
			if s.Momentum != 0 {
				v = s.velocity.f64[i]
			}
			sgdStep(p.Value.Data, p.Grad.Data, v, s.LR, s.Momentum, s.WeightDecay)
		}
	}
}

func sgdStep[F tensor.Float](w, g, v []F, lr, momentum, weightDecay F) {
	switch {
	case momentum != 0:
		for j := range w {
			gj := g[j] + weightDecay*w[j]
			v[j] = momentum*v[j] + gj
			w[j] -= lr * v[j]
		}
	default:
		for j := range w {
			w[j] -= lr * (g[j] + weightDecay*w[j])
		}
	}
}

// State captures the momentum velocities (empty until the first momentum
// Step), widened to float64.
func (s *SGD) State() State {
	return State{Vecs: s.velocity.snapshot()}
}

// SetState restores momentum velocities captured by State.
func (s *SGD) SetState(st State) error {
	if len(st.Ints) != 0 {
		return fmt.Errorf("opt: SGD state carries %d ints, want 0", len(st.Ints))
	}
	if len(st.Vecs) == 0 {
		s.velocity.reset()
		return nil
	}
	s.velocity.restore(st.Vecs)
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m moments
	v moments
}

// NewAdam builds an Adam optimizer with the conventional defaults for any
// zero-valued hyperparameter (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// State captures the step count and first/second moment vectors (Vecs is
// the m vectors followed by the v vectors; empty until the first Step),
// widened to float64.
func (a *Adam) State() State {
	st := State{Ints: []int64{int64(a.t)}}
	st.Vecs = append(a.m.snapshot(), a.v.snapshot()...)
	return st
}

// SetState restores a snapshot captured by State.
func (a *Adam) SetState(st State) error {
	if len(st.Ints) != 1 {
		return fmt.Errorf("opt: Adam state carries %d ints, want 1", len(st.Ints))
	}
	if len(st.Vecs)%2 != 0 {
		return fmt.Errorf("opt: Adam state carries %d moment vectors, want an even count", len(st.Vecs))
	}
	a.t = int(st.Ints[0])
	if len(st.Vecs) == 0 {
		a.m.reset()
		a.v.reset()
		return nil
	}
	half := len(st.Vecs) / 2
	a.m.restore(st.Vecs[:half])
	a.v.restore(st.Vecs[half:])
	return nil
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step(params []*nn.Param) {
	a.m.ensure(params)
	a.v.ensure(params)
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	if nn.ParamsDType(params).Backing() == tensor.F32 {
		for i, p := range params {
			adamStep(tensor.Of[float32](p.Value), tensor.Of[float32](p.Grad), a.m.f32[i], a.v.f32[i],
				float32(a.LR), float32(a.Beta1), float32(a.Beta2), float32(a.Eps), float32(c1), float32(c2))
			// BF16 storage invariant (see SGD.Step): moments stay float32.
			tensor.RoundBF16InPlace(p.Value)
		}
		return
	}
	for i, p := range params {
		adamStep(p.Value.Data, p.Grad.Data, a.m.f64[i], a.v.f64[i],
			a.LR, a.Beta1, a.Beta2, a.Eps, c1, c2)
	}
}

func adamStep[F tensor.Float](w, g, m, v []F, lr, beta1, beta2, eps, c1, c2 F) {
	tensor.AdamStep(w, g, m, v, lr, beta1, beta2, eps, c1, c2)
}
