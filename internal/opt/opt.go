// Package opt implements the first-order optimizers used by the
// reproduction: SGD with momentum/weight decay and Adam. Optimizers keep
// per-parameter state keyed by position, so a single optimizer instance must
// stay paired with one parameter list for its lifetime.
package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to params using their Grad fields. The caller
	// is responsible for zeroing gradients between steps.
	Step(params []*nn.Param)
}

// State is a serializable snapshot of an optimizer's internal state:
// integer counters (Adam's step count) plus per-parameter moment vectors.
// The exact layout is optimizer-specific; a State produced by one optimizer
// type must only be restored into the same type.
type State struct {
	Ints []int64
	Vecs [][]float64
}

// Checkpointable is implemented by optimizers whose internal state can be
// captured into a checkpoint and restored, so a resumed run continues the
// exact update trajectory of an uninterrupted one.
type Checkpointable interface {
	Optimizer
	State() State
	SetState(State) error
}

func cloneVecs(vecs [][]float64) [][]float64 {
	if vecs == nil {
		return nil
	}
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity [][]float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies v ← μv + g + λw; w ← w − η·v.
func (s *SGD) Step(params []*nn.Param) {
	if s.velocity == nil && s.Momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Value.Size())
		}
	}
	for i, p := range params {
		w, g := p.Value.Data, p.Grad.Data
		switch {
		case s.Momentum != 0:
			v := s.velocity[i]
			for j := range w {
				gj := g[j] + s.WeightDecay*w[j]
				v[j] = s.Momentum*v[j] + gj
				w[j] -= s.LR * v[j]
			}
		default:
			for j := range w {
				w[j] -= s.LR * (g[j] + s.WeightDecay*w[j])
			}
		}
	}
}

// State captures the momentum velocities (empty until the first momentum
// Step).
func (s *SGD) State() State {
	return State{Vecs: cloneVecs(s.velocity)}
}

// SetState restores momentum velocities captured by State.
func (s *SGD) SetState(st State) error {
	if len(st.Ints) != 0 {
		return fmt.Errorf("opt: SGD state carries %d ints, want 0", len(st.Ints))
	}
	if len(st.Vecs) == 0 {
		s.velocity = nil
		return nil
	}
	s.velocity = cloneVecs(st.Vecs)
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam builds an Adam optimizer with the conventional defaults for any
// zero-valued hyperparameter (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// State captures the step count and first/second moment vectors (Vecs is
// the m vectors followed by the v vectors; empty until the first Step).
func (a *Adam) State() State {
	st := State{Ints: []int64{int64(a.t)}}
	st.Vecs = append(cloneVecs(a.m), cloneVecs(a.v)...)
	return st
}

// SetState restores a snapshot captured by State.
func (a *Adam) SetState(st State) error {
	if len(st.Ints) != 1 {
		return fmt.Errorf("opt: Adam state carries %d ints, want 1", len(st.Ints))
	}
	if len(st.Vecs)%2 != 0 {
		return fmt.Errorf("opt: Adam state carries %d moment vectors, want an even count", len(st.Vecs))
	}
	a.t = int(st.Ints[0])
	if len(st.Vecs) == 0 {
		a.m, a.v = nil, nil
		return nil
	}
	half := len(st.Vecs) / 2
	a.m = cloneVecs(st.Vecs[:half])
	a.v = cloneVecs(st.Vecs[half:])
	return nil
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step(params []*nn.Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, p.Value.Size())
			a.v[i] = make([]float64, p.Value.Size())
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		w, g := p.Value.Data, p.Grad.Data
		m, v := a.m[i], a.v[i]
		for j := range w {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			w[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
