package baselines

import (
	"math"
	"testing"

	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func cnn2(int) models.Arch { return models.ArchCNN2 }

// groupedRun executes FedAvg under one scheduler with grouping forced on or
// off and returns the metrics history plus every client's final flat
// parameters.
func groupedRun(t *testing.T, arch func(int) models.Arch, kind fl.SchedulerKind, grouping bool) ([]fl.RoundMetrics, [][]float64) {
	t.Helper()
	prev := fl.SetCohortGrouping(grouping)
	defer fl.SetCohortGrouping(prev)
	clients := fleet(t, 4, arch)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 3})
	hist, err := sim.RunScheduled(NewFedAvg(1), fl.SchedulerConfig{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	finals := make([][]float64, len(clients))
	for i, c := range clients {
		finals[i] = nn.FlattenParams(c.Model.Params())
	}
	return hist, finals
}

// TestCohortGroupingInvariance is the end-to-end grouping-invariance gate:
// under every scheduler, at 1..N pool workers, a grouped FedAvg run (cross-
// client batched GEMMs in lockstep cohorts) must be byte-identical to the
// per-client run — metrics history and every client's final weights — for
// both a dense-only and a convolutional homogeneous fleet.
func TestCohortGroupingInvariance(t *testing.T) {
	archs := map[string]func(int) models.Arch{"mlp": mlp, "cnn2": cnn2}
	kinds := []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync}
	for name, arch := range archs {
		for _, kind := range kinds {
			for _, workers := range []int{1, tensor.Workers()} {
				prevW := tensor.SetMaxWorkers(workers)
				solo, soloParams := groupedRun(t, arch, kind, false)
				grouped, groupedParams := groupedRun(t, arch, kind, true)
				tensor.SetMaxWorkers(prevW)
				if len(solo) != len(grouped) {
					t.Fatalf("%s/%s/w%d: history length %d vs %d", name, kind, workers, len(grouped), len(solo))
				}
				for r := range solo {
					a, b := solo[r], grouped[r]
					if math.Float64bits(a.MeanAcc) != math.Float64bits(b.MeanAcc) ||
						math.Float64bits(a.StdAcc) != math.Float64bits(b.StdAcc) ||
						a.UpBytes != b.UpBytes || a.DownBytes != b.DownBytes {
						t.Fatalf("%s/%s/w%d round %d: grouped metrics diverge: %+v vs %+v", name, kind, workers, r, b, a)
					}
					for i := range a.PerClient {
						if math.Float64bits(a.PerClient[i]) != math.Float64bits(b.PerClient[i]) {
							t.Fatalf("%s/%s/w%d round %d client %d: accuracy bits diverge", name, kind, workers, r, i)
						}
					}
				}
				for i := range soloParams {
					for j := range soloParams[i] {
						if math.Float64bits(soloParams[i][j]) != math.Float64bits(groupedParams[i][j]) {
							t.Fatalf("%s/%s/w%d client %d param %d: %x vs %x", name, kind, workers, i, j,
								math.Float64bits(groupedParams[i][j]), math.Float64bits(soloParams[i][j]))
						}
					}
				}
			}
		}
	}
}
