// Package baselines implements the comparison algorithms of the paper's
// evaluation: the local-training-only baseline, FedAvg (McMahan et al.),
// FedProx (Li et al.), FedProto (Tan et al.) and KT-pFL (Zhang et al.).
// Each implements fl.Algorithm, so the experiment harness can swap them
// freely against FedClassAvg.
package baselines

import (
	"repro/internal/fl"
)

// LocalOnly trains each client on its own data with no communication —
// the "baseline" rows of the paper's tables.
type LocalOnly struct {
	LocalEpochs int
}

// NewLocalOnly builds the baseline with the given epochs per round.
func NewLocalOnly(epochs int) *LocalOnly {
	if epochs <= 0 {
		epochs = 1
	}
	return &LocalOnly{LocalEpochs: epochs}
}

// Name identifies the algorithm.
func (l *LocalOnly) Name() string { return "Local" }

// EpochsPerRound reports the local epochs per round.
func (l *LocalOnly) EpochsPerRound() int { return l.LocalEpochs }

// Setup is a no-op: there is no server state.
func (l *LocalOnly) Setup(sim *fl.Simulation) error { return nil }

// Round trains every participant locally; nothing is exchanged.
func (l *LocalOnly) Round(sim *fl.Simulation, round int, participants []int) error {
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		for e := 0; e < l.LocalEpochs; e++ {
			c.TrainEpochCE(sim.Cfg.BatchSize)
		}
	})
	return nil
}

// The baseline is trivially async: there is no server state, so the
// scheduler only controls when each client trains.

// AsyncSetup is a no-op.
func (l *LocalOnly) AsyncSetup(sim *fl.Simulation, sched *fl.SchedulerConfig) error { return nil }

// AsyncDispatch is a no-op: nothing is broadcast.
func (l *LocalOnly) AsyncDispatch(sim *fl.Simulation, client int) error { return nil }

// AsyncLocal trains the client and reports a communication-free update.
func (l *LocalOnly) AsyncLocal(sim *fl.Simulation, client int) (*fl.Update, error) {
	c := sim.Client(client)
	for e := 0; e < l.LocalEpochs; e++ {
		c.TrainEpochCE(sim.Cfg.BatchSize)
	}
	return &fl.Update{Client: client}, nil
}

// AsyncApply is a no-op.
func (l *LocalOnly) AsyncApply(sim *fl.Simulation, u *fl.Update) error { return nil }

// AsyncCommit is a no-op.
func (l *LocalOnly) AsyncCommit(sim *fl.Simulation) error { return nil }

// AlgoSnapshot reports an empty state: the baseline has no server state.
func (l *LocalOnly) AlgoSnapshot(sim *fl.Simulation) (*fl.AlgoState, error) {
	return &fl.AlgoState{}, nil
}

// AlgoRestore is a no-op.
func (l *LocalOnly) AlgoRestore(sim *fl.Simulation, st *fl.AlgoState) error { return nil }
