package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// groupAndReduce drives the tree path: split ups into consecutive groups,
// PreReduce each, and fold the aggregates into algo's accumulators.
func groupAndReduce(t *testing.T, algo fl.ReducibleWireAlgorithm, ups []*fl.Update, sizes []int) {
	t.Helper()
	c := 0
	for a, sz := range sizes {
		au, err := algo.PreReduce(ups[c : c+sz])
		if err != nil {
			t.Fatalf("PreReduce group %d: %v", a, err)
		}
		au.Agg = a
		if err := algo.WireApplyAggregate(au); err != nil {
			t.Fatalf("WireApplyAggregate group %d: %v", a, err)
		}
		c += sz
	}
}

func maxRelDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if m := math.Max(math.Abs(a[i]), math.Abs(b[i])); m > 0 {
			d /= m
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// FedAvg's pre-reduction: singleton groups (and any grouping of
// integer-valued data) commit byte-identically to flat fan-in; arbitrary
// float data under arbitrary grouping stays within regrouping noise.
func TestFedAvgPreReduceParity(t *testing.T) {
	const n, k = 33, 6
	joins := make([]fl.WireJoin, k)
	init := make([]float64, n)
	for i := range init {
		init[i] = float64(i)
	}
	for i := range joins {
		joins[i] = fl.WireJoin{ID: i, TrainSize: 10 + i, NumParams: n, Init: [][]float64{init}}
	}
	makeUps := func(integer bool, rng *rand.Rand) []*fl.Update {
		ups := make([]*fl.Update, k)
		for c := range ups {
			v := make([]float64, n)
			for i := range v {
				if integer {
					v[i] = float64(rng.Intn(512) - 256)
				} else {
					v[i] = rng.NormFloat64()
				}
			}
			w := float64(1 + rng.Intn(5))
			if !integer {
				w = rng.Float64() + 0.5
			}
			ups[c] = &fl.Update{Client: c, Weight: w, Vecs: [][]float64{v}}
		}
		return ups
	}
	run := func(ups []*fl.Update, sizes []int) []float64 {
		algo := NewFedAvg(1)
		if err := algo.WireSetup(joins, 3); err != nil {
			t.Fatal(err)
		}
		if sizes == nil {
			for _, u := range ups {
				if err := algo.WireApply(u); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			groupAndReduce(t, algo, ups, sizes)
		}
		if err := algo.WireCommit(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), algo.global...)
	}

	intUps := makeUps(true, rand.New(rand.NewSource(7)))
	want := run(intUps, nil)
	for _, sizes := range [][]int{{1, 1, 1, 1, 1, 1}, {3, 3}, {2, 4}, {6}} {
		got := run(intUps, sizes)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("integer data, grouping %v: global[%d] = %v, want %v", sizes, i, got[i], want[i])
			}
		}
	}

	fUps := makeUps(false, rand.New(rand.NewSource(9)))
	wantF := run(fUps, nil)
	gotSingle := run(fUps, []int{1, 1, 1, 1, 1, 1})
	for i := range gotSingle {
		if math.Float64bits(gotSingle[i]) != math.Float64bits(wantF[i]) {
			t.Fatalf("singleton groups must be bit-exact: global[%d] = %v, want %v", i, gotSingle[i], wantF[i])
		}
	}
	if d := maxRelDiff(run(fUps, []int{3, 3}), wantF); d > 1e-12 {
		t.Fatalf("float data, grouping {3,3}: rel diff %g", d)
	}
}

// FedProto's segmented pre-reduction: per-class exact sums with per-class
// weights commit byte-identically to flat fan-in on integer data, with
// partial reports (nil classes, zero counts) preserved.
func TestFedProtoPreReduceParity(t *testing.T) {
	const featDim, numClasses, k = 5, 4, 6
	joins := make([]fl.WireJoin, k)
	for i := range joins {
		joins[i] = fl.WireJoin{ID: i, TrainSize: 10, FeatDim: featDim, NumClasses: numClasses}
	}
	rng := rand.New(rand.NewSource(11))
	ups := make([]*fl.Update, k)
	for c := range ups {
		vecs := make([][]float64, numClasses)
		counts := make([]int, numClasses)
		for cls := range vecs {
			if rng.Intn(3) == 0 {
				continue
			}
			v := make([]float64, featDim)
			for i := range v {
				v[i] = float64(rng.Intn(128) - 64)
			}
			vecs[cls] = v
			counts[cls] = 1 + rng.Intn(9)
		}
		ups[c] = &fl.Update{Client: c, Weight: 1, Vecs: vecs, Counts: counts}
	}
	run := func(sizes []int) [][]float64 {
		algo := NewFedProto(1, 1)
		if err := algo.WireSetup(joins, 0); err != nil {
			t.Fatal(err)
		}
		if sizes == nil {
			for _, u := range ups {
				if err := algo.WireApply(u); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			groupAndReduce(t, algo, ups, sizes)
		}
		if err := algo.WireCommit(); err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, numClasses)
		for cls, p := range algo.globalProtos {
			if p != nil {
				out[cls] = append([]float64(nil), p...)
			}
		}
		return out
	}

	want := run(nil)
	for _, sizes := range [][]int{{1, 1, 1, 1, 1, 1}, {3, 3}, {2, 4}, {6}} {
		got := run(sizes)
		for cls := range got {
			if (got[cls] == nil) != (want[cls] == nil) {
				t.Fatalf("grouping %v: class %d reported=%v, want %v", sizes, cls, got[cls] != nil, want[cls] != nil)
			}
			for i := range got[cls] {
				if math.Float64bits(got[cls][i]) != math.Float64bits(want[cls][i]) {
					t.Fatalf("grouping %v: proto[%d][%d] = %v, want %v", sizes, cls, i, got[cls][i], want[cls][i])
				}
			}
		}
	}
}

// KT-pFL has no sound pre-reduction; the startup guard must refuse a
// forced one and accept auto/off.
func TestKTpFLPreReduceGuard(t *testing.T) {
	k := NewKTpFLWeights(1)
	if _, ok := interface{}(k).(fl.ReducibleWireAlgorithm); ok {
		t.Fatal("KT-pFL must not advertise a pre-reduction")
	}
	if err := fl.CheckPreReduce(k, fl.PreReduceForce); err == nil {
		t.Fatal("forcing a reduction on KT-pFL must fail at startup")
	}
	if err := fl.CheckPreReduce(k, fl.PreReduceAuto); err != nil {
		t.Fatalf("auto mode must accept KT-pFL: %v", err)
	}
	if err := fl.CheckPreReduce(k, fl.PreReduceOff); err != nil {
		t.Fatalf("off mode must accept KT-pFL: %v", err)
	}
	if err := fl.CheckPreReduce(NewFedAvg(1), fl.PreReduceForce); err != nil {
		t.Fatalf("forcing a reduction on FedAvg must succeed: %v", err)
	}
}
