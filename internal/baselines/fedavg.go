package baselines

import (
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FedAvg is communication-efficient federated averaging over homogeneous
// models (McMahan et al. 2017): clients download the global model, train
// locally with cross-entropy, upload all weights, and the server averages
// them weighted by local dataset size. With Mu > 0 it becomes FedProx
// (Li et al. 2020): the local objective gains the proximal term
// (μ/2)·‖w − w_global‖² over all weights.
type FedAvg struct {
	LocalEpochs int
	// Mu is the FedProx proximal coefficient; 0 yields plain FedAvg.
	Mu float64

	global []float64

	// Async-scheduler state: the sharded aggregation buffer, the commit
	// mixing rate, and per-client broadcast snapshots (the proximal
	// reference must be the weights the client actually downloaded, not
	// whatever the server has mutated to since).
	acc   *fl.ShardedAccumulator
	mix   float64
	snaps [][]float64
}

// NewFedAvg builds plain FedAvg.
func NewFedAvg(epochs int) *FedAvg { return &FedAvg{LocalEpochs: max1(epochs)} }

// NewFedProx builds FedProx with proximal coefficient mu.
func NewFedProx(epochs int, mu float64) *FedAvg {
	return &FedAvg{LocalEpochs: max1(epochs), Mu: mu}
}

// Name identifies the algorithm.
func (f *FedAvg) Name() string {
	if f.Mu > 0 {
		return "FedProx"
	}
	return "FedAvg"
}

// EpochsPerRound reports the local epochs per round.
func (f *FedAvg) EpochsPerRound() int { return f.LocalEpochs }

// LossyUploads marks FedAvg/FedProx weight uploads as tolerant of wire
// sparsification and delta framing: the server only ever averages them.
func (f *FedAvg) LossyUploads() bool { return true }

// Setup verifies homogeneity and initializes the global model from client 0
// so all clients start from one common initialization, as FedAvg assumes.
func (f *FedAvg) Setup(sim *fl.Simulation) error {
	if sim.NumClients() == 0 {
		return errors.New("baselines: no clients")
	}
	probe := sim.SetupIDs()
	n := nn.NumParams(sim.Client(probe[0]).Model.Params())
	for _, id := range probe[1:] {
		c := sim.Client(id)
		if nn.NumParams(c.Model.Params()) != n {
			return fmt.Errorf("baselines: %s requires homogeneous models; client %d differs", f.Name(), c.ID)
		}
	}
	f.global = nn.FlattenParams(sim.Client(probe[0]).Model.Params())
	return nil
}

// Round broadcasts, trains locally (with optional proximal term) and
// aggregates all weights. With grouping enabled (and no proximal term) the
// cohort trains as same-configuration lockstep groups with cross-client
// batched GEMMs — byte-identical to the per-client path by the grouping
// invariance contract (DESIGN.md §12).
func (f *FedAvg) Round(sim *fl.Simulation, round int, participants []int) error {
	if len(participants) == 0 {
		return nil
	}
	if f.GroupLocal() && fl.CohortGrouping() {
		return f.roundGrouped(sim, participants)
	}
	errs := make([]error, len(participants))
	flats := make([][]float64, len(participants))
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		errs[idx] = nn.SetFlatParams(c.Model.Params(), f.global)
		if errs[idx] != nil {
			return
		}
		sim.Ledger.RecordDown(c.ID, len(f.global))
		for e := 0; e < f.LocalEpochs; e++ {
			if f.Mu > 0 {
				f.trainEpochProx(c, sim.Cfg.BatchSize, f.global)
			} else {
				c.TrainEpochCE(sim.Cfg.BatchSize)
			}
		}
		flats[idx] = sim.Uplink(c.ID, nn.FlattenParams(c.Model.Params()))
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.global = weightedAverage(sim, participants, flats)
	return nil
}

// roundGrouped is the cohort-grouped sync round: broadcast per client, then
// one lockstep training pass per same-configuration group, then the same
// weighted aggregation over uploads in participant order.
func (f *FedAvg) roundGrouped(sim *fl.Simulation, participants []int) error {
	flats := make([][]float64, len(participants))
	slot := make(map[int]int, len(participants))
	for i, id := range participants {
		slot[id] = i
	}
	for _, grp := range fl.GroupCohort(sim, participants) {
		cs := make([]*fl.Client, len(grp))
		for i, id := range grp {
			c := sim.Client(id)
			if err := nn.SetFlatParams(c.Model.Params(), f.global); err != nil {
				return err
			}
			sim.Ledger.RecordDown(c.ID, len(f.global))
			cs[i] = c
		}
		for e := 0; e < f.LocalEpochs; e++ {
			fl.TrainEpochGroupCE(cs, sim.Cfg.BatchSize)
		}
		for i, id := range grp {
			flats[slot[id]] = sim.Uplink(cs[i].ID, nn.FlattenParams(cs[i].Model.Params()))
		}
	}
	f.global = weightedAverage(sim, participants, flats)
	return nil
}

// GroupLocal reports whether lockstep grouped training is valid: plain
// FedAvg groups; FedProx's proximal reference is per client, so it opts out.
func (f *FedAvg) GroupLocal() bool { return f.Mu == 0 }

// AsyncLocalGroup trains a same-configuration cohort slice in lockstep and
// returns each client's update, in order.
func (f *FedAvg) AsyncLocalGroup(sim *fl.Simulation, clients []int) ([]*fl.Update, error) {
	cs := make([]*fl.Client, len(clients))
	for i, id := range clients {
		cs[i] = sim.Client(id)
	}
	for e := 0; e < f.LocalEpochs; e++ {
		fl.TrainEpochGroupCE(cs, sim.Cfg.BatchSize)
	}
	us := make([]*fl.Update, len(clients))
	for i, id := range clients {
		flat, bytes := sim.QuantizeUplink(id, nn.FlattenParams(cs[i].Model.Params()))
		us[i] = &fl.Update{Client: id, Scale: fl.DataScale(cs[i]), Vecs: [][]float64{flat}, UpFloats: len(flat), UpBytes: bytes}
	}
	return us, nil
}

// AsyncSetup sizes the sharded aggregation state.
func (f *FedAvg) AsyncSetup(sim *fl.Simulation, sched *fl.SchedulerConfig) error {
	f.acc = fl.NewSharded(len(f.global), sched.Shards)
	f.mix = sched.MixRate
	f.snaps = make([][]float64, sim.NumClients())
	return nil
}

// AsyncDispatch broadcasts the committed global model to one client and,
// for FedProx, snapshots it as the proximal reference.
func (f *FedAvg) AsyncDispatch(sim *fl.Simulation, client int) error {
	c := sim.Client(client)
	if err := nn.SetFlatParams(c.Model.Params(), f.global); err != nil {
		return err
	}
	sim.Ledger.RecordDown(c.ID, len(f.global))
	if f.Mu > 0 {
		f.snaps[client] = append(f.snaps[client][:0], f.global...)
	}
	return nil
}

// AsyncLocal trains the client against its dispatch snapshot and uploads
// its full weights.
func (f *FedAvg) AsyncLocal(sim *fl.Simulation, client int) (*fl.Update, error) {
	c := sim.Client(client)
	for e := 0; e < f.LocalEpochs; e++ {
		if f.Mu > 0 {
			f.trainEpochProx(c, sim.Cfg.BatchSize, f.snaps[client])
		} else {
			c.TrainEpochCE(sim.Cfg.BatchSize)
		}
	}
	flat, bytes := sim.QuantizeUplink(client, nn.FlattenParams(c.Model.Params()))
	return &fl.Update{Client: client, Scale: fl.DataScale(c), Vecs: [][]float64{flat}, UpFloats: len(flat), UpBytes: bytes}, nil
}

// AsyncApply folds a staleness-weighted client model into the shards.
func (f *FedAvg) AsyncApply(sim *fl.Simulation, u *fl.Update) error {
	f.acc.Accumulate(u.Vecs[0], u.Weight)
	return nil
}

// AsyncCommit merges the buffered weighted average into the global model.
func (f *FedAvg) AsyncCommit(sim *fl.Simulation) error {
	f.acc.CommitInto(f.global, f.mix, nil)
	return nil
}

// Global returns a copy of the current global weight vector.
func (f *FedAvg) Global() []float64 { return append([]float64(nil), f.global...) }

// AlgoSnapshot captures the server state. Layout: Ints = [hasAcc]; Vecs =
// [global] plus, under async schedulers, the accumulator's sums and
// per-shard weights. Per-client proximal snapshots are not captured — after
// the engine's quiesce they are dead until the next dispatch rewrites them.
func (f *FedAvg) AlgoSnapshot(sim *fl.Simulation) (*fl.AlgoState, error) {
	st := &fl.AlgoState{Vecs: [][]float64{fl.CloneVec(f.global)}}
	hasAcc := int64(0)
	if f.acc != nil {
		hasAcc = 1
		sum, wsum := f.acc.Snapshot()
		st.Vecs = append(st.Vecs, sum, wsum)
	}
	st.Ints = []int64{hasAcc}
	return st, nil
}

// AlgoRestore is the inverse of AlgoSnapshot.
func (f *FedAvg) AlgoRestore(sim *fl.Simulation, st *fl.AlgoState) error {
	if len(st.Ints) != 1 || len(st.Vecs) < 1 {
		return fmt.Errorf("baselines: malformed %s state (%d ints, %d vecs)", f.Name(), len(st.Ints), len(st.Vecs))
	}
	if len(st.Vecs[0]) != len(f.global) {
		return fmt.Errorf("baselines: %s checkpoint has %d global weights, model has %d",
			f.Name(), len(st.Vecs[0]), len(f.global))
	}
	copy(f.global, st.Vecs[0])
	if st.Ints[0] == 1 {
		if f.acc == nil || len(st.Vecs) != 3 {
			return fmt.Errorf("baselines: %s checkpoint carries accumulator state for a different scheduler", f.Name())
		}
		return f.acc.RestoreState(st.Vecs[1], st.Vecs[2])
	}
	return nil
}

// trainEpochProx is one cross-entropy epoch with the FedProx proximal term
// against the given reference weights (the client's last download).
func (f *FedAvg) trainEpochProx(c *fl.Client, batchSize int, global []float64) {
	params := c.Model.Params()
	for _, b := range data.Batches(c.Train, batchSize, c.Rng) {
		x, y := c.AugmentedBatch(b)
		_, logits := c.Model.Forward(x, true)
		_, dlogits := loss.CrossEntropy(logits, y)
		dfeat := c.Model.Classifier.Backward(dlogits)
		c.Model.Extractor.Backward(dfeat)
		// FedProx uses (μ/2)‖w−w_g‖², i.e. Proximal with ρ = μ/2.
		loss.Proximal(params, global, f.Mu/2)
		c.Optimizer.Step(params)
		nn.ZeroGrads(params)
	}
}

// weightedAverage computes the |D_k|-weighted flat average of the selected
// clients' uploaded weight vectors.
func weightedAverage(sim *fl.Simulation, ids []int, flats [][]float64) []float64 {
	var total float64
	for _, id := range ids {
		total += float64(len(sim.Client(id).Train))
	}
	var out []float64
	for i, id := range ids {
		c := sim.Client(id)
		wgt := 1.0 / float64(len(ids))
		if total > 0 {
			wgt = float64(len(c.Train)) / total
		}
		flat := flats[i]
		if out == nil {
			out = make([]float64, len(flat))
		}
		for j, v := range flat {
			out[j] += wgt * v
		}
	}
	return out
}

func max1(v int) int {
	if v <= 0 {
		return 1
	}
	return v
}

// batchForward is a shared helper: forward a labeled (augmented) batch,
// returning features, logits and labels.
func batchForward(c *fl.Client, b []data.Example, train bool) (feats, logits *tensor.Tensor, y []int) {
	x, y := c.AugmentedBatch(b)
	feats, logits = c.Model.Forward(x, train)
	return feats, logits, y
}
