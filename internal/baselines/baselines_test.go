package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/xrand"
)

func fleet(t *testing.T, k int, arch func(int) models.Arch) []*fl.Client {
	t.Helper()
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, k)
	for i := range clients {
		m := models.New(models.Config{
			Arch: arch(i), InC: ds.C, InH: ds.H, InW: ds.W, FeatDim: 8, NumClasses: ds.NumClasses, Hidden: 12,
		}, xrand.New(int64(i+1)))
		clients[i] = &fl.Client{
			ID: i, Model: m, Train: parts[i].Train, Test: parts[i].Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rand.New(rand.NewSource(int64(i + 50))),
			Optimizer: opt.NewAdam(0.005),
		}
	}
	return clients
}

func mlp(int) models.Arch { return models.ArchMLP }
func het(i int) models.Arch {
	return models.HeterogeneousSet[i%len(models.HeterogeneousSet)]
}

func TestLocalOnlyNoTraffic(t *testing.T) {
	clients := fleet(t, 3, het)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 1})
	if _, err := sim.Run(NewLocalOnly(1)); err != nil {
		t.Fatal(err)
	}
	if sim.Ledger.TotalUp() != 0 || sim.Ledger.TotalDown() != 0 {
		t.Fatal("local baseline must not communicate")
	}
}

func TestFedAvgSynchronizesClients(t *testing.T) {
	clients := fleet(t, 3, mlp)
	algo := NewFedAvg(1)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, BatchSize: 8, Seed: 1})
	if err := algo.Setup(sim); err != nil {
		t.Fatal(err)
	}
	// All clients start from client 0's weights after the first download;
	// verify the aggregate equals the weighted average of the results.
	if err := algo.Round(sim, 1, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	global := algo.Global()
	var avg []float64
	for _, c := range clients {
		flat := nn.FlattenParams(c.Model.Params())
		if avg == nil {
			avg = make([]float64, len(flat))
		}
		for j, v := range flat {
			avg[j] += v / 3
		}
	}
	for j := range avg {
		if math.Abs(avg[j]-global[j]) > 1e-9 {
			t.Fatalf("global[%d] = %v, want %v", j, global[j], avg[j])
		}
	}
}

func TestFedAvgRejectsHeterogeneous(t *testing.T) {
	clients := fleet(t, 4, het)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(NewFedAvg(1)); err == nil {
		t.Fatal("FedAvg must reject heterogeneous fleets")
	}
}

func TestFedProxStaysCloserToGlobal(t *testing.T) {
	dist := func(mu float64) float64 {
		clients := fleet(t, 2, mlp)
		algo := NewFedProx(1, mu)
		sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, BatchSize: 8, Seed: 1})
		if err := algo.Setup(sim); err != nil {
			t.Fatal(err)
		}
		start := algo.Global()
		if err := algo.Round(sim, 1, []int{0, 1}); err != nil {
			t.Fatal(err)
		}
		flat := nn.FlattenParams(clients[0].Model.Params())
		var d float64
		for j := range flat {
			dd := flat[j] - start[j]
			d += dd * dd
		}
		return d
	}
	if dist(50) >= dist(0) {
		t.Fatal("large mu must keep weights closer to the global model")
	}
}

func TestFedProtoPrototypeAggregation(t *testing.T) {
	clients := fleet(t, 3, mlp)
	algo := NewFedProto(1, 1.0)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 1})
	if _, err := sim.Run(algo); err != nil {
		t.Fatal(err)
	}
	// After rounds, every class seen by some client must have a prototype
	// of the right dimension.
	seen := map[int]bool{}
	for _, c := range clients {
		for _, ex := range c.Train {
			seen[ex.Y] = true
		}
	}
	for cls := range seen {
		proto := algo.globalProtos[cls]
		if proto == nil {
			t.Fatalf("class %d has no global prototype", cls)
		}
		if len(proto) != 8 {
			t.Fatalf("prototype dim %d", len(proto))
		}
	}
	// Traffic: prototypes only, far less than model weights.
	modelBytes := int64(12 + 8*nn.NumParams(clients[0].Model.Params()))
	if up := sim.Ledger.ClientUp(0); up >= 2*modelBytes {
		t.Fatalf("FedProto traffic %d should be well below model sharing %d", up, modelBytes)
	}
}

func TestFedProtoRejectsMismatchedFeatureDims(t *testing.T) {
	clients := fleet(t, 2, mlp)
	clients[1].Model = models.New(models.Config{
		Arch: models.ArchMLP, InC: 1, InH: 12, InW: 12, FeatDim: 16, NumClasses: 10,
	}, xrand.New(5))
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(NewFedProto(1, 1)); err == nil {
		t.Fatal("FedProto must reject mismatched feature dims")
	}
}

func TestKTpFLNeedsPublicData(t *testing.T) {
	clients := fleet(t, 2, het)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(NewKTpFL(1, 1, 8)); err == nil {
		t.Fatal("KT-pFL without public data must fail setup")
	}
}

func TestKTpFLRunsAndCommunicatesSoftPredictions(t *testing.T) {
	clients := fleet(t, 4, het)
	algo := NewKTpFL(1, 2, 12)
	spec := data.SynthFashion(6, 4, 3)
	algo.SetPublic(data.PublicSplit(spec, 12, 77), 1, 12, 12)
	sim := fl.NewSimulation(clients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 1})
	if _, err := sim.Run(algo); err != nil {
		t.Fatal(err)
	}
	// Per-round per-client upload = 12 public examples × 10 classes floats.
	want := int64(2) * int64(12+8*12*10)
	if up := sim.Ledger.ClientUp(0); up != want {
		t.Fatalf("KT-pFL upload %d, want %d", up, want)
	}
	// Coefficient rows must be stochastic (sum to 1).
	for _, row := range algo.coeff {
		var s float64
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative knowledge coefficient")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("coefficient row sums to %v", s)
		}
	}
}

func TestKTpFLCoefficientsFavorSimilarClients(t *testing.T) {
	algo := NewKTpFL(1, 1, 4)
	algo.coeff = [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	// Distances: clients 0,1 identical; client 2 far away.
	d := [][]float64{
		{0, 0, 9},
		{0, 0, 9},
		{9, 9, 0},
	}
	algo.refreshCoeff([]int{0, 1, 2}, func(a, b int) float64 { return d[a][b] })
	if algo.coeff[0][1] <= algo.coeff[0][2] {
		t.Fatalf("similar client should get higher coefficient: %v", algo.coeff[0])
	}
}

func TestKTpFLWeightVariantHomogeneousOnly(t *testing.T) {
	hetClients := fleet(t, 4, het)
	sim := fl.NewSimulation(hetClients, fl.Config{Rounds: 1, Seed: 1})
	if _, err := sim.Run(NewKTpFLWeights(1)); err == nil {
		t.Fatal("+weight variant must reject heterogeneous fleets")
	}
	homClients := fleet(t, 3, mlp)
	sim2 := fl.NewSimulation(homClients, fl.Config{Rounds: 2, BatchSize: 8, Seed: 1})
	if _, err := sim2.Run(NewKTpFLWeights(1)); err != nil {
		t.Fatal(err)
	}
}

func TestEpochsPerRoundReporting(t *testing.T) {
	if NewLocalOnly(3).EpochsPerRound() != 3 {
		t.Fatal("LocalOnly epochs")
	}
	if NewKTpFL(20, 1, 4).EpochsPerRound() != 20 {
		t.Fatal("KT-pFL epochs (paper pacing: 20 per round)")
	}
	if NewFedAvg(0).EpochsPerRound() != 1 {
		t.Fatal("FedAvg must default to 1 epoch")
	}
}
