package baselines

import (
	"errors"
	"fmt"

	"repro/internal/fl"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// The wire-split halves of the comparison algorithms, mirroring their
// async decompositions with the server half fed by join payloads and wire
// vectors instead of live client models. See internal/core/wire.go for
// the pattern and internal/fl/wire.go for the interface contract.

var (
	_ fl.WireAlgorithm = (*LocalOnly)(nil)
	_ fl.WireAlgorithm = (*FedAvg)(nil)
	_ fl.WireAlgorithm = (*FedProto)(nil)
	_ fl.WireAlgorithm = (*KTpFL)(nil)
)

// ---- LocalOnly ----
//
// The baseline is the degenerate federation: no server state, no payloads.
// Node mode still schedules and evaluates it, so the learning curves of a
// multi-process deployment have their no-communication floor.

// WireInit sends nothing.
func (l *LocalOnly) WireInit(c *fl.Client) ([][]float64, error) { return nil, nil }

// WireSetup has no server state to build.
func (l *LocalOnly) WireSetup(joins []fl.WireJoin, shards int) error {
	if len(joins) == 0 {
		return errors.New("baselines: no clients")
	}
	return nil
}

// WireDispatch broadcasts nothing.
func (l *LocalOnly) WireDispatch(client int) ([][]float64, error) { return nil, nil }

// WireLocal trains locally and uploads a communication-free update.
func (l *LocalOnly) WireLocal(c *fl.Client, batchSize int, dispatch [][]float64) (*fl.Update, error) {
	for e := 0; e < l.LocalEpochs; e++ {
		c.TrainEpochCE(batchSize)
	}
	return &fl.Update{Client: c.ID}, nil
}

// WireApply is a no-op.
func (l *LocalOnly) WireApply(u *fl.Update) error { return nil }

// WireCommit is a no-op.
func (l *LocalOnly) WireCommit() error { return nil }

// ---- FedAvg / FedProx ----

// WireInit sends the client's full flat weights; the server adopts client
// 0's as the common initialization, exactly like Setup.
func (f *FedAvg) WireInit(c *fl.Client) ([][]float64, error) {
	return [][]float64{nn.FlattenParams(c.Model.Params())}, nil
}

// WireSetup verifies homogeneity and adopts client 0's weights as the
// global model.
func (f *FedAvg) WireSetup(joins []fl.WireJoin, shards int) error {
	if len(joins) == 0 {
		return errors.New("baselines: no clients")
	}
	n := joins[0].NumParams
	for _, j := range joins[1:] {
		if j.NumParams != n {
			return fmt.Errorf("baselines: %s requires homogeneous models; client %d differs", f.Name(), j.ID)
		}
	}
	if len(joins[0].Init) != 1 || len(joins[0].Init[0]) != n {
		return fmt.Errorf("baselines: client %d joined with a malformed init payload", joins[0].ID)
	}
	f.global = append([]float64(nil), joins[0].Init[0]...)
	f.acc = fl.NewSharded(len(f.global), shards)
	f.mix = 1
	return nil
}

// WireDispatch broadcasts the committed global model.
func (f *FedAvg) WireDispatch(client int) ([][]float64, error) {
	return [][]float64{f.global}, nil
}

// WireLocal installs the broadcast, trains (with the FedProx proximal
// term against the downloaded weights when Mu > 0) and uploads the full
// model.
func (f *FedAvg) WireLocal(c *fl.Client, batchSize int, dispatch [][]float64) (*fl.Update, error) {
	if len(dispatch) != 1 || dispatch[0] == nil {
		return nil, fmt.Errorf("baselines: %s expects one broadcast vector, got %d", f.Name(), len(dispatch))
	}
	if err := nn.SetFlatParams(c.Model.Params(), dispatch[0]); err != nil {
		return nil, err
	}
	for e := 0; e < f.LocalEpochs; e++ {
		if f.Mu > 0 {
			f.trainEpochProx(c, batchSize, dispatch[0])
		} else {
			c.TrainEpochCE(batchSize)
		}
	}
	flat := nn.FlattenParams(c.Model.Params())
	return &fl.Update{Client: c.ID, Scale: fl.DataScale(c), Vecs: [][]float64{flat}}, nil
}

// WireApply folds one weighted model into the shards.
func (f *FedAvg) WireApply(u *fl.Update) error {
	if len(u.Vecs) != 1 || len(u.Vecs[0]) != f.acc.Len() {
		return fmt.Errorf("baselines: client %d uploaded a malformed %s payload", u.Client, f.Name())
	}
	f.acc.Accumulate(u.Vecs[0], u.Weight)
	return nil
}

// WireCommit merges the round's weighted average into the global model.
func (f *FedAvg) WireCommit() error {
	f.acc.CommitInto(f.global, f.mix, nil)
	return nil
}

// ---- FedProto ----

// WireInit sends nothing: prototypes only exist after training.
func (p *FedProto) WireInit(c *fl.Client) ([][]float64, error) { return nil, nil }

// WireSetup verifies matching feature dimensions and sizes the per-class
// segmented accumulator from the joins' geometry.
func (p *FedProto) WireSetup(joins []fl.WireJoin, shards int) error {
	if len(joins) == 0 {
		return errors.New("baselines: no clients")
	}
	p.featDim = joins[0].FeatDim
	p.numClasses = joins[0].NumClasses
	if p.featDim <= 0 || p.numClasses <= 0 {
		return fmt.Errorf("baselines: FedProto needs positive feature dims and classes, client 0 declared %d×%d",
			p.featDim, p.numClasses)
	}
	for _, j := range joins[1:] {
		if j.FeatDim != p.featDim {
			return fmt.Errorf("baselines: FedProto needs equal feature dims; client %d has %d want %d",
				j.ID, j.FeatDim, p.featDim)
		}
	}
	p.globalProtos = make([][]float64, p.numClasses)
	segs := make([]int, p.numClasses)
	for i := range segs {
		segs[i] = p.featDim
	}
	p.acc = fl.NewSegmented(segs)
	p.committed = make([]float64, p.numClasses*p.featDim)
	p.touched = make([]bool, p.numClasses)
	p.mix = 1
	return nil
}

// WireDispatch broadcasts the current prototype table; classes nobody has
// reported yet travel as nil entries.
func (p *FedProto) WireDispatch(client int) ([][]float64, error) {
	table := make([][]float64, p.numClasses)
	for cls, proto := range p.globalProtos {
		if proto != nil {
			table[cls] = append([]float64(nil), proto...)
		}
	}
	return table, nil
}

// WireLocal trains with the prototype regularizer against the dispatched
// table and uploads fresh local prototypes with per-class sample counts.
func (p *FedProto) WireLocal(c *fl.Client, batchSize int, dispatch [][]float64) (*fl.Update, error) {
	// The client half derives its geometry from its own model: Setup never
	// runs client-side.
	p.featDim = c.Model.Cfg.FeatDim
	p.numClasses = c.Model.Cfg.NumClasses
	if len(dispatch) != 0 && len(dispatch) != p.numClasses {
		return nil, fmt.Errorf("baselines: FedProto broadcast has %d classes, model has %d", len(dispatch), p.numClasses)
	}
	table := dispatch
	if table == nil {
		table = make([][]float64, p.numClasses)
	}
	for cls, proto := range table {
		if proto != nil && len(proto) != p.featDim {
			return nil, fmt.Errorf("baselines: FedProto prototype %d has %d dims, model has %d", cls, len(proto), p.featDim)
		}
	}
	for e := 0; e < p.LocalEpochs; e++ {
		p.trainEpoch(c, batchSize, table)
	}
	protos, counts := p.localPrototypes(c, batchSize)
	return &fl.Update{Client: c.ID, Scale: 1, Vecs: protos, Counts: counts}, nil
}

// WireApply folds each reported class prototype into its segment shard,
// weighted by sample count.
func (p *FedProto) WireApply(u *fl.Update) error {
	if len(u.Vecs) > p.numClasses || len(u.Counts) != len(u.Vecs) {
		return fmt.Errorf("baselines: client %d uploaded a malformed FedProto report", u.Client)
	}
	for cls, proto := range u.Vecs {
		if proto == nil || u.Counts[cls] == 0 {
			continue
		}
		if len(proto) != p.featDim {
			return fmt.Errorf("baselines: client %d prototype %d has %d dims, server expects %d",
				u.Client, cls, len(proto), p.featDim)
		}
		p.acc.AccumulateSegment(cls, proto, u.Weight*float64(u.Counts[cls]))
	}
	return nil
}

// WireCommit merges per-class shards; unreported classes keep their
// previous prototype.
func (p *FedProto) WireCommit() error {
	p.acc.CommitInto(p.committed, p.mix, p.touched)
	for cls, ok := range p.touched {
		if ok {
			p.globalProtos[cls] = p.committed[cls*p.featDim : (cls+1)*p.featDim]
		}
	}
	return nil
}

// ---- KT-pFL ----

// WireInit sends nothing: knowledge reports only exist after training.
func (k *KTpFL) WireInit(c *fl.Client) ([][]float64, error) { return nil, nil }

// WireSetup initializes the coefficient matrix uniformly and sizes the
// pending-transfer tables, the wire form of Setup+AsyncSetup.
func (k *KTpFL) WireSetup(joins []fl.WireJoin, shards int) error {
	if len(joins) == 0 {
		return errors.New("baselines: no clients")
	}
	if !k.ShareWeights && k.publicX == nil {
		return errors.New("baselines: KT-pFL needs a public dataset (call SetPublic)")
	}
	if k.ShareWeights {
		n := joins[0].NumParams
		for _, j := range joins[1:] {
			if j.NumParams != n {
				return errors.New("baselines: KT-pFL+weight requires homogeneous models")
			}
		}
	}
	kk := len(joins)
	k.coeff = make([][]float64, kk)
	for i := range k.coeff {
		k.coeff[i] = make([]float64, kk)
		for j := range k.coeff[i] {
			k.coeff[i][j] = 1 / float64(kk)
		}
	}
	k.latest = make([][]float64, kk)
	k.latestW = make([]float64, kk)
	k.pending = make([][]float64, kk)
	k.staged = make([][]float64, kk)
	k.numCls = joins[0].NumClasses
	return nil
}

// WireDispatch hands the client its staged personalized transfer (soft
// target, or personalized weights for the "+weight" variant) from the
// last commit, consuming it; nothing is sent before the first commit.
func (k *KTpFL) WireDispatch(client int) ([][]float64, error) {
	p := k.pending[client]
	if p == nil {
		return nil, nil
	}
	k.pending[client] = nil
	return [][]float64{p}, nil
}

// WireLocal consumes any personalized transfer (distilling toward a soft
// target, or installing personalized weights), runs the supervised local
// epochs and uploads a fresh knowledge report.
func (k *KTpFL) WireLocal(c *fl.Client, batchSize int, dispatch [][]float64) (*fl.Update, error) {
	if len(dispatch) > 0 && dispatch[0] != nil {
		if k.ShareWeights {
			if err := nn.SetFlatParams(c.Model.Params(), dispatch[0]); err != nil {
				return nil, err
			}
		} else {
			m := len(k.public)
			numCls := c.Model.Cfg.NumClasses
			if m == 0 || len(dispatch[0]) != m*numCls {
				return nil, fmt.Errorf("baselines: KT-pFL transfer has %d values, want %d×%d", len(dispatch[0]), m, numCls)
			}
			target := tensor.New(m, numCls)
			target.SetFromFloat64s(dispatch[0])
			k.distill(c, target)
		}
	}
	for e := 0; e < k.LocalEpochs; e++ {
		c.TrainEpochCE(batchSize)
	}
	var report []float64
	if k.ShareWeights {
		report = nn.FlattenParams(c.Model.Params())
	} else {
		_, logits := c.Model.Forward(k.publicX, false)
		soft := loss.SoftmaxWithTemperature(logits, k.Temperature)
		report = soft.AppendFloat64s(nil)
	}
	return &fl.Update{Client: c.ID, Scale: 1, Vecs: [][]float64{report}}, nil
}

// WireApply files the client's latest report with its weight.
func (k *KTpFL) WireApply(u *fl.Update) error {
	if len(u.Vecs) != 1 || u.Vecs[0] == nil {
		return fmt.Errorf("baselines: client %d uploaded a malformed %s report", u.Client, k.Name())
	}
	if u.Client < 0 || u.Client >= len(k.latest) {
		return fmt.Errorf("baselines: %s report from unknown client %d", k.Name(), u.Client)
	}
	k.latest[u.Client] = u.Vecs[0]
	k.latestW[u.Client] = u.Weight
	return nil
}

// WireCommit refreshes the knowledge-coefficient matrix over everyone who
// has reported and stages each one's personalized transfer for its next
// dispatch — the same staged-transfer commit the async engine uses.
func (k *KTpFL) WireCommit() error {
	return k.AsyncCommit(nil)
}
