package baselines

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/nn"
)

// joinsFor builds the WireJoin table a server node would collect from
// these clients.
func joinsFor(t *testing.T, algo fl.WireAlgorithm, clients []*fl.Client) []fl.WireJoin {
	t.Helper()
	joins := make([]fl.WireJoin, len(clients))
	for i, c := range clients {
		init, err := algo.WireInit(c)
		if err != nil {
			t.Fatal(err)
		}
		joins[i] = fl.WireJoin{
			ID:            c.ID,
			TrainSize:     len(c.Train),
			FeatDim:       c.Model.Cfg.FeatDim,
			NumClasses:    c.Model.Cfg.NumClasses,
			NumParams:     nn.NumParams(c.Model.Params()),
			NumClassifier: nn.NumParams(c.Model.ClassifierParams()),
			Init:          init,
		}
	}
	return joins
}

// wireRound is one barrier round through the wire half: dispatch → local
// → apply (Weight = Scale) → commit, in client-id order.
func wireRound(t *testing.T, algo fl.WireAlgorithm, clients []*fl.Client, batch int) {
	t.Helper()
	updates := make([]*fl.Update, len(clients))
	for i, c := range clients {
		vecs, err := algo.WireDispatch(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		u, err := algo.WireLocal(c, batch, vecs)
		if err != nil {
			t.Fatal(err)
		}
		updates[i] = u
	}
	for _, u := range updates {
		u.Weight = u.Scale
		if err := algo.WireApply(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := algo.WireCommit(); err != nil {
		t.Fatal(err)
	}
}

// TestFedAvgWireMatchesSyncRounds: FedAvg through the wire split must
// match the monolithic sync rounds on an identical fleet to floating-
// point tolerance (aggregation moves from a one-shot weighted average to
// the sharded accumulator; the weights are the same).
func TestFedAvgWireMatchesSyncRounds(t *testing.T) {
	const rounds, batch = 2, 8
	syncClients := fleet(t, 3, mlp)
	sim := fl.NewSimulation(syncClients, fl.Config{Rounds: rounds, BatchSize: batch, Seed: 1})
	syncAlgo := NewFedAvg(1)
	if err := syncAlgo.Setup(sim); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		if err := syncAlgo.Round(sim, r, []int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}

	wireClients := fleet(t, 3, mlp)
	wireAlgo := NewFedAvg(1)
	if err := wireAlgo.WireSetup(joinsFor(t, wireAlgo, wireClients), 4); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		wireRound(t, wireAlgo, wireClients, batch)
	}

	sg, wg := syncAlgo.Global(), wireAlgo.Global()
	for j := range sg {
		if math.Abs(sg[j]-wg[j]) > 1e-9 {
			t.Fatalf("global[%d]: sync %v vs wire %v", j, sg[j], wg[j])
		}
	}
}

// TestFedProtoWireMatchesSyncRounds: the prototype table after wire
// rounds must match the monolithic aggregation (per-class sample-count
// weighting), including nil entries for never-reported classes.
func TestFedProtoWireMatchesSyncRounds(t *testing.T) {
	const rounds, batch = 2, 8
	syncClients := fleet(t, 3, het)
	sim := fl.NewSimulation(syncClients, fl.Config{Rounds: rounds, BatchSize: batch, Seed: 1})
	syncAlgo := NewFedProto(1, 1.0)
	if err := syncAlgo.Setup(sim); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		if err := syncAlgo.Round(sim, r, []int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}

	wireClients := fleet(t, 3, het)
	wireAlgo := NewFedProto(1, 1.0)
	if err := wireAlgo.WireSetup(joinsFor(t, wireAlgo, wireClients), 4); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		wireRound(t, wireAlgo, wireClients, batch)
	}

	for cls := range syncAlgo.globalProtos {
		sp, wp := syncAlgo.globalProtos[cls], wireAlgo.globalProtos[cls]
		if (sp == nil) != (wp == nil) {
			t.Fatalf("class %d: sync nil=%v, wire nil=%v", cls, sp == nil, wp == nil)
		}
		for j := range sp {
			if math.Abs(sp[j]-wp[j]) > 1e-9 {
				t.Fatalf("prototype %d[%d]: sync %v vs wire %v", cls, j, sp[j], wp[j])
			}
		}
	}
}

// TestLocalOnlyWireIsCommunicationFree: the baseline's wire half sends
// and receives nothing but still trains.
func TestLocalOnlyWireIsCommunicationFree(t *testing.T) {
	clients := fleet(t, 2, het)
	algo := NewLocalOnly(1)
	if err := algo.WireSetup(joinsFor(t, algo, clients), 4); err != nil {
		t.Fatal(err)
	}
	before := nn.FlattenParams(clients[0].Model.Params())
	before = append([]float64(nil), before...)
	vecs, err := algo.WireDispatch(0)
	if err != nil || vecs != nil {
		t.Fatalf("baseline dispatch = (%v, %v), want empty", vecs, err)
	}
	u, err := algo.WireLocal(clients[0], 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Vecs != nil || u.Scale != 0 {
		t.Fatalf("baseline update carries a payload: %+v", u)
	}
	after := nn.FlattenParams(clients[0].Model.Params())
	moved := false
	for j := range after {
		if after[j] != before[j] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("baseline wire round did not train the model")
	}
}

// TestKTpFLWireStagesTransfers: after a commit with two reports, each
// reporter's next dispatch carries a personalized transfer exactly once.
func TestKTpFLWireStagesTransfers(t *testing.T) {
	clients := fleet(t, 3, het)
	algo := NewKTpFL(1, 1, 12)
	algo.SetPublic(data.PublicSplit(data.SynthFashion(6, 4, 3), 12, 77), 1, 12, 12)
	if err := algo.WireSetup(joinsFor(t, algo, clients), 4); err != nil {
		t.Fatal(err)
	}
	// Round 1: no transfers exist yet.
	for _, c := range clients {
		vecs, err := algo.WireDispatch(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		if vecs != nil {
			t.Fatalf("client %d received a transfer before any commit", c.ID)
		}
		u, err := algo.WireLocal(c, 8, vecs)
		if err != nil {
			t.Fatal(err)
		}
		u.Weight = u.Scale
		if err := algo.WireApply(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := algo.WireCommit(); err != nil {
		t.Fatal(err)
	}
	// Round 2: every reporter has a staged transfer, consumed on dispatch.
	for _, c := range clients {
		vecs, err := algo.WireDispatch(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(vecs) != 1 || vecs[0] == nil {
			t.Fatalf("client %d has no staged transfer after the commit", c.ID)
		}
		if again, _ := algo.WireDispatch(c.ID); again != nil {
			t.Fatalf("client %d transfer was not consumed by dispatch", c.ID)
		}
		if len(vecs[0]) != len(algo.public)*clients[0].Model.Cfg.NumClasses {
			t.Fatalf("transfer has %d values", len(vecs[0]))
		}
	}
}
