package baselines

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// KTpFL implements parameterized knowledge transfer for personalized
// federated learning (Zhang et al. 2021), the paper's strongest
// heterogeneous competitor. Per round:
//
//  1. Clients run LocalEpochs of supervised training (the original uses 20
//     epochs per round; our scaled default is configurable and the
//     learning-curve x-axis accounts for it via EpochsPerRound).
//  2. Clients evaluate soft predictions on a shared public dataset and
//     upload them.
//  3. The server refreshes the knowledge coefficient matrix c where
//     c[k][l] ∝ exp(−‖S_k − S_l‖²/σ²) (one similarity refresh per round;
//     the original learns c by gradient descent, which converges to the
//     same similarity-weighted fixed point at our scales — see DESIGN.md).
//  4. Each client receives its personalized soft target T_k = Σ_l c[k][l]·S_l
//     and distills toward it on the public data with temperature-scaled KL.
//
// With ShareWeights (the "+weight" rows of Table 3, homogeneous models
// only), weights replace soft predictions: the server maintains one
// personalized global model per client, w̃_k = Σ_l c[k][l]·w_l with c from
// pairwise weight similarity, and clients download w̃_k directly.
type KTpFL struct {
	LocalEpochs  int
	DistillSteps int     // gradient steps of public-data distillation
	Temperature  float64 // distillation temperature
	Sigma        float64 // similarity bandwidth for the coefficient matrix
	PublicSize   int
	ShareWeights bool

	public   []data.Example
	publicX  *tensor.Tensor
	coeff    [][]float64 // knowledge coefficient matrix
	initOnce bool

	// Async-scheduler state (pending-transfer pattern): the server keeps
	// each client's latest report (soft predictions, or flat weights for
	// the "+weight" variant) with its staleness weight; commits refresh
	// the coefficient matrix over whoever has reported and stage each
	// client's personalized transfer, which the client consumes at its
	// next dispatch. Knowledge thus flows without ever writing to a model
	// that is training.
	latest  [][]float64
	latestW []float64
	pending [][]float64
	staged  [][]float64 // moved pending → staged at dispatch, consumed by AsyncLocal
	numCls  int
}

// NewKTpFL builds the soft-prediction variant.
func NewKTpFL(localEpochs, distillSteps, publicSize int) *KTpFL {
	return &KTpFL{
		LocalEpochs:  max1(localEpochs),
		DistillSteps: max1(distillSteps),
		Temperature:  2.0,
		Sigma:        1.0,
		PublicSize:   publicSize,
	}
}

// NewKTpFLWeights builds the "+weight" variant for homogeneous models.
func NewKTpFLWeights(localEpochs int) *KTpFL {
	k := NewKTpFL(localEpochs, 1, 0)
	k.ShareWeights = true
	return k
}

// Name identifies the algorithm.
func (k *KTpFL) Name() string {
	if k.ShareWeights {
		return "KT-pFL+weight"
	}
	return "KT-pFL"
}

// EpochsPerRound reports local epochs per round (distillation happens on
// the small public set and is not counted, matching the paper's x-axis).
func (k *KTpFL) EpochsPerRound() int { return k.LocalEpochs }

// SetPublic installs the shared public dataset (required for the
// soft-prediction variant).
func (k *KTpFL) SetPublic(public []data.Example, c, h, w int) {
	k.public = public
	k.publicX, _ = data.BatchTensor(public, c, h, w)
}

// Setup validates configuration and initializes the coefficient matrix
// uniformly.
func (k *KTpFL) Setup(sim *fl.Simulation) error {
	if sim.NumClients() == 0 {
		return errors.New("baselines: no clients")
	}
	if !k.ShareWeights && k.publicX == nil {
		return errors.New("baselines: KT-pFL needs a public dataset (call SetPublic)")
	}
	if k.ShareWeights {
		probe := sim.SetupIDs()
		n := nn.NumParams(sim.Client(probe[0]).Model.Params())
		for _, id := range probe[1:] {
			if nn.NumParams(sim.Client(id).Model.Params()) != n {
				return errors.New("baselines: KT-pFL+weight requires homogeneous models")
			}
		}
	}
	// The dense N×N knowledge-coefficient matrix is inherent to KT-pFL; it
	// caps the fleet sizes the method is practical at regardless of lazy
	// client materialization.
	kk := sim.NumClients()
	k.coeff = make([][]float64, kk)
	for i := range k.coeff {
		k.coeff[i] = make([]float64, kk)
		for j := range k.coeff[i] {
			k.coeff[i][j] = 1 / float64(kk)
		}
	}
	return nil
}

// Round runs local training, knowledge-coefficient refresh and transfer.
func (k *KTpFL) Round(sim *fl.Simulation, round int, participants []int) error {
	if len(participants) == 0 {
		return nil
	}
	// 1. Local supervised training.
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		for e := 0; e < k.LocalEpochs; e++ {
			c.TrainEpochCE(sim.Cfg.BatchSize)
		}
	})
	if k.ShareWeights {
		return k.weightTransfer(sim, participants)
	}
	return k.softTransfer(sim, participants)
}

// softTransfer is the heterogeneous path: soft predictions on public data.
func (k *KTpFL) softTransfer(sim *fl.Simulation, participants []int) error {
	m := len(k.public)
	numClasses := sim.Client(participants[0]).Model.Cfg.NumClasses
	soft := make([]*tensor.Tensor, len(participants))
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		_, logits := c.Model.Forward(k.publicX, false)
		// Soft predictions widen to float64 bookkeeping before hitting the
		// wire: the coefficient matrix and personalized targets are server
		// state (widening f32 predictions is exact, so the f64 path is
		// unchanged and the f32 path loses nothing).
		soft[idx] = loss.SoftmaxWithTemperature(logits, k.Temperature).AsType(tensor.F64)
		sim.Uplink(c.ID, soft[idx].Data)
	})
	// 2. Refresh knowledge coefficients from pairwise prediction similarity.
	k.refreshCoeff(participants, func(a, b int) float64 {
		d := tensor.Sub(soft[a], soft[b])
		return d.SumSquares() / float64(m)
	})
	// 3. Personalized targets and distillation.
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		target := tensor.New(m, numClasses)
		for j := range participants {
			target.AxpyInPlace(k.coeff[participants[idx]][participants[j]], soft[j])
		}
		// Renormalize rows (coefficients over participants may not sum to 1).
		for i := 0; i < m; i++ {
			row := target.Row(i)
			var s float64
			for _, v := range row {
				s += v
			}
			if s > 0 {
				for jj := range row {
					row[jj] /= s
				}
			}
		}
		sim.Ledger.RecordDown(c.ID, m*numClasses)
		k.distill(c, target)
	})
	return nil
}

// weightTransfer is the homogeneous "+weight" path.
func (k *KTpFL) weightTransfer(sim *fl.Simulation, participants []int) error {
	flats := make([][]float64, len(participants))
	for idx, id := range participants {
		c := sim.Client(id)
		flats[idx] = sim.Uplink(c.ID, nn.FlattenParams(c.Model.Params()))
	}
	k.refreshCoeff(participants, func(a, b int) float64 {
		var s float64
		for j := range flats[a] {
			d := flats[a][j] - flats[b][j]
			s += d * d
		}
		return s / float64(len(flats[a]))
	})
	errs := make([]error, len(participants))
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		personalized := make([]float64, len(flats[idx]))
		var wsum float64
		for j := range participants {
			w := k.coeff[participants[idx]][participants[j]]
			wsum += w
			for p, v := range flats[j] {
				personalized[p] += w * v
			}
		}
		if wsum > 0 {
			inv := 1 / wsum
			for p := range personalized {
				personalized[p] *= inv
			}
		}
		errs[idx] = nn.SetFlatParams(c.Model.Params(), personalized)
		sim.Ledger.RecordDown(c.ID, len(personalized))
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// refreshCoeff recomputes coefficient rows for the participating clients
// from a pairwise distance function over participant indices.
func (k *KTpFL) refreshCoeff(participants []int, dist func(a, b int) float64) {
	k.refreshCoeffWeighted(participants, dist, nil)
}

// refreshCoeffWeighted additionally multiplies each source l's similarity
// by weight w[l] before row normalization — under async schedulers, stale
// reports contribute less knowledge.
func (k *KTpFL) refreshCoeffWeighted(participants []int, dist func(a, b int) float64, w []float64) {
	sigma2 := k.Sigma * k.Sigma
	for a := range participants {
		row := make([]float64, len(participants))
		var sum float64
		for b := range participants {
			v := math.Exp(-dist(a, b) / sigma2)
			if w != nil {
				v *= w[b]
			}
			row[b] = v
			sum += v
		}
		if sum == 0 {
			continue
		}
		for b := range participants {
			k.coeff[participants[a]][participants[b]] = row[b] / sum
		}
	}
}

// AsyncSetup sizes the pending-transfer tables.
func (k *KTpFL) AsyncSetup(sim *fl.Simulation, sched *fl.SchedulerConfig) error {
	n := sim.NumClients()
	k.latest = make([][]float64, n)
	k.latestW = make([]float64, n)
	k.pending = make([][]float64, n)
	k.staged = make([][]float64, n)
	k.numCls = sim.Client(0).Model.Cfg.NumClasses
	return nil
}

// AsyncDispatch hands the client its staged personalized transfer (soft
// target or personalized weights) computed at the last commit.
func (k *KTpFL) AsyncDispatch(sim *fl.Simulation, client int) error {
	if k.pending[client] == nil {
		return nil
	}
	k.staged[client] = k.pending[client]
	k.pending[client] = nil
	c := sim.Client(client)
	if k.ShareWeights {
		sim.Ledger.RecordDown(c.ID, len(k.staged[client]))
		err := nn.SetFlatParams(c.Model.Params(), k.staged[client])
		k.staged[client] = nil
		return err
	}
	sim.Ledger.RecordDown(c.ID, len(k.public)*k.numCls)
	return nil
}

// AsyncLocal distills toward any staged target, runs supervised local
// epochs, and uploads a fresh report (soft predictions, or flat weights for
// the "+weight" variant).
func (k *KTpFL) AsyncLocal(sim *fl.Simulation, client int) (*fl.Update, error) {
	c := sim.Client(client)
	if !k.ShareWeights && k.staged[client] != nil {
		m := len(k.public)
		target := tensor.New(m, k.numCls)
		target.SetFromFloat64s(k.staged[client])
		k.staged[client] = nil
		k.distill(c, target)
	}
	for e := 0; e < k.LocalEpochs; e++ {
		c.TrainEpochCE(sim.Cfg.BatchSize)
	}
	var report []float64
	if k.ShareWeights {
		report = sim.Quantize(nn.FlattenParams(c.Model.Params()))
	} else {
		_, logits := c.Model.Forward(k.publicX, false)
		soft := loss.SoftmaxWithTemperature(logits, k.Temperature)
		report = sim.Quantize(soft.AppendFloat64s(nil))
	}
	return &fl.Update{Client: client, Scale: 1, Vecs: [][]float64{report}, UpFloats: len(report)}, nil
}

// AsyncApply files the client's latest report with its staleness weight.
func (k *KTpFL) AsyncApply(sim *fl.Simulation, u *fl.Update) error {
	k.latest[u.Client] = u.Vecs[0]
	k.latestW[u.Client] = u.Weight
	return nil
}

// AsyncCommit refreshes the knowledge-coefficient matrix over every client
// that has reported (similarities scaled by staleness weight) and stages
// each one's personalized transfer for its next dispatch.
func (k *KTpFL) AsyncCommit(sim *fl.Simulation) error {
	cohort := make([]int, 0, len(k.latest))
	for id, rep := range k.latest {
		if rep != nil {
			cohort = append(cohort, id)
		}
	}
	if len(cohort) < 2 {
		return nil
	}
	w := make([]float64, len(cohort))
	for i, id := range cohort {
		w[i] = k.latestW[id]
	}
	dim := float64(len(k.latest[cohort[0]]))
	dist := func(a, b int) float64 {
		va, vb := k.latest[cohort[a]], k.latest[cohort[b]]
		var s float64
		for j := range va {
			d := va[j] - vb[j]
			s += d * d
		}
		return s / dim
	}
	k.refreshCoeffWeighted(cohort, dist, w)
	for _, id := range cohort {
		mix := make([]float64, len(k.latest[id]))
		var wsum float64
		for _, l := range cohort {
			cw := k.coeff[id][l]
			wsum += cw
			for j, v := range k.latest[l] {
				mix[j] += cw * v
			}
		}
		if k.ShareWeights {
			if wsum > 0 {
				inv := 1 / wsum
				for j := range mix {
					mix[j] *= inv
				}
			}
		} else {
			// Renormalize each public-example row to a distribution.
			m := len(k.public)
			for i := 0; i < m; i++ {
				row := mix[i*k.numCls : (i+1)*k.numCls]
				var s float64
				for _, v := range row {
					s += v
				}
				if s > 0 {
					for j := range row {
						row[j] /= s
					}
				}
			}
		}
		k.pending[id] = mix
	}
	return nil
}

// AlgoSnapshot captures the server state. Layout: Ints = [k, hasAsync];
// Vecs = the k coefficient-matrix rows plus, under async schedulers, the k
// latest reports (nil-able), the k pending transfers (nil-able) and one
// k-vector of staleness weights. Staged transfers are not captured: after
// the engine's quiesce every dispatched client has consumed its stage.
func (k *KTpFL) AlgoSnapshot(sim *fl.Simulation) (*fl.AlgoState, error) {
	n := len(k.coeff)
	st := &fl.AlgoState{}
	for _, row := range k.coeff {
		st.Vecs = append(st.Vecs, fl.CloneVec(row))
	}
	hasAsync := int64(0)
	if k.latest != nil {
		hasAsync = 1
		for _, v := range k.latest {
			st.Vecs = append(st.Vecs, fl.CloneVec(v))
		}
		for _, v := range k.pending {
			st.Vecs = append(st.Vecs, fl.CloneVec(v))
		}
		st.Vecs = append(st.Vecs, fl.CloneVec(k.latestW))
	}
	st.Ints = []int64{int64(n), hasAsync}
	return st, nil
}

// AlgoRestore is the inverse of AlgoSnapshot.
func (k *KTpFL) AlgoRestore(sim *fl.Simulation, st *fl.AlgoState) error {
	n := len(k.coeff)
	if len(st.Ints) != 2 || int(st.Ints[0]) != n || len(st.Vecs) < n {
		return fmt.Errorf("baselines: malformed %s state (%d ints, %d vecs, %d clients)",
			k.Name(), len(st.Ints), len(st.Vecs), n)
	}
	for i := 0; i < n; i++ {
		if len(st.Vecs[i]) != n {
			return fmt.Errorf("baselines: %s checkpoint coefficient row %d has %d entries, want %d",
				k.Name(), i, len(st.Vecs[i]), n)
		}
		copy(k.coeff[i], st.Vecs[i])
	}
	if st.Ints[1] == 1 {
		if k.latest == nil || len(st.Vecs) != 3*n+1 {
			return fmt.Errorf("baselines: %s checkpoint carries async state for a different scheduler", k.Name())
		}
		for i := 0; i < n; i++ {
			k.latest[i] = fl.CloneVec(st.Vecs[n+i])
			k.pending[i] = fl.CloneVec(st.Vecs[2*n+i])
			k.staged[i] = nil
		}
		w := st.Vecs[3*n]
		if len(w) != n {
			return fmt.Errorf("baselines: %s checkpoint staleness weights have %d entries, want %d", k.Name(), len(w), n)
		}
		copy(k.latestW, w)
	}
	return nil
}

// distill runs DistillSteps of temperature-scaled KL toward the target on
// the public set. Targets are staged as float64 server state and narrow to
// the model dtype here, once, before the distillation loop.
func (k *KTpFL) distill(c *fl.Client, target *tensor.Tensor) {
	params := c.Model.Params()
	target = target.AsType(c.DType())
	for s := 0; s < k.DistillSteps; s++ {
		_, logits := c.Model.Forward(k.publicX, true)
		_, dlogits := loss.KLDistill(logits, target, k.Temperature)
		dfeat := c.Model.Classifier.Backward(dlogits)
		c.Model.Extractor.Backward(dfeat)
		c.Optimizer.Step(params)
		nn.ZeroGrads(params)
	}
}
