package baselines

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FedProto implements federated prototype learning (Tan et al. 2021).
// Instead of weights, clients exchange per-class feature prototypes (mean
// extractor outputs). The server averages prototypes across clients, and
// each client's local objective adds a regularizer pulling its features
// toward the global prototype of their class:
//
//	L_k = L_CE + λ·‖F_k(x) − proto_y‖²
//
// Heterogeneous extractors are allowed as long as the feature dimension
// matches (the paper notes FedProto "requires the prototypes to be the same
// dimensions", its milder heterogeneity assumption).
type FedProto struct {
	LocalEpochs int
	// Lambda weights the prototype regularizer.
	Lambda float64

	featDim    int
	numClasses int
	// globalProtos[c] is nil until some client has reported class c.
	globalProtos [][]float64

	// Async-scheduler state: a class-segmented sharded accumulator (each
	// class aggregates concurrently under its own weight), the committed
	// prototype table as one flat buffer, and per-client broadcast
	// snapshots so local training regularizes against the prototypes the
	// client actually downloaded.
	acc       *fl.ShardedAccumulator
	committed []float64
	touched   []bool
	mix       float64
	snaps     [][][]float64
}

// NewFedProto builds the algorithm.
func NewFedProto(epochs int, lambda float64) *FedProto {
	return &FedProto{LocalEpochs: max1(epochs), Lambda: lambda}
}

// Name identifies the algorithm.
func (p *FedProto) Name() string { return "FedProto" }

// EpochsPerRound reports the local epochs per round.
func (p *FedProto) EpochsPerRound() int { return p.LocalEpochs }

// Setup verifies that all feature dimensions agree.
func (p *FedProto) Setup(sim *fl.Simulation) error {
	if sim.NumClients() == 0 {
		return errors.New("baselines: no clients")
	}
	probe := sim.SetupIDs()
	first := sim.Client(probe[0])
	p.featDim = first.Model.Cfg.FeatDim
	p.numClasses = first.Model.Cfg.NumClasses
	for _, id := range probe[1:] {
		c := sim.Client(id)
		if c.Model.Cfg.FeatDim != p.featDim {
			return fmt.Errorf("baselines: FedProto needs equal feature dims; client %d has %d want %d",
				c.ID, c.Model.Cfg.FeatDim, p.featDim)
		}
	}
	p.globalProtos = make([][]float64, p.numClasses)
	return nil
}

// Round trains participants with the prototype regularizer, then aggregates
// their fresh local prototypes weighted by per-class sample counts.
func (p *FedProto) Round(sim *fl.Simulation, round int, participants []int) error {
	type report struct {
		protos [][]float64
		counts []int
	}
	reports := make([]report, len(participants))
	fl.ParallelClients(len(participants), func(idx int) {
		c := sim.Client(participants[idx])
		for e := 0; e < p.LocalEpochs; e++ {
			p.trainEpoch(c, sim.Cfg.BatchSize, p.globalProtos)
		}
		protos, counts := p.localPrototypes(c, sim.Cfg.BatchSize)
		reports[idx] = report{protos, counts}
		sim.Ledger.RecordUp(c.ID, p.quantizeProtos(sim, protos))
		sim.Ledger.RecordDown(c.ID, p.downloadFloats())
	})
	// Aggregate prototypes per class, weighted by sample counts.
	sums := make([][]float64, p.numClasses)
	totals := make([]int, p.numClasses)
	for _, r := range reports {
		for cls, proto := range r.protos {
			if proto == nil {
				continue
			}
			if sums[cls] == nil {
				sums[cls] = make([]float64, p.featDim)
			}
			for j, v := range proto {
				sums[cls][j] += v * float64(r.counts[cls])
			}
			totals[cls] += r.counts[cls]
		}
	}
	for cls := range sums {
		if totals[cls] == 0 {
			continue
		}
		proto := sums[cls]
		inv := 1 / float64(totals[cls])
		for j := range proto {
			proto[j] *= inv
		}
		p.globalProtos[cls] = proto
	}
	return nil
}

// downloadFloats counts the floats in the current global prototype table.
func (p *FedProto) downloadFloats() int {
	n := 0
	for _, proto := range p.globalProtos {
		if proto != nil {
			n += p.featDim
		}
	}
	return n
}

// trainEpoch runs one epoch of CE + prototype regularization against the
// given prototype table (the global table in sync rounds, the client's
// dispatch snapshot under async schedulers).
func (p *FedProto) trainEpoch(c *fl.Client, batchSize int, protos [][]float64) {
	params := c.Model.Params()
	for _, b := range data.Batches(c.Train, batchSize, c.Rng) {
		feats, logits, y := batchForward(c, b, true)
		_, dlogits := loss.CrossEntropy(logits, y)
		dfeat := c.Model.Classifier.Backward(dlogits)
		// Prototype pull: d/df λ‖f − proto‖²/N = 2λ(f − proto)/N. Features
		// and their gradient are model-dtype; the prototype table is float64
		// bookkeeping, widened per element inside the pull.
		scale := 2 * p.Lambda / float64(feats.Rows())
		if feats.DT.Backing() == tensor.F32 {
			protoPull(tensor.Of[float32](feats), tensor.Of[float32](dfeat), protos, y, scale, feats.Cols())
		} else {
			protoPull(feats.Data, tensor.Of[float64](dfeat), protos, y, scale, feats.Cols())
		}
		c.Model.Extractor.Backward(dfeat)
		c.Optimizer.Step(params)
		nn.ZeroGrads(params)
	}
}

// AsyncSetup builds the class-segmented aggregation state: shard s is class
// s's prototype, so classes aggregate concurrently under per-class weights.
func (p *FedProto) AsyncSetup(sim *fl.Simulation, sched *fl.SchedulerConfig) error {
	segs := make([]int, p.numClasses)
	for i := range segs {
		segs[i] = p.featDim
	}
	p.acc = fl.NewSegmented(segs)
	p.committed = make([]float64, p.numClasses*p.featDim)
	p.touched = make([]bool, p.numClasses)
	p.mix = sched.MixRate
	p.snaps = make([][][]float64, sim.NumClients())
	return nil
}

// AsyncDispatch snapshots the committed prototype table down to the client.
func (p *FedProto) AsyncDispatch(sim *fl.Simulation, client int) error {
	snap := p.snaps[client]
	if snap == nil {
		snap = make([][]float64, p.numClasses)
	}
	for cls := range snap {
		if proto := p.globalProtos[cls]; proto != nil {
			snap[cls] = append(snap[cls][:0], proto...)
		} else {
			snap[cls] = nil
		}
	}
	p.snaps[client] = snap
	sim.Ledger.RecordDown(sim.ClientID(client), p.downloadFloats())
	return nil
}

// AsyncLocal trains with the snapshot regularizer and uploads fresh local
// prototypes with their per-class sample counts.
func (p *FedProto) AsyncLocal(sim *fl.Simulation, client int) (*fl.Update, error) {
	c := sim.Client(client)
	for e := 0; e < p.LocalEpochs; e++ {
		p.trainEpoch(c, sim.Cfg.BatchSize, p.snaps[client])
	}
	protos, counts := p.localPrototypes(c, sim.Cfg.BatchSize)
	sent := p.quantizeProtos(sim, protos)
	return &fl.Update{Client: client, Scale: 1, Vecs: protos, Counts: counts, UpFloats: sent}, nil
}

// quantizeProtos passes each reported class prototype through the wire
// codec and returns the uploaded float count.
func (p *FedProto) quantizeProtos(sim *fl.Simulation, protos [][]float64) int {
	sent := 0
	for cls := range protos {
		if protos[cls] != nil {
			comm.RoundTripInPlace(sim.Cfg.Codec, protos[cls])
			sent += p.featDim
		}
	}
	return sent
}

// AsyncApply folds each reported class prototype into its shard, weighted
// by sample count and staleness decay.
func (p *FedProto) AsyncApply(sim *fl.Simulation, u *fl.Update) error {
	for cls, proto := range u.Vecs {
		if proto == nil || u.Counts[cls] == 0 {
			continue
		}
		p.acc.AccumulateSegment(cls, proto, u.Weight*float64(u.Counts[cls]))
	}
	return nil
}

// AsyncCommit merges per-class shards; classes nobody reported keep their
// previous prototype.
func (p *FedProto) AsyncCommit(sim *fl.Simulation) error {
	p.acc.CommitInto(p.committed, p.mix, p.touched)
	for cls, ok := range p.touched {
		if ok {
			p.globalProtos[cls] = p.committed[cls*p.featDim : (cls+1)*p.featDim]
		}
	}
	return nil
}

// AlgoSnapshot captures the server state. Layout: Ints = [numClasses,
// hasAcc]; Vecs = numClasses global prototypes (nil for never-reported
// classes) plus, under async schedulers, the committed buffer, the touched
// flags (0/1) and the class-segmented accumulator's sums and weights.
// Per-client dispatch snapshots are not captured — dead after the quiesce.
func (p *FedProto) AlgoSnapshot(sim *fl.Simulation) (*fl.AlgoState, error) {
	st := &fl.AlgoState{}
	for _, proto := range p.globalProtos {
		st.Vecs = append(st.Vecs, fl.CloneVec(proto))
	}
	hasAcc := int64(0)
	if p.acc != nil {
		hasAcc = 1
		touched := make([]float64, len(p.touched))
		for i, ok := range p.touched {
			if ok {
				touched[i] = 1
			}
		}
		sum, wsum := p.acc.Snapshot()
		st.Vecs = append(st.Vecs, fl.CloneVec(p.committed), touched, sum, wsum)
	}
	st.Ints = []int64{int64(p.numClasses), hasAcc}
	return st, nil
}

// AlgoRestore is the inverse of AlgoSnapshot.
func (p *FedProto) AlgoRestore(sim *fl.Simulation, st *fl.AlgoState) error {
	if len(st.Ints) != 2 || int(st.Ints[0]) != p.numClasses || len(st.Vecs) < p.numClasses {
		return fmt.Errorf("baselines: malformed FedProto state (%d ints, %d vecs, %d classes)",
			len(st.Ints), len(st.Vecs), p.numClasses)
	}
	for cls := 0; cls < p.numClasses; cls++ {
		proto := st.Vecs[cls]
		if proto != nil && len(proto) != p.featDim {
			return fmt.Errorf("baselines: checkpoint prototype %d has %d dims, model has %d", cls, len(proto), p.featDim)
		}
		p.globalProtos[cls] = fl.CloneVec(proto)
	}
	if st.Ints[1] == 1 {
		if p.acc == nil || len(st.Vecs) != p.numClasses+4 {
			return fmt.Errorf("baselines: FedProto checkpoint carries accumulator state for a different scheduler")
		}
		committed, touched := st.Vecs[p.numClasses], st.Vecs[p.numClasses+1]
		if len(committed) != len(p.committed) || len(touched) != len(p.touched) {
			return fmt.Errorf("baselines: FedProto checkpoint committed/touched sizes do not match")
		}
		copy(p.committed, committed)
		for i, v := range touched {
			p.touched[i] = v != 0
		}
		return p.acc.RestoreState(st.Vecs[p.numClasses+2], st.Vecs[p.numClasses+3])
	}
	return nil
}

// localPrototypes computes per-class mean features over the client's
// training data in evaluation mode.
func (p *FedProto) localPrototypes(c *fl.Client, batchSize int) ([][]float64, []int) {
	sums := make([][]float64, p.numClasses)
	counts := make([]int, p.numClasses)
	ch, h, w := c.InputGeometry()
	for lo := 0; lo < len(c.Train); lo += batchSize {
		hi := lo + batchSize
		if hi > len(c.Train) {
			hi = len(c.Train)
		}
		x, y := data.BatchTensorOf(c.DType(), c.Train[lo:hi], ch, h, w)
		feats := c.Model.Features(x, false)
		row := make([]float64, p.featDim)
		for i, cls := range y {
			if sums[cls] == nil {
				sums[cls] = make([]float64, p.featDim)
			}
			feats.RowTo(i, row)
			for j, v := range row {
				sums[cls][j] += v
			}
			counts[cls]++
		}
	}
	for cls := range sums {
		if counts[cls] == 0 {
			continue
		}
		inv := 1 / float64(counts[cls])
		for j := range sums[cls] {
			sums[cls][j] *= inv
		}
	}
	return sums, counts
}

// protoPull adds the prototype regularizer gradient 2λ(f − proto)/N to the
// feature gradient, widening model-dtype features against the float64
// prototype table.
func protoPull[F tensor.Float](featsd, dfeatd []F, protos [][]float64, y []int, scale float64, d int) {
	for i := range y {
		proto := protos[y[i]]
		if proto == nil {
			continue
		}
		frow := featsd[i*d : (i+1)*d]
		grow := dfeatd[i*d : (i+1)*d]
		for j := range grow {
			grow[j] += F(scale * (float64(frow[j]) - proto[j]))
		}
	}
}
