package baselines

import (
	"fmt"

	"repro/internal/fl"
)

// The edge-aggregator halves of the comparison algorithms: PreReduce folds
// a subtree's updates into one exact aggregate (client side of the edge,
// no server state touched) and WireApplyAggregate folds aggregates into
// the root's accumulators. Reductions run on fl.ExactAccumulator, so any
// grouping of the same updates produces byte-identical sums — the tree is
// exact at the reduction level, not merely close.
//
// KT-pFL is deliberately absent: its commit builds a similarity matrix
// from every client's individual knowledge report, which no associative
// reduction can reconstruct from a sum. Aggregators pass its updates
// through unreduced (fl.CheckPreReduce refuses a forced reduction).
var (
	_ fl.ReducibleWireAlgorithm = (*LocalOnly)(nil)
	_ fl.ReducibleWireAlgorithm = (*FedAvg)(nil)
	_ fl.ReducibleWireAlgorithm = (*FedProto)(nil)
)

// ---- LocalOnly ----

// PreReduce reduces communication-free updates to a bare child count.
func (l *LocalOnly) PreReduce(updates []*fl.Update) (*fl.AggUpdate, error) {
	return &fl.AggUpdate{Children: len(updates)}, nil
}

// WireApplyAggregate has no server state to fold into.
func (l *LocalOnly) WireApplyAggregate(u *fl.AggUpdate) error { return nil }

// ---- FedAvg / FedProx ----

// PreReduce folds the subtree's weighted models into one exact sum
// Σ w_c·v_c with its summed weight, the quantity the root's normalization
// divides by — identical arithmetic to flat fan-in, regrouped exactly.
func (f *FedAvg) PreReduce(updates []*fl.Update) (*fl.AggUpdate, error) {
	au := &fl.AggUpdate{Children: len(updates)}
	var acc *fl.ExactAccumulator
	for _, u := range updates {
		if len(u.Vecs) != 1 || u.Vecs[0] == nil {
			return nil, fmt.Errorf("baselines: client %d uploaded a malformed %s payload", u.Client, f.Name())
		}
		if acc == nil {
			acc = fl.NewExactAccumulator(len(u.Vecs[0]))
		} else if len(u.Vecs[0]) != acc.Len() {
			return nil, fmt.Errorf("baselines: client %d uploaded %d weights, subtree peers uploaded %d",
				u.Client, len(u.Vecs[0]), acc.Len())
		}
		acc.Fold(u.Vecs[0], u.Weight)
	}
	if acc != nil {
		sum, w := acc.Round()
		au.Vecs = [][]float64{sum}
		au.Weight = w
	}
	return au, nil
}

// WireApplyAggregate folds one pre-weighted subtree sum into the shards.
func (f *FedAvg) WireApplyAggregate(u *fl.AggUpdate) error {
	if u.Children == 0 {
		return nil
	}
	if len(u.Vecs) != 1 || u.Vecs[0] == nil || len(u.Vecs[0]) != f.acc.Len() {
		return fmt.Errorf("baselines: aggregator %d forwarded a malformed %s aggregate", u.Agg, f.Name())
	}
	f.acc.Merge(u.Vecs[0], u.Weight)
	return nil
}

// ---- FedProto ----

// PreReduce folds the subtree's per-class prototypes into exact per-class
// sums. The geometry comes from the updates themselves — aggregators never
// run WireSetup — and each class carries its own summed weight
// (Σ w_c·|D_c^cls|) in VecWeights, because prototype classes accumulate
// under independent weights.
func (p *FedProto) PreReduce(updates []*fl.Update) (*fl.AggUpdate, error) {
	au := &fl.AggUpdate{Children: len(updates)}
	numCls, featDim := 0, 0
	for _, u := range updates {
		if len(u.Counts) != len(u.Vecs) {
			return nil, fmt.Errorf("baselines: client %d uploaded a malformed FedProto report", u.Client)
		}
		if len(u.Vecs) > numCls {
			numCls = len(u.Vecs)
		}
		for cls, proto := range u.Vecs {
			if proto == nil || u.Counts[cls] == 0 {
				continue
			}
			if featDim == 0 {
				featDim = len(proto)
			} else if len(proto) != featDim {
				return nil, fmt.Errorf("baselines: client %d prototype %d has %d dims, subtree peers have %d",
					u.Client, cls, len(proto), featDim)
			}
		}
	}
	wacc := fl.NewExactAccumulator(0)
	accs := make([]*fl.ExactAccumulator, numCls)
	counts := make([]int, numCls)
	for _, u := range updates {
		wacc.Fold(nil, u.Weight)
		for cls, proto := range u.Vecs {
			counts[cls] += u.Counts[cls]
			if proto == nil || u.Counts[cls] == 0 {
				continue
			}
			if accs[cls] == nil {
				accs[cls] = fl.NewExactAccumulator(featDim)
			}
			// The same once-rounded product flat WireApply folds.
			accs[cls].Fold(proto, u.Weight*float64(u.Counts[cls]))
		}
	}
	_, au.Weight = wacc.Round()
	if numCls > 0 {
		au.Vecs = make([][]float64, numCls)
		au.VecWeights = make([]float64, numCls)
		au.Counts = counts
		for cls, acc := range accs {
			if acc == nil {
				continue
			}
			au.Vecs[cls], au.VecWeights[cls] = acc.Round()
		}
	}
	return au, nil
}

// WireApplyAggregate folds pre-weighted per-class sums into the segment
// shards under their summed weights.
func (p *FedProto) WireApplyAggregate(u *fl.AggUpdate) error {
	if u.Children == 0 {
		return nil
	}
	if len(u.Vecs) > p.numClasses || len(u.VecWeights) != len(u.Vecs) || len(u.Counts) != len(u.Vecs) {
		return fmt.Errorf("baselines: aggregator %d forwarded a malformed FedProto aggregate", u.Agg)
	}
	for cls, sum := range u.Vecs {
		if sum == nil || u.VecWeights[cls] == 0 {
			continue
		}
		if len(sum) != p.featDim {
			return fmt.Errorf("baselines: aggregator %d prototype sum %d has %d dims, server expects %d",
				u.Agg, cls, len(sum), p.featDim)
		}
		p.acc.MergeSegment(cls, sum, u.VecWeights[cls])
	}
	return nil
}
