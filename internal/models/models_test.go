package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func allArchs() []Arch {
	return []Arch{ArchMLP, ArchAlexNet, ArchResNet, ArchShuffleNet, ArchGoogLeNet, ArchCNN2}
}

func cfgFor(a Arch) Config {
	return Config{Arch: a, InC: 1, InH: 12, InW: 12, FeatDim: 16, NumClasses: 10}
}

func TestEveryArchForwardShapes(t *testing.T) {
	for _, a := range allArchs() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			m := New(cfgFor(a), xrand.New(1))
			x := tensor.New(3, 1, 12, 12)
			x.FillRandn(rng, 1)
			feats, logits := m.Forward(x, true)
			if feats.Rows() != 3 || feats.Cols() != 16 {
				t.Fatalf("features shape %v", feats.Shape)
			}
			if logits.Rows() != 3 || logits.Cols() != 10 {
				t.Fatalf("logits shape %v", logits.Shape)
			}
		})
	}
}

func TestEveryArchBackwardRuns(t *testing.T) {
	for _, a := range allArchs() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			m := New(cfgFor(a), xrand.New(2))
			x := tensor.New(2, 1, 12, 12)
			x.FillRandn(rng, 1)
			feats, logits := m.Forward(x, true)
			_ = feats
			g := tensor.New(logits.Shape...)
			g.Fill(0.1)
			dfeat := m.Classifier.Backward(g)
			dx := m.Extractor.Backward(dfeat)
			if dx.Dim(0) != 2 {
				t.Fatalf("dx shape %v", dx.Shape)
			}
			// Some parameter gradient must be nonzero.
			var any bool
			for _, p := range m.Params() {
				if p.Grad.MaxAbs() > 0 {
					any = true
					break
				}
			}
			if !any {
				t.Fatal("no gradients accumulated")
			}
		})
	}
}

func TestRGBInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Arch: ArchResNet, InC: 3, InH: 12, InW: 12, FeatDim: 16, NumClasses: 10}
	m := New(cfg, xrand.New(3))
	x := tensor.New(2, 3, 12, 12)
	x.FillRandn(rng, 1)
	_, logits := m.Forward(x, false)
	if logits.Cols() != 10 {
		t.Fatalf("logits %v", logits.Shape)
	}
}

func TestClassifierShapeSharedAcrossArchs(t *testing.T) {
	// The core requirement of FedClassAvg: all architectures expose an
	// identically shaped classifier.
	var want int
	for i, a := range HeterogeneousSet {
		m := New(cfgFor(a), xrand.New(4))
		n := nn.NumParams(m.ClassifierParams())
		if i == 0 {
			want = n
		} else if n != want {
			t.Fatalf("%v classifier has %d params, want %d", a, n, want)
		}
	}
	if want != 16*10+10 {
		t.Fatalf("classifier params %d, want %d", want, 16*10+10)
	}
}

func TestArchitecturesActuallyDiffer(t *testing.T) {
	seen := map[int]Arch{}
	for _, a := range HeterogeneousSet {
		m := New(cfgFor(a), xrand.New(5))
		n := nn.NumParams(m.ExtractorParams())
		if prev, dup := seen[n]; dup {
			t.Fatalf("%v and %v have identical extractor param counts (%d); heterogeneity lost", prev, a, n)
		}
		seen[n] = a
	}
}

func TestCNN2WidthHeterogeneity(t *testing.T) {
	counts := map[int]bool{}
	for w := 1; w <= 3; w++ {
		cfg := cfgFor(ArchCNN2)
		cfg.Width = w
		m := New(cfg, xrand.New(6))
		counts[nn.NumParams(m.ExtractorParams())] = true
		// Classifier stays fixed regardless of width.
		if nn.NumParams(m.ClassifierParams()) != 16*10+10 {
			t.Fatal("CNN2 classifier shape must not depend on width")
		}
	}
	if len(counts) != 3 {
		t.Fatalf("widths should produce distinct extractors, got %d distinct", len(counts))
	}
}

func TestDeterministicInit(t *testing.T) {
	m1 := New(cfgFor(ArchResNet), xrand.New(7))
	m2 := New(cfgFor(ArchResNet), xrand.New(7))
	f1 := nn.FlattenParams(m1.Params())
	f2 := nn.FlattenParams(m2.Params())
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
	m3 := New(cfgFor(ArchResNet), xrand.New(8))
	f3 := nn.FlattenParams(m3.Params())
	same := true
	for i := range f1 {
		if f1[i] != f3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different weights")
	}
}

func TestTrainEvalModesDiffer(t *testing.T) {
	// BatchNorm-bearing models must behave differently in train vs eval.
	rng := rand.New(rand.NewSource(9))
	m := New(cfgFor(ArchResNet), xrand.New(9))
	x := tensor.New(4, 1, 12, 12)
	x.FillRandn(rng, 1)
	_, trainLogits := m.Forward(x, true)
	_, evalLogits := m.Forward(x, false)
	if tensor.ApproxEqual(trainLogits, evalLogits, 1e-9) {
		t.Fatal("train and eval outputs identical; batch norm inactive?")
	}
}

func TestUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown arch must panic")
		}
	}()
	New(Config{Arch: Arch(99), InC: 1, InH: 8, InW: 8, FeatDim: 8, NumClasses: 2}, xrand.New(1))
}

func TestArchStrings(t *testing.T) {
	for _, a := range allArchs() {
		if a.String() == "" {
			t.Fatalf("arch %d has empty name", a)
		}
	}
}

func TestParseArchCaseInsensitive(t *testing.T) {
	for _, in := range []string{"resnet", "ResNet", "MiniResNet", "MINIRESNET", "miniresnet"} {
		a, err := ParseArch(in)
		if err != nil || a != ArchResNet {
			t.Fatalf("ParseArch(%q) = %v, %v", in, a, err)
		}
	}
	if _, err := ParseArch("warpdrive"); err == nil {
		t.Fatal("unknown arch must be rejected")
	}
}
