// Package models defines the split extractor/classifier models of the
// FedClassAvg reproduction. Every model is f = C ∘ F: an architecture-
// specific feature extractor F ending in a fully connected layer that
// produces a shared feature dimension, and a single fully connected
// classifier C whose shape is identical across all clients — the part
// FedClassAvg aggregates.
//
// The four heterogeneous architectures are miniature but structurally
// faithful counterparts of the paper's backbones: MiniResNet (residual
// blocks), MiniShuffleNet (grouped convolutions + channel shuffle),
// MiniGoogLeNet (inception branches) and MiniAlexNet (a plain convolution
// stack). See DESIGN.md for the scaling rationale.
package models

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Arch identifies a model architecture.
type Arch int

// The available architectures.
const (
	ArchMLP Arch = iota
	ArchAlexNet
	ArchResNet
	ArchShuffleNet
	ArchGoogLeNet
	ArchCNN2 // FedProto-style two-layer CNN (channel width varies per client)
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchMLP:
		return "MLP"
	case ArchAlexNet:
		return "MiniAlexNet"
	case ArchResNet:
		return "MiniResNet"
	case ArchShuffleNet:
		return "MiniShuffleNet"
	case ArchGoogLeNet:
		return "MiniGoogLeNet"
	case ArchCNN2:
		return "CNN2"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// HeterogeneousSet is the paper's four-architecture rotation; client k
// receives HeterogeneousSet[k % 4], matching "models were equally
// distributed among the clients".
var HeterogeneousSet = []Arch{ArchResNet, ArchShuffleNet, ArchGoogLeNet, ArchAlexNet}

// Config describes the input geometry and head sizes of a model.
type Config struct {
	Arch          Arch
	InC, InH, InW int
	FeatDim       int // paper: 512; scaled defaults are smaller
	NumClasses    int
	// Width scales channel counts; 1 is the default miniature size. ArchCNN2
	// uses Width to emulate FedProto's per-client channel heterogeneity.
	Width int
	// Hidden is the MLP hidden width (ArchMLP only).
	Hidden int
}

// SplitModel is a model split into feature extractor and classifier.
type SplitModel struct {
	Name       string
	Cfg        Config
	Extractor  *nn.Sequential
	Classifier *nn.Dense
}

// New builds a model for the given config with weights drawn from rng.
func New(cfg Config, rng *rand.Rand) *SplitModel {
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.FeatDim <= 0 {
		cfg.FeatDim = 32
	}
	var ext *nn.Sequential
	switch cfg.Arch {
	case ArchMLP:
		ext = buildMLP(cfg, rng)
	case ArchAlexNet:
		ext = buildAlexNet(cfg, rng)
	case ArchResNet:
		ext = buildResNet(cfg, rng)
	case ArchShuffleNet:
		ext = buildShuffleNet(cfg, rng)
	case ArchGoogLeNet:
		ext = buildGoogLeNet(cfg, rng)
	case ArchCNN2:
		ext = buildCNN2(cfg, rng)
	default:
		panic(fmt.Sprintf("models: unknown arch %v", cfg.Arch))
	}
	return &SplitModel{
		Name:       cfg.Arch.String(),
		Cfg:        cfg,
		Extractor:  ext,
		Classifier: nn.NewDense(cfg.FeatDim, cfg.NumClasses, rng),
	}
}

// Features runs the extractor on a batch [N, C, H, W].
func (m *SplitModel) Features(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Extractor.Forward(x, train)
}

// Forward runs the full model, returning features and logits.
func (m *SplitModel) Forward(x *tensor.Tensor, train bool) (feats, logits *tensor.Tensor) {
	feats = m.Extractor.Forward(x, train)
	logits = m.Classifier.Forward(feats, train)
	return feats, logits
}

// Params returns all trainable parameters (extractor then classifier).
func (m *SplitModel) Params() []*nn.Param {
	return append(m.Extractor.Params(), m.Classifier.Params()...)
}

// ClassifierParams returns only the classifier parameters — the payload
// FedClassAvg exchanges.
func (m *SplitModel) ClassifierParams() []*nn.Param { return m.Classifier.Params() }

// ExtractorParams returns only the extractor parameters.
func (m *SplitModel) ExtractorParams() []*nn.Param { return m.Extractor.Params() }

// Buffers returns the model's non-trainable state (batch-norm running
// statistics), which checkpoints capture alongside Params. The classifier
// is a single dense layer and contributes none.
func (m *SplitModel) Buffers() [][]float64 { return m.Extractor.Buffers() }

// buildMLP: Flatten → Dense(hidden) → ReLU → Dense(featDim).
func buildMLP(cfg Config, rng *rand.Rand) *nn.Sequential {
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = 64 * cfg.Width
	}
	dim := cfg.InC * cfg.InH * cfg.InW
	return nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense(dim, hidden, rng),
		nn.NewReLU(),
		nn.NewDense(hidden, cfg.FeatDim, rng),
	)
}

// buildAlexNet: two plain conv+pool stages then the FC feature layer, the
// AlexNet pattern (convolutions without shortcuts, large pooling).
func buildAlexNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	oh, ow := cfg.InH/2/2, cfg.InW/2/2
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(c2*oh*ow, cfg.FeatDim, rng),
	)
}

// buildResNet: stem + identity residual block + pooled projection residual
// block + global average pooling, the ResNet-18 pattern in miniature.
func buildResNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	stem := []nn.Layer{
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
	}
	res1 := nn.NewResidual(nn.NewSequential(
		nn.NewConv2D(c1, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
		nn.NewConv2D(c1, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
	), nil)
	res2 := nn.NewResidual(nn.NewSequential(
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewConv2D(c2, c2, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c2),
	), nn.NewSequential(
		nn.NewConv2D(c1, c2, 1, 1, 0, 1, rng),
		nn.NewBatchNorm2D(c2),
	))
	seq := nn.NewSequential(stem...)
	seq.Append(
		res1,
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		res2,
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(c2, cfg.FeatDim, rng),
	)
	return seq
}

// buildShuffleNet: stem + pointwise group conv, channel shuffle, grouped
// 3×3 conv — the ShuffleNetV2 information-mixing pattern in miniature.
func buildShuffleNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 1, 1, 0, 2, rng), // pointwise group conv
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewChannelShuffle(2),
		nn.NewConv2D(c2, c2, 3, 1, 1, 4, rng), // grouped spatial conv
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(c2, cfg.FeatDim, rng),
	)
}

// buildGoogLeNet: stem + two inception blocks (1×1 and 1×1→3×3 branches),
// the GoogLeNet multi-scale pattern in miniature.
func buildGoogLeNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1 := 8 * w
	incept2 := func(in int) *nn.Inception {
		return nn.NewInception(
			nn.NewSequential( // 1×1 branch
				nn.NewConv2D(in, 4*w, 1, 1, 0, 1, rng),
				nn.NewReLU(),
			),
			nn.NewSequential( // 1×1 → 3×3 branch
				nn.NewConv2D(in, 4*w, 1, 1, 0, 1, rng),
				nn.NewReLU(),
				nn.NewConv2D(4*w, 8*w, 3, 1, 1, 1, rng),
				nn.NewReLU(),
			),
		)
	}
	out1 := 12 * w // 4w + 8w
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		incept2(c1),
		incept2(out1),
		nn.NewGlobalAvgPool(),
		nn.NewDense(out1, cfg.FeatDim, rng),
	)
}

// buildCNN2: the FedProto-style two-convolution network; Width varies the
// channel counts across clients to emulate FedProto's milder heterogeneity.
func buildCNN2(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 4+2*w, 8+2*w
	oh, ow := cfg.InH/2/2, cfg.InW/2/2
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(c2*oh*ow, cfg.FeatDim, rng),
	)
}
