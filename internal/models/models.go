// Package models defines the split extractor/classifier models of the
// FedClassAvg reproduction. Every model is f = C ∘ F: an architecture-
// specific feature extractor F ending in a fully connected layer that
// produces a shared feature dimension, and a single fully connected
// classifier C whose shape is identical across all clients — the part
// FedClassAvg aggregates.
//
// The four heterogeneous architectures are miniature but structurally
// faithful counterparts of the paper's backbones: MiniResNet (residual
// blocks), MiniShuffleNet (grouped convolutions + channel shuffle),
// MiniGoogLeNet (inception branches) and MiniAlexNet (a plain convolution
// stack). See DESIGN.md for the scaling rationale.
package models

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Arch identifies a model architecture.
type Arch int

// The available architectures.
const (
	ArchMLP Arch = iota
	ArchAlexNet
	ArchResNet
	ArchShuffleNet
	ArchGoogLeNet
	ArchCNN2 // FedProto-style two-layer CNN (channel width varies per client)
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchMLP:
		return "MLP"
	case ArchAlexNet:
		return "MiniAlexNet"
	case ArchResNet:
		return "MiniResNet"
	case ArchShuffleNet:
		return "MiniShuffleNet"
	case ArchGoogLeNet:
		return "MiniGoogLeNet"
	case ArchCNN2:
		return "CNN2"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ParseArch maps a flag value to an Arch. Both the short rotation names
// ("resnet") and the mini model names ("MiniResNet", case-insensitive) are
// accepted.
func ParseArch(s string) (Arch, error) {
	switch strings.TrimPrefix(strings.ToLower(s), "mini") {
	case "mlp":
		return ArchMLP, nil
	case "alexnet":
		return ArchAlexNet, nil
	case "resnet":
		return ArchResNet, nil
	case "shufflenet":
		return ArchShuffleNet, nil
	case "googlenet":
		return ArchGoogLeNet, nil
	case "cnn2":
		return ArchCNN2, nil
	}
	return ArchMLP, fmt.Errorf("models: unknown architecture %q (want mlp | alexnet | resnet | shufflenet | googlenet | cnn2)", s)
}

// HeterogeneousSet is the paper's four-architecture rotation; client k
// receives HeterogeneousSet[k % 4], matching "models were equally
// distributed among the clients".
var HeterogeneousSet = []Arch{ArchResNet, ArchShuffleNet, ArchGoogLeNet, ArchAlexNet}

// Config describes the input geometry, head sizes and numeric precision of
// a model.
type Config struct {
	Arch          Arch
	InC, InH, InW int
	FeatDim       int // paper: 512; scaled defaults are smaller
	NumClasses    int
	// Width scales channel counts; 1 is the default miniature size. ArchCNN2
	// uses Width to emulate FedProto's per-client channel heterogeneity.
	Width int
	// Hidden is the MLP hidden width (ArchMLP only).
	Hidden int
	// DType is the element type the model trains in. The zero value is
	// float64, the golden reference path; tensor.F32 halves the working set
	// and doubles SIMD width on the GEMM/conv hot paths.
	DType tensor.DType
}

// SplitModel is a model split into feature extractor and classifier.
type SplitModel struct {
	Name       string
	Cfg        Config
	Extractor  *nn.Sequential
	Classifier *nn.Dense

	// xcast is the cached model-dtype staging buffer for inputs arriving in
	// a different dtype (dataset tensors are always float64 bookkeeping).
	// It is overwritten by the next cast, matching the layer buffer
	// contract: an input is consumed by the forward/backward pair it feeds.
	xcast *tensor.Tensor
}

// New builds a model for the given config with weights drawn from the
// serializable source, so initialization is snapshot-reproducible exactly
// like sampling and augmentation streams. Weights are always initialized in
// float64 — a given seed yields the same draw sequence at every dtype — and
// narrowed to Config.DType afterwards, which makes f32-vs-f64 parity runs
// start from identical (merely rounded) weights.
func New(cfg Config, src *xrand.Source) *SplitModel {
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.FeatDim <= 0 {
		cfg.FeatDim = 32
	}
	rng := rand.New(src)
	var ext *nn.Sequential
	switch cfg.Arch {
	case ArchMLP:
		ext = buildMLP(cfg, rng)
	case ArchAlexNet:
		ext = buildAlexNet(cfg, rng)
	case ArchResNet:
		ext = buildResNet(cfg, rng)
	case ArchShuffleNet:
		ext = buildShuffleNet(cfg, rng)
	case ArchGoogLeNet:
		ext = buildGoogLeNet(cfg, rng)
	case ArchCNN2:
		ext = buildCNN2(cfg, rng)
	default:
		panic(fmt.Sprintf("models: unknown arch %v", cfg.Arch))
	}
	m := &SplitModel{
		Name:       cfg.Arch.String(),
		Cfg:        cfg,
		Extractor:  ext,
		Classifier: nn.NewDense(cfg.FeatDim, cfg.NumClasses, rng),
	}
	if cfg.DType != tensor.F64 {
		nn.ConvertParams(m.Params(), cfg.DType)
	}
	return m
}

// DType reports the element type the model trains in.
func (m *SplitModel) DType() tensor.DType { return m.Cfg.DType }

// CastInput returns x in the model dtype, staging through a cached buffer
// when a conversion is needed. The returned tensor is valid until the next
// CastInput call on this model.
func (m *SplitModel) CastInput(x *tensor.Tensor) *tensor.Tensor {
	if x.DT == m.Cfg.DType {
		return x
	}
	m.xcast = tensor.EnsureOf(m.Cfg.DType, m.xcast, x.Shape...)
	tensor.ConvertInto(m.xcast, x)
	return m.xcast
}

// Features runs the extractor on a batch [N, C, H, W], casting the input to
// the model dtype if needed.
func (m *SplitModel) Features(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Extractor.Forward(m.CastInput(x), train)
}

// Forward runs the full model, returning features and logits (in the model
// dtype).
func (m *SplitModel) Forward(x *tensor.Tensor, train bool) (feats, logits *tensor.Tensor) {
	feats = m.Extractor.Forward(m.CastInput(x), train)
	logits = m.Classifier.Forward(feats, train)
	return feats, logits
}

// Params returns all trainable parameters (extractor then classifier).
func (m *SplitModel) Params() []*nn.Param {
	return append(m.Extractor.Params(), m.Classifier.Params()...)
}

// ClassifierParams returns only the classifier parameters — the payload
// FedClassAvg exchanges.
func (m *SplitModel) ClassifierParams() []*nn.Param { return m.Classifier.Params() }

// ExtractorParams returns only the extractor parameters.
func (m *SplitModel) ExtractorParams() []*nn.Param { return m.Extractor.Params() }

// Buffers returns the model's non-trainable state (batch-norm running
// statistics), which checkpoints capture alongside Params. The classifier
// is a single dense layer and contributes none.
func (m *SplitModel) Buffers() [][]float64 { return m.Extractor.Buffers() }

// buildMLP: Flatten → Dense(hidden) → ReLU → Dense(featDim).
func buildMLP(cfg Config, rng *rand.Rand) *nn.Sequential {
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = 64 * cfg.Width
	}
	dim := cfg.InC * cfg.InH * cfg.InW
	return nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense(dim, hidden, rng),
		nn.NewReLU(),
		nn.NewDense(hidden, cfg.FeatDim, rng),
	)
}

// buildAlexNet: two plain conv+pool stages then the FC feature layer, the
// AlexNet pattern (convolutions without shortcuts, large pooling).
func buildAlexNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	oh, ow := cfg.InH/2/2, cfg.InW/2/2
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(c2*oh*ow, cfg.FeatDim, rng),
	)
}

// buildResNet: stem + identity residual block + pooled projection residual
// block + global average pooling, the ResNet-18 pattern in miniature.
func buildResNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	stem := []nn.Layer{
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
	}
	res1 := nn.NewResidual(nn.NewSequential(
		nn.NewConv2D(c1, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
		nn.NewConv2D(c1, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
	), nil)
	res2 := nn.NewResidual(nn.NewSequential(
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewConv2D(c2, c2, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c2),
	), nn.NewSequential(
		nn.NewConv2D(c1, c2, 1, 1, 0, 1, rng),
		nn.NewBatchNorm2D(c2),
	))
	seq := nn.NewSequential(stem...)
	seq.Append(
		res1,
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		res2,
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(c2, cfg.FeatDim, rng),
	)
	return seq
}

// buildShuffleNet: stem + pointwise group conv, channel shuffle, grouped
// 3×3 conv — the ShuffleNetV2 information-mixing pattern in miniature.
func buildShuffleNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 8*w, 16*w
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewBatchNorm2D(c1),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 1, 1, 0, 2, rng), // pointwise group conv
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewChannelShuffle(2),
		nn.NewConv2D(c2, c2, 3, 1, 1, 4, rng), // grouped spatial conv
		nn.NewBatchNorm2D(c2),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(c2, cfg.FeatDim, rng),
	)
}

// buildGoogLeNet: stem + two inception blocks (1×1 and 1×1→3×3 branches),
// the GoogLeNet multi-scale pattern in miniature.
func buildGoogLeNet(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1 := 8 * w
	incept2 := func(in int) *nn.Inception {
		return nn.NewInception(
			nn.NewSequential( // 1×1 branch
				nn.NewConv2D(in, 4*w, 1, 1, 0, 1, rng),
				nn.NewReLU(),
			),
			nn.NewSequential( // 1×1 → 3×3 branch
				nn.NewConv2D(in, 4*w, 1, 1, 0, 1, rng),
				nn.NewReLU(),
				nn.NewConv2D(4*w, 8*w, 3, 1, 1, 1, rng),
				nn.NewReLU(),
			),
		)
	}
	out1 := 12 * w // 4w + 8w
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		incept2(c1),
		incept2(out1),
		nn.NewGlobalAvgPool(),
		nn.NewDense(out1, cfg.FeatDim, rng),
	)
}

// buildCNN2: the FedProto-style two-convolution network; Width varies the
// channel counts across clients to emulate FedProto's milder heterogeneity.
func buildCNN2(cfg Config, rng *rand.Rand) *nn.Sequential {
	w := cfg.Width
	c1, c2 := 4+2*w, 8+2*w
	oh, ow := cfg.InH/2/2, cfg.InW/2/2
	return nn.NewSequential(
		nn.NewConv2D(cfg.InC, c1, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(c1, c2, 3, 1, 1, 1, rng),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(c2*oh*ow, cfg.FeatDim, rng),
	)
}
