package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// checkpointMagic guards against feeding arbitrary bytes to ReadParams.
const checkpointMagic = uint32(0xFEDC1A55)

// WriteParams serializes a parameter list (names, shapes and values) to w.
// The format is self-describing, so ReadParams can validate structure when
// restoring into a freshly built model — the client-checkpoint mechanism of
// the simulation (the paper measures communication as the size of saved
// PyTorch state_dict files; this is the Go equivalent).
func WriteParams(w io.Writer, params []*Param) error {
	if err := binary.Write(w, binary.LittleEndian, checkpointMagic); err != nil {
		return fmt.Errorf("nn: writing magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: writing count: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return fmt.Errorf("nn: writing name length: %w", err)
		}
		if _, err := w.Write(name); err != nil {
			return fmt.Errorf("nn: writing name: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Value.Shape))); err != nil {
			return fmt.Errorf("nn: writing rank: %w", err)
		}
		for _, d := range p.Value.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint64(d)); err != nil {
				return fmt.Errorf("nn: writing shape: %w", err)
			}
		}
		// Values are written in the model dtype; the format stays
		// self-describing through the reader's structurally identical model,
		// which fixes the element width.
		var err error
		if p.Value.DT.Backing() == tensor.F32 {
			err = binary.Write(w, binary.LittleEndian, p.Value.F32)
		} else {
			err = binary.Write(w, binary.LittleEndian, p.Value.Data)
		}
		if err != nil {
			return fmt.Errorf("nn: writing values: %w", err)
		}
	}
	return nil
}

// ReadParams restores parameter values from r into params. The checkpoint
// must have been produced by WriteParams on a structurally identical
// parameter list; names and shapes are verified.
func ReadParams(r io.Reader, params []*Param) error {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading count: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(params))
	}
	for i, p := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: reading name length: %w", err)
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("nn: reading name: %w", err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: param %d name %q, model has %q", i, name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return fmt.Errorf("nn: reading rank: %w", err)
		}
		if int(rank) != len(p.Value.Shape) {
			return fmt.Errorf("nn: param %q rank %d, model has %d", p.Name, rank, len(p.Value.Shape))
		}
		for d := 0; d < int(rank); d++ {
			var dim uint64
			if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
				return fmt.Errorf("nn: reading shape: %w", err)
			}
			if int(dim) != p.Value.Shape[d] {
				return fmt.Errorf("nn: param %q dim %d is %d, model has %d", p.Name, d, dim, p.Value.Shape[d])
			}
		}
		var err error
		if p.Value.DT.Backing() == tensor.F32 {
			err = binary.Read(r, binary.LittleEndian, p.Value.F32)
		} else {
			err = binary.Read(r, binary.LittleEndian, p.Value.Data)
		}
		if err != nil {
			return fmt.Errorf("nn: reading values: %w", err)
		}
	}
	return nil
}

// MarshalParams serializes params to a byte slice.
func MarshalParams(params []*Param) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalParams restores params from a byte slice produced by
// MarshalParams.
func UnmarshalParams(b []byte, params []*Param) error {
	return ReadParams(bytes.NewReader(b), params)
}
