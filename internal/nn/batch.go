package nn

import (
	"repro/internal/tensor"
)

// Cross-client batched stepping (DESIGN.md §12): a group of structurally
// identical models advances through one forward/backward pass in lockstep,
// lowering each layer's per-client GEMMs — one per model — into a single
// batched launch via tensor.MatMulBatch*. The batched entry points preserve
// every product's standalone shard plan, so a group step is byte-identical
// to stepping the models one after another; grouping is purely a dispatch
// optimization.
//
// Only the GEMM-bearing layers (Dense, Conv2D) have fused group paths.
// Everything else — activations, pooling, normalization, shape adapters and
// composites — runs per model at its layer index, which costs nothing:
// those layers are memory-bound elementwise passes with no launch to
// amortize.

// DenseForwardBatch runs ds[g].Forward(xs[g], train) for every g with the
// per-client GEMMs fused into one batched launch.
func DenseForwardBatch(ds []*Dense, xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if len(ds) != len(xs) {
		panic("nn: DenseForwardBatch length mismatch")
	}
	ys := make([]*tensor.Tensor, len(ds))
	ws := make([]*tensor.Tensor, len(ds))
	for g, d := range ds {
		x := xs[g]
		if x.Rank() != 2 || x.Cols() != d.In {
			panicShape("Dense.Forward", x, d.In)
		}
		if x.DT != d.W.Value.DT {
			panic("nn: DenseForwardBatch input dtype mismatch (cast inputs at the model boundary)")
		}
		d.x = x
		ys[g] = d.out.next(x.DT, x.Rows(), d.Out)
		ws[g] = d.W.Value
	}
	tensor.MatMulBatchInto(ys, xs, ws)
	for g, d := range ds {
		n := xs[g].Rows()
		y := ys[g]
		if y.DT.Backing() == tensor.F32 {
			addBiasRows(tensor.Of[float32](y), tensor.Of[float32](d.B.Value), n, d.Out)
		} else {
			addBiasRows(y.Data, d.B.Value.Data, n, d.Out)
		}
	}
	return ys
}

// DenseBackwardBatch runs ds[g].Backward(grads[g]) for every g, fusing the
// weight-gradient and input-gradient GEMMs across the group.
func DenseBackwardBatch(ds []*Dense, grads []*tensor.Tensor) []*tensor.Tensor {
	if len(ds) != len(grads) {
		panic("nn: DenseBackwardBatch length mismatch")
	}
	wgrads := make([]*tensor.Tensor, len(ds))
	xs := make([]*tensor.Tensor, len(ds))
	wvals := make([]*tensor.Tensor, len(ds))
	dxs := make([]*tensor.Tensor, len(ds))
	for g, d := range ds {
		wgrads[g] = d.W.Grad
		xs[g] = d.x
		d.dx = tensor.EnsureOf(grads[g].DT, d.dx, grads[g].Rows(), d.In)
		dxs[g] = d.dx
		wvals[g] = d.W.Value
	}
	tensor.MatMulBatchATBAcc(wgrads, xs, grads)
	for g, d := range ds {
		tensor.ColSumsAcc(d.B.Grad, grads[g])
	}
	tensor.MatMulBatchABTInto(dxs, grads, wvals)
	return dxs
}

// sameConvConfig reports whether every layer shares cs[0]'s static
// convolution geometry, the precondition for walking their channel groups in
// lockstep.
func sameConvConfig(cs []*Conv2D) bool {
	c0 := cs[0]
	for _, c := range cs[1:] {
		if c.InC != c0.InC || c.OutC != c0.OutC || c.KH != c0.KH || c.KW != c0.KW ||
			c.Stride != c0.Stride || c.Pad != c0.Pad || c.Groups != c0.Groups {
			return false
		}
	}
	return true
}

// Conv2DForwardBatch runs cs[g].Forward(xs[g], train) for every g. The
// im2col lowerings run per client; each channel group's per-client GEMMs
// fuse into one batched launch, with the bias-fused scatter per client in
// between (each client's gemmOut scratch is reused across its groups, so
// group products must scatter before the next group index runs).
func Conv2DForwardBatch(cs []*Conv2D, xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if len(cs) != len(xs) {
		panic("nn: Conv2DForwardBatch length mismatch")
	}
	if !sameConvConfig(cs) {
		outs := make([]*tensor.Tensor, len(cs))
		for g, c := range cs {
			outs[g] = c.Forward(xs[g], train)
		}
		return outs
	}
	outs := make([]*tensor.Tensor, len(cs))
	ns := make([]int, len(cs))
	for g, c := range cs {
		x := xs[g]
		if x.Rank() != 4 || x.Dim(1) != c.InC {
			panic("nn: Conv2DForwardBatch input shape mismatch")
		}
		if x.DT != c.W.Value.DT {
			panic("nn: Conv2DForwardBatch input dtype mismatch (cast inputs at the model boundary)")
		}
		n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
		c.ensureWorkspace(n, h, w)
		ns[g] = n
		outs[g] = c.out.next(x.DT, n, c.OutC, c.outH, c.outW)
		if x.DT.Backing() == tensor.F32 {
			xd, colsd := tensor.Of[float32](x), tensor.Of[float32](c.cols)
			parallelFor(n, func(i int) { im2col(c, xd, colsd, i) })
		} else {
			parallelFor(n, func(i int) { im2col(c, x.Data, c.cols.Data, i) })
		}
	}
	gemmOuts := make([]*tensor.Tensor, len(cs))
	wgs := make([]*tensor.Tensor, len(cs))
	colsVs := make([]*tensor.Tensor, len(cs))
	for grp := 0; grp < cs[0].Groups; grp++ {
		for g, c := range cs {
			gemmOuts[g], wgs[g], colsVs[g] = c.gemmOut, c.wgV[grp], c.colsV[grp]
		}
		tensor.MatMulBatchInto(gemmOuts, wgs, colsVs)
		for g, c := range cs {
			if outs[g].DT.Backing() == tensor.F32 {
				convScatterGroup(c, tensor.Of[float32](outs[g]), tensor.Of[float32](c.gemmOut),
					tensor.Of[float32](c.B.Value), grp, ns[g])
			} else {
				convScatterGroup(c, outs[g].Data, c.gemmOut.Data, c.B.Value.Data, grp, ns[g])
			}
		}
	}
	return outs
}

// Conv2DBackwardBatch runs cs[g].Backward(grads[g]) for every g, fusing each
// channel group's weight- and column-gradient GEMMs across the clients.
func Conv2DBackwardBatch(cs []*Conv2D, grads []*tensor.Tensor) []*tensor.Tensor {
	if len(cs) != len(grads) {
		panic("nn: Conv2DBackwardBatch length mismatch")
	}
	if !sameConvConfig(cs) {
		dxs := make([]*tensor.Tensor, len(cs))
		for g, c := range cs {
			dxs[g] = c.Backward(grads[g])
		}
		return dxs
	}
	dxs := make([]*tensor.Tensor, len(cs))
	ns := make([]int, len(cs))
	for g, c := range cs {
		grad := grads[g]
		n := grad.Dim(0)
		if n != c.batch || grad.Dim(1) != c.OutC {
			panic("nn: Conv2DBackwardBatch grad shape does not match forward batch")
		}
		c.ensureBackwardWorkspace()
		c.dx = tensor.EnsureOf(grad.DT, c.dx, n, c.InC, c.inH, c.inW)
		if !c.convInitsDX() {
			c.dx.Zero()
		}
		dxs[g] = c.dx
		ns[g] = n
		if grad.DT.Backing() == tensor.F32 {
			convGatherGrad(c, tensor.Of[float32](grad), tensor.Of[float32](c.gmat),
				tensor.Of[float32](c.B.Grad), n)
		} else {
			convGatherGrad(c, grad.Data, c.gmat.Data, c.B.Grad.Data, n)
		}
	}
	dwts := make([]*tensor.Tensor, len(cs))
	gms := make([]*tensor.Tensor, len(cs))
	colsVs := make([]*tensor.Tensor, len(cs))
	dcolsVs := make([]*tensor.Tensor, len(cs))
	wgs := make([]*tensor.Tensor, len(cs))
	for grp := 0; grp < cs[0].Groups; grp++ {
		for g, c := range cs {
			dwts[g], gms[g], colsVs[g] = c.dwt, c.gmatV[grp], c.colsV[grp]
			dcolsVs[g], wgs[g] = c.dcolsV[grp], c.wgV[grp]
		}
		// Same transposed dW form as the standalone backward (see
		// convBackward): pack the short gmat operand, then scatter the
		// transpose into the zeroed weight gradient.
		tensor.MatMulBatchABTInto(dwts, colsVs, gms)
		for g, c := range cs {
			if grads[g].DT.Backing() == tensor.F32 {
				addTransposed(tensor.Of[float32](c.dwV[grp]), tensor.Of[float32](c.dwt),
					c.outCPerGroup, c.kernelElems)
			} else {
				addTransposed(c.dwV[grp].Data, c.dwt.Data, c.outCPerGroup, c.kernelElems)
			}
		}
		tensor.MatMulBatchATBInto(dcolsVs, wgs, gms)
	}
	for g, c := range cs {
		if grads[g].DT.Backing() == tensor.F32 {
			dcolsd, dxd := tensor.Of[float32](c.dcols), tensor.Of[float32](c.dx)
			parallelFor(ns[g], func(i int) { col2im(c, dcolsd, dxd, i) })
		} else {
			parallelFor(ns[g], func(i int) { col2im(c, c.dcols.Data, c.dx.Data, i) })
		}
	}
	return dxs
}

// batchable reports whether the sequentials can step in lockstep at all:
// every model must have the same layer count (grouped cohorts share a
// models.Config, so this holds; the check keeps misuse safe).
func batchable(seqs []*Sequential) bool {
	for _, s := range seqs[1:] {
		if len(s.Layers) != len(seqs[0].Layers) {
			return false
		}
	}
	return true
}

// denseGroup returns the group's layers at index i when they are all *Dense,
// nil otherwise. The leader's layer is probed before allocating so that
// non-Dense indices — the common case in a conv net — cost nothing.
func denseGroup(seqs []*Sequential, i int) []*Dense {
	if _, ok := seqs[0].Layers[i].(*Dense); !ok {
		return nil
	}
	ds := make([]*Dense, len(seqs))
	for g, s := range seqs {
		d, ok := s.Layers[i].(*Dense)
		if !ok {
			return nil
		}
		ds[g] = d
	}
	return ds
}

// convGroup returns the group's layers at index i when they are all
// *Conv2D, nil otherwise. Probes the leader before allocating, as
// denseGroup does.
func convGroup(seqs []*Sequential, i int) []*Conv2D {
	if _, ok := seqs[0].Layers[i].(*Conv2D); !ok {
		return nil
	}
	cs := make([]*Conv2D, len(seqs))
	for g, s := range seqs {
		c, ok := s.Layers[i].(*Conv2D)
		if !ok {
			return nil
		}
		cs[g] = c
	}
	return cs
}

// SequentialForwardBatch advances a group of structurally identical
// Sequentials through one forward pass in lockstep, batching the Dense and
// Conv2D layers across the group and running every other layer per model.
// It is byte-identical to calling seqs[g].Forward(xs[g], train) one model at
// a time.
func SequentialForwardBatch(seqs []*Sequential, xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if len(seqs) != len(xs) {
		panic("nn: SequentialForwardBatch length mismatch")
	}
	cur := append([]*tensor.Tensor(nil), xs...)
	if !batchable(seqs) {
		for g, s := range seqs {
			cur[g] = s.Forward(cur[g], train)
		}
		return cur
	}
	for i := range seqs[0].Layers {
		if ds := denseGroup(seqs, i); ds != nil {
			cur = DenseForwardBatch(ds, cur, train)
		} else if cs := convGroup(seqs, i); cs != nil {
			cur = Conv2DForwardBatch(cs, cur, train)
		} else {
			for g, s := range seqs {
				cur[g] = s.Layers[i].Forward(cur[g], train)
			}
		}
	}
	return cur
}

// SequentialBackwardBatch is the reverse lockstep pass matching
// SequentialForwardBatch.
func SequentialBackwardBatch(seqs []*Sequential, grads []*tensor.Tensor) []*tensor.Tensor {
	if len(seqs) != len(grads) {
		panic("nn: SequentialBackwardBatch length mismatch")
	}
	cur := append([]*tensor.Tensor(nil), grads...)
	if !batchable(seqs) {
		for g, s := range seqs {
			cur[g] = s.Backward(cur[g])
		}
		return cur
	}
	for i := len(seqs[0].Layers) - 1; i >= 0; i-- {
		if ds := denseGroup(seqs, i); ds != nil {
			cur = DenseBackwardBatch(ds, cur)
		} else if cs := convGroup(seqs, i); cs != nil {
			cur = Conv2DBackwardBatch(cs, cur)
		} else {
			for g, s := range seqs {
				cur[g] = s.Layers[i].Backward(cur[g])
			}
		}
	}
	return cur
}
