package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [N, C, H, W] inputs with optional grouped
// convolution (groups > 1 partitions input and output channels, as in
// ShuffleNet). Weights are stored as [outC, (inC/groups)·kH·kW], and the
// whole batch is lowered into one im2col matrix of shape
// [groups·kernelElems, N·outH·outW] so the forward pass is a single GEMM per
// group per batch rather than one tiny GEMM per sample.
//
// The layer keeps its im2col, GEMM and gradient workspaces across calls,
// sized and typed to match the parameters' dtype; steady-state training
// allocates nothing. See the package comment for the activation aliasing
// contract.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	Groups       int
	W, B         *Param
	inH, inW     int // set on Forward
	outH, outW   int
	batch        int
	inCPerGroup  int
	outCPerGroup int
	kernelElems  int

	// Reusable workspaces, sized on first use and whenever the input
	// geometry changes. The backward-only workspaces (gmat, dcols, dx) are
	// allocated lazily in Backward so evaluation-mode forwards never pay
	// for them.
	cols    *tensor.Tensor // [Groups·kernelElems, N·spatial] im2col matrix
	gemmOut *tensor.Tensor // [outCPerGroup, N·spatial] per-group product
	gmat    *tensor.Tensor // [OutC, N·spatial] gathered output gradient
	dcols   *tensor.Tensor // [Groups·kernelElems, N·spatial] column gradient
	dwt     *tensor.Tensor // [kernelElems, outCPerGroup] transposed dW product
	dx      *tensor.Tensor
	out     ring2
	bwdOK   bool // backward workspaces match the current geometry

	// Cached per-group views over the workspaces and weights, rebuilt only
	// on geometry changes so the hot path creates no tensor headers.
	wgV, dwV     []*tensor.Tensor
	colsV, gmatV []*tensor.Tensor
	dcolsV       []*tensor.Tensor
}

// NewConv2D constructs a grouped convolution layer with He-normal weights.
func NewConv2D(inC, outC, k, stride, pad, groups int, rng *rand.Rand) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: Conv2D groups=%d must divide inC=%d and outC=%d", groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		inCPerGroup:  inC / groups,
		outCPerGroup: outC / groups,
	}
	c.kernelElems = c.inCPerGroup * k * k
	c.W = newParam("conv.W", outC, c.kernelElems)
	c.B = newParam("conv.B", outC)
	heInit(c.W.Value, c.kernelElems, rng)
	return c
}

// OutputShape returns the spatial output size for a given input size.
func (c *Conv2D) OutputShape(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// ensureWorkspace (re)builds the batch workspaces and group views when the
// input geometry (or the model dtype) changes; with a stable geometry it is
// a cheap no-op.
func (c *Conv2D) ensureWorkspace(n, h, w int) {
	dt := c.W.Value.DT
	oh, ow := c.OutputShape(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d not positive for input %dx%d", oh, ow, h, w))
	}
	if n == c.batch && h == c.inH && w == c.inW && c.cols != nil && c.cols.DT == dt {
		return
	}
	c.batch, c.inH, c.inW, c.outH, c.outW = n, h, w, oh, ow
	c.bwdOK = false
	ns := n * oh * ow
	ke, sp := c.kernelElems, ns
	c.cols = tensor.EnsureOf(dt, c.cols, c.Groups*ke, sp)
	c.gemmOut = tensor.EnsureOf(dt, c.gemmOut, c.outCPerGroup, sp)
	if len(c.wgV) != c.Groups {
		c.wgV = make([]*tensor.Tensor, c.Groups)
		c.dwV = make([]*tensor.Tensor, c.Groups)
		c.colsV = make([]*tensor.Tensor, c.Groups)
		c.gmatV = make([]*tensor.Tensor, c.Groups)
		c.dcolsV = make([]*tensor.Tensor, c.Groups)
	}
	for g := 0; g < c.Groups; g++ {
		wlo, whi := g*c.outCPerGroup*ke, (g+1)*c.outCPerGroup*ke
		setView(&c.wgV[g], c.W.Value, wlo, whi, c.outCPerGroup, ke)
		setView(&c.colsV[g], c.cols, g*ke*sp, (g+1)*ke*sp, ke, sp)
	}
}

// ensureBackwardWorkspace lazily sizes the gradient workspaces to the
// geometry of the preceding Forward. Evaluation-only layers never build
// them.
func (c *Conv2D) ensureBackwardWorkspace() {
	if c.bwdOK {
		return
	}
	dt := c.W.Value.DT
	ke := c.kernelElems
	sp := c.batch * c.outH * c.outW
	c.gmat = tensor.EnsureOf(dt, c.gmat, c.OutC, sp)
	c.dcols = tensor.EnsureOf(dt, c.dcols, c.Groups*ke, sp)
	c.dwt = tensor.EnsureOf(dt, c.dwt, ke, c.outCPerGroup)
	for g := 0; g < c.Groups; g++ {
		wlo, whi := g*c.outCPerGroup*ke, (g+1)*c.outCPerGroup*ke
		setView(&c.dwV[g], c.W.Grad, wlo, whi, c.outCPerGroup, ke)
		setView(&c.dcolsV[g], c.dcols, g*ke*sp, (g+1)*ke*sp, ke, sp)
		setView(&c.gmatV[g], c.gmat, g*c.outCPerGroup*sp, (g+1)*c.outCPerGroup*sp, c.outCPerGroup, sp)
	}
	c.bwdOK = true
}

// setView retargets a cached rank-2 view header at elements [lo,hi) of a
// workspace tensor, allocating the header only once per group.
func setView(vp **tensor.Tensor, src *tensor.Tensor, lo, hi, r, cols int) {
	v := *vp
	if v == nil {
		v = &tensor.Tensor{}
		*vp = v
	}
	tensor.ViewInto(v, src, lo, hi, r, cols)
}

// Forward computes the convolution for a batch [N, C, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D.Forward input shape %v, want [N,%d,H,W]", x.Shape, c.InC))
	}
	if x.DT != c.W.Value.DT {
		panic(fmt.Sprintf("nn: Conv2D.Forward input dtype %v, model is %v (cast inputs at the model boundary)", x.DT, c.W.Value.DT))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.ensureWorkspace(n, h, w)
	out := c.out.next(x.DT, n, c.OutC, c.outH, c.outW)
	if x.DT.Backing() == tensor.F32 {
		convForward(c, tensor.Of[float32](x), tensor.Of[float32](out),
			tensor.Of[float32](c.cols), tensor.Of[float32](c.gemmOut), tensor.Of[float32](c.B.Value), n)
	} else {
		convForward(c, x.Data, out.Data, c.cols.Data, c.gemmOut.Data, c.B.Value.Data, n)
	}
	return out
}

// convForward runs the dtype-generic forward: per-sample im2col lowering,
// one GEMM per group, and the bias-fused scatter back to [N, C, H, W].
func convForward[F tensor.Float](c *Conv2D, xd, outd, colsd, gemmOutd, bias []F, n int) {
	parallelFor(n, func(i int) { im2col(c, xd, colsd, i) })
	for g := 0; g < c.Groups; g++ {
		tensor.MatMulInto(c.gemmOut, c.wgV[g], c.colsV[g])
		convScatterGroup(c, outd, gemmOutd, bias, g, n)
	}
}

// convScatterGroup scatters one group's [outCPerGroup, N·spatial] GEMM
// product back to the per-sample layout, fusing the bias add. Shared by the
// standalone forward and the cross-client batched forward.
func convScatterGroup[F tensor.Float](c *Conv2D, outd, gemmOutd, bias []F, g, n int) {
	spatial := c.outH * c.outW
	for oc := 0; oc < c.outCPerGroup; oc++ {
		ch := g*c.outCPerGroup + oc
		b := bias[ch]
		src := gemmOutd[oc*n*spatial : (oc+1)*n*spatial]
		for i := 0; i < n; i++ {
			tensor.AddScalarInto(outd[(i*c.OutC+ch)*spatial:(i*c.OutC+ch+1)*spatial],
				src[i*spatial:(i+1)*spatial], b)
		}
	}
}

// convInitsDX reports whether col2im's same-size fast path initializes every
// dx channel plane itself (first tap writes, later taps accumulate); callers
// only pre-zero dx when it does not.
func (c *Conv2D) convInitsDX() bool {
	return c.Stride == 1 && c.outW == c.inW && c.outH == c.inH
}

// Backward accumulates dW, dB and returns dX. It reuses the im2col matrix
// built by the preceding Forward call.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	if n != c.batch || grad.Dim(1) != c.OutC {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad shape %v does not match forward batch %d", grad.Shape, c.batch))
	}
	c.ensureBackwardWorkspace()
	c.dx = tensor.EnsureOf(grad.DT, c.dx, n, c.InC, c.inH, c.inW)
	if !c.convInitsDX() {
		c.dx.Zero()
	}
	if grad.DT.Backing() == tensor.F32 {
		convBackward(c, tensor.Of[float32](grad), tensor.Of[float32](c.gmat),
			tensor.Of[float32](c.B.Grad), tensor.Of[float32](c.dcols), tensor.Of[float32](c.dx), n)
	} else {
		convBackward(c, grad.Data, c.gmat.Data, c.B.Grad.Data, c.dcols.Data, c.dx.Data, n)
	}
	return c.dx
}

// convBackward runs the dtype-generic backward: gradient gather to
// channel-major, bias reduction, the two GEMMs per group, and the col2im
// scatter back to the input gradient.
func convBackward[F tensor.Float](c *Conv2D, gradd, gm, db, dcolsd, dxd []F, n int) {
	convGatherGrad(c, gradd, gm, db, n)
	for g := 0; g < c.Groups; g++ {
		// dW_g += gmat_g · colsᵀ_g, computed as the transposed product
		// dWᵀ_g = cols_g · gmatᵀ_g: the ABT kernel transpose-packs its
		// second operand, and gmat_g (outCPerGroup rows) is an order of
		// magnitude shorter than cols_g (kernelElems rows), so this form
		// packs ~10× fewer elements and reuses each panel across every
		// kernelElems output row. dW is zero on entry (grads are cleared
		// each step), so scattering the transpose back is bit-identical
		// to accumulating the direct product.
		tensor.MatMulABTInto(c.dwt, c.colsV[g], c.gmatV[g])
		addTransposed(tensor.Of[F](c.dwV[g]), tensor.Of[F](c.dwt), c.outCPerGroup, c.kernelElems)
		// dcols_g = W_gᵀ · gmat_g
		tensor.MatMulATBInto(c.dcolsV[g], c.wgV[g], c.gmatV[g])
	}
	parallelFor(n, func(i int) { col2im(c, dcolsd, dxd, i) })
}

// convGatherGrad gathers the output gradient into the [OutC, N·spatial]
// channel-major layout — so the weight and column gradients are one GEMM per
// group each — and folds the bias gradient reduction. Shared by the
// standalone backward and the cross-client batched backward.
func convGatherGrad[F tensor.Float](c *Conv2D, gradd, gm, db []F, n int) {
	spatial := c.outH * c.outW
	parallelFor(c.OutC, func(ch int) {
		tensor.CopyRows(gm[ch*n*spatial:(ch+1)*n*spatial], gradd[ch*spatial:],
			n, spatial, spatial, c.OutC*spatial)
	})
	for ch := 0; ch < c.OutC; ch++ {
		seg := gm[ch*n*spatial : (ch+1)*n*spatial]
		var s F
		for _, v := range seg {
			s += v
		}
		db[ch] += s
	}
}

// addTransposed accumulates dst += srcᵀ where dst is m×n and src is n×m,
// both row-major. Reads src sequentially; the strided writes touch only the
// small dst (a per-group weight-gradient block).
func addTransposed[F tensor.Float](dst, src []F, m, n int) {
	for j := 0; j < n; j++ {
		col := src[j*m : (j+1)*m]
		for i, v := range col {
			dst[i*n+j] += v
		}
	}
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// im2col unrolls sample i of x into its column block of the batch im2col
// matrix: cols[row, i·spatial + p] holds the receptive-field element `row`
// of output pixel p. Every position is written, so the workspace needs no
// zeroing between batches. For stride 1 (every convolution in the model
// zoo) each output row is zero-pad, one contiguous copy, zero-pad — a
// memmove instead of a bounds check per pixel, which matters twice over on
// the float32 path where the same move touches half the bytes.
func im2col[F tensor.Float](c *Conv2D, xd, colsd []F, i int) {
	spatial := c.outH * c.outW
	ns := c.batch * spatial
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		src := xd[base+ch*chanSize : base+(ch+1)*chanSize]
		for kh := 0; kh < c.KH; kh++ {
			ihOff := kh - c.Pad
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				dst := colsd[rowIdx*ns+i*spatial : rowIdx*ns+(i+1)*spatial]
				if c.Stride == 1 {
					off := kw - c.Pad
					if ihOff == 0 && off == 0 && c.outW == c.inW && c.outH == c.inH {
						// The center (or 1×1) tap of a same-size convolution
						// reads the whole channel verbatim: one memmove.
						copy(dst, src)
						continue
					}
					lo, hi, _ := rowSpan(c.outW, c.inW, off)
					ohLo, ohHi := rowBand(c.outH, c.inH, ihOff)
					if c.outW == c.inW && c.outH == c.inH {
						// Same-size tap: dst[oh·W+ow] = src[(oh+dy)·W+ow+dx]
						// is one plane-wide shift, so the whole valid region
						// copies as a single memmove. The elements that wrap
						// across row boundaries land exactly on the zero-pad
						// columns and are overwritten below.
						shift := ihOff*c.inW + off
						dlo := 0
						if shift < 0 {
							dlo = -shift
						}
						dhi := len(dst)
						if limit := len(dst) - shift; dhi > limit {
							dhi = limit
						}
						copy(dst[dlo:dhi], src[dlo+shift:dhi+shift])
						zeroSpan(dst[:ohLo*c.outW])
						zeroSpan(dst[ohHi*c.outW:])
						zeroCols(dst[ohLo*c.outW:ohHi*c.outW], c.outW, lo, hi)
						continue
					}
					// Valid output rows form one contiguous band; everything
					// in the band copies as one strided-rows kernel call and
					// the zero padding splits into the boundary rows (one
					// contiguous memclr each) plus the row edges.
					zeroSpan(dst[:ohLo*c.outW])
					zeroSpan(dst[ohHi*c.outW:])
					for oh := ohLo; oh < ohHi; oh++ {
						zeroSpan(dst[oh*c.outW : oh*c.outW+lo])
						zeroSpan(dst[oh*c.outW+hi : (oh+1)*c.outW])
					}
					if ohHi > ohLo && hi > lo {
						tensor.CopyRows(dst[ohLo*c.outW+lo:], src[(ohLo+ihOff)*c.inW+off+lo:],
							ohHi-ohLo, hi-lo, c.outW, c.inW)
					}
					continue
				}
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						row := dst[p : p+c.outW]
						for j := range row {
							row[j] = 0
						}
						p += c.outW
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[p] = src[rowBase+iw]
						} else {
							dst[p] = 0
						}
						p++
					}
				}
			}
		}
	}
}

// rowSpan returns the [lo,hi) range of output columns whose input column
// iw = ow + off lies in [0, inW), for a stride-1 row.
func rowSpan(outW, inW, off int) (lo, hi, offOut int) {
	lo = 0
	if off < 0 {
		lo = -off
	}
	hi = outW
	if limit := inW - off; hi > limit {
		hi = limit
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi, off
}

// rowBand returns the [ohLo,ohHi) range of output rows whose input row
// ih = oh + ihOff lies in [0, inH), clamped to [0, outH).
func rowBand(outH, inH, ihOff int) (ohLo, ohHi int) {
	ohLo = 0
	if ihOff < 0 {
		ohLo = -ihOff
	}
	if ohLo > outH {
		ohLo = outH
	}
	ohHi = outH
	if limit := inH - ihOff; ohHi > limit {
		ohHi = limit
	}
	if ohHi < ohLo {
		ohHi = ohLo
	}
	return ohLo, ohHi
}

// zeroSpan clears a slice (compiled to a memclr).
func zeroSpan[F tensor.Float](s []F) {
	for i := range s {
		s[i] = 0
	}
}

// zeroCols clears columns [0,lo) and [hi,w) of every w-wide row of plane.
// The one-column edges of a 3×3/pad-1 tap compile to a single strided store
// per row instead of a subslice per row.
func zeroCols[F tensor.Float](plane []F, w, lo, hi int) {
	if lo == 1 {
		for q := 0; q < len(plane); q += w {
			plane[q] = 0
		}
	} else if lo > 1 {
		for base := 0; base < len(plane); base += w {
			for q := base; q < base+lo; q++ {
				plane[q] = 0
			}
		}
	}
	if hi == w-1 {
		for q := w - 1; q < len(plane); q += w {
			plane[q] = 0
		}
	} else if hi < w-1 {
		for base := 0; base < len(plane); base += w {
			for q := base + hi; q < base+w; q++ {
				plane[q] = 0
			}
		}
	}
}

// col2im scatters sample i's column block of the gradient matrix back into
// dx, accumulating where receptive fields overlap. Stride-1 rows accumulate
// over one contiguous span with no per-pixel bounds checks. In the same-size
// geometry the first tap initializes each channel plane (copy plus edge
// clears), so callers skip zeroing dx beforehand; every other geometry
// accumulates into a caller-zeroed dx (see convInitsDX).
func col2im[F tensor.Float](c *Conv2D, dcolsd, dxd []F, i int) {
	spatial := c.outH * c.outW
	ns := c.batch * spatial
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	fast := c.convInitsDX()
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		dst := dxd[base+ch*chanSize : base+(ch+1)*chanSize]
		init := fast
		for kh := 0; kh < c.KH; kh++ {
			ihOff := kh - c.Pad
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				src := dcolsd[rowIdx*ns+i*spatial : rowIdx*ns+(i+1)*spatial]
				if c.Stride == 1 {
					off := kw - c.Pad
					if ihOff == 0 && off == 0 && c.outW == c.inW && c.outH == c.inH {
						// Center/1×1 tap: one whole-channel accumulate.
						if init {
							copy(dst, src)
							init = false
						} else {
							tensor.VecAccumulate(dst, src)
						}
						continue
					}
					lo, hi, _ := rowSpan(c.outW, c.inW, off)
					ohLo, ohHi := rowBand(c.outH, c.inH, ihOff)
					if c.outW == c.inW && c.outH == c.inH {
						// Same-size tap: the scatter dst[q+shift] += src[q]
						// is one plane-wide accumulate. src is the dcols
						// scratch (rebuilt by the next backward), so the pad
						// columns can be zeroed in place first; the positions
						// that would wrap across row boundaries read exactly
						// those zeroed elements and the out-of-band rows clip
						// against the plane bounds.
						shift := ihOff*c.inW + off
						zeroCols(src, c.outW, lo, hi)
						qlo := 0
						if shift < 0 {
							qlo = -shift
						}
						qhi := len(src)
						if limit := len(src) - shift; qhi > limit {
							qhi = limit
						}
						if init {
							// First tap of the channel plane: write instead
							// of accumulate and clear the clipped margins, so
							// dx needs no up-front zeroing.
							zeroSpan(dst[:qlo+shift])
							copy(dst[qlo+shift:qhi+shift], src[qlo:qhi])
							zeroSpan(dst[qhi+shift:])
							init = false
						} else {
							tensor.VecAccumulate(dst[qlo+shift:qhi+shift], src[qlo:qhi])
						}
						continue
					}
					if ohHi > ohLo && hi > lo {
						tensor.AccumulateRows(dst[(ohLo+ihOff)*c.inW+off+lo:], src[ohLo*c.outW+lo:],
							ohHi-ohLo, hi-lo, c.inW, c.outW)
					}
					continue
				}
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						p += c.outW
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[rowBase+iw] += src[p]
						}
						p++
					}
				}
			}
		}
	}
}

// parallelFor runs f(i) for i in [0,n) on the persistent tensor worker pool,
// partitioning indices contiguously.
func parallelFor(n int, f func(i int)) {
	tensor.ParallelSharded(n, tensor.Workers(), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
