package nn

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [N, C, H, W] inputs with optional grouped
// convolution (groups > 1 partitions input and output channels, as in
// ShuffleNet). Weights are stored as [outC, (inC/groups)·kH·kW] so the
// per-sample forward pass is a single matmul against an im2col matrix.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	Groups       int
	W, B         *Param
	inH, inW     int // set on first Forward
	outH, outW   int
	x            *tensor.Tensor // cached input
	cols         []*tensor.Tensor
	colsPerGroup int
	inCPerGroup  int
	outCPerGroup int
	kernelElems  int
}

// NewConv2D constructs a grouped convolution layer with He-normal weights.
func NewConv2D(inC, outC, k, stride, pad, groups int, rng *rand.Rand) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: Conv2D groups=%d must divide inC=%d and outC=%d", groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		inCPerGroup:  inC / groups,
		outCPerGroup: outC / groups,
	}
	c.kernelElems = c.inCPerGroup * k * k
	c.W = newParam("conv.W", outC, c.kernelElems)
	c.B = newParam("conv.B", outC)
	heInit(c.W.Value, c.kernelElems, rng)
	return c
}

// OutputShape returns the spatial output size for a given input size.
func (c *Conv2D) OutputShape(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Forward computes the convolution for a batch [N, C, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D.Forward input shape %v, want [N,%d,H,W]", x.Shape, c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.inH, c.inW = h, w
	c.outH, c.outW = c.OutputShape(h, w)
	if c.outH <= 0 || c.outW <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d not positive for input %dx%d", c.outH, c.outW, h, w))
	}
	c.x = x
	c.cols = make([]*tensor.Tensor, n)
	out := tensor.New(n, c.OutC, c.outH, c.outW)
	spatial := c.outH * c.outW
	parallelFor(n, func(i int) {
		cols := c.im2col(x, i)
		c.cols[i] = cols
		dst := out.Data[i*c.OutC*spatial : (i+1)*c.OutC*spatial]
		for g := 0; g < c.Groups; g++ {
			wg := c.groupWeight(c.W.Value, g)
			colsG := colsView(cols, g, c.kernelElems, spatial)
			prod := tensor.MatMul(wg, colsG)
			copy(dst[g*c.outCPerGroup*spatial:(g+1)*c.outCPerGroup*spatial], prod.Data)
		}
		b := c.B.Value.Data
		for oc := 0; oc < c.OutC; oc++ {
			bb := b[oc]
			seg := dst[oc*spatial : (oc+1)*spatial]
			for p := range seg {
				seg[p] += bb
			}
		}
	})
	return out
}

// Backward accumulates dW, dB and returns dX.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	spatial := c.outH * c.outW
	dx := tensor.New(n, c.InC, c.inH, c.inW)
	workers := maxWorkers(n)
	// Per-worker weight/bias gradient accumulators avoid a mutex on the hot
	// path; they are reduced after the parallel section.
	dWs := make([]*tensor.Tensor, workers)
	dBs := make([]*tensor.Tensor, workers)
	for w := range dWs {
		dWs[w] = tensor.New(c.OutC, c.kernelElems)
		dBs[w] = tensor.New(c.OutC)
	}
	parallelForWorkers(n, workers, func(worker, i int) {
		gradSample := grad.Data[i*c.OutC*spatial : (i+1)*c.OutC*spatial]
		dcols := tensor.New(c.Groups*c.kernelElems, spatial)
		for g := 0; g < c.Groups; g++ {
			gSeg := tensor.FromSlice(
				gradSample[g*c.outCPerGroup*spatial:(g+1)*c.outCPerGroup*spatial],
				c.outCPerGroup, spatial)
			colsG := colsView(c.cols[i], g, c.kernelElems, spatial)
			// dW_g += gSeg · colsᵀ
			dwg := tensor.MatMulABT(gSeg, colsG)
			dst := c.groupWeight(dWs[worker], g)
			dst.AddInPlace(dwg)
			// dcols_g = W_gᵀ · gSeg
			wg := c.groupWeight(c.W.Value, g)
			dcg := tensor.MatMulATB(wg, gSeg)
			copy(dcols.Data[g*c.kernelElems*spatial:(g+1)*c.kernelElems*spatial], dcg.Data)
		}
		db := dBs[worker].Data
		for oc := 0; oc < c.OutC; oc++ {
			seg := gradSample[oc*spatial : (oc+1)*spatial]
			var s float64
			for _, v := range seg {
				s += v
			}
			db[oc] += s
		}
		c.col2im(dcols, dx, i)
	})
	for w := range dWs {
		c.W.Grad.AddInPlace(dWs[w])
		c.B.Grad.AddInPlace(dBs[w])
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// groupWeight returns a view tensor of the rows of w belonging to group g.
func (c *Conv2D) groupWeight(w *tensor.Tensor, g int) *tensor.Tensor {
	lo := g * c.outCPerGroup * c.kernelElems
	hi := (g + 1) * c.outCPerGroup * c.kernelElems
	return tensor.FromSlice(w.Data[lo:hi], c.outCPerGroup, c.kernelElems)
}

// colsView returns group g's slice of an im2col matrix laid out as
// [groups·kernelElems, spatial].
func colsView(cols *tensor.Tensor, g, kernelElems, spatial int) *tensor.Tensor {
	lo := g * kernelElems * spatial
	hi := (g + 1) * kernelElems * spatial
	return tensor.FromSlice(cols.Data[lo:hi], kernelElems, spatial)
}

// im2col unrolls sample i of x into a [groups·kernelElems, outH·outW]
// matrix where each column holds the receptive field of one output pixel.
func (c *Conv2D) im2col(x *tensor.Tensor, i int) *tensor.Tensor {
	spatial := c.outH * c.outW
	cols := tensor.New(c.Groups*c.kernelElems, spatial)
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		src := x.Data[base+ch*chanSize : base+(ch+1)*chanSize]
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				dst := cols.Data[rowIdx*spatial : (rowIdx+1)*spatial]
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						p += c.outW
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[p] = src[rowBase+iw]
						}
						p++
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters a column-gradient matrix back into dx for sample i,
// accumulating where receptive fields overlap.
func (c *Conv2D) col2im(dcols, dx *tensor.Tensor, i int) {
	spatial := c.outH * c.outW
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		dst := dx.Data[base+ch*chanSize : base+(ch+1)*chanSize]
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				src := dcols.Data[rowIdx*spatial : (rowIdx+1)*spatial]
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						p += c.outW
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[rowBase+iw] += src[p]
						}
						p++
					}
				}
			}
		}
	}
}

// parallelFor runs f(i) for i in [0,n) on a GOMAXPROCS-bounded worker pool.
func parallelFor(n int, f func(i int)) {
	parallelForWorkers(n, maxWorkers(n), func(_, i int) { f(i) })
}

// maxWorkers bounds the pool size by both GOMAXPROCS and the trip count.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelForWorkers runs f(worker, i) for i in [0,n), partitioning indices
// contiguously across exactly `workers` goroutines. Each index is processed
// by exactly one worker, so per-worker accumulators need no locking.
func parallelForWorkers(n, workers int, f func(worker, i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(worker, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}
