package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [N, C, H, W] inputs with optional grouped
// convolution (groups > 1 partitions input and output channels, as in
// ShuffleNet). Weights are stored as [outC, (inC/groups)·kH·kW], and the
// whole batch is lowered into one im2col matrix of shape
// [groups·kernelElems, N·outH·outW] so the forward pass is a single GEMM per
// group per batch rather than one tiny GEMM per sample.
//
// The layer keeps its im2col, GEMM and gradient workspaces across calls;
// steady-state training allocates nothing. See the package comment for the
// activation aliasing contract.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	Groups       int
	W, B         *Param
	inH, inW     int // set on Forward
	outH, outW   int
	batch        int
	inCPerGroup  int
	outCPerGroup int
	kernelElems  int

	// Reusable workspaces, sized on first use and whenever the input
	// geometry changes. The backward-only workspaces (gmat, dcols, dx) are
	// allocated lazily in Backward so evaluation-mode forwards never pay
	// for them.
	cols    *tensor.Tensor // [Groups·kernelElems, N·spatial] im2col matrix
	gemmOut *tensor.Tensor // [outCPerGroup, N·spatial] per-group product
	gmat    *tensor.Tensor // [OutC, N·spatial] gathered output gradient
	dcols   *tensor.Tensor // [Groups·kernelElems, N·spatial] column gradient
	dx      *tensor.Tensor
	out     ring2
	bwdOK   bool // backward workspaces match the current geometry

	// Cached per-group views over the workspaces and weights, rebuilt only
	// on geometry changes so the hot path creates no tensor headers.
	wgV, dwV     []*tensor.Tensor
	colsV, gmatV []*tensor.Tensor
	dcolsV       []*tensor.Tensor
}

// NewConv2D constructs a grouped convolution layer with He-normal weights.
func NewConv2D(inC, outC, k, stride, pad, groups int, rng *rand.Rand) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: Conv2D groups=%d must divide inC=%d and outC=%d", groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		inCPerGroup:  inC / groups,
		outCPerGroup: outC / groups,
	}
	c.kernelElems = c.inCPerGroup * k * k
	c.W = newParam("conv.W", outC, c.kernelElems)
	c.B = newParam("conv.B", outC)
	heInit(c.W.Value, c.kernelElems, rng)
	return c
}

// OutputShape returns the spatial output size for a given input size.
func (c *Conv2D) OutputShape(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// ensureWorkspace (re)builds the batch workspaces and group views when the
// input geometry changes; with a stable geometry it is a cheap no-op.
func (c *Conv2D) ensureWorkspace(n, h, w int) {
	oh, ow := c.OutputShape(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d not positive for input %dx%d", oh, ow, h, w))
	}
	if n == c.batch && h == c.inH && w == c.inW && c.cols != nil {
		return
	}
	c.batch, c.inH, c.inW, c.outH, c.outW = n, h, w, oh, ow
	c.bwdOK = false
	ns := n * oh * ow
	ke, sp := c.kernelElems, ns
	c.cols = tensor.Ensure(c.cols, c.Groups*ke, sp)
	c.gemmOut = tensor.Ensure(c.gemmOut, c.outCPerGroup, sp)
	if len(c.wgV) != c.Groups {
		c.wgV = make([]*tensor.Tensor, c.Groups)
		c.dwV = make([]*tensor.Tensor, c.Groups)
		c.colsV = make([]*tensor.Tensor, c.Groups)
		c.gmatV = make([]*tensor.Tensor, c.Groups)
		c.dcolsV = make([]*tensor.Tensor, c.Groups)
	}
	for g := 0; g < c.Groups; g++ {
		wlo, whi := g*c.outCPerGroup*ke, (g+1)*c.outCPerGroup*ke
		setView(&c.wgV[g], c.W.Value.Data[wlo:whi], c.outCPerGroup, ke)
		setView(&c.colsV[g], c.cols.Data[g*ke*sp:(g+1)*ke*sp], ke, sp)
	}
}

// ensureBackwardWorkspace lazily sizes the gradient workspaces to the
// geometry of the preceding Forward. Evaluation-only layers never build
// them.
func (c *Conv2D) ensureBackwardWorkspace() {
	if c.bwdOK {
		return
	}
	ke := c.kernelElems
	sp := c.batch * c.outH * c.outW
	c.gmat = tensor.Ensure(c.gmat, c.OutC, sp)
	c.dcols = tensor.Ensure(c.dcols, c.Groups*ke, sp)
	for g := 0; g < c.Groups; g++ {
		wlo, whi := g*c.outCPerGroup*ke, (g+1)*c.outCPerGroup*ke
		setView(&c.dwV[g], c.W.Grad.Data[wlo:whi], c.outCPerGroup, ke)
		setView(&c.dcolsV[g], c.dcols.Data[g*ke*sp:(g+1)*ke*sp], ke, sp)
		setView(&c.gmatV[g], c.gmat.Data[g*c.outCPerGroup*sp:(g+1)*c.outCPerGroup*sp], c.outCPerGroup, sp)
	}
	c.bwdOK = true
}

// setView retargets a cached rank-2 view header at a slice of workspace
// storage, allocating the header only once per group.
func setView(vp **tensor.Tensor, data []float64, r, cols int) {
	v := *vp
	if v == nil {
		v = &tensor.Tensor{}
		*vp = v
	}
	v.Data = data
	v.Shape = append(v.Shape[:0], r, cols)
}

// Forward computes the convolution for a batch [N, C, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D.Forward input shape %v, want [N,%d,H,W]", x.Shape, c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.ensureWorkspace(n, h, w)
	spatial := c.outH * c.outW
	out := c.out.next(n, c.OutC, c.outH, c.outW)
	parallelFor(n, func(i int) { c.im2col(x, i) })
	for g := 0; g < c.Groups; g++ {
		tensor.MatMulInto(c.gemmOut, c.wgV[g], c.colsV[g])
		// Scatter [outCPerGroup, N·spatial] back to the per-sample layout,
		// fusing the bias add.
		for oc := 0; oc < c.outCPerGroup; oc++ {
			ch := g*c.outCPerGroup + oc
			bias := c.B.Value.Data[ch]
			src := c.gemmOut.Data[oc*n*spatial : (oc+1)*n*spatial]
			for i := 0; i < n; i++ {
				seg := src[i*spatial : (i+1)*spatial]
				dst := out.Data[(i*c.OutC+ch)*spatial : (i*c.OutC+ch+1)*spatial]
				for p, v := range seg {
					dst[p] = v + bias
				}
			}
		}
	}
	return out
}

// Backward accumulates dW, dB and returns dX. It reuses the im2col matrix
// built by the preceding Forward call.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	if n != c.batch || grad.Dim(1) != c.OutC {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad shape %v does not match forward batch %d", grad.Shape, c.batch))
	}
	c.ensureBackwardWorkspace()
	spatial := c.outH * c.outW
	// Gather the gradient into [OutC, N·spatial] channel-major layout so the
	// weight and column gradients are one GEMM per group each.
	gm := c.gmat.Data
	parallelFor(c.OutC, func(ch int) {
		dst := gm[ch*n*spatial : (ch+1)*n*spatial]
		for i := 0; i < n; i++ {
			copy(dst[i*spatial:(i+1)*spatial], grad.Data[(i*c.OutC+ch)*spatial:(i*c.OutC+ch+1)*spatial])
		}
	})
	db := c.B.Grad.Data
	for ch := 0; ch < c.OutC; ch++ {
		seg := gm[ch*n*spatial : (ch+1)*n*spatial]
		var s float64
		for _, v := range seg {
			s += v
		}
		db[ch] += s
	}
	for g := 0; g < c.Groups; g++ {
		// dW_g += gmat_g · colsᵀ_g
		tensor.MatMulABTAcc(c.dwV[g], c.gmatV[g], c.colsV[g])
		// dcols_g = W_gᵀ · gmat_g
		tensor.MatMulATBInto(c.dcolsV[g], c.wgV[g], c.gmatV[g])
	}
	c.dx = tensor.Ensure(c.dx, n, c.InC, c.inH, c.inW)
	c.dx.Zero()
	parallelFor(n, func(i int) { c.col2im(c.dcols, c.dx, i) })
	return c.dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// im2col unrolls sample i of x into its column block of the batch im2col
// matrix: cols[row, i·spatial + p] holds the receptive-field element `row`
// of output pixel p. Every position is written, so the workspace needs no
// zeroing between batches.
func (c *Conv2D) im2col(x *tensor.Tensor, i int) {
	spatial := c.outH * c.outW
	ns := c.batch * spatial
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		src := x.Data[base+ch*chanSize : base+(ch+1)*chanSize]
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				dst := c.cols.Data[rowIdx*ns+i*spatial : rowIdx*ns+(i+1)*spatial]
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						for ow := 0; ow < c.outW; ow++ {
							dst[p] = 0
							p++
						}
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[p] = src[rowBase+iw]
						} else {
							dst[p] = 0
						}
						p++
					}
				}
			}
		}
	}
}

// col2im scatters sample i's column block of the gradient matrix back into
// dx, accumulating where receptive fields overlap.
func (c *Conv2D) col2im(dcols, dx *tensor.Tensor, i int) {
	spatial := c.outH * c.outW
	ns := c.batch * spatial
	chanSize := c.inH * c.inW
	base := i * c.InC * chanSize
	for ch := 0; ch < c.InC; ch++ {
		g := ch / c.inCPerGroup
		chInG := ch % c.inCPerGroup
		dst := dx.Data[base+ch*chanSize : base+(ch+1)*chanSize]
		for kh := 0; kh < c.KH; kh++ {
			for kw := 0; kw < c.KW; kw++ {
				rowIdx := g*c.kernelElems + (chInG*c.KH+kh)*c.KW + kw
				src := dcols.Data[rowIdx*ns+i*spatial : rowIdx*ns+(i+1)*spatial]
				p := 0
				for oh := 0; oh < c.outH; oh++ {
					ih := oh*c.Stride - c.Pad + kh
					if ih < 0 || ih >= c.inH {
						p += c.outW
						continue
					}
					rowBase := ih * c.inW
					for ow := 0; ow < c.outW; ow++ {
						iw := ow*c.Stride - c.Pad + kw
						if iw >= 0 && iw < c.inW {
							dst[rowBase+iw] += src[p]
						}
						p++
					}
				}
			}
		}
	}
}

// parallelFor runs f(i) for i in [0,n) on the persistent tensor worker pool,
// partitioning indices contiguously.
func parallelFor(n int, f func(i int)) {
	tensor.ParallelSharded(n, tensor.Workers(), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
