package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b with x of shape [N, in].
// Output and input-gradient buffers are reused across iterations; the weight
// gradient accumulates directly into W.Grad, so a steady-state step
// allocates nothing. All buffers follow the parameters' dtype.
type Dense struct {
	In, Out int
	W, B    *Param

	x   *tensor.Tensor // cached input
	out ring2
	dx  *tensor.Tensor
}

// NewDense builds a dense layer with He-normal weights and zero biases.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam("dense.W", in, out),
		B:   newParam("dense.B", out),
	}
	heInit(d.W.Value, in, rng)
	return d
}

// Forward computes y = x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Cols() != d.In {
		panicShape("Dense.Forward", x, d.In)
	}
	if x.DT != d.W.Value.DT {
		panic(fmt.Sprintf("nn: Dense.Forward input dtype %v, model is %v (cast inputs at the model boundary)", x.DT, d.W.Value.DT))
	}
	d.x = x
	n := x.Rows()
	y := d.out.next(x.DT, n, d.Out)
	tensor.MatMulInto(y, x, d.W.Value)
	if y.DT.Backing() == tensor.F32 {
		addBiasRows(tensor.Of[float32](y), tensor.Of[float32](d.B.Value), n, d.Out)
	} else {
		addBiasRows(y.Data, d.B.Value.Data, n, d.Out)
	}
	return y
}

func addBiasRows[F tensor.Float](y, b []F, n, cols int) {
	for i := 0; i < n; i++ {
		row := y[i*cols : (i+1)*cols]
		for j := range row {
			row[j] += b[j]
		}
	}
}

// Backward accumulates dW += xᵀ·dy, db += Σ_rows dy and returns dx = dy·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulATBAcc(d.W.Grad, d.x, grad)
	tensor.ColSumsAcc(d.B.Grad, grad)
	d.dx = tensor.EnsureOf(grad.DT, d.dx, grad.Rows(), d.In)
	tensor.MatMulABTInto(d.dx, grad, d.W.Value)
	return d.dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

func panicShape(op string, x *tensor.Tensor, want int) {
	panic(fmt.Sprintf("%s: unexpected input shape %v (want trailing dim %d)", op, x.Shape, want))
}
