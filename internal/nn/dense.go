package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b with x of shape [N, in].
type Dense struct {
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input
}

// NewDense builds a dense layer with He-normal weights and zero biases.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam("dense.W", in, out),
		B:   newParam("dense.B", out),
	}
	heInit(d.W.Value, in, rng)
	return d
}

// Forward computes y = x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Cols() != d.In {
		panicShape("Dense.Forward", x, d.In)
	}
	d.x = x
	y := tensor.MatMul(x, d.W.Value)
	n := y.Rows()
	b := d.B.Value.Data
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
	return y
}

// Backward accumulates dW = xᵀ·dy, db = Σ_rows dy and returns dx = dy·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dW := tensor.MatMulATB(d.x, grad)
	d.W.Grad.AddInPlace(dW)
	db := d.B.Grad.Data
	for i := 0; i < grad.Rows(); i++ {
		row := grad.Row(i)
		for j, v := range row {
			db[j] += v
		}
	}
	return tensor.MatMulABT(grad, d.W.Value)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

func panicShape(op string, x *tensor.Tensor, want int) {
	panic(fmt.Sprintf("%s: unexpected input shape %v (want trailing dim %d)", op, x.Shape, want))
}
