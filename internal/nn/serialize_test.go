package nn

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSequential(NewDense(5, 7, rng), NewReLU(), NewDense(7, 3, rng))
	dst := NewSequential(NewDense(5, 7, rng), NewReLU(), NewDense(7, 3, rng))

	blob, err := MarshalParams(src.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalParams(blob, dst.Params()); err != nil {
		t.Fatal(err)
	}
	fs, fd := FlattenParams(src.Params()), FlattenParams(dst.Params())
	for i := range fs {
		if fs[i] != fd[i] {
			t.Fatalf("value mismatch at %d", i)
		}
	}
}

func TestCheckpointRejectsStructureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewDense(4, 4, rng)
	blob, err := MarshalParams(src.Params())
	if err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	other := NewDense(4, 5, rng)
	if err := UnmarshalParams(blob, other.Params()); err == nil {
		t.Fatal("shape mismatch must error")
	}
	// Wrong parameter count.
	seq := NewSequential(NewDense(4, 4, rng), NewDense(4, 4, rng))
	if err := UnmarshalParams(blob, seq.Params()); err == nil {
		t.Fatal("count mismatch must error")
	}
	// Corrupt magic.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if err := UnmarshalParams(bad, src.Params()); err == nil {
		t.Fatal("bad magic must error")
	}
	// Truncated payload.
	if err := UnmarshalParams(blob[:len(blob)-5], src.Params()); err == nil {
		t.Fatal("truncation must error")
	}
}

// Property: any randomly perturbed parameter set survives a round trip
// bit-exactly.
func TestCheckpointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NewConv2D(2, 3, 3, 1, 1, 1, rng)
		for _, p := range src.Params() {
			p.Value.FillRandn(rng, 2)
		}
		dst := NewConv2D(2, 3, 3, 1, 1, 1, rng)
		var buf bytes.Buffer
		if err := WriteParams(&buf, src.Params()); err != nil {
			return false
		}
		if err := ReadParams(&buf, dst.Params()); err != nil {
			return false
		}
		fs, fd := FlattenParams(src.Params()), FlattenParams(dst.Params())
		for i := range fs {
			if fs[i] != fd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
