package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dθ for one scalar θ via central differences.
func numericalGrad(set func(v float64), get func() float64, lossFn func() float64) float64 {
	const eps = 1e-5
	orig := get()
	set(orig + eps)
	up := lossFn()
	set(orig - eps)
	down := lossFn()
	set(orig)
	return (up - down) / (2 * eps)
}

// quadLoss is a simple deterministic scalar loss over a tensor: Σ a_i·y_i²/2
// with fixed pseudo-random a, so dL/dy_i = a_i·y_i.
func quadLoss(y *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.New(y.Shape...)
	var l float64
	for i, v := range y.Data {
		a := 0.5 + float64((i*2654435761)%97)/97.0
		l += 0.5 * a * v * v
		grad.Data[i] = a * v
	}
	return l, grad
}

// checkLayerGradients verifies analytic parameter and input gradients of a
// layer against finite differences through quadLoss.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	lossFn := func() float64 {
		y := layer.Forward(x.Clone(), true)
		l, _ := quadLoss(y)
		return l
	}
	// Analytic gradients.
	ZeroGrads(layer.Params())
	y := layer.Forward(x.Clone(), true)
	_, dy := quadLoss(y)
	dx := layer.Backward(dy)

	for _, p := range layer.Params() {
		for j := 0; j < p.Value.Size(); j += gradStride(p.Value.Size()) {
			got := p.Grad.Data[j]
			want := numericalGrad(
				func(v float64) { p.Value.Data[j] = v },
				func() float64 { return p.Value.Data[j] },
				lossFn)
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, j, got, want)
			}
		}
	}
	for j := 0; j < x.Size(); j += gradStride(x.Size()) {
		got := dx.Data[j]
		want := numericalGrad(
			func(v float64) { x.Data[j] = v },
			func() float64 { return x.Data[j] },
			lossFn)
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("dx[%d]: analytic %g vs numeric %g", j, got, want)
		}
	}
}

// gradStride samples a subset of coordinates for large tensors to keep the
// finite-difference checks fast while still covering every region.
func gradStride(n int) int {
	if n <= 64 {
		return 1
	}
	return n/64 + 1
}

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.FillRandn(rng, 1)
	return x
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(7, 5, rng)
	checkLayerGradients(t, layer, randInput(rng, 4, 7), 1e-6)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D(2, 3, 3, 1, 1, 1, rng)
	checkLayerGradients(t, layer, randInput(rng, 2, 2, 5, 5), 1e-5)
}

func TestConv2DStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewConv2D(2, 4, 3, 2, 1, 1, rng)
	checkLayerGradients(t, layer, randInput(rng, 2, 2, 6, 6), 1e-5)
}

func TestConv2DGroupedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewConv2D(4, 4, 3, 1, 1, 2, rng)
	checkLayerGradients(t, layer, randInput(rng, 2, 4, 4, 4), 1e-5)
}

func TestConv2DPointwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewConv2D(4, 6, 1, 1, 0, 1, rng)
	checkLayerGradients(t, layer, randInput(rng, 3, 4, 3, 3), 1e-5)
}

func TestBatchNorm2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewBatchNorm2D(3)
	// Nudge gamma/beta off their init so gradients are generic.
	layer.Gamma.Value.FillUniform(rng, 0.5, 1.5)
	layer.Beta.Value.FillUniform(rng, -0.5, 0.5)
	checkLayerGradients(t, layer, randInput(rng, 4, 3, 3, 3), 1e-4)
}

func TestBatchNorm1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewBatchNorm1D(6)
	layer.Gamma.Value.FillUniform(rng, 0.5, 1.5)
	layer.Beta.Value.FillUniform(rng, -0.5, 0.5)
	checkLayerGradients(t, layer, randInput(rng, 5, 6), 1e-4)
}

func TestBatchNormEvalModeBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewBatchNorm1D(4)
	// Train once to move running stats, then check eval-mode gradients.
	x := randInput(rng, 6, 4)
	layer.Forward(x, true)
	evalX := randInput(rng, 3, 4)
	lossFn := func() float64 {
		y := layer.Forward(evalX.Clone(), false)
		l, _ := quadLoss(y)
		return l
	}
	y := layer.Forward(evalX.Clone(), false)
	_, dy := quadLoss(y)
	dx := layer.Backward(dy)
	for j := 0; j < evalX.Size(); j++ {
		want := numericalGrad(
			func(v float64) { evalX.Data[j] = v },
			func() float64 { return evalX.Data[j] },
			lossFn)
		if math.Abs(dx.Data[j]-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("eval dx[%d]: analytic %g vs numeric %g", j, dx.Data[j], want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layer := NewMaxPool2D(2, 2)
	checkLayerGradients(t, layer, randInput(rng, 2, 2, 4, 4), 1e-6)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	layer := NewGlobalAvgPool()
	checkLayerGradients(t, layer, randInput(rng, 2, 3, 4, 4), 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layer := NewReLU()
	checkLayerGradients(t, layer, randInput(rng, 3, 9), 1e-6)
}

func TestChannelShuffleGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layer := NewChannelShuffle(2)
	checkLayerGradients(t, layer, randInput(rng, 2, 4, 3, 3), 1e-6)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	body := NewSequential(
		NewConv2D(2, 2, 3, 1, 1, 1, rng),
		NewReLU(),
	)
	layer := NewResidual(body, nil)
	checkLayerGradients(t, layer, randInput(rng, 2, 2, 4, 4), 1e-5)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	body := NewSequential(
		NewConv2D(2, 4, 3, 1, 1, 1, rng),
	)
	skip := NewSequential(
		NewConv2D(2, 4, 1, 1, 0, 1, rng),
	)
	layer := NewResidual(body, skip)
	checkLayerGradients(t, layer, randInput(rng, 2, 2, 4, 4), 1e-5)
}

func TestInceptionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	layer := NewInception(
		NewSequential(NewConv2D(3, 2, 1, 1, 0, 1, rng), NewReLU()),
		NewSequential(NewConv2D(3, 2, 1, 1, 0, 1, rng), NewReLU(), NewConv2D(2, 3, 3, 1, 1, 1, rng)),
	)
	checkLayerGradients(t, layer, randInput(rng, 2, 3, 4, 4), 1e-5)
}

func TestSequentialCompositeGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	layer := NewSequential(
		NewConv2D(1, 3, 3, 1, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(3*3*3, 4, rng),
	)
	checkLayerGradients(t, layer, randInput(rng, 2, 1, 6, 6), 1e-5)
}
