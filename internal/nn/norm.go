package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Batch normalization's per-element state (the normalized cache, outputs and
// gradients) is dtype-bound and flows in the model's element type; the
// per-channel statistics (batch and running mean/variance, inverse stddev)
// are scalars per channel, not per element, so they stay float64 bookkeeping
// at every dtype — the conversion to the compute dtype happens once per
// channel, off the per-element hot path (DESIGN.md §7).

// BatchNorm2D normalizes each channel of [N, C, H, W] activations over the
// batch and spatial dimensions, with learnable scale (gamma) and shift
// (beta). Running statistics are tracked for evaluation mode.
type BatchNorm2D struct {
	C           int
	Eps         float64
	Momentum    float64
	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	// caches for backward (reused across iterations)
	xhat           *tensor.Tensor
	invStd         []float64
	inShape        []int
	usedBatchStats bool
	out            ring2
	dx             *tensor.Tensor
}

// NewBatchNorm2D builds a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       newParam("bn2d.gamma", c),
		Beta:        newParam("bn2d.beta", c),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics in training mode and running
// statistics in evaluation mode.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D input shape %v, want [N,%d,H,W]", x.Shape, bn.C))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	bn.inShape = append(bn.inShape[:0], n, c, h, w)
	out := bn.out.next(x.DT, n, c, h, w)
	bn.xhat = tensor.EnsureOf(x.DT, bn.xhat, n, c, h, w)
	if cap(bn.invStd) < c {
		bn.invStd = make([]float64, c)
	}
	bn.invStd = bn.invStd[:c]
	bn.usedBatchStats = train
	if x.DT.Backing() == tensor.F32 {
		bn2dForward(bn, tensor.Of[float32](x), tensor.Of[float32](out), tensor.Of[float32](bn.xhat),
			tensor.Of[float32](bn.Gamma.Value), tensor.Of[float32](bn.Beta.Value), n, c, h, w, train)
	} else {
		bn2dForward(bn, x.Data, out.Data, bn.xhat.Data, bn.Gamma.Value.Data, bn.Beta.Value.Data, n, c, h, w, train)
	}
	return out
}

func bn2dForward[F tensor.Float](bn *BatchNorm2D, xd, outd, xhd, gamma, beta []F, n, c, h, w int, train bool) {
	m := float64(n * h * w)
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			// Reductions accumulate in the element type: bit-identical on the
			// float64 path, and free of per-element widening on float32 (the
			// batch statistics still land in the float64 running buffers).
			var s F
			for i := 0; i < n; i++ {
				s = tensor.SumAcc(s, xd[(i*c+ch)*h*w:(i*c+ch+1)*h*w])
			}
			mean = float64(s) / m
			var sq F
			meanN := F(mean)
			for i := 0; i < n; i++ {
				sq = tensor.SqDiffAcc(sq, xd[(i*c+ch)*h*w:(i*c+ch+1)*h*w], meanN)
			}
			variance = float64(sq) / m
			bn.RunningMean[ch] = bn.Momentum*bn.RunningMean[ch] + (1-bn.Momentum)*mean
			bn.RunningVar[ch] = bn.Momentum*bn.RunningVar[ch] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.RunningMean[ch], bn.RunningVar[ch]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[ch] = inv
		g, b := gamma[ch], beta[ch]
		meanF, invF := F(mean), F(inv)
		for i := 0; i < n; i++ {
			lo, hi := (i*c+ch)*h*w, (i*c+ch+1)*h*w
			tensor.BNNormalize(xd[lo:hi], xhd[lo:hi], outd[lo:hi], meanF, invF, g, b)
		}
	}
}

// Backward implements the standard batch-norm gradient. For each channel
// with m elements: dx = γ·invStd/m · (m·dy − Σdy − x̂·Σ(dy·x̂)).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := bn.inShape[0], bn.inShape[1], bn.inShape[2], bn.inShape[3]
	bn.dx = tensor.EnsureOf(grad.DT, bn.dx, n, c, h, w)
	if grad.DT.Backing() == tensor.F32 {
		bn2dBackward(bn, tensor.Of[float32](grad), tensor.Of[float32](bn.xhat), tensor.Of[float32](bn.dx),
			tensor.Of[float32](bn.Gamma.Value), tensor.Of[float32](bn.Gamma.Grad), tensor.Of[float32](bn.Beta.Grad), n, c, h, w)
	} else {
		bn2dBackward(bn, grad.Data, bn.xhat.Data, bn.dx.Data,
			bn.Gamma.Value.Data, bn.Gamma.Grad.Data, bn.Beta.Grad.Data, n, c, h, w)
	}
	return bn.dx
}

func bn2dBackward[F tensor.Float](bn *BatchNorm2D, gradd, xhd, dxd, gamma, dGamma, dBeta []F, n, c, h, w int) {
	m := float64(n * h * w)
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat F
		for i := 0; i < n; i++ {
			sumDy, sumDyXhat = tensor.DotSumAcc(sumDy, sumDyXhat,
				gradd[(i*c+ch)*h*w:(i*c+ch+1)*h*w], xhd[(i*c+ch)*h*w:(i*c+ch+1)*h*w])
		}
		dGamma[ch] += sumDyXhat
		dBeta[ch] += sumDy
		if !bn.usedBatchStats {
			// Running statistics were constants in Forward, so the
			// normalization is an affine map: dx = γ·invStd·dy.
			scale := F(float64(gamma[ch]) * bn.invStd[ch])
			for i := 0; i < n; i++ {
				gy := gradd[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				dst := dxd[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for p, v := range gy {
					dst[p] = scale * v
				}
			}
			continue
		}
		scale := F(float64(gamma[ch]) * bn.invStd[ch] / m)
		mF := F(m)
		for i := 0; i < n; i++ {
			lo, hi := (i*c+ch)*h*w, (i*c+ch+1)*h*w
			tensor.BNGrad(gradd[lo:hi], xhd[lo:hi], dxd[lo:hi], scale, mF, sumDy, sumDyXhat)
		}
	}
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Buffers returns the running statistics, the layer's non-trainable state.
func (bn *BatchNorm2D) Buffers() [][]float64 {
	return [][]float64{bn.RunningMean, bn.RunningVar}
}

// BatchNorm1D normalizes each feature of [N, D] activations over the batch.
type BatchNorm1D struct {
	D           int
	Eps         float64
	Momentum    float64
	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	xhat           *tensor.Tensor
	invStd         []float64
	usedBatchStats bool
	out            ring2
	dx             *tensor.Tensor
}

// NewBatchNorm1D builds a batch-norm layer for d features.
func NewBatchNorm1D(d int) *BatchNorm1D {
	bn := &BatchNorm1D{
		D:           d,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       newParam("bn1d.gamma", d),
		Beta:        newParam("bn1d.beta", d),
		RunningMean: make([]float64, d),
		RunningVar:  make([]float64, d),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics in training mode and running
// statistics in evaluation mode.
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Cols() != bn.D {
		panic(fmt.Sprintf("nn: BatchNorm1D input shape %v, want [N,%d]", x.Shape, bn.D))
	}
	n := x.Rows()
	out := bn.out.next(x.DT, n, bn.D)
	bn.xhat = tensor.EnsureOf(x.DT, bn.xhat, n, bn.D)
	if cap(bn.invStd) < bn.D {
		bn.invStd = make([]float64, bn.D)
	}
	bn.invStd = bn.invStd[:bn.D]
	bn.usedBatchStats = train && n > 1
	if x.DT.Backing() == tensor.F32 {
		bn1dForward(bn, tensor.Of[float32](x), tensor.Of[float32](out), tensor.Of[float32](bn.xhat),
			tensor.Of[float32](bn.Gamma.Value), tensor.Of[float32](bn.Beta.Value), n)
	} else {
		bn1dForward(bn, x.Data, out.Data, bn.xhat.Data, bn.Gamma.Value.Data, bn.Beta.Value.Data, n)
	}
	return out
}

func bn1dForward[F tensor.Float](bn *BatchNorm1D, xd, outd, xhd, gamma, beta []F, n int) {
	m := float64(n)
	d := bn.D
	for j := 0; j < d; j++ {
		var mean, variance float64
		if bn.usedBatchStats {
			var s float64
			for i := 0; i < n; i++ {
				s += float64(xd[i*d+j])
			}
			mean = s / m
			var sq float64
			for i := 0; i < n; i++ {
				dv := float64(xd[i*d+j]) - mean
				sq += dv * dv
			}
			variance = sq / m
			bn.RunningMean[j] = bn.Momentum*bn.RunningMean[j] + (1-bn.Momentum)*mean
			bn.RunningVar[j] = bn.Momentum*bn.RunningVar[j] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.RunningMean[j], bn.RunningVar[j]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[j] = inv
		g, b := gamma[j], beta[j]
		meanF, invF := F(mean), F(inv)
		for i := 0; i < n; i++ {
			nv := (xd[i*d+j] - meanF) * invF
			xhd[i*d+j] = nv
			outd[i*d+j] = g*nv + b
		}
	}
}

// Backward implements the standard batch-norm gradient per feature.
func (bn *BatchNorm1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Rows()
	bn.dx = tensor.EnsureOf(grad.DT, bn.dx, n, bn.D)
	if grad.DT.Backing() == tensor.F32 {
		bn1dBackward(bn, tensor.Of[float32](grad), tensor.Of[float32](bn.xhat), tensor.Of[float32](bn.dx),
			tensor.Of[float32](bn.Gamma.Value), tensor.Of[float32](bn.Gamma.Grad), tensor.Of[float32](bn.Beta.Grad), n)
	} else {
		bn1dBackward(bn, grad.Data, bn.xhat.Data, bn.dx.Data,
			bn.Gamma.Value.Data, bn.Gamma.Grad.Data, bn.Beta.Grad.Data, n)
	}
	return bn.dx
}

func bn1dBackward[F tensor.Float](bn *BatchNorm1D, gradd, xhd, dxd, gamma, dGamma, dBeta []F, n int) {
	m := float64(n)
	d := bn.D
	for j := 0; j < d; j++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			v := float64(gradd[i*d+j])
			sumDy += v
			sumDyXhat += v * float64(xhd[i*d+j])
		}
		dGamma[j] += F(sumDyXhat)
		dBeta[j] += F(sumDy)
		if !bn.usedBatchStats {
			scale := F(float64(gamma[j]) * bn.invStd[j])
			for i := 0; i < n; i++ {
				dxd[i*d+j] = scale * gradd[i*d+j]
			}
			continue
		}
		scale := F(float64(gamma[j]) * bn.invStd[j] / m)
		mF, sumDyF, sumDyXhatF := F(m), F(sumDy), F(sumDyXhat)
		for i := 0; i < n; i++ {
			dxd[i*d+j] = scale * (mF*gradd[i*d+j] - sumDyF - xhd[i*d+j]*sumDyXhatF)
		}
	}
}

// Params returns gamma and beta.
func (bn *BatchNorm1D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Buffers returns the running statistics, the layer's non-trainable state.
func (bn *BatchNorm1D) Buffers() [][]float64 {
	return [][]float64{bn.RunningMean, bn.RunningVar}
}
