package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of [N, C, H, W] activations over the
// batch and spatial dimensions, with learnable scale (gamma) and shift
// (beta). Running statistics are tracked for evaluation mode.
type BatchNorm2D struct {
	C           int
	Eps         float64
	Momentum    float64
	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	// caches for backward (reused across iterations)
	xhat           *tensor.Tensor
	invStd         []float64
	inShape        []int
	usedBatchStats bool
	out            ring2
	dx             *tensor.Tensor
}

// NewBatchNorm2D builds a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       newParam("bn2d.gamma", c),
		Beta:        newParam("bn2d.beta", c),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics in training mode and running
// statistics in evaluation mode.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D input shape %v, want [N,%d,H,W]", x.Shape, bn.C))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	bn.inShape = append(bn.inShape[:0], n, c, h, w)
	m := float64(n * h * w)
	out := bn.out.next(n, c, h, w)
	bn.xhat = tensor.Ensure(bn.xhat, n, c, h, w)
	if cap(bn.invStd) < c {
		bn.invStd = make([]float64, c)
	}
	bn.invStd = bn.invStd[:c]
	gamma, beta := bn.Gamma.Value.Data, bn.Beta.Value.Data
	bn.usedBatchStats = train
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			var s float64
			for i := 0; i < n; i++ {
				seg := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for _, v := range seg {
					s += v
				}
			}
			mean = s / m
			var sq float64
			for i := 0; i < n; i++ {
				seg := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for _, v := range seg {
					d := v - mean
					sq += d * d
				}
			}
			variance = sq / m
			bn.RunningMean[ch] = bn.Momentum*bn.RunningMean[ch] + (1-bn.Momentum)*mean
			bn.RunningVar[ch] = bn.Momentum*bn.RunningVar[ch] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.RunningMean[ch], bn.RunningVar[ch]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[ch] = inv
		g, b := gamma[ch], beta[ch]
		for i := 0; i < n; i++ {
			src := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			xh := bn.xhat.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			dst := out.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for p, v := range src {
				nv := (v - mean) * inv
				xh[p] = nv
				dst[p] = g*nv + b
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient. For each channel
// with m elements: dx = γ·invStd/m · (m·dy − Σdy − x̂·Σ(dy·x̂)).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := bn.inShape[0], bn.inShape[1], bn.inShape[2], bn.inShape[3]
	m := float64(n * h * w)
	bn.dx = tensor.Ensure(bn.dx, n, c, h, w)
	dx := bn.dx
	gamma := bn.Gamma.Value.Data
	dGamma, dBeta := bn.Gamma.Grad.Data, bn.Beta.Grad.Data
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			gy := grad.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			xh := bn.xhat.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for p, v := range gy {
				sumDy += v
				sumDyXhat += v * xh[p]
			}
		}
		dGamma[ch] += sumDyXhat
		dBeta[ch] += sumDy
		if !bn.usedBatchStats {
			// Running statistics were constants in Forward, so the
			// normalization is an affine map: dx = γ·invStd·dy.
			scale := gamma[ch] * bn.invStd[ch]
			for i := 0; i < n; i++ {
				gy := grad.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				dst := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for p, v := range gy {
					dst[p] = scale * v
				}
			}
			continue
		}
		scale := gamma[ch] * bn.invStd[ch] / m
		for i := 0; i < n; i++ {
			gy := grad.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			xh := bn.xhat.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			dst := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for p, v := range gy {
				dst[p] = scale * (m*v - sumDy - xh[p]*sumDyXhat)
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Buffers returns the running statistics, the layer's non-trainable state.
func (bn *BatchNorm2D) Buffers() [][]float64 {
	return [][]float64{bn.RunningMean, bn.RunningVar}
}

// BatchNorm1D normalizes each feature of [N, D] activations over the batch.
type BatchNorm1D struct {
	D           int
	Eps         float64
	Momentum    float64
	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	xhat           *tensor.Tensor
	invStd         []float64
	usedBatchStats bool
	out            ring2
	dx             *tensor.Tensor
}

// NewBatchNorm1D builds a batch-norm layer for d features.
func NewBatchNorm1D(d int) *BatchNorm1D {
	bn := &BatchNorm1D{
		D:           d,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       newParam("bn1d.gamma", d),
		Beta:        newParam("bn1d.beta", d),
		RunningMean: make([]float64, d),
		RunningVar:  make([]float64, d),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics in training mode and running
// statistics in evaluation mode.
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Cols() != bn.D {
		panic(fmt.Sprintf("nn: BatchNorm1D input shape %v, want [N,%d]", x.Shape, bn.D))
	}
	n := x.Rows()
	m := float64(n)
	out := bn.out.next(n, bn.D)
	bn.xhat = tensor.Ensure(bn.xhat, n, bn.D)
	if cap(bn.invStd) < bn.D {
		bn.invStd = make([]float64, bn.D)
	}
	bn.invStd = bn.invStd[:bn.D]
	gamma, beta := bn.Gamma.Value.Data, bn.Beta.Value.Data
	bn.usedBatchStats = train && n > 1
	for j := 0; j < bn.D; j++ {
		var mean, variance float64
		if bn.usedBatchStats {
			var s float64
			for i := 0; i < n; i++ {
				s += x.At(i, j)
			}
			mean = s / m
			var sq float64
			for i := 0; i < n; i++ {
				d := x.At(i, j) - mean
				sq += d * d
			}
			variance = sq / m
			bn.RunningMean[j] = bn.Momentum*bn.RunningMean[j] + (1-bn.Momentum)*mean
			bn.RunningVar[j] = bn.Momentum*bn.RunningVar[j] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.RunningMean[j], bn.RunningVar[j]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[j] = inv
		g, b := gamma[j], beta[j]
		for i := 0; i < n; i++ {
			nv := (x.At(i, j) - mean) * inv
			bn.xhat.Set(i, j, nv)
			out.Set(i, j, g*nv+b)
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient per feature.
func (bn *BatchNorm1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Rows()
	m := float64(n)
	bn.dx = tensor.Ensure(bn.dx, n, bn.D)
	dx := bn.dx
	gamma := bn.Gamma.Value.Data
	dGamma, dBeta := bn.Gamma.Grad.Data, bn.Beta.Grad.Data
	for j := 0; j < bn.D; j++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			v := grad.At(i, j)
			sumDy += v
			sumDyXhat += v * bn.xhat.At(i, j)
		}
		dGamma[j] += sumDyXhat
		dBeta[j] += sumDy
		if !bn.usedBatchStats {
			scale := gamma[j] * bn.invStd[j]
			for i := 0; i < n; i++ {
				dx.Set(i, j, scale*grad.At(i, j))
			}
			continue
		}
		scale := gamma[j] * bn.invStd[j] / m
		for i := 0; i < n; i++ {
			dx.Set(i, j, scale*(m*grad.At(i, j)-sumDy-bn.xhat.At(i, j)*sumDyXhat))
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm1D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Buffers returns the running statistics, the layer's non-trainable state.
func (bn *BatchNorm1D) Buffers() [][]float64 {
	return [][]float64{bn.RunningMean, bn.RunningVar}
}
