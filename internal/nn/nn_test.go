package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestFlattenSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewSequential(
		NewDense(4, 6, rng),
		NewReLU(),
		NewDense(6, 3, rng),
	)
	params := m.Params()
	flat := FlattenParams(params)
	if len(flat) != NumParams(params) {
		t.Fatalf("flat length %d, want %d", len(flat), NumParams(params))
	}
	// Perturb, write back, verify.
	for i := range flat {
		flat[i] += 1
	}
	if err := SetFlatParams(params, flat); err != nil {
		t.Fatal(err)
	}
	again := FlattenParams(params)
	for i := range flat {
		if again[i] != flat[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if err := SetFlatParams(params, flat[:3]); err == nil {
		t.Fatal("short vector must error")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 3, rng)
	d.W.Grad.Fill(5)
	ZeroGrads(d.Params())
	if d.W.Grad.MaxAbs() != 0 {
		t.Fatal("ZeroGrads left gradient nonzero")
	}
}

// Property: averaging identical parameter sets with any normalized weights
// reproduces the original values.
func TestAverageIdentityProperty(t *testing.T) {
	f := func(seed int64, w1Raw, w2Raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []*Param { return NewDense(3, 2, rand.New(rand.NewSource(42))).Params() }
		a, b, dst := mk(), mk(), mk()
		w1 := float64(w1Raw%100) + 1
		w2 := float64(w2Raw%100) + 1
		s := w1 + w2
		if err := AverageInto(dst, [][]*Param{a, b}, []float64{w1 / s, w2 / s}); err != nil {
			return false
		}
		flatA := FlattenParams(a)
		flatD := FlattenParams(dst)
		for i := range flatA {
			if diff := flatA[i] - flatD[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageWeighted(t *testing.T) {
	mk := func(v float64) []*Param {
		p := &Param{Name: "w", Value: tensor.New(2), Grad: tensor.New(2)}
		p.Value.Fill(v)
		return []*Param{p}
	}
	dst := mk(0)
	if err := AverageInto(dst, [][]*Param{mk(1), mk(3)}, []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if got := dst[0].Value.Data[0]; got != 0.25*1+0.75*3 {
		t.Fatalf("weighted average %v", got)
	}
}

func TestAverageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewDense(2, 2, rng).Params()
	b := NewDense(3, 3, rng).Params()
	dst := NewDense(2, 2, rng).Params()
	if err := AverageInto(dst, [][]*Param{a, b}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("size mismatch must error")
	}
	if err := AverageInto(dst, [][]*Param{a}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("weight count mismatch must error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewDense(3, 2, rng).Params()
	dst := NewDense(3, 2, rng).Params()
	if err := CopyParams(dst, src); err != nil {
		t.Fatal(err)
	}
	fs, fd := FlattenParams(src), FlattenParams(dst)
	for i := range fs {
		if fs[i] != fd[i] {
			t.Fatal("CopyParams did not copy")
		}
	}
}

func TestDropoutModes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(0.5, rng)
	x := tensor.New(4, 8)
	x.Fill(1)
	// Eval mode: identity.
	if out := d.Forward(x, false); !tensor.ApproxEqual(out, x, 0) {
		t.Fatal("eval-mode dropout must be identity")
	}
	// Train mode: some zeros, survivors scaled by 2.
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout mask degenerate: %d zeros, %d twos", zeros, twos)
	}
	// Backward uses the same mask.
	g := tensor.New(4, 8)
	g.Fill(1)
	dg := d.Backward(g)
	for i, v := range out.Data {
		if (v == 0) != (dg.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm1D(3)
	x := tensor.New(64, 3)
	// Feature 0 ~ N(5, 4), others standard.
	for i := 0; i < 64; i++ {
		x.Set(i, 0, 5+2*rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64())
	}
	for e := 0; e < 50; e++ {
		bn.Forward(x, true)
	}
	if bn.RunningMean[0] < 4 || bn.RunningMean[0] > 6 {
		t.Fatalf("running mean %v should approach 5", bn.RunningMean[0])
	}
	if bn.RunningVar[0] < 2.5 || bn.RunningVar[0] > 6 {
		t.Fatalf("running var %v should approach 4", bn.RunningVar[0])
	}
	// Eval output for the mean input should be ≈ beta (0) for feature 0 at
	// value 5.
	probe := tensor.New(1, 3)
	probe.Set(0, 0, 5)
	out := bn.Forward(probe, false)
	if v := out.At(0, 0); v < -0.5 || v > 0.5 {
		t.Fatalf("eval normalization off: %v", v)
	}
}

func TestMaxPoolSelectsMaxima(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := []float64{4, 8, 12, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("pool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestChannelShuffleIsPermutation(t *testing.T) {
	cs := NewChannelShuffle(2)
	x := tensor.New(1, 4, 1, 1)
	for i := 0; i < 4; i++ {
		x.Data[i] = float64(i)
	}
	y := cs.Forward(x, true)
	// Forward then inverse (Backward) must restore the input.
	z := cs.Backward(y)
	if !tensor.ApproxEqual(x, z, 0) {
		t.Fatalf("shuffle not invertible: %v → %v → %v", x.Data, y.Data, z.Data)
	}
	// And the shuffle must actually move channels.
	if tensor.ApproxEqual(x, y, 0) {
		t.Fatal("shuffle was identity")
	}
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv2D(1, 2, 3, 2, 1, 1, rng)
	oh, ow := c.OutputShape(12, 12)
	if oh != 6 || ow != 6 {
		t.Fatalf("stride-2 output %dx%d, want 6x6", oh, ow)
	}
	out := c.Forward(tensor.New(2, 1, 12, 12), true)
	if out.Dim(2) != 6 || out.Dim(3) != 6 || out.Dim(1) != 2 {
		t.Fatalf("forward shape %v", out.Shape)
	}
}

func TestConv2DGroupsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("groups not dividing channels must panic")
		}
	}()
	NewConv2D(3, 4, 3, 1, 1, 2, rand.New(rand.NewSource(1)))
}
