package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Residual computes y = Body(x) + Skip(x), the ResNet building block. When
// Skip is nil the identity shortcut is used, which requires Body to preserve
// the input shape.
type Residual struct {
	Body *Sequential
	Skip *Sequential // nil means identity

	out ring2
	dx  *tensor.Tensor
}

// NewResidual builds a residual block. Pass skip == nil for an identity
// shortcut or a projection (for example 1×1 conv) when shapes change.
func NewResidual(body *Sequential, skip *Sequential) *Residual {
	return &Residual{Body: body, Skip: skip}
}

// Forward evaluates both paths and sums them.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Body.Forward(x, train)
	var short *tensor.Tensor
	if r.Skip != nil {
		short = r.Skip.Forward(x, train)
	} else {
		short = x
	}
	if main.Size() != short.Size() {
		panic(fmt.Sprintf("nn: Residual shape mismatch body %v vs skip %v", main.Shape, short.Shape))
	}
	out := r.out.next(main.DT, main.Shape...)
	tensor.AddInto(out, main, short)
	return out
}

// Backward propagates the gradient through both paths and sums the input
// gradients.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dMain := r.Body.Backward(grad)
	r.dx = tensor.EnsureOf(dMain.DT, r.dx, dMain.Shape...)
	if r.Skip != nil {
		dSkip := r.Skip.Backward(grad)
		tensor.AddInto(r.dx, dMain, dSkip)
	} else {
		tensor.AddInto(r.dx, dMain, grad)
	}
	return r.dx
}

// Params returns the parameters of both paths.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Skip != nil {
		ps = append(ps, r.Skip.Params()...)
	}
	return ps
}

// Buffers returns the non-trainable state of both paths.
func (r *Residual) Buffers() [][]float64 {
	bs := r.Body.Buffers()
	if r.Skip != nil {
		bs = append(bs, r.Skip.Buffers()...)
	}
	return bs
}

// Inception evaluates several branches on the same input and concatenates
// their outputs along the channel axis, as in GoogLeNet. Every branch must
// produce [N, C_b, H, W] with identical N, H, W.
type Inception struct {
	Branches []*Sequential

	branchC []int
	outH    int
	outW    int
	outs    []*tensor.Tensor
	out     ring2
	gb      *tensor.Tensor
}

// NewInception builds the block from its branches.
func NewInception(branches ...*Sequential) *Inception { return &Inception{Branches: branches} }

// Forward concatenates branch outputs channel-wise.
func (in *Inception) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(in.outs) != len(in.Branches) {
		in.outs = make([]*tensor.Tensor, len(in.Branches))
		in.branchC = make([]int, len(in.Branches))
	}
	outs := in.outs
	totalC := 0
	n := x.Dim(0)
	for b, br := range in.Branches {
		o := br.Forward(x, train)
		if o.Rank() != 4 || o.Dim(0) != n {
			panic(fmt.Sprintf("nn: Inception branch %d output shape %v", b, o.Shape))
		}
		if b == 0 {
			in.outH, in.outW = o.Dim(2), o.Dim(3)
		} else if o.Dim(2) != in.outH || o.Dim(3) != in.outW {
			panic(fmt.Sprintf("nn: Inception branch %d spatial mismatch %v", b, o.Shape))
		}
		outs[b] = o
		in.branchC[b] = o.Dim(1)
		totalC += o.Dim(1)
	}
	out := in.out.next(outs[0].DT, n, totalC, in.outH, in.outW)
	spatial := in.outH * in.outW
	for i := 0; i < n; i++ {
		chOff := 0
		for b, o := range outs {
			cb := in.branchC[b]
			tensor.CopySegment(out, (i*totalC+chOff)*spatial, o, i*cb*spatial, cb*spatial)
			chOff += cb
		}
	}
	return out
}

// Backward splits the gradient channel-wise, propagates each slice through
// its branch, and sums the resulting input gradients.
func (in *Inception) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	totalC := grad.Dim(1)
	spatial := in.outH * in.outW
	var dx *tensor.Tensor
	chOff := 0
	for b, br := range in.Branches {
		cb := in.branchC[b]
		in.gb = tensor.EnsureOf(grad.DT, in.gb, n, cb, in.outH, in.outW)
		gb := in.gb
		for i := 0; i < n; i++ {
			tensor.CopySegment(gb, i*cb*spatial, grad, (i*totalC+chOff)*spatial, cb*spatial)
		}
		d := br.Backward(gb)
		if dx == nil {
			dx = d
		} else {
			dx.AddInPlace(d)
		}
		chOff += cb
	}
	return dx
}

// Params returns the parameters of all branches.
func (in *Inception) Params() []*Param {
	var ps []*Param
	for _, br := range in.Branches {
		ps = append(ps, br.Params()...)
	}
	return ps
}

// Buffers returns the non-trainable state of all branches.
func (in *Inception) Buffers() [][]float64 {
	var bs [][]float64
	for _, br := range in.Branches {
		bs = append(bs, br.Buffers()...)
	}
	return bs
}

// ChannelShuffle permutes channels of [N, C, H, W] activations so that
// grouped convolutions exchange information, as in ShuffleNet. With G
// groups, channel g·(C/G)+i moves to position i·G+g.
type ChannelShuffle struct {
	Groups  int
	inShape []int
	out     ring2
	dx      *tensor.Tensor
}

// NewChannelShuffle builds the layer.
func NewChannelShuffle(groups int) *ChannelShuffle { return &ChannelShuffle{Groups: groups} }

// Forward applies the shuffle permutation.
func (cs *ChannelShuffle) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1)%cs.Groups != 0 {
		panic(fmt.Sprintf("nn: ChannelShuffle input %v with groups %d", x.Shape, cs.Groups))
	}
	cs.inShape = append([]int(nil), x.Shape...)
	return cs.permute(x, false)
}

// Backward applies the inverse permutation to the gradient.
func (cs *ChannelShuffle) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return cs.permute(grad, true)
}

func (cs *ChannelShuffle) permute(x *tensor.Tensor, inverse bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	perGroup := c / cs.Groups
	var out *tensor.Tensor
	if inverse {
		cs.dx = tensor.EnsureOf(x.DT, cs.dx, n, c, h, w)
		out = cs.dx
	} else {
		out = cs.out.next(x.DT, n, c, h, w)
	}
	spatial := h * w
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g, idx := ch/perGroup, ch%perGroup
			dst := idx*cs.Groups + g
			from, to := ch, dst
			if inverse {
				from, to = dst, ch
			}
			tensor.CopySegment(out, (i*c+to)*spatial, x, (i*c+from)*spatial, spatial)
		}
	}
	return out
}

// Params returns nil; shuffling has no parameters.
func (cs *ChannelShuffle) Params() []*Param { return nil }
