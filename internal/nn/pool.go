package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a max pooling layer over [N, C, H, W] inputs.
type MaxPool2D struct {
	K, Stride  int
	inShape    []int
	outH, outW int
	argmax     []int // flat index into the input for every output element
	out        ring2
	dx         *tensor.Tensor
}

// NewMaxPool2D builds a pooling layer with square kernel k and the given
// stride (stride = k gives the usual non-overlapping pooling).
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward computes per-window maxima and records argmax positions.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D.Forward input shape %v, want rank 4", x.Shape))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.inShape = append(m.inShape[:0], n, c, h, w)
	m.outH = (h-m.K)/m.Stride + 1
	m.outW = (w-m.K)/m.Stride + 1
	if m.outH <= 0 || m.outW <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D output not positive for input %dx%d kernel %d", h, w, m.K))
	}
	out := m.out.next(n, c, m.outH, m.outW)
	if cap(m.argmax) < len(out.Data) {
		m.argmax = make([]int, len(out.Data))
	}
	m.argmax = m.argmax[:len(out.Data)]
	parallelFor(n, func(i int) {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * m.outH * m.outW
			for oh := 0; oh < m.outH; oh++ {
				for ow := 0; ow < m.outW; ow++ {
					bestIdx := -1
					bestVal := 0.0
					for kh := 0; kh < m.K; kh++ {
						ih := oh*m.Stride + kh
						for kw := 0; kw < m.K; kw++ {
							iw := ow*m.Stride + kw
							idx := inBase + ih*w + iw
							if v := x.Data[idx]; bestIdx < 0 || v > bestVal {
								bestIdx, bestVal = idx, v
							}
						}
					}
					o := outBase + oh*m.outW + ow
					out.Data[o] = bestVal
					m.argmax[o] = bestIdx
				}
			}
		}
	})
	return out
}

// Backward routes each output gradient to its argmax input position.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	m.dx = tensor.Ensure(m.dx, m.inShape...)
	m.dx.Zero()
	for o, idx := range m.argmax {
		m.dx.Data[idx] += grad.Data[o]
	}
	return m.dx
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's spatial map, mapping [N, C, H, W]
// to [N, C]. It is the standard head before the final FC layers.
type GlobalAvgPool struct {
	inShape []int
	out     ring2
	dx      *tensor.Tensor
}

// NewGlobalAvgPool builds the layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool input shape %v, want rank 4", x.Shape))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = append(g.inShape[:0], n, c, h, w)
	out := g.out.next(n, c)
	area := float64(h * w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			seg := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			var s float64
			for _, v := range seg {
				s += v
			}
			out.Data[i*c+ch] = s / area
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial map.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	g.dx = tensor.Ensure(g.dx, n, c, h, w)
	dx := g.dx
	inv := 1.0 / float64(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[i*c+ch] * inv
			seg := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for p := range seg {
				seg[p] = gv
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes [N, ...] activations to [N, rest], remembering the input
// shape so Backward can restore it. Both directions return cached view
// headers over the argument's storage, so no data moves and nothing is
// allocated.
type Flatten struct {
	inShape []int
	fwd     viewRing2
	bwd     viewRing2
}

// NewFlatten builds the layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	return f.fwd.next(x.Data, x.Dim(0), rest)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return f.bwd.next(grad.Data, f.inShape...)
}

// Params returns nil; flattening has no parameters.
func (f *Flatten) Params() []*Param { return nil }
