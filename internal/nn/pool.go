package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a max pooling layer over [N, C, H, W] inputs.
type MaxPool2D struct {
	K, Stride  int
	inShape    []int
	outH, outW int
	argmax     []int // flat index into the input for every output element
	out        ring2
	dx         *tensor.Tensor
}

// NewMaxPool2D builds a pooling layer with square kernel k and the given
// stride (stride = k gives the usual non-overlapping pooling).
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward computes per-window maxima and records argmax positions.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D.Forward input shape %v, want rank 4", x.Shape))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.inShape = append(m.inShape[:0], n, c, h, w)
	m.outH = (h-m.K)/m.Stride + 1
	m.outW = (w-m.K)/m.Stride + 1
	if m.outH <= 0 || m.outW <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D output not positive for input %dx%d kernel %d", h, w, m.K))
	}
	out := m.out.next(x.DT, n, c, m.outH, m.outW)
	if cap(m.argmax) < out.Size() {
		m.argmax = make([]int, out.Size())
	}
	m.argmax = m.argmax[:out.Size()]
	if x.DT.Backing() == tensor.F32 {
		xd, outd := tensor.Of[float32](x), tensor.Of[float32](out)
		parallelFor(n, func(i int) { maxPoolSample(m, xd, outd, i, c, h, w) })
	} else {
		xd, outd := x.Data, out.Data
		parallelFor(n, func(i int) { maxPoolSample(m, xd, outd, i, c, h, w) })
	}
	return out
}

func maxPoolSample[F tensor.Float](m *MaxPool2D, xd, outd []F, i, c, h, w int) {
	if m.K == 2 && m.Stride == 2 {
		maxPool2x2Sample(m, xd, outd, i, c, h, w)
		return
	}
	for ch := 0; ch < c; ch++ {
		inBase := (i*c + ch) * h * w
		outBase := (i*c + ch) * m.outH * m.outW
		for oh := 0; oh < m.outH; oh++ {
			for ow := 0; ow < m.outW; ow++ {
				bestIdx := -1
				var bestVal F
				for kh := 0; kh < m.K; kh++ {
					ih := oh*m.Stride + kh
					for kw := 0; kw < m.K; kw++ {
						iw := ow*m.Stride + kw
						idx := inBase + ih*w + iw
						if v := xd[idx]; bestIdx < 0 || v > bestVal {
							bestIdx, bestVal = idx, v
						}
					}
				}
				o := outBase + oh*m.outW + ow
				outd[o] = bestVal
				m.argmax[o] = bestIdx
			}
		}
	}
}

// maxPool2x2Sample unrolls the ubiquitous 2×2/stride-2 window: four loads,
// three compares, no inner loops. The compare order (row-major within the
// window, strict greater-than) matches the generic path exactly, so argmax
// tie-breaking — and therefore the backward routing — is identical.
func maxPool2x2Sample[F tensor.Float](m *MaxPool2D, xd, outd []F, i, c, h, w int) {
	if xf, ok := any(xd).([]float32); ok && maxPool2x2AsmF32(m, xf, any(outd).([]float32), i, c, h, w) {
		return
	}
	if xf, ok := any(xd).([]float64); ok && maxPool2x2AsmF64(m, xf, any(outd).([]float64), i, c, h, w) {
		return
	}
	for ch := 0; ch < c; ch++ {
		inBase := (i*c + ch) * h * w
		outBase := (i*c + ch) * m.outH * m.outW
		for oh := 0; oh < m.outH; oh++ {
			r0 := inBase + (oh * 2 * w)
			// Row subslices hoist the bounds checks out of the pixel loop;
			// indices stay row-relative until the argmax store.
			row0 := xd[r0 : r0+w]
			row1 := xd[r0+w : r0+2*w]
			o := outBase + oh*m.outW
			outRow := outd[o : o+m.outW]
			amRow := m.argmax[o : o+m.outW]
			p := 0
			for ow := range outRow {
				rel, bestVal := p, row0[p]
				if v := row0[p+1]; v > bestVal {
					rel, bestVal = p+1, v
				}
				if v := row1[p]; v > bestVal {
					rel, bestVal = w+p, v
				}
				if v := row1[p+1]; v > bestVal {
					rel, bestVal = w+p+1, v
				}
				outRow[ow] = bestVal
				amRow[ow] = r0 + rel
				p += 2
			}
		}
	}
}

// maxPool2x2AsmF32 hands each channel plane to the AVX-512 pooling kernel,
// which reproduces the scalar candidate order exactly (values and argmax
// alike). Returns false when the tier is unavailable so the caller runs the
// scalar loop instead.
func maxPool2x2AsmF32(m *MaxPool2D, xd, outd []float32, i, c, h, w int) bool {
	for ch := 0; ch < c; ch++ {
		inBase := (i*c + ch) * h * w
		outBase := (i*c + ch) * m.outH * m.outW
		if !tensor.MaxPool2x2F32(xd[inBase:inBase+h*w], outd[outBase:outBase+m.outH*m.outW],
			m.argmax[outBase:outBase+m.outH*m.outW], m.outH, m.outW, w, inBase) {
			return false
		}
	}
	return true
}

// maxPool2x2AsmF64 is the f64 twin of maxPool2x2AsmF32.
func maxPool2x2AsmF64(m *MaxPool2D, xd, outd []float64, i, c, h, w int) bool {
	for ch := 0; ch < c; ch++ {
		inBase := (i*c + ch) * h * w
		outBase := (i*c + ch) * m.outH * m.outW
		if !tensor.MaxPool2x2F64(xd[inBase:inBase+h*w], outd[outBase:outBase+m.outH*m.outW],
			m.argmax[outBase:outBase+m.outH*m.outW], m.outH, m.outW, w, inBase) {
			return false
		}
	}
	return true
}

// Backward routes each output gradient to its argmax input position.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	m.dx = tensor.EnsureOf(grad.DT, m.dx, m.inShape...)
	m.dx.Zero()
	if grad.DT.Backing() == tensor.F32 {
		maxPoolBwd(tensor.Of[float32](m.dx), tensor.Of[float32](grad), m.argmax)
	} else {
		maxPoolBwd(m.dx.Data, grad.Data, m.argmax)
	}
	return m.dx
}

func maxPoolBwd[F tensor.Float](dxd, gradd []F, argmax []int) {
	for o, idx := range argmax {
		dxd[idx] += gradd[o]
	}
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's spatial map, mapping [N, C, H, W]
// to [N, C]. It is the standard head before the final FC layers.
type GlobalAvgPool struct {
	inShape []int
	out     ring2
	dx      *tensor.Tensor
}

// NewGlobalAvgPool builds the layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool input shape %v, want rank 4", x.Shape))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = append(g.inShape[:0], n, c, h, w)
	out := g.out.next(x.DT, n, c)
	if x.DT.Backing() == tensor.F32 {
		gapFwd(tensor.Of[float32](out), tensor.Of[float32](x), n, c, h, w)
	} else {
		gapFwd(out.Data, x.Data, n, c, h, w)
	}
	return out
}

func gapFwd[F tensor.Float](outd, xd []F, n, c, h, w int) {
	area := F(float64(h * w))
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			var s F
			s = tensor.SumAcc(s, xd[(i*c+ch)*h*w:(i*c+ch+1)*h*w])
			outd[i*c+ch] = s / area
		}
	}
}

// Backward spreads each channel gradient uniformly over its spatial map.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	g.dx = tensor.EnsureOf(grad.DT, g.dx, n, c, h, w)
	if grad.DT.Backing() == tensor.F32 {
		gapBwd(tensor.Of[float32](g.dx), tensor.Of[float32](grad), n, c, h, w)
	} else {
		gapBwd(g.dx.Data, grad.Data, n, c, h, w)
	}
	return g.dx
}

func gapBwd[F tensor.Float](dxd, gradd []F, n, c, h, w int) {
	inv := F(1.0 / float64(h*w))
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := gradd[i*c+ch] * inv
			seg := dxd[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for p := range seg {
				seg[p] = gv
			}
		}
	}
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes [N, ...] activations to [N, rest], remembering the input
// shape so Backward can restore it. Both directions return cached view
// headers over the argument's storage, so no data moves and nothing is
// allocated.
type Flatten struct {
	inShape []int
	fwd     viewRing2
	bwd     viewRing2
}

// NewFlatten builds the layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	return f.fwd.next(x, x.Dim(0), rest)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return f.bwd.next(grad, f.inShape...)
}

// Params returns nil; flattening has no parameters.
func (f *Flatten) Params() []*Param { return nil }
