package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Structural tests of the composite layers in topo.go: concat layouts,
// shuffle permutations, buffer recursion and dtype parity. (Gradient
// correctness is covered separately in gradcheck_test.go.)

func TestChannelShufflePermutation(t *testing.T) {
	// With G=2 and C=4, channel g·(C/G)+i moves to position i·G+g:
	// [0 1 2 3] → positions [0 2 1 3].
	cs := NewChannelShuffle(2)
	x := tensor.New(1, 4, 1, 2)
	for ch := 0; ch < 4; ch++ {
		x.Data[ch*2] = float64(ch)
		x.Data[ch*2+1] = float64(ch) + 0.5
	}
	out := cs.Forward(x, false)
	wantChan := []int{0, 2, 1, 3} // out channel p holds input channel wantChan[p]
	for p, src := range wantChan {
		if out.Data[p*2] != float64(src) || out.Data[p*2+1] != float64(src)+0.5 {
			t.Fatalf("output channel %d holds %v, want channel %d", p, out.Data[p*2:p*2+2], src)
		}
	}
	// Backward applies the inverse permutation: shuffling the output
	// gradient must reproduce the input layout.
	back := cs.Backward(out)
	if !tensor.ApproxEqual(back, x, 0) {
		t.Fatal("Backward(Forward(x)) must be the identity permutation")
	}
}

func TestChannelShuffleRejectsIndivisibleChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channels not divisible by groups must panic")
		}
	}()
	NewChannelShuffle(3).Forward(tensor.New(1, 4, 2, 2), false)
}

func TestInceptionConcatLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Branch 1: 1×1 conv to 2 channels; branch 2: 1×1 conv to 3 channels.
	b1 := NewSequential(NewConv2D(2, 2, 1, 1, 0, 1, rng))
	b2 := NewSequential(NewConv2D(2, 3, 1, 1, 0, 1, rng))
	in := NewInception(b1, b2)
	x := tensor.New(2, 2, 4, 4)
	x.FillRandn(rng, 1)
	out := in.Forward(x, false)
	if out.Dim(1) != 5 {
		t.Fatalf("concat channels = %d, want 5", out.Dim(1))
	}
	// The first 2 channels of every sample must equal branch 1's output.
	o1 := b1.Forward(x, false)
	spatial := 16
	for i := 0; i < 2; i++ {
		for ch := 0; ch < 2; ch++ {
			for p := 0; p < spatial; p++ {
				got := out.Data[(i*5+ch)*spatial+p]
				want := o1.Data[(i*2+ch)*spatial+p]
				if got != want {
					t.Fatalf("sample %d channel %d pixel %d: %g vs branch %g", i, ch, p, got, want)
				}
			}
		}
	}
}

func TestInceptionRejectsSpatialMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b1 := NewSequential(NewConv2D(1, 1, 1, 1, 0, 1, rng))
	b2 := NewSequential(NewMaxPool2D(2, 2)) // halves the spatial extent
	in := NewInception(b1, b2)
	defer func() {
		if recover() == nil {
			t.Fatal("branches with different spatial extents must panic")
		}
	}()
	in.Forward(tensor.New(1, 1, 4, 4), false)
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Body changes the channel count but the skip is identity: must panic.
	r := NewResidual(NewSequential(NewConv2D(2, 4, 1, 1, 0, 1, rng)), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("residual with mismatched body/skip shapes must panic")
		}
	}()
	r.Forward(tensor.New(1, 2, 3, 3), false)
}

func TestCompositeBuffersRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	res := NewResidual(
		NewSequential(NewConv2D(2, 2, 3, 1, 1, 1, rng), NewBatchNorm2D(2)),
		NewSequential(NewConv2D(2, 2, 1, 1, 0, 1, rng), NewBatchNorm2D(2)),
	)
	inc := NewInception(
		NewSequential(NewConv2D(2, 2, 1, 1, 0, 1, rng), NewBatchNorm2D(2)),
		NewSequential(NewConv2D(2, 2, 1, 1, 0, 1, rng)),
	)
	seq := NewSequential(res, inc)
	// 2 batch-norms in the residual (body+skip) and 1 in the inception, each
	// contributing mean and variance slices.
	if got := len(seq.Buffers()); got != 6 {
		t.Fatalf("Buffers() returned %d slices, want 6", got)
	}
	// The slices are live views: writing through them must hit the layers.
	seq.Buffers()[0][0] = 42
	if rb, ok := res.Body.Layers[1].(*BatchNorm2D); !ok || rb.RunningMean[0] != 42 {
		t.Fatal("Buffers must expose live running-stat slices")
	}
}

// The composite layers must produce near-identical results at both dtypes
// when the f32 model is the rounded f64 model.
func TestTopoDTypeParity(t *testing.T) {
	build := func() *Sequential {
		rng := rand.New(rand.NewSource(25))
		res := NewResidual(NewSequential(
			NewConv2D(2, 2, 3, 1, 1, 1, rng),
			NewReLU(),
		), nil)
		return NewSequential(
			res,
			NewChannelShuffle(2),
			NewInception(
				NewSequential(NewConv2D(2, 2, 1, 1, 0, 1, rng)),
				NewSequential(NewConv2D(2, 3, 1, 1, 0, 1, rng)),
			),
		)
	}
	m64 := build()
	m32 := build() // identical weights (same seed)
	ConvertParams(m32.Params(), tensor.F32)

	rng := rand.New(rand.NewSource(26))
	x64 := tensor.New(2, 2, 4, 4)
	x64.FillRandn(rng, 1)
	x32 := x64.AsType(tensor.F32)

	o64 := m64.Forward(x64, true)
	o32 := m32.Forward(x32, true)
	if o32.DT != tensor.F32 {
		t.Fatalf("f32 model produced %v output", o32.DT)
	}
	if !tensor.ApproxEqual(o32, o64, 1e-4) {
		t.Fatal("composite forward diverges between dtypes")
	}
	g64 := tensor.New(o64.Shape...)
	g64.FillRandn(rng, 1)
	d64 := m64.Backward(g64)
	d32 := m32.Backward(g64.AsType(tensor.F32))
	if !tensor.ApproxEqual(d32, d64, 1e-3) {
		t.Fatal("composite backward diverges between dtypes")
	}
}
