package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildBatchNet constructs a small net covering every fused-group layer
// kind: plain conv, grouped conv, and dense (plus generic-path layers in
// between). Identical seeds yield identical weights.
func buildBatchNet(seed int64, dt tensor.DType) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	s := NewSequential(
		NewConv2D(1, 4, 3, 1, 1, 1, rng),
		NewReLU(),
		NewConv2D(4, 4, 3, 1, 1, 2, rng),
		NewReLU(),
		NewFlatten(),
		NewDense(4*6*6, 5, rng),
	)
	ConvertParams(s.Params(), dt)
	return s
}

func bitsEqual(t *testing.T, ctx string, a, b *tensor.Tensor) {
	t.Helper()
	if a.DT.Backing() == tensor.F32 {
		av, bv := tensor.Of[float32](a), tensor.Of[float32](b)
		for i := range av {
			if math.Float32bits(av[i]) != math.Float32bits(bv[i]) {
				t.Fatalf("%s: element %d: %x vs %x", ctx, i, math.Float32bits(av[i]), math.Float32bits(bv[i]))
			}
		}
		return
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d: %x vs %x", ctx, i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
		}
	}
}

// TestSequentialBatchMatchesSolo is the layer-level grouping-invariance
// gate: a lockstep forward/backward over a group of identical-architecture
// models must be byte-identical to stepping each model alone — outputs,
// input gradients and parameter gradients — at every dtype, for uniform and
// ragged batch sizes, at every worker cap.
func TestSequentialBatchMatchesSolo(t *testing.T) {
	const g = 3
	for _, dt := range []tensor.DType{tensor.F64, tensor.F32, tensor.BF16} {
		for _, ragged := range []bool{false, true} {
			for _, workers := range []int{1, tensor.Workers()} {
				prev := tensor.SetMaxWorkers(workers)
				solo := make([]*Sequential, g)
				grouped := make([]*Sequential, g)
				xs := make([]*tensor.Tensor, g)
				grads := make([]*tensor.Tensor, g)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < g; i++ {
					solo[i] = buildBatchNet(int64(i+1), dt)
					grouped[i] = buildBatchNet(int64(i+1), dt)
					n := 4
					if ragged && i == g-1 {
						n = 2
					}
					xs[i] = tensor.NewOf(dt, n, 1, 6, 6)
					xs[i].FillUniform(rng, -1, 1)
					grads[i] = tensor.NewOf(dt, n, 5)
					grads[i].FillUniform(rng, -1, 1)
				}

				refY := make([]*tensor.Tensor, g)
				refDX := make([]*tensor.Tensor, g)
				for i := 0; i < g; i++ {
					refY[i] = solo[i].Forward(xs[i], true).Clone()
					refDX[i] = solo[i].Backward(grads[i]).Clone()
				}

				gotY := SequentialForwardBatch(grouped, xs, true)
				gotDX := SequentialBackwardBatch(grouped, grads)
				for i := 0; i < g; i++ {
					bitsEqual(t, "output", gotY[i], refY[i])
					bitsEqual(t, "dx", gotDX[i], refDX[i])
					sp, gp := solo[i].Params(), grouped[i].Params()
					for j := range sp {
						bitsEqual(t, "grad "+sp[j].Name, gp[j].Grad, sp[j].Grad)
					}
				}
				tensor.SetMaxWorkers(prev)
			}
		}
	}
}

// TestDenseBatchHeterogeneousShapes checks the non-uniform fallback: dense
// layers of different widths still batch correctly (via sequential
// standalone products).
func TestDenseBatchHeterogeneousShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := [][2]int{{6, 4}, {3, 7}}
	ds := make([]*Dense, len(dims))
	ref := make([]*Dense, len(dims))
	xs := make([]*tensor.Tensor, len(dims))
	for i, d := range dims {
		r1 := rand.New(rand.NewSource(int64(i + 11)))
		r2 := rand.New(rand.NewSource(int64(i + 11)))
		ds[i] = NewDense(d[0], d[1], r1)
		ref[i] = NewDense(d[0], d[1], r2)
		xs[i] = tensor.New(5, d[0])
		xs[i].FillUniform(rng, -1, 1)
	}
	ys := DenseForwardBatch(ds, xs, true)
	for i := range ds {
		bitsEqual(t, "hetero forward", ys[i], ref[i].Forward(xs[i], true))
	}
}
