package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The zero-allocation training path: after one warm-up iteration sizes the
// cached workspaces, steady-state Forward/Backward must not touch the heap.
// The only tolerated residue is the handful of parallel-dispatch closures a
// layer hands to the persistent worker pool — a small constant independent
// of batch size, channel count and spatial extent.
func parallelDispatchBudget() float64 {
	// Each parallel loop costs the user closure plus the shard wrapper, and
	// every shard handed to the pool costs one task closure, so the residue
	// scales with the worker count (but not with batch size, channels or
	// spatial extent). A layer method runs at most ~4 parallel loops
	// (im2col/gather/col2im plus sharded GEMMs); add slack for a panel
	// scratch revived after a GC cycle.
	return float64(8 + 4*tensor.Workers())
}

func TestConv2DForwardAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv2D(4, 8, 3, 1, 1, 1, rng)
	x := tensor.New(4, 4, 10, 10)
	x.FillRandn(rng, 1)
	layer.Forward(x, true) // warm up workspaces
	layer.Forward(x, true)
	avg := testing.AllocsPerRun(50, func() {
		layer.Forward(x, true)
	})
	if budget := parallelDispatchBudget(); avg > budget {
		t.Fatalf("Conv2D.Forward allocates %.1f objects/op in steady state, want <= %.0f", avg, budget)
	}
}

func TestConv2DTrainStepAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D(4, 8, 3, 1, 1, 1, rng)
	x := tensor.New(4, 4, 10, 10)
	x.FillRandn(rng, 1)
	grad := tensor.New(4, 8, 10, 10)
	grad.FillRandn(rng, 1)
	layer.Forward(x, true)
	layer.Backward(grad)
	avg := testing.AllocsPerRun(50, func() {
		layer.Forward(x, true)
		layer.Backward(grad)
	})
	if budget := 2 * parallelDispatchBudget(); avg > budget {
		t.Fatalf("Conv2D forward+backward allocates %.1f objects/op in steady state, want <= %.0f", avg, budget)
	}
}

func TestDenseForwardAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewDense(64, 32, rng)
	x := tensor.New(16, 64)
	x.FillRandn(rng, 1)
	layer.Forward(x, true)
	layer.Forward(x, true)
	avg := testing.AllocsPerRun(100, func() {
		layer.Forward(x, true)
	})
	if avg > parallelDispatchBudget() {
		t.Fatalf("Dense.Forward allocates %.1f objects/op in steady state, want ~0", avg)
	}
}

// The zero-allocation contract holds identically on the float32 fast path:
// dtype dispatch happens per call, never per element, and the per-dtype
// pools serve the narrow buffers.
func TestConv2DTrainStepAllocsF32(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layer := NewConv2D(4, 8, 3, 1, 1, 1, rng)
	ConvertParams(layer.Params(), tensor.F32)
	x := tensor.NewOf(tensor.F32, 4, 4, 10, 10)
	x.FillRandn(rng, 1)
	grad := tensor.NewOf(tensor.F32, 4, 8, 10, 10)
	grad.FillRandn(rng, 1)
	layer.Forward(x, true)
	layer.Backward(grad)
	avg := testing.AllocsPerRun(50, func() {
		layer.Forward(x, true)
		layer.Backward(grad)
	})
	if budget := 2 * parallelDispatchBudget(); avg > budget {
		t.Fatalf("f32 Conv2D forward+backward allocates %.1f objects/op in steady state, want <= %.0f", avg, budget)
	}
}

func TestDenseTrainStepAllocsF32(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layer := NewDense(64, 32, rng)
	ConvertParams(layer.Params(), tensor.F32)
	x := tensor.NewOf(tensor.F32, 16, 64)
	x.FillRandn(rng, 1)
	grad := tensor.NewOf(tensor.F32, 16, 32)
	grad.FillRandn(rng, 1)
	layer.Forward(x, true)
	layer.Backward(grad)
	avg := testing.AllocsPerRun(100, func() {
		layer.Forward(x, true)
		layer.Backward(grad)
	})
	if budget := 2 * parallelDispatchBudget(); avg > budget {
		t.Fatalf("f32 Dense forward+backward allocates %.1f objects/op in steady state, want <= %.0f", avg, budget)
	}
}

func TestDenseTrainStepAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewDense(64, 32, rng)
	x := tensor.New(16, 64)
	x.FillRandn(rng, 1)
	grad := tensor.New(16, 32)
	grad.FillRandn(rng, 1)
	layer.Forward(x, true)
	layer.Backward(grad)
	avg := testing.AllocsPerRun(100, func() {
		layer.Forward(x, true)
		layer.Backward(grad)
	})
	if budget := 2 * parallelDispatchBudget(); avg > budget {
		t.Fatalf("Dense forward+backward allocates %.1f objects/op in steady state, want <= %.0f", avg, budget)
	}
}
