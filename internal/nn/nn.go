// Package nn is a from-scratch neural-network layer library with manual
// backpropagation. It provides the building blocks (dense, convolution,
// pooling, batch normalization, residual and inception composites) used to
// construct the miniature heterogeneous architectures of the FedClassAvg
// reproduction, plus parameter flattening/serialization used by the
// federated aggregation and communication-accounting code.
//
// Layers are stateful: Forward caches whatever Backward needs, so a layer
// instance must not be shared between concurrently training models. Every
// client in the federated simulation owns its own model instance.
//
// Activation aliasing contract: layers own their output buffers and reuse
// them across iterations (double-buffered), so steady-state training
// performs no heap allocations. A tensor returned by Forward or Backward
// stays valid until the same layer's corresponding method runs twice more;
// callers that retain activations longer (for example to compare outputs
// across several passes) must Clone them.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ring2 double-buffers a layer's output so its two most recent activations
// stay valid (see the package comment). next returns a buffer of the given
// dtype and shape with unspecified contents; the layer must overwrite every
// element. Buffers follow the dtype of the activations flowing through, so
// a whole model runs end to end in its configured element type.
type ring2 struct {
	bufs [2]*tensor.Tensor
	idx  int
}

func (r *ring2) next(dt tensor.DType, shape ...int) *tensor.Tensor {
	r.idx ^= 1
	t := tensor.EnsureOf(dt, r.bufs[r.idx], shape...)
	r.bufs[r.idx] = t
	return t
}

// viewRing2 double-buffers reshaped views: tensor headers sharing another
// tensor's storage (and dtype), used by shape-only layers to avoid per-call
// header allocations.
type viewRing2 struct {
	views [2]*tensor.Tensor
	idx   int
}

func (r *viewRing2) next(src *tensor.Tensor, shape ...int) *tensor.Tensor {
	r.idx ^= 1
	v := r.views[r.idx]
	if v == nil {
		v = &tensor.Tensor{}
		r.views[r.idx] = v
	}
	tensor.ViewInto(v, src, 0, src.Size(), shape...)
	return v
}

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a named parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is one differentiable stage of a model. Forward consumes the
// previous activation and returns the next; Backward consumes dL/d(output)
// and returns dL/d(input), accumulating parameter gradients as a side
// effect. The train flag selects training behaviour (batch statistics,
// dropout masks).
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers front to back.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the parameters of all layers, in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Append adds layers to the end of the sequence.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// BufferedLayer is implemented by layers carrying non-trainable state that
// checkpoints must capture alongside parameters — batch-norm running
// statistics. Buffers returns the live state slices (not copies), in a
// deterministic order, so callers can both read and overwrite them. Running
// statistics are per-channel scalars, not per-element state, so they stay
// float64 bookkeeping at every model dtype (see DESIGN.md §7): narrowing
// them would buy no bandwidth and cost checkpoint exactness.
type BufferedLayer interface {
	Buffers() [][]float64
}

// Buffers returns the buffer slices of all layers, in layer order,
// recursing into composite layers.
func (s *Sequential) Buffers() [][]float64 {
	var bs [][]float64
	for _, l := range s.Layers {
		if bl, ok := l.(BufferedLayer); ok {
			bs = append(bs, bl.Buffers()...)
		}
	}
	return bs
}

// NumBuffered returns the total scalar count across buffer slices.
func NumBuffered(bufs [][]float64) int {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	return n
}

// FlattenBuffers concatenates buffer slices into one vector, in order.
func FlattenBuffers(bufs [][]float64) []float64 {
	return AppendFlatBuffers(make([]float64, 0, NumBuffered(bufs)), bufs)
}

// AppendFlatBuffers appends the flattened buffers to out (reusing its
// capacity), for callers that recycle flat vectors across spill cycles.
func AppendFlatBuffers(out []float64, bufs [][]float64) []float64 {
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// SetFlatBuffers writes a flat vector produced by FlattenBuffers back into
// the live buffer slices. It returns an error if the lengths disagree.
func SetFlatBuffers(bufs [][]float64, flat []float64) error {
	if len(flat) != NumBuffered(bufs) {
		return fmt.Errorf("nn: flat vector has %d values, model has %d buffered", len(flat), NumBuffered(bufs))
	}
	off := 0
	for _, b := range bufs {
		copy(b, flat[off:off+len(b)])
		off += len(b)
	}
	return nil
}

// ZeroGrads resets the gradients of all parameters.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// NumParams returns the total scalar parameter count.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// FlattenParams concatenates all parameter values into one float64 vector,
// in order. Flat vectors are the federation's always-f64 bookkeeping
// representation; float32 parameters widen exactly, so flatten/set round
// trips are lossless at either dtype.
func FlattenParams(params []*Param) []float64 {
	return AppendFlatParams(make([]float64, 0, NumParams(params)), params)
}

// AppendFlatParams appends the flattened parameters to out (reusing its
// capacity), for callers that recycle flat vectors across spill cycles.
func AppendFlatParams(out []float64, params []*Param) []float64 {
	for _, p := range params {
		out = p.Value.AppendFloat64s(out)
	}
	return out
}

// SetFlatParams writes a flat vector produced by FlattenParams back into the
// parameters, narrowing to the model dtype. It returns an error if the
// lengths disagree.
func SetFlatParams(params []*Param, flat []float64) error {
	if len(flat) != NumParams(params) {
		return fmt.Errorf("nn: flat vector has %d values, model has %d parameters", len(flat), NumParams(params))
	}
	off := 0
	for _, p := range params {
		n := p.Value.Size()
		p.Value.SetFromFloat64s(flat[off : off+n])
		off += n
	}
	return nil
}

// FlattenGrads concatenates all parameter gradients into one float64 vector.
func FlattenGrads(params []*Param) []float64 {
	out := make([]float64, 0, NumParams(params))
	for _, p := range params {
		out = p.Grad.AppendFloat64s(out)
	}
	return out
}

// ConvertParams rebinds every parameter's value and gradient to the given
// dtype in place (no-op for parameters already there). Models are built with
// float64 initialization — so a given seed yields the same weights, merely
// rounded, at every dtype — and converted immediately afterwards; layer
// workspaces follow the activations' dtype lazily on the first pass.
func ConvertParams(params []*Param, dt tensor.DType) {
	for _, p := range params {
		p.Value = p.Value.AsType(dt)
		p.Grad = p.Grad.AsType(dt)
	}
}

// ParamsDType reports the dtype of a parameter list (F64 for an empty one).
func ParamsDType(params []*Param) tensor.DType {
	if len(params) == 0 {
		return tensor.F64
	}
	return params[0].Value.DT
}

// AverageInto overwrites dst parameters with the weighted average of the
// source parameter sets: dst_i = Σ_k weights[k]·src[k]_i. The weights are
// used as given (callers normalize). All parameter sets must have identical
// structure.
func AverageInto(dst []*Param, srcs [][]*Param, weights []float64) error {
	if len(srcs) != len(weights) {
		return fmt.Errorf("nn: %d sources but %d weights", len(srcs), len(weights))
	}
	for i, p := range dst {
		p.Value.Zero()
		for k, src := range srcs {
			if len(src) != len(dst) {
				return fmt.Errorf("nn: source %d has %d params, dst has %d", k, len(src), len(dst))
			}
			if src[i].Value.Size() != p.Value.Size() {
				return fmt.Errorf("nn: source %d param %d size mismatch", k, i)
			}
			p.Value.AxpyInPlace(weights[k], src[i].Value)
		}
		// BF16 storage invariant: the average accumulates at full float32
		// precision, then re-narrows once at the end (no-op otherwise).
		tensor.RoundBF16InPlace(p.Value)
	}
	return nil
}

// CopyParams copies values from src into dst (structures must match).
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].Value.Size() != src[i].Value.Size() {
			return fmt.Errorf("nn: CopyParams size mismatch at %d", i)
		}
		dst[i].Value.CopyFrom(src[i].Value)
	}
	return nil
}

// heInit fills a weight tensor with He-normal initialization for the given
// fan-in, the standard choice for ReLU networks.
func heInit(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	w.FillRandn(rng, std)
}
