package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise. The backward pass reads the cached
// forward output instead of a separate mask: out > 0 holds exactly where
// the input was positive, so the pass-through set is recoverable for free
// and the forward loop writes one array instead of two.
type ReLU struct {
	y   *tensor.Tensor // last forward output (owned by the ring)
	out ring2
	dx  *tensor.Tensor
}

// NewReLU builds the layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.out.next(x.DT, x.Shape...)
	if x.DT.Backing() == tensor.F32 {
		reluFwd(tensor.Of[float32](out), tensor.Of[float32](x))
	} else {
		reluFwd(out.Data, x.Data)
	}
	r.y = out
	return out
}

func reluFwd[F tensor.Float](out, x []F) {
	tensor.VecReluForward(out, x)
}

// Backward passes gradients only through positive activations.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.EnsureOf(grad.DT, r.dx, grad.Shape...)
	if grad.DT.Backing() == tensor.F32 {
		reluBwd(tensor.Of[float32](r.dx), tensor.Of[float32](grad), tensor.Of[float32](r.y))
	} else {
		reluBwd(r.dx.Data, grad.Data, r.y.Data)
	}
	return r.dx
}

func reluBwd[F tensor.Float](dx, grad, y []F) {
	tensor.VecReluBackward(dx, grad, y)
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout), so evaluation is the identity.
// The mask stays float64 bookkeeping (one multiplier per element drawn from
// the layer RNG); the activations flow in the input dtype.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
	out  ring2
	dx   *tensor.Tensor
}

// NewDropout builds a dropout layer with its own RNG stream.
func NewDropout(p float64, rng *rand.Rand) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := d.out.next(x.DT, x.Shape...)
	n := x.Size()
	if cap(d.mask) < n {
		d.mask = make([]float64, n)
	}
	d.mask = d.mask[:n]
	keep := 1 - d.P
	inv := 1 / keep
	for i := range d.mask {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
		} else {
			d.mask[i] = 0
		}
	}
	if x.DT.Backing() == tensor.F32 {
		dropoutFwd(tensor.Of[float32](out), tensor.Of[float32](x), d.mask)
	} else {
		dropoutFwd(out.Data, x.Data, d.mask)
	}
	return out
}

// dropoutFwd zeroes dropped positions explicitly (not by multiplying with 0,
// which would leak NaN from non-finite activations).
func dropoutFwd[F tensor.Float](out, x []F, mask []float64) {
	for i, v := range x {
		if m := mask[i]; m != 0 {
			out[i] = v * F(m)
		} else {
			out[i] = 0
		}
	}
}

func dropoutApply[F tensor.Float](out, x []F, mask []float64) {
	for i, v := range x {
		out[i] = v * F(mask[i])
	}
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.dx = tensor.EnsureOf(grad.DT, d.dx, grad.Shape...)
	if grad.DT.Backing() == tensor.F32 {
		dropoutApply(tensor.Of[float32](d.dx), tensor.Of[float32](grad), d.mask)
	} else {
		dropoutApply(d.dx.Data, grad.Data, d.mask)
	}
	return d.dx
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
