package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
	out  ring2
	dx   *tensor.Tensor
}

// NewReLU builds the layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations and records the pass-through mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.out.next(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward passes gradients only through positive activations.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, grad.Shape...)
	dx := r.dx
	for i, v := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout), so evaluation is the identity.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
	out  ring2
	dx   *tensor.Tensor
}

// NewDropout builds a dropout layer with its own RNG stream.
func NewDropout(p float64, rng *rand.Rand) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := d.out.next(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	keep := 1 - d.P
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] = v * inv
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.dx = tensor.Ensure(d.dx, grad.Shape...)
	dx := d.dx
	for i, v := range grad.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
