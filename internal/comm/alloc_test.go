package comm

import (
	"math/rand"
	"testing"
)

// The codec hot path runs once per client per round, with payloads up to
// full model size: Marshal must allocate only the output frame, Unmarshal
// only the payload slice, and the in-place quantization round-trip nothing.

func codecPayload(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMarshalAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		avg := testing.AllocsPerRun(20, func() {
			MarshalAs(c, 1, payload)
		})
		if avg > 1 {
			t.Fatalf("MarshalAs(%s) allocates %.1f objects/op, want 1 (the frame)", c, avg)
		}
	}
}

func TestUnmarshalAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		b := MarshalAs(c, 1, payload)
		avg := testing.AllocsPerRun(20, func() {
			if _, _, _, err := Decode(b); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 1 {
			t.Fatalf("Decode(%s) allocates %.1f objects/op, want 1 (the payload)", c, avg)
		}
	}
}

func TestRoundTripInPlaceAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		avg := testing.AllocsPerRun(20, func() {
			RoundTripInPlace(c, payload)
		})
		if avg > 0 {
			t.Fatalf("RoundTripInPlace(%s) allocates %.1f objects/op, want 0", c, avg)
		}
	}
}

// The spec-aware paths with reused buffers, scratch and refs must reach
// zero steady-state allocations — this is the hot loop of every node-mode
// send and receive.
func TestSpecCodecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; the zero-alloc gate runs without -race")
	}
	payload := codecPayload(4096)
	for _, spec := range []Spec{
		{},
		NewSpec(I8, 0, true),
		NewSpec(F32, 0.05, false),
		NewSpec(I8, 0.05, true),
	} {
		enc, dec, sim := &DeltaRef{}, &DeltaRef{}, &DeltaRef{}
		var dst []byte
		var scratch, rt []float64
		step := func() {
			dst = MarshalSpecInto(dst[:0], spec, 1, payload, enc)
			_, v, err := DecodeSpec(scratch, dst, dec)
			if err != nil {
				t.Fatal(err)
			}
			scratch = v
			rt = append(rt[:0], payload...)
			RoundTripSpec(spec, rt, sim)
		}
		for i := 0; i < 3; i++ { // warm the pool, refs and buffers
			step()
		}
		if avg := testing.AllocsPerRun(20, step); avg > 0 {
			t.Fatalf("%v marshal+decode+model allocates %.1f objects/op, want 0", spec, avg)
		}
	}
}
