package comm

import (
	"math/rand"
	"testing"
)

// The codec hot path runs once per client per round, with payloads up to
// full model size: Marshal must allocate only the output frame, Unmarshal
// only the payload slice, and the in-place quantization round-trip nothing.

func codecPayload(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMarshalAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		avg := testing.AllocsPerRun(20, func() {
			MarshalAs(c, 1, payload)
		})
		if avg > 1 {
			t.Fatalf("MarshalAs(%s) allocates %.1f objects/op, want 1 (the frame)", c, avg)
		}
	}
}

func TestUnmarshalAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		b := MarshalAs(c, 1, payload)
		avg := testing.AllocsPerRun(20, func() {
			if _, _, _, err := Decode(b); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 1 {
			t.Fatalf("Decode(%s) allocates %.1f objects/op, want 1 (the payload)", c, avg)
		}
	}
}

func TestRoundTripInPlaceAllocs(t *testing.T) {
	payload := codecPayload(4096)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		avg := testing.AllocsPerRun(20, func() {
			RoundTripInPlace(c, payload)
		})
		if avg > 0 {
			t.Fatalf("RoundTripInPlace(%s) allocates %.1f objects/op, want 0", c, avg)
		}
	}
}
