// Package comm simulates the communication fabric of the federated
// deployment (the paper uses MPI across 15 GPU nodes). Payloads are
// serialized with a small binary codec so byte counts are real, and a
// thread-safe ledger records per-round, per-client traffic — the data
// behind the paper's Table 5 communication-cost comparison.
package comm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// headerSize is the fixed per-message framing overhead: kind tag (4 bytes)
// plus payload length (8 bytes).
const headerSize = 12

// WireSize returns the serialized size in bytes of a payload of n float64s.
func WireSize(n int) int64 { return int64(headerSize + 8*n) }

// Marshal frames a float64 payload with a kind tag into wire bytes.
func Marshal(kind uint32, payload []float64) []byte {
	buf := bytes.NewBuffer(make([]byte, 0, headerSize+8*len(payload)))
	_ = binary.Write(buf, binary.LittleEndian, kind)
	_ = binary.Write(buf, binary.LittleEndian, uint64(len(payload)))
	_ = binary.Write(buf, binary.LittleEndian, payload)
	return buf.Bytes()
}

// Unmarshal parses wire bytes produced by Marshal.
func Unmarshal(b []byte) (kind uint32, payload []float64, err error) {
	r := bytes.NewReader(b)
	if err = binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return 0, nil, fmt.Errorf("comm: reading kind: %w", err)
	}
	var n uint64
	if err = binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, nil, fmt.Errorf("comm: reading length: %w", err)
	}
	if int64(n)*8 > int64(r.Len()) {
		return 0, nil, fmt.Errorf("comm: declared %d floats but only %d bytes remain", n, r.Len())
	}
	payload = make([]float64, n)
	if err = binary.Read(r, binary.LittleEndian, payload); err != nil {
		return 0, nil, fmt.Errorf("comm: reading payload: %w", err)
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("comm: %d trailing bytes", r.Len())
	}
	return kind, payload, nil
}

// RoundTraffic aggregates bytes moved during one communication round.
type RoundTraffic struct {
	Round     int
	UpBytes   int64 // client → server
	DownBytes int64 // server → client
	Messages  int
}

// Ledger is a thread-safe traffic recorder. The zero value is ready to use.
type Ledger struct {
	mu      sync.Mutex
	current RoundTraffic
	rounds  []RoundTraffic
	up      map[int]int64 // per-client cumulative upload
	down    map[int]int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{up: make(map[int]int64), down: make(map[int]int64)}
}

// RecordUp logs a client → server payload of n float64s.
func (l *Ledger) RecordUp(client int, floats int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sz := WireSize(floats)
	l.current.UpBytes += sz
	l.current.Messages++
	l.up[client] += sz
}

// RecordDown logs a server → client payload of n float64s.
func (l *Ledger) RecordDown(client int, floats int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sz := WireSize(floats)
	l.current.DownBytes += sz
	l.current.Messages++
	l.down[client] += sz
}

// EndRound finalizes the current round's traffic and starts a new one.
func (l *Ledger) EndRound(round int) RoundTraffic {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.current
	t.Round = round
	l.rounds = append(l.rounds, t)
	l.current = RoundTraffic{}
	return t
}

// Rounds returns a copy of the per-round history.
func (l *Ledger) Rounds() []RoundTraffic {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RoundTraffic(nil), l.rounds...)
}

// TotalUp returns the cumulative client → server bytes (including any
// traffic in the not-yet-finalized round).
func (l *Ledger) TotalUp() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s int64
	for _, v := range l.up {
		s += v
	}
	return s
}

// TotalDown returns the cumulative server → client bytes.
func (l *Ledger) TotalDown() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s int64
	for _, v := range l.down {
		s += v
	}
	return s
}

// ClientUp returns the cumulative upload bytes for one client.
func (l *Ledger) ClientUp(client int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.up[client]
}

// ClientDown returns the cumulative download bytes for one client.
func (l *Ledger) ClientDown(client int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down[client]
}

// CopyTo writes wire bytes through an io.Writer; provided so higher layers
// can stream payloads if they want real I/O in the loop.
func CopyTo(w io.Writer, kind uint32, payload []float64) (int64, error) {
	b := Marshal(kind, payload)
	n, err := w.Write(b)
	return int64(n), err
}
