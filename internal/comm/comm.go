// Package comm simulates the communication fabric of the federated
// deployment (the paper uses MPI across 15 GPU nodes). Payloads are
// serialized with a small binary codec so byte counts are real, and a
// thread-safe ledger records per-round, per-client traffic — the data
// behind the paper's Table 5 communication-cost comparison.
//
// # Wire format
//
// Every frame is
//
//	[kind uint32][word uint64][payload]
//
// in little-endian byte order, where word packs the codec in its top byte
// and the element count n in the low 56 bits. Codec F64 stores payloads as
// raw float64s — such frames are byte-identical to the pre-codec format,
// whose word was a plain count (top byte zero). Codec F32 stores float32s.
// Codec I8 stores one float64 per-tensor scale followed by n int8 values
// quantized as round(v/scale) with scale = maxAbs/127, so the payload costs
// one byte per element instead of eight. Codec BF16 stores bfloat16 values
// (round-to-nearest-even narrowing), two bytes per element — the native wire
// format of bf16-storage fleets.
//
// Above the dense codecs sit two structural frame families (see sparse.go):
// TopK frames carry only the largest-|v| fraction of a vector as
// index/value pairs, and Delta frames carry the difference against the last
// vector committed on the same slot. Both store their elements at one of
// the dense codecs and decode to dense float64 through DecodeSpec; a Spec
// (spec.go) names the full framing of a connection and packs into the
// FEDWIRE handshake.
package comm

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// headerSize is the fixed per-message framing overhead: kind tag (4 bytes)
// plus the codec/length word (8 bytes).
const headerSize = 12

// Codec selects the payload element encoding of a frame.
type Codec uint8

// The wire codecs. F64 is the zero value and matches the legacy format.
// F64..BF16 are dense element codecs; TopK and Delta are structural frame
// families that store their elements at one of the dense codecs.
const (
	F64   Codec = iota // 8 bytes/elem, lossless
	F32                // 4 bytes/elem, rounds to nearest float32
	I8                 // 1 byte/elem + 8-byte per-tensor scale
	BF16               // 2 bytes/elem, rounds to nearest bfloat16 (RNE)
	TopK               // sparse index/value frame at an inner dense codec
	Delta              // difference vs the slot's committed basis vector
)

// numCodecs bounds the valid codec range for frame validation.
const numCodecs = 6

// Valid reports whether c is a defined wire codec, for validating codec
// values read off the wire (handshakes, frame headers).
func (c Codec) Valid() bool { return c < numCodecs }

// String names the codec for flags and reports.
func (c Codec) String() string {
	switch c {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I8:
		return "i8"
	case BF16:
		return "bf16"
	case TopK:
		return "topk"
	case Delta:
		return "delta"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ParseCodec maps a flag value ("f64" | "f32" | "i8" | "bf16") to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	case "i8", "int8":
		return I8, nil
	case "bf16", "bfloat16":
		return BF16, nil
	}
	return F64, fmt.Errorf("comm: unknown codec %q (want f64 | f32 | i8 | bf16)", s)
}

// payloadBytes returns the payload size in bytes for n elements.
func (c Codec) payloadBytes(n int) int64 {
	switch c {
	case F32:
		return 4 * int64(n)
	case I8:
		return 8 + int64(n)
	case BF16:
		return 2 * int64(n)
	default:
		return 8 * int64(n)
	}
}

// WireSize returns the serialized size in bytes of a payload of n float64s
// under the legacy lossless codec.
func WireSize(n int) int64 { return WireSizeAs(F64, n) }

// WireSizeAs returns the serialized size in bytes of an n-element payload
// under the given codec.
func WireSizeAs(c Codec, n int) int64 { return headerSize + c.payloadBytes(n) }

// maxLen caps the element count encodable in the 56-bit length field.
const maxLen = 1<<56 - 1

// Marshal frames a float64 payload with a kind tag into wire bytes using
// the lossless F64 codec (the legacy format, byte for byte).
func Marshal(kind uint32, payload []float64) []byte {
	return MarshalAs(F64, kind, payload)
}

// MarshalAs frames a float64 payload under the given codec.
func MarshalAs(c Codec, kind uint32, payload []float64) []byte {
	return MarshalNative(c, kind, payload)
}

// MarshalNative frames a payload of either element width under the given
// codec in a freshly sized slice. The float64 instantiation is the legacy
// format byte for byte, and a float32 payload under the F32 codec produces
// exactly the frame the old float64-truncating path produced — but without
// ever widening the data, so f32 models frame their uploads natively. Hot
// paths that reuse a buffer across frames use MarshalNativeInto instead.
func MarshalNative[F tensor.Float](c Codec, kind uint32, payload []F) []byte {
	return MarshalNativeInto(make([]byte, 0, WireSizeAs(c, len(payload))), c, kind, payload)
}

// i8Scale returns the per-tensor quantization step maxAbs/127 over the
// finite elements (0 for an empty, all-zero or all-non-finite payload). A
// single overflowed weight must not stretch the grid to infinity and
// NaN-poison every other element.
func i8Scale[F tensor.Float](payload []F) float64 {
	var maxAbs float64
	for _, v := range payload {
		if a := math.Abs(float64(v)); a > maxAbs && !math.IsInf(a, 1) {
			maxAbs = a
		}
	}
	return maxAbs / 127
}

// quantizeI8 rounds v to the nearest step of scale, clamped to [-127, 127].
// Non-finite values degrade gracefully: NaN encodes as 0, ±Inf saturates.
func quantizeI8(v, scale float64) int8 {
	if scale == 0 || math.IsNaN(v) {
		return 0
	}
	q := math.Round(v / scale)
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}

// Unmarshal parses wire bytes produced by Marshal or MarshalAs, returning
// the application kind and the payload dequantized to float64.
func Unmarshal(b []byte) (kind uint32, payload []float64, err error) {
	_, kind, payload, err = Decode(b)
	return kind, payload, err
}

// Decode parses wire bytes and additionally reports the codec the frame was
// encoded with. The frame must be exactly one message: trailing bytes are an
// error, as is a length field inconsistent with the buffer size.
func Decode(b []byte) (c Codec, kind uint32, payload []float64, err error) {
	return DecodeNative[float64](b)
}

// DecodeNative parses wire bytes into a payload of the chosen element
// width, without an intermediate float64 pass: a float32 consumer of an F32
// frame reads the stored bits directly. Decoding an F64 frame into float32
// narrows (lossy, like any f64→f32 cast); every other combination is exact
// or matches the codec's own loss. Dense frames only — sparse and delta
// frames carry basis state and go through DecodeSpec.
func DecodeNative[F tensor.Float](b []byte) (c Codec, kind uint32, payload []F, err error) {
	return DecodeNativeInto[F](nil, b)
}

// validScale rejects scales that would dequantize to non-finite values or
// negative steps, which no Marshal-produced frame contains.
func validScale(scale float64) bool {
	return scale >= 0 && !math.IsInf(scale, 0) && !math.IsNaN(scale)
}

// RoundTripInPlace passes v through the codec's quantization without
// building a frame: after the call, v holds exactly the values a receiver
// would decode. F64 is a no-op; F32 rounds every element to float32; I8
// snaps every element to its per-tensor int8 grid. It allocates nothing,
// so lossy uplinks can be simulated on the training hot path.
func RoundTripInPlace(c Codec, v []float64) {
	RoundTripInPlaceOf(c, v)
}

// RoundTripInPlaceOf is the dtype-generic round trip. For a float32 vector
// the F32 codec is the identity (the data is already at wire precision —
// the point of native f32 frames), and I8 snaps to the int8 grid of the
// widened values.
func RoundTripInPlaceOf[F tensor.Float](c Codec, v []F) {
	switch c {
	case F32:
		for i, x := range v {
			v[i] = F(float32(x))
		}
	case I8:
		scale := i8Scale(v)
		for i, x := range v {
			v[i] = F(float64(quantizeI8(float64(x), scale)) * scale)
		}
	case BF16:
		for i, x := range v {
			v[i] = F(tensor.BF16ToF32(tensor.BF16FromF32(float32(x))))
		}
	}
}

// RoundTraffic aggregates bytes moved during one communication round.
type RoundTraffic struct {
	Round     int
	UpBytes   int64 // client → server
	DownBytes int64 // server → client
	Messages  int
}

// Ledger is a thread-safe traffic recorder. The zero value is ready to use
// and accounts at the lossless F64 codec.
type Ledger struct {
	mu      sync.Mutex
	codec   Codec
	current RoundTraffic
	rounds  []RoundTraffic
	up      map[int]int64 // per-client cumulative upload
	down    map[int]int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{up: make(map[int]int64), down: make(map[int]int64)}
}

// SetCodec selects the wire codec used to account subsequent payloads, so
// Table-5 byte counts reflect compression.
func (l *Ledger) SetCodec(c Codec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.codec = c
}

// Codec reports the wire codec the ledger accounts at.
func (l *Ledger) Codec() Codec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.codec
}

// RecordUp logs a client → server payload of n values.
func (l *Ledger) RecordUp(client int, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sz := WireSizeAs(l.codec, n)
	l.current.UpBytes += sz
	l.current.Messages++
	l.up[client] += sz
}

// RecordDown logs a server → client payload of n values.
func (l *Ledger) RecordDown(client int, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sz := WireSizeAs(l.codec, n)
	l.current.DownBytes += sz
	l.current.Messages++
	l.down[client] += sz
}

// AddUp logs a client → server transfer by its raw wire size. Unlike
// RecordUp, which prices a payload element count at the ledger's codec,
// AddUp is for callers that know exactly what crossed the wire — transport
// frame prefixes, message envelopes and handshakes included — so node-mode
// accounting matches the socket byte for byte. Every call counts as one
// message.
func (l *Ledger) AddUp(client int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.current.UpBytes += bytes
	l.current.Messages++
	l.up[client] += bytes
}

// AddDown logs a server → client transfer by its raw wire size (the
// downlink counterpart of AddUp).
func (l *Ledger) AddDown(client int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.current.DownBytes += bytes
	l.current.Messages++
	l.down[client] += bytes
}

// EndRound finalizes the current round's traffic and starts a new one.
func (l *Ledger) EndRound(round int) RoundTraffic {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.current
	t.Round = round
	l.rounds = append(l.rounds, t)
	l.current = RoundTraffic{}
	return t
}

// Rounds returns a copy of the per-round history.
func (l *Ledger) Rounds() []RoundTraffic {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RoundTraffic(nil), l.rounds...)
}

// TotalUp returns the cumulative client → server bytes (including any
// traffic in the not-yet-finalized round).
func (l *Ledger) TotalUp() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s int64
	for _, v := range l.up {
		s += v
	}
	return s
}

// TotalDown returns the cumulative server → client bytes.
func (l *Ledger) TotalDown() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s int64
	for _, v := range l.down {
		s += v
	}
	return s
}

// ClientUp returns the cumulative upload bytes for one client.
func (l *Ledger) ClientUp(client int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.up[client]
}

// ClientDown returns the cumulative download bytes for one client.
func (l *Ledger) ClientDown(client int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down[client]
}

// ClientTraffic is one client's cumulative byte counts, the per-client view
// of a LedgerState.
type ClientTraffic struct {
	Client   int
	Up, Down int64
}

// LedgerState is a serializable snapshot of a Ledger, so checkpointed runs
// resume with continuous traffic accounting. Clients is sorted by id.
type LedgerState struct {
	Codec   Codec
	Current RoundTraffic
	Rounds  []RoundTraffic
	Clients []ClientTraffic
}

// Snapshot captures the ledger's full state.
func (l *Ledger) Snapshot() LedgerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LedgerState{
		Codec:   l.codec,
		Current: l.current,
		Rounds:  append([]RoundTraffic(nil), l.rounds...),
	}
	ids := make([]int, 0, len(l.up)+len(l.down))
	seen := make(map[int]bool, len(l.up)+len(l.down))
	for id := range l.up {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range l.down {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.Clients = append(st.Clients, ClientTraffic{Client: id, Up: l.up[id], Down: l.down[id]})
	}
	return st
}

// Restore overwrites the ledger with a snapshot captured by Snapshot.
func (l *Ledger) Restore(st LedgerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.codec = st.Codec
	l.current = st.Current
	l.rounds = append(l.rounds[:0], st.Rounds...)
	l.up = make(map[int]int64, len(st.Clients))
	l.down = make(map[int]int64, len(st.Clients))
	for _, c := range st.Clients {
		if c.Up != 0 {
			l.up[c.Client] = c.Up
		}
		if c.Down != 0 {
			l.down[c.Client] = c.Down
		}
	}
}
