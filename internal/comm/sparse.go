package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/tensor"
)

// This file holds the variable-size frame families and the allocation-free
// marshal/decode paths. Two frame kinds extend the dense codecs:
//
//	TOPK   [kind u32][TopK<<56|n][inner u8][k uvarint][scale f64 if inner=I8]
//	       [k indices: first absolute, then gaps ≥ 1, uvarint]
//	       [k values at the inner codec]
//	DELTA  [kind u32][Delta<<56|n][tag u64][sub u8][residual body]
//
// A TOPK frame keeps the k = ceil(frac·n) largest-|v| elements (ties broken
// by index order, NaN never kept over a finite value); the receiver decodes
// a dense vector with zeros elsewhere. A DELTA frame carries the payload as
// the difference against the slot's DeltaRef basis, with the residual body
// either dense (sub = F64..BF16) or top-k (sub = TopK, its own body
// following); delta inside delta is rejected. Both kinds are variable-size,
// so ledgers book them by the exact encoded length (AddUp), never through
// WireSizeAs.

// deltaOverhead is the DELTA frame's body prefix: basis tag + sub codec.
const deltaOverhead = 8 + 1

// maxSparseLen caps the element count a TOPK or DELTA frame may declare.
// Sparse frames are smaller than their decoded vector by design, so the
// count cannot be bounded by the buffer length the way dense frames are;
// this cap bounds what a hostile header can make the decoder allocate.
const maxSparseLen = 1 << 22

// coder is the pooled scratch a single marshal or decode call borrows:
// selection keys, kept indices, dequantized values, residuals and byte
// staging. Steady state, every slice has grown to working size and the
// codec paths allocate nothing.
type coder struct {
	f64 []float64
	deq []float64
	idx []int
	buf []byte
}

var coderPool = sync.Pool{New: func() any { return new(coder) }}

func (c *coder) floats(n int) []float64 {
	if cap(c.f64) < n {
		c.f64 = make([]float64, n)
	}
	return c.f64[:n]
}

func (c *coder) deqFloats(n int) []float64 {
	if cap(c.deq) < n {
		c.deq = make([]float64, n)
	}
	return c.deq[:n]
}

func (c *coder) ints(n int) []int {
	if cap(c.idx) < n {
		c.idx = make([]int, n)
	}
	return c.idx[:n]
}

// resizeF returns scratch resized to n elements, reallocating only when the
// capacity is short — the decode-side analogue of append-style encoding.
func resizeF[F tensor.Float](scratch []F, n int) []F {
	if cap(scratch) >= n && (n > 0 || scratch != nil) {
		return scratch[:n]
	}
	return make([]F, n)
}

// elemBytes is the per-element payload cost of a dense codec, excluding the
// I8 scale prefix (top-k values carry the scale separately).
func elemBytes(c Codec) int {
	switch c {
	case F32:
		return 4
	case I8:
		return 1
	case BF16:
		return 2
	}
	return 8
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// appendHeader appends the fixed 12-byte frame header.
func appendHeader(dst []byte, c Codec, kind uint32, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, kind)
	return binary.LittleEndian.AppendUint64(dst, uint64(c)<<56|uint64(n))
}

// MarshalNativeInto is the append-style MarshalNative: it encodes a dense
// frame into dst (growing it as needed) and returns the extended slice, so
// hot paths reuse one buffer across messages instead of allocating a frame
// per call.
func MarshalNativeInto[F tensor.Float](dst []byte, c Codec, kind uint32, payload []F) []byte {
	if !c.Dense() {
		panic(fmt.Sprintf("comm: MarshalNativeInto wants a dense codec, got %s (sparse frames go through MarshalSpecInto)", c))
	}
	dst = appendHeader(dst, c, kind, len(payload))
	return appendDense(dst, c, payload)
}

// appendDense appends the dense payload body of v under c.
func appendDense[F tensor.Float](dst []byte, c Codec, payload []F) []byte {
	switch c {
	case F32:
		for _, v := range payload {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
	case I8:
		scale := i8Scale(payload)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(scale))
		for _, v := range payload {
			dst = append(dst, byte(quantizeI8(float64(v), scale)))
		}
	case BF16:
		for _, v := range payload {
			dst = binary.LittleEndian.AppendUint16(dst, tensor.BF16FromF32(float32(v)))
		}
	default:
		for _, v := range payload {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v)))
		}
	}
	return dst
}

// topkCount is the deterministic kept count: ceil(frac·n) clamped to
// [1, n]. Both ends of a connection compute it from the same canonical
// fraction, so the decoder can cross-check k against the header length.
func topkCount(frac float64, n int) int {
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// topkKey is the selection magnitude of x: |x|, with NaN mapped below every
// finite and infinite value so a NaN element is kept only when nothing
// finite is left to keep.
func topkKey(x float64) float64 {
	a := math.Abs(x)
	if math.IsNaN(a) {
		return -1
	}
	return a
}

// kthLargest returns the k-th largest value of s (1-based), partially
// reordering s in place. Median-of-three Hoare partitioning keeps
// equal-heavy inputs — an all-zero residual is the common case — near
// O(n) instead of quadratic.
func kthLargest(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	target := len(s) - k
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		s[lo], s[mid] = s[mid], s[lo]
		pivot := s[lo]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if s[i] >= pivot {
					break
				}
			}
			for {
				j--
				if s[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		if target <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return s[lo]
}

// appendTopK appends a top-k body — [inner u8][k uvarint][scale f64 when
// inner is I8][indices][values] — keeping the k largest-|v| elements with
// ties broken by index order. When rt is non-nil (it may alias v) it
// receives the dense vector a receiver of the body would decode.
func appendTopK(dst []byte, inner Codec, frac float64, v, rt []float64) []byte {
	n := len(v)
	k := topkCount(frac, n)
	c := coderPool.Get().(*coder)
	abs := c.floats(n)
	for i, x := range v {
		abs[i] = topkKey(x)
	}
	t := kthLargest(abs, k)
	// Budget the ties: everything strictly above the threshold is kept, and
	// the remaining slots go to threshold-equal elements in index order.
	m := 0
	for _, x := range v {
		if topkKey(x) > t {
			m++
		}
	}
	idxs := c.ints(k)
	kept, eq := 0, 0
	var keptMax float64
	for i, x := range v {
		a := topkKey(x)
		if a > t || (a == t && eq < k-m) {
			if a == t {
				eq++
			}
			idxs[kept] = i
			kept++
			if a > keptMax && !math.IsInf(a, 1) {
				keptMax = a
			}
		}
	}
	dst = append(dst, byte(inner))
	dst = binary.AppendUvarint(dst, uint64(k))
	scale := keptMax / 127
	if inner == I8 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(scale))
	}
	prev := 0
	for j, ix := range idxs {
		if j == 0 {
			dst = binary.AppendUvarint(dst, uint64(ix))
		} else {
			dst = binary.AppendUvarint(dst, uint64(ix-prev))
		}
		prev = ix
	}
	deq := c.deqFloats(k)
	switch inner {
	case F32:
		for j, ix := range idxs {
			x := float32(v[ix])
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
			deq[j] = float64(x)
		}
	case I8:
		for j, ix := range idxs {
			q := quantizeI8(v[ix], scale)
			dst = append(dst, byte(q))
			deq[j] = float64(q) * scale
		}
	case BF16:
		for j, ix := range idxs {
			h := tensor.BF16FromF32(float32(v[ix]))
			dst = binary.LittleEndian.AppendUint16(dst, h)
			deq[j] = float64(tensor.BF16ToF32(h))
		}
	default:
		for j, ix := range idxs {
			x := v[ix]
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			deq[j] = x
		}
	}
	if rt != nil {
		for i := range rt {
			rt[i] = 0
		}
		for j, ix := range idxs {
			rt[ix] = deq[j]
		}
	}
	coderPool.Put(c)
	return dst
}

// MarshalSpecInto encodes one vector under the full spec — dense, top-k,
// or delta against ref — appending the frame to dst. v is never mutated.
// When ref is non-nil the call advances it exactly as the receiver's
// DecodeSpec will: a delta frame folds the decoded residual into the
// basis, any other frame re-establishes the basis at this frame's decoded
// value with tag 1.
func MarshalSpecInto(dst []byte, spec Spec, kind uint32, v []float64, ref *DeltaRef) []byte {
	if !spec.Value.Dense() {
		panic(fmt.Sprintf("comm: MarshalSpecInto wants a dense value codec, got %s", spec.Value))
	}
	n := len(v)
	if spec.Delta && ref != nil && ref.Tag != 0 && len(ref.Base) == n && n > 0 {
		c := coderPool.Get().(*coder)
		r := c.floats(n)
		for i := range v {
			r[i] = v[i] - ref.Base[i]
		}
		dst = appendHeader(dst, Delta, kind, n)
		dst = binary.LittleEndian.AppendUint64(dst, ref.Tag)
		if spec.Sparse() {
			dst = append(dst, byte(TopK))
			dst = appendTopK(dst, spec.Value, spec.Frac, r, r)
		} else {
			dst = append(dst, byte(spec.Value))
			dst = appendDense(dst, spec.Value, r)
			RoundTripInPlace(spec.Value, r)
		}
		for i := range r {
			ref.Base[i] += r[i]
		}
		ref.Tag++
		coderPool.Put(c)
		return dst
	}
	if spec.Sparse() && n > 0 {
		dst = appendHeader(dst, TopK, kind, n)
		var rt []float64
		if spec.Delta && ref != nil {
			ref.Base = resizeF(ref.Base, n)
			rt = ref.Base
		}
		dst = appendTopK(dst, spec.Value, spec.Frac, v, rt)
		if rt != nil {
			ref.Tag = 1
		}
		return dst
	}
	dst = MarshalNativeInto(dst, spec.Value, kind, v)
	if spec.Delta && ref != nil {
		ref.Base = append(ref.Base[:0], v...)
		RoundTripInPlace(spec.Value, ref.Base)
		ref.Tag = 1
	}
	return dst
}

// MarshalSpecBound is an upper bound on MarshalSpecInto's frame size for an
// n-element vector, for sizing a message buffer in one allocation.
func MarshalSpecBound(spec Spec, n int) int {
	bound := int(WireSizeAs(spec.Value, n))
	if spec.Delta {
		bound += deltaOverhead
	}
	if spec.Sparse() && n > 0 {
		k := topkCount(spec.Frac, n)
		sb := headerSize + deltaOverhead + 1 + binary.MaxVarintLen64 + 8 +
			k*(uvarintLen(uint64(n))+elemBytes(spec.Value))
		if sb > bound {
			bound = sb
		}
	}
	return bound
}

// FrameInfo parses just the fixed frame header: the codec family, the kind
// tag and the declared element count, touching no payload bytes. Callers
// use it to look up the right DeltaRef before a full DecodeSpec.
func FrameInfo(b []byte) (c Codec, kind uint32, n int, err error) {
	if len(b) < headerSize {
		return 0, 0, 0, fmt.Errorf("comm: frame of %d bytes is shorter than the %d-byte header", len(b), headerSize)
	}
	kind = binary.LittleEndian.Uint32(b)
	word := binary.LittleEndian.Uint64(b[4:])
	c = Codec(word >> 56)
	if !c.Valid() {
		return 0, 0, 0, fmt.Errorf("comm: unknown codec %d", uint8(c))
	}
	return c, kind, int(word & maxLen), nil
}

// DecodeSpec parses any frame family into a dense float64 vector, reusing
// scratch when its capacity suffices. ref carries the slot's delta basis:
// nil rejects delta frames outright (no negotiated basis), and a non-nil
// ref is advanced on every frame exactly as the sender's MarshalSpecInto
// advanced its own — dense and top-k frames re-establish the basis, delta
// frames verify the tag and fold the residual in.
func DecodeSpec(scratch []float64, b []byte, ref *DeltaRef) (kind uint32, v []float64, err error) {
	c, kind, n, err := FrameInfo(b)
	if err != nil {
		return 0, nil, err
	}
	switch {
	case c.Dense():
		if want := WireSizeAs(c, n); int64(len(b)) != want {
			return 0, nil, fmt.Errorf("comm: %s frame of %d elements wants %d bytes, got %d", c, n, want, len(b))
		}
		v = resizeF(scratch, n)
		if err := decodeDense(v, c, b[headerSize:]); err != nil {
			return 0, nil, err
		}
	case c == TopK:
		if v, err = decodeTopKBody(scratch, b[headerSize:], n); err != nil {
			return 0, nil, err
		}
	default: // Delta
		v, err = decodeDelta(scratch, b[headerSize:], n, ref)
		return kind, v, err
	}
	if ref != nil {
		ref.Base = append(ref.Base[:0], v...)
		ref.Tag = 1
	}
	return kind, v, nil
}

// decodeDense fills payload from a dense body whose length the caller has
// already validated against c.payloadBytes(len(payload)).
func decodeDense[F tensor.Float](payload []F, c Codec, body []byte) error {
	switch c {
	case F32:
		for i := range payload {
			payload[i] = F(math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
		}
	case I8:
		scale := math.Float64frombits(binary.LittleEndian.Uint64(body))
		if !validScale(scale) {
			return fmt.Errorf("comm: invalid int8 scale %g", scale)
		}
		q := body[8:]
		for i := range payload {
			payload[i] = F(float64(int8(q[i])) * scale)
		}
	case BF16:
		for i := range payload {
			payload[i] = F(tensor.BF16ToF32(binary.LittleEndian.Uint16(body[2*i:])))
		}
	default:
		for i := range payload {
			payload[i] = F(math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])))
		}
	}
	return nil
}

// decodeTopKBody parses a top-k body into a dense n-element vector. Every
// validation — inner codec, k range, index monotonicity and bounds, exact
// body length — happens before the n-proportional output is touched, and
// nothing is allocated in proportion to the declared k beyond the bytes
// the body actually carries.
func decodeTopKBody(scratch []float64, body []byte, n int) ([]float64, error) {
	if n > maxSparseLen {
		return nil, fmt.Errorf("comm: top-k frame declares %d elements, cap is %d", n, maxSparseLen)
	}
	if len(body) < 2 {
		return nil, fmt.Errorf("comm: top-k body of %d bytes is truncated", len(body))
	}
	inner := Codec(body[0])
	if !inner.Dense() {
		return nil, fmt.Errorf("comm: top-k inner codec %d is not a dense codec", body[0])
	}
	k64, sz := binary.Uvarint(body[1:])
	if sz <= 0 {
		return nil, fmt.Errorf("comm: top-k kept count is malformed")
	}
	if k64 == 0 || k64 > uint64(n) {
		return nil, fmt.Errorf("comm: top-k keeps %d of %d elements", k64, n)
	}
	k := int(k64)
	rest := body[1+sz:]
	scaleBytes := 0
	if inner == I8 {
		scaleBytes = 8
	}
	eb := elemBytes(inner)
	// Cheap lower bound before parsing anything k-proportional: k indices
	// cost at least a byte each, plus k values and the scale.
	if len(rest) < scaleBytes+k*(1+eb) {
		return nil, fmt.Errorf("comm: top-k body of %d bytes cannot hold %d entries", len(rest), k)
	}
	var scale float64
	if inner == I8 {
		scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		if !validScale(scale) {
			return nil, fmt.Errorf("comm: invalid int8 scale %g", scale)
		}
		rest = rest[8:]
	}
	c := coderPool.Get().(*coder)
	defer coderPool.Put(c)
	idxs := c.ints(k)
	prev := 0
	for j := range idxs {
		g, gsz := binary.Uvarint(rest)
		if gsz <= 0 {
			return nil, fmt.Errorf("comm: top-k index %d is malformed", j)
		}
		rest = rest[gsz:]
		if g >= uint64(n) {
			return nil, fmt.Errorf("comm: top-k index %d out of range", j)
		}
		ix := int(g)
		if j > 0 {
			if g == 0 {
				return nil, fmt.Errorf("comm: top-k index stream is non-monotone at entry %d", j)
			}
			ix = prev + int(g)
			if ix >= n {
				return nil, fmt.Errorf("comm: top-k index %d out of range", j)
			}
		}
		idxs[j] = ix
		prev = ix
	}
	if len(rest) != k*eb {
		return nil, fmt.Errorf("comm: top-k values want %d bytes, got %d", k*eb, len(rest))
	}
	out := resizeF(scratch, n)
	for i := range out {
		out[i] = 0
	}
	switch inner {
	case F32:
		for j, ix := range idxs {
			out[ix] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rest[4*j:])))
		}
	case I8:
		for j, ix := range idxs {
			out[ix] = float64(int8(rest[j])) * scale
		}
	case BF16:
		for j, ix := range idxs {
			out[ix] = float64(tensor.BF16ToF32(binary.LittleEndian.Uint16(rest[2*j:])))
		}
	default:
		for j, ix := range idxs {
			out[ix] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*j:]))
		}
	}
	return out, nil
}

// decodeDelta parses a delta body against the slot's basis and advances it.
func decodeDelta(scratch []float64, body []byte, n int, ref *DeltaRef) ([]float64, error) {
	if n > maxSparseLen {
		return nil, fmt.Errorf("comm: delta frame declares %d elements, cap is %d", n, maxSparseLen)
	}
	if len(body) < deltaOverhead {
		return nil, fmt.Errorf("comm: delta body of %d bytes is truncated", len(body))
	}
	tag := binary.LittleEndian.Uint64(body)
	sub := Codec(body[8])
	body = body[deltaOverhead:]
	if ref == nil {
		return nil, fmt.Errorf("comm: delta frame on a slot with no negotiated basis")
	}
	if ref.Tag == 0 || tag != ref.Tag {
		return nil, fmt.Errorf("comm: delta frame tagged %d against basis tag %d", tag, ref.Tag)
	}
	if len(ref.Base) != n {
		return nil, fmt.Errorf("comm: delta frame of %d elements against a %d-element basis", n, len(ref.Base))
	}
	c := coderPool.Get().(*coder)
	defer coderPool.Put(c)
	var r []float64
	var err error
	switch {
	case sub == TopK:
		r, err = decodeTopKBody(c.floats(n), body, n)
	case sub.Dense():
		if int64(len(body)) != sub.payloadBytes(n) {
			err = fmt.Errorf("comm: %s delta residual of %d elements wants %d bytes, got %d", sub, n, sub.payloadBytes(n), len(body))
		} else {
			r = c.floats(n)
			err = decodeDense(r, sub, body)
		}
	default:
		err = fmt.Errorf("comm: delta residual codec %d is not dense or top-k", uint8(sub))
	}
	if err != nil {
		return nil, err
	}
	out := resizeF(scratch, n)
	for i := range out {
		out[i] = ref.Base[i] + r[i]
	}
	ref.Base = append(ref.Base[:0], out...)
	ref.Tag++
	return out, nil
}

// DecodeNativeInto is DecodeNative with caller-owned scratch: the payload
// reuses scratch's backing array when its capacity suffices, so a steady-
// state decode loop allocates nothing. Dense frames only; sparse and delta
// frames carry float64 semantics and go through DecodeSpec.
func DecodeNativeInto[F tensor.Float](scratch []F, b []byte) (c Codec, kind uint32, payload []F, err error) {
	var n int
	if c, kind, n, err = FrameInfo(b); err != nil {
		return 0, 0, nil, err
	}
	if !c.Dense() {
		return 0, 0, nil, fmt.Errorf("comm: %s frames need a spec-aware decode (DecodeSpec)", c)
	}
	if want := WireSizeAs(c, n); int64(len(b)) != want {
		return 0, 0, nil, fmt.Errorf("comm: %s frame of %d elements wants %d bytes, got %d", c, n, want, len(b))
	}
	payload = resizeF(scratch, n)
	if err = decodeDense(payload, c, b[headerSize:]); err != nil {
		return 0, 0, nil, err
	}
	return c, kind, payload, nil
}

// RoundTripSpec passes v through the spec's full framing loss in place —
// after the call v holds exactly what a receiver of MarshalSpecInto's
// frame would decode — and returns the exact frame size in bytes,
// advancing ref the way the encoder does. It is how the in-process
// simulation models sparse and delta uplinks bit-exactly and prices them
// to the byte. A plain dense spec reduces to RoundTripInPlace plus
// WireSizeAs, unchanged from the legacy path.
func RoundTripSpec(spec Spec, v []float64, ref *DeltaRef) int64 {
	if !spec.Value.Dense() {
		panic(fmt.Sprintf("comm: RoundTripSpec wants a dense value codec, got %s", spec.Value))
	}
	n := len(v)
	if spec.Plain() {
		RoundTripInPlace(spec.Value, v)
		return WireSizeAs(spec.Value, n)
	}
	c := coderPool.Get().(*coder)
	defer coderPool.Put(c)
	if spec.Delta && ref != nil && ref.Tag != 0 && len(ref.Base) == n && n > 0 {
		r := c.floats(n)
		for i := range v {
			r[i] = v[i] - ref.Base[i]
		}
		var body int64
		if spec.Sparse() {
			c.buf = appendTopK(c.buf[:0], spec.Value, spec.Frac, r, r)
			body = int64(len(c.buf))
		} else {
			RoundTripInPlace(spec.Value, r)
			body = spec.Value.payloadBytes(n)
		}
		for i := range r {
			ref.Base[i] += r[i]
		}
		copy(v, ref.Base)
		ref.Tag++
		return headerSize + deltaOverhead + body
	}
	if spec.Sparse() && n > 0 {
		c.buf = appendTopK(c.buf[:0], spec.Value, spec.Frac, v, v)
		if spec.Delta && ref != nil {
			ref.Base = append(ref.Base[:0], v...)
			ref.Tag = 1
		}
		return headerSize + int64(len(c.buf))
	}
	RoundTripInPlace(spec.Value, v)
	if spec.Delta && ref != nil {
		ref.Base = append(ref.Base[:0], v...)
		ref.Tag = 1
	}
	return WireSizeAs(spec.Value, n)
}
