package comm

import (
	"math"
	"math/rand"
	"testing"
)

func specVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSpecPackUnpack(t *testing.T) {
	specs := []Spec{
		{},
		NewSpec(F32, 0, false),
		NewSpec(I8, 0, true),
		NewSpec(F32, 0.05, false),
		NewSpec(I8, 0.25, true),
		NewSpec(BF16, 0.5, false),
		NewSpec(F64, 1.0/fracUnit, true),
	}
	for _, s := range specs {
		if !s.Valid() {
			t.Fatalf("spec %v not canonical", s)
		}
		u, err := UnpackSpec(s.Pack())
		if err != nil {
			t.Fatalf("unpack %v: %v", s, err)
		}
		if u != s {
			t.Fatalf("pack/unpack %v -> %v", s, u)
		}
	}
	// Plain dense specs pack to the bare codec value — dense handshakes are
	// unchanged from the previous wire version.
	if w := NewSpec(I8, 0, false).Pack(); w != uint32(I8) {
		t.Fatalf("plain i8 packs to %#x", w)
	}
	for _, w := range []uint32{uint32(TopK), uint32(Delta), 0xff, 1 << 9, 1 << 15} {
		if _, err := UnpackSpec(w); err == nil {
			t.Fatalf("handshake word %#x must be rejected", w)
		}
	}
}

func TestParseSpec(t *testing.T) {
	if s, err := ParseSpec("topk", 0, false); err != nil || s != NewSpec(F32, 0.05, false) {
		t.Fatalf("topk default: %v, %v", s, err)
	}
	if s, err := ParseSpec("topk", 0.1, true); err != nil || s != NewSpec(F32, 0.1, true) {
		t.Fatalf("topk 0.1 delta: %v, %v", s, err)
	}
	if s, err := ParseSpec("i8", 0, true); err != nil || s != NewSpec(I8, 0, true) {
		t.Fatalf("i8 delta: %v, %v", s, err)
	}
	if s, err := ParseSpec("f64", 0.5, false); err != nil || s != NewSpec(F64, 0.5, false) {
		t.Fatalf("sparse f64: %v, %v", s, err)
	}
	for _, bad := range []struct {
		codec string
		topk  float64
	}{{"nope", 0}, {"f64", 1}, {"f64", -0.5}, {"f64", 2}} {
		if _, err := ParseSpec(bad.codec, bad.topk, false); err == nil {
			t.Fatalf("ParseSpec(%q, %v) must error", bad.codec, bad.topk)
		}
	}
}

func TestSelectorPolicy(t *testing.T) {
	upd := uint32(101)
	sel := &Selector{
		Spec:        NewSpec(F32, 0.05, true),
		SparseKinds: func(k uint32) bool { return k == upd },
		DeltaKinds:  func(k uint32) bool { return k == upd },
	}
	if got := sel.For(upd, 1000); got != NewSpec(F32, 0.05, true) {
		t.Fatalf("update vector got %v", got)
	}
	// Other kinds (dispatches, prototypes) stay dense at the value codec.
	if got := sel.For(7, 1000); got != NewSpec(F32, 0, false) {
		t.Fatalf("non-update kind got %v", got)
	}
	// Small vectors stay dense whatever the kind.
	if got := sel.For(upd, DefaultMinSparse-1); got != NewSpec(F32, 0, false) {
		t.Fatalf("small vector got %v", got)
	}
	// Nil predicates admit every kind.
	all := &Selector{Spec: NewSpec(I8, 0.5, false)}
	if got := all.For(7, 1000); got != NewSpec(I8, 0.5, false) {
		t.Fatalf("nil-predicate selector got %v", got)
	}
}

// Core property: for every inner codec and fraction, DecodeSpec(encode(v))
// matches RoundTripSpec bit for bit and the reported size is the frame size.
func TestTopKRoundTripMatchesSpec(t *testing.T) {
	for _, inner := range []Codec{F64, F32, I8, BF16} {
		for _, frac := range []float64{0.01, 0.1, 0.5} {
			spec := NewSpec(inner, frac, false)
			v := specVec(257, int64(inner)*100+int64(frac*1000))
			orig := append([]float64(nil), v...)
			b := MarshalSpecInto(nil, spec, 9, v, nil)
			for i := range v {
				if v[i] != orig[i] {
					t.Fatalf("%v: MarshalSpecInto mutated input at %d", spec, i)
				}
			}
			if c, _, n, err := FrameInfo(b); err != nil || c != TopK || n != len(v) {
				t.Fatalf("%v: frame info %v %v %d", spec, err, c, n)
			}
			kind, got, err := DecodeSpec(nil, b, nil)
			if err != nil {
				t.Fatalf("%v: %v", spec, err)
			}
			if kind != 9 || len(got) != len(v) {
				t.Fatalf("%v: kind %d len %d", spec, kind, len(got))
			}
			rt := append([]float64(nil), v...)
			size := RoundTripSpec(spec, rt, nil)
			if size != int64(len(b)) {
				t.Fatalf("%v: RoundTripSpec says %d bytes, frame is %d", spec, size, len(b))
			}
			k := topkCount(spec.Frac, len(v))
			nz := 0
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(rt[i]) {
					t.Fatalf("%v elem %d: decode %v vs round-trip %v", spec, i, got[i], rt[i])
				}
				if got[i] != 0 {
					nz++
				}
			}
			if nz > k {
				t.Fatalf("%v: %d nonzero elements, keeps only %d", spec, nz, k)
			}
			if int64(len(b)) >= WireSizeAs(inner, len(v)) && frac < 0.5 {
				t.Fatalf("%v: sparse frame (%d bytes) not smaller than dense (%d)", spec, len(b), WireSizeAs(inner, len(v)))
			}
		}
	}
}

// The kept set is exactly the k largest magnitudes, ties broken by index.
func TestTopKKeepsLargest(t *testing.T) {
	v := []float64{0, 5, -3, 0.5, 4, -4, 1, -1, 2, 0.25}
	spec := NewSpec(F64, 0.25, false) // k = ceil(0.25*10) = 3
	b := MarshalSpecInto(nil, spec, 1, v, nil)
	_, got, err := DecodeSpec(nil, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 0, 0, 4, -4, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v (decoded %v)", i, got[i], want[i], got)
		}
	}
}

// An all-equal vector (ties everywhere) must keep exactly k elements, in
// index order, without the selection degenerating.
func TestTopKAllEqual(t *testing.T) {
	v := make([]float64, 1000)
	for i := range v {
		v[i] = 1
	}
	spec := NewSpec(F64, 0.01, false)
	_, got, err := DecodeSpec(nil, MarshalSpecInto(nil, spec, 1, v, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := 0.0
		if i < 10 {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("elem %d = %v, want %v", i, got[i], want)
		}
	}
}

// A dense-f64 delta stream reproduces every round's vector to within the
// rounding of one subtract-and-add, and the in-process model
// (RoundTripSpec) tracks frame sizes and values bit for bit.
func TestDeltaStreamDenseF64(t *testing.T) {
	spec := NewSpec(F64, 0, true)
	enc, dec, sim := &DeltaRef{}, &DeltaRef{}, &DeltaRef{}
	for round := 0; round < 5; round++ {
		v := specVec(129, int64(round))
		b := MarshalSpecInto(nil, spec, 2, v, enc)
		c, _, _, err := FrameInfo(b)
		if err != nil {
			t.Fatal(err)
		}
		wantC := Delta
		if round == 0 {
			wantC = F64
		}
		if c != wantC {
			t.Fatalf("round %d frame codec %v, want %v", round, c, wantC)
		}
		_, got, err := DecodeSpec(nil, b, dec)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rt := append([]float64(nil), v...)
		if size := RoundTripSpec(spec, rt, sim); size != int64(len(b)) {
			t.Fatalf("round %d: model %d bytes, wire %d", round, size, len(b))
		}
		for i := range v {
			if math.Abs(got[i]-v[i]) > 1e-9 {
				t.Fatalf("round %d elem %d: %v != %v", round, i, got[i], v[i])
			}
			if math.Float64bits(rt[i]) != math.Float64bits(got[i]) {
				t.Fatalf("round %d elem %d: model %v vs wire %v", round, i, rt[i], got[i])
			}
		}
	}
}

// Lossy delta (top-k residuals at i8) stays bit-exact between the wire
// decode and the in-process model, round after round.
func TestDeltaTopKStreamMatchesModel(t *testing.T) {
	spec := NewSpec(I8, 0.1, true)
	enc, dec, sim := &DeltaRef{}, &DeltaRef{}, &DeltaRef{}
	base := specVec(500, 42)
	for round := 0; round < 6; round++ {
		v := append([]float64(nil), base...)
		noise := specVec(500, int64(100+round))
		for i := range v {
			v[i] += 0.01 * noise[i]
		}
		b := MarshalSpecInto(nil, spec, 3, v, enc)
		_, got, err := DecodeSpec(nil, b, dec)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rt := append([]float64(nil), v...)
		if size := RoundTripSpec(spec, rt, sim); size != int64(len(b)) {
			t.Fatalf("round %d: model %d bytes, wire %d", round, size, len(b))
		}
		for i := range rt {
			if math.Float64bits(rt[i]) != math.Float64bits(got[i]) {
				t.Fatalf("round %d elem %d: model %v vs wire %v", round, i, rt[i], got[i])
			}
		}
	}
}

// Reconnect fallback: when the encoder loses its basis (fresh ref), it
// re-establishes with a non-delta frame; a decoder still holding the old
// basis resyncs to it and the stream continues equivalently to dense.
func TestDeltaDenseResync(t *testing.T) {
	spec := NewSpec(F64, 0, true)
	enc, dec := &DeltaRef{}, &DeltaRef{}
	v1 := specVec(64, 1)
	if _, _, err := DecodeSpec(nil, MarshalSpecInto(nil, spec, 2, v1, enc), dec); err != nil {
		t.Fatal(err)
	}
	v2 := specVec(64, 2)
	if _, _, err := DecodeSpec(nil, MarshalSpecInto(nil, spec, 2, v2, enc), dec); err != nil {
		t.Fatal(err)
	}
	// Encoder reconnects: fresh ref, old decoder state.
	enc2 := &DeltaRef{}
	v3 := specVec(64, 3)
	b := MarshalSpecInto(nil, spec, 2, v3, enc2)
	if c, _, _, _ := FrameInfo(b); c != F64 {
		t.Fatalf("post-reconnect frame codec %v, want dense", c)
	}
	_, got, err := DecodeSpec(nil, b, dec)
	if err != nil {
		t.Fatalf("dense resync: %v", err)
	}
	if dec.Tag != 1 || enc2.Tag != 1 {
		t.Fatalf("resync tags enc=%d dec=%d, want 1", enc2.Tag, dec.Tag)
	}
	// And delta framing resumes on the new shared basis.
	v4 := specVec(64, 4)
	b4 := MarshalSpecInto(nil, spec, 2, v4, enc2)
	if c, _, _, _ := FrameInfo(b4); c != Delta {
		t.Fatalf("post-resync frame codec %v, want delta", c)
	}
	_, got, err = DecodeSpec(got[:0], b4, dec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v4 {
		if math.Abs(got[i]-v4[i]) > 1e-9 {
			t.Fatalf("elem %d: %v != %v", i, got[i], v4[i])
		}
	}
}

func TestDecodeSpecRejections(t *testing.T) {
	mk := func(n int, body ...byte) []byte {
		return append(appendHeader(nil, TopK, 1, n), body...)
	}
	f64val := make([]byte, 8)
	cases := map[string][]byte{
		"k zero":          mk(4, byte(F64), 0),
		"k over n":        mk(4, byte(F64), 10),
		"empty body":      mk(4),
		"bad inner":       mk(4, byte(TopK), 1),
		"index range":     append(mk(4, byte(F64), 1, 7), f64val...),
		"gap zero":        append(mk(4, byte(F64), 2, 1, 0), append(f64val, f64val...)...),
		"gap overflow":    append(mk(4, byte(F64), 2, 3, 3), append(f64val, f64val...)...),
		"huge n":          mk(maxSparseLen+1, byte(F64), 1, 0),
		"delta in delta":  append(appendHeader(nil, Delta, 1, 4), 1, 0, 0, 0, 0, 0, 0, 0, byte(Delta)),
		"delta truncated": append(appendHeader(nil, Delta, 1, 4), 1, 0),
	}
	good := MarshalSpecInto(nil, NewSpec(F32, 0.25, false), 1, specVec(16, 9), nil)
	cases["truncated values"] = good[:len(good)-1]
	cases["trailing bytes"] = append(append([]byte(nil), good...), 0)
	for name, b := range cases {
		ref := &DeltaRef{Tag: 1, Base: make([]float64, 4)}
		if _, _, err := DecodeSpec(nil, b, ref); err == nil {
			t.Fatalf("%s: frame must be rejected", name)
		}
	}
	// Delta frames need a negotiated basis: nil ref, tag mismatch, and a
	// basis of the wrong length are all protocol errors.
	spec := NewSpec(F64, 0, true)
	enc := &DeltaRef{}
	v := specVec(16, 1)
	MarshalSpecInto(nil, spec, 2, v, enc)
	d := MarshalSpecInto(nil, spec, 2, specVec(16, 2), enc)
	if c, _, _, _ := FrameInfo(d); c != Delta {
		t.Fatalf("second frame codec %v", c)
	}
	if _, _, err := DecodeSpec(nil, d, nil); err == nil {
		t.Fatal("delta without a basis must be rejected")
	}
	if _, _, err := DecodeSpec(nil, d, &DeltaRef{Tag: 7, Base: make([]float64, 16)}); err == nil {
		t.Fatal("delta with a mismatched tag must be rejected")
	}
	if _, _, err := DecodeSpec(nil, d, &DeltaRef{Tag: 1, Base: make([]float64, 8)}); err == nil {
		t.Fatal("delta against a wrong-length basis must be rejected")
	}
	// A duplicated delta frame (replay on the same connection) is a tag
	// mismatch on the second decode, never a silent double-apply.
	enc2, dec := &DeltaRef{}, &DeltaRef{}
	if _, _, err := DecodeSpec(nil, MarshalSpecInto(nil, spec, 2, v, enc2), dec); err != nil {
		t.Fatal(err)
	}
	d2 := MarshalSpecInto(nil, spec, 2, specVec(16, 3), enc2)
	if _, _, err := DecodeSpec(nil, d2, dec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSpec(nil, d2, dec); err == nil {
		t.Fatal("replayed delta frame must be rejected")
	}
	// The dense-only decode path refuses structural frames outright.
	if _, _, _, err := Decode(good); err == nil {
		t.Fatal("Decode must reject top-k frames")
	}
}

// A hostile header declaring a huge k must be rejected from the byte-length
// bound alone, before anything k-proportional is allocated.
func TestDecodeSpecHugeKCheap(t *testing.T) {
	b := appendHeader(nil, TopK, 1, maxSparseLen)
	b = append(b, byte(I8))
	b = append(b, 0xff, 0xff, 0xff, 0x01) // k ≈ 4M as uvarint
	b = append(b, make([]byte, 64)...)    // far fewer bytes than k needs
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := DecodeSpec(nil, b, nil); err == nil {
			t.Fatal("undersized huge-k frame must be rejected")
		}
	})
	limit := 4.0
	if raceEnabled { // the race runtime drops sync.Pool puts, adding re-allocs
		limit = 8
	}
	if avg > limit {
		t.Fatalf("rejecting a huge-k frame allocates %.1f objects/op", avg)
	}
}

// MarshalSpecInto with a plain spec is MarshalNative byte for byte, and the
// append-style path composes frames into one caller buffer.
func TestMarshalSpecIntoPlain(t *testing.T) {
	v := specVec(33, 4)
	for _, c := range []Codec{F64, F32, I8, BF16} {
		want := MarshalAs(c, 5, v)
		got := MarshalSpecInto(nil, Spec{Value: c}, 5, v, nil)
		if string(got) != string(want) {
			t.Fatalf("%s: spec frame differs from MarshalAs", c)
		}
	}
	buf := MarshalSpecInto(nil, Spec{}, 1, v, nil)
	one := len(buf)
	buf = MarshalSpecInto(buf, Spec{Value: I8}, 2, v, nil)
	if _, _, _, err := Decode(buf[:one]); err != nil {
		t.Fatalf("first frame in shared buffer: %v", err)
	}
	if _, _, _, err := Decode(buf[one:]); err != nil {
		t.Fatalf("second frame in shared buffer: %v", err)
	}
}

// MarshalSpecBound dominates the real frame size for a spread of shapes.
func TestMarshalSpecBound(t *testing.T) {
	for _, spec := range []Spec{
		{},
		NewSpec(I8, 0, false),
		NewSpec(F32, 0.05, false),
		NewSpec(I8, 0.05, true),
		NewSpec(F64, 0.9, true),
		NewSpec(BF16, 0.33, false),
	} {
		ref := &DeltaRef{}
		for _, n := range []int{0, 1, 7, 64, 257, 4096} {
			v := specVec(n, int64(n))
			b := MarshalSpecInto(nil, spec, 1, v, ref)
			if bound := MarshalSpecBound(spec, n); len(b) > bound {
				t.Fatalf("%v n=%d: frame %d bytes exceeds bound %d", spec, n, len(b), bound)
			}
		}
	}
}
