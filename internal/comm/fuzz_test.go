package comm

import (
	"math"
	"testing"
)

// FuzzUnmarshal drives Decode with arbitrary frames. Invariants:
//
//   - Decode never panics and never allocates a payload longer than the
//     input could hold.
//   - An accepted frame re-encodes losslessly under F64 and byte-identically
//     re-decodes (decoded values are exact wire values for every codec).
//   - Frames produced by MarshalAs for any codec always decode, with the
//     declared codec, kind and length.
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: a well-formed frame per codec, edge payloads, and
	// corruptions of each failure class Decode must reject.
	seeds := [][]byte{
		MarshalAs(F64, 7, []float64{1.5, -2.25, 0, 1e300}),
		MarshalAs(F32, 1, []float64{0.5, -0.5, 3.0000001}),
		MarshalAs(I8, 2, []float64{1, -1, 0.25, 126.9}),
		MarshalAs(F64, 0, nil),
		MarshalAs(I8, 9, []float64{0, 0, 0}),
		MarshalAs(F32, 3, []float64{math.Inf(1), math.NaN()}),
		{1, 2},             // short header
		make([]byte, 12),   // empty f64 frame
		make([]byte, 1024), // zeroed: declares 0 elements but trails 1012 bytes
	}
	truncated := MarshalAs(I8, 4, []float64{3, -3})
	seeds = append(seeds, truncated[:len(truncated)-1])
	badCodec := MarshalAs(F64, 5, []float64{1})
	badCodec = append([]byte(nil), badCodec...)
	badCodec[11] = 0x42
	seeds = append(seeds, badCodec)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		c, kind, payload, err := Decode(b)
		if err != nil {
			return
		}
		if int64(len(b)) != WireSizeAs(c, len(payload)) {
			t.Fatalf("accepted %d-byte frame but %s/%d elements costs %d",
				len(b), c, len(payload), WireSizeAs(c, len(payload)))
		}
		// Decoded values are exact wire values: re-encoding losslessly must
		// round-trip bit for bit (NaNs compare by bit pattern).
		again := MarshalAs(F64, kind, payload)
		c2, kind2, payload2, err := Decode(again)
		if err != nil || c2 != F64 || kind2 != kind || len(payload2) != len(payload) {
			t.Fatalf("f64 re-encode failed: %v (codec %v kind %d len %d)", err, c2, kind2, len(payload2))
		}
		for i := range payload {
			if math.Float64bits(payload2[i]) != math.Float64bits(payload[i]) {
				t.Fatalf("elem %d: %v != %v", i, payload2[i], payload[i])
			}
		}
		// Re-encoding under the original codec must be accepted too (values
		// may re-quantize, but the frame itself stays well formed).
		if _, _, _, err := Decode(MarshalAs(c, kind, payload)); err != nil {
			t.Fatalf("%s re-encode rejected: %v", c, err)
		}
	})
}
