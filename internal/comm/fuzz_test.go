package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
)

// FuzzUnmarshal drives Decode with arbitrary frames. Invariants:
//
//   - Decode never panics and never allocates a payload longer than the
//     input could hold.
//   - An accepted frame re-encodes losslessly under F64 and byte-identically
//     re-decodes (decoded values are exact wire values for every codec).
//   - Frames produced by MarshalAs for any codec always decode, with the
//     declared codec, kind and length.
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: a well-formed frame per codec, edge payloads, and
	// corruptions of each failure class Decode must reject.
	seeds := [][]byte{
		MarshalAs(F64, 7, []float64{1.5, -2.25, 0, 1e300}),
		MarshalAs(F32, 1, []float64{0.5, -0.5, 3.0000001}),
		MarshalAs(I8, 2, []float64{1, -1, 0.25, 126.9}),
		MarshalAs(F64, 0, nil),
		MarshalAs(I8, 9, []float64{0, 0, 0}),
		MarshalAs(F32, 3, []float64{math.Inf(1), math.NaN()}),
		{1, 2},             // short header
		make([]byte, 12),   // empty f64 frame
		make([]byte, 1024), // zeroed: declares 0 elements but trails 1012 bytes
	}
	truncated := MarshalAs(I8, 4, []float64{3, -3})
	seeds = append(seeds, truncated[:len(truncated)-1])
	badCodec := MarshalAs(F64, 5, []float64{1})
	badCodec = append([]byte(nil), badCodec...)
	badCodec[11] = 0x42
	seeds = append(seeds, badCodec)
	seeds = append(seeds, sparseSeeds()...)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		fuzzDecodeSpec(t, b)
		c, kind, payload, err := Decode(b)
		if err != nil {
			return
		}
		if int64(len(b)) != WireSizeAs(c, len(payload)) {
			t.Fatalf("accepted %d-byte frame but %s/%d elements costs %d",
				len(b), c, len(payload), WireSizeAs(c, len(payload)))
		}
		// Decoded values are exact wire values: re-encoding losslessly must
		// round-trip bit for bit (NaNs compare by bit pattern).
		again := MarshalAs(F64, kind, payload)
		c2, kind2, payload2, err := Decode(again)
		if err != nil || c2 != F64 || kind2 != kind || len(payload2) != len(payload) {
			t.Fatalf("f64 re-encode failed: %v (codec %v kind %d len %d)", err, c2, kind2, len(payload2))
		}
		for i := range payload {
			if math.Float64bits(payload2[i]) != math.Float64bits(payload[i]) {
				t.Fatalf("elem %d: %v != %v", i, payload2[i], payload[i])
			}
		}
		// Re-encoding under the original codec must be accepted too (values
		// may re-quantize, but the frame itself stays well formed).
		if _, _, _, err := Decode(MarshalAs(c, kind, payload)); err != nil {
			t.Fatalf("%s re-encode rejected: %v", c, err)
		}
	})
}

// sparseSeeds builds well-formed and corrupt TOPK/DELTA frames for the fuzz
// corpus: a frame per inner codec, a short delta stream, and one specimen
// of each rejection class the decoder enforces.
func sparseSeeds() [][]byte {
	vec := make([]float64, 96)
	for i := range vec {
		vec[i] = math.Sin(float64(i)) * float64(i%7)
	}
	var seeds [][]byte
	for _, inner := range []Codec{F64, F32, I8, BF16} {
		seeds = append(seeds, MarshalSpecInto(nil, NewSpec(inner, 0.1, false), 3, vec, nil))
	}
	ref := &DeltaRef{}
	for round := 0; round < 3; round++ {
		seeds = append(seeds, MarshalSpecInto(nil, NewSpec(I8, 0.25, true), 4, vec, ref))
	}
	seeds = append(seeds, MarshalSpecInto(nil, NewSpec(F64, 0, true), 5, vec[:8], &DeltaRef{}))
	val := make([]byte, 8)
	corrupt := [][]byte{
		append(appendHeader(nil, TopK, 1, 4), byte(F64), 10),                         // k > n
		append(appendHeader(nil, TopK, 1, 4), byte(F64), 0),                          // k = 0
		append(append(appendHeader(nil, TopK, 1, 4), byte(F64), 1, 7), val...),       // index out of range
		append(append(appendHeader(nil, TopK, 1, 4), byte(F64), 2, 1, 0), val...),    // non-monotone
		append(appendHeader(nil, TopK, 1, maxSparseLen+1), byte(F64), 1, 0),          // n over cap
		append(appendHeader(nil, Delta, 1, 4), 1, 0, 0, 0, 0, 0, 0, 0, byte(Delta)),  // delta in delta
		append(appendHeader(nil, Delta, 1, 8), 9, 0, 0, 0, 0, 0, 0, 0, byte(F64)),    // delta, no basis
		appendHeader(nil, TopK, 1, 16)[:headerSize],                                  // empty top-k body
		append(appendHeader(nil, TopK, 1, maxSparseLen), byte(I8), 0xff, 0xff, 0x7f), // huge k, tiny body
	}
	return append(seeds, corrupt...)
}

// fuzzDecodeSpec drives the spec-aware decoder with the same arbitrary
// frame: it must never panic, never accept a vector of the wrong length,
// and for delta frames never allocate a basis the header did not justify.
// The basis, when the frame wants one, is synthesized from the header so
// the tag-match path is exercised too.
func fuzzDecodeSpec(t *testing.T, b []byte) {
	var ref *DeltaRef
	if len(b) >= headerSize+deltaOverhead {
		word := binary.LittleEndian.Uint64(b[4:])
		if n := int(word & maxLen); Codec(word>>56) == Delta && n <= maxSparseLen {
			ref = &DeltaRef{Tag: binary.LittleEndian.Uint64(b[headerSize:]), Base: make([]float64, n)}
		}
	}
	_, v, err := DecodeSpec(nil, b, ref)
	if err != nil {
		return
	}
	word := binary.LittleEndian.Uint64(b[4:])
	if len(v) != int(word&maxLen) {
		t.Fatalf("accepted frame decoded %d elements, header declares %d", len(v), word&maxLen)
	}
	if v == nil {
		t.Fatal("accepted frame decoded a nil vector")
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus for the new
// frame families. Run with REGEN_FUZZ_CORPUS=1 after changing the grammar.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz seeds")
	}
	names := []string{
		"topk-f64", "topk-f32", "topk-i8", "topk-bf16",
		"delta-basis", "delta-1", "delta-2", "delta-dense",
		"topk-k-over-n", "topk-k-zero", "topk-idx-range", "topk-nonmonotone",
		"topk-n-cap", "delta-in-delta", "delta-no-basis", "topk-empty", "topk-huge-k",
	}
	seeds := sparseSeeds()
	if len(seeds) != len(names) {
		t.Fatalf("%d seeds, %d names", len(seeds), len(names))
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		if err := os.WriteFile("testdata/fuzz/FuzzUnmarshal/"+names[i], []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
