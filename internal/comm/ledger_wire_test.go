package comm

import "testing"

// The raw-byte ledger recorders behind node-mode accounting: AddUp/AddDown
// book exactly what crossed the wire (frame prefixes, message envelopes,
// handshakes), while RecordUp/RecordDown keep pricing payload element
// counts at the ledger codec for the in-process simulation. The
// end-to-end check that node totals equal counted socket bytes lives in
// internal/fl's TestNodeLedgerMatchesWireBytes; these tests pin the
// arithmetic against known frame sizes.
func TestLedgerAddRawBytes(t *testing.T) {
	l := NewLedger()
	// A 3-element f64 comm frame behind a 4-byte transport length prefix,
	// plus a 20-byte-each-way handshake — the tcp transport's real costs.
	frame := WireSizeAs(F64, 3) + 4
	const handshake = 20
	l.AddUp(1, frame+handshake)
	l.AddDown(1, handshake)
	l.AddDown(2, frame)
	if got, want := l.TotalUp(), frame+handshake; got != want {
		t.Fatalf("TotalUp = %d, want %d", got, want)
	}
	if got, want := l.TotalDown(), frame+handshake; got != want {
		t.Fatalf("TotalDown = %d, want %d", got, want)
	}
	if got := l.ClientUp(1); got != frame+handshake {
		t.Fatalf("ClientUp(1) = %d", got)
	}
	if got := l.ClientDown(2); got != frame {
		t.Fatalf("ClientDown(2) = %d", got)
	}
	tr := l.EndRound(1)
	if tr.UpBytes != frame+handshake || tr.DownBytes != frame+handshake || tr.Messages != 3 {
		t.Fatalf("round traffic = %+v", tr)
	}
	// The round reset must apply to raw-recorded traffic too.
	if tr2 := l.EndRound(2); tr2.UpBytes != 0 || tr2.DownBytes != 0 || tr2.Messages != 0 {
		t.Fatalf("round 2 traffic not reset: %+v", tr2)
	}
}

// TestLedgerAddMixesWithRecord checks codec-priced and raw-byte records
// accumulate into one coherent total (a node run may account a payload by
// codec in one layer and its framing raw in another — totals must add).
func TestLedgerAddMixesWithRecord(t *testing.T) {
	l := NewLedger()
	l.SetCodec(I8)
	l.RecordUp(0, 100) // priced: header + 8-byte scale + 100 bytes
	l.AddUp(0, 4)      // raw: a transport length prefix
	want := WireSizeAs(I8, 100) + 4
	if got := l.TotalUp(); got != want {
		t.Fatalf("mixed TotalUp = %d, want %d", got, want)
	}
	if got := l.ClientUp(0); got != want {
		t.Fatalf("mixed ClientUp = %d, want %d", got, want)
	}
	// Snapshot/Restore round-trips raw-recorded state like any other.
	snap := l.Snapshot()
	l2 := NewLedger()
	l2.Restore(snap)
	if got := l2.TotalUp(); got != want {
		t.Fatalf("restored TotalUp = %d, want %d", got, want)
	}
}
