//go:build race

package comm

// The race-enabled runtime deliberately drops a fraction of sync.Pool puts,
// so pool-backed paths cannot assert strict zero allocations under -race.
const raceEnabled = true
