package comm

import (
	"fmt"
	"math"
)

// This file is the frame-selection layer above the raw codecs: a Spec
// describes how one vector crosses the wire (dense element codec, optional
// top-k sparsification, optional delta framing against the last committed
// vector), packs into the 32-bit handshake word the FEDWIRE hello carries,
// and a Selector resolves a per-connection Spec into a per-vector one by
// message kind and size — prototype and soft-prediction payloads stay
// lossless while weight uploads sparsify.

// numValueCodecs bounds the dense element codecs (F64..BF16) — the codecs a
// payload element can be stored at, as opposed to the structural frame
// families (TopK, Delta) that wrap them.
const numValueCodecs = 4

// Dense reports whether c is a dense element codec, valid as the inner
// value encoding of a sparse or delta frame.
func (c Codec) Dense() bool { return c < numValueCodecs }

// fracUnit is the fixed-point denominator top-k fractions are carried at in
// the packed handshake word (16 bits), and the grid NewSpec canonicalizes
// to so both ends of a connection compute identical k for every length.
const fracUnit = 1 << 16

// Spec describes how a vector is framed on the wire. The zero value is
// plain dense float64 — the legacy format byte for byte.
type Spec struct {
	// Value is the dense element codec: the storage of dense payloads,
	// top-k kept values and delta residuals alike.
	Value Codec
	// Frac, in (0, 1), keeps only the ceil(Frac·n) largest-|v| elements in
	// a TOPK frame. Outside (0, 1) the payload stays dense.
	Frac float64
	// Delta frames payloads as the difference against the last vector the
	// receiver decoded on the same slot (DeltaRef), falling back to a
	// dense or top-k basis frame whenever no basis is negotiated.
	Delta bool
}

// NewSpec builds a canonical Spec: frac snaps to the 1/65536 grid the
// handshake word carries (so Pack∘Unpack is the identity and both ends
// derive the same k), and fractions outside (0, 1) select dense framing.
func NewSpec(value Codec, frac float64, delta bool) Spec {
	s := Spec{Value: value, Delta: delta}
	if f := packFrac(frac); f > 0 {
		s.Frac = float64(f) / fracUnit
	}
	return s
}

// packFrac quantizes a fraction to the 16-bit handshake grid: 0 for dense,
// otherwise a value in [1, fracUnit-1].
func packFrac(frac float64) uint32 {
	if !(frac > 0) || frac >= 1 {
		return 0
	}
	f := uint32(math.Round(frac * fracUnit))
	if f < 1 {
		f = 1
	}
	if f > fracUnit-1 {
		f = fracUnit - 1
	}
	return f
}

// Sparse reports whether the spec frames payloads as TOPK.
func (s Spec) Sparse() bool { return s.Frac > 0 && s.Frac < 1 }

// Plain reports whether the spec is pure dense framing — the legacy wire
// path, with WireSizeAs-priced fixed-size frames.
func (s Spec) Plain() bool { return !s.Sparse() && !s.Delta }

// Valid reports whether the spec is canonical and encodable in a handshake
// word: a dense value codec and an on-grid fraction.
func (s Spec) Valid() bool {
	return s.Value.Dense() && s == NewSpec(s.Value, s.Frac, s.Delta)
}

// String names the spec the way the fedsim/fedserver flags spell it.
func (s Spec) String() string {
	out := s.Value.String()
	if s.Sparse() {
		out = fmt.Sprintf("topk%.4g/%s", s.Frac, s.Value)
	}
	if s.Delta {
		out += "+delta"
	}
	return out
}

// Pack encodes the spec into the 32-bit slot the FEDWIRE hello reserves
// for the codec: bits 0–7 the value codec, bit 8 the delta flag, bits
// 16–31 the top-k fraction in 1/65536 units. A plain dense spec packs to
// the bare codec value, so dense handshakes are unchanged from FEDWIRE3.
func (s Spec) Pack() uint32 {
	w := uint32(s.Value) & 0xff
	if s.Delta {
		w |= 1 << 8
	}
	w |= packFrac(s.Frac) << 16
	return w
}

// UnpackSpec decodes a handshake word, rejecting unknown codecs and
// reserved bits so a malformed hello fails the handshake instead of
// negotiating garbage.
func UnpackSpec(w uint32) (Spec, error) {
	value := Codec(w & 0xff)
	if !value.Dense() {
		return Spec{}, fmt.Errorf("comm: handshake word %#x carries unknown value codec %d", w, w&0xff)
	}
	if w&0xfe00 != 0 {
		return Spec{}, fmt.Errorf("comm: handshake word %#x sets reserved bits", w)
	}
	s := Spec{Value: value, Delta: w&(1<<8) != 0, Frac: float64(w>>16) / fracUnit}
	return s, nil
}

// ParseSpec maps the -codec/-topk/-delta flag triple to a canonical Spec.
// The codec name "topk" is shorthand for float32 values at the default 5%
// density; -topk composes with any dense codec name.
func ParseSpec(codec string, topk float64, delta bool) (Spec, error) {
	if topk < 0 || topk >= 1 {
		return Spec{}, fmt.Errorf("comm: top-k fraction %v outside (0, 1) (0 = dense)", topk)
	}
	if codec == "topk" {
		if topk == 0 {
			topk = 0.05
		}
		return NewSpec(F32, topk, delta), nil
	}
	value, err := ParseCodec(codec)
	if err != nil {
		return Spec{}, err
	}
	return NewSpec(value, topk, delta), nil
}

// DeltaRef is one slot's delta-framing basis: the last vector both ends
// agree the receiver decoded, and a tag counting the frames that built it.
// Tag zero means no basis — the next frame establishes one densely (or as
// a top-k basis frame). Every frame on a tracked slot advances the ref on
// both ends symmetrically; a reconnect or churn discards the refs with the
// connection, which is exactly the dense fallback.
type DeltaRef struct {
	Tag  uint64
	Base []float64
}

// DefaultMinSparse is the smallest vector Selector considers for sparse or
// delta framing: below it, index overhead eats the savings and structural
// payloads (per-class prototype rows) must stay exact.
const DefaultMinSparse = 64

// Selector resolves a connection-level Spec into a per-vector Spec by
// message kind and payload size. The zero value of the kind predicates
// admits every kind; fl installs predicates that restrict sparsification
// and delta framing to weight-upload messages.
type Selector struct {
	Spec Spec
	// MinSparse is the smallest eligible vector (0 = DefaultMinSparse).
	MinSparse int
	// SparseKinds and DeltaKinds gate top-k and delta framing per message
	// kind (nil = all kinds).
	SparseKinds func(kind uint32) bool
	DeltaKinds  func(kind uint32) bool
}

// For returns the spec one vector of n elements crosses the wire under.
func (s *Selector) For(kind uint32, n int) Spec {
	out := Spec{Value: s.Spec.Value}
	min := s.MinSparse
	if min == 0 {
		min = DefaultMinSparse
	}
	if n < min {
		return out
	}
	if s.Spec.Sparse() && (s.SparseKinds == nil || s.SparseKinds(kind)) {
		out.Frac = s.Spec.Frac
	}
	if s.Spec.Delta && (s.DeltaKinds == nil || s.DeltaKinds(kind)) {
		out.Delta = true
	}
	return out
}
