package comm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	payload := []float64{1.5, -2.25, 0, 1e300}
	b := Marshal(7, payload)
	kind, got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != 7 {
		t.Fatalf("kind %d", kind)
	}
	if len(got) != len(payload) {
		t.Fatalf("len %d", len(got))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], payload[i])
		}
	}
}

// Property: round trip preserves arbitrary payloads and the wire size
// matches WireSize exactly.
func TestMarshalProperty(t *testing.T) {
	f := func(kind uint32, seed int64, nRaw uint16) bool {
		n := int(nRaw % 512)
		rng := rand.New(rand.NewSource(seed))
		payload := make([]float64, n)
		for i := range payload {
			payload[i] = rng.NormFloat64()
		}
		b := Marshal(kind, payload)
		if int64(len(b)) != WireSize(n) {
			return false
		}
		k2, p2, err := Unmarshal(b)
		if err != nil || k2 != kind || len(p2) != n {
			return false
		}
		for i := range payload {
			if p2[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("short header must error")
	}
	b := Marshal(1, []float64{1, 2, 3})
	if _, _, err := Unmarshal(b[:len(b)-4]); err == nil {
		t.Fatal("truncated payload must error")
	}
	if _, _, err := Unmarshal(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.RecordUp(0, 100)
	l.RecordUp(1, 50)
	l.RecordDown(0, 10)
	tr := l.EndRound(1)
	if tr.Round != 1 || tr.Messages != 3 {
		t.Fatalf("round traffic %+v", tr)
	}
	if tr.UpBytes != WireSize(100)+WireSize(50) {
		t.Fatalf("up bytes %d", tr.UpBytes)
	}
	if tr.DownBytes != WireSize(10) {
		t.Fatalf("down bytes %d", tr.DownBytes)
	}
	// Second round starts clean.
	l.RecordUp(0, 1)
	tr2 := l.EndRound(2)
	if tr2.UpBytes != WireSize(1) {
		t.Fatalf("round 2 up bytes %d", tr2.UpBytes)
	}
	if got := len(l.Rounds()); got != 2 {
		t.Fatalf("rounds %d", got)
	}
	if l.ClientUp(0) != WireSize(100)+WireSize(1) {
		t.Fatalf("client 0 up %d", l.ClientUp(0))
	}
	if l.TotalUp() != WireSize(100)+WireSize(50)+WireSize(1) {
		t.Fatalf("total up %d", l.TotalUp())
	}
	if l.TotalDown() != WireSize(10) || l.ClientDown(0) != WireSize(10) {
		t.Fatal("down accounting wrong")
	}
}

func TestLedgerConcurrentSafety(t *testing.T) {
	l := NewLedger()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(id int) {
			for i := 0; i < 100; i++ {
				l.RecordUp(id, 10)
				l.RecordDown(id, 5)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	tr := l.EndRound(1)
	if tr.Messages != 1600 {
		t.Fatalf("messages %d, want 1600", tr.Messages)
	}
	if tr.UpBytes != 800*WireSize(10) {
		t.Fatalf("up bytes %d", tr.UpBytes)
	}
}

func TestCopyTo(t *testing.T) {
	var buf bytes.Buffer
	n, err := CopyTo(&buf, 3, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != WireSize(2) || int64(buf.Len()) != n {
		t.Fatalf("wrote %d bytes", n)
	}
	kind, payload, err := Unmarshal(buf.Bytes())
	if err != nil || kind != 3 || len(payload) != 2 {
		t.Fatalf("round trip through writer failed: %v", err)
	}
}
