package comm

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	payload := []float64{1.5, -2.25, 0, 1e300}
	b := Marshal(7, payload)
	kind, got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != 7 {
		t.Fatalf("kind %d", kind)
	}
	if len(got) != len(payload) {
		t.Fatalf("len %d", len(got))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], payload[i])
		}
	}
}

// Property: round trip preserves arbitrary payloads and the wire size
// matches WireSize exactly.
func TestMarshalProperty(t *testing.T) {
	f := func(kind uint32, seed int64, nRaw uint16) bool {
		n := int(nRaw % 512)
		rng := rand.New(rand.NewSource(seed))
		payload := make([]float64, n)
		for i := range payload {
			payload[i] = rng.NormFloat64()
		}
		b := Marshal(kind, payload)
		if int64(len(b)) != WireSize(n) {
			return false
		}
		k2, p2, err := Unmarshal(b)
		if err != nil || k2 != kind || len(p2) != n {
			return false
		}
		for i := range payload {
			if p2[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("short header must error")
	}
	b := Marshal(1, []float64{1, 2, 3})
	if _, _, err := Unmarshal(b[:len(b)-4]); err == nil {
		t.Fatal("truncated payload must error")
	}
	if _, _, err := Unmarshal(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.RecordUp(0, 100)
	l.RecordUp(1, 50)
	l.RecordDown(0, 10)
	tr := l.EndRound(1)
	if tr.Round != 1 || tr.Messages != 3 {
		t.Fatalf("round traffic %+v", tr)
	}
	if tr.UpBytes != WireSize(100)+WireSize(50) {
		t.Fatalf("up bytes %d", tr.UpBytes)
	}
	if tr.DownBytes != WireSize(10) {
		t.Fatalf("down bytes %d", tr.DownBytes)
	}
	// Second round starts clean.
	l.RecordUp(0, 1)
	tr2 := l.EndRound(2)
	if tr2.UpBytes != WireSize(1) {
		t.Fatalf("round 2 up bytes %d", tr2.UpBytes)
	}
	if got := len(l.Rounds()); got != 2 {
		t.Fatalf("rounds %d", got)
	}
	if l.ClientUp(0) != WireSize(100)+WireSize(1) {
		t.Fatalf("client 0 up %d", l.ClientUp(0))
	}
	if l.TotalUp() != WireSize(100)+WireSize(50)+WireSize(1) {
		t.Fatalf("total up %d", l.TotalUp())
	}
	if l.TotalDown() != WireSize(10) || l.ClientDown(0) != WireSize(10) {
		t.Fatal("down accounting wrong")
	}
}

func TestLedgerConcurrentSafety(t *testing.T) {
	l := NewLedger()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(id int) {
			for i := 0; i < 100; i++ {
				l.RecordUp(id, 10)
				l.RecordDown(id, 5)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	tr := l.EndRound(1)
	if tr.Messages != 1600 {
		t.Fatalf("messages %d, want 1600", tr.Messages)
	}
	if tr.UpBytes != 800*WireSize(10) {
		t.Fatalf("up bytes %d", tr.UpBytes)
	}
}

// Quantized frames must carry their codec, cost the advertised bytes, and
// dequantize within the codec's error bound.
func TestQuantizedCodecs(t *testing.T) {
	payload := []float64{0, 1.5, -2.25, 0.015625, -127, 126.5, 3.0000001}
	for _, c := range []Codec{F64, F32, I8, BF16} {
		b := MarshalAs(c, 9, payload)
		if int64(len(b)) != WireSizeAs(c, len(payload)) {
			t.Fatalf("%s frame is %d bytes, want %d", c, len(b), WireSizeAs(c, len(payload)))
		}
		gotC, kind, got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if gotC != c || kind != 9 || len(got) != len(payload) {
			t.Fatalf("%s decoded codec %s kind %d len %d", c, gotC, kind, len(got))
		}
		// Error bound: f64 exact, f32/bf16 relative rounding, i8 half a step.
		var maxAbs float64
		for _, v := range payload {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		for i, v := range payload {
			var tol float64
			switch c {
			case F32:
				tol = math.Abs(v) * 1e-7
			case BF16:
				tol = math.Abs(v) / 256
			case I8:
				tol = maxAbs / 127 / 2
			}
			if math.Abs(got[i]-v) > tol {
				t.Fatalf("%s payload[%d] = %v, want %v ± %g", c, i, got[i], v, tol)
			}
		}
	}
}

// The legacy format and the F64 codec must be byte-identical so seed byte
// counts and any stored frames stay valid.
func TestF64MatchesLegacyLayout(t *testing.T) {
	payload := []float64{1, -2, 3.5}
	b := Marshal(7, payload)
	if int64(len(b)) != WireSize(3) {
		t.Fatalf("frame %d bytes, want %d", len(b), WireSize(3))
	}
	// Header: kind u32 LE, then count u64 LE with a zero codec byte.
	want := []byte{7, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0}
	for i, v := range want {
		if b[i] != v {
			t.Fatalf("header byte %d = %#x, want %#x", i, b[i], v)
		}
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(b[12:])); got != 1 {
		t.Fatalf("first element %v", got)
	}
}

// Round-tripping through RoundTripInPlace must agree exactly with what a
// receiver of a marshalled frame would decode.
func TestRoundTripInPlaceMatchesWire(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []Codec{F64, F32, I8, BF16} {
		payload := make([]float64, 64)
		for i := range payload {
			payload[i] = rng.NormFloat64() * 10
		}
		_, _, wire, err := Decode(MarshalAs(c, 1, payload))
		if err != nil {
			t.Fatal(err)
		}
		RoundTripInPlace(c, payload)
		for i := range payload {
			if payload[i] != wire[i] {
				t.Fatalf("%s elem %d: in-place %v vs wire %v", c, i, payload[i], wire[i])
			}
		}
	}
}

func TestI8CompressionRatio(t *testing.T) {
	n := 330 // classifier payload of the Small scale: 32·10 + 10
	ratio := float64(WireSizeAs(F64, n)) / float64(WireSizeAs(I8, n))
	if ratio < 7 {
		t.Fatalf("int8 compresses %d floats only %.2fx, want >= 7x", n, ratio)
	}
}

// A non-finite element must not poison the rest of an int8 payload: the
// scale comes from the finite elements, NaN encodes as 0 and ±Inf saturate.
func TestI8NonFiniteSafety(t *testing.T) {
	payload := []float64{1, -2, math.Inf(1), math.NaN(), math.Inf(-1), 0.5}
	_, _, got, err := Decode(MarshalAs(I8, 1, payload))
	if err != nil {
		t.Fatal(err)
	}
	scale := 2.0 / 127
	want := []float64{1, -2, 127 * scale, 0, -127 * scale, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > scale/2+1e-12 {
			t.Fatalf("elem %d = %v, want ~%v", i, got[i], want[i])
		}
		if math.IsNaN(got[i]) {
			t.Fatalf("elem %d decoded as NaN", i)
		}
	}
	inPlace := append([]float64(nil), payload...)
	RoundTripInPlace(I8, inPlace)
	for i, v := range inPlace {
		if math.IsNaN(v) {
			t.Fatalf("RoundTripInPlace left NaN at %d", i)
		}
		if v != got[i] {
			t.Fatalf("in-place %v differs from wire %v at %d", v, got[i], i)
		}
	}
}

func TestDecodeRejectsCorruptQuantized(t *testing.T) {
	b := MarshalAs(I8, 2, []float64{1, -1, 0.5})
	if _, _, _, err := Decode(b[:len(b)-1]); err == nil {
		t.Fatal("truncated int8 payload must error")
	}
	// Unknown codec byte.
	bad := append([]byte(nil), b...)
	bad[11] = 0x7f
	if _, _, _, err := Decode(bad); err == nil {
		t.Fatal("unknown codec must error")
	}
	// Non-finite scale.
	nan := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(nan[12:], math.Float64bits(math.NaN()))
	if _, _, _, err := Decode(nan); err == nil {
		t.Fatal("NaN scale must error")
	}
}

func TestLedgerCodecAccounting(t *testing.T) {
	l := NewLedger()
	l.SetCodec(I8)
	if l.Codec() != I8 {
		t.Fatal("codec not set")
	}
	l.RecordUp(0, 100)
	l.RecordDown(0, 40)
	tr := l.EndRound(1)
	if tr.UpBytes != WireSizeAs(I8, 100) || tr.DownBytes != WireSizeAs(I8, 40) {
		t.Fatalf("codec accounting %+v", tr)
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"f64": F64, "f32": F32, "i8": I8, "": F64} {
		got, err := ParseCodec(s)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCodec("f16"); err == nil {
		t.Fatal("unknown codec string must error")
	}
}
