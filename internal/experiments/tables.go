package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/nn"
)

// Cell is one mean±std accuracy entry.
type Cell struct {
	Mean, Std float64
}

// String formats a cell the way the paper's tables do.
func (c Cell) String() string { return fmt.Sprintf("%.4f ± %.4f", c.Mean, c.Std) }

// TableResult is a generic methods × conditions accuracy table.
type TableResult struct {
	Title      string
	Conditions []string        // column headers
	Methods    []string        // row order
	Cells      map[string]Cell // key: method + "|" + condition
}

// Get returns the cell for a method/condition pair.
func (t *TableResult) Get(method, condition string) Cell {
	return t.Cells[method+"|"+condition]
}

func (t *TableResult) set(method, condition string, c Cell) {
	if t.Cells == nil {
		t.Cells = make(map[string]Cell)
	}
	t.Cells[method+"|"+condition] = c
}

// Markdown renders the table.
func (t *TableResult) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| Method |")
	for _, c := range t.Conditions {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Conditions {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, "| %s |", m)
		for _, c := range t.Conditions {
			fmt.Fprintf(&b, " %s |", t.Get(m, c))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 reproduces the paper's Table 2: average personalized test accuracy
// of heterogeneous 4-architecture fleets under Dir(0.5) and skewed
// partitions on the three datasets. FedProto runs on its own milder
// heterogeneity (CNN2 widths), exactly as the paper does.
func Table2(s Scale, datasets []DatasetName, kinds []data.PartitionKind) (*TableResult, error) {
	t := &TableResult{Title: "Table 2 — heterogeneous personalized FL", Methods: []string{
		MethodBaseline, MethodFedProto, MethodKTpFL, MethodProposed,
	}}
	for _, name := range datasets {
		for _, kind := range kinds {
			cond := fmt.Sprintf("%s %s", name, kind)
			t.Conditions = append(t.Conditions, cond)
			hetFactory, _, err := NewHeterogeneousFleet(name, kind, s.Clients, s)
			if err != nil {
				return nil, err
			}
			protoFactory, _, err := NewProtoFleet(name, kind, s.Clients, s)
			if err != nil {
				return nil, err
			}
			for _, m := range t.Methods {
				factory := hetFactory
				if m == MethodFedProto {
					factory = protoFactory
				}
				hist, err := Run(m, name, factory, s, 1.0)
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s: %w", m, cond, err)
				}
				fin := Final(hist)
				t.set(m, cond, Cell{fin.MeanAcc, fin.StdAcc})
			}
		}
	}
	return t, nil
}

// Table3 reproduces the paper's Table 3: homogeneous (MiniResNet) fleets at
// the 20-client full-participation and 100-client 0.1-sampling settings
// (scaled to Scale.Clients and Scale.LargeClients with rate 0.1), comparing
// FedAvg, FedProx, KT-pFL(±weight) and FedClassAvg(±weight).
func Table3(s Scale, datasets []DatasetName) (*TableResult, error) {
	t := &TableResult{Title: "Table 3 — homogeneous FL", Methods: []string{
		MethodFedAvg, MethodFedProx, MethodKTpFL, MethodKTpFLWeight,
		MethodProposed, MethodProposedWeight,
	}}
	type setting struct {
		label string
		k     int
		rate  float64
	}
	settings := []setting{
		{fmt.Sprintf("%d clients", s.Clients), s.Clients, 1.0},
		{fmt.Sprintf("%d clients (rate 0.1)", s.LargeClients), s.LargeClients, 0.1},
	}
	for _, name := range datasets {
		for _, st := range settings {
			cond := fmt.Sprintf("%s %s", name, st.label)
			t.Conditions = append(t.Conditions, cond)
			factory, _, err := NewHomogeneousFleet(name, data.Dirichlet, st.k, s)
			if err != nil {
				return nil, err
			}
			for _, m := range t.Methods {
				hist, err := Run(m, name, factory, s, st.rate)
				if err != nil {
					return nil, fmt.Errorf("table3 %s/%s: %w", m, cond, err)
				}
				fin := Final(hist)
				t.set(m, cond, Cell{fin.MeanAcc, fin.StdAcc})
			}
		}
	}
	return t, nil
}

// Table4 reproduces the ablation study: classifier averaging alone (CA),
// plus proximal regularization (PR) and/or contrastive loss (CL), on the
// heterogeneous Dir(0.5) setting.
func Table4(s Scale, datasets []DatasetName) (*TableResult, error) {
	t := &TableResult{Title: "Table 4 — ablation (Dir(0.5))", Methods: []string{
		MethodAblationCA, MethodAblationCAPR, MethodAblationCACL, MethodAblationCAPRCL,
	}}
	for _, name := range datasets {
		cond := string(name)
		t.Conditions = append(t.Conditions, cond)
		factory, _, err := NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
		if err != nil {
			return nil, err
		}
		for _, m := range t.Methods {
			hist, err := Run(m, name, factory, s, 1.0)
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", m, cond, err)
			}
			fin := Final(hist)
			t.set(m, cond, Cell{fin.MeanAcc, fin.StdAcc})
		}
	}
	return t, nil
}

// CommCostRow is one Table 5 entry: per-round, per-client communication.
type CommCostRow struct {
	Method        string
	BytesPerRound int64
	Detail        string
}

// Table5 reproduces the communication-cost comparison: full model sharing
// (MiniResNet weights), KT-pFL (public data once + soft predictions per
// round) and FedClassAvg (classifier only). Sizes are measured from the
// actual serialized payloads of this implementation, and the paper-scale
// equivalents (featDim 512) are reported alongside.
func Table5(s Scale, name DatasetName) ([]CommCostRow, error) {
	spec := Spec(name, s)
	cfg := models.Config{
		Arch: models.ArchResNet, InC: spec.C, InH: spec.H, InW: spec.W,
		FeatDim: s.FeatDim, NumClasses: spec.NumClasses,
	}
	factory, ds, err := NewHomogeneousFleet(name, data.Dirichlet, 2, s)
	if err != nil {
		return nil, err
	}
	clients := factory()
	modelFloats := nn.NumParams(clients[0].Model.Params())
	classifierFloats := nn.NumParams(clients[0].Model.ClassifierParams())
	publicFloats := s.PublicSize * ds.InputDim()
	softFloats := s.PublicSize * ds.NumClasses

	paperClassifier := (512*ds.NumClasses + ds.NumClasses) * 8

	rows := []CommCostRow{
		{
			Method:        "Model sharing (MiniResNet)",
			BytesPerRound: comm.WireSize(modelFloats),
			Detail:        fmt.Sprintf("%d weights up per round (cfg %v)", modelFloats, cfg.Arch),
		},
		{
			Method:        "KT-pFL",
			BytesPerRound: comm.WireSize(softFloats),
			Detail: fmt.Sprintf("%d soft predictions per round; public set broadcast once = %d bytes",
				softFloats, comm.WireSize(publicFloats)),
		},
		{
			Method:        "Proposed (FedClassAvg)",
			BytesPerRound: comm.WireSize(classifierFloats),
			Detail: fmt.Sprintf("%d classifier weights per round; at paper scale (featDim 512) ≈ %d bytes",
				classifierFloats, paperClassifier),
		},
	}
	return rows, nil
}

// Table5Markdown renders the rows.
func Table5Markdown(rows []CommCostRow) string {
	var b strings.Builder
	b.WriteString("### Table 5 — communication cost per client per round\n\n")
	b.WriteString("| Method | Bytes/round | Detail |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %s |\n", r.Method, r.BytesPerRound, r.Detail)
	}
	return b.String()
}

// Table1Markdown renders the hyperparameter table (paper Table 1 plus the
// scaled values in use).
func Table1Markdown(s Scale) string {
	var b strings.Builder
	b.WriteString("### Table 1 — local update hyperparameters\n\n")
	b.WriteString("| Dataset | Paper LR | Paper batch | Paper ρ | Paper epochs | Scaled LR (Adam) | Batch | ρ | Epochs |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, name := range AllDatasets {
		h := HyperparamsFor(name, s)
		fmt.Fprintf(&b, "| %s | %g | %d | %g | %d | %g | %d | %g | %d |\n",
			name, h.PaperLR, h.PaperBatch, h.PaperRho, h.PaperEpochs, h.LR, h.Batch, h.Rho, h.Epochs)
	}
	return b.String()
}

// MeasuredComparison summarizes whether the reproduction preserves the
// paper's ordering for a table: it checks that `better` beats `worse` in
// every condition and reports the exceptions.
func MeasuredComparison(t *TableResult, better, worse string) (wins int, total int, exceptions []string) {
	for _, cond := range t.Conditions {
		total++
		if t.Get(better, cond).Mean >= t.Get(worse, cond).Mean {
			wins++
		} else {
			exceptions = append(exceptions, cond)
		}
	}
	sort.Strings(exceptions)
	return wins, total, exceptions
}

// CurveSeries is a labeled learning curve for the figure outputs.
type CurveSeries struct {
	Label  string
	Points []fl.RoundMetrics
}

// CSV renders learning curves as epochs,series1,series2,... rows aligned on
// evaluation index.
func CSV(series []CurveSeries) string {
	var b strings.Builder
	b.WriteString("local_epochs")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteString("\n")
	maxLen := 0
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		epochs := 0
		for _, s := range series {
			if i < len(s.Points) {
				epochs = s.Points[i].LocalEpochs
				break
			}
		}
		fmt.Fprintf(&b, "%d", epochs)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%.4f", s.Points[i].MeanAcc)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
