package experiments

import (
	"testing"

	"repro/internal/data"
)

// TestFedClassAvgLearns is the end-to-end smoke test: a tiny heterogeneous
// fleet must beat chance and improve over its initial accuracy.
func TestFedClassAvgLearns(t *testing.T) {
	s := Tiny()
	s.Rounds = 12
	s.TrainPerClass = 24
	s.TestPerClass = 16
	factory, ds, err := NewHeterogeneousFleet(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Run(MethodProposed, Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist[0], Final(hist)
	chance := 1.0 / float64(ds.NumClasses)
	t.Logf("acc: round1 %.3f → final %.3f (chance %.3f)", first.MeanAcc, last.MeanAcc, chance)
	if last.MeanAcc <= chance+0.05 {
		t.Fatalf("final accuracy %.3f did not beat chance %.3f", last.MeanAcc, chance)
	}
	if last.MeanAcc < first.MeanAcc-0.05 {
		t.Fatalf("accuracy regressed: %.3f → %.3f", first.MeanAcc, last.MeanAcc)
	}
}

// TestAllMethodsRun exercises every method end to end on minimal configs.
func TestAllMethodsRun(t *testing.T) {
	s := Tiny()
	s.Rounds = 2
	het, _, err := NewHeterogeneousFleet(Fashion, data.Skewed, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	hom, _, err := NewHomogeneousFleet(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	proto, _, err := NewProtoFleet(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		method  string
		factory ClientFactory
	}{
		{MethodBaseline, het},
		{MethodFedProto, proto},
		{MethodKTpFL, het},
		{MethodProposed, het},
		{MethodFedAvg, hom},
		{MethodFedProx, hom},
		{MethodKTpFLWeight, hom},
		{MethodProposedWeight, hom},
		{MethodAblationCA, het},
		{MethodAblationCAPR, het},
		{MethodAblationCACL, het},
		{MethodAblationCAPRCL, het},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			hist, err := Run(tc.method, Fashion, tc.factory, s, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) == 0 {
				t.Fatal("no metrics recorded")
			}
			fin := Final(hist)
			if fin.MeanAcc < 0 || fin.MeanAcc > 1 {
				t.Fatalf("accuracy out of range: %v", fin.MeanAcc)
			}
		})
	}
}
