package experiments

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func TestSpecPresets(t *testing.T) {
	s := Tiny()
	cases := map[DatasetName]struct{ c, classes int }{
		CIFAR10: {3, 10},
		Fashion: {1, 10},
		EMNIST:  {1, 26},
	}
	for name, want := range cases {
		spec := Spec(name, s)
		if spec.C != want.c || spec.NumClasses != want.classes {
			t.Fatalf("%s spec: C=%d classes=%d", name, spec.C, spec.NumClasses)
		}
	}
}

func TestHyperparamsMatchPaperTable1(t *testing.T) {
	s := Small()
	h := HyperparamsFor(CIFAR10, s)
	if h.PaperLR != 0.0001 || h.PaperRho != 0.1 || h.PaperBatch != 64 || h.PaperEpochs != 1 {
		t.Fatalf("CIFAR paper hyperparams wrong: %+v", h)
	}
	hf := HyperparamsFor(Fashion, s)
	if hf.PaperLR != 0.0006 || hf.PaperRho != 0.4662 {
		t.Fatalf("Fashion paper hyperparams wrong: %+v", hf)
	}
	he := HyperparamsFor(EMNIST, s)
	if he.PaperLR != 0.0005 || he.PaperRho != 0.1 {
		t.Fatalf("EMNIST paper hyperparams wrong: %+v", he)
	}
}

func TestFleetFactoriesProduceIdenticalFleets(t *testing.T) {
	s := Tiny()
	factory, _, err := NewHeterogeneousFleet(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	a, b := factory(), factory()
	if len(a) != s.Clients {
		t.Fatalf("fleet size %d", len(a))
	}
	for i := range a {
		if a[i].Model.Name != b[i].Model.Name {
			t.Fatal("factories must give identical architectures")
		}
		fa := a[i].Model.Params()
		fb := b[i].Model.Params()
		for p := range fa {
			for j := range fa[p].Value.Data {
				if fa[p].Value.Data[j] != fb[p].Value.Data[j] {
					t.Fatal("factories must give identical initial weights")
				}
			}
		}
	}
	// Four architectures must actually be distributed.
	names := map[string]bool{}
	for _, c := range a {
		names[c.Model.Name] = true
	}
	if len(names) != 4 {
		t.Fatalf("fleet has %d distinct architectures, want 4", len(names))
	}
}

func TestUnknownMethodErrors(t *testing.T) {
	if _, err := NewAlgorithm("NoSuchMethod", Fashion, Tiny()); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestTable4AtTinyScale(t *testing.T) {
	s := Tiny()
	tbl, err := Table4(s, []DatasetName{Fashion})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Conditions) != 1 || len(tbl.Methods) != 4 {
		t.Fatalf("table shape %dx%d", len(tbl.Methods), len(tbl.Conditions))
	}
	md := tbl.Markdown()
	for _, m := range []string{"CA", "CA+PR", "CA+CL", "CA+PR+CL"} {
		if !strings.Contains(md, m) {
			t.Fatalf("markdown missing row %q:\n%s", m, md)
		}
	}
}

func TestTable5Ordering(t *testing.T) {
	rows, err := Table5(Small(), CIFAR10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's headline: model sharing ≫ KT-pFL ≫ FedClassAvg.
	if !(rows[0].BytesPerRound > rows[1].BytesPerRound && rows[1].BytesPerRound > rows[2].BytesPerRound) {
		t.Fatalf("communication ordering violated: %d, %d, %d",
			rows[0].BytesPerRound, rows[1].BytesPerRound, rows[2].BytesPerRound)
	}
}

func TestFigure23Histograms(t *testing.T) {
	s := Tiny()
	hist, ds, err := Figure23(CIFAR10, data.Skewed, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != s.Clients || len(hist[0]) != ds.NumClasses {
		t.Fatalf("histogram shape %dx%d", len(hist), len(hist[0]))
	}
	md := HistogramMarkdown(hist, "test")
	if !strings.Contains(md, "| 0 |") {
		t.Fatal("markdown missing client rows")
	}
}

func TestCurveCSV(t *testing.T) {
	s := Tiny()
	s.Rounds = 2
	series, err := Figure45(Fashion, data.Dirichlet, s)
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(series)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+s.Rounds {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+s.Rounds)
	}
	if !strings.HasPrefix(lines[0], "local_epochs,") {
		t.Fatalf("CSV header: %q", lines[0])
	}
}

func TestFigure9SpearmanMeaningful(t *testing.T) {
	s := Tiny()
	s.Rounds = 4
	res, err := Figure9(Fashion, s)
	if err != nil {
		t.Skip("no shared probe at tiny scale:", err)
	}
	if res.MeanSpearman < -1 || res.MeanSpearman > 1 {
		t.Fatalf("Spearman out of range: %v", res.MeanSpearman)
	}
	if len(res.Attributions) != len(res.Clients) {
		t.Fatal("attribution count mismatch")
	}
}

func TestMeasuredComparison(t *testing.T) {
	tbl := &TableResult{Conditions: []string{"a", "b"}}
	tbl.set("X", "a", Cell{0.9, 0})
	tbl.set("Y", "a", Cell{0.5, 0})
	tbl.set("X", "b", Cell{0.4, 0})
	tbl.set("Y", "b", Cell{0.5, 0})
	wins, total, exceptions := MeasuredComparison(tbl, "X", "Y")
	if wins != 1 || total != 2 || len(exceptions) != 1 || exceptions[0] != "b" {
		t.Fatalf("comparison: %d/%d exceptions %v", wins, total, exceptions)
	}
}
