package experiments

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/fl"
	"repro/internal/transport"
)

// Node-mode experiment plumbing: the helpers fedserver, fedclient and
// `fedsim -transport tcp` share to run a method as real server/client
// nodes over a transport, configured for parity with the in-process sync
// run at the same scale and seed.

// WireAlgorithmFor instantiates a named method as a wire-split algorithm.
// Every method of the evaluation supports node mode; the error covers
// unknown names and any future algorithm that does not split.
func WireAlgorithmFor(method string, name DatasetName, s Scale) (fl.WireAlgorithm, error) {
	algo, err := NewAlgorithm(method, name, s)
	if err != nil {
		return nil, err
	}
	wa, ok := algo.(fl.WireAlgorithm)
	if !ok {
		return nil, fmt.Errorf("experiments: %s does not support node mode (implement fl.WireAlgorithm)", algo.Name())
	}
	return wa, nil
}

// NodeConfigFor builds the server-node configuration whose schedule
// matches RunScheduled's simulation at the same scale: the cohort sampler
// is seeded with the simulation seed (s.Seed+7), so a node federation
// visits exactly the cohorts the in-process sync run visits.
func NodeConfigFor(s Scale, rate float64, codec comm.Codec, clients int) fl.NodeConfig {
	return fl.NodeConfig{
		Clients:    clients,
		Rounds:     s.Rounds,
		SampleRate: rate,
		BatchSize:  s.BatchSize,
		Seed:       s.Seed + 7,
		Codec:      codec,
		DType:      s.DType,
	}
}

// ApplyNodeSched copies the scheduler knobs that exist on the wire —
// policy, staleness bound, decay, quorum — onto a node config. Virtual-
// clock-only knobs (costs, churn injection, mix rate) have no node-mode
// meaning and are ignored.
func ApplyNodeSched(cfg *fl.NodeConfig, sched fl.SchedulerConfig) {
	cfg.Sched = sched.Kind
	cfg.MaxStaleness = sched.MaxStaleness
	cfg.Decay = sched.Decay
	cfg.Quorum = sched.Quorum
}

// ServeNode runs the server half of a method on an already-bound listener
// and returns the metrics history (fedserver's core). Options mutate the
// node config before the server starts (scheduler, failure discipline,
// checkpointing).
func ServeNode(ctx context.Context, method string, name DatasetName, s Scale, rate float64, codec comm.Codec, clients int, ln transport.Listener, opts ...func(*fl.NodeConfig)) (*fl.ServerNode, []fl.RoundMetrics, error) {
	algo, err := WireAlgorithmFor(method, name, s)
	if err != nil {
		return nil, nil, err
	}
	cfg := NodeConfigFor(s, rate, codec, clients)
	for _, opt := range opts {
		opt(&cfg)
	}
	srv := fl.NewServerNode(algo, cfg)
	hist, err := srv.Serve(ctx, ln)
	return srv, hist, err
}

// RunClientNode builds client id of the named fleet, dials the server and
// serves the wire protocol until the federation completes (fedclient's
// core). The algorithm instance is the client half — it holds no server
// state. The node reconnects through a jittered dial-retry when its
// connection dies mid-run, presenting the server-issued session token.
func RunClientNode(ctx context.Context, method string, name DatasetName, build ClientBuilder, id int, s Scale, tr transport.Transport, addr string) error {
	algo, err := WireAlgorithmFor(method, name, s)
	if err != nil {
		return err
	}
	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		return err
	}
	node := &fl.ClientNode{
		Client: build(id),
		Algo:   algo,
		Dialer: func(ctx context.Context, token uint64) (transport.Conn, error) {
			// Per-client jitter seeds keep a fleet's reconnect schedules
			// deterministic yet desynchronized.
			return transport.DialRetry(ctx, tr, addr, transport.RetryOptions{
				Seed:  s.Seed*1000 + int64(id),
				Token: token,
			})
		},
	}
	return node.Run(ctx, conn)
}

// RunNodes runs one server node plus k in-process client nodes over the
// given transport — `fedsim -transport tcp` uses it with real localhost
// sockets, and the tests use it with inproc channels. Client-node errors
// other than churn are surfaced after the server's history. Options mutate
// the server's node config.
func RunNodes(ctx context.Context, method string, name DatasetName, build ClientBuilder, k int, s Scale, rate float64, codec comm.Codec, tr transport.Transport, addr string, opts ...func(*fl.NodeConfig)) ([]fl.RoundMetrics, error) {
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	type result struct {
		id  int
		err error
	}
	clientDone := make(chan result, k)
	for i := 0; i < k; i++ {
		go func(id int) {
			clientDone <- result{id, RunClientNode(ctx, method, name, build, id, s, tr, ln.Addr())}
		}(i)
	}
	_, hist, err := ServeNode(ctx, method, name, s, rate, codec, k, ln, opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		r := <-clientDone
		if r.err != nil {
			return nil, fmt.Errorf("experiments: client node %d: %w", r.id, r.err)
		}
	}
	return hist, nil
}
