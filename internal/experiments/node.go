package experiments

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/fl"
	"repro/internal/transport"
)

// Node-mode experiment plumbing: the helpers fedserver, fedclient and
// `fedsim -transport tcp` share to run a method as real server/client
// nodes over a transport, configured for parity with the in-process sync
// run at the same scale and seed.

// WireAlgorithmFor instantiates a named method as a wire-split algorithm.
// Every method of the evaluation supports node mode; the error covers
// unknown names and any future algorithm that does not split.
func WireAlgorithmFor(method string, name DatasetName, s Scale) (fl.WireAlgorithm, error) {
	algo, err := NewAlgorithm(method, name, s)
	if err != nil {
		return nil, err
	}
	wa, ok := algo.(fl.WireAlgorithm)
	if !ok {
		return nil, fmt.Errorf("experiments: %s does not support node mode (implement fl.WireAlgorithm)", algo.Name())
	}
	return wa, nil
}

// NodeConfigFor builds the server-node configuration whose schedule
// matches RunScheduled's simulation at the same scale: the cohort sampler
// is seeded with the simulation seed (s.Seed+7), so a node federation
// visits exactly the cohorts the in-process sync run visits.
func NodeConfigFor(s Scale, rate float64, spec comm.Spec, clients int) fl.NodeConfig {
	return fl.NodeConfig{
		Clients:    clients,
		Rounds:     s.Rounds,
		SampleRate: rate,
		BatchSize:  s.BatchSize,
		Seed:       s.Seed + 7,
		Codec:      spec.Value,
		TopK:       spec.Frac,
		Delta:      spec.Delta,
		DType:      s.DType,
	}
}

// ApplyNodeSched copies the scheduler knobs that exist on the wire —
// policy, staleness bound, decay, quorum — onto a node config. Virtual-
// clock-only knobs (costs, churn injection, mix rate) have no node-mode
// meaning and are ignored.
func ApplyNodeSched(cfg *fl.NodeConfig, sched fl.SchedulerConfig) {
	cfg.Sched = sched.Kind
	cfg.MaxStaleness = sched.MaxStaleness
	cfg.Decay = sched.Decay
	cfg.Quorum = sched.Quorum
}

// ServeNode runs the server half of a method on an already-bound listener
// and returns the metrics history (fedserver's core). Options mutate the
// node config before the server starts (scheduler, failure discipline,
// checkpointing).
func ServeNode(ctx context.Context, method string, name DatasetName, s Scale, rate float64, spec comm.Spec, clients int, ln transport.Listener, opts ...func(*fl.NodeConfig)) (*fl.ServerNode, []fl.RoundMetrics, error) {
	algo, err := WireAlgorithmFor(method, name, s)
	if err != nil {
		return nil, nil, err
	}
	cfg := NodeConfigFor(s, rate, spec, clients)
	for _, opt := range opts {
		opt(&cfg)
	}
	srv := fl.NewServerNode(algo, cfg)
	hist, err := srv.Serve(ctx, ln)
	return srv, hist, err
}

// RunClientNode builds client id of the named fleet, dials the server and
// serves the wire protocol until the federation completes (fedclient's
// core). The algorithm instance is the client half — it holds no server
// state. The node reconnects through a jittered dial-retry when its
// connection dies mid-run, presenting the server-issued session token.
func RunClientNode(ctx context.Context, method string, name DatasetName, build ClientBuilder, id int, s Scale, tr transport.Transport, addr string) error {
	algo, err := WireAlgorithmFor(method, name, s)
	if err != nil {
		return err
	}
	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		return err
	}
	node := &fl.ClientNode{
		Client: build(id),
		Algo:   algo,
		Dialer: func(ctx context.Context, token uint64) (transport.Conn, error) {
			// Per-client jitter seeds keep a fleet's reconnect schedules
			// deterministic yet desynchronized.
			return transport.DialRetry(ctx, tr, addr, transport.RetryOptions{
				Seed:  s.Seed*1000 + int64(id),
				Token: token,
			})
		},
	}
	return node.Run(ctx, conn)
}

// RunAggregatorNode builds edge aggregator cfg.Index of a 2-level tree,
// serves its child range on ln and relays rounds to the root at
// upstreamAddr until the federation completes (fedagg's core). The
// algorithm instance runs only the PreReduce reduction — no server state.
// A nil cfg.Dialer is filled with the standard jittered dial-retry,
// seeded per aggregator so a fleet of re-dials stays deterministic yet
// desynchronized.
func RunAggregatorNode(ctx context.Context, method string, name DatasetName, s Scale, cfg fl.AggregatorConfig, tr transport.Transport, upstreamAddr string, ln transport.Listener) error {
	algo, err := WireAlgorithmFor(method, name, s)
	if err != nil {
		ln.Close()
		return err
	}
	if cfg.Dialer == nil {
		index := cfg.Index
		cfg.Dialer = func(ctx context.Context, token uint64) (transport.Conn, error) {
			return transport.DialRetry(ctx, tr, upstreamAddr, transport.RetryOptions{
				Seed:  s.Seed*1000 + 500 + int64(index),
				Token: token,
			})
		}
	}
	return fl.NewAggregatorNode(algo, cfg).Run(ctx, ln)
}

// aggListenAddr derives the listen address for aggregator a. A tcp
// address reuses the root's bind spec (":0" hands out a fresh port per
// listener); the inproc namespace needs a distinct name.
func aggListenAddr(tr transport.Transport, addr string, a int) string {
	if tr.Name() == "tcp" {
		return addr
	}
	return fmt.Sprintf("%s-agg%d", addr, a)
}

// RunTreeNodes runs a 2-level tree in one process: a root server node,
// aggs edge aggregators, and k client nodes dialing their owning
// aggregator — `fedsim -topology tree` uses it, and the parity tests
// compare it against RunNodes at the same seed. Options mutate the root's
// node config; the aggregators inherit its failure discipline so one knob
// tunes every layer.
func RunTreeNodes(ctx context.Context, method string, name DatasetName, build ClientBuilder, k, aggs int, s Scale, rate float64, spec comm.Spec, tr transport.Transport, addr string, opts ...func(*fl.NodeConfig)) ([]fl.RoundMetrics, error) {
	rootLn, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	// Resolve the root config up front so the aggregators can inherit its
	// failure discipline; ServeNode re-applies the same opts.
	rootCfg := NodeConfigFor(s, rate, spec, k)
	for _, opt := range opts {
		opt(&rootCfg)
	}
	aggLns := make([]transport.Listener, aggs)
	for a := range aggLns {
		ln, lerr := tr.Listen(aggListenAddr(tr, addr, a))
		if lerr != nil {
			rootLn.Close()
			for _, l := range aggLns {
				if l != nil {
					l.Close()
				}
			}
			return nil, lerr
		}
		aggLns[a] = ln
	}
	type result struct {
		role string
		id   int
		err  error
	}
	aggDone := make(chan result, aggs)
	clientDone := make(chan result, k)
	rootAddr := rootLn.Addr()
	for a := 0; a < aggs; a++ {
		go func(a int) {
			aggDone <- result{"aggregator", a, RunAggregatorNode(ctx, method, name, s, fl.AggregatorConfig{
				Index:           a,
				Aggregators:     aggs,
				Clients:         k,
				Codec:           spec.Value,
				TopK:            spec.Frac,
				Delta:           spec.Delta,
				Seed:            s.Seed + 7 + 101*int64(a),
				Heartbeat:       rootCfg.Heartbeat,
				DeadAfter:       rootCfg.DeadAfter,
				ReconnectWindow: rootCfg.ReconnectWindow,
			}, tr, rootAddr, aggLns[a])}
		}(a)
	}
	bounds := fl.TreeSplit(k, aggs)
	for a := 0; a < aggs; a++ {
		for id := bounds[a]; id < bounds[a+1]; id++ {
			go func(id int, aggAddr string) {
				clientDone <- result{"client", id, RunClientNode(ctx, method, name, build, id, s, tr, aggAddr)}
			}(id, aggLns[a].Addr())
		}
	}
	treeOpts := append(opts[:len(opts):len(opts)], func(cfg *fl.NodeConfig) { cfg.Aggregators = aggs })
	_, hist, err := ServeNode(ctx, method, name, s, rate, spec, k, rootLn, treeOpts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < aggs+k; i++ {
		var r result
		select {
		case r = <-aggDone:
		case r = <-clientDone:
		}
		if r.err != nil {
			return nil, fmt.Errorf("experiments: %s node %d: %w", r.role, r.id, r.err)
		}
	}
	return hist, nil
}

// RunNodes runs one server node plus k in-process client nodes over the
// given transport — `fedsim -transport tcp` uses it with real localhost
// sockets, and the tests use it with inproc channels. Client-node errors
// other than churn are surfaced after the server's history. Options mutate
// the server's node config.
func RunNodes(ctx context.Context, method string, name DatasetName, build ClientBuilder, k int, s Scale, rate float64, spec comm.Spec, tr transport.Transport, addr string, opts ...func(*fl.NodeConfig)) ([]fl.RoundMetrics, error) {
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	type result struct {
		id  int
		err error
	}
	clientDone := make(chan result, k)
	for i := 0; i < k; i++ {
		go func(id int) {
			clientDone <- result{id, RunClientNode(ctx, method, name, build, id, s, tr, ln.Addr())}
		}(i)
	}
	_, hist, err := ServeNode(ctx, method, name, s, rate, spec, k, ln, opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		r := <-clientDone
		if r.err != nil {
			return nil, fmt.Errorf("experiments: client node %d: %w", r.id, r.err)
		}
	}
	return hist, nil
}
