// Package experiments maps every table and figure of the paper's evaluation
// to a runnable configuration: it constructs datasets, partitions, client
// fleets and algorithms, and emits the same rows/series the paper reports.
// DESIGN.md carries the experiment index; cmd/tables and cmd/figures are the
// command-line entry points; bench_test.go wraps each experiment in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Scale bundles the knobs that trade fidelity for runtime. The paper runs
// 20–100 clients for hundreds of rounds on 15 GPUs; the default scale keeps
// every experimental variable (heterogeneity, skew, methods) while fitting
// a single CPU.
type Scale struct {
	Clients       int
	LargeClients  int // the paper's 100-client setting, scaled
	Rounds        int
	TrainPerClass int
	TestPerClass  int
	FeatDim       int
	BatchSize     int
	PublicSize    int // KT-pFL public dataset size
	Seed          int64
	// DType is the element type client models train in. The zero value is
	// float64 (the golden reference path); tensor.F32 runs the same seeds on
	// the SIMD-wide float32 fast path.
	DType tensor.DType
}

// Small is the default scale used by cmd/tables, examples and EXPERIMENTS.md.
func Small() Scale {
	return Scale{
		Clients:       8,
		LargeClients:  20,
		Rounds:        40,
		TrainPerClass: 24,
		TestPerClass:  30,
		FeatDim:       32,
		BatchSize:     16,
		PublicSize:    48,
		Seed:          1,
	}
}

// Tiny is the scale used by unit tests and benchmarks.
func Tiny() Scale {
	return Scale{
		Clients:       4,
		LargeClients:  6,
		Rounds:        3,
		TrainPerClass: 8,
		TestPerClass:  4,
		FeatDim:       16,
		BatchSize:     8,
		PublicSize:    16,
		Seed:          1,
	}
}

// DatasetName selects one of the three benchmark stand-ins.
type DatasetName string

// The benchmark datasets.
const (
	CIFAR10 DatasetName = "cifar10"
	Fashion DatasetName = "fashion"
	EMNIST  DatasetName = "emnist"
)

// AllDatasets lists the benchmarks in the paper's column order.
var AllDatasets = []DatasetName{CIFAR10, Fashion, EMNIST}

// ParseDataset validates a flag value against the known benchmarks, so bad
// user input fails as a usage error instead of panicking inside Spec.
func ParseDataset(s string) (DatasetName, error) {
	switch DatasetName(s) {
	case CIFAR10, Fashion, EMNIST:
		return DatasetName(s), nil
	case "":
		return Fashion, nil
	}
	return "", fmt.Errorf("experiments: unknown dataset %q (want cifar10 | fashion | emnist)", s)
}

// ScaleFromEnv returns def unless the REPRO_SCALE environment variable
// overrides it ("tiny" | "small"); example binaries honour it so smoke
// tests can run them at CI scale.
func ScaleFromEnv(def Scale) Scale {
	switch os.Getenv("REPRO_SCALE") {
	case "tiny":
		return Tiny()
	case "small":
		return Small()
	}
	return def
}

// Spec returns the generator spec for a dataset at the given scale.
func Spec(name DatasetName, s Scale) data.Spec {
	switch name {
	case CIFAR10:
		return data.SynthCIFAR(s.TrainPerClass, s.TestPerClass, s.Seed)
	case Fashion:
		return data.SynthFashion(s.TrainPerClass, s.TestPerClass, s.Seed)
	case EMNIST:
		return data.SynthEMNIST(s.TrainPerClass, s.TestPerClass, s.Seed)
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
}

// Hyperparams is the Table 1 record: the paper's values next to the scaled
// values this reproduction uses.
type Hyperparams struct {
	Dataset     DatasetName
	PaperLR     float64
	PaperBatch  int
	PaperRho    float64
	PaperEpochs int
	LR          float64 // scaled (Adam) learning rate used here
	Batch       int
	Rho         float64
	Epochs      int
}

// HyperparamsFor returns the per-dataset hyperparameters (paper Table 1,
// plus our scaled equivalents selected on the synthetic stand-ins).
func HyperparamsFor(name DatasetName, s Scale) Hyperparams {
	h := Hyperparams{Dataset: name, PaperBatch: 64, PaperEpochs: 1, Batch: s.BatchSize, Epochs: 1}
	switch name {
	case CIFAR10:
		h.PaperLR, h.PaperRho = 0.0001, 0.1
		h.LR, h.Rho = 0.002, 0.1
	case Fashion:
		h.PaperLR, h.PaperRho = 0.0006, 0.4662
		h.LR, h.Rho = 0.002, 0.4662
	case EMNIST:
		h.PaperLR, h.PaperRho = 0.0005, 0.1
		h.LR, h.Rho = 0.002, 0.1
	}
	return h
}

// ClientFactory produces a fresh, identically initialized client fleet.
// Every algorithm in a comparison consumes its own fleet so methods start
// from the same weights and data.
type ClientFactory func() []*fl.Client

// ClientBuilder constructs one client of a fleet by id. Every client's
// data split, model initialization and RNG streams depend only on the
// fleet configuration and the id, so a fedclient process can build exactly
// its own client — identical to the one the in-process factory would have
// produced at the same index — without materializing anyone else's model.
type ClientBuilder func(i int) *fl.Client

// FleetNames lists the -fleet flag values NewFleetBuilder accepts.
const FleetNames = "heterogeneous | homogeneous | proto"

// NewFleetBuilder returns a single-client builder for one of the named
// fleet kinds — the node-mode form of NewHeterogeneousFleet and friends.
func NewFleetBuilder(name DatasetName, kind data.PartitionKind, fleet string, k int, s Scale) (ClientBuilder, *data.Dataset, error) {
	pickArch, err := pickArchFor(fleet)
	if err != nil {
		return nil, nil, err
	}
	return newFleetBuilder(name, kind, k, s, pickArch, nil)
}

// NewLazyFleetBuilder is NewFleetBuilder for virtual fleets: the data split
// comes from data.LazyPartitioner, so client i's examples are derived on
// demand as a pure function of (seed, i) instead of partitioned eagerly —
// the only construction whose memory stays O(dataset) for a million
// clients. Model init, RNG streams and optimizers follow the same per-id
// formulas as the eager builder.
func NewLazyFleetBuilder(name DatasetName, kind data.PartitionKind, fleet string, k int, s Scale) (ClientBuilder, *data.Dataset, error) {
	pickArch, err := pickArchFor(fleet)
	if err != nil {
		return nil, nil, err
	}
	ds := data.Generate(Spec(name, s))
	lp, err := data.NewLazyPartitioner(ds, k, data.PartitionOptions{Kind: kind, Alpha: 0.5, Seed: s.Seed + 17})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	return buildClient(name, ds, s, pickArch, nil, lp.Client), ds, nil
}

func pickArchFor(fleet string) (func(int) models.Arch, error) {
	switch fleet {
	case "heterogeneous", "":
		return func(i int) models.Arch { return models.HeterogeneousSet[i%len(models.HeterogeneousSet)] }, nil
	case "homogeneous":
		return func(int) models.Arch { return models.ArchResNet }, nil
	case "proto":
		return func(int) models.Arch { return models.ArchCNN2 }, nil
	}
	return nil, fmt.Errorf("experiments: unknown fleet %q (want %s)", fleet, FleetNames)
}

// NewHeterogeneousFleet builds the Table 2 setting: k clients over the
// four mini architectures (equally distributed), personalized non-iid
// splits, per-client RNGs and Adam optimizers.
func NewHeterogeneousFleet(name DatasetName, kind data.PartitionKind, k int, s Scale) (ClientFactory, *data.Dataset, error) {
	return newFleet(name, kind, k, s, func(i int) models.Arch {
		return models.HeterogeneousSet[i%len(models.HeterogeneousSet)]
	}, nil)
}

// NewHomogeneousFleet builds the Table 3 setting: every client runs
// MiniResNet.
func NewHomogeneousFleet(name DatasetName, kind data.PartitionKind, k int, s Scale) (ClientFactory, *data.Dataset, error) {
	return newFleet(name, kind, k, s, func(int) models.Arch { return models.ArchResNet }, nil)
}

// NewProtoFleet builds the FedProto setting: CNN2 models whose widths vary
// per client (the paper's milder heterogeneity for FedProto).
func NewProtoFleet(name DatasetName, kind data.PartitionKind, k int, s Scale) (ClientFactory, *data.Dataset, error) {
	return newFleet(name, kind, k, s, func(int) models.Arch { return models.ArchCNN2 }, nil)
}

// NewRotationFleet builds a fleet whose composition is scripted instead of
// hardcoded: client i runs arches[i % len(arches)] at width multiplier
// widths[i % len(widths)] (widths nil or empty = the default width). It is
// the programmatic form of fedsim's -arch/-width flags.
func NewRotationFleet(name DatasetName, kind data.PartitionKind, k int, s Scale, arches []models.Arch, widths []int) (ClientFactory, *data.Dataset, error) {
	if len(arches) == 0 {
		return nil, nil, fmt.Errorf("experiments: rotation fleet needs at least one architecture")
	}
	var pickWidth func(int) int
	if len(widths) > 0 {
		pickWidth = func(i int) int { return widths[i%len(widths)] }
	}
	return newFleet(name, kind, k, s, func(i int) models.Arch {
		return arches[i%len(arches)]
	}, pickWidth)
}

// ParseArchRotation parses a comma-separated architecture rotation like
// "resnet,shufflenet,googlenet,alexnet" into the per-client assignment list.
func ParseArchRotation(s string) ([]models.Arch, error) {
	var arches []models.Arch
	for _, name := range strings.Split(s, ",") {
		a, err := models.ParseArch(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		arches = append(arches, a)
	}
	return arches, nil
}

// ParseWidthRotation parses a comma-separated width-multiplier rotation like
// "1,2,3" (every entry must be >= 1).
func ParseWidthRotation(s string) ([]int, error) {
	var widths []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("experiments: width multiplier %q must be an integer >= 1", f)
		}
		widths = append(widths, w)
	}
	return widths, nil
}

func newFleet(name DatasetName, kind data.PartitionKind, k int, s Scale, pickArch func(int) models.Arch, pickWidth func(int) int) (ClientFactory, *data.Dataset, error) {
	build, ds, err := newFleetBuilder(name, kind, k, s, pickArch, pickWidth)
	if err != nil {
		return nil, nil, err
	}
	factory := func() []*fl.Client {
		clients := make([]*fl.Client, k)
		for i := 0; i < k; i++ {
			clients[i] = build(i)
		}
		return clients
	}
	return factory, ds, nil
}

// newFleetBuilder is the per-client core of newFleet: everything about
// client i — split, architecture, width, init seed, RNG streams — is a
// pure function of the fleet configuration and i.
func newFleetBuilder(name DatasetName, kind data.PartitionKind, k int, s Scale, pickArch func(int) models.Arch, pickWidth func(int) int) (ClientBuilder, *data.Dataset, error) {
	ds := data.Generate(Spec(name, s))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: kind, Alpha: 0.5, Seed: s.Seed + 17})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	return buildClient(name, ds, s, pickArch, pickWidth, func(i int) data.ClientData { return parts[i] }), ds, nil
}

// buildClient is the shared per-client core of the eager and lazy fleet
// builders: everything about client i except its data split — architecture,
// width, init seed, RNG streams, optimizer — is a pure function of the
// fleet configuration and i; the split function supplies the rest.
func buildClient(name DatasetName, ds *data.Dataset, s Scale, pickArch func(int) models.Arch, pickWidth func(int) int, split func(int) data.ClientData) ClientBuilder {
	h := HyperparamsFor(name, s)
	return func(i int) *fl.Client {
		part := split(i)
		arch := pickArch(i)
		cfg := models.Config{
			Arch: arch, InC: ds.C, InH: ds.H, InW: ds.W,
			FeatDim: s.FeatDim, NumClasses: ds.NumClasses,
			DType: s.DType,
		}
		if arch == models.ArchCNN2 {
			cfg.Width = 1 + i%3 // per-client channel heterogeneity
		}
		if pickWidth != nil {
			cfg.Width = pickWidth(i)
		}
		seed := s.Seed*1000003 + int64(i)*7919
		// Both the training stream (augmentation, batch shuffling) and
		// the model-init stream come from serializable xrand sources, so
		// every random draw in a fleet's life is snapshot-reproducible.
		rng, src := xrand.NewRand(seed ^ 0x5deece66d)
		return &fl.Client{
			ID:        i,
			Model:     models.New(cfg, xrand.New(seed)),
			Train:     part.Train,
			Test:      part.Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rng,
			Src:       src,
			Optimizer: opt.NewAdam(h.LR),
		}
	}
}

// Method names used across tables.
const (
	MethodBaseline       = "Baseline"
	MethodFedProto       = "FedProto"
	MethodKTpFL          = "KT-pFL"
	MethodKTpFLWeight    = "KT-pFL+weight"
	MethodFedAvg         = "FedAvg"
	MethodFedProx        = "FedProx"
	MethodProposed       = "Proposed"
	MethodProposedWeight = "Proposed+weight"
	MethodAblationCA     = "CA"
	MethodAblationCAPR   = "CA+PR"
	MethodAblationCACL   = "CA+CL"
	MethodAblationCAPRCL = "CA+PR+CL"
)

// NewAlgorithm instantiates a named method for a dataset at a scale.
// KT-pFL variants that need public data receive it here.
func NewAlgorithm(method string, name DatasetName, s Scale) (fl.Algorithm, error) {
	h := HyperparamsFor(name, s)
	switch method {
	case MethodBaseline:
		return baselines.NewLocalOnly(1), nil
	case MethodFedProto:
		return baselines.NewFedProto(1, 1.0), nil
	case MethodKTpFL:
		spec := Spec(name, s)
		k := baselines.NewKTpFL(1, 3, s.PublicSize)
		public := data.PublicSplit(spec, s.PublicSize, s.Seed+101)
		k.SetPublic(public, spec.C, spec.H, spec.W)
		return k, nil
	case MethodKTpFLWeight:
		return baselines.NewKTpFLWeights(1), nil
	case MethodFedAvg:
		return baselines.NewFedAvg(1), nil
	case MethodFedProx:
		return baselines.NewFedProx(1, 0.1), nil
	case MethodProposed:
		o := core.DefaultOptions()
		o.Rho = h.Rho
		return core.New(o), nil
	case MethodProposedWeight:
		o := core.DefaultOptions()
		o.Rho = h.Rho
		o.ShareAllWeights = true
		return core.New(o), nil
	case MethodAblationCA:
		return core.New(core.Options{LocalEpochs: 1}), nil
	case MethodAblationCAPR:
		return core.New(core.Options{LocalEpochs: 1, UseProximal: true, Rho: h.Rho}), nil
	case MethodAblationCACL:
		return core.New(core.Options{LocalEpochs: 1, UseContrastive: true}), nil
	case MethodAblationCAPRCL:
		o := core.DefaultOptions()
		o.Rho = h.Rho
		return core.New(o), nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", method)
	}
}

// Run executes one method on a fresh fleet under the sync scheduler and
// returns its metrics history.
func Run(method string, name DatasetName, factory ClientFactory, s Scale, sampleRate float64) ([]fl.RoundMetrics, error) {
	return RunScheduled(method, name, factory, s, sampleRate, fl.SchedulerConfig{}, comm.Spec{Value: comm.F64})
}

// RunScheduled executes one method on a fresh fleet under an arbitrary
// scheduler and wire framing spec. The zero SchedulerConfig and a plain
// dense f64 spec reproduce Run exactly.
func RunScheduled(method string, name DatasetName, factory ClientFactory, s Scale, sampleRate float64, sched fl.SchedulerConfig, spec comm.Spec) ([]fl.RoundMetrics, error) {
	algo, err := NewAlgorithm(method, name, s)
	if err != nil {
		return nil, err
	}
	sim := fl.NewSimulation(factory(), fl.Config{
		Rounds:     s.Rounds,
		SampleRate: sampleRate,
		BatchSize:  s.BatchSize,
		Seed:       s.Seed + 7,
		Codec:      spec.Value,
		TopK:       spec.Frac,
		Delta:      spec.Delta,
	})
	return sim.RunScheduled(algo, sched)
}

// RunLazyScheduled executes one method over a virtual fleet of k clients:
// clients materialize on dispatch through build, and at most resident of
// them stay in memory (0 = unbounded); the rest spill to compact state
// buffers. evalSample caps how many clients each evaluation touches
// (0 = the cohort-size default). Memory is O(resident + cohort), not O(k).
func RunLazyScheduled(method string, name DatasetName, build ClientBuilder, k int, s Scale, sampleRate float64, resident, evalSample int, sched fl.SchedulerConfig, spec comm.Spec) ([]fl.RoundMetrics, error) {
	algo, err := NewAlgorithm(method, name, s)
	if err != nil {
		return nil, err
	}
	sim := fl.NewLazySimulation(k, build, resident, fl.Config{
		Rounds:     s.Rounds,
		SampleRate: sampleRate,
		BatchSize:  s.BatchSize,
		Seed:       s.Seed + 7,
		Codec:      spec.Value,
		TopK:       spec.Frac,
		Delta:      spec.Delta,
		EvalSample: evalSample,
	})
	return sim.RunScheduled(algo, sched)
}

// StragglerCosts builds a per-client virtual cost vector where the first
// slow clients take factor× as long per local update — the heterogeneous
// straggler fleets of the scheduler benchmarks.
func StragglerCosts(clients, slow int, factor float64) []float64 {
	costs := make([]float64, clients)
	for i := range costs {
		costs[i] = 1
		if i < slow {
			costs[i] = factor
		}
	}
	return costs
}

// Final extracts the last evaluation point of a history.
func Final(hist []fl.RoundMetrics) fl.RoundMetrics {
	if len(hist) == 0 {
		return fl.RoundMetrics{}
	}
	return hist[len(hist)-1]
}
