package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/tensor"
)

// Figure23 reproduces Figures 2 and 3: the non-iid label distribution
// across clients, as per-client label histograms.
func Figure23(name DatasetName, kind data.PartitionKind, k int, s Scale) ([][]int, *data.Dataset, error) {
	ds := data.Generate(Spec(name, s))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: kind, Alpha: 0.5, Seed: s.Seed + 17})
	if err != nil {
		return nil, nil, err
	}
	return data.LabelHistogram(parts, ds.NumClasses), ds, nil
}

// HistogramMarkdown renders a label histogram as a markdown grid.
func HistogramMarkdown(hist [][]int, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n| client \\ class |", title)
	if len(hist) == 0 {
		return b.String()
	}
	for c := range hist[0] {
		fmt.Fprintf(&b, " %d |", c)
	}
	b.WriteString("\n|---|")
	for range hist[0] {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for i, row := range hist {
		fmt.Fprintf(&b, "| %d |", i)
		for _, v := range row {
			fmt.Fprintf(&b, " %d |", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure45 reproduces the heterogeneous learning curves (Figures 4 and 5):
// FedClassAvg vs KT-pFL vs the local baseline on one dataset/partition.
func Figure45(name DatasetName, kind data.PartitionKind, s Scale) ([]CurveSeries, error) {
	factory, _, err := NewHeterogeneousFleet(name, kind, s.Clients, s)
	if err != nil {
		return nil, err
	}
	var out []CurveSeries
	for _, m := range []string{MethodProposed, MethodKTpFL, MethodBaseline} {
		hist, err := Run(m, name, factory, s, 1.0)
		if err != nil {
			return nil, fmt.Errorf("figure45 %s: %w", m, err)
		}
		out = append(out, CurveSeries{Label: m, Points: hist})
	}
	return out, nil
}

// Figure67 reproduces the homogeneous learning curves (Figures 6 and 7):
// FedClassAvg(+weight) vs KT-pFL(+weight) vs FedAvg under Dir(0.5).
func Figure67(name DatasetName, k int, rate float64, s Scale) ([]CurveSeries, error) {
	factory, _, err := NewHomogeneousFleet(name, data.Dirichlet, k, s)
	if err != nil {
		return nil, err
	}
	var out []CurveSeries
	for _, m := range []string{MethodProposedWeight, MethodKTpFLWeight, MethodFedAvg} {
		hist, err := Run(m, name, factory, s, rate)
		if err != nil {
			return nil, fmt.Errorf("figure67 %s: %w", m, err)
		}
		out = append(out, CurveSeries{Label: m, Points: hist})
	}
	return out, nil
}

// Figure8Result summarizes a t-SNE comparison quantitatively: how well
// features cluster by label (purity) and how much clients intermix within
// label neighborhoods (mixing), for the isolated baseline vs FedClassAvg.
type Figure8Result struct {
	BaselinePurity float64
	BaselineMixing float64
	ProposedPurity float64
	ProposedMixing float64
	Embedding      *tensor.Tensor // proposed-run embedding, [n, 2]
	Labels         []int
	ClientOf       []int
}

// Figure8 trains a baseline fleet and a FedClassAvg fleet, extracts each
// client's features for its own test points, embeds them with t-SNE and
// reports kNN label purity and client-mixing — the quantitative version of
// the paper's Figure 8 claim.
func Figure8(name DatasetName, s Scale, perClient int) (*Figure8Result, error) {
	factory, _, err := NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		return nil, err
	}

	collect := func(clients []*fl.Client) (*tensor.Tensor, []int, []int) {
		var rows []*tensor.Tensor
		var labels, owners []int
		for _, c := range clients {
			n := perClient
			if n > len(c.Test) {
				n = len(c.Test)
			}
			if n == 0 {
				continue
			}
			x, y := data.BatchTensor(c.Test[:n], c.Model.Cfg.InC, c.Model.Cfg.InH, c.Model.Cfg.InW)
			// Analysis runs in float64 bookkeeping; f32 features widen here
			// (AsType is the identity on the f64 reference path).
			feats := c.Model.Features(x, false).AsType(tensor.F64)
			rows = append(rows, feats)
			for i := 0; i < n; i++ {
				labels = append(labels, y[i])
				owners = append(owners, c.ID)
			}
		}
		return tensor.ConcatRows(rows...), labels, owners
	}

	// Baseline: local training only.
	baseClients := factory()
	baseSim := fl.NewSimulation(baseClients, fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
	baseAlgo, err := NewAlgorithm(MethodBaseline, name, s)
	if err != nil {
		return nil, err
	}
	if _, err := baseSim.Run(baseAlgo); err != nil {
		return nil, err
	}
	bFeats, bLabels, bOwners := collect(baseClients)

	// Proposed.
	propClients := factory()
	propSim := fl.NewSimulation(propClients, fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
	propAlgo, err := NewAlgorithm(MethodProposed, name, s)
	if err != nil {
		return nil, err
	}
	if _, err := propSim.Run(propAlgo); err != nil {
		return nil, err
	}
	pFeats, pLabels, pOwners := collect(propClients)

	const k = 5
	res := &Figure8Result{
		BaselinePurity: analysis.KNNLabelPurity(bFeats, bLabels, k),
		BaselineMixing: analysis.ClientMixingIndex(bFeats, bOwners, k),
		ProposedPurity: analysis.KNNLabelPurity(pFeats, pLabels, k),
		ProposedMixing: analysis.ClientMixingIndex(pFeats, pOwners, k),
		Labels:         pLabels,
		ClientOf:       pOwners,
	}
	res.Embedding = analysis.TSNE(pFeats, analysis.TSNEOptions{Seed: s.Seed, Iterations: 150})
	return res, nil
}

// Figure9Result is the conductance comparison: one attribution vector per
// correctly classifying client plus their mean pairwise Spearman rank
// correlation.
type Figure9Result struct {
	ProbeLabel   int
	Clients      []int
	Attributions [][]float64
	MeanSpearman float64
	HeatmapASCII string
}

// Figure9 trains FedClassAvg, picks the test example correctly classified
// by the most clients, and compares the layer-conductance rank scores of
// the classifier input units across those clients.
func Figure9(name DatasetName, s Scale) (*Figure9Result, error) {
	factory, ds, err := NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		return nil, err
	}
	clients := factory()
	sim := fl.NewSimulation(clients, fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
	algo, err := NewAlgorithm(MethodProposed, name, s)
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(algo); err != nil {
		return nil, err
	}
	// Probe candidates: every client's first few test examples, evaluated
	// by all clients; keep the one with most correct classifications.
	type probe struct {
		x       []float64
		label   int
		correct []int
	}
	var best probe
	for _, owner := range clients {
		limit := 4
		if limit > len(owner.Test) {
			limit = len(owner.Test)
		}
		for _, ex := range owner.Test[:limit] {
			var correct []int
			for _, c := range clients {
				x := tensor.FromSlice(append([]float64(nil), ex.X...), 1, ds.C, ds.H, ds.W)
				_, logits := c.Model.Forward(x, false)
				if logits.ArgMaxRow(0) == ex.Y {
					correct = append(correct, c.ID)
				}
			}
			if len(correct) > len(best.correct) {
				best = probe{x: ex.X, label: ex.Y, correct: correct}
			}
		}
	}
	if len(best.correct) < 2 {
		return nil, fmt.Errorf("figure9: no probe classified correctly by ≥2 clients")
	}
	res := &Figure9Result{ProbeLabel: best.label, Clients: best.correct}
	for _, id := range best.correct {
		x := tensor.FromSlice(append([]float64(nil), best.x...), 1, ds.C, ds.H, ds.W)
		attr := analysis.Conductance(clients[id].Model, x, best.label)
		res.Attributions = append(res.Attributions, attr)
	}
	res.MeanSpearman = analysis.MeanPairwiseSpearman(res.Attributions)
	res.HeatmapASCII = analysis.RankHeatmap(res.Attributions, 64)
	return res, nil
}
