package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/data"
)

// TestFigure23HistogramGolden pins the fixed-seed non-iid label histogram:
// the partition pipeline is pure Go float math, so the exact counts are a
// stable golden across platforms. A change here means the partitioning
// (and therefore every experiment's data distribution) changed.
func TestFigure23HistogramGolden(t *testing.T) {
	s := Tiny()
	hist, ds, err := Figure23(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 1, 3, 1, 1, 1, 0, 0, 8, 4},
		{2, 2, 1, 7, 2, 1, 2, 2, 0, 1},
		{3, 2, 1, 0, 2, 3, 3, 3, 0, 3},
		{2, 3, 3, 0, 3, 3, 3, 3, 0, 0},
	}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("fixed-seed histogram drifted:\ngot  %v\nwant %v", hist, want)
	}
	// Every training example lands in exactly one cell.
	total := 0
	for _, row := range hist {
		for _, v := range row {
			total += v
		}
	}
	if wantTotal := s.TrainPerClass * ds.NumClasses; total != wantTotal {
		t.Fatalf("histogram holds %d examples, dataset has %d", total, wantTotal)
	}
	// The skewed variant covers the other partition path; it must be
	// deterministic for a fixed seed and conserve every example too.
	skew, _, err := Figure23(Fashion, data.Skewed, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	skew2, _, err := Figure23(Fashion, data.Skewed, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skew, skew2) {
		t.Fatal("skewed histogram is not deterministic at a fixed seed")
	}
	skewTotal := 0
	for _, row := range skew {
		for _, v := range row {
			skewTotal += v
		}
	}
	if skewTotal != total {
		t.Fatalf("skewed partition holds %d examples, Dirichlet held %d", skewTotal, total)
	}
}

// TestHistogramMarkdown checks the renderer's output shape: a header row,
// a separator, one row per client, and every count present.
func TestHistogramMarkdown(t *testing.T) {
	md := HistogramMarkdown([][]int{{3, 0}, {1, 9}}, "Tiny grid")
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if lines[0] != "### Tiny grid" {
		t.Fatalf("title line = %q", lines[0])
	}
	if len(lines) != 6 { // title, blank, header, separator, 2 client rows
		t.Fatalf("markdown has %d lines:\n%s", len(lines), md)
	}
	if !strings.HasPrefix(lines[2], "| client \\ class |") {
		t.Fatalf("header = %q", lines[2])
	}
	if lines[4] != "| 0 | 3 | 0 |" || lines[5] != "| 1 | 1 | 9 |" {
		t.Fatalf("rows rendered wrong:\n%s", md)
	}
	// Degenerate input must not panic and still carries the title.
	if md := HistogramMarkdown(nil, "empty"); !strings.Contains(md, "### empty") {
		t.Fatalf("empty histogram output: %q", md)
	}
}

// TestFigure45Curves runs the heterogeneous learning-curve figure at tiny
// scale: three series in the paper's order, every point in range, and the
// whole figure deterministic for a fixed seed.
func TestFigure45Curves(t *testing.T) {
	s := Tiny()
	s.Rounds = 2
	run := func() []CurveSeries {
		out, err := Figure45(Fashion, data.Dirichlet, s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	series := run()
	wantLabels := []string{MethodProposed, MethodKTpFL, MethodBaseline}
	if len(series) != len(wantLabels) {
		t.Fatalf("%d series, want %d", len(series), len(wantLabels))
	}
	for i, cs := range series {
		if cs.Label != wantLabels[i] {
			t.Fatalf("series %d labelled %q, want %q", i, cs.Label, wantLabels[i])
		}
		if len(cs.Points) != s.Rounds {
			t.Fatalf("%s has %d points, want %d", cs.Label, len(cs.Points), s.Rounds)
		}
		for _, p := range cs.Points {
			if p.MeanAcc < 0 || p.MeanAcc > 1 || math.IsNaN(p.MeanAcc) {
				t.Fatalf("%s accuracy out of range: %v", cs.Label, p.MeanAcc)
			}
			if p.LocalEpochs <= 0 {
				t.Fatalf("%s point missing the cumulative-epoch x-axis: %+v", cs.Label, p)
			}
		}
	}
	again := run()
	for i := range series {
		for j := range series[i].Points {
			if series[i].Points[j].MeanAcc != again[i].Points[j].MeanAcc {
				t.Fatalf("figure 4/5 is not deterministic at a fixed seed (series %d point %d)", i, j)
			}
		}
	}
}

// TestFigure67Curves runs the homogeneous figure: the +weight variants and
// FedAvg under partial participation.
func TestFigure67Curves(t *testing.T) {
	s := Tiny()
	s.Rounds = 2
	series, err := Figure67(Fashion, s.Clients, 0.5, s)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{MethodProposedWeight, MethodKTpFLWeight, MethodFedAvg}
	if len(series) != len(wantLabels) {
		t.Fatalf("%d series, want %d", len(series), len(wantLabels))
	}
	for i, cs := range series {
		if cs.Label != wantLabels[i] {
			t.Fatalf("series %d labelled %q, want %q", i, cs.Label, wantLabels[i])
		}
		for _, p := range cs.Points {
			if p.MeanAcc < 0 || p.MeanAcc > 1 {
				t.Fatalf("%s accuracy out of range: %v", cs.Label, p.MeanAcc)
			}
			// Partial participation must still record wire traffic.
			if p.UpBytes < 0 || p.DownBytes < 0 {
				t.Fatalf("%s negative traffic: %+v", cs.Label, p)
			}
		}
	}
}

// TestFigure8Embedding smoke-tests the t-SNE comparison path: purity and
// mixing scores in [0, 1] and a rank-2 embedding with one row per
// collected feature.
func TestFigure8Embedding(t *testing.T) {
	s := Tiny()
	s.Rounds = 1
	res, err := Figure8(Fashion, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"baseline purity": res.BaselinePurity,
		"baseline mixing": res.BaselineMixing,
		"proposed purity": res.ProposedPurity,
		"proposed mixing": res.ProposedMixing,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("%s out of range: %v", name, v)
		}
	}
	if res.Embedding == nil || res.Embedding.Cols() != 2 {
		t.Fatal("embedding is not rank 2")
	}
	if res.Embedding.Rows() != len(res.Labels) || len(res.Labels) != len(res.ClientOf) {
		t.Fatalf("embedding rows %d, labels %d, owners %d", res.Embedding.Rows(), len(res.Labels), len(res.ClientOf))
	}
}

// TestFigure9Conductance smoke-tests the attribution comparison path. At
// tiny scale a probe agreed on by two clients is not guaranteed, so the
// documented no-probe error is an accepted outcome — anything else must
// be a well-formed result.
func TestFigure9Conductance(t *testing.T) {
	s := Tiny()
	s.Rounds = 2
	res, err := Figure9(Fashion, s)
	if err != nil {
		if strings.Contains(err.Error(), "no probe") {
			t.Skipf("accepted tiny-scale outcome: %v", err)
		}
		t.Fatal(err)
	}
	if len(res.Clients) < 2 || len(res.Attributions) != len(res.Clients) {
		t.Fatalf("malformed result: %d clients, %d attributions", len(res.Clients), len(res.Attributions))
	}
	if res.MeanSpearman < -1 || res.MeanSpearman > 1 || math.IsNaN(res.MeanSpearman) {
		t.Fatalf("mean Spearman out of range: %v", res.MeanSpearman)
	}
	if res.HeatmapASCII == "" {
		t.Fatal("missing heatmap rendering")
	}
}
