package experiments

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/tensor"
)

// The f32-vs-f64 parity smoke: the quickstart configuration (heterogeneous
// fleet, Proposed method, sync scheduler) run at both dtypes from the same
// seed must land within 0.02 mean accuracy. Models initialize from the same
// draw sequence (f32 weights are the f64 draws, rounded), so the runs
// differ only by accumulated rounding — the tolerance is the accuracy-level
// budget DESIGN.md §7 assigns to that rounding.
func TestF32ParitySmoke(t *testing.T) {
	acc64 := parityRun(t, tensor.F64)
	acc32 := parityRun(t, tensor.F32)
	if d := math.Abs(acc64 - acc32); d > 0.02 {
		t.Fatalf("f32 accuracy %.4f vs f64 %.4f: |Δ| = %.4f exceeds the 0.02 parity budget", acc32, acc64, d)
	}
}

// parityRun executes the quickstart configuration at one dtype and returns
// the final mean accuracy.
func parityRun(t *testing.T, dt tensor.DType) float64 {
	t.Helper()
	s := ScaleFromEnv(Tiny())
	s.Rounds = 3
	s.DType = dt
	factory, _, err := NewHeterogeneousFleet(Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Run(MethodProposed, Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return Final(hist).MeanAcc
}

// The bf16-vs-f32 parity smoke: bf16 storage computes in f32 and narrows
// parameters at mutation boundaries, so its accuracy budget relative to f32
// is 0.03 (DESIGN.md §12).
func TestBF16ParitySmoke(t *testing.T) {
	acc32 := parityRun(t, tensor.F32)
	accBF := parityRun(t, tensor.BF16)
	if d := math.Abs(acc32 - accBF); d > 0.03 {
		t.Fatalf("bf16 accuracy %.4f vs f32 %.4f: |Δ| = %.4f exceeds the 0.03 parity budget", accBF, acc32, d)
	}
}

// Every scheduler runs end to end at f32, deterministically.
func TestF32AllSchedulers(t *testing.T) {
	for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func() []fl.RoundMetrics {
				s := Tiny()
				s.DType = tensor.F32
				factory, _, err := NewHeterogeneousFleet(Fashion, data.Dirichlet, s.Clients, s)
				if err != nil {
					t.Fatal(err)
				}
				hist, err := RunScheduled(MethodProposed, Fashion, factory, s, 1.0,
					fl.SchedulerConfig{Kind: kind}, comm.Spec{})
				if err != nil {
					t.Fatal(err)
				}
				return hist
			}
			a, b := run(), run()
			if len(a) == 0 || len(a) != len(b) {
				t.Fatalf("histories: %d vs %d evaluation points", len(a), len(b))
			}
			for i := range a {
				if a[i].MeanAcc != b[i].MeanAcc || a[i].UpBytes != b[i].UpBytes {
					t.Fatalf("f32 %s run is not deterministic at round %d", kind, a[i].Round)
				}
				if math.IsNaN(a[i].MeanAcc) || a[i].MeanAcc < 0 || a[i].MeanAcc > 1 {
					t.Fatalf("invalid f32 accuracy %v", a[i].MeanAcc)
				}
			}
		})
	}
}

// The rotation fleet reproduces fedsim's -arch/-width composition: client i
// gets arches[i % len] at widths[i % len].
func TestRotationFleetComposition(t *testing.T) {
	s := Tiny()
	arches, err := ParseArchRotation("resnet, alexnet")
	if err != nil {
		t.Fatal(err)
	}
	widths, err := ParseWidthRotation("1,2")
	if err != nil {
		t.Fatal(err)
	}
	factory, _, err := NewRotationFleet(Fashion, data.Dirichlet, 4, s, arches, widths)
	if err != nil {
		t.Fatal(err)
	}
	clients := factory()
	want := []struct {
		arch  models.Arch
		width int
	}{
		{models.ArchResNet, 1}, {models.ArchAlexNet, 2},
		{models.ArchResNet, 1}, {models.ArchAlexNet, 2},
	}
	for i, c := range clients {
		if c.Model.Cfg.Arch != want[i].arch || c.Model.Cfg.Width != want[i].width {
			t.Fatalf("client %d: %v width %d, want %v width %d",
				i, c.Model.Cfg.Arch, c.Model.Cfg.Width, want[i].arch, want[i].width)
		}
	}
	// A rotation fleet must actually train.
	hist, err := Run(MethodProposed, Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("rotation fleet produced no metrics")
	}
}

func TestParseRotationsReject(t *testing.T) {
	if _, err := ParseArchRotation("resnet,warpdrive"); err == nil {
		t.Fatal("unknown architecture must be rejected")
	}
	if _, err := ParseWidthRotation("1,0"); err == nil {
		t.Fatal("width 0 must be rejected")
	}
	if _, err := ParseWidthRotation("two"); err == nil {
		t.Fatal("non-integer width must be rejected")
	}
	if _, _, err := NewRotationFleet(Fashion, data.Dirichlet, 2, Tiny(), nil, nil); err == nil {
		t.Fatal("empty rotation must be rejected")
	}
}
