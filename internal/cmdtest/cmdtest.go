// Package cmdtest builds and runs a main package end to end, so every
// binary under cmd/ and examples/ gets an exit-0 smoke test instead of
// `[no test files]`. Tests call Run from the package's own directory (the
// test working directory), which builds "." into a temporary binary and
// executes it.
package cmdtest

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Build compiles the main package at dir (relative to the test's working
// directory; "." for the package under test, "../other" for a sibling
// binary in a multi-process test) into a temporary binary and returns its
// path. Skips in -short mode or without a toolchain.
func Build(t *testing.T, dir string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("smoke test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), filepath.Base(dir)+".bin")
	if dir == "." {
		bin = filepath.Join(t.TempDir(), "smoke.bin")
	}
	build := exec.Command(goBin, "build", "-o", bin, dir)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", dir, err, out)
	}
	return bin
}

// Run builds the main package in the current directory and executes it with
// the given environment additions and arguments, failing the test on a
// non-zero exit. It returns combined stdout+stderr.
func Run(t *testing.T, env []string, args ...string) string {
	t.Helper()
	bin := Build(t, ".")
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

// RunErr is Run for invocations that must FAIL: it asserts the binary exits
// with the given non-zero code (validation and usage errors) and returns
// combined stdout+stderr.
func RunErr(t *testing.T, wantExit int, env []string, args ...string) string {
	t.Helper()
	bin := Build(t, ".")
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("%s %v: expected exit %d, got err=%v\n%s", bin, args, wantExit, err, out)
	}
	if exit.ExitCode() != wantExit {
		t.Fatalf("%s %v: exit %d, want %d\n%s", bin, args, exit.ExitCode(), wantExit, out)
	}
	return string(out)
}
