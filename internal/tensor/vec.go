package tensor

import (
	"math"
	"unsafe"
)

// Exported elementwise vector primitives for the layers' non-GEMM hot
// loops. Each has an AVX2 kernel per dtype (see vec_amd64.s) with a
// portable fallback; the vector bodies are element-independent (no
// reassociation), so results are bit-identical to the scalar loops at
// either width. These three cover the loops that profiling shows dominate
// a training step outside the GEMMs: activation masking and the col2im
// scatter-accumulate.

// VecAccumulate computes dst[i] += src[i] elementwise.
func VecAccumulate[F Float](dst, src []F) {
	if len(dst) != len(src) {
		panic("tensor: VecAccumulate length mismatch")
	}
	n := 0
	if useVec && len(dst) >= vecLanes[F]() {
		n = len(dst) &^ (vecLanes[F]() - 1)
		var z F
		if unsafe.Sizeof(z) == 4 {
			vecAdd32(p32(dst), p32(src), n)
		} else {
			vecAdd64(p64(dst), p64(src), n)
		}
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// VecReluForward computes out[i] = x[i] if x[i] > 0 else 0 (NaN maps to 0,
// matching the scalar comparison).
func VecReluForward[F Float](out, x []F) {
	if len(out) != len(x) {
		panic("tensor: VecReluForward length mismatch")
	}
	n := 0
	if useVec && len(x) >= vecLanes[F]() {
		n = len(x) &^ (vecLanes[F]() - 1)
		var z F
		if unsafe.Sizeof(z) == 4 {
			vecReluFwd32(p32(out), p32(x), n)
		} else {
			vecReluFwd64(p64(out), p64(x), n)
		}
	}
	for i := n; i < len(x); i++ {
		if v := x[i]; v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// VecReluBackward computes dx[i] = grad[i] if y[i] > 0 else 0, the ReLU
// gradient gate against the cached forward output.
func VecReluBackward[F Float](dx, grad, y []F) {
	if len(dx) != len(grad) || len(grad) != len(y) {
		panic("tensor: VecReluBackward length mismatch")
	}
	n := 0
	if useVec && len(y) >= vecLanes[F]() {
		n = len(y) &^ (vecLanes[F]() - 1)
		var z F
		if unsafe.Sizeof(z) == 4 {
			vecReluBwd32(p32(dx), p32(grad), p32(y), n)
		} else {
			vecReluBwd64(p64(dx), p64(grad), p64(y), n)
		}
	}
	for i := n; i < len(y); i++ {
		if y[i] > 0 {
			dx[i] = grad[i]
		} else {
			dx[i] = 0
		}
	}
}

// p32/p64 reinterpret a type-parameter slice's base pointer at its concrete
// width; callers guarantee the sizeof guard, exactly as Of does for tensors.
func p32[F Float](s []F) *float32 { return (*float32)(unsafe.Pointer(&s[0])) }

func p64[F Float](s []F) *float64 { return (*float64)(unsafe.Pointer(&s[0])) }

// vecLanes reports the AVX lane count for the element type; the compile-
// time-constant sizeof folds the branch away.
func vecLanes[F Float]() int {
	var z F
	if unsafe.Sizeof(z) == 4 {
		return 8
	}
	return 4
}

// SumAcc returns acc plus the sum of seg. The float64 instantiation keeps
// strict left-to-right accumulation (the bit-frozen reference order); the
// float32 fast path uses four partial accumulators for instruction-level
// parallelism, reassociating within the fast path's accuracy budget.
func SumAcc[F Float](acc F, seg []F) F {
	var z F
	if unsafe.Sizeof(z) == 4 && len(seg) >= 16 {
		if useVec {
			n := len(seg) &^ 7
			s := F(vecSum32(p32(seg), n))
			for _, v := range seg[n:] {
				s += v
			}
			return acc + s
		}
		var a0, a1, a2, a3 F
		i := 0
		for ; i+4 <= len(seg); i += 4 {
			a0 += seg[i]
			a1 += seg[i+1]
			a2 += seg[i+2]
			a3 += seg[i+3]
		}
		for ; i < len(seg); i++ {
			a0 += seg[i]
		}
		return acc + ((a0 + a1) + (a2 + a3))
	}
	for _, v := range seg {
		acc += v
	}
	return acc
}

// SqDiffAcc returns acc plus Σ (seg[i]-mean)², with the same per-dtype
// accumulation policy as SumAcc.
func SqDiffAcc[F Float](acc F, seg []F, mean F) F {
	var z F
	if unsafe.Sizeof(z) == 4 && len(seg) >= 16 {
		if useVec {
			n := len(seg) &^ 7
			sq := F(vecSqDiff32(p32(seg), n, float32(mean)))
			for _, v := range seg[n:] {
				d := v - mean
				sq += d * d
			}
			return acc + sq
		}
		var a0, a1, a2, a3 F
		i := 0
		for ; i+4 <= len(seg); i += 4 {
			d0 := seg[i] - mean
			d1 := seg[i+1] - mean
			d2 := seg[i+2] - mean
			d3 := seg[i+3] - mean
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
		}
		for ; i < len(seg); i++ {
			d := seg[i] - mean
			a0 += d * d
		}
		return acc + ((a0 + a1) + (a2 + a3))
	}
	for _, v := range seg {
		d := v - mean
		acc += d * d
	}
	return acc
}

// DotSumAcc accumulates Σ g[i] and Σ g[i]·x[i] in one pass (the batch-norm
// backward reductions), with the same per-dtype accumulation policy.
func DotSumAcc[F Float](sumAcc, dotAcc F, g, x []F) (F, F) {
	var z F
	if unsafe.Sizeof(z) == 4 && len(g) >= 16 {
		if useVec {
			n := len(g) &^ 7
			sv, dv := vecDotSum32(p32(g), p32(x), n)
			s, d := F(sv), F(dv)
			for i := n; i < len(g); i++ {
				s += g[i]
				d += g[i] * x[i]
			}
			return sumAcc + s, dotAcc + d
		}
		var s0, s1, d0, d1 F
		i := 0
		for ; i+2 <= len(g); i += 2 {
			s0 += g[i]
			d0 += g[i] * x[i]
			s1 += g[i+1]
			d1 += g[i+1] * x[i+1]
		}
		for ; i < len(g); i++ {
			s0 += g[i]
			d0 += g[i] * x[i]
		}
		return sumAcc + (s0 + s1), dotAcc + (d0 + d1)
	}
	for i, v := range g {
		sumAcc += v
		dotAcc += v * x[i]
	}
	return sumAcc, dotAcc
}

// CopyRows copies rows blocks of n elements with independent strides
// (in elements): dst[r·dstStride+i] = src[r·srcStride+i] — the
// im2col/panel-packing traffic. The fused kernels use plain vector moves
// with in-kernel scalar tails; masked moves (VMASKMOV) turned out to be
// slow on several virtualized microarchitectures.
func CopyRows[F Float](dst, src []F, rows, n, dstStride, srcStride int) {
	if rows <= 0 || n <= 0 {
		return
	}
	// Short spans are call-overhead bound: the fused kernel wins. Bulk spans
	// are bandwidth bound, where memmove's aligned wide moves win.
	es := int(unsafe.Sizeof(dst[0]))
	if useVec && n*es <= 256 {
		var z F
		if unsafe.Sizeof(z) == 4 {
			copyRows32(p32(dst), p32(src), rows, n, dstStride*es, srcStride*es)
		} else {
			copyRows64(p64(dst), p64(src), rows, n, dstStride*es, srcStride*es)
		}
		return
	}
	for r := 0; r < rows; r++ {
		copy(dst[r*dstStride:r*dstStride+n], src[r*srcStride:r*srcStride+n])
	}
}

// AccumulateRows is CopyRows with += instead of =: the col2im
// scatter-accumulate primitive.
func AccumulateRows[F Float](dst, src []F, rows, n, dstStride, srcStride int) {
	if rows <= 0 || n <= 0 {
		return
	}
	if useVec {
		es := int(unsafe.Sizeof(dst[0]))
		var z F
		if unsafe.Sizeof(z) == 4 {
			addRows32(p32(dst), p32(src), rows, n, dstStride*es, srcStride*es)
		} else {
			addRows64(p64(dst), p64(src), rows, n, dstStride*es, srcStride*es)
		}
		return
	}
	for r := 0; r < rows; r++ {
		VecAccumulate(dst[r*dstStride:r*dstStride+n], src[r*srcStride:r*srcStride+n])
	}
}

// BNNormalize computes xh[i] = (x[i]-mean)·inv and out[i] = g·xh[i] + b:
// the batch-norm normalization writes. Both dtypes run AVX kernels with the
// same sub/mul/mul/add rounding sequence as the scalar loop, so results are
// bit-identical to it — the elementwise form has no accumulation order, which
// keeps the float64 golden path frozen.
func BNNormalize[F Float](x, xh, out []F, mean, inv, g, b F) {
	var z F
	n := 0
	if useVec && len(x) >= 8 {
		if unsafe.Sizeof(z) == 4 {
			n = len(x) &^ 7
			bnNorm32(p32(x), p32(xh), p32(out), n, float32(mean), float32(inv), float32(g), float32(b))
		} else {
			n = len(x) &^ 3
			bnNorm64(p64(x), p64(xh), p64(out), n, float64(mean), float64(inv), float64(g), float64(b))
		}
	}
	for i := n; i < len(x); i++ {
		nv := (x[i] - mean) * inv
		xh[i] = nv
		out[i] = g*nv + b
	}
}

// BNGrad computes dst[i] = scale·(m·gy[i] − sumDy − xh[i]·sumDyXhat): the
// batch-norm input-gradient writes, with the same per-dtype policy as
// BNNormalize.
func BNGrad[F Float](gy, xh, dst []F, scale, m, sumDy, sumDyXhat F) {
	var z F
	n := 0
	if useVec && len(gy) >= 8 {
		if unsafe.Sizeof(z) == 4 {
			n = len(gy) &^ 7
			bnGrad32(p32(gy), p32(xh), p32(dst), n, float32(scale), float32(m), float32(sumDy), float32(sumDyXhat))
		} else {
			n = len(gy) &^ 3
			bnGrad64(p64(gy), p64(xh), p64(dst), n, float64(scale), float64(m), float64(sumDy), float64(sumDyXhat))
		}
	}
	for i := n; i < len(gy); i++ {
		dst[i] = scale * (m*gy[i] - sumDy - xh[i]*sumDyXhat)
	}
}

// AdamStep applies one bias-corrected Adam update over a parameter block:
// m = β1·m + (1-β1)·g, v = β2·v + (1-β2)·g², w -= lr·(m/c1)/(√(v/c2)+eps).
// The float64 instantiation is the scalar reference loop (bit-frozen); the
// float32 fast path runs the AVX kernel with a scalar tail.
func AdamStep[F Float](w, g, m, v []F, lr, beta1, beta2, eps, c1, c2 F) {
	var z F
	n := 0
	if useVec && len(w) >= 8 {
		if unsafe.Sizeof(z) == 4 {
			n = len(w) &^ 7
			adamStep32(p32(w), p32(g), p32(m), p32(v), n,
				float32(lr), float32(beta1), float32(1-beta1), float32(beta2), float32(1-beta2),
				float32(eps), float32(c1), float32(c2))
		} else {
			// The f64 kernel mirrors the scalar rounding sequence exactly
			// (separate multiplies, correctly rounded VSQRTPD), so the
			// golden f64 path stays bit-frozen.
			n = len(w) &^ 3
			adamStep64(p64(w), p64(g), p64(m), p64(v), n,
				float64(lr), float64(beta1), float64(1-beta1), float64(beta2), float64(1-beta2),
				float64(eps), float64(c1), float64(c2))
		}
	}
	for j := n; j < len(w); j++ {
		m[j] = beta1*m[j] + (1-beta1)*g[j]
		v[j] = beta2*v[j] + (1-beta2)*g[j]*g[j]
		mh := m[j] / c1
		vh := v[j] / c2
		w[j] -= lr * mh / (F(math.Sqrt(float64(vh))) + eps)
	}
}

// AddScalarInto computes dst[i] = src[i] + c, the bias-fused scatter of the
// convolution forward. Element-independent adds: the float32 AVX kernel is
// bit-identical to the scalar loop; float64 stays on the scalar reference.
func AddScalarInto[F Float](dst, src []F, c F) {
	var z F
	n := 0
	if useVec && len(src) >= 8 {
		if unsafe.Sizeof(z) == 4 {
			n = len(src) &^ 7
			addScalar32(p32(dst), p32(src), n, float32(c))
		} else {
			n = len(src) &^ 3
			addScalar64(p64(dst), p64(src), n, float64(c))
		}
	}
	for i := n; i < len(src); i++ {
		dst[i] = src[i] + c
	}
}
