package tensor

import (
	"sync"
	"unsafe"
)

// parallelThreshold is the number of scalar multiply-adds below which the
// GEMM drivers run single-threaded; tiny products are faster without any
// dispatch overhead.
const parallelThreshold = 64 * 1024

// Cache-blocking parameters of the A·B kernel. B is packed into panels of
// gemmKC×gemmNR elements (L1-resident) that a register tile of gemmMR rows
// streams through. gemmMR×gemmNR accumulators plus the panel and A operands
// stay within the amd64 register budget.
const (
	gemmKC = 256
	gemmMR = 2
	gemmNR = 4
)

// fmaNR is the packed-panel width of the AVX2+FMA micro-kernels: 8 lanes,
// which is two 4-lane vectors of float64 (the 4×8 kernel) or one 8-lane
// vector of float32 (the 8×8 kernel); see gemm_amd64.go. It is declared
// here so the shared panel scratch can size for either kernel on every
// platform.
const fmaNR = 8

// avx512NR is the packed-panel width of the AVX-512 float32 micro-kernels:
// 16 lanes, one 512-bit ZMM vector per panel row (see gemm_avx512_amd64.go).
// The f64 AVX-512 kernel keeps the 8-wide panel (8 float64 = one ZMM), so
// only the float32 scratch sizes for this width.
const avx512NR = 16

// avx51232For reports whether the float32 AVX-512 kernels should carry a
// product whose packed-panel dimension is n. Below one full 16-lane panel
// the wider tile buys nothing and its packing/tail overhead costs ~30% on
// the small dense products of a training step, so narrow products stay on
// the 8-wide AVX2 tier. Purely a speed choice: every tier produces
// bit-identical results (the differential harness enforces it), so the
// crossover can move without touching any golden. The f64 kernels keep the
// FMA tier's 8-wide panel and have no such penalty.
func avx51232For(n int) bool { return useAVX51232 && n >= avx512NR }

// panelScratch64/panelScratch32 recycle the packed-B panels across GEMM
// calls so the blocked kernels allocate nothing in steady state. Panels are
// sized for the widest kernel of their dtype; narrower kernels reslice.
var panelScratch64 = sync.Pool{
	New: func() any {
		s := make([]float64, gemmKC*fmaNR)
		return &s
	},
}

var panelScratch32 = sync.Pool{
	New: func() any {
		s := make([]float32, gemmKC*avx512NR)
		return &s
	},
}

// getPanel fetches the panel scratch for the instantiated element type. The
// sync.Pool interface already holds a pointer, so the round trip performs no
// boxing allocation.
func getPanel[F Float]() *[]F {
	var z F
	if unsafe.Sizeof(z) == 4 {
		return panelScratch32.Get().(*[]F)
	}
	return panelScratch64.Get().(*[]F)
}

func putPanel[F Float](p *[]F) {
	var z F
	if unsafe.Sizeof(z) == 4 {
		panelScratch32.Put(any(p).(*[]float32))
		return
	}
	panelScratch64.Put(any(p).(*[]float64))
}

// gemmShards picks the shard count for a kernel of the given output rows and
// total multiply-add count.
func gemmShards(rows, work int) int {
	if work < parallelThreshold || poolWorkers < 2 || rows < 2 {
		return 1
	}
	s := poolWorkers
	if limit := work / (parallelThreshold / 2); s > limit {
		s = limit
	}
	if s > rows {
		s = rows
	}
	if s < 1 {
		s = 1
	}
	return s
}

// gemmKernel is one sharded range kernel: rows [lo,hi) of one of the three
// product forms over flat slices.
type gemmKernel[F Float] func(out, a, b []F, k, n, lo, hi int, acc bool)

// shardRanges splits [0,rows) into ranges whose boundaries are multiples of
// the widest micro-kernel tile height (fmaNR covers the 8-row f32, 4-row
// f64/f32 and 2-row portable tiles alike). Tile-aligned boundaries make a
// row's tile membership — and therefore its FMA-vs-tail rounding — a
// function of the row index alone, so GEMM results are bit-identical at
// every worker count and shard layout, not merely at every concurrency cap.
func shardRanges(rows, shards int) (chunk, nShards int) {
	chunk = (rows + shards - 1) / shards
	chunk = (chunk + fmaNR - 1) &^ (fmaNR - 1)
	nShards = (rows + chunk - 1) / chunk
	return chunk, nShards
}

// runSharded executes a range kernel over [0,rows) in tile-aligned shards.
func runSharded[F Float](kernel gemmKernel[F], out, a, b []F, k, n, rows, shards int, acc bool) {
	if shards <= 1 {
		kernel(out, a, b, k, n, 0, rows, acc)
		return
	}
	chunk, nShards := shardRanges(rows, shards)
	if nShards <= 1 {
		kernel(out, a, b, k, n, 0, rows, acc)
		return
	}
	ParallelSharded(nShards, nShards, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > rows {
				hi = rows
			}
			kernel(out, a, b, k, n, lo, hi, acc)
		}
	})
}

// MatMul returns a·b for rank-2 tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	if a.Shape[1] != b.Shape[0] {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := NewOf(a.DT, a.Shape[0], b.Shape[1])
	gemmNN(out, a, b, false)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. out must be m×n and
// may not alias a or b.
func MatMulInto(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	gemmNN(out, a, b, false)
}

// gemmNN computes out = a·b (acc=false) or out += a·b (acc=true) with a
// cache-blocked, register-tiled kernel, sharding output rows across the
// worker pool. Every output element accumulates its k terms in ascending
// order regardless of blocking, so results match the naive kernel. The
// operands' common dtype selects the kernel instantiation (and, on amd64,
// the 4×8 f64 or 8×8 f32 FMA micro-kernel).
func gemmNN(out, a, b *Tensor, acc bool) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if n == 0 || m == 0 {
		return
	}
	if k == 0 {
		if !acc {
			out.Zero()
		}
		return
	}
	shards := gemmShards(m, m*k*n)
	if out.DT.Backing() == F32 {
		kernel := gemmNNRange[float32]
		if avx51232For(n) {
			kernel = gemmNNRangeAVX51232
		} else if useFMA32 {
			kernel = gemmNNRangeFMA32
		}
		runSharded(kernel, Of[float32](out), Of[float32](a), Of[float32](b), k, n, m, shards, acc)
		return
	}
	kernel := gemmNNRange[float64]
	if useAVX512 {
		kernel = gemmNNRangeAVX512
	} else if useFMA {
		kernel = gemmNNRangeFMA
	}
	runSharded(kernel, out.Data, Of[float64](a), Of[float64](b), k, n, m, shards, acc)
}

// gemmNNRange computes rows [lo,hi) of out = a·b. For each k-block it packs
// a gemmNR-wide B panel once and streams gemmMR-row register tiles through
// it; the panel is reused by every row tile of the shard.
func gemmNNRange[F Float](out, a, b []F, k, n, lo, hi int, acc bool) {
	pp := getPanel[F]()
	panel := *pp
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += gemmNR {
			jw := n - j0
			if jw > gemmNR {
				jw = gemmNR
			}
			bp := panel[:pk*gemmNR]
			if jw == gemmNR {
				for p := 0; p < pk; p++ {
					brow := b[(pc+p)*n+j0 : (pc+p)*n+j0+gemmNR]
					q := p * gemmNR
					bp[q] = brow[0]
					bp[q+1] = brow[1]
					bp[q+2] = brow[2]
					bp[q+3] = brow[3]
				}
			} else {
				for p := 0; p < pk; p++ {
					brow := b[(pc+p)*n+j0 : (pc+p)*n+j0+jw]
					q := p * gemmNR
					for j := 0; j < gemmNR; j++ {
						if j < jw {
							bp[q+j] = brow[j]
						} else {
							bp[q+j] = 0
						}
					}
				}
			}
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				a0 := a[i*k+pc : i*k+pc+pk]
				a1 := a[(i+1)*k+pc:][:pk]
				o0 := out[i*n+j0 : i*n+j0+jw]
				o1 := out[(i+1)*n+j0 : (i+1)*n+j0+jw]
				var c00, c01, c02, c03, c10, c11, c12, c13 F
				if load {
					c00 = o0[0]
					c10 = o1[0]
					if jw > 1 {
						c01, c11 = o0[1], o1[1]
					}
					if jw > 2 {
						c02, c12 = o0[2], o1[2]
					}
					if jw > 3 {
						c03, c13 = o0[3], o1[3]
					}
				}
				for p := 0; p < pk; p++ {
					bq := bp[4*p : 4*p+4 : 4*p+4]
					av0 := a0[p]
					av1 := a1[p]
					b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
					c00 += av0 * b0
					c01 += av0 * b1
					c02 += av0 * b2
					c03 += av0 * b3
					c10 += av1 * b0
					c11 += av1 * b1
					c12 += av1 * b2
					c13 += av1 * b3
				}
				o0[0] = c00
				o1[0] = c10
				if jw > 1 {
					o0[1], o1[1] = c01, c11
				}
				if jw > 2 {
					o0[2], o1[2] = c02, c12
				}
				if jw > 3 {
					o0[3], o1[3] = c03, c13
				}
			}
			for ; i < hi; i++ {
				a0 := a[i*k+pc : i*k+pc+pk]
				o0 := out[i*n+j0 : i*n+j0+jw]
				var c0, c1, c2, c3 F
				if load {
					c0 = o0[0]
					if jw > 1 {
						c1 = o0[1]
					}
					if jw > 2 {
						c2 = o0[2]
					}
					if jw > 3 {
						c3 = o0[3]
					}
				}
				for p := 0; p < pk; p++ {
					bq := bp[4*p : 4*p+4 : 4*p+4]
					av := a0[p]
					c0 += av * bq[0]
					c1 += av * bq[1]
					c2 += av * bq[2]
					c3 += av * bq[3]
				}
				o0[0] = c0
				if jw > 1 {
					o0[1] = c1
				}
				if jw > 2 {
					o0[2] = c2
				}
				if jw > 3 {
					o0[3] = c3
				}
			}
		}
	}
	putPanel(pp)
}

// MatMulATB returns aᵀ·b without materializing the transpose of a.
// a is m×k, b is m×n; the result is k×n.
func MatMulATB(a, b *Tensor) *Tensor {
	out := NewOf(a.DT, a.Shape[1], b.Shape[1])
	gemmAT(out, a, b, true)
	return out
}

// MatMulATBInto computes out = aᵀ·b, reusing out's storage (k×n).
func MatMulATBInto(out, a, b *Tensor) { gemmAT(out, a, b, false) }

// MatMulATBAcc computes out += aᵀ·b, accumulating into out (k×n). It lets
// backward passes accumulate weight gradients without a scratch product.
func MatMulATBAcc(out, a, b *Tensor) { gemmAT(out, a, b, true) }

func gemmAT(out, a, b *Tensor, acc bool) {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != m {
		panic("tensor: MatMulATB leading dimension mismatch")
	}
	n := b.Shape[1]
	if out.Shape[0] != k || out.Shape[1] != n {
		panic("tensor: MatMulATB output shape mismatch")
	}
	if k == 0 || n == 0 {
		return
	}
	shards := gemmShards(k, m*k*n)
	if out.DT.Backing() == F32 {
		kernel := gemmATRange[float32]
		if avx51232For(n) {
			kernel = gemmATRangeAVX51232
		} else if useFMA32 {
			kernel = gemmATRangeFMA32
		}
		runShardedAT(kernel, Of[float32](out), Of[float32](a), Of[float32](b), m, k, n, shards, acc)
		return
	}
	kernel := gemmATRange[float64]
	if useAVX512 {
		kernel = gemmATRangeAVX512
	} else if useFMA {
		kernel = gemmATRangeFMA
	}
	runShardedAT(kernel, out.Data, Of[float64](a), Of[float64](b), m, k, n, shards, acc)
}

// runShardedAT executes an Aᵀ·B range kernel (whose reduction length m rides
// along) over output rows [0,k), in tile-aligned shards like runSharded.
func runShardedAT[F Float](kernel func(out, a, b []F, m, k, n, plo, phi int, acc bool), out, a, b []F, m, k, n, shards int, acc bool) {
	if shards <= 1 {
		kernel(out, a, b, m, k, n, 0, k, acc)
		return
	}
	chunk, nShards := shardRanges(k, shards)
	if nShards <= 1 {
		kernel(out, a, b, m, k, n, 0, k, acc)
		return
	}
	ParallelSharded(nShards, nShards, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > k {
				hi = k
			}
			kernel(out, a, b, m, k, n, lo, hi, acc)
		}
	})
}

// gemmATRange computes output rows [plo,phi) of out = aᵀ·b by streaming b
// row-wise and scattering each a[i,p] as a 4-row axpy block.
func gemmATRange[F Float](out, a, b []F, m, k, n, plo, phi int, acc bool) {
	if !acc {
		seg := out[plo*n : phi*n]
		for i := range seg {
			seg[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		brow := b[i*n : i*n+n]
		p := plo
		for ; p+4 <= phi; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			o0 := out[p*n : p*n+n]
			o1 := out[(p+1)*n : (p+1)*n+n]
			o2 := out[(p+2)*n : (p+2)*n+n]
			o3 := out[(p+3)*n : (p+3)*n+n]
			for j, bv := range brow {
				o0[j] += a0 * bv
				o1[j] += a1 * bv
				o2[j] += a2 * bv
				o3[j] += a3 * bv
			}
		}
		for ; p < phi; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			o := out[p*n : p*n+n]
			for j, bv := range brow {
				o[j] += av * bv
			}
		}
	}
}

// MatMulABT returns a·bᵀ without materializing the transpose of b.
// a is m×k, b is n×k; the result is m×n.
func MatMulABT(a, b *Tensor) *Tensor {
	out := NewOf(a.DT, a.Shape[0], b.Shape[0])
	gemmABT(out, a, b, true)
	return out
}

// MatMulABTInto computes out = a·bᵀ, reusing out's storage (m×n).
func MatMulABTInto(out, a, b *Tensor) { gemmABT(out, a, b, false) }

// MatMulABTAcc computes out += a·bᵀ, accumulating into out (m×n).
func MatMulABTAcc(out, a, b *Tensor) { gemmABT(out, a, b, true) }

func gemmABT(out, a, b *Tensor, acc bool) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic("tensor: MatMulABT trailing dimension mismatch")
	}
	if out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulABT output shape mismatch")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			out.Zero()
		}
		return
	}
	shards := gemmShards(m, m*k*n)
	if out.DT.Backing() == F32 {
		kernel := gemmABTRange[float32]
		if avx51232For(n) {
			kernel = gemmABTRangeAVX51232
		} else if useFMA32 {
			kernel = gemmABTRangeFMA32
		}
		runSharded(kernel, Of[float32](out), Of[float32](a), Of[float32](b), k, n, m, shards, acc)
		return
	}
	kernel := gemmABTRange[float64]
	if useAVX512 {
		kernel = gemmABTRangeAVX512
	} else if useFMA {
		kernel = gemmABTRangeFMA
	}
	runSharded(kernel, out.Data, Of[float64](a), Of[float64](b), k, n, m, shards, acc)
}

// gemmABTRange computes rows [ilo,ihi) of out = a·bᵀ as 2×4 register tiles
// of dot products, reading each pair of a rows and quad of b rows once.
func gemmABTRange[F Float](out, a, b []F, k, n, ilo, ihi int, acc bool) {
	i := ilo
	for ; i+2 <= ihi; i += 2 {
		a0 := a[i*k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		o0 := out[i*n : i*n+n]
		o1 := out[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : j*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var c00, c01, c02, c03, c10, c11, c12, c13 F
			for p := 0; p < k; p++ {
				av0, av1 := a0[p], a1[p]
				bv := b0[p]
				c00 += av0 * bv
				c10 += av1 * bv
				bv = b1[p]
				c01 += av0 * bv
				c11 += av1 * bv
				bv = b2[p]
				c02 += av0 * bv
				c12 += av1 * bv
				bv = b3[p]
				c03 += av0 * bv
				c13 += av1 * bv
			}
			if acc {
				o0[j] += c00
				o0[j+1] += c01
				o0[j+2] += c02
				o0[j+3] += c03
				o1[j] += c10
				o1[j+1] += c11
				o1[j+2] += c12
				o1[j+3] += c13
			} else {
				o0[j], o0[j+1], o0[j+2], o0[j+3] = c00, c01, c02, c03
				o1[j], o1[j+1], o1[j+2], o1[j+3] = c10, c11, c12, c13
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var c0, c1 F
			for p, bv := range brow {
				c0 += a0[p] * bv
				c1 += a1[p] * bv
			}
			if acc {
				o0[j] += c0
				o1[j] += c1
			} else {
				o0[j] = c0
				o1[j] = c1
			}
		}
	}
	for ; i < ihi; i++ {
		a0 := a[i*k : i*k+k]
		o0 := out[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var c0 F
			for p, bv := range brow {
				c0 += a0[p] * bv
			}
			if acc {
				o0[j] += c0
			} else {
				o0[j] = c0
			}
		}
	}
}
