package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of scalar multiply-adds below which MatMul
// runs single-threaded; tiny products are faster without goroutine overhead.
const parallelThreshold = 64 * 1024

// MatMul returns a·b for rank-2 tensors a (m×k) and b (k×n). Rows of the
// output are sharded across a GOMAXPROCS-sized worker pool when the product
// is large enough to amortize the scheduling cost.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := New(m, n)
	matMulInto(out, a, b, m, k, n)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. out must be m×n.
func MatMulInto(out, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || out.Shape[0] != m || out.Shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	out.Zero()
	matMulInto(out, a, b, m, k, n)
}

func matMulInto(out, a, b *Tensor, m, k, n int) {
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m < 2 {
		matMulRows(out, a, b, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of out = a·b with an ikj loop order that
// streams b row-wise for cache friendliness.
func matMulRows(out, a, b *Tensor, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b without materializing the transpose of a.
// a is m×k, b is m×n; the result is k×n.
func MatMulATB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != m {
		panic("tensor: MatMulATB leading dimension mismatch")
	}
	n := b.Shape[1]
	out := New(k, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		brow := b.Data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ without materializing the transpose of b.
// a is m×k, b is n×k; the result is m×n.
func MatMulABT(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic("tensor: MatMulABT trailing dimension mismatch")
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < parallelThreshold || workers < 2 || m < 2 {
		matMulABTRows(out, a, b, 0, m, k, n)
		return out
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulABTRows(out, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulABTRows(out, a, b *Tensor, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}
