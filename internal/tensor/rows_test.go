package tensor

import (
	"math/rand"
	"testing"
)

// CopyRows/AccumulateRows must match the portable row loops bit for bit at
// every span length (full vectors, masked tails, sub-lane spans).
func TestRowKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 11, 12, 16, 23, 144} {
		rows, dStr, sStr := 5, n+7, n+3
		src64 := make([]float64, rows*sStr+n)
		for i := range src64 {
			src64[i] = rng.NormFloat64()
		}
		want := make([]float64, rows*dStr+n)
		got := make([]float64, rows*dStr+n)
		for i := range want {
			want[i] = rng.NormFloat64()
			got[i] = want[i]
		}
		for r := 0; r < rows; r++ {
			copy(want[r*dStr:r*dStr+n], src64[r*sStr:r*sStr+n])
		}
		CopyRows(got, src64, rows, n, dStr, sStr)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("CopyRows64 n=%d differs at %d", n, i)
			}
		}
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				want[r*dStr+i] += src64[r*sStr+i]
			}
		}
		AccumulateRows(got, src64, rows, n, dStr, sStr)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("AccumulateRows64 n=%d differs at %d", n, i)
			}
		}

		src32 := make([]float32, rows*sStr+n)
		for i := range src32 {
			src32[i] = float32(rng.NormFloat64())
		}
		w32 := make([]float32, rows*dStr+n)
		g32 := make([]float32, rows*dStr+n)
		for i := range w32 {
			w32[i] = float32(rng.NormFloat64())
			g32[i] = w32[i]
		}
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				w32[r*dStr+i] += src32[r*sStr+i]
			}
		}
		AccumulateRows(g32, src32, rows, n, dStr, sStr)
		for i := range w32 {
			if w32[i] != g32[i] {
				t.Fatalf("AccumulateRows32 n=%d differs at %d", n, i)
			}
		}
		CopyRows(g32, src32, rows, n, dStr, sStr)
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				if g32[r*dStr+i] != src32[r*sStr+i] {
					t.Fatalf("CopyRows32 n=%d differs at row %d col %d", n, r, i)
				}
			}
		}
	}
}
