package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// CopyRows/AccumulateRows must match the portable row loops bit for bit at
// every span length (full vectors, masked tails, sub-lane spans).
func TestRowKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 11, 12, 16, 23, 144} {
		rows, dStr, sStr := 5, n+7, n+3
		src64 := make([]float64, rows*sStr+n)
		for i := range src64 {
			src64[i] = rng.NormFloat64()
		}
		want := make([]float64, rows*dStr+n)
		got := make([]float64, rows*dStr+n)
		for i := range want {
			want[i] = rng.NormFloat64()
			got[i] = want[i]
		}
		for r := 0; r < rows; r++ {
			copy(want[r*dStr:r*dStr+n], src64[r*sStr:r*sStr+n])
		}
		CopyRows(got, src64, rows, n, dStr, sStr)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("CopyRows64 n=%d differs at %d", n, i)
			}
		}
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				want[r*dStr+i] += src64[r*sStr+i]
			}
		}
		AccumulateRows(got, src64, rows, n, dStr, sStr)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("AccumulateRows64 n=%d differs at %d", n, i)
			}
		}

		src32 := make([]float32, rows*sStr+n)
		for i := range src32 {
			src32[i] = float32(rng.NormFloat64())
		}
		w32 := make([]float32, rows*dStr+n)
		g32 := make([]float32, rows*dStr+n)
		for i := range w32 {
			w32[i] = float32(rng.NormFloat64())
			g32[i] = w32[i]
		}
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				w32[r*dStr+i] += src32[r*sStr+i]
			}
		}
		AccumulateRows(g32, src32, rows, n, dStr, sStr)
		for i := range w32 {
			if w32[i] != g32[i] {
				t.Fatalf("AccumulateRows32 n=%d differs at %d", n, i)
			}
		}
		CopyRows(g32, src32, rows, n, dStr, sStr)
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				if g32[r*dStr+i] != src32[r*sStr+i] {
					t.Fatalf("CopyRows32 n=%d differs at row %d col %d", n, r, i)
				}
			}
		}
	}
}

// BNNormalize/BNGrad must match the scalar reference loops bit for bit at
// both dtypes and every span length (full vectors, tails, sub-lane spans):
// the float64 instantiation is the golden path and its bits are frozen.
func TestBNKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(n int) {
		x64 := make([]float64, n)
		gy64 := make([]float64, n)
		for i := range x64 {
			x64[i] = rng.NormFloat64()
			gy64[i] = rng.NormFloat64()
		}
		mean, inv, g, b := rng.NormFloat64(), rng.Float64()+0.5, rng.NormFloat64(), rng.NormFloat64()
		scale, m, sDy, sDyXh := rng.Float64(), float64(n), rng.NormFloat64(), rng.NormFloat64()

		runDT := func(xs, gys, xhWant, outWant, dstWant, xhGot, outGot, dstGot any) {
			switch x := xs.(type) {
			case []float64:
				xh, out, dst := xhWant.([]float64), outWant.([]float64), dstWant.([]float64)
				for i, v := range x {
					nv := (v - mean) * inv
					xh[i] = nv
					out[i] = g*nv + b
					dst[i] = scale * (m*gys.([]float64)[i] - sDy - nv*sDyXh)
				}
				BNNormalize(x, xhGot.([]float64), outGot.([]float64), mean, inv, g, b)
				BNGrad(gys.([]float64), xhGot.([]float64), dstGot.([]float64), scale, m, sDy, sDyXh)
			case []float32:
				xh, out, dst := xhWant.([]float32), outWant.([]float32), dstWant.([]float32)
				m32, mean32, inv32, g32, b32 := float32(m), float32(mean), float32(inv), float32(g), float32(b)
				scale32, sDy32, sDyXh32 := float32(scale), float32(sDy), float32(sDyXh)
				for i, v := range x {
					nv := (v - mean32) * inv32
					xh[i] = nv
					out[i] = g32*nv + b32
					dst[i] = scale32 * (m32*gys.([]float32)[i] - sDy32 - nv*sDyXh32)
				}
				BNNormalize(x, xhGot.([]float32), outGot.([]float32), mean32, inv32, g32, b32)
				BNGrad(gys.([]float32), xhGot.([]float32), dstGot.([]float32), scale32, m32, sDy32, sDyXh32)
			}
		}

		xhW, outW, dstW := make([]float64, n), make([]float64, n), make([]float64, n)
		xhG, outG, dstG := make([]float64, n), make([]float64, n), make([]float64, n)
		runDT(x64, gy64, xhW, outW, dstW, xhG, outG, dstG)
		for i := 0; i < n; i++ {
			if xhW[i] != xhG[i] || outW[i] != outG[i] || dstW[i] != dstG[i] {
				t.Fatalf("f64 BN kernel n=%d differs at %d", n, i)
			}
		}

		x32, gy32 := make([]float32, n), make([]float32, n)
		for i := range x32 {
			x32[i] = float32(x64[i])
			gy32[i] = float32(gy64[i])
		}
		xhW32, outW32, dstW32 := make([]float32, n), make([]float32, n), make([]float32, n)
		xhG32, outG32, dstG32 := make([]float32, n), make([]float32, n), make([]float32, n)
		runDT(x32, gy32, xhW32, outW32, dstW32, xhG32, outG32, dstG32)
		for i := 0; i < n; i++ {
			if xhW32[i] != xhG32[i] || outW32[i] != outG32[i] || dstW32[i] != dstG32[i] {
				t.Fatalf("f32 BN kernel n=%d differs at %d", n, i)
			}
		}
	}
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 32, 144, 1153} {
		check(n)
	}
}

// TestAdamStep64MatchesScalar locks the vectorized f64 Adam kernel to the
// scalar update bit-for-bit: the kernel mirrors the scalar rounding sequence
// (separate multiplies, correctly rounded sqrt and divides), so the f64
// golden path stays frozen. The f32 tier is allowed an ulp of sqrt drift and
// is checked to a tolerance instead.
func TestAdamStep64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 32, 144, 1153} {
		w := make([]float64, n)
		g := make([]float64, n)
		m := make([]float64, n)
		v := make([]float64, n)
		wantW := make([]float64, n)
		wantM := make([]float64, n)
		wantV := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
			m[i] = rng.NormFloat64()
			v[i] = rng.Float64() // second moment stays non-negative
			wantW[i], wantM[i], wantV[i] = w[i], m[i], v[i]
		}
		lr, b1, b2, eps := 1e-3, 0.9, 0.999, 1e-8
		c1, c2 := 1-math.Pow(b1, 3), 1-math.Pow(b2, 3)
		for j := 0; j < n; j++ {
			wantM[j] = b1*wantM[j] + (1-b1)*g[j]
			wantV[j] = b2*wantV[j] + (1-b2)*g[j]*g[j]
			mh := wantM[j] / c1
			vh := wantV[j] / c2
			wantW[j] -= lr * mh / (math.Sqrt(vh) + eps)
		}
		AdamStep(w, g, m, v, lr, b1, b2, eps, c1, c2)
		for j := 0; j < n; j++ {
			if w[j] != wantW[j] || m[j] != wantM[j] || v[j] != wantV[j] {
				t.Fatalf("n=%d elem %d: got (w=%v m=%v v=%v) want (w=%v m=%v v=%v)",
					n, j, w[j], m[j], v[j], wantW[j], wantM[j], wantV[j])
			}
		}
	}
}

// TestAddScalarIntoMatchesScalar locks both dtypes of the broadcast-add
// kernel to the scalar loop bit-for-bit (element-independent adds).
func TestAddScalarIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 144, 1153} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		c := rng.NormFloat64()
		dst := make([]float64, n)
		AddScalarInto(dst, src, c)
		for i := range src {
			if dst[i] != src[i]+c {
				t.Fatalf("f64 n=%d elem %d: got %v want %v", n, i, dst[i], src[i]+c)
			}
		}
		src32 := make([]float32, n)
		for i := range src32 {
			src32[i] = float32(src[i])
		}
		dst32 := make([]float32, n)
		AddScalarInto(dst32, src32, float32(c))
		for i := range src32 {
			if dst32[i] != src32[i]+float32(c) {
				t.Fatalf("f32 n=%d elem %d: got %v want %v", n, i, dst32[i], src32[i]+float32(c))
			}
		}
	}
}
