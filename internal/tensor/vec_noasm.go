//go:build !amd64

package tensor

// Non-amd64 builds take the portable scalar loops in vec.go.
const useVec = false

func vecAdd64(dst, src *float64, n int)        { panic("tensor: vector kernel unavailable") }
func vecAdd32(dst, src *float32, n int)        { panic("tensor: vector kernel unavailable") }
func vecReluFwd64(out, x *float64, n int)      { panic("tensor: vector kernel unavailable") }
func vecReluFwd32(out, x *float32, n int)      { panic("tensor: vector kernel unavailable") }
func vecReluBwd64(dx, grad, y *float64, n int) { panic("tensor: vector kernel unavailable") }
func vecReluBwd32(dx, grad, y *float32, n int) { panic("tensor: vector kernel unavailable") }

func fmaMicro4x8f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int) {
	panic("tensor: FMA kernel unavailable")
}

func transpose8x8f32(dst, src *float32, srcStride int) {
	panic("tensor: vector kernel unavailable")
}

func vecSum32(x *float32, n int) float32 { panic("tensor: vector kernel unavailable") }

func vecSqDiff32(x *float32, n int, mean float32) float32 {
	panic("tensor: vector kernel unavailable")
}

func vecDotSum32(gp, x *float32, n int) (s, d float32) {
	panic("tensor: vector kernel unavailable")
}

func bnNorm32(x, xh, out *float32, n int, mean, inv, gm, b float32) {
	panic("tensor: vector kernel unavailable")
}

func bnGrad32(gy, xh, dst *float32, n int, scale, m, sumDy, sumDyXhat float32) {
	panic("tensor: vector kernel unavailable")
}

func bnNorm64(x, xh, out *float64, n int, mean, inv, gm, b float64) {
	panic("tensor: vector kernel unavailable")
}

func bnGrad64(gy, xh, dst *float64, n int, scale, m, sumDy, sumDyXhat float64) {
	panic("tensor: vector kernel unavailable")
}

func adamStep32(w, gp, m, v *float32, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float32) {
	panic("tensor: vector kernel unavailable")
}

func addScalar32(dst, src *float32, n int, c float32) {
	panic("tensor: vector kernel unavailable")
}

func adamStep64(w, gp, m, v *float64, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float64) {
	panic("tensor: vector kernel unavailable")
}

func addScalar64(dst, src *float64, n int, c float64) {
	panic("tensor: vector kernel unavailable")
}

func addRows32(dst, src *float32, rows, n, dstStride, srcStride int) {
	panic("tensor: vector kernel unavailable")
}

func addRows64(dst, src *float64, rows, n, dstStride, srcStride int) {
	panic("tensor: vector kernel unavailable")
}

func copyRows32(dst, src *float32, rows, n, dstStride, srcStride int) {
	panic("tensor: vector kernel unavailable")
}

func copyRows64(dst, src *float64, rows, n, dstStride, srcStride int) {
	panic("tensor: vector kernel unavailable")
}
