// Package tensor implements dense row-major float64 tensors and the
// numerical kernels (parallel matrix multiplication, elementwise operations,
// row-wise reductions) that the neural-network layers in internal/nn build
// on. It is deliberately small: only the operations the FedClassAvg
// reproduction needs, implemented with the Go standard library.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major tensor. The zero value is an empty tensor;
// use New, FromSlice or the fill helpers to create usable values.
type Tensor struct {
	Data  []float64
	Shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			// A plain panic string keeps the shape slice from escaping, so
			// callers passing literal dimensions stay allocation-free.
			panic("tensor: negative dimension in shape")
		}
		n *= s
	}
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it must have exactly the number of elements the shape implies.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Rows returns the leading dimension of a rank-2 tensor.
func (t *Tensor) Rows() int { return t.Shape[0] }

// Cols returns the trailing dimension of a rank-2 tensor.
func (t *Tensor) Cols() int { return t.Shape[1] }

// At returns the element of a rank-2 tensor at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Shape[1]+j] }

// Set assigns the element of a rank-2 tensor at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Shape[1]+j] = v }

// Row returns a view (not a copy) of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float64 {
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Data: t.Data, Shape: append([]int(nil), shape...)}
}

// Zero overwrites every element with 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill overwrites every element with v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandn fills with N(0, std²) samples from rng.
func (t *Tensor) FillRandn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// FillUniform fills with U(lo, hi) samples from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// AddInPlace computes t += o elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace computes t -= o elementwise.
func (t *Tensor) SubInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: SubInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// ScaleInPlace computes t *= a elementwise.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AxpyInPlace computes t += a*o elementwise.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AxpyInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// MulInPlace computes t *= o elementwise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: MulInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// CopyFrom overwrites t's elements with o's (sizes must match).
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, o.Data)
}

// AddInto computes dst = a + b elementwise without allocating.
func AddInto(dst, a, b *Tensor) {
	if len(dst.Data) != len(a.Data) || len(a.Data) != len(b.Data) {
		panic("tensor: AddInto size mismatch")
	}
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
}

// SubInto computes dst = a - b elementwise without allocating.
func SubInto(dst, a, b *Tensor) {
	if len(dst.Data) != len(a.Data) || len(a.Data) != len(b.Data) {
		panic("tensor: SubInto size mismatch")
	}
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v - bd[i]
	}
}

// MulInto computes dst = a ⊙ b (Hadamard product) without allocating.
func MulInto(dst, a, b *Tensor) {
	if len(dst.Data) != len(a.Data) || len(a.Data) != len(b.Data) {
		panic("tensor: MulInto size mismatch")
	}
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v * bd[i]
	}
}

// ScaleInto computes dst = s·a elementwise without allocating.
func ScaleInto(dst, a *Tensor, s float64) {
	if len(dst.Data) != len(a.Data) {
		panic("tensor: ScaleInto size mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
}

// ColSumsAcc accumulates the column sums of a rank-2 tensor into dst:
// dst[j] += Σ_i t[i,j]. dst must have t.Cols() elements. It is the bias-
// gradient reduction of the dense and convolution layers.
func ColSumsAcc(dst *Tensor, t *Tensor) {
	c := t.Shape[1]
	if len(dst.Data) != c {
		panic("tensor: ColSumsAcc size mismatch")
	}
	dd := dst.Data
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			dd[j] += v
		}
	}
}

// Add returns a + b.
func Add(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// Sub returns a - b.
func Sub(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.SubInPlace(b)
	return out
}

// Scale returns a*t.
func Scale(t *Tensor, a float64) *Tensor {
	out := t.Clone()
	out.ScaleInPlace(a)
	return out
}

// Dot returns the inner product of two equally sized tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// SumSquares returns Σ t_i².
func (t *Tensor) SumSquares() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return s
}

// Sum returns Σ t_i.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns max |t_i|, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns the index of the maximum element of row i of a rank-2
// tensor; ties resolve to the lowest index.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Row(i)
		for j := 0; j < c; j++ {
			out.Data[j*r+i] = row[j]
		}
	}
	return out
}

// ConcatRows stacks rank-2 tensors with equal column counts vertically.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := parts[0].Shape[1]
	rows := 0
	for _, p := range parts {
		if p.Shape[1] != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		rows += p.Shape[0]
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi) of a rank-2 tensor.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	c := t.Shape[1]
	out := New(hi-lo, c)
	copy(out.Data, t.Data[lo*c:hi*c])
	return out
}

// NormalizeRowsInPlace scales each row of a rank-2 tensor to unit L2 norm
// and returns the original norms (rows with norm < eps are left unscaled
// and report norm eps to keep downstream divisions finite).
func (t *Tensor) NormalizeRowsInPlace(eps float64) []float64 {
	r := t.Shape[0]
	norms := make([]float64, r)
	for i := 0; i < r; i++ {
		row := t.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		n := math.Sqrt(s)
		if n < eps {
			norms[i] = eps
			continue
		}
		norms[i] = n
		inv := 1 / n
		for j := range row {
			row[j] *= inv
		}
	}
	return norms
}

// LogSumExpRow returns log Σ_j exp(row_j) computed stably.
func LogSumExpRow(row []float64) float64 {
	m := math.Inf(-1)
	for _, v := range row {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range row {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// SoftmaxRowsInPlace replaces each row of a rank-2 tensor with its softmax.
func (t *Tensor) SoftmaxRowsInPlace() {
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Row(i)
		lse := LogSumExpRow(row)
		for j := range row {
			row[j] = math.Exp(row[j] - lse)
		}
	}
}

// ApproxEqual reports whether a and b have identical shapes and elementwise
// |a_i - b_i| <= tol.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String formats small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.Data) > 64 {
		return fmt.Sprintf("Tensor%v(%d elems)", t.Shape, len(t.Data))
	}
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}
