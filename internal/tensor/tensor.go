// Package tensor implements dense row-major tensors over float64 or float32
// and the numerical kernels (parallel matrix multiplication, elementwise
// operations, row-wise reductions) that the neural-network layers in
// internal/nn build on. It is deliberately small: only the operations the
// FedClassAvg reproduction needs, implemented with the Go standard library.
//
// # Dtype architecture
//
// Every kernel is written once, generically over the Float constraint
// (float32 | float64), and the non-generic Tensor facade carries the element
// type as a DType field, dispatching each operation to the right
// instantiation. float64 is the golden reference path — its generic
// instantiation performs bit-identical arithmetic to the historical
// float64-only kernels — while float32 halves the working set and doubles
// SIMD width on the GEMM/conv hot paths. Adding a further element type is a
// leaf change: extend DType, the Float constraint and the facade switches.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major tensor. The zero value is an empty float64
// tensor; use New, NewOf, FromSlice or the fill helpers to create usable
// values. Exactly one backing slice is in use, selected by DT: Data for F64,
// F32 for F32. Code on the golden float64 path may keep addressing Data
// directly; dtype-generic code goes through Of / RowOf.
type Tensor struct {
	Data  []float64 // F64 backing (nil for F32 tensors)
	F32   []float32 // F32 backing (nil for F64 tensors)
	Shape []int
	DT    DType
}

func sizeOf(shape []int) int {
	n := 1
	for _, s := range shape {
		if s < 0 {
			// A plain panic string keeps the shape slice from escaping, so
			// callers passing literal dimensions stay allocation-free.
			panic("tensor: negative dimension in shape")
		}
		n *= s
	}
	return n
}

// New returns a zero-filled float64 tensor with the given shape.
func New(shape ...int) *Tensor {
	n := sizeOf(shape)
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// NewOf returns a zero-filled tensor of the given dtype and shape. BF16
// tensors get float32 backing (see DType.Backing) and keep the BF16 tag.
func NewOf(dt DType, shape ...int) *Tensor {
	if dt == F64 {
		return New(shape...)
	}
	n := sizeOf(shape)
	return &Tensor{F32: make([]float32, n), Shape: append([]int(nil), shape...), DT: dt}
}

// FromSlice wraps float64 data in a tensor of the given shape. The slice is
// not copied; it must have exactly the number of elements the shape implies.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// FromSlice32 wraps float32 data in a tensor of the given shape without
// copying.
func FromSlice32(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{F32: data, Shape: append([]int(nil), shape...), DT: F32}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	if t.DT.Backing() == F32 {
		return len(t.F32)
	}
	return len(t.Data)
}

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Rows returns the leading dimension of a rank-2 tensor.
func (t *Tensor) Rows() int { return t.Shape[0] }

// Cols returns the trailing dimension of a rank-2 tensor.
func (t *Tensor) Cols() int { return t.Shape[1] }

// at returns flat element i widened to float64, whatever the dtype. It is
// the slow, conversion-tolerant accessor for comparisons and debugging.
func (t *Tensor) at(i int) float64 {
	if t.DT.Backing() == F32 {
		return float64(t.F32[i])
	}
	return t.Data[i]
}

// setAt assigns flat element i from a float64, narrowing as needed (for
// BF16 tensors through float32 and then round-to-nearest-even to bfloat16).
func (t *Tensor) setAt(i int, v float64) {
	switch t.DT {
	case F32:
		t.F32[i] = float32(v)
	case BF16:
		t.F32[i] = RoundBF16(float32(v))
	default:
		t.Data[i] = v
	}
}

// At returns the element of a rank-2 tensor at row i, column j, widened to
// float64 for F32 tensors.
func (t *Tensor) At(i, j int) float64 { return t.at(i*t.Shape[1] + j) }

// Set assigns the element of a rank-2 tensor at row i, column j, narrowing
// to the tensor's dtype.
func (t *Tensor) Set(i, j int, v float64) { t.setAt(i*t.Shape[1]+j, v) }

// Row returns a view (not a copy) of row i of a rank-2 float64 tensor. For
// dtype-generic code use RowOf, which serves both widths.
func (t *Tensor) Row(i int) []float64 {
	if t.DT != F64 {
		panic("tensor: Row on a " + t.DT.String() + " tensor (use tensor.RowOf)")
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// RowTo widens row i of a rank-2 tensor into dst (len must be Cols()),
// the boundary between dtype-bound activations and float64 bookkeeping
// (prototype accumulation, analysis probes).
func (t *Tensor) RowTo(i int, dst []float64) {
	c := t.Shape[1]
	if len(dst) != c {
		panic("tensor: RowTo length mismatch")
	}
	if t.DT.Backing() == F32 {
		for j, v := range t.F32[i*c : (i+1)*c] {
			dst[j] = float64(v)
		}
		return
	}
	copy(dst, t.Data[i*c:(i+1)*c])
}

// Clone returns a deep copy (same dtype).
func (t *Tensor) Clone() *Tensor {
	out := NewOf(t.DT, t.Shape...)
	if t.DT.Backing() == F32 {
		copy(out.F32, t.F32)
	} else {
		copy(out.Data, t.Data)
	}
	return out
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, t.Size(), shape))
	}
	return &Tensor{Data: t.Data, F32: t.F32, DT: t.DT, Shape: append([]int(nil), shape...)}
}

// ViewInto retargets view at elements [lo, hi) of src's storage with the
// given shape (whose product must be hi-lo), sharing src's dtype and
// backing. It allocates nothing and is the building block for the cached
// view headers of shape-only layers and grouped convolutions.
func ViewInto(view, src *Tensor, lo, hi int, shape ...int) {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != hi-lo {
		// A plain panic string keeps the variadic shape from escaping, so
		// retargeting a cached view header stays allocation-free.
		panic("tensor: view shape does not cover the storage range")
	}
	view.DT = src.DT
	if src.DT.Backing() == F32 {
		view.F32 = src.F32[lo:hi]
		view.Data = nil
	} else {
		view.Data = src.Data[lo:hi]
		view.F32 = nil
	}
	view.Shape = append(view.Shape[:0], shape...)
}

// ConvertInto widens or narrows src into dst elementwise. Sizes must match;
// dtypes may differ (equal dtypes degrade to a copy). It is the single
// crossing point between the two element types — everything else in the
// package refuses mixed-dtype operands.
func ConvertInto(dst, src *Tensor) {
	if dst.Size() != src.Size() {
		panic("tensor: ConvertInto size mismatch")
	}
	switch {
	case dst.DT == src.DT && dst.DT.Backing() == F32:
		copy(dst.F32, src.F32)
	case dst.DT == src.DT:
		copy(dst.Data, src.Data)
	case dst.DT == BF16 && src.DT.Backing() == F32:
		for i, v := range src.F32 {
			dst.F32[i] = RoundBF16(v)
		}
	case dst.DT.Backing() == F32 && src.DT.Backing() == F32:
		// F32 ← BF16: the values are already float32; the tag widens freely.
		copy(dst.F32, src.F32)
	case dst.DT == BF16:
		for i, v := range src.Data {
			dst.F32[i] = RoundBF16(float32(v))
		}
	case dst.DT.Backing() == F32:
		for i, v := range src.Data {
			dst.F32[i] = float32(v)
		}
	default:
		for i, v := range src.F32 {
			dst.Data[i] = float64(v)
		}
	}
}

// AsType returns t itself when it already has dtype dt, and a freshly
// allocated converted copy otherwise.
func (t *Tensor) AsType(dt DType) *Tensor {
	if t.DT == dt {
		return t
	}
	out := NewOf(dt, t.Shape...)
	ConvertInto(out, t)
	return out
}

// AppendFloat64s appends every element, widened to float64, to dst and
// returns the extended slice — the flattening primitive of the federation's
// always-f64 bookkeeping layer (float32 values widen exactly, so the round
// trip through bookkeeping is lossless).
func (t *Tensor) AppendFloat64s(dst []float64) []float64 {
	if t.DT.Backing() == F32 {
		for _, v := range t.F32 {
			dst = append(dst, float64(v))
		}
		return dst
	}
	return append(dst, t.Data...)
}

// SetFromFloat64s overwrites every element from a float64 slice of exactly
// Size() values, narrowing as needed.
func (t *Tensor) SetFromFloat64s(src []float64) {
	if len(src) != t.Size() {
		panic("tensor: SetFromFloat64s size mismatch")
	}
	switch t.DT {
	case F32:
		for i, v := range src {
			t.F32[i] = float32(v)
		}
	case BF16:
		for i, v := range src {
			t.F32[i] = RoundBF16(float32(v))
		}
	default:
		copy(t.Data, src)
	}
}

// WriteFloat64sAt overwrites elements [off, off+len(src)) from a float64
// slice, narrowing as needed — the batch-packing primitive that moves
// dataset examples (always float64) into model-dtype input tensors.
func (t *Tensor) WriteFloat64sAt(off int, src []float64) {
	switch t.DT {
	case F32:
		dst := t.F32[off : off+len(src)]
		for i, v := range src {
			dst[i] = float32(v)
		}
	case BF16:
		dst := t.F32[off : off+len(src)]
		for i, v := range src {
			dst[i] = RoundBF16(float32(v))
		}
	default:
		copy(t.Data[off:off+len(src)], src)
	}
}

// CopySegment copies n elements from src[sOff:] into dst[dOff:]. Both
// tensors must share a dtype; it is the channel-block shuffle primitive of
// the concat/split composite layers.
func CopySegment(dst *Tensor, dOff int, src *Tensor, sOff, n int) {
	if dst.DT != src.DT {
		panic("tensor: CopySegment dtype mismatch")
	}
	if dst.DT.Backing() == F32 {
		copy(dst.F32[dOff:dOff+n], src.F32[sOff:sOff+n])
		return
	}
	copy(dst.Data[dOff:dOff+n], src.Data[sOff:sOff+n])
}

// Zero overwrites every element with 0.
func (t *Tensor) Zero() {
	if t.DT.Backing() == F32 {
		zeroK(t.F32)
		return
	}
	zeroK(t.Data)
}

func zeroK[F Float](d []F) {
	for i := range d {
		d[i] = 0
	}
}

// Fill overwrites every element with v (narrowed to the dtype).
func (t *Tensor) Fill(v float64) {
	if t.DT.Backing() == F32 {
		f := float32(v)
		if t.DT == BF16 {
			f = RoundBF16(f)
		}
		fillK(t.F32, f)
		return
	}
	fillK(t.Data, v)
}

func fillK[F Float](d []F, v F) {
	for i := range d {
		d[i] = v
	}
}

// FillRandn fills with N(0, std²) samples from rng, drawn in float64 and
// narrowed to the tensor's dtype, so the same stream initializes both widths
// to the same (rounded) values.
func (t *Tensor) FillRandn(rng *rand.Rand, std float64) {
	if t.DT.Backing() == F32 {
		for i := range t.F32 {
			t.F32[i] = float32(rng.NormFloat64() * std)
		}
		RoundBF16InPlace(t)
		return
	}
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// FillUniform fills with U(lo, hi) samples from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	if t.DT.Backing() == F32 {
		for i := range t.F32 {
			t.F32[i] = float32(lo + rng.Float64()*(hi-lo))
		}
		RoundBF16InPlace(t)
		return
	}
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// AddInPlace computes t += o elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: AddInPlace size mismatch")
	}
	if t.DT.Backing() == F32 {
		addInPlaceK(t.F32, Of[float32](o))
		return
	}
	addInPlaceK(t.Data, Of[float64](o))
}

func addInPlaceK[F Float](d, o []F) {
	VecAccumulate(d, o)
}

// SubInPlace computes t -= o elementwise.
func (t *Tensor) SubInPlace(o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: SubInPlace size mismatch")
	}
	if t.DT.Backing() == F32 {
		subInPlaceK(t.F32, Of[float32](o))
		return
	}
	subInPlaceK(t.Data, Of[float64](o))
}

func subInPlaceK[F Float](d, o []F) {
	for i, v := range o {
		d[i] -= v
	}
}

// ScaleInPlace computes t *= a elementwise.
func (t *Tensor) ScaleInPlace(a float64) {
	if t.DT.Backing() == F32 {
		scaleInPlaceK(t.F32, float32(a))
		return
	}
	scaleInPlaceK(t.Data, a)
}

func scaleInPlaceK[F Float](d []F, a F) {
	for i := range d {
		d[i] *= a
	}
}

// AxpyInPlace computes t += a*o elementwise.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: AxpyInPlace size mismatch")
	}
	if t.DT.Backing() == F32 {
		axpyK(t.F32, float32(a), Of[float32](o))
		return
	}
	axpyK(t.Data, a, Of[float64](o))
}

func axpyK[F Float](d []F, a F, o []F) {
	for i, v := range o {
		d[i] += a * v
	}
}

// MulInPlace computes t *= o elementwise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: MulInPlace size mismatch")
	}
	if t.DT.Backing() == F32 {
		mulInPlaceK(t.F32, Of[float32](o))
		return
	}
	mulInPlaceK(t.Data, Of[float64](o))
}

func mulInPlaceK[F Float](d, o []F) {
	for i, v := range o {
		d[i] *= v
	}
}

// CopyFrom overwrites t's elements with o's (sizes and dtypes must match;
// use ConvertInto to cross dtypes).
func (t *Tensor) CopyFrom(o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: CopyFrom size mismatch")
	}
	if t.DT.Backing() == F32 {
		copy(t.F32, Of[float32](o))
		return
	}
	copy(t.Data, Of[float64](o))
}

// AddInto computes dst = a + b elementwise without allocating.
func AddInto(dst, a, b *Tensor) {
	if dst.Size() != a.Size() || a.Size() != b.Size() {
		panic("tensor: AddInto size mismatch")
	}
	if dst.DT.Backing() == F32 {
		addIntoK(dst.F32, Of[float32](a), Of[float32](b))
		return
	}
	addIntoK(dst.Data, Of[float64](a), Of[float64](b))
}

func addIntoK[F Float](dst, a, b []F) {
	for i, v := range a {
		dst[i] = v + b[i]
	}
}

// SubInto computes dst = a - b elementwise without allocating.
func SubInto(dst, a, b *Tensor) {
	if dst.Size() != a.Size() || a.Size() != b.Size() {
		panic("tensor: SubInto size mismatch")
	}
	if dst.DT.Backing() == F32 {
		subIntoK(dst.F32, Of[float32](a), Of[float32](b))
		return
	}
	subIntoK(dst.Data, Of[float64](a), Of[float64](b))
}

func subIntoK[F Float](dst, a, b []F) {
	for i, v := range a {
		dst[i] = v - b[i]
	}
}

// MulInto computes dst = a ⊙ b (Hadamard product) without allocating.
func MulInto(dst, a, b *Tensor) {
	if dst.Size() != a.Size() || a.Size() != b.Size() {
		panic("tensor: MulInto size mismatch")
	}
	if dst.DT.Backing() == F32 {
		mulIntoK(dst.F32, Of[float32](a), Of[float32](b))
		return
	}
	mulIntoK(dst.Data, Of[float64](a), Of[float64](b))
}

func mulIntoK[F Float](dst, a, b []F) {
	for i, v := range a {
		dst[i] = v * b[i]
	}
}

// ScaleInto computes dst = s·a elementwise without allocating.
func ScaleInto(dst, a *Tensor, s float64) {
	if dst.Size() != a.Size() {
		panic("tensor: ScaleInto size mismatch")
	}
	if dst.DT.Backing() == F32 {
		scaleIntoK(dst.F32, Of[float32](a), float32(s))
		return
	}
	scaleIntoK(dst.Data, Of[float64](a), s)
}

func scaleIntoK[F Float](dst, a []F, s F) {
	for i, v := range a {
		dst[i] = s * v
	}
}

// ColSumsAcc accumulates the column sums of a rank-2 tensor into dst:
// dst[j] += Σ_i t[i,j]. dst must have t.Cols() elements. It is the bias-
// gradient reduction of the dense and convolution layers.
func ColSumsAcc(dst *Tensor, t *Tensor) {
	c := t.Shape[1]
	if dst.Size() != c {
		panic("tensor: ColSumsAcc size mismatch")
	}
	if dst.DT.Backing() == F32 {
		colSumsAccK(dst.F32, Of[float32](t), t.Shape[0], c)
		return
	}
	colSumsAccK(dst.Data, Of[float64](t), t.Shape[0], c)
}

func colSumsAccK[F Float](dd, td []F, rows, c int) {
	for i := 0; i < rows; i++ {
		row := td[i*c : (i+1)*c]
		for j, v := range row {
			dd[j] += v
		}
	}
}

// Add returns a + b.
func Add(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// Sub returns a - b.
func Sub(a, b *Tensor) *Tensor {
	out := a.Clone()
	out.SubInPlace(b)
	return out
}

// Scale returns a*t.
func Scale(t *Tensor, a float64) *Tensor {
	out := t.Clone()
	out.ScaleInPlace(a)
	return out
}

// Dot returns the inner product of two equally sized tensors, accumulated
// in the tensors' dtype and widened on return.
func Dot(a, b *Tensor) float64 {
	if a.Size() != b.Size() {
		panic("tensor: Dot size mismatch")
	}
	if a.DT.Backing() == F32 {
		return float64(dotK(a.F32, Of[float32](b)))
	}
	return dotK(a.Data, Of[float64](b))
}

func dotK[F Float](a, b []F) F {
	var s F
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SumSquares returns Σ t_i², accumulated in the tensor's dtype.
func (t *Tensor) SumSquares() float64 {
	if t.DT.Backing() == F32 {
		return float64(sumSquaresK(t.F32))
	}
	return sumSquaresK(t.Data)
}

func sumSquaresK[F Float](d []F) F {
	var s F
	for _, v := range d {
		s += v * v
	}
	return s
}

// Sum returns Σ t_i, accumulated in the tensor's dtype.
func (t *Tensor) Sum() float64 {
	if t.DT.Backing() == F32 {
		return float64(sumK(t.F32))
	}
	return sumK(t.Data)
}

func sumK[F Float](d []F) F {
	var s F
	for _, v := range d {
		s += v
	}
	return s
}

// MaxAbs returns max |t_i|, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	if t.DT.Backing() == F32 {
		return float64(maxAbsK(t.F32))
	}
	return maxAbsK(t.Data)
}

func maxAbsK[F Float](d []F) F {
	var m F
	for _, v := range d {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns the index of the maximum element of row i of a rank-2
// tensor; ties resolve to the lowest index.
func (t *Tensor) ArgMaxRow(i int) int {
	if t.DT.Backing() == F32 {
		return argMaxRowK(RowOf[float32](t, i))
	}
	return argMaxRowK(RowOf[float64](t, i))
}

func argMaxRowK[F Float](row []F) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	out := NewOf(t.DT, t.Shape[1], t.Shape[0])
	if t.DT.Backing() == F32 {
		transposeK(Of[float32](out), Of[float32](t), t.Shape[0], t.Shape[1])
	} else {
		transposeK(out.Data, t.Data, t.Shape[0], t.Shape[1])
	}
	return out
}

func transposeK[F Float](out, in []F, r, c int) {
	for i := 0; i < r; i++ {
		row := in[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			out[j*r+i] = row[j]
		}
	}
}

// ConcatRows stacks rank-2 tensors with equal column counts vertically.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := parts[0].Shape[1]
	rows := 0
	for _, p := range parts {
		if p.Shape[1] != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		rows += p.Shape[0]
	}
	out := NewOf(parts[0].DT, rows, cols)
	off := 0
	for _, p := range parts {
		CopySegment(out, off, p, 0, p.Size())
		off += p.Size()
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi) of a rank-2 tensor.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	c := t.Shape[1]
	out := NewOf(t.DT, hi-lo, c)
	CopySegment(out, 0, t, lo*c, (hi-lo)*c)
	return out
}

// NormalizeRowsInPlace scales each row of a rank-2 tensor to unit L2 norm
// and returns the original norms (rows with norm < eps are left unscaled
// and report norm eps to keep downstream divisions finite). Norms are
// returned as float64 bookkeeping regardless of dtype.
func (t *Tensor) NormalizeRowsInPlace(eps float64) []float64 {
	if t.DT.Backing() == F32 {
		return normalizeRowsK(Of[float32](t), t.Shape[0], t.Shape[1], eps)
	}
	return normalizeRowsK(t.Data, t.Shape[0], t.Shape[1], eps)
}

func normalizeRowsK[F Float](d []F, r, c int, eps float64) []float64 {
	norms := make([]float64, r)
	for i := 0; i < r; i++ {
		row := d[i*c : (i+1)*c]
		var s F
		for _, v := range row {
			s += v * v
		}
		n := math.Sqrt(float64(s))
		if n < eps {
			norms[i] = eps
			continue
		}
		norms[i] = n
		inv := F(1 / n)
		for j := range row {
			row[j] *= inv
		}
	}
	return norms
}

// LogSumExpRow returns log Σ_j exp(row_j) computed stably.
func LogSumExpRow(row []float64) float64 {
	return float64(LogSumExpOf(row))
}

// LogSumExpOf is the dtype-generic stable log-sum-exp: the max is found in
// the element type, the exponentials are evaluated in float64 (math.Exp) and
// narrowed back, and the partial sums accumulate in the element type.
func LogSumExpOf[F Float](row []F) F {
	m := F(math.Inf(-1))
	for _, v := range row {
		if v > m {
			m = v
		}
	}
	if math.IsInf(float64(m), -1) {
		return m
	}
	var s F
	for _, v := range row {
		s += F(math.Exp(float64(v - m)))
	}
	return m + F(math.Log(float64(s)))
}

// SoftmaxRowsInPlace replaces each row of a rank-2 tensor with its softmax.
func (t *Tensor) SoftmaxRowsInPlace() {
	if t.DT.Backing() == F32 {
		softmaxRowsK(Of[float32](t), t.Shape[0], t.Shape[1])
		return
	}
	softmaxRowsK(t.Data, t.Shape[0], t.Shape[1])
}

func softmaxRowsK[F Float](d []F, r, c int) {
	for i := 0; i < r; i++ {
		row := d[i*c : (i+1)*c]
		lse := LogSumExpOf(row)
		for j := range row {
			row[j] = F(math.Exp(float64(row[j] - lse)))
		}
	}
}

// ApproxEqual reports whether a and b have identical shapes and elementwise
// |a_i - b_i| <= tol. The operands may have different dtypes (elements are
// compared widened to float64), so float32 results can be checked against
// float64 references.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := 0; i < a.Size(); i++ {
		if math.Abs(a.at(i)-b.at(i)) > tol {
			return false
		}
	}
	return true
}

// String formats small tensors for debugging.
func (t *Tensor) String() string {
	if t.Size() > 64 {
		return fmt.Sprintf("Tensor%v(%d %s elems)", t.Shape, t.Size(), t.DT)
	}
	if t.DT.Backing() == F32 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.F32)
	}
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}
