// AVX2+FMA micro-kernels for the blocked GEMM drivers in gemm_amd64.go:
// a 4×8 float64 tile and an 8×8 float32 tile (double the lane count at
// half the element width). Only assembled on amd64; callers gate on the
// useFMA/useFMA32 runtime checks.

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaMicro4x8(c *float64, ldc int, a *float64, aRow, aStep int, bp *float64, pk int, load int)
//
// Computes a 4×8 register tile C[r, 0:8] (+)= Σ_t A[r, t]·B[t, 0:8] where
// the four logical A rows start at a, a+aRow, a+2·aRow, a+3·aRow and advance
// by aStep per reduction step, and B is an 8-wide packed panel of pk rows.
// All strides are in bytes. load != 0 seeds the accumulators from C
// (accumulate); load == 0 overwrites. pk must be >= 1.
//
// The stride pair makes the same kernel serve A·B (aRow = k·8, aStep = 8),
// Aᵀ·B (aRow = 8, aStep = k·8) and A·Bᵀ with a transpose-packed panel.
TEXT ·fmaMicro4x8(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (DI)(CX*1), R10 // C row 1
	LEAQ (R10)(CX*1), R11 // C row 2
	LEAQ (R11)(CX*1), R12 // C row 3

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ AX, AX
	JZ    loop
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (R10), Y2
	VMOVUPD 32(R10), Y3
	VMOVUPD (R11), Y4
	VMOVUPD 32(R11), Y5
	VMOVUPD (R12), Y6
	VMOVUPD 32(R12), Y7

loop:
	VMOVUPD      (BX), Y8
	VMOVUPD      32(BX), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD (SI)(R8*1), Y11
	VBROADCASTSD (SI)(R8*2), Y12
	VBROADCASTSD (SI)(R13*1), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $64, BX
	ADDQ         R9, SI
	DECQ         DX
	JNZ          loop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, 32(R10)
	VMOVUPD Y4, (R11)
	VMOVUPD Y5, 32(R11)
	VMOVUPD Y6, (R12)
	VMOVUPD Y7, 32(R12)
	VZEROUPPER
	RET

// func fmaMicro8x8f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)
//
// Computes an 8×8 register tile C[r, 0:8] (+)= Σ_t A[r, t]·B[t, 0:8] where
// the eight logical A rows start at a + r·aRow and advance by aStep per
// reduction step, and B is an 8-wide packed panel of pk float32 rows (one
// 8-lane YMM vector per reduction step). All strides are in bytes. load != 0
// seeds the accumulators from C (accumulate); load == 0 overwrites. pk must
// be >= 1.
//
// The stride pair makes the same kernel serve A·B (aRow = k·4, aStep = 4),
// Aᵀ·B (aRow = 4, aStep = k·4) and A·Bᵀ with a transpose-packed panel.
// Rows 0-3 broadcast from SI, rows 4-7 from R10 = SI + 4·aRow; both
// pointers advance by aStep per step.
TEXT ·fmaMicro8x8f32(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (SI)(R8*4), R10 // A row 4

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	TESTQ AX, AX
	JZ    loop32
	MOVQ    DI, R11
	VMOVUPS (R11), Y0
	ADDQ    CX, R11
	VMOVUPS (R11), Y1
	ADDQ    CX, R11
	VMOVUPS (R11), Y2
	ADDQ    CX, R11
	VMOVUPS (R11), Y3
	ADDQ    CX, R11
	VMOVUPS (R11), Y4
	ADDQ    CX, R11
	VMOVUPS (R11), Y5
	ADDQ    CX, R11
	VMOVUPS (R11), Y6
	ADDQ    CX, R11
	VMOVUPS (R11), Y7

loop32:
	VMOVUPS      (BX), Y8
	VBROADCASTSS (SI), Y9
	VBROADCASTSS (SI)(R8*1), Y10
	VBROADCASTSS (SI)(R8*2), Y11
	VBROADCASTSS (SI)(R13*1), Y12
	VFMADD231PS  Y8, Y9, Y0
	VFMADD231PS  Y8, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS (R10), Y9
	VBROADCASTSS (R10)(R8*1), Y10
	VBROADCASTSS (R10)(R8*2), Y11
	VBROADCASTSS (R10)(R13*1), Y12
	VFMADD231PS  Y8, Y9, Y4
	VFMADD231PS  Y8, Y10, Y5
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y8, Y12, Y7
	ADDQ         $32, BX
	ADDQ         R9, SI
	ADDQ         R9, R10
	DECQ         DX
	JNZ          loop32

	MOVQ    DI, R11
	VMOVUPS Y0, (R11)
	ADDQ    CX, R11
	VMOVUPS Y1, (R11)
	ADDQ    CX, R11
	VMOVUPS Y2, (R11)
	ADDQ    CX, R11
	VMOVUPS Y3, (R11)
	ADDQ    CX, R11
	VMOVUPS Y4, (R11)
	ADDQ    CX, R11
	VMOVUPS Y5, (R11)
	ADDQ    CX, R11
	VMOVUPS Y6, (R11)
	ADDQ    CX, R11
	VMOVUPS Y7, (R11)
	VZEROUPPER
	RET
