package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPoolGetPutReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 8)
	if a.Size() != 32 || a.Dim(0) != 4 || a.Dim(1) != 8 {
		t.Fatalf("Get shape wrong: %v", a.Shape)
	}
	a.Fill(7)
	p.Put(a)
	b := p.Get(5, 6) // same bucket (2^5 = 32), smaller size
	if b.Size() != 30 {
		t.Fatalf("reused tensor has size %d", b.Size())
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("pooled Get not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolRejectsViews(t *testing.T) {
	p := NewPool()
	backing := make([]float64, 30) // not a power of two
	v := FromSlice(backing[:6], 2, 3)
	p.Put(v) // must not panic, and must not corrupt future Gets
	g := p.Get(2, 3)
	if g.Size() != 6 {
		t.Fatalf("Get after rejected Put: %v", g.Shape)
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool()
	p.Put(p.Get(16, 16))
	avg := testing.AllocsPerRun(100, func() {
		x := p.Get(16, 16)
		p.Put(x)
	})
	if avg > 0 {
		t.Fatalf("pooled Get/Put allocates %.1f objects/op, want 0", avg)
	}
}

func TestEnsureReusesCapacity(t *testing.T) {
	x := Ensure(nil, 4, 4)
	x.Fill(3)
	y := Ensure(x, 2, 5)
	if y != x {
		t.Fatal("Ensure should reuse storage when capacity suffices")
	}
	if y.Dim(0) != 2 || y.Dim(1) != 5 || y.Size() != 10 {
		t.Fatalf("Ensure shape wrong: %v", y.Shape)
	}
	z := Ensure(y, 8, 8)
	if z == y {
		t.Fatal("Ensure must reallocate when capacity is too small")
	}
}

func TestMatMulIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(32, 32)
	b := New(32, 32)
	out := New(32, 32)
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)
	MatMulInto(out, a, b)
	avg := testing.AllocsPerRun(100, func() {
		MatMulInto(out, a, b)
	})
	// A packed-panel scratch may be revived once after a GC cycle; anything
	// more means the kernel regressed to allocating.
	if avg > 1 {
		t.Fatalf("MatMulInto allocates %.1f objects/op in steady state, want ~0", avg)
	}
}

func TestIntoAccKernelsMatchAllocatingKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 9, 11}, {13, 16, 8}, {33, 65, 17}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k) // left operand of a·b and a·bᵀ
		b := New(k, n)
		a.FillRandn(rng, 1)
		b.FillRandn(rng, 1)
		want := MatMul(a, b)
		out := New(m, n)
		out.Fill(3)
		MatMulInto(out, a, b)
		if !ApproxEqual(out, want, 1e-12) {
			t.Fatalf("MatMulInto mismatch at %v", sh)
		}

		// aᵀ·b takes both operands with m rows.
		a2 := New(m, k)
		b2 := New(m, n)
		a2.FillRandn(rng, 1)
		b2.FillRandn(rng, 1)
		wantATB := MatMul(Transpose(a2), b2)
		gotATB := MatMulATB(a2, b2)
		if !ApproxEqual(gotATB, wantATB, 1e-9) {
			t.Fatalf("MatMulATB mismatch at %v", sh)
		}
		outATB := New(k, n)
		outATB.Fill(-2)
		MatMulATBInto(outATB, a2, b2)
		if !ApproxEqual(outATB, wantATB, 1e-9) {
			t.Fatalf("MatMulATBInto mismatch at %v", sh)
		}
		accATB := wantATB.Clone()
		MatMulATBAcc(accATB, a2, b2)
		if !ApproxEqual(accATB, Scale(wantATB, 2), 1e-9) {
			t.Fatalf("MatMulATBAcc mismatch at %v", sh)
		}

		// a·bᵀ takes b with n rows of length k.
		b3 := New(n, k)
		b3.FillRandn(rng, 1)
		wantABT := MatMul(a, Transpose(b3))
		gotABT := MatMulABT(a, b3)
		if !ApproxEqual(gotABT, wantABT, 1e-9) {
			t.Fatalf("MatMulABT mismatch at %v", sh)
		}
		outABT := New(m, n)
		outABT.Fill(9)
		MatMulABTInto(outABT, a, b3)
		if !ApproxEqual(outABT, wantABT, 1e-9) {
			t.Fatalf("MatMulABTInto mismatch at %v", sh)
		}
		accABT := wantABT.Clone()
		MatMulABTAcc(accABT, a, b3)
		if !ApproxEqual(accABT, Scale(wantABT, 2), 1e-9) {
			t.Fatalf("MatMulABTAcc mismatch at %v", sh)
		}
	}
}

func TestElementwiseInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	AddInto(dst, a, b)
	if !ApproxEqual(dst, FromSlice([]float64{6, 8, 10, 12}, 2, 2), 0) {
		t.Fatalf("AddInto wrong: %v", dst.Data)
	}
	SubInto(dst, a, b)
	if !ApproxEqual(dst, FromSlice([]float64{-4, -4, -4, -4}, 2, 2), 0) {
		t.Fatalf("SubInto wrong: %v", dst.Data)
	}
	MulInto(dst, a, b)
	if !ApproxEqual(dst, FromSlice([]float64{5, 12, 21, 32}, 2, 2), 0) {
		t.Fatalf("MulInto wrong: %v", dst.Data)
	}
	ScaleInto(dst, a, -2)
	if !ApproxEqual(dst, FromSlice([]float64{-2, -4, -6, -8}, 2, 2), 0) {
		t.Fatalf("ScaleInto wrong: %v", dst.Data)
	}
	sums := New(2)
	sums.Fill(1)
	ColSumsAcc(sums, a)
	if sums.Data[0] != 1+1+3 || sums.Data[1] != 1+2+4 {
		t.Fatalf("ColSumsAcc wrong: %v", sums.Data)
	}
	cp := New(2, 2)
	cp.CopyFrom(b)
	if !ApproxEqual(cp, b, 0) {
		t.Fatal("CopyFrom wrong")
	}
}

func TestParallelShardedCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelSharded(n, 8, func(shard, lo, hi int) {
			if shard < 0 || shard >= 8 {
				t.Errorf("shard %d out of range", shard)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		counts := make([]int32, n)
		var mu sync.Mutex
		Parallel(n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelNested(t *testing.T) {
	// Nested use must neither deadlock nor drop indices, regardless of pool
	// saturation.
	total := 0
	var mu sync.Mutex
	Parallel(8, func(i int) {
		ParallelSharded(16, 4, func(_, lo, hi int) {
			mu.Lock()
			total += hi - lo
			mu.Unlock()
		})
	})
	if total != 8*16 {
		t.Fatalf("nested parallel covered %d of %d", total, 8*16)
	}
}
