//go:build amd64

package tensor

import "unsafe"

// Implemented in gemm_avx512_amd64.s.

//go:noescape
func avx512Micro8x8(c *float64, ldc int, a *float64, aRow, aStep int, bp *float64, pk int, load int)

//go:noescape
func avx512Micro8x16f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)

//go:noescape
func avx512Micro4x16f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)

//go:noescape
func maxPool2x2f32(x, out *float32, am *int64, outH, outW, w int, base int64)

//go:noescape
func maxPool2x2f64(x, out *float64, am *int64, outH, outW, w int, base int64)

// useAVX512 reports whether the AVX-512 micro-kernels may be used: on top of
// the AVX2+FMA requirements, the CPU must expose AVX512F/DQ/BW/VL and the OS
// must have enabled opmask and ZMM state saving (XCR0 bits 5-7 alongside
// XMM/YMM). Both element widths share the requirements, so one probe gates
// the f64 8×8 and the f32 8×16/4×16 kernels alike.
var useAVX512 = detectAVX512()

// useAVX51232 gates the float32 AVX-512 kernels; declared separately so the
// differential harness can reason about each dispatch path and non-amd64
// builds can pin both false.
var useAVX51232 = useAVX512

func detectAVX512() bool {
	if !detectFMA() {
		return false
	}
	if eax, _ := xgetbv(); eax&0xe6 != 0xe6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	const avx512dq = 1 << 17
	const avx512bw = 1 << 30
	const avx512vl = 1 << 31
	const want = uint32(avx512f | avx512dq | avx512bw | avx512vl)
	return b7&want == want
}

// CPUFeatures names the SIMD tiers the GEMM/vector kernels will actually
// use on this host, in ascending order. Benchmark records embed it so
// cross-host comparisons can refuse to gate when the kernel tiers differ
// (a portable-vs-AVX2 delta is a host property, not a regression).
func CPUFeatures() []string {
	var f []string
	if useFMA {
		f = append(f, "avx2", "fma")
	}
	if useAVX512 {
		f = append(f, "avx512")
	}
	return f
}

// avx512RowTail handles the leftover rows of a 16-wide tile sweep in Go,
// streaming the packed panel with plain mul+add per element — the same
// per-element chain as fmaRowTail, so tail rows stay bit-identical between
// the AVX2 and AVX-512 tiers regardless of panel width.
func avx512RowTail(c []float32, jw int, a []float32, aStep, pk int, bp []float32, load bool) {
	var acc [avx512NR]float32
	if load {
		copy(acc[:jw], c[:jw])
	}
	for t := 0; t < pk; t++ {
		av := a[t*aStep]
		bq := bp[avx512NR*t : avx512NR*t+avx512NR : avx512NR*t+avx512NR]
		for j := 0; j < avx512NR; j++ {
			acc[j] += av * bq[j]
		}
	}
	copy(c[:jw], acc[:jw])
}

// avx512PartialTile64 runs the f64 8×8 micro-kernel for a j-tile narrower
// than fmaNR by staging the 8×jw C block in a dense 8×8 scratch.
func avx512PartialTile64(out []float64, base, n, jw int, aPtr *float64, aRowB, aStepB int, bp *float64, pk int, load bool) {
	var cbuf [8 * fmaNR]float64
	if load {
		for r := 0; r < 8; r++ {
			copy(cbuf[r*fmaNR:r*fmaNR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	avx512Micro8x8(&cbuf[0], fmaNR*8, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 8; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*fmaNR:r*fmaNR+jw])
	}
}

// avx512PartialTile32 stages an 8×jw float32 C block through the 8×16
// micro-kernel for j-tiles narrower than avx512NR.
func avx512PartialTile32(out []float32, base, n, jw int, aPtr *float32, aRowB, aStepB int, bp *float32, pk int, load bool) {
	var cbuf [8 * avx512NR]float32
	if load {
		for r := 0; r < 8; r++ {
			copy(cbuf[r*avx512NR:r*avx512NR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	avx512Micro8x16f32(&cbuf[0], avx512NR*4, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 8; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*avx512NR:r*avx512NR+jw])
	}
}

// avx512PartialTile4x32 is the 4-row counterpart of avx512PartialTile32.
func avx512PartialTile4x32(out []float32, base, n, jw int, aPtr *float32, aRowB, aStepB int, bp *float32, pk int, load bool) {
	var cbuf [4 * avx512NR]float32
	if load {
		for r := 0; r < 4; r++ {
			copy(cbuf[r*avx512NR:r*avx512NR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	avx512Micro4x16f32(&cbuf[0], avx512NR*4, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 4; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*avx512NR:r*avx512NR+jw])
	}
}

// packPanel16Rows packs src[(r0+t)·ld + j0 : … + j0+jw] for t in [0,pk) into
// a 16-wide zero-padded panel, the avx512NR counterpart of packPanelRows.
func packPanel16Rows(panel, src []float32, r0, ld, j0, jw, pk int) {
	if jw == avx512NR {
		CopyRows(panel, src[r0*ld+j0:], pk, avx512NR, avx512NR, ld)
		return
	}
	for t := 0; t < pk; t++ {
		row := src[(r0+t)*ld+j0 : (r0+t)*ld+j0+jw]
		q := panel[avx512NR*t : avx512NR*t+avx512NR]
		for j := 0; j < avx512NR; j++ {
			if j < jw {
				q[j] = row[j]
			} else {
				q[j] = 0
			}
		}
	}
}

// packPanel16Cols transpose-packs src rows j0..j0+jw into a 16-wide panel:
// panel[t·16+j] = src[(j0+j)·ld + p0+t]. Scalar: the 8×8 shuffle transpose
// has a fixed 8-wide destination stride, so the 16-wide panel fills by
// column walks instead. Pack cost is amortized over the row sweep exactly
// like the other panels.
func packPanel16Cols(panel, src []float32, j0, ld, p0, jw, pk int) {
	// Panel-row-major fill: writes stream sequentially through the panel
	// and the reads touch one hot cache line per source row (the next t
	// rereads the same lines one element over). The transposed order —
	// column walks with stride-16 writes — touches pk distinct lines per
	// column and was the top cost of f32 conv backward.
	var rows [avx512NR][]float32
	for j := 0; j < jw; j++ {
		rows[j] = src[(j0+j)*ld+p0 : (j0+j)*ld+p0+pk]
	}
	for t := 0; t < pk; t++ {
		q := panel[avx512NR*t : avx512NR*t+avx512NR]
		for j := 0; j < jw; j++ {
			q[j] = rows[j][t]
		}
		for j := jw; j < avx512NR; j++ {
			q[j] = 0
		}
	}
}

// gemmNNRangeAVX512 computes rows [lo,hi) of out = a·b with the f64 AVX-512
// kernel: 8-row ZMM tiles on the same 8-wide panel as the AVX2 tier, with
// the AVX2 4×8 kernel serving 4..7-row leftovers (both fuse identically, so
// the tier switch never changes bits).
func gemmNNRangeAVX512(out, a, b []float64, k, n, lo, hi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, pc, n, j0, jw, pk)
			bp := &panel[0]
			i := lo
			for ; i+8 <= hi; i += 8 {
				if jw == fmaNR {
					avx512Micro8x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					avx512PartialTile64(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i+4 <= hi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < hi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmNNRangeAVX51232 computes rows [lo,hi) of out = a·b with the f32
// AVX-512 kernel: 8×16 register tiles over a 16-wide packed panel.
func gemmNNRangeAVX51232(out, a, b []float32, k, n, lo, hi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*avx512NR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += avx512NR {
			jw := n - j0
			if jw > avx512NR {
				jw = avx512NR
			}
			packPanel16Rows(panel, b, pc, n, j0, jw, pk)
			bp := &panel[0]
			i := lo
			for ; i+8 <= hi; i += 8 {
				if jw == avx512NR {
					avx512Micro8x16f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					avx512PartialTile32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i+4 <= hi; i += 4 {
				if jw == avx512NR {
					avx512Micro4x16f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					avx512PartialTile4x32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i < hi; i++ {
				avx512RowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmATRangeAVX512 computes output rows [plo,phi) of out = aᵀ·b with the
// f64 AVX-512 kernel.
func gemmATRangeAVX512(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for ic := 0; ic < m; ic += gemmKC {
		mk := m - ic
		if mk > gemmKC {
			mk = gemmKC
		}
		load := acc || ic > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, ic, n, j0, jw, mk)
			bp := &panel[0]
			p := plo
			for ; p+8 <= phi; p += 8 {
				if jw == fmaNR {
					avx512Micro8x8(&out[p*n+j0], n*8, &a[ic*k+p], 8, k*8, bp, mk, b2i(load))
				} else {
					avx512PartialTile64(out, p*n+j0, n, jw, &a[ic*k+p], 8, k*8, bp, mk, load)
				}
			}
			for ; p+4 <= phi; p += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[p*n+j0], n*8, &a[ic*k+p], 8, k*8, bp, mk, b2i(load))
				} else {
					fmaPartialTile(out, p*n+j0, n, jw, &a[ic*k+p], 8, k*8, bp, mk, load)
				}
			}
			for ; p < phi; p++ {
				fmaRowTail(out[p*n+j0:p*n+j0+jw], jw, a[ic*k+p:], k, mk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmATRangeAVX51232 computes output rows [plo,phi) of out = aᵀ·b with the
// f32 AVX-512 kernel.
func gemmATRangeAVX51232(out, a, b []float32, m, k, n, plo, phi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*avx512NR]
	for ic := 0; ic < m; ic += gemmKC {
		mk := m - ic
		if mk > gemmKC {
			mk = gemmKC
		}
		load := acc || ic > 0
		for j0 := 0; j0 < n; j0 += avx512NR {
			jw := n - j0
			if jw > avx512NR {
				jw = avx512NR
			}
			packPanel16Rows(panel, b, ic, n, j0, jw, mk)
			bp := &panel[0]
			p := plo
			for ; p+8 <= phi; p += 8 {
				if jw == avx512NR {
					avx512Micro8x16f32(&out[p*n+j0], n*4, &a[ic*k+p], 4, k*4, bp, mk, b2i(load))
				} else {
					avx512PartialTile32(out, p*n+j0, n, jw, &a[ic*k+p], 4, k*4, bp, mk, load)
				}
			}
			for ; p+4 <= phi; p += 4 {
				if jw == avx512NR {
					avx512Micro4x16f32(&out[p*n+j0], n*4, &a[ic*k+p], 4, k*4, bp, mk, b2i(load))
				} else {
					avx512PartialTile4x32(out, p*n+j0, n, jw, &a[ic*k+p], 4, k*4, bp, mk, load)
				}
			}
			for ; p < phi; p++ {
				avx512RowTail(out[p*n+j0:p*n+j0+jw], jw, a[ic*k+p:], k, mk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmABTRangeAVX512 computes rows [ilo,ihi) of out = a·bᵀ with the f64
// AVX-512 kernel, transpose-packing b panels.
func gemmABTRangeAVX512(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelCols(panel, b, j0, k, pc, jw, pk)
			bp := &panel[0]
			i := ilo
			for ; i+8 <= ihi; i += 8 {
				if jw == fmaNR {
					avx512Micro8x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					avx512PartialTile64(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i+4 <= ihi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < ihi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmABTRangeAVX51232 computes rows [ilo,ihi) of out = a·bᵀ with the f32
// AVX-512 kernel, transpose-packing b into 16-wide panels.
func gemmABTRangeAVX51232(out, a, b []float32, k, n, ilo, ihi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*avx512NR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += avx512NR {
			jw := n - j0
			if jw > avx512NR {
				jw = avx512NR
			}
			packPanel16Cols(panel, b, j0, k, pc, jw, pk)
			bp := &panel[0]
			i := ilo
			for ; i+8 <= ihi; i += 8 {
				if jw == avx512NR {
					avx512Micro8x16f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					avx512PartialTile32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i+4 <= ihi; i += 4 {
				if jw == avx512NR {
					avx512Micro4x16f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					avx512PartialTile4x32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i < ihi; i++ {
				avx512RowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// MaxPool2x2F32 runs the AVX-512 2x2 stride-2 max-pool kernel over one input
// plane of width w, writing outH*outW maxima into out and absolute input
// indices (base + row-relative offset) into am. The compare/blend chain in
// the kernel visits candidates in the exact order of the scalar loop
// (row0-even, row0-odd, row1-even, row1-odd, strict greater-than), so values
// and argmax tie-breaking are bit-identical to the portable path. Returns
// false when the AVX-512 f32 tier is unavailable so callers fall back to the
// scalar loop.
func MaxPool2x2F32(x, out []float32, am []int, outH, outW, w, base int) bool {
	if !useAVX51232 || outH == 0 || outW == 0 {
		return false
	}
	maxPool2x2f32(&x[0], &out[0], (*int64)(unsafe.Pointer(&am[0])), outH, outW, w, int64(base))
	return true
}

// MaxPool2x2F64 is the f64 twin of MaxPool2x2F32, gated on the AVX-512 f64
// tier.
func MaxPool2x2F64(x, out []float64, am []int, outH, outW, w, base int) bool {
	if !useAVX512 || outH == 0 || outW == 0 {
		return false
	}
	maxPool2x2f64(&x[0], &out[0], (*int64)(unsafe.Pointer(&am[0])), outH, outW, w, int64(base))
	return true
}
