package tensor

import (
	"fmt"
	"math"
	"unsafe"
)

// DType identifies the element type of a tensor. It is a property of the
// run, not of the codebase: every kernel in this package is implemented
// once, generically over Float, and dispatched at the Tensor facade on the
// DT field. The zero value is F64, so all pre-dtype code (and the golden
// float64 reference path) keeps working unchanged.
type DType uint8

// The element types.
const (
	F64  DType = iota // 8-byte IEEE-754, the golden reference path
	F32               // 4-byte IEEE-754, the SIMD-width/working-set fast path
	BF16              // bfloat16 storage tag riding float32 backing (see Backing)
)

// numDTypes bounds the valid range for validation (checkpoint headers).
const numDTypes = 3

// Float is the constraint of the generic kernels: exactly the element
// types a Tensor can carry.
type Float interface {
	float32 | float64
}

// String names the dtype for flags, reports and checkpoint diagnostics.
func (d DType) String() string {
	switch d {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case BF16:
		return "bf16"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Valid reports whether d names a known element type.
func (d DType) Valid() bool { return d < numDTypes }

// Backing returns the in-memory element type of d: F64 or F32. BF16 is a
// storage/serialization tag, not a third arithmetic width — a BF16 tensor
// is float32 in memory (all compute runs at f32 precision) with the policy
// that parameter values are kept bfloat16-representable at every mutation
// boundary by round-to-nearest-even narrowing (DESIGN.md §12). Kernels and
// dispatch switches therefore branch on Backing, never on BF16 itself.
func (d DType) Backing() DType {
	if d == F64 {
		return F64
	}
	return F32
}

// Bytes returns the element size in bytes: the in-memory size for F64/F32,
// the serialized size (2 bytes) for BF16. Wire and checkpoint accounting is
// the only caller that distinguishes BF16 from its float32 backing.
func (d DType) Bytes() int {
	switch d {
	case F32:
		return 4
	case BF16:
		return 2
	}
	return 8
}

// ParseDType maps a flag value ("f64" | "f32" | "bf16") to a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	case "bf16", "bfloat16":
		return BF16, nil
	}
	return F64, fmt.Errorf("tensor: unknown dtype %q (want f64 | f32 | bf16)", s)
}

// BF16FromF32 narrows a float32 to its bfloat16 bit pattern with
// round-to-nearest-even. NaNs are quieted (a payload that truncates to all
// zeros would turn NaN into infinity); infinities, zeros and subnormals
// round like any other value — bfloat16 shares the float32 exponent range,
// so f32 subnormals map onto bf16 subnormals by mantissa rounding alone.
func BF16FromF32(x float32) uint16 {
	b := math.Float32bits(x)
	if b&0x7fffffff > 0x7f800000 { // NaN: keep sign, force a quiet payload
		return uint16(b>>16) | 0x0040
	}
	return uint16((b + 0x7fff + (b>>16)&1) >> 16)
}

// BF16ToF32 widens a bfloat16 bit pattern to float32 exactly.
func BF16ToF32(h uint16) float32 { return math.Float32frombits(uint32(h) << 16) }

// RoundBF16 rounds a float32 to the nearest bfloat16-representable value
// (round-to-nearest-even), staying in float32.
func RoundBF16(x float32) float32 { return BF16ToF32(BF16FromF32(x)) }

// RoundBF16InPlace re-narrows every element of a BF16-tagged tensor to its
// bfloat16-representable value. Mutation boundaries of parameter tensors
// (optimizer steps, averaging) call this to uphold the BF16 storage
// invariant; it is a no-op for other dtypes.
func RoundBF16InPlace(t *Tensor) {
	if t.DT != BF16 {
		return
	}
	for i, v := range t.F32 {
		t.F32[i] = RoundBF16(v)
	}
}

// DTypeOf returns the DType corresponding to the type parameter F.
// unsafe.Sizeof of the zero element is a compile-time constant per
// instantiation, so the branch folds away.
func DTypeOf[F Float]() DType {
	var z F
	if unsafe.Sizeof(z) == 4 {
		return F32
	}
	return F64
}

// Of returns the backing slice of t typed as []F. It panics when F does not
// match t's dtype, which turns a mixed-dtype kernel call into an immediate,
// attributable failure instead of silent garbage. The reslice goes through
// unsafe.Slice purely to convince the compiler that []float32 is []F when
// F = float32 (the dtype guard makes the layouts identical); unlike an
// any-boxed type assertion it never allocates, which the zero-alloc
// steady-state gates in internal/nn rely on.
func Of[F Float](t *Tensor) []F {
	var z F
	if unsafe.Sizeof(z) == 4 {
		if t.DT.Backing() != F32 {
			panic("tensor: float32 kernel applied to a " + t.DT.String() + " tensor")
		}
		if len(t.F32) == 0 {
			return nil
		}
		return unsafe.Slice((*F)(unsafe.Pointer(&t.F32[0])), len(t.F32))
	}
	if t.DT != F64 {
		panic("tensor: float64 kernel applied to a " + t.DT.String() + " tensor")
	}
	if len(t.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*F)(unsafe.Pointer(&t.Data[0])), len(t.Data))
}

// RowOf returns a view of row i of a rank-2 tensor typed as []F, the
// dtype-generic counterpart of Row.
func RowOf[F Float](t *Tensor, i int) []F {
	c := t.Shape[1]
	return Of[F](t)[i*c : (i+1)*c]
}
