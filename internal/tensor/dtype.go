package tensor

import (
	"fmt"
	"unsafe"
)

// DType identifies the element type of a tensor. It is a property of the
// run, not of the codebase: every kernel in this package is implemented
// once, generically over Float, and dispatched at the Tensor facade on the
// DT field. The zero value is F64, so all pre-dtype code (and the golden
// float64 reference path) keeps working unchanged.
type DType uint8

// The element types.
const (
	F64 DType = iota // 8-byte IEEE-754, the golden reference path
	F32              // 4-byte IEEE-754, the SIMD-width/working-set fast path
)

// numDTypes bounds the valid range for validation (checkpoint headers).
const numDTypes = 2

// Float is the constraint of the generic kernels: exactly the element
// types a Tensor can carry.
type Float interface {
	float32 | float64
}

// String names the dtype for flags, reports and checkpoint diagnostics.
func (d DType) String() string {
	switch d {
	case F64:
		return "f64"
	case F32:
		return "f32"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Valid reports whether d names a known element type.
func (d DType) Valid() bool { return d < numDTypes }

// Bytes returns the element size in bytes.
func (d DType) Bytes() int {
	if d == F32 {
		return 4
	}
	return 8
}

// ParseDType maps a flag value ("f64" | "f32") to a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("tensor: unknown dtype %q (want f64 | f32)", s)
}

// DTypeOf returns the DType corresponding to the type parameter F.
// unsafe.Sizeof of the zero element is a compile-time constant per
// instantiation, so the branch folds away.
func DTypeOf[F Float]() DType {
	var z F
	if unsafe.Sizeof(z) == 4 {
		return F32
	}
	return F64
}

// Of returns the backing slice of t typed as []F. It panics when F does not
// match t's dtype, which turns a mixed-dtype kernel call into an immediate,
// attributable failure instead of silent garbage. The reslice goes through
// unsafe.Slice purely to convince the compiler that []float32 is []F when
// F = float32 (the dtype guard makes the layouts identical); unlike an
// any-boxed type assertion it never allocates, which the zero-alloc
// steady-state gates in internal/nn rely on.
func Of[F Float](t *Tensor) []F {
	var z F
	if unsafe.Sizeof(z) == 4 {
		if t.DT != F32 {
			panic("tensor: float32 kernel applied to a " + t.DT.String() + " tensor")
		}
		if len(t.F32) == 0 {
			return nil
		}
		return unsafe.Slice((*F)(unsafe.Pointer(&t.F32[0])), len(t.F32))
	}
	if t.DT != F64 {
		panic("tensor: float64 kernel applied to a " + t.DT.String() + " tensor")
	}
	if len(t.Data) == 0 {
		return nil
	}
	return unsafe.Slice((*F)(unsafe.Pointer(&t.Data[0])), len(t.Data))
}

// RowOf returns a view of row i of a rank-2 tensor typed as []F, the
// dtype-generic counterpart of Row.
func RowOf[F Float](t *Tensor, i int) []F {
	c := t.Shape[1]
	return Of[F](t)[i*c : (i+1)*c]
}
