// AVX elementwise kernels for the vector primitives in vec.go. Every kernel
// processes n elements where n is a positive multiple of the lane count
// (4 float64 / 8 float32); Go wrappers handle the scalar tail. The bodies
// are element-independent (no horizontal reductions), so results are
// bit-identical to the scalar loops.

#include "textflag.h"

// func vecAdd64(dst, src *float64, n int)   // dst[i] += src[i]
TEXT ·vecAdd64(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX

add64loop:
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     add64loop
	VZEROUPPER
	RET

// func vecAdd32(dst, src *float32, n int)
TEXT ·vecAdd32(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX

add32loop:
	VMOVUPS (DI), Y0
	VADDPS  (SI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     add32loop
	VZEROUPPER
	RET

// func vecReluFwd64(out, x *float64, n int)   // out = max(x, +0); NaN → +0
//
// MAXPD returns the second source when the operands are both zero or either
// is NaN, so with +0 as the second source the lane result matches the
// scalar `if v > 0 { v } else { 0 }` exactly (including -0 and NaN inputs).
TEXT ·vecReluFwd64(SB), NOSPLIT, $0-24
	MOVQ   out+0(FP), DI
	MOVQ   x+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $2, CX
	VXORPD Y1, Y1, Y1

relufwd64loop:
	VMOVUPD (SI), Y0
	VMAXPD  Y1, Y0, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     relufwd64loop
	VZEROUPPER
	RET

// func vecReluFwd32(out, x *float32, n int)
TEXT ·vecReluFwd32(SB), NOSPLIT, $0-24
	MOVQ   out+0(FP), DI
	MOVQ   x+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $3, CX
	VXORPS Y1, Y1, Y1

relufwd32loop:
	VMOVUPS (SI), Y0
	VMAXPS  Y1, Y0, Y2
	VMOVUPS Y2, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     relufwd32loop
	VZEROUPPER
	RET

// func vecReluBwd64(dx, grad, y *float64, n int)   // dx = grad where y > 0
//
// CMPPD with predicate 0x1E (GT_OQ) produces an all-ones mask where
// y > 0 (ordered, quiet — NaN compares false), which gates grad via ANDPD.
TEXT ·vecReluBwd64(SB), NOSPLIT, $0-32
	MOVQ   dx+0(FP), DI
	MOVQ   grad+8(FP), SI
	MOVQ   y+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $2, CX
	VXORPD Y3, Y3, Y3

relubwd64loop:
	VMOVUPD (DX), Y0
	VCMPPD  $0x1e, Y3, Y0, Y1
	VMOVUPD (SI), Y2
	VANDPD  Y2, Y1, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     relubwd64loop
	VZEROUPPER
	RET

// func vecReluBwd32(dx, grad, y *float32, n int)
TEXT ·vecReluBwd32(SB), NOSPLIT, $0-32
	MOVQ   dx+0(FP), DI
	MOVQ   grad+8(FP), SI
	MOVQ   y+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $3, CX
	VXORPS Y3, Y3, Y3

relubwd32loop:
	VMOVUPS (DX), Y0
	VCMPPS  $0x1e, Y3, Y0, Y1
	VMOVUPS (SI), Y2
	VANDPS  Y2, Y1, Y2
	VMOVUPS Y2, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     relubwd32loop
	VZEROUPPER
	RET

// func fmaMicro4x8f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)
//
// The 4-row little sibling of fmaMicro8x8f32, for GEMM shapes whose output
// has fewer than 8 rows (narrow grouped convolutions): C[r, 0:8] (+)=
// Σ_t A[r, t]·B[t, 0:8] for r in 0..3. Same calling convention.
TEXT ·fmaMicro4x8f32(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (DI)(CX*1), R10 // C row 1
	LEAQ (R10)(CX*1), R11 // C row 2
	LEAQ (R11)(CX*1), R12 // C row 3

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	TESTQ AX, AX
	JZ    loop4x32
	VMOVUPS (DI), Y0
	VMOVUPS (R10), Y1
	VMOVUPS (R11), Y2
	VMOVUPS (R12), Y3

loop4x32:
	VMOVUPS      (BX), Y8
	VBROADCASTSS (SI), Y10
	VBROADCASTSS (SI)(R8*1), Y11
	VBROADCASTSS (SI)(R8*2), Y12
	VBROADCASTSS (SI)(R13*1), Y13
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y8, Y11, Y1
	VFMADD231PS  Y8, Y12, Y2
	VFMADD231PS  Y8, Y13, Y3
	ADDQ         $32, BX
	ADDQ         R9, SI
	DECQ         DX
	JNZ          loop4x32

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (R10)
	VMOVUPS Y2, (R11)
	VMOVUPS Y3, (R12)
	VZEROUPPER
	RET

// func transpose8x8f32(dst, src *float32, srcStride int)
//
// Writes dst[t·8+j] = src[j·stride + t·4] for j,t in 0..7 (stride in
// bytes): the 8×8 float32 transpose at the heart of the A·Bᵀ panel pack,
// via the classic unpack/shuffle/permute lattice.
TEXT ·transpose8x8f32(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ srcStride+16(FP), CX

	LEAQ    (CX)(CX*2), R8 // 3·stride
	LEAQ    (SI)(CX*4), R9 // row 4 base
	VMOVUPS (SI), Y0
	VMOVUPS (SI)(CX*1), Y1
	VMOVUPS (SI)(CX*2), Y2
	VMOVUPS (SI)(R8*1), Y3
	VMOVUPS (R9), Y4
	VMOVUPS (R9)(CX*1), Y5
	VMOVUPS (R9)(CX*2), Y6
	VMOVUPS (R9)(R8*1), Y7

	VUNPCKLPS Y1, Y0, Y8
	VUNPCKHPS Y1, Y0, Y9
	VUNPCKLPS Y3, Y2, Y10
	VUNPCKHPS Y3, Y2, Y11
	VUNPCKLPS Y5, Y4, Y12
	VUNPCKHPS Y5, Y4, Y13
	VUNPCKLPS Y7, Y6, Y14
	VUNPCKHPS Y7, Y6, Y15

	VSHUFPS $0x44, Y10, Y8, Y0
	VSHUFPS $0xEE, Y10, Y8, Y1
	VSHUFPS $0x44, Y11, Y9, Y2
	VSHUFPS $0xEE, Y11, Y9, Y3
	VSHUFPS $0x44, Y14, Y12, Y4
	VSHUFPS $0xEE, Y14, Y12, Y5
	VSHUFPS $0x44, Y15, Y13, Y6
	VSHUFPS $0xEE, Y15, Y13, Y7

	VPERM2F128 $0x20, Y4, Y0, Y8
	VPERM2F128 $0x20, Y5, Y1, Y9
	VPERM2F128 $0x20, Y6, Y2, Y10
	VPERM2F128 $0x20, Y7, Y3, Y11
	VPERM2F128 $0x31, Y4, Y0, Y12
	VPERM2F128 $0x31, Y5, Y1, Y13
	VPERM2F128 $0x31, Y6, Y2, Y14
	VPERM2F128 $0x31, Y7, Y3, Y15

	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	VMOVUPS Y10, 64(DI)
	VMOVUPS Y11, 96(DI)
	VMOVUPS Y12, 128(DI)
	VMOVUPS Y13, 160(DI)
	VMOVUPS Y14, 192(DI)
	VMOVUPS Y15, 224(DI)
	VZEROUPPER
	RET

// func vecSum32(x *float32, n int) float32   // n > 0, multiple of 8
TEXT ·vecSum32(SB), NOSPLIT, $0-20
	MOVQ   x+0(FP), SI
	MOVQ   n+8(FP), CX
	SHRQ   $3, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

sum32pair:
	CMPQ   CX, $2
	JL     sum32one
	VADDPS (SI), Y0, Y0
	VADDPS 32(SI), Y1, Y1
	ADDQ   $64, SI
	SUBQ   $2, CX
	JMP    sum32pair

sum32one:
	TESTQ  CX, CX
	JZ     sum32done
	VADDPS (SI), Y0, Y0

sum32done:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, ret+16(FP)
	VZEROUPPER
	RET

// func vecSqDiff32(x *float32, n int, mean float32) float32
TEXT ·vecSqDiff32(SB), NOSPLIT, $0-28
	MOVQ         x+0(FP), SI
	MOVQ         n+8(FP), CX
	SHRQ         $3, CX
	VBROADCASTSS mean+16(FP), Y3
	VXORPS       Y0, Y0, Y0
	VXORPS       Y4, Y4, Y4

sqd32pair:
	CMPQ        CX, $2
	JL          sqd32one
	VMOVUPS     (SI), Y2
	VSUBPS      Y3, Y2, Y2
	VFMADD231PS Y2, Y2, Y0
	VMOVUPS     32(SI), Y5
	VSUBPS      Y3, Y5, Y5
	VFMADD231PS Y5, Y5, Y4
	ADDQ        $64, SI
	SUBQ        $2, CX
	JMP         sqd32pair

sqd32one:
	TESTQ       CX, CX
	JZ          sqd32done
	VMOVUPS     (SI), Y2
	VSUBPS      Y3, Y2, Y2
	VFMADD231PS Y2, Y2, Y0

sqd32done:
	VADDPS       Y4, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, ret+24(FP)
	VZEROUPPER
	RET

// func vecDotSum32(gp, x *float32, n int) (s, d float32)
// s = Σ gp[i], d = Σ gp[i]·x[i] — the batch-norm backward reductions fused.
TEXT ·vecDotSum32(SB), NOSPLIT, $0-32
	MOVQ   gp+0(FP), SI
	MOVQ   x+8(FP), DX
	MOVQ   n+16(FP), CX
	SHRQ   $3, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

dot32loop:
	VMOVUPS     (SI), Y2
	VADDPS      Y2, Y0, Y0
	VFMADD231PS (DX), Y2, Y1
	ADDQ        $32, SI
	ADDQ        $32, DX
	DECQ        CX
	JNZ         dot32loop

	VEXTRACTF128 $1, Y0, X2
	VADDPS       X2, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, s+24(FP)
	VEXTRACTF128 $1, Y1, X2
	VADDPS       X2, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VMOVSS       X1, d+28(FP)
	VZEROUPPER
	RET

// func bnNorm32(x, xh, out *float32, n int, mean, inv, gm, b float32)
//
// xh = (x-mean)·inv; out = gm·xh + b, with the same sub/mul/mul/add rounding
// sequence as the scalar loop, so results are bit-identical to it.
TEXT ·bnNorm32(SB), NOSPLIT, $0-48
	MOVQ         x+0(FP), SI
	MOVQ         xh+8(FP), DX
	MOVQ         out+16(FP), DI
	MOVQ         n+24(FP), CX
	SHRQ         $3, CX
	VBROADCASTSS mean+32(FP), Y4
	VBROADCASTSS inv+36(FP), Y5
	VBROADCASTSS gm+40(FP), Y6
	VBROADCASTSS b+44(FP), Y7

bnn32loop:
	VMOVUPS (SI), Y0
	VSUBPS  Y4, Y0, Y0
	VMULPS  Y5, Y0, Y0
	VMOVUPS Y0, (DX)
	VMULPS  Y6, Y0, Y1
	VADDPS  Y7, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     bnn32loop
	VZEROUPPER
	RET

// func bnGrad32(gy, xh, dst *float32, n int, scale, m, sumDy, sumDyXhat float32)
//
// dst = scale·(m·gy − sumDy − xh·sumDyXhat), same rounding sequence as the
// scalar loop.
TEXT ·bnGrad32(SB), NOSPLIT, $0-48
	MOVQ         gy+0(FP), SI
	MOVQ         xh+8(FP), DX
	MOVQ         dst+16(FP), DI
	MOVQ         n+24(FP), CX
	SHRQ         $3, CX
	VBROADCASTSS scale+32(FP), Y4
	VBROADCASTSS m+36(FP), Y5
	VBROADCASTSS sumDy+40(FP), Y6
	VBROADCASTSS sumDyXhat+44(FP), Y7

bng32loop:
	VMOVUPS (SI), Y0
	VMULPS  Y5, Y0, Y0
	VSUBPS  Y6, Y0, Y0
	VMOVUPS (DX), Y1
	VMULPS  Y7, Y1, Y1
	VSUBPS  Y1, Y0, Y0
	VMULPS  Y4, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     bng32loop
	VZEROUPPER
	RET

// func bnNorm64(x, xh, out *float64, n int, mean, inv, gm, b float64)
//
// The float64 twin of bnNorm32: 4 doubles per step, identical sub/mul/mul/add
// rounding sequence to the scalar reference loop, so the float64 golden path
// stays bit-frozen. n must be a positive multiple of 4.
TEXT ·bnNorm64(SB), NOSPLIT, $0-64
	MOVQ         x+0(FP), SI
	MOVQ         xh+8(FP), DX
	MOVQ         out+16(FP), DI
	MOVQ         n+24(FP), CX
	SHRQ         $2, CX
	VBROADCASTSD mean+32(FP), Y4
	VBROADCASTSD inv+40(FP), Y5
	VBROADCASTSD gm+48(FP), Y6
	VBROADCASTSD b+56(FP), Y7

bnn64loop:
	VMOVUPD (SI), Y0
	VSUBPD  Y4, Y0, Y0
	VMULPD  Y5, Y0, Y0
	VMOVUPD Y0, (DX)
	VMULPD  Y6, Y0, Y1
	VADDPD  Y7, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     bnn64loop
	VZEROUPPER
	RET

// func bnGrad64(gy, xh, dst *float64, n int, scale, m, sumDy, sumDyXhat float64)
//
// The float64 twin of bnGrad32, same rounding sequence as the scalar
// reference loop. n must be a positive multiple of 4.
TEXT ·bnGrad64(SB), NOSPLIT, $0-64
	MOVQ         gy+0(FP), SI
	MOVQ         xh+8(FP), DX
	MOVQ         dst+16(FP), DI
	MOVQ         n+24(FP), CX
	SHRQ         $2, CX
	VBROADCASTSD scale+32(FP), Y4
	VBROADCASTSD m+40(FP), Y5
	VBROADCASTSD sumDy+48(FP), Y6
	VBROADCASTSD sumDyXhat+56(FP), Y7

bng64loop:
	VMOVUPD (SI), Y0
	VMULPD  Y5, Y0, Y0
	VSUBPD  Y6, Y0, Y0
	VMOVUPD (DX), Y1
	VMULPD  Y7, Y1, Y1
	VSUBPD  Y1, Y0, Y0
	VMULPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     bng64loop
	VZEROUPPER
	RET

// func adamStep32(w, gp, m, v *float32, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float32)
//
// One bias-corrected Adam update over n elements (n multiple of 8):
//   m = b1·m + omb1·g;  v = b2·v + omb2·g²
//   w -= lr · (m/c1) / (sqrt(v/c2) + eps)
// VSQRTPS computes the correctly rounded single-precision root directly
// (the scalar fallback rounds through float64), so lanes may differ from
// the scalar path by an ulp — within the float32 path's accuracy budget.
TEXT ·adamStep32(SB), NOSPLIT, $0-72
	MOVQ w+0(FP), DI
	MOVQ gp+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	SHRQ $3, CX

	VBROADCASTSS lr+40(FP), Y15
	VBROADCASTSS b1+44(FP), Y8
	VBROADCASTSS omb1+48(FP), Y9
	VBROADCASTSS b2+52(FP), Y10
	VBROADCASTSS omb2+56(FP), Y11
	VBROADCASTSS eps+60(FP), Y12
	VBROADCASTSS c1+64(FP), Y13
	VBROADCASTSS c2+68(FP), Y14

adam32loop:
	VMOVUPS     (R8), Y0
	VMULPS      Y8, Y0, Y0
	VMOVUPS     (SI), Y1
	VFMADD231PS Y9, Y1, Y0
	VMOVUPS     Y0, (R8)
	VMOVUPS     (R9), Y2
	VMULPS      Y10, Y2, Y2
	VMULPS      Y1, Y1, Y3
	VFMADD231PS Y11, Y3, Y2
	VMOVUPS     Y2, (R9)
	VDIVPS      Y13, Y0, Y0
	VDIVPS      Y14, Y2, Y2
	VSQRTPS     Y2, Y2
	VADDPS      Y12, Y2, Y2
	VDIVPS      Y2, Y0, Y0
	VMULPS      Y15, Y0, Y0
	VMOVUPS     (DI), Y3
	VSUBPS      Y0, Y3, Y3
	VMOVUPS     Y3, (DI)
	ADDQ        $32, DI
	ADDQ        $32, SI
	ADDQ        $32, R8
	ADDQ        $32, R9
	DECQ        CX
	JNZ         adam32loop
	VZEROUPPER
	RET

// func addScalar32(dst, src *float32, n int, c float32)   // dst = src + c
TEXT ·addScalar32(SB), NOSPLIT, $0-28
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	SHRQ         $3, CX
	VBROADCASTSS c+24(FP), Y1

adds32loop:
	VMOVUPS (SI), Y0
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     adds32loop
	VZEROUPPER
	RET

// func addRows32(dst, src *float32, rows, n, dstStride, srcStride int)
//
// dst[r·dstStride + i] += src[r·srcStride + i] for r < rows, i < n
// (strides in bytes): the col2im scatter-accumulate, one tap per call.
// Vector body plus in-kernel scalar tail — no masked moves, which are
// slow on several virtualized hosts. Element-independent adds, so results
// are bit-identical to the scalar loop.
TEXT ·addRows32(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rows+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ dstStride+32(FP), R10
	MOVQ srcStride+40(FP), R11
	MOVQ R9, R15
	ANDQ $7, R15 // tail count
	SHRQ $3, R9  // vector count

arow32:
	MOVQ  DI, R13
	MOVQ  SI, R14
	MOVQ  R9, CX
	TESTQ CX, CX
	JZ    atail32

avec32:
	VMOVUPS (R13), Y0
	VADDPS  (R14), Y0, Y0
	VMOVUPS Y0, (R13)
	ADDQ    $32, R13
	ADDQ    $32, R14
	DECQ    CX
	JNZ     avec32

atail32:
	MOVQ  R15, CX
	TESTQ CX, CX
	JZ    anext32

ascl32:
	VMOVSS (R13), X0
	VADDSS (R14), X0, X0
	VMOVSS X0, (R13)
	ADDQ   $4, R13
	ADDQ   $4, R14
	DECQ   CX
	JNZ    ascl32

anext32:
	ADDQ R10, DI
	ADDQ R11, SI
	DECQ R8
	JNZ  arow32
	VZEROUPPER
	RET

// func addRows64(dst, src *float64, rows, n, dstStride, srcStride int)
TEXT ·addRows64(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rows+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ dstStride+32(FP), R10
	MOVQ srcStride+40(FP), R11
	MOVQ R9, R15
	ANDQ $3, R15
	SHRQ $2, R9

arow64:
	MOVQ  DI, R13
	MOVQ  SI, R14
	MOVQ  R9, CX
	TESTQ CX, CX
	JZ    atail64

avec64:
	VMOVUPD (R13), Y0
	VADDPD  (R14), Y0, Y0
	VMOVUPD Y0, (R13)
	ADDQ    $32, R13
	ADDQ    $32, R14
	DECQ    CX
	JNZ     avec64

atail64:
	MOVQ  R15, CX
	TESTQ CX, CX
	JZ    anext64

ascl64:
	VMOVSD (R13), X0
	VADDSD (R14), X0, X0
	VMOVSD X0, (R13)
	ADDQ   $8, R13
	ADDQ   $8, R14
	DECQ   CX
	JNZ    ascl64

anext64:
	ADDQ R10, DI
	ADDQ R11, SI
	DECQ R8
	JNZ  arow64
	VZEROUPPER
	RET

// func copyRows32(dst, src *float32, rows, n, dstStride, srcStride int)
//
// dst[r·dstStride + i] = src[r·srcStride + i]: the im2col row traffic,
// fused into one call per tap (vector body + in-kernel scalar tail).
TEXT ·copyRows32(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rows+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ dstStride+32(FP), R10
	MOVQ srcStride+40(FP), R11
	MOVQ R9, R15
	ANDQ $7, R15
	SHRQ $3, R9

crow32:
	MOVQ  DI, R13
	MOVQ  SI, R14
	MOVQ  R9, CX
	TESTQ CX, CX
	JZ    ctail32

cvec32:
	VMOVUPS (R14), Y0
	VMOVUPS Y0, (R13)
	ADDQ    $32, R13
	ADDQ    $32, R14
	DECQ    CX
	JNZ     cvec32

ctail32:
	MOVQ  R15, CX
	TESTQ CX, CX
	JZ    cnext32

cscl32:
	VMOVSS (R14), X0
	VMOVSS X0, (R13)
	ADDQ   $4, R13
	ADDQ   $4, R14
	DECQ   CX
	JNZ    cscl32

cnext32:
	ADDQ R10, DI
	ADDQ R11, SI
	DECQ R8
	JNZ  crow32
	VZEROUPPER
	RET

// func copyRows64(dst, src *float64, rows, n, dstStride, srcStride int)
TEXT ·copyRows64(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rows+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ dstStride+32(FP), R10
	MOVQ srcStride+40(FP), R11
	MOVQ R9, R15
	ANDQ $3, R15
	SHRQ $2, R9

crow64:
	MOVQ  DI, R13
	MOVQ  SI, R14
	MOVQ  R9, CX
	TESTQ CX, CX
	JZ    ctail64

cvec64:
	VMOVUPD (R14), Y0
	VMOVUPD Y0, (R13)
	ADDQ    $32, R13
	ADDQ    $32, R14
	DECQ    CX
	JNZ     cvec64

ctail64:
	MOVQ  R15, CX
	TESTQ CX, CX
	JZ    cnext64

cscl64:
	VMOVSD (R14), X0
	VMOVSD X0, (R13)
	ADDQ   $8, R13
	ADDQ   $8, R14
	DECQ   CX
	JNZ    cscl64

cnext64:
	ADDQ R10, DI
	ADDQ R11, SI
	DECQ R8
	JNZ  crow64
	VZEROUPPER
	RET

// func adamStep64(w, gp, m, v *float64, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float64)
//
// f64 twin of adamStep32 (n multiple of 4). Unlike the f32 kernel this one
// avoids FMA and mirrors the scalar expression's rounding sequence exactly
// — separate multiplies, then add — and VSQRTPD is the same correctly
// rounded root math.Sqrt takes, so every lane is bit-identical to the
// scalar loop: the f64 golden path stays frozen.
TEXT ·adamStep64(SB), NOSPLIT, $0-104
	MOVQ w+0(FP), DI
	MOVQ gp+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	SHRQ $2, CX

	VBROADCASTSD lr+40(FP), Y15
	VBROADCASTSD b1+48(FP), Y8
	VBROADCASTSD omb1+56(FP), Y9
	VBROADCASTSD b2+64(FP), Y10
	VBROADCASTSD omb2+72(FP), Y11
	VBROADCASTSD eps+80(FP), Y12
	VBROADCASTSD c1+88(FP), Y13
	VBROADCASTSD c2+96(FP), Y14

adam64loop:
	VMOVUPD (R8), Y0
	VMULPD  Y8, Y0, Y0   // b1·m
	VMOVUPD (SI), Y1
	VMULPD  Y9, Y1, Y2   // omb1·g
	VADDPD  Y2, Y0, Y0   // m' = b1·m + omb1·g
	VMOVUPD Y0, (R8)
	VMOVUPD (R9), Y2
	VMULPD  Y10, Y2, Y2  // b2·v
	VMULPD  Y11, Y1, Y3  // omb2·g
	VMULPD  Y1, Y3, Y3   // (omb2·g)·g, as the scalar's left association
	VADDPD  Y3, Y2, Y2   // v' = b2·v + omb2·g·g
	VMOVUPD Y2, (R9)
	VDIVPD  Y13, Y0, Y0  // mh = m'/c1
	VDIVPD  Y14, Y2, Y2  // vh = v'/c2
	VSQRTPD Y2, Y2
	VADDPD  Y12, Y2, Y2  // sqrt(vh) + eps
	VMULPD  Y15, Y0, Y0  // lr·mh
	VDIVPD  Y2, Y0, Y0   // (lr·mh)/(sqrt(vh)+eps)
	VMOVUPD (DI), Y3
	VSUBPD  Y0, Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	DECQ    CX
	JNZ     adam64loop
	VZEROUPPER
	RET

// func addScalar64(dst, src *float64, n int, c float64)   // dst = src + c
TEXT ·addScalar64(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	SHRQ         $2, CX
	VBROADCASTSD c+24(FP), Y1

adds64loop:
	VMOVUPD (SI), Y0
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     adds64loop
	VZEROUPPER
	RET
