//go:build amd64

package tensor

// useVec gates the AVX elementwise kernels in vec_amd64.s; they need the
// same AVX2 feature set the FMA micro-kernels probe for.
var useVec = useFMA

// Implemented in vec_amd64.s. n must be a positive multiple of the lane
// count; callers handle tails.
//
//go:noescape
func vecAdd64(dst, src *float64, n int)

//go:noescape
func vecAdd32(dst, src *float32, n int)

//go:noescape
func vecReluFwd64(out, x *float64, n int)

//go:noescape
func vecReluFwd32(out, x *float32, n int)

//go:noescape
func vecReluBwd64(dx, grad, y *float64, n int)

//go:noescape
func vecReluBwd32(dx, grad, y *float32, n int)

//go:noescape
func fmaMicro4x8f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)

//go:noescape
func transpose8x8f32(dst, src *float32, srcStride int)

//go:noescape
func vecSum32(x *float32, n int) float32

//go:noescape
func vecSqDiff32(x *float32, n int, mean float32) float32

//go:noescape
func vecDotSum32(gp, x *float32, n int) (s, d float32)

//go:noescape
func bnNorm32(x, xh, out *float32, n int, mean, inv, gm, b float32)

//go:noescape
func bnGrad32(gy, xh, dst *float32, n int, scale, m, sumDy, sumDyXhat float32)

//go:noescape
func bnNorm64(x, xh, out *float64, n int, mean, inv, gm, b float64)

//go:noescape
func bnGrad64(gy, xh, dst *float64, n int, scale, m, sumDy, sumDyXhat float64)

//go:noescape
func adamStep32(w, gp, m, v *float32, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float32)

//go:noescape
func addScalar32(dst, src *float32, n int, c float32)

//go:noescape
func adamStep64(w, gp, m, v *float64, n int, lr, b1, omb1, b2, omb2, eps, c1, c2 float64)

//go:noescape
func addScalar64(dst, src *float64, n int, c float64)

//go:noescape
func addRows32(dst, src *float32, rows, n, dstStride, srcStride int)

//go:noescape
func addRows64(dst, src *float64, rows, n, dstStride, srcStride int)

//go:noescape
func copyRows32(dst, src *float32, rows, n, dstStride, srcStride int)

//go:noescape
func copyRows64(dst, src *float64, rows, n, dstStride, srcStride int)
