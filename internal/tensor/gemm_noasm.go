//go:build !amd64

package tensor

// Non-amd64 builds always take the portable blocked kernels.
const useFMA = false

func gemmNNRangeFMA(out, a, b []float64, k, n, lo, hi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmATRangeFMA(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmABTRangeFMA(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}
