//go:build !amd64

package tensor

// Non-amd64 builds always take the portable blocked kernels, at either
// element width.
const (
	useFMA      = false
	useFMA32    = false
	useAVX512   = false
	useAVX51232 = false
)

// CPUFeatures reports no SIMD tiers: non-amd64 builds run the portable
// kernels only.
func CPUFeatures() []string { return nil }

func gemmNNRangeFMA(out, a, b []float64, k, n, lo, hi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmATRangeFMA(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmABTRangeFMA(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmNNRangeFMA32(out, a, b []float32, k, n, lo, hi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmATRangeFMA32(out, a, b []float32, m, k, n, plo, phi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmABTRangeFMA32(out, a, b []float32, k, n, ilo, ihi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmNNRangeAVX512(out, a, b []float64, k, n, lo, hi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

func gemmATRangeAVX512(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

func gemmABTRangeAVX512(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

func gemmNNRangeAVX51232(out, a, b []float32, k, n, lo, hi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

func gemmATRangeAVX51232(out, a, b []float32, m, k, n, plo, phi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

func gemmABTRangeAVX51232(out, a, b []float32, k, n, ilo, ihi int, acc bool) {
	panic("tensor: AVX-512 kernel unavailable")
}

// MaxPool2x2F32 reports the AVX-512 max-pool kernel unavailable on non-amd64
// builds; callers take the portable scalar loop.
func MaxPool2x2F32(x, out []float32, am []int, outH, outW, w, base int) bool { return false }

// MaxPool2x2F64 reports the AVX-512 max-pool kernel unavailable on non-amd64
// builds; callers take the portable scalar loop.
func MaxPool2x2F64(x, out []float64, am []int, outH, outW, w, base int) bool { return false }
