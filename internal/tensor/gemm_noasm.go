//go:build !amd64

package tensor

// Non-amd64 builds always take the portable blocked kernels, at either
// element width.
const (
	useFMA   = false
	useFMA32 = false
)

func gemmNNRangeFMA(out, a, b []float64, k, n, lo, hi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmATRangeFMA(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmABTRangeFMA(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmNNRangeFMA32(out, a, b []float32, k, n, lo, hi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmATRangeFMA32(out, a, b []float32, m, k, n, plo, phi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}

func gemmABTRangeFMA32(out, a, b []float32, k, n, ilo, ihi int, acc bool) {
	panic("tensor: FMA kernel unavailable")
}
