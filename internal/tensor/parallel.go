package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package maintains one persistent, GOMAXPROCS-sized worker pool that
// every parallel primitive (matmul row sharding, per-sample im2col loops,
// client-level federated parallelism) dispatches onto. Spawning goroutines
// per call is cheap in isolation but dominates the runtime of the many tiny
// kernels a training step issues; a persistent pool makes dispatch a channel
// send.
//
// Deadlock-freedom under nesting: a range is handed to the pool only after
// taking a token, and there are exactly as many tokens as workers, so the
// number of in-flight pool tasks never exceeds the worker count and every
// dispatched task is guaranteed a worker. A task holds its token for its
// whole run; when a nested Parallel* call finds no token free it simply runs
// on the calling goroutine. The caller always executes one share of the work
// itself, so the pool being saturated degrades to sequential execution
// rather than blocking.
var (
	poolWorkers int
	poolTasks   chan func()
	poolTokens  chan struct{}
)

func init() {
	poolWorkers = runtime.GOMAXPROCS(0)
	if poolWorkers < 1 {
		poolWorkers = 1
	}
	poolTasks = make(chan func(), poolWorkers)
	poolTokens = make(chan struct{}, poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		poolTokens <- struct{}{}
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// Workers reports the size of the persistent worker pool (GOMAXPROCS at
// package initialization).
func Workers() int { return poolWorkers }

// ParallelSharded splits [0,n) into at most shards contiguous ranges and
// calls f(shard, lo, hi) once per non-empty range. Each range is processed
// by exactly one goroutine, so shard-indexed accumulators need no locking;
// shard is always < min(shards, n). The calling goroutine executes shard 0
// and any range the pool cannot absorb immediately.
func ParallelSharded(n, shards int, f func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 || poolWorkers == 1 {
		f(0, 0, n)
		return
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	shard := 0
	for lo := chunk; lo < n; lo += chunk {
		shard++
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case <-poolTokens:
			wg.Add(1)
			s, l, h := shard, lo, hi
			poolTasks <- func() {
				f(s, l, h)
				poolTokens <- struct{}{}
				wg.Done()
			}
		default:
			f(shard, lo, hi)
		}
	}
	f(0, 0, chunk)
	wg.Wait()
}

// Parallel runs f(i) for i in [0,n) with dynamic load balancing: the caller
// and up to Workers()-1 pool workers pull indices from a shared atomic
// counter. Use it when iterations have uneven cost (for example federated
// clients with different model sizes); use ParallelSharded when per-shard
// state is needed.
func Parallel(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || poolWorkers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			f(int(i))
		}
	}
	var wg sync.WaitGroup
	helpers := poolWorkers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for h := 0; h < helpers; h++ {
		ok := false
		select {
		case <-poolTokens:
			ok = true
		default:
		}
		if !ok {
			break
		}
		wg.Add(1)
		poolTasks <- func() {
			run()
			poolTokens <- struct{}{}
			wg.Done()
		}
	}
	run()
	wg.Wait()
}
