package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package maintains one persistent, GOMAXPROCS-sized worker pool that
// every parallel primitive (matmul row sharding, per-sample im2col loops,
// client-level federated parallelism) dispatches onto. Spawning goroutines
// per call is cheap in isolation but dominates the runtime of the many tiny
// kernels a training step issues; a persistent pool makes dispatch a channel
// send.
//
// Deadlock-freedom under nesting: a range is handed to the pool only after
// taking a token, and there are exactly as many tokens as workers, so the
// number of in-flight pool tasks never exceeds the worker count and every
// dispatched task is guaranteed a worker. A task holds its token for its
// whole run; when a nested Parallel* call finds no token free it simply runs
// on the calling goroutine. The caller always executes one share of the work
// itself, so the pool being saturated degrades to sequential execution
// rather than blocking.
var (
	poolWorkers int
	poolTasks   chan func()
	poolTokens  chan struct{}
)

func init() {
	poolWorkers = runtime.GOMAXPROCS(0)
	if poolWorkers < 1 {
		poolWorkers = 1
	}
	poolTasks = make(chan func(), poolWorkers)
	poolTokens = make(chan struct{}, poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		poolTokens <- struct{}{}
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// Workers reports the size of the persistent worker pool (GOMAXPROCS at
// package initialization).
func Workers() int { return poolWorkers }

// maxHelpers caps how many pool workers the Parallel* primitives may enlist
// beyond the calling goroutine. It exists for determinism tests that force
// serial execution; 0 means "no cap" (use the whole pool).
var maxHelpers atomic.Int32

// SetMaxWorkers limits Parallel and ParallelSharded to at most n concurrent
// goroutines (including the caller) and returns the previous limit. n <= 0
// or n >= Workers() removes the cap. Intended for tests that compare serial
// against parallel execution; Spawn is unaffected.
func SetMaxWorkers(n int) int {
	prev := int(maxHelpers.Load())
	if prev == 0 {
		prev = poolWorkers
	}
	if n <= 0 || n >= poolWorkers {
		maxHelpers.Store(0)
	} else {
		maxHelpers.Store(int32(n))
	}
	return prev
}

// curWorkers reports the effective concurrency bound for Parallel*.
func curWorkers() int {
	if m := int(maxHelpers.Load()); m > 0 {
		return m
	}
	return poolWorkers
}

// Spawn runs f asynchronously on the persistent worker pool, blocking the
// caller until a worker token is free. Unlike Parallel it does not wait for
// f to finish. Long-running tasks — the async federation engine's client
// updates — go through Spawn so their compute shares the same concurrency
// budget as the kernel-level loops: while all tokens are held, nested
// Parallel* calls inside f degrade to inline execution instead of
// oversubscribing the machine.
func Spawn(f func()) {
	<-poolTokens
	poolTasks <- func() {
		f()
		poolTokens <- struct{}{}
	}
}

// ParallelSharded splits [0,n) into at most shards contiguous ranges and
// calls f(shard, lo, hi) once per non-empty range. Each range is processed
// by exactly one goroutine, so shard-indexed accumulators need no locking;
// shard is always < min(shards, n). The calling goroutine executes shard 0
// and any range the pool cannot absorb immediately.
func ParallelSharded(n, shards int, f func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 || curWorkers() == 1 {
		f(0, 0, n)
		return
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	shard := 0
	// The worker cap bounds concurrency only: shard boundaries are identical
	// at every cap, so per-shard arithmetic (and any caller-side reduction
	// over shards) is bit-identical whether ranges run inline or on workers.
	dispatched, budget := 0, curWorkers()-1
	for lo := chunk; lo < n; lo += chunk {
		shard++
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if dispatched < budget {
			select {
			case <-poolTokens:
				dispatched++
				wg.Add(1)
				s, l, h := shard, lo, hi
				poolTasks <- func() {
					f(s, l, h)
					poolTokens <- struct{}{}
					wg.Done()
				}
				continue
			default:
			}
		}
		f(shard, lo, hi)
	}
	f(0, 0, chunk)
	wg.Wait()
}

// Parallel runs f(i) for i in [0,n) with dynamic load balancing: the caller
// and up to Workers()-1 pool workers pull indices from a shared atomic
// counter. Use it when iterations have uneven cost (for example federated
// clients with different model sizes); use ParallelSharded when per-shard
// state is needed.
func Parallel(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || curWorkers() == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			f(int(i))
		}
	}
	var wg sync.WaitGroup
	helpers := curWorkers() - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for h := 0; h < helpers; h++ {
		ok := false
		select {
		case <-poolTokens:
			ok = true
		default:
		}
		if !ok {
			break
		}
		wg.Add(1)
		poolTasks <- func() {
			run()
			poolTokens <- struct{}{}
			wg.Done()
		}
	}
	run()
	wg.Wait()
}
