package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensorOf(dt DType, rng *rand.Rand, shape ...int) *Tensor {
	t := NewOf(dt, shape...)
	t.FillRandn(rng, 1)
	return t
}

func TestDTypeParseString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DType
		ok   bool
	}{
		{"f64", F64, true}, {"float64", F64, true}, {"", F64, true},
		{"f32", F32, true}, {"float32", F32, true},
		{"f16", F64, false}, {"int8", F64, false},
	} {
		got, err := ParseDType(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseDType(%q) = %v, %v", tc.in, got, err)
		}
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Errorf("String: %v %v", F64, F32)
	}
	if F64.Bytes() != 8 || F32.Bytes() != 4 {
		t.Errorf("Bytes: %d %d", F64.Bytes(), F32.Bytes())
	}
	if !F64.Valid() || !F32.Valid() || DType(9).Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestNewOfZeroValueDType(t *testing.T) {
	if (&Tensor{}).DT != F64 {
		t.Fatal("zero-value Tensor must be F64 for backward compatibility")
	}
	f := NewOf(F32, 2, 3)
	if f.DT != F32 || len(f.F32) != 6 || f.Data != nil {
		t.Fatalf("NewOf(F32): %+v", f)
	}
	if DTypeOf[float32]() != F32 || DTypeOf[float64]() != F64 {
		t.Fatal("DTypeOf misreports")
	}
}

func TestOfPanicsOnDTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Of[float64] on an F32 tensor must panic")
		}
	}()
	Of[float64](NewOf(F32, 2))
}

// The float32 facade ops must agree with their float64 counterparts to
// float32 precision on identical inputs.
func TestElementwiseOpsF32MatchF64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 129 // odd length to cross any unrolling
	a64 := randTensorOf(F64, rng, n)
	b64 := randTensorOf(F64, rng, n)
	a32, b32 := a64.AsType(F32), b64.AsType(F32)

	check := func(name string, got32, want64 *Tensor) {
		t.Helper()
		if !ApproxEqual(got32, want64, 1e-5) {
			t.Errorf("%s: f32 result diverges from f64", name)
		}
	}
	check("AddInto", func() *Tensor { o := NewOf(F32, n); AddInto(o, a32, b32); return o }(),
		func() *Tensor { o := New(n); AddInto(o, a64, b64); return o }())
	check("MulInto", func() *Tensor { o := NewOf(F32, n); MulInto(o, a32, b32); return o }(),
		func() *Tensor { o := New(n); MulInto(o, a64, b64); return o }())
	check("Axpy", func() *Tensor { o := a32.Clone(); o.AxpyInPlace(0.37, b32); return o }(),
		func() *Tensor { o := a64.Clone(); o.AxpyInPlace(0.37, b64); return o }())
	check("Scale", Scale(a32, -1.25), Scale(a64, -1.25))
	check("Sub", Sub(a32, b32), Sub(a64, b64))

	if g, w := Dot(a32, b32), Dot(a64, b64); math.Abs(g-w) > 1e-3 {
		t.Errorf("Dot: %v vs %v", g, w)
	}
	if g, w := a32.Sum(), a64.Sum(); math.Abs(g-w) > 1e-3 {
		t.Errorf("Sum: %v vs %v", g, w)
	}
	if g, w := a32.MaxAbs(), a64.MaxAbs(); math.Abs(g-w) > 1e-5 {
		t.Errorf("MaxAbs: %v vs %v", g, w)
	}
}

func TestRowHelpersAndViews(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randTensorOf(F32, rng, 3, 4)
	row := RowOf[float32](m, 1)
	if len(row) != 4 {
		t.Fatalf("RowOf length %d", len(row))
	}
	dst := make([]float64, 4)
	m.RowTo(1, dst)
	for j := range dst {
		if dst[j] != float64(row[j]) {
			t.Fatalf("RowTo[%d] = %v, want %v", j, dst[j], row[j])
		}
	}
	if m.At(1, 2) != float64(row[2]) {
		t.Fatal("At widening broken")
	}
	m.Set(1, 2, 0.5)
	if row[2] != 0.5 {
		t.Fatal("Set narrowing broken")
	}

	var view Tensor
	ViewInto(&view, m, 4, 8, 2, 2)
	if view.DT != F32 || view.Size() != 4 || &view.F32[0] != &m.F32[4] {
		t.Fatal("ViewInto must alias the F32 backing")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Row on an F32 tensor must panic")
		}
	}()
	m.Row(0)
}

func TestConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randTensorOf(F32, rng, 17)
	// f32 → f64 → f32 must be exact: widening is lossless.
	wide := f.AsType(F64)
	back := wide.AsType(F32)
	for i := range f.F32 {
		if back.F32[i] != f.F32[i] {
			t.Fatalf("round trip changed element %d", i)
		}
	}
	// AppendFloat64s/SetFromFloat64s are the bookkeeping boundary and must
	// round-trip exactly too.
	flat := f.AppendFloat64s(nil)
	g := NewOf(F32, 17)
	g.SetFromFloat64s(flat)
	for i := range f.F32 {
		if g.F32[i] != f.F32[i] {
			t.Fatalf("flat round trip changed element %d", i)
		}
	}
	// WriteFloat64sAt narrows segments.
	h := NewOf(F32, 17)
	h.WriteFloat64sAt(3, flat[3:9])
	for i := 3; i < 9; i++ {
		if h.F32[i] != f.F32[i] {
			t.Fatalf("WriteFloat64sAt changed element %d", i)
		}
	}
}

// All three GEMM forms at f32 must agree with the f64 reference to f32
// precision, at shapes covering full tiles, partial tiles and row tails of
// both the portable and the 8×8 FMA kernel.
func TestMatMulF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {9, 17, 11}, {16, 32, 24}, {33, 65, 19}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a64 := randTensorOf(F64, rng, m, k)
		b64 := randTensorOf(F64, rng, k, n)
		bT64 := Transpose(b64)
		a32, b32, bT32 := a64.AsType(F32), b64.AsType(F32), bT64.AsType(F32)

		tol := 1e-4 * math.Sqrt(float64(k))
		if got, want := MatMul(a32, b32), MatMul(a64, b64); !ApproxEqual(got, want, tol) {
			t.Errorf("MatMul f32 diverges at %v", s)
		}
		if got, want := MatMulATB(Transpose(a32), b32), MatMulATB(Transpose(a64), b64); !ApproxEqual(got, want, tol) {
			t.Errorf("MatMulATB f32 diverges at %v", s)
		}
		if got, want := MatMulABT(a32, bT32), MatMulABT(a64, bT64); !ApproxEqual(got, want, tol) {
			t.Errorf("MatMulABT f32 diverges at %v", s)
		}

		// Acc variants accumulate on top of a seeded output.
		seed64 := randTensorOf(F64, rng, k, n)
		seed32 := seed64.AsType(F32)
		accWant := seed64.Clone()
		MatMulATBAcc(accWant, a64, MatMul(a64, b64))
		accGot := seed32.Clone()
		MatMulATBAcc(accGot, a32, MatMul(a32, b32))
		if !ApproxEqual(accGot, accWant, 10*tol*math.Sqrt(float64(m))) {
			t.Errorf("MatMulATBAcc f32 diverges at %v", s)
		}
	}
}

// The portable and FMA f32 kernels must agree closely on the same inputs
// (FMA fuses the multiply-add, so results are not bit-identical, but they
// share the ascending accumulation order).
func TestF32KernelsAgreeAcrossDispatch(t *testing.T) {
	if !useFMA32 {
		t.Skip("no AVX2+FMA on this host")
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range [][3]int{{8, 16, 8}, {13, 29, 21}, {64, 64, 64}} {
		m, k, n := s[0], s[1], s[2]
		a := randTensorOf(F32, rng, m, k)
		b := randTensorOf(F32, rng, k, n)
		fma := NewOf(F32, m, n)
		gemmNNRangeFMA32(fma.F32, a.F32, b.F32, k, n, 0, m, false)
		portable := NewOf(F32, m, n)
		gemmNNRange[float32](portable.F32, a.F32, b.F32, k, n, 0, m, false)
		if !ApproxEqual(fma, portable, 1e-4*math.Sqrt(float64(k))) {
			t.Errorf("FMA and portable f32 kernels diverge at %v", s)
		}
	}
}

func TestPoolDTypeSeparation(t *testing.T) {
	p := NewPool()
	a := p.GetOf(F32, 4, 4)
	if a.DT != F32 || len(a.F32) != 16 {
		t.Fatalf("GetOf(F32): %+v", a)
	}
	a.Fill(3)
	p.Put(a)
	// The same bucket must serve the next f32 request, zeroed…
	b := p.GetOf(F32, 2, 8)
	if b.DT != F32 || b.Sum() != 0 {
		t.Fatalf("pooled f32 reuse broken: %+v", b)
	}
	if &b.F32[0] != &a.F32[:1][0] {
		t.Fatal("expected f32 buffer reuse within the dtype bucket")
	}
	// …while an f64 request of the same size must NOT get the f32 buffer.
	c := p.Get(4, 4)
	if c.DT != F64 || len(c.Data) != 16 {
		t.Fatalf("Get after f32 Put: %+v", c)
	}
}

func TestEnsureOfDTypeChange(t *testing.T) {
	t64 := New(4)
	t32 := EnsureOf(F32, t64, 4)
	if t32 == t64 || t32.DT != F32 {
		t.Fatal("EnsureOf must allocate on dtype change")
	}
	again := EnsureOf(F32, t32, 2)
	if again != t32 || len(again.F32) != 2 {
		t.Fatal("EnsureOf must reuse matching-dtype storage")
	}
}

func TestReductionRowOpsF32(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a64 := randTensorOf(F64, rng, 5, 9)
	a32 := a64.AsType(F32)
	for i := 0; i < 5; i++ {
		if a32.ArgMaxRow(i) != a64.ArgMaxRow(i) {
			t.Errorf("ArgMaxRow(%d) differs across dtypes", i)
		}
	}
	s32 := a32.Clone()
	s32.SoftmaxRowsInPlace()
	s64 := a64.Clone()
	s64.SoftmaxRowsInPlace()
	if !ApproxEqual(s32, s64, 1e-5) {
		t.Error("SoftmaxRowsInPlace diverges")
	}
	n32 := a32.Clone()
	norms32 := n32.NormalizeRowsInPlace(1e-12)
	n64 := a64.Clone()
	norms64 := n64.NormalizeRowsInPlace(1e-12)
	if !ApproxEqual(n32, n64, 1e-5) {
		t.Error("NormalizeRowsInPlace diverges")
	}
	for i := range norms32 {
		if math.Abs(norms32[i]-norms64[i]) > 1e-4 {
			t.Errorf("norm %d diverges: %v vs %v", i, norms32[i], norms64[i])
		}
	}
	tr32, tr64 := Transpose(a32), Transpose(a64)
	if !ApproxEqual(tr32, tr64, 1e-6) {
		t.Error("Transpose diverges")
	}
	cc := ConcatRows(a32, a32)
	if cc.DT != F32 || cc.Rows() != 10 {
		t.Errorf("ConcatRows dtype/shape: %v %v", cc.DT, cc.Shape)
	}
	sl := a32.SliceRows(1, 3)
	if sl.DT != F32 || !ApproxEqual(sl, a64.SliceRows(1, 3), 1e-6) {
		t.Error("SliceRows diverges")
	}
}

// Mixed-dtype operands must fail loudly, not corrupt.
func TestMixedDTypePanics(t *testing.T) {
	a := New(2, 2)
	b := NewOf(F32, 2, 2)
	for name, f := range map[string]func(){
		"AddInPlace": func() { a.AddInPlace(b) },
		"MatMulInto": func() { MatMulInto(New(2, 2), a, b) },
		"CopyFrom":   func() { a.CopyFrom(b) },
		"Segment":    func() { CopySegment(a, 0, b, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mixed dtypes must panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMatMulInto32Tensor(b *testing.B) {
	a := NewOf(F32, 64, 64)
	c := NewOf(F32, 64, 64)
	out := NewOf(F32, 64, 64)
	a.Fill(0.5)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, c)
	}
}

// The f32 transpose pack must agree exactly with the generic scalar pack at
// every pk (vector blocks + scalar tails) and jw (partial widths fall back).
func TestPackPanelCols32MatchesGeneric(t *testing.T) {
	if !useFMA32 {
		t.Skip("no AVX2 on this host")
	}
	rng := rand.New(rand.NewSource(14))
	const ld = 37
	src := make([]float32, 16*ld)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	for _, pk := range []int{1, 7, 8, 9, 16, 23, 32} {
		for _, jw := range []int{8, 5} {
			want := make([]float32, gemmKC*fmaNR)
			got := make([]float32, gemmKC*fmaNR)
			packPanelCols(want, src, 2, ld, 3, jw, pk)
			packPanelCols32(got, src, 2, ld, 3, jw, pk)
			for i := 0; i < pk*fmaNR; i++ {
				if want[i] != got[i] {
					t.Fatalf("pk=%d jw=%d: element %d differs (%v vs %v)", pk, jw, i, got[i], want[i])
				}
			}
		}
	}
}

// The vector primitives must match their scalar fallbacks bit for bit at
// both widths, including the NaN/-0 relu edge cases.
func TestVecPrimitivesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 67 // forces a scalar tail at both lane widths
	x64 := make([]float64, n)
	g64 := make([]float64, n)
	for i := range x64 {
		x64[i] = rng.NormFloat64()
		g64[i] = rng.NormFloat64()
	}
	x64[3] = math.NaN()
	x64[5] = math.Inf(-1)
	x64[7] = math.Copysign(0, -1)

	out := make([]float64, n)
	VecReluForward(out, x64)
	dx := make([]float64, n)
	VecReluBackward(dx, g64, out)
	acc := append([]float64(nil), g64...)
	VecAccumulate(acc, x64)
	for i := range x64 {
		var wantOut float64
		if x64[i] > 0 {
			wantOut = x64[i]
		}
		if out[i] != wantOut && !(math.IsNaN(out[i]) && math.IsNaN(wantOut)) {
			t.Fatalf("relu fwd[%d] = %v, want %v", i, out[i], wantOut)
		}
		var wantDx float64
		if out[i] > 0 {
			wantDx = g64[i]
		}
		if dx[i] != wantDx {
			t.Fatalf("relu bwd[%d] = %v, want %v", i, dx[i], wantDx)
		}
		if want := g64[i] + x64[i]; acc[i] != want && !math.IsNaN(want) {
			t.Fatalf("accumulate[%d] = %v, want %v", i, acc[i], want)
		}
	}

	x32 := make([]float32, n)
	g32 := make([]float32, n)
	for i := range x32 {
		x32[i] = float32(rng.NormFloat64())
		g32[i] = float32(rng.NormFloat64())
	}
	x32[2] = float32(math.NaN())
	out32 := make([]float32, n)
	VecReluForward(out32, x32)
	dx32 := make([]float32, n)
	VecReluBackward(dx32, g32, out32)
	for i := range x32 {
		var want float32
		if x32[i] > 0 {
			want = x32[i]
		}
		if out32[i] != want && !(out32[i] != out32[i] && want != want) {
			t.Fatalf("relu32 fwd[%d] = %v, want %v", i, out32[i], want)
		}
		var wantDx float32
		if out32[i] > 0 {
			wantDx = g32[i]
		}
		if dx32[i] != wantDx {
			t.Fatalf("relu32 bwd[%d] = %v, want %v", i, dx32[i], wantDx)
		}
	}
}

// GEMM results must be bit-identical at every shard layout: tile-aligned
// shard boundaries keep each row's FMA-tile-vs-tail decomposition a
// function of the row index alone (the property that makes runs
// reproducible across machines with different core counts). Exercised
// directly against the shard parameter at awkward row counts.
func TestGEMMShardLayoutIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dt := range []DType{F64, F32} {
		for _, rows := range []int{5, 13, 16, 33, 64} {
			k, n := 96, 320 // big enough that row tiles and panels all engage
			a := randTensorOf(dt, rng, rows, k)
			b := randTensorOf(dt, rng, k, n)
			var ref *Tensor
			for _, shards := range []int{1, 2, 3, 5, 8, 16} {
				out := NewOf(dt, rows, n)
				if dt == F32 {
					kernel := gemmNNRange[float32]
					if useFMA32 {
						kernel = gemmNNRangeFMA32
					}
					runSharded(kernel, Of[float32](out), Of[float32](a), Of[float32](b), k, n, rows, shards, false)
				} else {
					kernel := gemmNNRange[float64]
					if useFMA {
						kernel = gemmNNRangeFMA
					}
					runSharded(kernel, out.Data, a.Data, b.Data, k, n, rows, shards, false)
				}
				if ref == nil {
					ref = out
					continue
				}
				if !ApproxEqual(out, ref, 0) {
					t.Fatalf("%v rows=%d: shards=%d result differs bitwise from shards=1", dt, rows, shards)
				}
			}
		}
	}
}

// TestBF16RoundTripRNE pins the bfloat16 narrowing contract: exact values
// survive unchanged, ties round to even, f32 subnormals map onto bf16
// subnormals by mantissa rounding, and NaN narrows to a quiet NaN rather
// than an infinity.
func TestBF16RoundTripRNE(t *testing.T) {
	exact := []float32{0, 1, -1, 0.5, -2.25, 3.140625, float32(math.Inf(1)), float32(math.Inf(-1))}
	for _, v := range exact {
		if got := BF16ToF32(BF16FromF32(v)); math.Float32bits(got) != math.Float32bits(v) {
			t.Fatalf("bf16-exact %v round-tripped to %v", v, got)
		}
	}
	// Signed zero keeps its sign bit.
	negZero := math.Float32frombits(0x80000000)
	if math.Float32bits(BF16ToF32(BF16FromF32(negZero))) != 0x80000000 {
		t.Fatal("-0 lost its sign through bf16")
	}
	// Round-to-nearest-even at the tie: 1 + 2^-8 is exactly halfway between
	// bf16(1.0) and the next step 1 + 2^-7; the even mantissa (1.0) wins.
	// One ulp above the tie must round up instead.
	tie := math.Float32frombits(0x3f808000)
	if got := BF16ToF32(BF16FromF32(tie)); got != 1.0 {
		t.Fatalf("tie %x rounded to %v, want 1 (even)", math.Float32bits(tie), got)
	}
	aboveTie := math.Float32frombits(0x3f808001)
	if got := BF16ToF32(BF16FromF32(aboveTie)); got != 1.0078125 {
		t.Fatalf("above-tie rounded to %v, want 1.0078125", got)
	}
	// The odd-mantissa tie rounds up to the next even: 1.0078125 + 2^-8
	// is halfway between mantissas 0x81 (odd) and 0x82 (even).
	oddTie := math.Float32frombits(0x3f818000)
	if got := BF16ToF32(BF16FromF32(oddTie)); got != 1.015625 {
		t.Fatalf("odd tie rounded to %v, want 1.015625 (mantissa 0x82)", got)
	}
	// Subnormals: the smallest f32 subnormal underflows to zero under RNE;
	// a value at half the smallest bf16 subnormal step plus one ulp rounds
	// up to the smallest bf16 subnormal.
	minSub32 := math.Float32frombits(1)
	if got := BF16FromF32(minSub32); got != 0 {
		t.Fatalf("min f32 subnormal narrowed to %#x, want 0", got)
	}
	halfStepUp := math.Float32frombits(0x00008001)
	if got := BF16FromF32(halfStepUp); got != 0x0001 {
		t.Fatalf("above-half subnormal narrowed to %#x, want 0x0001", got)
	}
	if got := BF16ToF32(0x0001); math.Float32bits(got) != 0x00010000 {
		t.Fatalf("min bf16 subnormal widened to %#x", math.Float32bits(got))
	}
	// NaN: quiet, sign preserved, never an infinity.
	for _, bits := range []uint32{0x7fc00000, 0x7f800001, 0xffc12345, 0x7f80ffff} {
		h := BF16FromF32(math.Float32frombits(bits))
		w := BF16ToF32(h)
		if !math.IsNaN(float64(w)) {
			t.Fatalf("NaN %#x narrowed to non-NaN %#x", bits, h)
		}
		if (h>>15)&1 != uint16(bits>>31) {
			t.Fatalf("NaN %#x lost its sign: bf16 %#x", bits, h)
		}
	}
}
