package tensor

// Cross-client batched GEMM: each entry point computes G independent
// products outs[g] (+)= op(as[g], bs[g]) in one worker-pool dispatch. The
// federated engine uses these to lower a same-arch cohort's per-layer
// products — one per client — into a single launch per layer instead of G.
//
// Determinism contract (DESIGN.md §12): a batched call is byte-identical to
// the G standalone calls at every GOMAXPROCS. Each product keeps the shard
// plan the standalone driver would pick — same kernel tier, same
// tile-aligned [lo,hi) ranges — and the fused dispatch only changes *which
// goroutine* runs a (product, shard) unit, never the arithmetic inside it.
// Products with non-uniform shapes or dtypes fall back to sequential
// standalone calls, which trivially preserves the contract.

// batchUniform reports whether every product in the batch shares the shapes
// and backing dtype of product 0, so one shard plan serves all of them.
func batchUniform(outs, as, bs []*Tensor) bool {
	a0, b0 := as[0], bs[0]
	dt := outs[0].DT.Backing()
	for g := 1; g < len(outs); g++ {
		if as[g].Shape[0] != a0.Shape[0] || as[g].Shape[1] != a0.Shape[1] ||
			bs[g].Shape[0] != b0.Shape[0] || bs[g].Shape[1] != b0.Shape[1] ||
			outs[g].DT.Backing() != dt || as[g].DT.Backing() != dt || bs[g].DT.Backing() != dt {
			return false
		}
	}
	return true
}

// opShardPlan reproduces the standalone drivers' shard geometry for one
// product: the tile-aligned chunk size and shard count that runSharded /
// runShardedAT would use for the given output rows and multiply-add count.
func opShardPlan(rows, work int) (chunk, nsh int) {
	shards := gemmShards(rows, work)
	if shards <= 1 {
		return rows, 1
	}
	chunk, nsh = shardRanges(rows, shards)
	if nsh <= 1 {
		return rows, 1
	}
	return chunk, nsh
}

// checkBatch validates the batch structure shared by all entry points.
func checkBatch(outs, as, bs []*Tensor) {
	if len(outs) != len(as) || len(outs) != len(bs) {
		panic("tensor: batched GEMM length mismatch")
	}
}

// MatMulBatchInto computes outs[g] = as[g]·bs[g] for every g (see MatMulInto).
func MatMulBatchInto(outs, as, bs []*Tensor) { batchGemmNN(outs, as, bs, false) }

func batchGemmNN(outs, as, bs []*Tensor, acc bool) {
	checkBatch(outs, as, bs)
	if len(outs) == 0 {
		return
	}
	for g := range outs {
		m, k := as[g].Shape[0], as[g].Shape[1]
		n := bs[g].Shape[1]
		if bs[g].Shape[0] != k || outs[g].Shape[0] != m || outs[g].Shape[1] != n {
			panic("tensor: MatMulBatchInto shape mismatch")
		}
	}
	if !batchUniform(outs, as, bs) {
		for g := range outs {
			gemmNN(outs[g], as[g], bs[g], acc)
		}
		return
	}
	m, k := as[0].Shape[0], as[0].Shape[1]
	n := bs[0].Shape[1]
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			for g := range outs {
				outs[g].Zero()
			}
		}
		return
	}
	chunk, nsh := opShardPlan(m, m*k*n)
	if outs[0].DT.Backing() == F32 {
		kernel := gemmNNRange[float32]
		if avx51232For(n) {
			kernel = gemmNNRangeAVX51232
		} else if useFMA32 {
			kernel = gemmNNRangeFMA32
		}
		Parallel(len(outs)*nsh, func(u int) {
			g, s := u/nsh, u%nsh
			lo := s * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			kernel(Of[float32](outs[g]), Of[float32](as[g]), Of[float32](bs[g]), k, n, lo, hi, acc)
		})
		return
	}
	kernel := gemmNNRange[float64]
	if useAVX512 {
		kernel = gemmNNRangeAVX512
	} else if useFMA {
		kernel = gemmNNRangeFMA
	}
	Parallel(len(outs)*nsh, func(u int) {
		g, s := u/nsh, u%nsh
		lo := s * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		kernel(outs[g].Data, Of[float64](as[g]), Of[float64](bs[g]), k, n, lo, hi, acc)
	})
}

// MatMulBatchATBInto computes outs[g] = as[g]ᵀ·bs[g] (see MatMulATBInto).
func MatMulBatchATBInto(outs, as, bs []*Tensor) { batchGemmAT(outs, as, bs, false) }

// MatMulBatchATBAcc computes outs[g] += as[g]ᵀ·bs[g] (see MatMulATBAcc).
func MatMulBatchATBAcc(outs, as, bs []*Tensor) { batchGemmAT(outs, as, bs, true) }

func batchGemmAT(outs, as, bs []*Tensor, acc bool) {
	checkBatch(outs, as, bs)
	if len(outs) == 0 {
		return
	}
	for g := range outs {
		m, k := as[g].Shape[0], as[g].Shape[1]
		n := bs[g].Shape[1]
		if bs[g].Shape[0] != m || outs[g].Shape[0] != k || outs[g].Shape[1] != n {
			panic("tensor: MatMulBatchATB shape mismatch")
		}
	}
	if !batchUniform(outs, as, bs) {
		for g := range outs {
			gemmAT(outs[g], as[g], bs[g], acc)
		}
		return
	}
	m, k := as[0].Shape[0], as[0].Shape[1]
	n := bs[0].Shape[1]
	if k == 0 || n == 0 {
		return
	}
	chunk, nsh := opShardPlan(k, m*k*n)
	if outs[0].DT.Backing() == F32 {
		kernel := gemmATRange[float32]
		if avx51232For(n) {
			kernel = gemmATRangeAVX51232
		} else if useFMA32 {
			kernel = gemmATRangeFMA32
		}
		Parallel(len(outs)*nsh, func(u int) {
			g, s := u/nsh, u%nsh
			lo := s * chunk
			hi := lo + chunk
			if hi > k {
				hi = k
			}
			kernel(Of[float32](outs[g]), Of[float32](as[g]), Of[float32](bs[g]), m, k, n, lo, hi, acc)
		})
		return
	}
	kernel := gemmATRange[float64]
	if useAVX512 {
		kernel = gemmATRangeAVX512
	} else if useFMA {
		kernel = gemmATRangeFMA
	}
	Parallel(len(outs)*nsh, func(u int) {
		g, s := u/nsh, u%nsh
		lo := s * chunk
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		kernel(outs[g].Data, Of[float64](as[g]), Of[float64](bs[g]), m, k, n, lo, hi, acc)
	})
}

// MatMulBatchABTInto computes outs[g] = as[g]·bs[g]ᵀ (see MatMulABTInto).
func MatMulBatchABTInto(outs, as, bs []*Tensor) { batchGemmABT(outs, as, bs, false) }

// MatMulBatchABTAcc computes outs[g] += as[g]·bs[g]ᵀ (see MatMulABTAcc).
func MatMulBatchABTAcc(outs, as, bs []*Tensor) { batchGemmABT(outs, as, bs, true) }

func batchGemmABT(outs, as, bs []*Tensor, acc bool) {
	checkBatch(outs, as, bs)
	if len(outs) == 0 {
		return
	}
	for g := range outs {
		m, k := as[g].Shape[0], as[g].Shape[1]
		n := bs[g].Shape[0]
		if bs[g].Shape[1] != k || outs[g].Shape[0] != m || outs[g].Shape[1] != n {
			panic("tensor: MatMulBatchABT shape mismatch")
		}
	}
	if !batchUniform(outs, as, bs) {
		for g := range outs {
			gemmABT(outs[g], as[g], bs[g], acc)
		}
		return
	}
	m, k := as[0].Shape[0], as[0].Shape[1]
	n := bs[0].Shape[0]
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			for g := range outs {
				outs[g].Zero()
			}
		}
		return
	}
	chunk, nsh := opShardPlan(m, m*k*n)
	if outs[0].DT.Backing() == F32 {
		kernel := gemmABTRange[float32]
		if avx51232For(n) {
			kernel = gemmABTRangeAVX51232
		} else if useFMA32 {
			kernel = gemmABTRangeFMA32
		}
		Parallel(len(outs)*nsh, func(u int) {
			g, s := u/nsh, u%nsh
			lo := s * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			kernel(Of[float32](outs[g]), Of[float32](as[g]), Of[float32](bs[g]), k, n, lo, hi, acc)
		})
		return
	}
	kernel := gemmABTRange[float64]
	if useAVX512 {
		kernel = gemmABTRangeAVX512
	} else if useFMA {
		kernel = gemmABTRangeFMA
	}
	Parallel(len(outs)*nsh, func(u int) {
		g, s := u/nsh, u%nsh
		lo := s * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		kernel(outs[g].Data, Of[float64](as[g]), Of[float64](bs[g]), k, n, lo, hi, acc)
	})
}
