package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed free list of tensors. Buffers are grouped by
// dtype and by the power-of-two ceiling of their element count, so a Get
// for any shape is served by any previously Put tensor of the same dtype
// bucket. Steady-state training that Gets and Puts its scratch tensors
// performs no heap allocations. A Pool is safe for concurrent use.
type Pool struct {
	buckets [numDTypes][poolBuckets]poolBucket
}

type poolBucket struct {
	mu   sync.Mutex
	free []*Tensor
}

// poolBuckets covers element counts up to 2^47; tensors beyond that are
// allocated directly and never pooled.
const poolBuckets = 48

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// bucketIndex returns the bucket holding buffers of capacity 2^b >= n.
func bucketIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zero-filled float64 tensor of the given shape, reusing a
// pooled buffer when one is available.
func (p *Pool) Get(shape ...int) *Tensor { return p.GetOf(F64, shape...) }

// GetOf returns a zero-filled tensor of the given dtype and shape, reusing
// a pooled buffer when one is available.
func (p *Pool) GetOf(dt DType, shape ...int) *Tensor {
	t := p.getRaw(dt, shape...)
	t.Zero()
	return t
}

// getRaw is GetOf without the zero fill, for callers that overwrite every
// element anyway (for example packed GEMM panels).
func (p *Pool) getRaw(dt DType, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n <= 0 {
		return NewOf(dt, shape...)
	}
	b := bucketIndex(n)
	if b >= poolBuckets {
		return NewOf(dt, shape...)
	}
	bk := &p.buckets[dt][b]
	bk.mu.Lock()
	var t *Tensor
	if l := len(bk.free); l > 0 {
		t = bk.free[l-1]
		bk.free[l-1] = nil
		bk.free = bk.free[:l-1]
	}
	bk.mu.Unlock()
	if t == nil {
		if dt.Backing() == F32 {
			t = &Tensor{F32: make([]float32, 1<<b), DT: dt}
		} else {
			t = &Tensor{Data: make([]float64, 1<<b)}
		}
	}
	if dt.Backing() == F32 {
		t.F32 = t.F32[:n]
	} else {
		t.Data = t.Data[:n]
	}
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Put returns a tensor's storage to the pool. The caller must not use t (or
// any view sharing its data) afterwards. Tensors whose capacity is not a
// pooled size (for example views built with FromSlice) are dropped.
func (p *Pool) Put(t *Tensor) {
	if t == nil {
		return
	}
	var c int
	if t.DT.Backing() == F32 {
		c = cap(t.F32)
	} else {
		c = cap(t.Data)
	}
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bucketIndex(c)
	if b >= poolBuckets {
		return
	}
	if t.DT.Backing() == F32 {
		t.F32 = t.F32[:0]
	} else {
		t.Data = t.Data[:0]
	}
	bk := &p.buckets[t.DT][b]
	bk.mu.Lock()
	bk.free = append(bk.free, t)
	bk.mu.Unlock()
}

// defaultPool serves the package-level GetTensor/PutTensor helpers used by
// the training-step and loss code for batch-lifetime scratch (input stacks,
// feature-gradient accumulators, the O(batch²) contrastive intermediates).
var defaultPool = NewPool()

// GetTensor returns a zeroed float64 tensor of the given shape from the
// default pool.
func GetTensor(shape ...int) *Tensor { return defaultPool.Get(shape...) }

// GetTensorOf returns a zeroed tensor of the given dtype and shape from the
// default pool.
func GetTensorOf(dt DType, shape ...int) *Tensor { return defaultPool.GetOf(dt, shape...) }

// PutTensor returns a tensor obtained from GetTensor/GetTensorOf to the
// default pool.
func PutTensor(t *Tensor) { defaultPool.Put(t) }

// Ensure returns a float64 tensor of the given shape, reusing t's storage
// when possible; see EnsureOf.
func Ensure(t *Tensor, shape ...int) *Tensor { return EnsureOf(F64, t, shape...) }

// EnsureOf returns a tensor of the given dtype and shape, reusing t's
// storage when its dtype matches and its capacity suffices, and allocating
// otherwise. The contents are unspecified; callers must overwrite every
// element. It is the building block for layers that keep their activation
// and gradient buffers across iterations.
func EnsureOf(dt DType, t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: Ensure with negative dimension")
		}
		n *= s
	}
	if t == nil || t.DT != dt {
		return NewOf(dt, shape...)
	}
	if dt.Backing() == F32 {
		if cap(t.F32) < n {
			return NewOf(dt, shape...)
		}
		t.F32 = t.F32[:n]
	} else {
		if cap(t.Data) < n {
			return NewOf(dt, shape...)
		}
		t.Data = t.Data[:n]
	}
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
