package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed free list of tensors. Buffers are grouped by the
// power-of-two ceiling of their element count, so a Get for any shape is
// served by any previously Put tensor of the same bucket. Steady-state
// training that Gets and Puts its scratch tensors performs no heap
// allocations. A Pool is safe for concurrent use.
type Pool struct {
	buckets [poolBuckets]poolBucket
}

type poolBucket struct {
	mu   sync.Mutex
	free []*Tensor
}

// poolBuckets covers element counts up to 2^47; tensors beyond that are
// allocated directly and never pooled.
const poolBuckets = 48

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// bucketIndex returns the bucket holding buffers of capacity 2^b >= n.
func bucketIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zero-filled tensor of the given shape, reusing a pooled
// buffer when one is available.
func (p *Pool) Get(shape ...int) *Tensor {
	t := p.getRaw(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// getRaw is Get without the zero fill, for callers that overwrite every
// element anyway (for example packed GEMM panels).
func (p *Pool) getRaw(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n <= 0 {
		return New(shape...)
	}
	b := bucketIndex(n)
	if b >= poolBuckets {
		return New(shape...)
	}
	bk := &p.buckets[b]
	bk.mu.Lock()
	var t *Tensor
	if l := len(bk.free); l > 0 {
		t = bk.free[l-1]
		bk.free[l-1] = nil
		bk.free = bk.free[:l-1]
	}
	bk.mu.Unlock()
	if t == nil {
		t = &Tensor{Data: make([]float64, 1<<b)}
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Put returns a tensor's storage to the pool. The caller must not use t (or
// any view sharing its data) afterwards. Tensors whose capacity is not a
// pooled size (for example views built with FromSlice) are dropped.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.Data) == 0 {
		return
	}
	c := cap(t.Data)
	if c&(c-1) != 0 {
		return
	}
	b := bucketIndex(c)
	if b >= poolBuckets {
		return
	}
	t.Data = t.Data[:0]
	bk := &p.buckets[b]
	bk.mu.Lock()
	bk.free = append(bk.free, t)
	bk.mu.Unlock()
}

// defaultPool serves the package-level GetTensor/PutTensor helpers used by
// the training-step and loss code for batch-lifetime scratch (input stacks,
// feature-gradient accumulators, the O(batch²) contrastive intermediates).
var defaultPool = NewPool()

// GetTensor returns a zeroed tensor of the given shape from the default
// pool.
func GetTensor(shape ...int) *Tensor { return defaultPool.Get(shape...) }

// PutTensor returns a tensor obtained from GetTensor to the default pool.
func PutTensor(t *Tensor) { defaultPool.Put(t) }

// Ensure returns a tensor of the given shape, reusing t's storage when its
// capacity suffices and allocating otherwise. The contents are unspecified;
// callers must overwrite every element. It is the building block for layers
// that keep their activation and gradient buffers across iterations.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: Ensure with negative dimension")
		}
		n *= s
	}
	if t == nil || cap(t.Data) < n {
		return New(shape...)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
