package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// gemmForm names one of the three product forms.
type gemmForm int

const (
	formNN gemmForm = iota
	formATB
	formABT
)

// operandShapes returns the a/b/out shapes of a form for (m,k,n).
func operandShapes(form gemmForm, m, k, n int) (ar, ac, br, bc, or_, oc int) {
	switch form {
	case formNN:
		return m, k, k, n, m, n
	case formATB:
		return m, k, m, n, k, n
	default:
		return m, k, n, k, m, n
	}
}

// batchCase builds G operand triples for a form, all uniform (m,k,n) when
// uniform is true, otherwise with per-product shapes.
func batchCase(rng *rand.Rand, form gemmForm, dt DType, g int, uniform bool) (outs, as, bs []*Tensor) {
	m, k, n := 3+rng.Intn(20), 3+rng.Intn(20), 3+rng.Intn(20)
	for i := 0; i < g; i++ {
		if !uniform {
			m, k, n = 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		}
		ar, ac, br, bc, orr, oc := operandShapes(form, m, k, n)
		a := NewOf(dt, ar, ac)
		b := NewOf(dt, br, bc)
		o := NewOf(dt, orr, oc)
		a.FillUniform(rng, -1, 1)
		b.FillUniform(rng, -1, 1)
		o.FillUniform(rng, -1, 1)
		outs = append(outs, o)
		as = append(as, a)
		bs = append(bs, b)
	}
	return outs, as, bs
}

func cloneAll(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func equalBits(t *testing.T, ctx string, a, b *Tensor) {
	t.Helper()
	if a.DT.Backing() == F32 {
		for i := range a.F32 {
			if math.Float32bits(a.F32[i]) != math.Float32bits(b.F32[i]) {
				t.Fatalf("%s: element %d differs: %x vs %x", ctx, i, math.Float32bits(a.F32[i]), math.Float32bits(b.F32[i]))
			}
		}
		return
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x", ctx, i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
		}
	}
}

// TestMatMulBatchMatchesSingles is the grouping-invariance gate at the
// kernel level: every batched entry point must be byte-identical to the
// equivalent loop of standalone calls, at every worker cap, for uniform and
// heterogeneous batches, at every dtype.
func TestMatMulBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	single := map[gemmForm][2]func(o, a, b *Tensor){
		formNN:  {func(o, a, b *Tensor) { MatMulInto(o, a, b) }, nil},
		formATB: {func(o, a, b *Tensor) { MatMulATBInto(o, a, b) }, func(o, a, b *Tensor) { MatMulATBAcc(o, a, b) }},
		formABT: {func(o, a, b *Tensor) { MatMulABTInto(o, a, b) }, func(o, a, b *Tensor) { MatMulABTAcc(o, a, b) }},
	}
	batch := map[gemmForm][2]func(o, a, b []*Tensor){
		formNN:  {MatMulBatchInto, nil},
		formATB: {MatMulBatchATBInto, MatMulBatchATBAcc},
		formABT: {MatMulBatchABTInto, MatMulBatchABTAcc},
	}
	for _, dt := range []DType{F64, F32, BF16} {
		for form := formNN; form <= formABT; form++ {
			for _, uniform := range []bool{true, false} {
				for accIdx := 0; accIdx < 2; accIdx++ {
					if single[form][accIdx] == nil {
						continue
					}
					outs, as, bs := batchCase(rng, form, dt, 1+rng.Intn(5), uniform)
					ref := cloneAll(outs)
					for g := range ref {
						single[form][accIdx](ref[g], as[g], bs[g])
					}
					for _, workers := range []int{1, 2, Workers()} {
						prev := SetMaxWorkers(workers)
						got := cloneAll(outs)
						batch[form][accIdx](got, as, bs)
						SetMaxWorkers(prev)
						for g := range got {
							equalBits(t, "batch vs single", got[g], ref[g])
						}
					}
				}
			}
		}
	}
}

func TestMatMulBatchValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MatMulBatchInto([]*Tensor{New(2, 2)}, nil, nil)
}
