package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: %v size %d", x.Shape, x.Size())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong size must panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRow(t *testing.T) {
	x := New(3, 4)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set mismatch")
	}
	row := x.Row(1)
	row[0] = 5
	if x.At(1, 0) != 5 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong size must panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	sum := Add(a, b)
	if sum.Data[2] != 33 {
		t.Fatalf("Add: %v", sum.Data)
	}
	diff := Sub(b, a)
	if diff.Data[0] != 9 {
		t.Fatalf("Sub: %v", diff.Data)
	}
	sc := Scale(a, 2)
	if sc.Data[1] != 4 {
		t.Fatalf("Scale: %v", sc.Data)
	}
	a.AxpyInPlace(0.5, b)
	if a.Data[0] != 6 {
		t.Fatalf("Axpy: %v", a.Data)
	}
	if got := Dot(b, b); got != 100+400+900 {
		t.Fatalf("Dot: %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inner-dimension mismatch must panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulAgainstNaive cross-checks the blocked/parallel kernel against a
// straightforward triple loop on random shapes, including shapes large
// enough to trigger the parallel path.
func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][3]int{{1, 1, 1}, {2, 5, 3}, {7, 4, 9}, {64, 33, 50}, {130, 40, 60}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		a.FillRandn(rng, 1)
		b := New(k, n)
		b.FillRandn(rng, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !ApproxEqual(got, want, 1e-9) {
			t.Fatalf("MatMul mismatch at %v", sh)
		}
		// Transposed variants.
		gotATB := MatMulATB(Transpose(a), b)
		if !ApproxEqual(gotATB, want, 1e-9) {
			t.Fatalf("MatMulATB mismatch at %v", sh)
		}
		gotABT := MatMulABT(a, Transpose(b))
		if !ApproxEqual(gotABT, want, 1e-9) {
			t.Fatalf("MatMulABT mismatch at %v", sh)
		}
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose(x)
	if y.Rows() != 3 || y.Cols() != 2 || y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", y.Data)
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolution(t *testing.T) {
	f := func(rows uint8, cols uint8, seed int64) bool {
		r := int(rows%8) + 1
		c := int(cols%8) + 1
		x := New(r, c)
		x.FillRandn(rand.New(rand.NewSource(seed)), 1)
		return ApproxEqual(Transpose(Transpose(x)), x, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows are probability distributions.
func TestSoftmaxRowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(4, 6)
		x.FillRandn(rng, 3)
		x.SoftmaxRowsInPlace()
		for i := 0; i < 4; i++ {
			var s float64
			for _, v := range x.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalized rows have unit norm and keep direction.
func TestNormalizeRowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(5, 7)
		x.FillRandn(rng, 2)
		orig := x.Clone()
		norms := x.NormalizeRowsInPlace(1e-12)
		for i := 0; i < 5; i++ {
			var s float64
			for _, v := range x.Row(i) {
				s += v * v
			}
			if math.Abs(math.Sqrt(s)-1) > 1e-9 {
				return false
			}
			// Direction preserved: x * norm == orig.
			for j, v := range x.Row(i) {
				if math.Abs(v*norms[i]-orig.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeZeroRow(t *testing.T) {
	x := New(1, 4)
	norms := x.NormalizeRowsInPlace(1e-12)
	if norms[0] != 1e-12 {
		t.Fatalf("zero row should report eps norm, got %v", norms[0])
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("zero row must stay zero")
		}
	}
}

func TestLogSumExpStability(t *testing.T) {
	if v := LogSumExpRow([]float64{1e9, 1e9}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("LSE overflow: %v", v)
	}
	if v := LogSumExpRow([]float64{0, 0}); math.Abs(v-math.Log(2)) > 1e-12 {
		t.Fatalf("LSE(0,0) = %v, want ln 2", v)
	}
}

func TestConcatAndSliceRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6}, 1, 2)
	c := ConcatRows(a, b)
	if c.Rows() != 3 || c.At(2, 1) != 6 {
		t.Fatalf("ConcatRows wrong: %v", c.Data)
	}
	s := c.SliceRows(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("SliceRows wrong: %v", s.Data)
	}
	// SliceRows must copy.
	s.Data[0] = 99
	if c.At(1, 0) == 99 {
		t.Fatal("SliceRows must copy")
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float64{1, 5, 5, 2}, 1, 4)
	if got := x.ArgMaxRow(0); got != 1 {
		t.Fatalf("ArgMaxRow tie should pick lowest index, got %d", got)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum: %v", x.Sum())
	}
	if x.SumSquares() != 14 {
		t.Fatalf("SumSquares: %v", x.SumSquares())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs: %v", x.MaxAbs())
	}
}

func TestApproxEqualShapes(t *testing.T) {
	if ApproxEqual(New(2, 3), New(3, 2), 1) {
		t.Fatal("different shapes must not compare equal")
	}
	if !ApproxEqual(New(2, 2), New(2, 2), 0) {
		t.Fatal("equal zeros must compare equal")
	}
}

func TestFillHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(100)
	x.FillUniform(rng, 2, 3)
	for _, v := range x.Data {
		if v < 2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	x.Fill(7)
	if x.Data[50] != 7 {
		t.Fatal("Fill failed")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(3, 4)
	a.FillRandn(rng, 1)
	b := New(4, 5)
	b.FillRandn(rng, 1)
	out := New(3, 5)
	out.Fill(123) // must be overwritten, not accumulated
	MatMulInto(out, a, b)
	if !ApproxEqual(out, MatMul(a, b), 1e-12) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}
