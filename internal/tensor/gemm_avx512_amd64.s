// AVX-512 micro-kernels for the blocked GEMM drivers in
// gemm_avx512_amd64.go: an 8×8 float64 tile and 8×16 / 4×16 float32 tiles
// (one 512-bit ZMM vector of output columns per row). Only assembled on
// amd64; callers gate on the useAVX512/useAVX51232 runtime checks, which
// require AVX512F+DQ+BW+VL with OS ZMM state enabled.
//
// All kernels share the AVX2 tier's calling convention (byte strides, load
// flag) and its per-element accumulation order — one fused multiply-add per
// reduction step per output element, in ascending t — so a row computed here
// is bit-identical to the same row computed by the AVX2 kernels.

#include "textflag.h"

// func avx512Micro8x8(c *float64, ldc int, a *float64, aRow, aStep int, bp *float64, pk int, load int)
//
// Computes an 8×8 float64 register tile C[r, 0:8] (+)= Σ_t A[r, t]·B[t, 0:8]
// where the eight logical A rows start at a + r·aRow and advance by aStep per
// reduction step, and B is an 8-wide packed panel of pk rows (one ZMM vector
// per reduction step — the same panel layout the AVX2 4×8 kernel streams as
// two YMM halves). All strides are in bytes. load != 0 seeds the
// accumulators from C (accumulate); load == 0 overwrites. pk must be >= 1.
//
// Rows 0-3 broadcast from SI, rows 4-7 from R10 = SI + 4·aRow; both
// pointers advance by aStep per step.
TEXT ·avx512Micro8x8(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (SI)(R8*4), R10 // A row 4

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

	TESTQ AX, AX
	JZ    loop
	MOVQ    DI, R11
	VMOVUPD (R11), Z0
	ADDQ    CX, R11
	VMOVUPD (R11), Z1
	ADDQ    CX, R11
	VMOVUPD (R11), Z2
	ADDQ    CX, R11
	VMOVUPD (R11), Z3
	ADDQ    CX, R11
	VMOVUPD (R11), Z4
	ADDQ    CX, R11
	VMOVUPD (R11), Z5
	ADDQ    CX, R11
	VMOVUPD (R11), Z6
	ADDQ    CX, R11
	VMOVUPD (R11), Z7

loop:
	VMOVUPD      (BX), Z8
	VBROADCASTSD (SI), Z9
	VBROADCASTSD (SI)(R8*1), Z10
	VBROADCASTSD (SI)(R8*2), Z11
	VBROADCASTSD (SI)(R13*1), Z12
	VFMADD231PD  Z8, Z9, Z0
	VFMADD231PD  Z8, Z10, Z1
	VFMADD231PD  Z8, Z11, Z2
	VFMADD231PD  Z8, Z12, Z3
	VBROADCASTSD (R10), Z9
	VBROADCASTSD (R10)(R8*1), Z10
	VBROADCASTSD (R10)(R8*2), Z11
	VBROADCASTSD (R10)(R13*1), Z12
	VFMADD231PD  Z8, Z9, Z4
	VFMADD231PD  Z8, Z10, Z5
	VFMADD231PD  Z8, Z11, Z6
	VFMADD231PD  Z8, Z12, Z7
	ADDQ         $64, BX
	ADDQ         R9, SI
	ADDQ         R9, R10
	DECQ         DX
	JNZ          loop

	MOVQ    DI, R11
	VMOVUPD Z0, (R11)
	ADDQ    CX, R11
	VMOVUPD Z1, (R11)
	ADDQ    CX, R11
	VMOVUPD Z2, (R11)
	ADDQ    CX, R11
	VMOVUPD Z3, (R11)
	ADDQ    CX, R11
	VMOVUPD Z4, (R11)
	ADDQ    CX, R11
	VMOVUPD Z5, (R11)
	ADDQ    CX, R11
	VMOVUPD Z6, (R11)
	ADDQ    CX, R11
	VMOVUPD Z7, (R11)
	VZEROUPPER
	RET

// func avx512Micro8x16f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)
//
// Computes an 8×16 float32 register tile C[r, 0:16] (+)= Σ_t A[r, t]·B[t, 0:16]
// where the eight logical A rows start at a + r·aRow and advance by aStep per
// reduction step, and B is a 16-wide packed panel of pk float32 rows (one
// 16-lane ZMM vector per reduction step). All strides are in bytes. load != 0
// seeds the accumulators from C (accumulate); load == 0 overwrites. pk must
// be >= 1.
TEXT ·avx512Micro8x16f32(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (SI)(R8*4), R10 // A row 4

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

	TESTQ AX, AX
	JZ    loop32
	MOVQ    DI, R11
	VMOVUPS (R11), Z0
	ADDQ    CX, R11
	VMOVUPS (R11), Z1
	ADDQ    CX, R11
	VMOVUPS (R11), Z2
	ADDQ    CX, R11
	VMOVUPS (R11), Z3
	ADDQ    CX, R11
	VMOVUPS (R11), Z4
	ADDQ    CX, R11
	VMOVUPS (R11), Z5
	ADDQ    CX, R11
	VMOVUPS (R11), Z6
	ADDQ    CX, R11
	VMOVUPS (R11), Z7

loop32:
	VMOVUPS      (BX), Z8
	VBROADCASTSS (SI), Z9
	VBROADCASTSS (SI)(R8*1), Z10
	VBROADCASTSS (SI)(R8*2), Z11
	VBROADCASTSS (SI)(R13*1), Z12
	VFMADD231PS  Z8, Z9, Z0
	VFMADD231PS  Z8, Z10, Z1
	VFMADD231PS  Z8, Z11, Z2
	VFMADD231PS  Z8, Z12, Z3
	VBROADCASTSS (R10), Z9
	VBROADCASTSS (R10)(R8*1), Z10
	VBROADCASTSS (R10)(R8*2), Z11
	VBROADCASTSS (R10)(R13*1), Z12
	VFMADD231PS  Z8, Z9, Z4
	VFMADD231PS  Z8, Z10, Z5
	VFMADD231PS  Z8, Z11, Z6
	VFMADD231PS  Z8, Z12, Z7
	ADDQ         $64, BX
	ADDQ         R9, SI
	ADDQ         R9, R10
	DECQ         DX
	JNZ          loop32

	MOVQ    DI, R11
	VMOVUPS Z0, (R11)
	ADDQ    CX, R11
	VMOVUPS Z1, (R11)
	ADDQ    CX, R11
	VMOVUPS Z2, (R11)
	ADDQ    CX, R11
	VMOVUPS Z3, (R11)
	ADDQ    CX, R11
	VMOVUPS Z4, (R11)
	ADDQ    CX, R11
	VMOVUPS Z5, (R11)
	ADDQ    CX, R11
	VMOVUPS Z6, (R11)
	ADDQ    CX, R11
	VMOVUPS Z7, (R11)
	VZEROUPPER
	RET

// func avx512Micro4x16f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)
//
// The 4-row variant of avx512Micro8x16f32, for the 4..7-row leftovers of a
// tile sweep. Same convention.
TEXT ·avx512Micro4x16f32(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), CX
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R8
	MOVQ aStep+32(FP), R9
	MOVQ bp+40(FP), BX
	MOVQ pk+48(FP), DX
	MOVQ load+56(FP), AX

	LEAQ (R8)(R8*2), R13 // 3·aRow
	LEAQ (DI)(CX*1), R10 // C row 1
	LEAQ (R10)(CX*1), R11 // C row 2
	LEAQ (R11)(CX*1), R12 // C row 3

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3

	TESTQ AX, AX
	JZ    loop4x32
	VMOVUPS (DI), Z0
	VMOVUPS (R10), Z1
	VMOVUPS (R11), Z2
	VMOVUPS (R12), Z3

loop4x32:
	VMOVUPS      (BX), Z8
	VBROADCASTSS (SI), Z9
	VBROADCASTSS (SI)(R8*1), Z10
	VBROADCASTSS (SI)(R8*2), Z11
	VBROADCASTSS (SI)(R13*1), Z12
	VFMADD231PS  Z8, Z9, Z0
	VFMADD231PS  Z8, Z10, Z1
	VFMADD231PS  Z8, Z11, Z2
	VFMADD231PS  Z8, Z12, Z3
	ADDQ         $64, BX
	ADDQ         R9, SI
	DECQ         DX
	JNZ          loop4x32

	VMOVUPS Z0, (DI)
	VMOVUPS Z1, (R10)
	VMOVUPS Z2, (R11)
	VMOVUPS Z3, (R12)
	VZEROUPPER
	RET

// poolIdxEven holds the int32 lane indices [0,2,4,...,30]: both the
// VPERMI2PS selector that deinterleaves the even input columns of a 32-float
// window and the window-relative input index of each output pixel's first
// candidate.
DATA poolIdxEven<>+0x00(SB)/8, $0x0000000200000000
DATA poolIdxEven<>+0x08(SB)/8, $0x0000000600000004
DATA poolIdxEven<>+0x10(SB)/8, $0x0000000A00000008
DATA poolIdxEven<>+0x18(SB)/8, $0x0000000E0000000C
DATA poolIdxEven<>+0x20(SB)/8, $0x0000001200000010
DATA poolIdxEven<>+0x28(SB)/8, $0x0000001600000014
DATA poolIdxEven<>+0x30(SB)/8, $0x0000001A00000018
DATA poolIdxEven<>+0x38(SB)/8, $0x0000001E0000001C
GLOBL poolIdxEven<>(SB), RODATA, $64

// func maxPool2x2f32(x, out *float32, am *int64, outH, outW, w int, base int64)
//
// 2×2/stride-2 max pooling over one channel plane: x points at the plane
// (2·outH rows of w floats, w >= 2·outW), out at outH·outW maxima and am at
// the matching argmax slots, which receive absolute input indices (base is
// the plane's flat offset in the tensor). 16 output pixels per step with
// masked tails. The candidate order (row0 even, row0 odd, row1 even, row1
// odd) and strictly-greater comparisons replicate the scalar chain with
// masked blends, so values AND argmax tie-breaking are bit-identical to it.
TEXT ·maxPool2x2f32(SB), NOSPLIT, $0-56
	MOVQ x+0(FP), DI
	MOVQ out+8(FP), SI
	MOVQ am+16(FP), R8
	MOVQ outH+24(FP), BX
	MOVQ outW+32(FP), R9
	MOVQ w+40(FP), R11
	MOVQ base+48(FP), R14

	VMOVDQU32 poolIdxEven<>(SB), Z16
	MOVL      $1, AX
	VPBROADCASTD AX, Z31
	VPADDD    Z31, Z16, Z17 // odd selector/index = even + 1
	MOVL      $32, AX
	VPBROADCASTD AX, Z19    // per-chunk relative-index advance
	VPBROADCASTD R11, Z18   // row stride w as int32 lanes

poolrow:
	MOVQ DI, R12             // row0 cursor
	LEAQ (DI)(R11*4), R13    // row1 cursor
	VPBROADCASTQ R14, Z20    // absolute index of row0 start
	VMOVDQA64 Z16, Z21       // relative even indices for this chunk
	VMOVDQA64 Z17, Z22
	MOVQ R9, R15             // output pixels remaining in the row

poolchunk:
	MOVQ R15, DX
	CMPQ DX, $16
	JLE  poolmasks
	MOVQ $16, DX

poolmasks:
	LEAQ (DX)(DX*1), CX
	MOVQ $1, AX
	SHLQ CX, AX
	DECQ AX        // (1<<2n)-1: masks for the 2n input floats
	KMOVW AX, K1
	SHRQ  $16, AX
	KMOVW AX, K2
	MOVQ  DX, CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX       // (1<<n)-1: masks for the n outputs
	KMOVW AX, K4
	KMOVB AX, K5
	SHRQ  $8, AX
	KMOVB AX, K6

	VMOVUPS.Z (R12), K1, Z0
	VMOVUPS.Z 64(R12), K2, Z1
	VMOVUPS.Z (R13), K1, Z2
	VMOVUPS.Z 64(R13), K2, Z3
	VMOVDQA64 Z16, Z4
	VPERMI2PS Z1, Z0, Z4 // v00: row0 even columns
	VMOVDQA64 Z17, Z5
	VPERMI2PS Z1, Z0, Z5 // v01: row0 odd columns
	VMOVDQA64 Z16, Z6
	VPERMI2PS Z3, Z2, Z6 // v10
	VMOVDQA64 Z17, Z7
	VPERMI2PS Z3, Z2, Z7 // v11

	VMOVAPS   Z4, Z8     // best value
	VMOVDQA64 Z21, Z9    // best relative index
	VCMPPS    $0x1E, Z8, Z5, K3 // GT_OQ, as the scalar >
	VMOVAPS   Z5, K3, Z8
	VMOVDQA32 Z22, K3, Z9
	VPADDD    Z18, Z21, Z12
	VCMPPS    $0x1E, Z8, Z6, K3
	VMOVAPS   Z6, K3, Z8
	VMOVDQA32 Z12, K3, Z9
	VPADDD    Z18, Z22, Z13
	VCMPPS    $0x1E, Z8, Z7, K3
	VMOVAPS   Z7, K3, Z8
	VMOVDQA32 Z13, K3, Z9

	VMOVUPS Z8, K4, (SI)
	VPMOVSXDQ     Y9, Z14
	VEXTRACTI64X4 $1, Z9, Y15
	VPMOVSXDQ     Y15, Z15
	VPADDQ    Z20, Z14, Z14
	VPADDQ    Z20, Z15, Z15
	VMOVDQU64 Z14, K5, (R8)
	VMOVDQU64 Z15, K6, 64(R8)

	LEAQ (SI)(DX*4), SI
	LEAQ (R8)(DX*8), R8
	LEAQ (R12)(DX*8), R12
	LEAQ (R13)(DX*8), R13
	VPADDD Z19, Z21, Z21
	VPADDD Z19, Z22, Z22
	SUBQ DX, R15
	JNZ  poolchunk

	LEAQ (DI)(R11*8), DI  // next row pair: 2w floats down
	LEAQ (R14)(R11*2), R14
	DECQ BX
	JNZ  poolrow
	VZEROUPPER
	RET

// VPERMI2PD selector that deinterleaves the even input columns of a 16-double
// window; the quadwords double as the window-relative input index of each
// output pixel's first candidate.
DATA poolIdxEvenQ<>+0x00(SB)/8, $0
DATA poolIdxEvenQ<>+0x08(SB)/8, $2
DATA poolIdxEvenQ<>+0x10(SB)/8, $4
DATA poolIdxEvenQ<>+0x18(SB)/8, $6
DATA poolIdxEvenQ<>+0x20(SB)/8, $8
DATA poolIdxEvenQ<>+0x28(SB)/8, $10
DATA poolIdxEvenQ<>+0x30(SB)/8, $12
DATA poolIdxEvenQ<>+0x38(SB)/8, $14
GLOBL poolIdxEvenQ<>(SB), RODATA, $64

// func maxPool2x2f64(x, out *float64, am *int64, outH, outW, w int, base int64)
//
// f64 twin of maxPool2x2f32: 8 output pixels per step, same candidate order
// and strictly-greater masked blends, so values and argmax tie-breaking are
// bit-identical to the scalar chain.
TEXT ·maxPool2x2f64(SB), NOSPLIT, $0-56
	MOVQ x+0(FP), DI
	MOVQ out+8(FP), SI
	MOVQ am+16(FP), R8
	MOVQ outH+24(FP), BX
	MOVQ outW+32(FP), R9
	MOVQ w+40(FP), R11
	MOVQ base+48(FP), R14

	VMOVDQU64 poolIdxEvenQ<>(SB), Z16
	MOVL      $1, AX
	VPBROADCASTQ AX, Z31
	VPADDQ    Z31, Z16, Z17 // odd selector/index = even + 1
	MOVL      $16, AX
	VPBROADCASTQ AX, Z19    // per-chunk relative-index advance
	VPBROADCASTQ R11, Z18   // row stride w as int64 lanes

poolrow64:
	MOVQ DI, R12             // row0 cursor
	LEAQ (DI)(R11*8), R13    // row1 cursor
	VPBROADCASTQ R14, Z20    // absolute index of row0 start
	VMOVDQA64 Z16, Z21       // relative even indices for this chunk
	VMOVDQA64 Z17, Z22
	MOVQ R9, R15             // output pixels remaining in the row

poolchunk64:
	MOVQ R15, DX
	CMPQ DX, $8
	JLE  poolmasks64
	MOVQ $8, DX

poolmasks64:
	LEAQ (DX)(DX*1), CX
	MOVQ $1, AX
	SHLQ CX, AX
	DECQ AX        // (1<<2n)-1: masks for the 2n input doubles
	KMOVB AX, K1
	SHRQ  $8, AX
	KMOVB AX, K2
	MOVQ  DX, CX
	MOVQ  $1, AX
	SHLQ  CX, AX
	DECQ  AX       // (1<<n)-1: mask for the n outputs
	KMOVB AX, K4

	VMOVUPD.Z (R12), K1, Z0
	VMOVUPD.Z 64(R12), K2, Z1
	VMOVUPD.Z (R13), K1, Z2
	VMOVUPD.Z 64(R13), K2, Z3
	VMOVDQA64 Z16, Z4
	VPERMI2PD Z1, Z0, Z4 // v00: row0 even columns
	VMOVDQA64 Z17, Z5
	VPERMI2PD Z1, Z0, Z5 // v01: row0 odd columns
	VMOVDQA64 Z16, Z6
	VPERMI2PD Z3, Z2, Z6 // v10
	VMOVDQA64 Z17, Z7
	VPERMI2PD Z3, Z2, Z7 // v11

	VMOVAPD   Z4, Z8     // best value
	VMOVDQA64 Z21, Z9    // best relative index
	VCMPPD    $0x1E, Z8, Z5, K3 // GT_OQ, as the scalar >
	VMOVAPD   Z5, K3, Z8
	VMOVDQA64 Z22, K3, Z9
	VPADDQ    Z18, Z21, Z12
	VCMPPD    $0x1E, Z8, Z6, K3
	VMOVAPD   Z6, K3, Z8
	VMOVDQA64 Z12, K3, Z9
	VPADDQ    Z18, Z22, Z13
	VCMPPD    $0x1E, Z8, Z7, K3
	VMOVAPD   Z7, K3, Z8
	VMOVDQA64 Z13, K3, Z9

	VMOVUPD Z8, K4, (SI)
	VPADDQ    Z20, Z9, Z14
	VMOVDQU64 Z14, K4, (R8)

	LEAQ (SI)(DX*8), SI
	LEAQ (R8)(DX*8), R8
	LEAQ (R12)(DX*8), R12
	LEAQ (R12)(DX*8), R12
	LEAQ (R13)(DX*8), R13
	LEAQ (R13)(DX*8), R13
	VPADDQ Z19, Z21, Z21
	VPADDQ Z19, Z22, Z22
	SUBQ DX, R15
	JNZ  poolchunk64

	LEAQ (DI)(R11*8), DI  // next row pair: 2w doubles down
	LEAQ (DI)(R11*8), DI
	LEAQ (R14)(R11*2), R14
	DECQ BX
	JNZ  poolrow64
	VZEROUPPER
	RET
