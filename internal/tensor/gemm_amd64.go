//go:build amd64

package tensor

// Implemented in gemm_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func fmaMicro4x8(c *float64, ldc int, a *float64, aRow, aStep int, bp *float64, pk int, load int)

// useFMA reports whether the AVX2+FMA micro-kernel may be used: the CPU must
// expose AVX, AVX2, FMA3 and OSXSAVE, and the OS must have enabled XMM/YMM
// state saving.
var useFMA = detectFMA()

func detectFMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fmaRowTail handles the < 4 leftover rows of a tile sweep in Go, streaming
// the same 8-wide packed panel. c is the jw-element output row; a[t·aStep]
// walks the reduction dimension.
func fmaRowTail(c []float64, jw int, a []float64, aStep, pk int, bp []float64, load bool) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float64
	if load {
		c0 = c[0]
		if jw > 1 {
			c1 = c[1]
		}
		if jw > 2 {
			c2 = c[2]
		}
		if jw > 3 {
			c3 = c[3]
		}
		if jw > 4 {
			c4 = c[4]
		}
		if jw > 5 {
			c5 = c[5]
		}
		if jw > 6 {
			c6 = c[6]
		}
		if jw > 7 {
			c7 = c[7]
		}
	}
	for t := 0; t < pk; t++ {
		av := a[t*aStep]
		bq := bp[fmaNR*t : fmaNR*t+fmaNR : fmaNR*t+fmaNR]
		c0 += av * bq[0]
		c1 += av * bq[1]
		c2 += av * bq[2]
		c3 += av * bq[3]
		c4 += av * bq[4]
		c5 += av * bq[5]
		c6 += av * bq[6]
		c7 += av * bq[7]
	}
	c[0] = c0
	if jw > 1 {
		c[1] = c1
	}
	if jw > 2 {
		c[2] = c2
	}
	if jw > 3 {
		c[3] = c3
	}
	if jw > 4 {
		c[4] = c4
	}
	if jw > 5 {
		c[5] = c5
	}
	if jw > 6 {
		c[6] = c6
	}
	if jw > 7 {
		c[7] = c7
	}
}

// fmaPartialTile runs the micro-kernel for a j-tile narrower than fmaNR by
// staging the 4×jw C block in a dense 4×8 scratch.
func fmaPartialTile(out []float64, base, n, jw int, aPtr *float64, aRowB, aStepB int, bp *float64, pk int, load bool) {
	var cbuf [4 * fmaNR]float64
	if load {
		for r := 0; r < 4; r++ {
			copy(cbuf[r*fmaNR:r*fmaNR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	fmaMicro4x8(&cbuf[0], fmaNR*8, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 4; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*fmaNR:r*fmaNR+jw])
	}
}

// packPanelRows packs src[(r0+t)·ld + j0 : … + j0+jw] for t in [0,pk) into
// an 8-wide zero-padded panel: panel[t·8+j] = src row r0+t, column j0+j.
func packPanelRows(panel, src []float64, r0, ld, j0, jw, pk int) {
	if jw == fmaNR {
		for t := 0; t < pk; t++ {
			row := src[(r0+t)*ld+j0 : (r0+t)*ld+j0+fmaNR]
			q := panel[fmaNR*t : fmaNR*t+fmaNR : fmaNR*t+fmaNR]
			q[0], q[1], q[2], q[3] = row[0], row[1], row[2], row[3]
			q[4], q[5], q[6], q[7] = row[4], row[5], row[6], row[7]
		}
		return
	}
	for t := 0; t < pk; t++ {
		row := src[(r0+t)*ld+j0 : (r0+t)*ld+j0+jw]
		q := panel[fmaNR*t : fmaNR*t+fmaNR]
		for j := 0; j < fmaNR; j++ {
			if j < jw {
				q[j] = row[j]
			} else {
				q[j] = 0
			}
		}
	}
}

// packPanelCols transpose-packs src rows j0..j0+jw (each of length ≥ p0+pk)
// into an 8-wide panel: panel[t·8+j] = src[(j0+j)·ld + p0+t]. Used for A·Bᵀ.
func packPanelCols(panel, src []float64, j0, ld, p0, jw, pk int) {
	for j := 0; j < fmaNR; j++ {
		if j >= jw {
			for t := 0; t < pk; t++ {
				panel[fmaNR*t+j] = 0
			}
			continue
		}
		col := src[(j0+j)*ld+p0 : (j0+j)*ld+p0+pk]
		for t, v := range col {
			panel[fmaNR*t+j] = v
		}
	}
}

// gemmNNRangeFMA computes rows [lo,hi) of out = a·b with the AVX2 kernel.
func gemmNNRangeFMA(out, a, b []float64, k, n, lo, hi int, acc bool) {
	pp := panelScratch.Get().(*[]float64)
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, pc, n, j0, jw, pk)
			bp := &panel[0]
			i := lo
			for ; i+4 <= hi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < hi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	panelScratch.Put(pp)
}

// gemmATRangeFMA computes output rows [plo,phi) of out = aᵀ·b with the AVX2
// kernel; the reduction runs over a's m rows, blocked like the NN kernel's
// k dimension.
func gemmATRangeFMA(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	pp := panelScratch.Get().(*[]float64)
	panel := (*pp)[:gemmKC*fmaNR]
	for ic := 0; ic < m; ic += gemmKC {
		mk := m - ic
		if mk > gemmKC {
			mk = gemmKC
		}
		load := acc || ic > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, ic, n, j0, jw, mk)
			bp := &panel[0]
			p := plo
			for ; p+4 <= phi; p += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[p*n+j0], n*8, &a[ic*k+p], 8, k*8, bp, mk, b2i(load))
				} else {
					fmaPartialTile(out, p*n+j0, n, jw, &a[ic*k+p], 8, k*8, bp, mk, load)
				}
			}
			for ; p < phi; p++ {
				fmaRowTail(out[p*n+j0:p*n+j0+jw], jw, a[ic*k+p:], k, mk, panel, load)
			}
		}
	}
	panelScratch.Put(pp)
}

// gemmABTRangeFMA computes rows [ilo,ihi) of out = a·bᵀ with the AVX2
// kernel, transpose-packing b panels.
func gemmABTRangeFMA(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	pp := panelScratch.Get().(*[]float64)
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelCols(panel, b, j0, k, pc, jw, pk)
			bp := &panel[0]
			i := ilo
			for ; i+4 <= ihi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < ihi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	panelScratch.Put(pp)
}
