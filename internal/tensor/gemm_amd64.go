//go:build amd64

package tensor

// Implemented in gemm_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func fmaMicro4x8(c *float64, ldc int, a *float64, aRow, aStep int, bp *float64, pk int, load int)

//go:noescape
func fmaMicro8x8f32(c *float32, ldc int, a *float32, aRow, aStep int, bp *float32, pk int, load int)

// useFMA reports whether the AVX2+FMA micro-kernels may be used: the CPU
// must expose AVX, AVX2, FMA3 and OSXSAVE, and the OS must have enabled
// XMM/YMM state saving. Both element widths share the same requirements, so
// one probe gates the f64 4×8 and the f32 8×8 kernel alike.
var useFMA = detectFMA()

// useFMA32 gates the float32 micro-kernel; declared separately so tests can
// reason about each dispatch path and non-amd64 builds can pin both false.
var useFMA32 = useFMA

func detectFMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fmaRowTail handles the leftover rows of a tile sweep in Go, streaming the
// same 8-wide packed panel. c is the jw-element output row; a[t·aStep] walks
// the reduction dimension. Generic: the float64 instantiation is the
// historical kernel bit for bit; float32 serves the 8×8 kernel's tails.
func fmaRowTail[F Float](c []F, jw int, a []F, aStep, pk int, bp []F, load bool) {
	var c0, c1, c2, c3, c4, c5, c6, c7 F
	if load {
		c0 = c[0]
		if jw > 1 {
			c1 = c[1]
		}
		if jw > 2 {
			c2 = c[2]
		}
		if jw > 3 {
			c3 = c[3]
		}
		if jw > 4 {
			c4 = c[4]
		}
		if jw > 5 {
			c5 = c[5]
		}
		if jw > 6 {
			c6 = c[6]
		}
		if jw > 7 {
			c7 = c[7]
		}
	}
	for t := 0; t < pk; t++ {
		av := a[t*aStep]
		bq := bp[fmaNR*t : fmaNR*t+fmaNR : fmaNR*t+fmaNR]
		c0 += av * bq[0]
		c1 += av * bq[1]
		c2 += av * bq[2]
		c3 += av * bq[3]
		c4 += av * bq[4]
		c5 += av * bq[5]
		c6 += av * bq[6]
		c7 += av * bq[7]
	}
	c[0] = c0
	if jw > 1 {
		c[1] = c1
	}
	if jw > 2 {
		c[2] = c2
	}
	if jw > 3 {
		c[3] = c3
	}
	if jw > 4 {
		c[4] = c4
	}
	if jw > 5 {
		c[5] = c5
	}
	if jw > 6 {
		c[6] = c6
	}
	if jw > 7 {
		c[7] = c7
	}
}

// fmaPartialTile runs the f64 micro-kernel for a j-tile narrower than fmaNR
// by staging the 4×jw C block in a dense 4×8 scratch.
func fmaPartialTile(out []float64, base, n, jw int, aPtr *float64, aRowB, aStepB int, bp *float64, pk int, load bool) {
	var cbuf [4 * fmaNR]float64
	if load {
		for r := 0; r < 4; r++ {
			copy(cbuf[r*fmaNR:r*fmaNR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	fmaMicro4x8(&cbuf[0], fmaNR*8, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 4; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*fmaNR:r*fmaNR+jw])
	}
}

// fmaPartialTile32 is the float32 counterpart: an 8×jw C block staged in a
// dense 8×8 scratch.
func fmaPartialTile32(out []float32, base, n, jw int, aPtr *float32, aRowB, aStepB int, bp *float32, pk int, load bool) {
	var cbuf [8 * fmaNR]float32
	if load {
		for r := 0; r < 8; r++ {
			copy(cbuf[r*fmaNR:r*fmaNR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	fmaMicro8x8f32(&cbuf[0], fmaNR*4, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 8; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*fmaNR:r*fmaNR+jw])
	}
}

// fmaPartialTile4x32 stages a 4×jw float32 C block through the 4-row
// micro-kernel, for narrow-row leftovers at partial panel width.
func fmaPartialTile4x32(out []float32, base, n, jw int, aPtr *float32, aRowB, aStepB int, bp *float32, pk int, load bool) {
	var cbuf [4 * fmaNR]float32
	if load {
		for r := 0; r < 4; r++ {
			copy(cbuf[r*fmaNR:r*fmaNR+jw], out[base+r*n:base+r*n+jw])
		}
	}
	fmaMicro4x8f32(&cbuf[0], fmaNR*4, aPtr, aRowB, aStepB, bp, pk, b2i(load))
	for r := 0; r < 4; r++ {
		copy(out[base+r*n:base+r*n+jw], cbuf[r*fmaNR:r*fmaNR+jw])
	}
}

// packPanelRows packs src[(r0+t)·ld + j0 : … + j0+jw] for t in [0,pk) into
// an 8-wide zero-padded panel: panel[t·8+j] = src row r0+t, column j0+j.
func packPanelRows[F Float](panel, src []F, r0, ld, j0, jw, pk int) {
	if jw == fmaNR {
		CopyRows(panel, src[r0*ld+j0:], pk, fmaNR, fmaNR, ld)
		return
	}
	for t := 0; t < pk; t++ {
		row := src[(r0+t)*ld+j0 : (r0+t)*ld+j0+jw]
		q := panel[fmaNR*t : fmaNR*t+fmaNR]
		for j := 0; j < fmaNR; j++ {
			if j < jw {
				q[j] = row[j]
			} else {
				q[j] = 0
			}
		}
	}
}

// packPanelCols transpose-packs src rows j0..j0+jw (each of length ≥ p0+pk)
// into an 8-wide panel: panel[t·8+j] = src[(j0+j)·ld + p0+t]. Used for A·Bᵀ.
func packPanelCols[F Float](panel, src []F, j0, ld, p0, jw, pk int) {
	for j := 0; j < fmaNR; j++ {
		if j >= jw {
			for t := 0; t < pk; t++ {
				panel[fmaNR*t+j] = 0
			}
			continue
		}
		col := src[(j0+j)*ld+p0 : (j0+j)*ld+p0+pk]
		for t, v := range col {
			panel[fmaNR*t+j] = v
		}
	}
}

// gemmNNRangeFMA computes rows [lo,hi) of out = a·b with the f64 AVX2
// kernel.
func gemmNNRangeFMA(out, a, b []float64, k, n, lo, hi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, pc, n, j0, jw, pk)
			bp := &panel[0]
			i := lo
			for ; i+4 <= hi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < hi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmNNRangeFMA32 computes rows [lo,hi) of out = a·b with the f32 AVX2
// kernel: 8×8 register tiles, one 8-lane vector per panel row, double the
// lane count of the f64 kernel at half the working set.
func gemmNNRangeFMA32(out, a, b []float32, k, n, lo, hi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, pc, n, j0, jw, pk)
			bp := &panel[0]
			i := lo
			for ; i+8 <= hi; i += 8 {
				if jw == fmaNR {
					fmaMicro8x8f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					fmaPartialTile32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i+4 <= hi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					fmaPartialTile4x32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i < hi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmATRangeFMA computes output rows [plo,phi) of out = aᵀ·b with the f64
// AVX2 kernel; the reduction runs over a's m rows, blocked like the NN
// kernel's k dimension.
func gemmATRangeFMA(out, a, b []float64, m, k, n, plo, phi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for ic := 0; ic < m; ic += gemmKC {
		mk := m - ic
		if mk > gemmKC {
			mk = gemmKC
		}
		load := acc || ic > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, ic, n, j0, jw, mk)
			bp := &panel[0]
			p := plo
			for ; p+4 <= phi; p += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[p*n+j0], n*8, &a[ic*k+p], 8, k*8, bp, mk, b2i(load))
				} else {
					fmaPartialTile(out, p*n+j0, n, jw, &a[ic*k+p], 8, k*8, bp, mk, load)
				}
			}
			for ; p < phi; p++ {
				fmaRowTail(out[p*n+j0:p*n+j0+jw], jw, a[ic*k+p:], k, mk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmATRangeFMA32 computes output rows [plo,phi) of out = aᵀ·b with the
// f32 AVX2 kernel.
func gemmATRangeFMA32(out, a, b []float32, m, k, n, plo, phi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*fmaNR]
	for ic := 0; ic < m; ic += gemmKC {
		mk := m - ic
		if mk > gemmKC {
			mk = gemmKC
		}
		load := acc || ic > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelRows(panel, b, ic, n, j0, jw, mk)
			bp := &panel[0]
			p := plo
			for ; p+8 <= phi; p += 8 {
				if jw == fmaNR {
					fmaMicro8x8f32(&out[p*n+j0], n*4, &a[ic*k+p], 4, k*4, bp, mk, b2i(load))
				} else {
					fmaPartialTile32(out, p*n+j0, n, jw, &a[ic*k+p], 4, k*4, bp, mk, load)
				}
			}
			for ; p+4 <= phi; p += 4 {
				if jw == fmaNR {
					fmaMicro4x8f32(&out[p*n+j0], n*4, &a[ic*k+p], 4, k*4, bp, mk, b2i(load))
				} else {
					fmaPartialTile4x32(out, p*n+j0, n, jw, &a[ic*k+p], 4, k*4, bp, mk, load)
				}
			}
			for ; p < phi; p++ {
				fmaRowTail(out[p*n+j0:p*n+j0+jw], jw, a[ic*k+p:], k, mk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// gemmABTRangeFMA computes rows [ilo,ihi) of out = a·bᵀ with the f64 AVX2
// kernel, transpose-packing b panels.
func gemmABTRangeFMA(out, a, b []float64, k, n, ilo, ihi int, acc bool) {
	pp := getPanel[float64]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelCols(panel, b, j0, k, pc, jw, pk)
			bp := &panel[0]
			i := ilo
			for ; i+4 <= ihi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8(&out[i*n+j0], n*8, &a[i*k+pc], k*8, 8, bp, pk, b2i(load))
				} else {
					fmaPartialTile(out, i*n+j0, n, jw, &a[i*k+pc], k*8, 8, bp, pk, load)
				}
			}
			for ; i < ihi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}

// packPanelCols32 is the f32 transpose pack: full-width panels transpose
// through the 8×8 AVX shuffle kernel in blocks of eight reduction steps,
// with scalar fill for the t tail and for partial widths.
func packPanelCols32(panel, src []float32, j0, ld, p0, jw, pk int) {
	if jw == fmaNR {
		t0 := 0
		for ; t0+8 <= pk; t0 += 8 {
			transpose8x8f32(&panel[fmaNR*t0], &src[j0*ld+p0+t0], ld*4)
		}
		for j := 0; j < fmaNR && t0 < pk; j++ {
			col := src[(j0+j)*ld+p0+t0 : (j0+j)*ld+p0+pk]
			for t, v := range col {
				panel[fmaNR*(t0+t)+j] = v
			}
		}
		return
	}
	packPanelCols(panel, src, j0, ld, p0, jw, pk)
}

// gemmABTRangeFMA32 computes rows [ilo,ihi) of out = a·bᵀ with the f32 AVX2
// kernel, transpose-packing b panels.
func gemmABTRangeFMA32(out, a, b []float32, k, n, ilo, ihi int, acc bool) {
	pp := getPanel[float32]()
	panel := (*pp)[:gemmKC*fmaNR]
	for pc := 0; pc < k; pc += gemmKC {
		pk := k - pc
		if pk > gemmKC {
			pk = gemmKC
		}
		load := acc || pc > 0
		for j0 := 0; j0 < n; j0 += fmaNR {
			jw := n - j0
			if jw > fmaNR {
				jw = fmaNR
			}
			packPanelCols32(panel, b, j0, k, pc, jw, pk)
			bp := &panel[0]
			i := ilo
			for ; i+8 <= ihi; i += 8 {
				if jw == fmaNR {
					fmaMicro8x8f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					fmaPartialTile32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i+4 <= ihi; i += 4 {
				if jw == fmaNR {
					fmaMicro4x8f32(&out[i*n+j0], n*4, &a[i*k+pc], k*4, 4, bp, pk, b2i(load))
				} else {
					fmaPartialTile4x32(out, i*n+j0, n, jw, &a[i*k+pc], k*4, 4, bp, pk, load)
				}
			}
			for ; i < ihi; i++ {
				fmaRowTail(out[i*n+j0:i*n+j0+jw], jw, a[i*k+pc:], 1, pk, panel, load)
			}
		}
	}
	putPanel(pp)
}
