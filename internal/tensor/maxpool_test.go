package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// scalarPool2x2 is the reference candidate chain: row0-even, row0-odd,
// row1-even, row1-odd with strict greater-than, exactly as the nn pooling
// loop walks a 2x2 stride-2 window.
func scalarPool2x2[F Float](x, out []F, am []int, outH, outW, w, base int) {
	for oh := 0; oh < outH; oh++ {
		r0 := oh * 2 * w
		for ow := 0; ow < outW; ow++ {
			p := 2 * ow
			rel, best := p, x[r0+p]
			if v := x[r0+p+1]; v > best {
				rel, best = p+1, v
			}
			if v := x[r0+w+p]; v > best {
				rel, best = w+p, v
			}
			if v := x[r0+w+p+1]; v > best {
				rel, best = w+p+1, v
			}
			out[oh*outW+ow] = best
			am[oh*outW+ow] = base + r0 + rel
		}
	}
}

// maxPoolKernelMatchesScalar checks one pooling kernel against the scalar
// candidate chain bit-for-bit — values and argmax tie-breaking alike —
// across widths that exercise full chunks, masked tails, and planes whose
// last input column is clipped.
func maxPoolKernelMatchesScalar[F Float](t *testing.T, kernel func(x, out []F, am []int, outH, outW, w, base int) bool, bits func(F) uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for _, outW := range []int{1, 2, 6, 7, 8, 14, 15, 16, 17, 31, 32, 33} {
		for _, outH := range []int{1, 2, 5} {
			for _, extra := range []int{0, 1} { // odd widths leave a clipped column
				w := 2*outW + extra
				h := 2 * outH
				base := 3 * h * w // as if the plane sat mid-tensor
				x := make([]F, h*w)
				for i := range x {
					switch rng.Intn(5) {
					case 0:
						x[i] = 0 // ties exercise the strict-greater chain
					case 1:
						x[i] = F(math.Copysign(0, -1))
					default:
						x[i] = F(rng.NormFloat64())
					}
				}
				gotV := make([]F, outH*outW)
				gotA := make([]int, outH*outW)
				wantV := make([]F, outH*outW)
				wantA := make([]int, outH*outW)
				scalarPool2x2(x, wantV, wantA, outH, outW, w, base)
				if !kernel(x, gotV, gotA, outH, outW, w, base) {
					t.Fatalf("kernel refused outW=%d", outW)
				}
				for i := range gotV {
					if bits(gotV[i]) != bits(wantV[i]) || gotA[i] != wantA[i] {
						t.Fatalf("outW=%d outH=%d w=%d pixel %d: got (%v, %d) want (%v, %d)",
							outW, outH, w, i, gotV[i], gotA[i], wantV[i], wantA[i])
					}
				}
			}
		}
	}
}

func TestMaxPool2x2F32MatchesScalar(t *testing.T) {
	if !MaxPool2x2F32(make([]float32, 4), make([]float32, 1), make([]int, 1), 1, 1, 2, 0) {
		t.Skip("AVX-512 f32 tier unavailable on this host")
	}
	maxPoolKernelMatchesScalar(t, MaxPool2x2F32, func(v float32) uint64 { return uint64(math.Float32bits(v)) })
}

func TestMaxPool2x2F64MatchesScalar(t *testing.T) {
	if !MaxPool2x2F64(make([]float64, 4), make([]float64, 1), make([]int, 1), 1, 1, 2, 0) {
		t.Skip("AVX-512 f64 tier unavailable on this host")
	}
	maxPoolKernelMatchesScalar(t, MaxPool2x2F64, math.Float64bits)
}
