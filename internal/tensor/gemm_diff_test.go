//go:build amd64

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Differential kernel harness: every asm tier is checked against an exact
// scalar mimic (or against its sibling tier) on randomized shapes, so a
// wrong assembly offset fails `go test` directly instead of surfacing as a
// downstream metric drift.
//
// What "exact" means per tier:
//   - portable: every element is a plain mul+add chain in ascending
//     reduction order, reproduced bit-for-bit by a naive scalar loop;
//   - AVX2/AVX-512 f64: fused rows (the tile-aligned multiple-of-4 prefix
//     of each shard) are math.FMA chains, tail rows mul+add — both mimicked
//     exactly in scalar code;
//   - AVX2 vs AVX-512 f32: the tiers share per-element accumulation order
//     and fusion, so their outputs are compared bit-for-bit against each
//     other (Go has no scalar float32 FMA to mimic against), plus a
//     tolerance check against a float64 reference to catch errors that
//     corrupt both tiers identically (they share no assembly, so a common
//     wrong offset would have to be a driver bug, covered by the f64 mimic).

// tierState saves and force-sets the kernel dispatch tiers.
type tierState struct{ fma, fma32, a512, a51232 bool }

func setTiers(fma, avx512 bool) tierState {
	s := tierState{useFMA, useFMA32, useAVX512, useAVX51232}
	useFMA, useFMA32 = fma, fma
	useAVX512, useAVX51232 = avx512, avx512
	return s
}

func (s tierState) restore() {
	useFMA, useFMA32 = s.fma, s.fma32
	useAVX512, useAVX51232 = s.a512, s.a51232
}

// runForm invokes the public driver for the form. a is m×k; b is k×n (NN),
// m×n (ATB: out is k×n), or n×k (ABT: out is m×n).
func runForm(form gemmForm, out, a, b *Tensor, acc bool) {
	switch {
	case form == formNN && !acc:
		MatMulInto(out, a, b)
	case form == formNN && acc:
		gemmNN(out, a, b, true)
	case form == formATB && !acc:
		MatMulATBInto(out, a, b)
	case form == formATB && acc:
		MatMulATBAcc(out, a, b)
	case form == formABT && !acc:
		MatMulABTInto(out, a, b)
	default:
		MatMulABTAcc(out, a, b)
	}
}

// mimicF64 reproduces the blocked drivers' f64 arithmetic exactly in scalar
// code: the same shard plan, the same fused-row classes when fused is true
// (asm tiers), plain mul+add everywhere when false (portable tier).
func mimicF64(form gemmForm, out, a, b []float64, m, k, n int, acc, fused bool) {
	rows, red := m, k
	if form == formATB {
		rows, red = k, m
	}
	cols := n
	chunk, nsh := opShardPlan(rows, m*k*n)
	for s := 0; s < nsh; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		fmaHi := lo + ((hi-lo)/4)*4
		for r := lo; r < hi; r++ {
			rowFused := fused && r < fmaHi
			for j := 0; j < cols; j++ {
				// The portable ABT kernel accumulates each dot product from
				// zero and adds the seed at the end; every other kernel (and
				// the asm tiers' load flag) seeds the accumulator up front.
				seedLast := acc && form == formABT && !fused
				var c float64
				if acc && !seedLast {
					c = out[r*cols+j]
				}
				for t := 0; t < red; t++ {
					var av, bv float64
					switch form {
					case formNN:
						av, bv = a[r*k+t], b[t*n+j]
					case formATB:
						av, bv = a[t*k+r], b[t*n+j]
					case formABT:
						av, bv = a[r*k+t], b[j*k+t]
					}
					if rowFused {
						c = math.FMA(av, bv, c)
					} else {
						c += av * bv
					}
				}
				if seedLast {
					out[r*cols+j] += c
				} else {
					out[r*cols+j] = c
				}
			}
		}
	}
}

// mimicRef32 computes a float64 reference from float32 inputs for the
// tolerance check of the f32 tiers.
func mimicRef32(form gemmForm, out []float64, a, b []float32, m, k, n int, acc bool) {
	rows, red := m, k
	if form == formATB {
		rows, red = k, m
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			var c float64
			if acc {
				c = out[r*n+j]
			}
			for t := 0; t < red; t++ {
				var av, bv float32
				switch form {
				case formNN:
					av, bv = a[r*k+t], b[t*n+j]
				case formATB:
					av, bv = a[t*k+r], b[t*n+j]
				case formABT:
					av, bv = a[r*k+t], b[j*k+t]
				}
				c += float64(av) * float64(bv)
			}
			out[r*n+j] = c
		}
	}
}

// diffShapes is the randomized shape set: micro-kernel boundary cases (tile
// widths 4/8/16 and their neighbours) plus a few larger blocks crossing the
// gemmKC panel boundary via k.
func diffShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 5, 8}, {5, 7, 9}, {7, 8, 15},
		{8, 8, 16}, {9, 16, 17}, {12, 300, 5}, {16, 31, 16}, {17, 33, 23},
		{24, 16, 33}, {33, 257, 31},
	}
	for i := 0; i < 6; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	return shapes
}

// fillNonzero fills t with nonzero uniform values (the portable ATB kernel
// skips zero multiplicands, which the mimics do not model).
func fillNonzero(t *Tensor, rng *rand.Rand) {
	t.FillUniform(rng, -1, 1)
	if t.DT.Backing() == F32 {
		for i, v := range t.F32 {
			if v == 0 {
				t.F32[i] = 0.5
			}
		}
		return
	}
	for i, v := range t.Data {
		if v == 0 {
			t.Data[i] = 0.5
		}
	}
}

func TestGEMMDifferentialF64(t *testing.T) {
	if !detectFMA() {
		t.Skip("no AVX2+FMA on this host")
	}
	defer setTiers(false, false).restore()
	rng := rand.New(rand.NewSource(41))
	tiers := []struct {
		name        string
		fma, avx512 bool
	}{{"portable", false, false}, {"avx2", true, false}}
	if detectAVX512() {
		tiers = append(tiers, struct {
			name        string
			fma, avx512 bool
		}{"avx512", true, true})
	}
	for _, shape := range diffShapes(rng) {
		m, k, n := shape[0], shape[1], shape[2]
		for form := formNN; form <= formABT; form++ {
			ar, ac, br, bc, orr, oc := operandShapes(form, m, k, n)
			a := New(ar, ac)
			b := New(br, bc)
			fillNonzero(a, rng)
			fillNonzero(b, rng)
			for _, acc := range []bool{false, true} {
				seed := New(orr, oc)
				fillNonzero(seed, rng)
				for _, tier := range tiers {
					setTiers(tier.fma, tier.avx512)
					got := seed.Clone()
					runForm(form, got, a, b, acc)
					ref := make([]float64, orr*oc)
					if acc {
						copy(ref, seed.Data)
					}
					mimicF64(form, ref, a.Data, b.Data, m, k, n, acc, tier.fma)
					for i := range ref {
						if math.Float64bits(ref[i]) != math.Float64bits(got.Data[i]) {
							t.Fatalf("%s form=%d m=%d k=%d n=%d acc=%v: element %d = %x, mimic %x",
								tier.name, form, m, k, n, acc, i,
								math.Float64bits(got.Data[i]), math.Float64bits(ref[i]))
						}
					}
				}
			}
		}
	}
}

func TestGEMMDifferentialF32(t *testing.T) {
	if !detectFMA() {
		t.Skip("no AVX2+FMA on this host")
	}
	hasAVX512 := detectAVX512()
	defer setTiers(false, false).restore()
	rng := rand.New(rand.NewSource(43))
	for _, shape := range diffShapes(rng) {
		m, k, n := shape[0], shape[1], shape[2]
		for form := formNN; form <= formABT; form++ {
			ar, ac, br, bc, orr, oc := operandShapes(form, m, k, n)
			a := NewOf(F32, ar, ac)
			b := NewOf(F32, br, bc)
			fillNonzero(a, rng)
			fillNonzero(b, rng)
			for _, acc := range []bool{false, true} {
				seed := NewOf(F32, orr, oc)
				fillNonzero(seed, rng)

				// Portable tier: exact against the naive mul+add mimic.
				setTiers(false, false)
				portable := seed.Clone()
				runForm(form, portable, a, b, acc)
				ref32 := make([]float32, orr*oc)
				if acc {
					copy(ref32, seed.F32)
				}
				mimicMulAdd32(form, ref32, a.F32, b.F32, m, k, n, acc)
				for i := range ref32 {
					if math.Float32bits(ref32[i]) != math.Float32bits(portable.F32[i]) {
						t.Fatalf("portable form=%d m=%d k=%d n=%d acc=%v: element %d = %x, mimic %x",
							form, m, k, n, acc, i, math.Float32bits(portable.F32[i]), math.Float32bits(ref32[i]))
					}
				}

				// AVX2 tier: tolerance against a float64 reference.
				setTiers(true, false)
				avx2 := seed.Clone()
				runForm(form, avx2, a, b, acc)
				ref := make([]float64, orr*oc)
				if acc {
					for i, v := range seed.F32 {
						ref[i] = float64(v)
					}
				}
				mimicRef32(form, ref, a.F32, b.F32, m, k, n, acc)
				for i := range ref {
					if d := math.Abs(float64(avx2.F32[i]) - ref[i]); d > 1e-4*(1+math.Abs(ref[i])) {
						t.Fatalf("avx2 form=%d m=%d k=%d n=%d acc=%v: element %d = %v, reference %v",
							form, m, k, n, acc, i, avx2.F32[i], ref[i])
					}
				}

				// AVX-512 tier: bit-identical to the AVX2 tier.
				if hasAVX512 {
					setTiers(true, true)
					avx512 := seed.Clone()
					runForm(form, avx512, a, b, acc)
					for i := range avx512.F32 {
						if math.Float32bits(avx512.F32[i]) != math.Float32bits(avx2.F32[i]) {
							t.Fatalf("avx512 form=%d m=%d k=%d n=%d acc=%v: element %d = %x, avx2 %x",
								form, m, k, n, acc, i, math.Float32bits(avx512.F32[i]), math.Float32bits(avx2.F32[i]))
						}
					}
				}
			}
		}
	}
}

// mimicMulAdd32 is the naive mul+add float32 reference, exact for the
// portable tier (accumulation is per-element sequential there too).
func mimicMulAdd32(form gemmForm, out []float32, a, b []float32, m, k, n int, acc bool) {
	rows, red := m, k
	if form == formATB {
		rows, red = k, m
	}
	seedLast := acc && form == formABT // see mimicF64
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			var c float32
			if !seedLast {
				c = out[r*n+j]
			}
			for t := 0; t < red; t++ {
				var av, bv float32
				switch form {
				case formNN:
					av, bv = a[r*k+t], b[t*n+j]
				case formATB:
					av, bv = a[t*k+r], b[t*n+j]
				case formABT:
					av, bv = a[r*k+t], b[j*k+t]
				}
				c += av * bv
			}
			if seedLast {
				out[r*n+j] += c
			} else {
				out[r*n+j] = c
			}
		}
	}
}
