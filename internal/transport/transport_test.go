package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// each transport under test, built fresh per subtest so namespaces and
// ports never collide.
func transports(t *testing.T, opts Options) map[string]Transport {
	t.Helper()
	return map[string]Transport{
		"inproc": NewInproc(opts),
		"tcp":    NewTCP(opts),
	}
}

func listenAddr(tr Transport) string {
	if tr.Name() == "tcp" {
		return "127.0.0.1:0"
	}
	return "srv"
}

// TestRoundTrip sends frames both ways over each transport and checks
// contents and the byte accounting contract (FrameOverhead + len).
func TestRoundTrip(t *testing.T) {
	for name, tr := range transports(t, Options{}) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(tr))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			type accepted struct {
				c   Conn
				err error
			}
			acceptCh := make(chan accepted, 1)
			go func() {
				c, err := ln.Accept()
				acceptCh <- accepted{c, err}
			}()
			cli, err := tr.Dial(context.Background(), ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			srvSide := <-acceptCh
			if srvSide.err != nil {
				t.Fatal(srvSide.err)
			}
			srv := srvSide.c
			defer srv.Close()

			frame := comm.Marshal(7, []float64{1, 2, 3})
			sent, err := cli.Send(frame)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(FrameOverhead + len(frame)); sent != want {
				t.Fatalf("Send reported %d wire bytes, want %d", sent, want)
			}
			got, recvd, err := srv.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if recvd != sent {
				t.Fatalf("Recv reported %d wire bytes, Send reported %d", recvd, sent)
			}
			if string(got) != string(frame) {
				t.Fatalf("frame corrupted in transit")
			}
			// Mutating the sent buffer must not reach a frame already
			// delivered (or in flight).
			reply := []byte("pong")
			if _, err := srv.Send(reply); err != nil {
				t.Fatal(err)
			}
			reply[0] = 'X'
			got2, _, err := cli.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got2) != "pong" {
				t.Fatalf("reply = %q, want %q (sender mutation leaked)", got2, "pong")
			}
		})
	}
}

// TestCloseUnblocksRecv closes the peer and checks the blocked reader
// observes EOF-like termination instead of hanging.
func TestCloseUnblocksRecv(t *testing.T) {
	for name, tr := range transports(t, Options{}) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(tr))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			connCh := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					connCh <- c
				}
			}()
			cli, err := tr.Dial(context.Background(), ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			srv := <-connCh
			errCh := make(chan error, 1)
			go func() {
				_, _, err := srv.Recv()
				errCh <- err
			}()
			cli.Close()
			select {
			case err := <-errCh:
				if err == nil {
					t.Fatal("Recv on a closed connection returned a frame")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not unblock after peer close")
			}
			srv.Close()
		})
	}
}

// TestHandshakeRejectsMismatch wires an f32 dialer into an f64 listener
// (and a codec mismatch) and checks both fail with a descriptive error.
func TestHandshakeRejectsMismatch(t *testing.T) {
	cases := []struct {
		name         string
		dialer       Options
		wantFragment string
	}{
		{"dtype", Options{DType: tensor.F32}, "dtype"},
		{"codec", Options{Spec: comm.Spec{Value: comm.I8}}, "i8"},
		{"spec", Options{Spec: comm.NewSpec(comm.F32, 0.05, true)}, "topk"},
	}
	for _, tc := range cases {
		t.Run("tcp/"+tc.name, func(t *testing.T) {
			srvTr := NewTCP(Options{})
			ln, err := srvTr.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			acceptErr := make(chan error, 1)
			go func() {
				_, err := ln.Accept()
				acceptErr <- err
			}()
			_, err = NewTCP(tc.dialer).Dial(context.Background(), ln.Addr())
			if !errors.Is(err, ErrHandshake) {
				t.Fatalf("dialer error = %v, want ErrHandshake (deterministic, non-retryable)", err)
			}
			if err := <-acceptErr; !errors.Is(err, ErrHandshake) {
				t.Fatalf("acceptor error = %v, want ErrHandshake", err)
			}
		})
	}
	// inproc validates synchronously at Dial against the options the
	// listener was bound with.
	srv := NewInproc(Options{})
	if _, err := srv.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	cli := NewInproc(Options{DType: tensor.F32})
	// Dial resolves the listener inside the dialing transport's namespace,
	// so connect through the server's namespace with mismatched options.
	if err := func() error {
		_, err := (&Inproc{opts: cli.opts, listeners: srv.listeners}).Dial(context.Background(), "srv")
		return err
	}(); !errors.Is(err, ErrHandshake) {
		t.Fatalf("inproc dtype mismatch error = %v, want ErrHandshake", err)
	}
}

// TestTCPRejectsBadMagic points the accept loop at a client that speaks
// something other than the federation protocol.
func TestTCPRejectsBadMagic(t *testing.T) {
	tr := NewTCP(Options{})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		acceptErr <- err
	}()
	nc, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: chaos\r\n\r\n....")) // ≥ helloSize bytes of non-protocol traffic
	err = <-acceptErr
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("accept error = %v, want bad-magic rejection", err)
	}
}

// TestTCPReadLimit declares a frame beyond the connection's limit and
// checks the reader rejects it before allocating.
func TestTCPReadLimit(t *testing.T) {
	tr := NewTCP(Options{MaxFrame: 128})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cli, err := NewTCP(Options{MaxFrame: 1 << 20}).Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-connCh
	defer srv.Close()
	if _, err := cli.Send(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Recv(); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("Recv error = %v, want read-limit rejection", err)
	}
}

// TestTCPHandshakeBytes checks the handshake byte accounting matches the
// fixed hello size each way.
func TestTCPHandshakeBytes(t *testing.T) {
	tr := NewTCP(Options{})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cli, err := tr.Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-connCh
	defer srv.Close()
	for _, c := range []Conn{cli, srv} {
		sent, recvd := c.HandshakeBytes()
		if sent != int64(helloSize) || recvd != int64(helloSize) {
			t.Fatalf("handshake bytes = (%d, %d), want (%d, %d)", sent, recvd, helloSize, helloSize)
		}
	}
	if h := cli.Hello(); h.Version != Version {
		t.Fatalf("negotiated version %d, want %d", h.Version, Version)
	}
}

// TestDialContextCancel checks Dial respects an already-cancelled context.
func TestDialContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewTCP(Options{}).Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("cancelled dial must fail")
	}
	tr := NewInproc(Options{})
	if _, err := tr.Dial(ctx, "nowhere"); err == nil {
		t.Fatal("inproc dial to an unbound address must fail")
	}
}

// TestInprocNamespaceIsolation checks two Inproc instances do not share
// addresses.
func TestInprocNamespaceIsolation(t *testing.T) {
	a, b := NewInproc(Options{}), NewInproc(Options{})
	if _, err := a.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Dial(context.Background(), "srv"); err == nil {
		t.Fatal("dial across namespaces must fail")
	}
	if _, err := b.Listen("srv"); err != nil {
		t.Fatalf("second namespace cannot bind the same name: %v", err)
	}
}

// TestFrameWireFormat pins the tcp frame layout: little-endian u32 length
// prefix followed by the raw frame — the contract DESIGN.md §8 documents
// and the ledger's byte accounting assumes.
func TestFrameWireFormat(t *testing.T) {
	tr := NewTCP(Options{})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cli, err := tr.Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-connCh
	defer srv.Close()

	// Read the raw socket bytes of one frame from the server side by
	// peeking beneath the abstraction.
	raw := srv.(*tcpConn).nc
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	if _, err := cli.Send(payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, FrameOverhead+len(payload))
	if _, err := io.ReadFull(raw, buf); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf); got != uint32(len(payload)) {
		t.Fatalf("length prefix = %d, want %d", got, len(payload))
	}
	if string(buf[FrameOverhead:]) != string(payload) {
		t.Fatal("payload bytes differ on the wire")
	}
}
