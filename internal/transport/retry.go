package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Dial-retry policy shared by fedclient's first dial and the node
// runtime's reconnect loop: capped exponential backoff with seeded
// jitter under a total time budget. Jitter desynchronizes a fleet of
// clients re-dialing a restarted server (no thundering herd of
// simultaneous retries), and seeding it keeps test runs reproducible.

// RetryOptions configure DialRetry. The zero value retries for
// DefaultRetryBudget with the default backoff envelope.
type RetryOptions struct {
	// Budget is the total time to keep trying (default DefaultRetryBudget).
	// The last attempt starts before the budget expires; it may finish
	// after.
	Budget time.Duration
	// BaseDelay is the first backoff interval (default 50ms); each failure
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter stream. Callers pass a per-client seed so a
	// fleet's retry schedules differ deterministically.
	Seed int64
	// OnRetry, when non-nil, observes each failed attempt before the
	// backoff sleep (logging, test hooks).
	OnRetry func(attempt int, err error, next time.Duration)
	// Token, when nonzero, is the session token presented in each dial's
	// hello (a reconnecting client naming its session).
	Token uint64
}

// DefaultRetryBudget bounds a retried dial when the caller sets none.
const DefaultRetryBudget = 30 * time.Second

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Budget <= 0 {
		o.Budget = DefaultRetryBudget
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	return o
}

// DialRetry dials addr until it succeeds, the budget is exhausted, the
// context is cancelled, or the peer deterministically rejects the
// handshake (ErrHandshake — retrying cannot succeed, so it surfaces
// immediately). On exhaustion the error reports the attempt count, the
// budget and the last failure, so a misconfigured address reads as a
// clear diagnosis instead of a hang.
func DialRetry(ctx context.Context, tr Transport, addr string, o RetryOptions) (Conn, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	deadline := time.Now().Add(o.Budget)
	delay := o.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		conn, err := DialWithToken(ctx, tr, addr, o.Token)
		if err == nil {
			return conn, nil
		}
		if errors.Is(err, ErrHandshake) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s failed after %d attempts over %v, last: %w",
				addr, attempt, o.Budget, lastErr)
		}
		// Full jitter: sleep uniformly in (0, delay], then double the
		// envelope. The cap keeps the worst-case reconnect latency bounded.
		sleep := time.Duration(rng.Int63n(int64(delay))) + 1
		if o.OnRetry != nil {
			o.OnRetry(attempt, err, sleep)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if delay *= 2; delay > o.MaxDelay {
			delay = o.MaxDelay
		}
	}
}
