// Package transport is the federation's wire seam: a frame-oriented
// connection abstraction between a server node and its client nodes, with
// two implementations. The inproc transport moves frames over in-memory
// channels inside one process — it is fully deterministic (a single reader
// observes a single writer's frames in order, with no timeouts or partial
// reads) and is what the node tests and `fedsim -transport tcp`'s cheaper
// sibling build on. The tcp transport moves the same frames over real
// sockets with length-prefixed framing, a version/dtype/codec handshake,
// per-connection read limits and context-aware dialing — the multi-process
// `fedserver`/`fedclient` deployment.
//
// The transport layer is payload-agnostic: a frame is an opaque byte slice.
// The federation's message envelope (joins, dispatches, updates) lives in
// internal/fl, and the payload vectors inside those messages are
// internal/comm codec frames. What transport adds on the wire is exactly
// FrameOverhead bytes per frame (the length prefix) plus the fixed-size
// handshake per connection — both reported to callers so traffic ledgers
// can account every byte that actually crosses the wire.
package transport

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// ErrClosed marks errors caused by a closed listener or connection, so
// callers can tell a dead endpoint (fatal: stop accepting) from one bad
// peer (tolerable: keep accepting). Test with errors.Is.
var ErrClosed = errors.New("endpoint closed")

// ErrHandshake marks a connection that reached the peer but was rejected
// during the handshake (version/dtype/codec mismatch, bad magic). The
// rejection is deterministic — retrying the dial cannot succeed — so
// callers should fail immediately instead of retrying. Test with
// errors.Is.
var ErrHandshake = errors.New("handshake rejected")

// ErrDeadline marks a Send or Recv that missed a deadline set via
// SetReadDeadline/SetWriteDeadline. The connection may still be usable
// (tcp leaves the socket open), but the federation layer treats a missed
// heartbeat deadline as a dead peer. Test with errors.Is.
var ErrDeadline = errors.New("deadline exceeded")

// Version is the wire-protocol generation spoken by this build. Both ends
// of a tcp connection must agree; the handshake rejects mismatches.
// Version 2 added the session-token word to the hello (magic "FEDWIRE2"),
// so a v1 peer fails the magic check before it can misparse the longer
// hello. Version 3 added the tree-topology envelope kinds (tree join,
// batched dispatch, aggregated update, passthrough bundle); the hello
// layout is unchanged, and flat clients speak v3 untouched — the bump
// only fences v2 peers, which would drop the new kinds as unknown.
// Version 4 widened the hello's codec word to a packed comm.Spec (top-k
// fraction and delta flag alongside the value codec) and added the TOPK
// and DELTA frame families. The hello layout is again unchanged and a
// plain dense spec packs to the bare codec value, but a v3 peer would
// truncate the packed word to its low byte and silently misread a sparse
// negotiation — the bump turns that corruption into a clean rejection.
const Version = 4

// FrameOverhead is the per-frame wire overhead: the uint32 length prefix.
// The inproc transport books the same arithmetic so byte accounting is
// transport-independent for frames (inproc has no handshake bytes).
const FrameOverhead = 4

// DefaultMaxFrame is the default per-connection read limit. A peer
// declaring a larger frame is cut off before any allocation — the limit
// bounds memory, not correctness (the largest legitimate frame is a full
// model broadcast, far below this).
const DefaultMaxFrame = 64 << 20

// Options configure an endpoint. The zero value is a float64/f64-codec
// endpoint with the default read limit.
type Options struct {
	// DType is the model element type this endpoint trains or serves.
	// Handshakes reject peers at a different dtype — silently mixing f32
	// and f64 nodes would corrupt parity, exactly like resuming a
	// checkpoint at the wrong dtype.
	DType tensor.DType
	// Spec is the payload framing this endpoint speaks: the dense value
	// codec plus optional top-k sparsification and delta framing. Both
	// ends must agree so ledger accounting, dequantization and delta
	// basis tracking match. The zero value is plain dense f64.
	Spec comm.Spec
	// MaxFrame caps the size of any single received frame in bytes
	// (default DefaultMaxFrame).
	MaxFrame int64
	// Token is the session token this endpoint presents when dialing: 0
	// for a fresh connection, a server-issued token when reconnecting to
	// resume an existing federation session. The handshake carries it as
	// opaque data — validation is the federation layer's job, not the
	// transport's (a token is an identity claim, not a compatibility
	// property).
	Token uint64
}

func (o Options) withDefaults() Options {
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// Hello is the negotiated handshake: what the peer declared at connect
// time, after validation against the local options.
type Hello struct {
	Version uint32
	DType   tensor.DType
	Spec    comm.Spec
	// Token is the session token the peer presented. On an accepted
	// connection this is the dialer's claim (the interesting direction: a
	// reconnecting client names its session); on a dialed connection it is
	// whatever the listener was configured with, normally zero. The
	// federation layer decides what a nonzero token resumes.
	Token uint64
}

// Conn is one frame-oriented connection. Send and Recv may be used
// concurrently with each other (one writer, one reader); neither is safe
// for concurrent use with itself. Both return the wire bytes moved,
// framing overhead included, so callers can account real traffic.
type Conn interface {
	// Send writes one frame and returns the bytes put on the wire
	// (FrameOverhead + len(frame)).
	Send(frame []byte) (int64, error)
	// Recv reads the next frame and returns the wire bytes consumed. A
	// cleanly closed peer yields io.EOF.
	Recv() ([]byte, int64, error)
	// Close tears the connection down, unblocking any pending Recv.
	Close() error
	// SetReadDeadline bounds every subsequent Recv: a Recv not completed by
	// t fails with an error satisfying errors.Is(err, ErrDeadline). The
	// zero time clears the deadline. This is the failure-discipline seam —
	// a peer that stops sending (hung) is distinguished from one that sends
	// slowly (alive) by whether traffic arrives before the deadline.
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline bounds every subsequent Send the same way.
	SetWriteDeadline(t time.Time) error
	// Hello reports the peer's negotiated handshake.
	Hello() Hello
	// HandshakeBytes reports the wire bytes the handshake itself moved
	// (sent, received). Zero on the inproc transport.
	HandshakeBytes() (sent, received int64)
}

// Listener accepts connections, performing the handshake before returning
// them.
type Listener interface {
	// Accept blocks for the next handshaken connection.
	Accept() (Conn, error)
	// Addr reports the bound address (for tcp, the concrete port when
	// listening on :0).
	Addr() string
	// Close stops accepting and unblocks a pending Accept.
	Close() error
}

// Transport builds listeners and outbound connections.
type Transport interface {
	// Name is the flag value naming this transport ("inproc" | "tcp").
	Name() string
	// Listen binds addr and starts accepting.
	Listen(addr string) (Listener, error)
	// Dial connects (and handshakes) to a listener; ctx bounds the attempt.
	Dial(ctx context.Context, addr string) (Conn, error)
}

// SessionDialer is implemented by transports whose Dial can present a
// per-call session token, overriding Options.Token. A client learns its
// token only after the first welcome, long after the transport was
// constructed — reconnects need to attach it per dial.
type SessionDialer interface {
	DialSession(ctx context.Context, addr string, token uint64) (Conn, error)
}

// DialWithToken dials addr presenting token in the hello when the
// transport supports per-dial tokens. A zero token (or a transport
// without per-dial support) falls back to a plain Dial with whatever
// Options.Token was configured.
func DialWithToken(ctx context.Context, tr Transport, addr string, token uint64) (Conn, error) {
	if sd, ok := tr.(SessionDialer); ok && token != 0 {
		return sd.DialSession(ctx, addr, token)
	}
	return tr.Dial(ctx, addr)
}

// ParseName validates a -transport flag value.
func ParseName(s string) (string, error) {
	switch s {
	case "inproc", "":
		return "inproc", nil
	case "tcp":
		return "tcp", nil
	}
	return "", fmt.Errorf("transport: unknown transport %q (want inproc | tcp)", s)
}

// checkHello validates a peer's handshake against local options.
func checkHello(peer Hello, local Options) error {
	if peer.Version != Version {
		return fmt.Errorf("transport: peer speaks protocol version %d, this build speaks %d: %w", peer.Version, Version, ErrHandshake)
	}
	if peer.DType != local.DType {
		return fmt.Errorf("transport: peer trains at dtype %s, this endpoint at %s: %w", peer.DType, local.DType, ErrHandshake)
	}
	if peer.Spec != local.Spec {
		return fmt.Errorf("transport: peer frames payloads as %s, this endpoint as %s: %w", peer.Spec, local.Spec, ErrHandshake)
	}
	return nil
}
