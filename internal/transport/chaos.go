package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chaos wraps any Transport with deterministic fault injection at frame
// boundaries, for driving the federation's failure paths in tests and the
// CI chaos job. Faults are drawn from seeded per-connection RNG streams,
// so a chaos run is reproducible: the same seed injects the same faults
// at the same frame indices regardless of real scheduling.
//
// The protocol assumes reliable in-order delivery, so a "dropped" frame
// is modeled the way TCP surfaces it: the connection dies (the frame is
// discarded and the underlying conn closed), forcing the reconnect
// machinery rather than silently corrupting the stream. Duplicates
// redeliver the previous frame — exercising the receivers' tolerance for
// replayed messages after a reconnect resend. Delays sleep a bounded,
// seeded amount before delivery — exercising deadlines without killing
// the peer. Partitions fail dial attempts — exercising backoff budgets.

// ChaosConfig sets per-event fault probabilities. All probabilities are
// in [0, 1); zero disables that fault.
type ChaosConfig struct {
	// Seed drives every fault stream. Connections get distinct,
	// deterministic substreams by connection index.
	Seed int64
	// Drop is the per-frame probability (on both Send and Recv) that the
	// frame is lost and the connection is torn down.
	Drop float64
	// Delay is the per-frame probability of a delivery delay, uniform in
	// (0, MaxDelay].
	Delay float64
	// MaxDelay bounds an injected delay (default 50ms).
	MaxDelay time.Duration
	// Dup is the per-frame probability (on Recv) that the frame is
	// delivered twice.
	Dup float64
	// Partition is the per-dial probability that the attempt fails as if
	// the network were partitioned.
	Partition float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	return c
}

// Chaos is the fault-injecting Transport wrapper.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu      sync.Mutex
	dialRng *rand.Rand
	conns   int64
}

// NewChaos wraps a transport with fault injection.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	cfg = cfg.withDefaults()
	return &Chaos{inner: inner, cfg: cfg, dialRng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name reports the wrapped transport's name — a chaos endpoint speaks the
// same protocol, it just breaks on schedule.
func (t *Chaos) Name() string { return t.inner.Name() }

// Listen wraps the inner listener so accepted connections inject faults.
func (t *Chaos) Listen(addr string) (Listener, error) {
	ln, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chaosListener{ln: ln, tr: t}, nil
}

// Dial connects through the partition schedule: a partitioned attempt
// fails before touching the network (the caller's backoff handles it).
func (t *Chaos) Dial(ctx context.Context, addr string) (Conn, error) {
	return t.dialVia(addr, func() (Conn, error) { return t.inner.Dial(ctx, addr) })
}

// DialSession passes a per-call session token through to the inner
// transport (chaos endpoints reconnect like real ones).
func (t *Chaos) DialSession(ctx context.Context, addr string, token uint64) (Conn, error) {
	return t.dialVia(addr, func() (Conn, error) { return DialWithToken(ctx, t.inner, addr, token) })
}

func (t *Chaos) dialVia(addr string, dial func() (Conn, error)) (Conn, error) {
	t.mu.Lock()
	partitioned := t.cfg.Partition > 0 && t.dialRng.Float64() < t.cfg.Partition
	t.mu.Unlock()
	if partitioned {
		return nil, fmt.Errorf("transport: chaos: injected partition dialing %s", addr)
	}
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	return t.wrap(conn), nil
}

// wrap builds a chaos connection with its own deterministic fault
// streams, derived from the chaos seed and the connection index.
func (t *Chaos) wrap(conn Conn) Conn {
	t.mu.Lock()
	idx := t.conns
	t.conns++
	t.mu.Unlock()
	return &chaosConn{
		Conn:    conn,
		cfg:     t.cfg,
		sendRng: rand.New(rand.NewSource(t.cfg.Seed ^ (idx*2 + 1))),
		recvRng: rand.New(rand.NewSource(t.cfg.Seed ^ (idx*2 + 2))),
	}
}

type chaosListener struct {
	ln Listener
	tr *Chaos
}

func (l *chaosListener) Accept() (Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return l.tr.wrap(conn), nil
}

func (l *chaosListener) Addr() string { return l.ln.Addr() }
func (l *chaosListener) Close() error { return l.ln.Close() }

// chaosConn injects faults around an inner connection. Send and Recv own
// separate RNG streams (they may run concurrently); each is used only
// under its caller's single-goroutine contract.
type chaosConn struct {
	Conn
	cfg     ChaosConfig
	sendRng *rand.Rand
	recvRng *rand.Rand
	// replay holds a duplicated frame awaiting redelivery.
	replay     []byte
	replayWire int64
}

func (c *chaosConn) Send(frame []byte) (int64, error) {
	if c.cfg.Drop > 0 && c.sendRng.Float64() < c.cfg.Drop {
		c.Conn.Close()
		return 0, fmt.Errorf("transport: chaos: injected connection loss on send")
	}
	if c.cfg.Delay > 0 && c.sendRng.Float64() < c.cfg.Delay {
		time.Sleep(time.Duration(c.sendRng.Int63n(int64(c.cfg.MaxDelay))) + 1)
	}
	return c.Conn.Send(frame)
}

func (c *chaosConn) Recv() ([]byte, int64, error) {
	if c.replay != nil {
		b, wire := c.replay, c.replayWire
		c.replay = nil
		return b, wire, nil
	}
	b, wire, err := c.Conn.Recv()
	if err != nil {
		return b, wire, err
	}
	if c.cfg.Drop > 0 && c.recvRng.Float64() < c.cfg.Drop {
		c.Conn.Close()
		return nil, 0, fmt.Errorf("transport: chaos: injected connection loss on recv")
	}
	if c.cfg.Delay > 0 && c.recvRng.Float64() < c.cfg.Delay {
		time.Sleep(time.Duration(c.recvRng.Int63n(int64(c.cfg.MaxDelay))) + 1)
	}
	if c.cfg.Dup > 0 && c.recvRng.Float64() < c.cfg.Dup {
		c.replay = append([]byte(nil), b...)
		c.replayWire = wire
	}
	return b, wire, nil
}
