package transport

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// The inproc transport: frames move over in-memory channels between
// goroutines of one process. Each Inproc instance is its own namespace of
// addresses, so tests and in-process federations never collide. Delivery
// is ordered and lossless; byte accounting uses the same FrameOverhead
// arithmetic as tcp so ledgers agree across transports (there are no
// handshake bytes — both ends live in one process and the compatibility
// check happens synchronously at Dial).

// Inproc is a channel-based Transport for nodes sharing one process.
type Inproc struct {
	opts Options

	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInproc builds an isolated in-process transport namespace.
func NewInproc(opts Options) *Inproc {
	return &Inproc{opts: opts.withDefaults(), listeners: make(map[string]*inprocListener)}
}

// Name reports "inproc".
func (t *Inproc) Name() string { return "inproc" }

// Listen binds a name in this transport's namespace.
func (t *Inproc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	ln := &inprocListener{
		tr:      t,
		opts:    t.opts,
		addr:    addr,
		backlog: make(chan *inprocConn, 16),
		done:    make(chan struct{}),
	}
	t.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a listener in this namespace. The handshake is a
// synchronous compatibility check against the options the listener was
// bound with — within one namespace they usually coincide, but a test or
// harness that wires two endpoints with different options together still
// fails loudly instead of corrupting payloads.
func (t *Inproc) Dial(ctx context.Context, addr string) (Conn, error) {
	return t.dial(ctx, addr, t.opts.Token)
}

// DialSession dials presenting a per-call session token in the hello,
// within this instance's namespace.
func (t *Inproc) DialSession(ctx context.Context, addr string, token uint64) (Conn, error) {
	return t.dial(ctx, addr, token)
}

func (t *Inproc) dial(ctx context.Context, addr string, token uint64) (Conn, error) {
	t.mu.Lock()
	ln := t.listeners[addr]
	t.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("transport: no inproc listener at %q", addr)
	}
	hello := Hello{Version: Version, DType: t.opts.DType, Spec: t.opts.Spec, Token: token}
	if err := checkHello(hello, ln.opts); err != nil {
		return nil, err
	}
	// One buffered channel per direction; capacity bounds in-flight frames,
	// and a full channel applies real backpressure to the sender.
	c2s := make(chan []byte, 64)
	s2c := make(chan []byte, 64)
	pipe := &pipeState{closed: make(chan struct{})}
	dialer := &inprocConn{send: c2s, recv: s2c, pipe: pipe, peer: hello}
	accepted := &inprocConn{send: s2c, recv: c2s, pipe: pipe, peer: hello}
	select {
	case ln.backlog <- accepted:
		return dialer, nil
	case <-ln.done:
		return nil, fmt.Errorf("transport: inproc listener at %q: %w", addr, ErrClosed)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type inprocListener struct {
	tr      *Inproc
	opts    Options // the options the listener was bound with
	addr    string
	backlog chan *inprocConn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: inproc listener at %q: %w", l.addr, ErrClosed)
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.tr.mu.Lock()
		delete(l.tr.listeners, l.addr)
		l.tr.mu.Unlock()
	})
	return nil
}

// pipeState is the teardown signal shared by the two endpoints of one
// inproc connection: closing either side tears the pipe down, like a
// socket.
type pipeState struct {
	once   sync.Once
	closed chan struct{}
}

func (p *pipeState) close() { p.once.Do(func() { close(p.closed) }) }

// inprocConn is one direction-pair of channels.
type inprocConn struct {
	send chan []byte
	recv chan []byte
	pipe *pipeState
	peer Hello

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
}

// deadlineTimer returns a channel that fires at the deadline, or nil (a
// never-ready select case) when no deadline is set. The returned stop
// func releases the timer.
func deadlineTimer(dl time.Time) (<-chan time.Time, func()) {
	if dl.IsZero() {
		return nil, func() {}
	}
	t := time.NewTimer(time.Until(dl))
	return t.C, func() { t.Stop() }
}

func (c *inprocConn) Send(frame []byte) (int64, error) {
	// Frames are copied at the boundary: the receiver must never observe a
	// sender-side mutation, exactly as bytes on a socket would not.
	b := append([]byte(nil), frame...)
	c.mu.Lock()
	expire, stop := deadlineTimer(c.writeDeadline)
	c.mu.Unlock()
	defer stop()
	select {
	case c.send <- b:
		return FrameOverhead + int64(len(b)), nil
	case <-expire:
		return 0, fmt.Errorf("transport: inproc send: %w", ErrDeadline)
	case <-c.pipe.closed:
		return 0, io.ErrClosedPipe
	}
}

func (c *inprocConn) Recv() ([]byte, int64, error) {
	c.mu.Lock()
	expire, stop := deadlineTimer(c.readDeadline)
	c.mu.Unlock()
	defer stop()
	select {
	case b := <-c.recv:
		return b, FrameOverhead + int64(len(b)), nil
	case <-expire:
		return nil, 0, fmt.Errorf("transport: inproc recv: %w", ErrDeadline)
	case <-c.pipe.closed:
		// Drain frames that were already in flight before the close, so a
		// graceful shutdown message is not lost to a racing Close.
		select {
		case b := <-c.recv:
			return b, FrameOverhead + int64(len(b)), nil
		default:
			return nil, 0, io.EOF
		}
	}
}

func (c *inprocConn) Close() error {
	c.pipe.close()
	return nil
}

func (c *inprocConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return nil
}

func (c *inprocConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return nil
}

func (c *inprocConn) Hello() Hello { return c.peer }

func (c *inprocConn) HandshakeBytes() (int64, int64) { return 0, 0 }
