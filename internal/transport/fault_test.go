package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
)

// Fault-path tests: session tokens, read/write deadlines, the dial-retry
// policy and the chaos fault injector — the transport layer of the wire
// fault-tolerance contract (DESIGN.md §9).

// pair listens, dials and accepts one connection over tr, returning
// (dialer side, acceptor side).
func pair(t *testing.T, tr Transport) (Conn, Conn) {
	t.Helper()
	ln, err := tr.Listen(listenAddr(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type accepted struct {
		c   Conn
		err error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		acceptCh <- accepted{c, err}
	}()
	cli, err := tr.Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	srvSide := <-acceptCh
	if srvSide.err != nil {
		t.Fatal(srvSide.err)
	}
	t.Cleanup(func() { srvSide.c.Close() })
	return cli, srvSide.c
}

// TestSessionTokenHandshake checks DialWithToken carries the session
// token to the acceptor's Hello verbatim, on every transport that speaks
// sessions, and that a plain dial presents token zero.
func TestSessionTokenHandshake(t *testing.T) {
	const token uint64 = 0x8000beefcafe0001
	for name, tr := range transports(t, Options{}) {
		t.Run(name, func(t *testing.T) {
			ln, err := tr.Listen(listenAddr(tr))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			type accepted struct {
				c   Conn
				err error
			}
			acceptCh := make(chan accepted, 2)
			go func() {
				for i := 0; i < 2; i++ {
					c, err := ln.Accept()
					acceptCh <- accepted{c, err}
				}
			}()
			cli, err := DialWithToken(context.Background(), tr, ln.Addr(), token)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			got := <-acceptCh
			if got.err != nil {
				t.Fatal(got.err)
			}
			defer got.c.Close()
			if h := got.c.Hello(); h.Token != token {
				t.Fatalf("acceptor saw token %#x, want %#x", h.Token, token)
			}
			plain, err := tr.Dial(context.Background(), ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			got = <-acceptCh
			if got.err != nil {
				t.Fatal(got.err)
			}
			defer got.c.Close()
			if h := got.c.Hello(); h.Token != 0 {
				t.Fatalf("plain dial presented token %#x, want 0", h.Token)
			}
		})
	}
}

// TestReadDeadline checks a Recv past the read deadline fails with a
// typed ErrDeadline (the server's hung-connection detection) and the
// connection survives once the deadline is cleared.
func TestReadDeadline(t *testing.T) {
	for name, tr := range transports(t, Options{}) {
		t.Run(name, func(t *testing.T) {
			cli, srv := pair(t, tr)
			if err := srv.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if _, _, err := srv.Recv(); !errors.Is(err, ErrDeadline) {
				t.Fatalf("Recv past deadline = %v, want ErrDeadline", err)
			}
			// A deadline miss is not a connection loss: clearing it and
			// sending again must work (tcp semantics; inproc matches).
			if err := srv.SetReadDeadline(time.Time{}); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Send([]byte("late")); err != nil {
				t.Fatal(err)
			}
			b, _, err := srv.Recv()
			if err != nil || string(b) != "late" {
				t.Fatalf("Recv after clearing deadline = %q, %v", b, err)
			}
		})
	}
}

// helloBytes builds a raw FEDWIRE3 hello with the given field overrides,
// for the malformed-handshake table.
func helloBytes(magic string, version, dtype, codec uint32, token uint64) []byte {
	b := make([]byte, helloSize)
	copy(b, magic)
	binary.LittleEndian.PutUint32(b[len(tcpMagic):], version)
	binary.LittleEndian.PutUint32(b[len(tcpMagic)+4:], dtype)
	binary.LittleEndian.PutUint32(b[len(tcpMagic)+8:], codec)
	binary.LittleEndian.PutUint64(b[len(tcpMagic)+12:], token)
	return b
}

// TestTCPHandshakeHardeningAccept feeds the accept loop truncated, junk
// and field-garbage hellos; every one must be rejected with a typed
// ErrHandshake and a reason, never parsed into the protocol.
func TestTCPHandshakeHardeningAccept(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"truncated", []byte("FEDW"), "truncated"},
		{"one-byte", []byte{0x00}, "truncated"},
		{"almost-complete", helloBytes(tcpMagic, Version, 0, 0, 0)[:helloSize-1], "truncated"},
		{"garbage", []byte("GET / HTTP/1.1\r\nHost: chaos\r\n\r\n...."), "magic"},
		{"zeros", make([]byte, helloSize), "magic"},
		{"old-magic", helloBytes("FEDWIRE2", Version, 0, 0, 0), "magic"},
		{"bad-dtype", helloBytes(tcpMagic, Version, 99, 0, 0), "dtype"},
		{"bad-codec", helloBytes(tcpMagic, Version, 0, 99, 0), "codec"},
		{"oversized", append(helloBytes(tcpMagic, Version, 99, 0, 0), make([]byte, 4096)...), "dtype"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTCP(Options{})
			ln, err := tr.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			acceptErr := make(chan error, 1)
			go func() {
				_, err := ln.Accept()
				acceptErr <- err
			}()
			nc, err := net.Dial("tcp", ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			nc.Write(tc.raw)
			// Half-close the write side so a short hello is seen as
			// truncated rather than waiting out the handshake deadline.
			nc.(*net.TCPConn).CloseWrite()
			defer nc.Close()
			err = <-acceptErr
			if !errors.Is(err, ErrHandshake) {
				t.Fatalf("accept error = %v, want ErrHandshake", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("accept error %q should mention %q", err, tc.want)
			}
		})
	}
}

// TestTCPHandshakeHardeningDial points a dialer at servers that answer
// its hello with truncation or garbage; the dialer must reject with
// ErrHandshake symmetrically to the accept side.
func TestTCPHandshakeHardeningDial(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"truncated", []byte("FEDWIRE3"), "truncated"},
		{"garbage", []byte("SSH-2.0-OpenSSH_9.6 go away now.....")[:helloSize], "magic"},
		{"bad-dtype", helloBytes(tcpMagic, Version, 77, 0, 0), "dtype"},
		{"bad-codec", helloBytes(tcpMagic, Version, 0, 77, 0), "codec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				nc, err := ln.Accept()
				if err != nil {
					return
				}
				// Swallow the dialer's hello, answer with the bad bytes.
				buf := make([]byte, helloSize)
				nc.Read(buf)
				nc.Write(tc.raw)
				nc.(*net.TCPConn).CloseWrite()
			}()
			_, err = NewTCP(Options{}).Dial(context.Background(), ln.Addr().String())
			if !errors.Is(err, ErrHandshake) {
				t.Fatalf("dial error = %v, want ErrHandshake", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("dial error %q should mention %q", err, tc.want)
			}
		})
	}
}

// TestDialRetrySucceedsWhenServerAppears retries against an address that
// only starts listening after a delay — fedclient's "server still coming
// up" path.
func TestDialRetrySucceedsWhenServerAppears(t *testing.T) {
	tr := NewInproc(Options{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := tr.Listen("late")
		if err != nil {
			return
		}
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	var attempts int
	conn, err := DialRetry(context.Background(), tr, "late", RetryOptions{
		Budget:  10 * time.Second,
		Seed:    1,
		OnRetry: func(int, error, time.Duration) { attempts++ },
	})
	if err != nil {
		t.Fatalf("retried dial failed: %v (after %d retries)", err, attempts)
	}
	conn.Close()
	if attempts == 0 {
		t.Fatal("dial succeeded without retrying a cold address")
	}
}

// TestDialRetryExhaustsBudget checks a dead address fails with a
// diagnosis naming the attempt count and budget, within bounded time.
func TestDialRetryExhaustsBudget(t *testing.T) {
	tr := NewInproc(Options{})
	start := time.Now()
	_, err := DialRetry(context.Background(), tr, "nowhere", RetryOptions{Budget: 200 * time.Millisecond, Seed: 2})
	if err == nil {
		t.Fatal("dial to an unbound address succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("exhaustion error should report attempts: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("exhaustion took %v, budget was 200ms", elapsed)
	}
}

// TestDialRetryFailsFastOnHandshake checks a deterministic handshake
// rejection is surfaced immediately — retrying a dtype mismatch for the
// whole budget would hammer the server for nothing.
func TestDialRetryFailsFastOnHandshake(t *testing.T) {
	srv := NewTCP(Options{})
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	var retries int
	start := time.Now()
	_, err = DialRetry(context.Background(), NewTCP(Options{Spec: comm.Spec{Value: comm.I8}}), ln.Addr(), RetryOptions{
		Budget:  30 * time.Second,
		Seed:    3,
		OnRetry: func(int, error, time.Duration) { retries++ },
	})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("error = %v, want ErrHandshake", err)
	}
	if retries != 0 {
		t.Fatalf("handshake rejection was retried %d times", retries)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestDialRetryContextCancel checks cancellation wins over the budget.
func TestDialRetryContextCancel(t *testing.T) {
	tr := NewInproc(Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := DialRetry(ctx, tr, "nowhere", RetryOptions{Budget: time.Hour, Seed: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
}

// chaosPair builds a connection whose dialer side injects faults from a
// seeded stream; the accept side stays clean so fault schedules are
// deterministic (a single chaos instance wrapping both ends would order
// its connection indices by accept/dial race).
func chaosPair(t *testing.T, cfg ChaosConfig) (Conn, Conn) {
	t.Helper()
	inner := NewInproc(Options{})
	ch := NewChaos(inner, cfg)
	ln, err := inner.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	connCh := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cli, err := ch.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	srv := <-connCh
	t.Cleanup(func() { srv.Close() })
	return cli, srv
}

// TestChaosDropIsDeterministic runs the same send schedule twice under
// the same seed and checks the injected connection loss lands on the
// same frame index — the reproducibility contract of the chaos wrapper.
func TestChaosDropIsDeterministic(t *testing.T) {
	failAt := func(seed int64) int {
		cli, srv := chaosPair(t, ChaosConfig{Seed: seed, Drop: 0.15})
		go func() {
			for {
				if _, _, err := srv.Recv(); err != nil {
					return
				}
			}
		}()
		for i := 0; i < 1000; i++ {
			if _, err := cli.Send([]byte("frame")); err != nil {
				if !strings.Contains(err.Error(), "chaos") {
					t.Fatalf("send %d failed with a non-chaos error: %v", i, err)
				}
				return i
			}
		}
		t.Fatal("1000 sends at drop 0.15 survived — injector inert")
		return -1
	}
	a, b := failAt(7), failAt(7)
	if a != b {
		t.Fatalf("same seed dropped at frame %d then %d", a, b)
	}
	if c := failAt(8); c == a {
		t.Logf("different seed coincidentally dropped at the same frame %d", c)
	}
}

// TestChaosDupReplaysFrames checks Dup=1 delivers every frame twice —
// the replayed-message tolerance the node runtime's dedup handles.
func TestChaosDupReplaysFrames(t *testing.T) {
	cli, srv := chaosPair(t, ChaosConfig{Seed: 9, Dup: 1})
	if _, err := srv.Send([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Send([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 4; i++ {
		b, _, err := cli.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(b))
	}
	want := []string{"alpha", "alpha", "beta", "beta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("duplicated stream = %v, want %v", got, want)
		}
	}
}

// TestChaosPartitionFailsDials checks Partition=1 fails every dial
// attempt without touching the network, and that DialRetry treats the
// partition as transient (it retries rather than failing fast).
func TestChaosPartitionFailsDials(t *testing.T) {
	inner := NewInproc(Options{})
	if _, err := inner.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(inner, ChaosConfig{Seed: 5, Partition: 1})
	if _, err := ch.Dial(context.Background(), "srv"); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("partitioned dial = %v, want injected partition", err)
	}
	var retries int
	_, err := DialRetry(context.Background(), ch, "srv", RetryOptions{
		Budget:  150 * time.Millisecond,
		Seed:    6,
		OnRetry: func(int, error, time.Duration) { retries++ },
	})
	if err == nil {
		t.Fatal("dial through a full partition succeeded")
	}
	if retries == 0 {
		t.Fatal("partition was treated as non-retryable")
	}
}

// TestChaosDelayStaysBounded checks injected delays honour MaxDelay and
// deliver the frame intact afterwards.
func TestChaosDelayStaysBounded(t *testing.T) {
	cli, srv := chaosPair(t, ChaosConfig{Seed: 11, Delay: 1, MaxDelay: 20 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := srv.Send([]byte("tick")); err != nil {
			t.Fatal(err)
		}
		b, _, err := cli.Recv()
		if err != nil || string(b) != "tick" {
			t.Fatalf("delayed frame %d = %q, %v", i, b, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("5 delayed frames took %v with a 20ms cap", elapsed)
	}
}
