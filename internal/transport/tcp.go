package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// The tcp transport: length-prefixed frames over real sockets. The wire
// format per connection is
//
//	handshake  "FEDWIRE4" [version u32][dtype u32][spec u32][token u64]  (28 bytes, each way)
//	frame      [length u32][frame bytes]                                  (length-prefixed, little-endian)
//
// The dialer sends its hello first; the acceptor validates it, replies
// with its own, and the dialer validates that. Either side rejecting the
// handshake closes the socket, so an f32 client can never join an f64
// federation and a version skew fails before any payload moves. The token
// word carries a session claim for reconnecting clients; it is opaque to
// the transport. Every hello read is exactly helloSize bytes under a
// deadline — a peer that sends less (truncated), junk (bad magic,
// out-of-range dtype/codec) or something else entirely is rejected with a
// typed ErrHandshake before any payload is parsed. Every Recv enforces
// the per-connection read limit before allocating.

// tcpMagic guards against pointing a node at an arbitrary TCP service
// (and a stale node at a newer federation: the magic carries the generation).
const tcpMagic = "FEDWIRE4"

// helloSize is the fixed handshake size per direction.
const helloSize = len(tcpMagic) + 12 + 8

// handshakeTimeout bounds how long an endpoint waits for its peer's hello,
// so a stray connection cannot wedge the accept loop.
const handshakeTimeout = 10 * time.Second

// TCP is the socket Transport.
type TCP struct {
	opts Options
}

// NewTCP builds a TCP transport endpoint.
func NewTCP(opts Options) *TCP { return &TCP{opts: opts.withDefaults()} }

// Name reports "tcp".
func (t *TCP) Name() string { return "tcp" }

// Listen binds a TCP address ("127.0.0.1:0" picks a free port).
func (t *TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &tcpListener{ln: ln, opts: t.opts}, nil
}

// Dial connects and handshakes; ctx bounds the whole attempt including the
// handshake round trip.
func (t *TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	return t.dial(ctx, addr, t.opts)
}

// DialSession dials presenting a per-call session token in the hello.
func (t *TCP) DialSession(ctx context.Context, addr string, token uint64) (Conn, error) {
	opts := t.opts
	opts.Token = token
	return t.dial(ctx, addr, opts)
}

func (t *TCP) dial(ctx context.Context, addr string, opts Options) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
	} else {
		nc.SetDeadline(time.Now().Add(handshakeTimeout))
	}
	c := &tcpConn{nc: nc, limit: opts.MaxFrame}
	// Dialer speaks first, then validates the reply.
	if err := c.sendHello(opts); err != nil {
		nc.Close()
		return nil, err
	}
	peer, err := c.recvHello()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := checkHello(peer, opts); err != nil {
		nc.Close()
		return nil, err
	}
	c.peer = peer
	nc.SetDeadline(time.Time{})
	return c, nil
}

type tcpListener struct {
	ln   net.Listener
	opts Options
}

// Accept returns the next connection whose handshake validated. The
// handshake runs synchronously under a deadline; a peer that fails it is
// closed and surfaced as an error (callers decide whether to keep
// accepting). The reply hello goes out before validation, so a
// mismatched dialer also learns exactly what the server speaks — both
// ends fail with ErrHandshake instead of one seeing a bare EOF.
func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, fmt.Errorf("transport: %v: %w", err, ErrClosed)
		}
		return nil, fmt.Errorf("transport: %w", err)
	}
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	c := &tcpConn{nc: nc, limit: l.opts.MaxFrame}
	peer, err := c.recvHello()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.sendHello(l.opts); err != nil {
		nc.Close()
		return nil, err
	}
	if err := checkHello(peer, l.opts); err != nil {
		nc.Close()
		return nil, err
	}
	c.peer = peer
	nc.SetDeadline(time.Time{})
	return c, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

// tcpConn frames bytes over one socket.
type tcpConn struct {
	nc    net.Conn
	limit int64
	peer  Hello

	sendMu sync.Mutex // Send is called from round and shutdown paths

	hsSent, hsRecv int64
}

func (c *tcpConn) sendHello(o Options) error {
	b := make([]byte, helloSize)
	copy(b, tcpMagic)
	binary.LittleEndian.PutUint32(b[len(tcpMagic):], Version)
	binary.LittleEndian.PutUint32(b[len(tcpMagic)+4:], uint32(o.DType))
	binary.LittleEndian.PutUint32(b[len(tcpMagic)+8:], o.Spec.Pack())
	binary.LittleEndian.PutUint64(b[len(tcpMagic)+12:], o.Token)
	if _, err := c.nc.Write(b); err != nil {
		return fmt.Errorf("transport: sending handshake: %w", err)
	}
	c.hsSent += int64(helloSize)
	return nil
}

func (c *tcpConn) recvHello() (Hello, error) {
	b := make([]byte, helloSize)
	if n, err := io.ReadFull(c.nc, b); err != nil {
		if n > 0 {
			// The peer started a hello and stopped: that is a malformed
			// handshake (deterministic), not a transient network fault.
			return Hello{}, fmt.Errorf("transport: truncated handshake (%d of %d bytes): %w", n, helloSize, ErrHandshake)
		}
		return Hello{}, fmt.Errorf("transport: reading handshake: %w", err)
	}
	c.hsRecv += int64(helloSize)
	if string(b[:len(tcpMagic)]) != tcpMagic {
		return Hello{}, fmt.Errorf("transport: peer is not a federation endpoint (bad magic %q): %w", b[:len(tcpMagic)], ErrHandshake)
	}
	h := Hello{
		Version: binary.LittleEndian.Uint32(b[len(tcpMagic):]),
		DType:   tensor.DType(binary.LittleEndian.Uint32(b[len(tcpMagic)+4:])),
		Token:   binary.LittleEndian.Uint64(b[len(tcpMagic)+12:]),
	}
	// Field garbage behind a valid magic is still a rejection with a
	// precise reason, not a mysterious mismatch downstream.
	if !h.DType.Valid() {
		return Hello{}, fmt.Errorf("transport: handshake declares unknown dtype %d: %w", uint32(h.DType), ErrHandshake)
	}
	spec, err := comm.UnpackSpec(binary.LittleEndian.Uint32(b[len(tcpMagic)+8:]))
	if err != nil {
		return Hello{}, fmt.Errorf("transport: %v: %w", err, ErrHandshake)
	}
	h.Spec = spec
	return h, nil
}

// wrapIOErr marks timeout errors with ErrDeadline so callers can test
// with errors.Is instead of type-asserting net.Error.
func wrapIOErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("transport: %v: %w", err, ErrDeadline)
	}
	return fmt.Errorf("transport: %w", err)
}

func (c *tcpConn) Send(frame []byte) (int64, error) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var prefix [FrameOverhead]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(frame)))
	if _, err := c.nc.Write(prefix[:]); err != nil {
		return 0, wrapIOErr(err)
	}
	if _, err := c.nc.Write(frame); err != nil {
		return FrameOverhead, wrapIOErr(err)
	}
	return FrameOverhead + int64(len(frame)), nil
}

func (c *tcpConn) Recv() ([]byte, int64, error) {
	var prefix [FrameOverhead]byte
	if _, err := io.ReadFull(c.nc, prefix[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, wrapIOErr(err)
	}
	n := int64(binary.LittleEndian.Uint32(prefix[:]))
	if n > c.limit {
		return nil, FrameOverhead, fmt.Errorf("transport: peer declared a %d-byte frame, connection limit is %d", n, c.limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.nc, b); err != nil {
		return nil, FrameOverhead, wrapIOErr(err)
	}
	return b, FrameOverhead + n, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }

func (c *tcpConn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *tcpConn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

func (c *tcpConn) Hello() Hello { return c.peer }

func (c *tcpConn) HandshakeBytes() (int64, int64) { return c.hsSent, c.hsRecv }
