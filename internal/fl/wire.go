package fl

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/comm"
)

// This file is the federation's node-mode wire protocol: the message
// envelope that crosses a transport.Conn between a ServerNode and its
// ClientNodes, and the WireAlgorithm interface that splits an algorithm
// into a server half (aggregation state, broadcasts) and a client half
// (local training, uploads) with nothing shared but payload vectors.
//
// # Message format
//
// Every message is one transport frame:
//
//	[kind u32][a u64][b u64]
//	[nameLen u64][name bytes]
//	[nInts u64][int64 ...]
//	[nCounts u64][int64 ...]
//	[nVecs u64] per vec: [present u8] + [frameLen u64][comm frame]
//
// in little-endian byte order. a and b are per-kind scalar slots (round
// numbers, float64 bit patterns). Payload vectors are internal/comm codec
// frames — the same frames the simulation's ledger prices — tagged with the
// message kind so a decoder desync surfaces as a tag mismatch. Nil vector
// entries are first-class (FedProto prototype tables); a lossy codec
// quantizes uploads and broadcasts exactly as the wire would, because the
// frame IS the wire.
//
// Decoding bounds every collection length by the bytes remaining in the
// buffer, so corrupt or hostile frames fail cleanly without allocation.

// The message kinds. The base offset keeps them disjoint from the ckpt
// frame tags, so a checkpoint fed to the message decoder dies loudly.
const (
	msgJoin uint32 = 0x4657 + iota // client → server: identity + init payload
	msgWelcome
	msgDispatch
	msgUpdate
	msgEvalReq
	msgEvalRes
	msgStop
	msgErr
	// msgHeartbeat is the liveness probe: the server sends one every
	// heartbeat interval with a = its committed version, and the client
	// echoes it back verbatim. Either side reading silence past its dead
	// interval declares the peer hung — traffic, not progress, is the
	// liveness signal, so a slow trainer stays alive while a wedged one
	// does not.
	msgHeartbeat
	// msgResume is the server's welcome-back on an accepted reconnect:
	// a = the committed version, ints = the welcome layout (the client may
	// be a restarted process that never saw the original welcome). The
	// server follows it with a resend of any dispatch or evaluation
	// request the client still owes.
	msgResume
	// msgStopAck is the client's goodbye: a send success on the server's
	// stop frame proves nothing about delivery, so the server holds a
	// session open — re-delivering the stop to any re-dial — until this
	// acknowledgement arrives or the reconnect window churns the session.
	msgStopAck
	// The tree-topology kinds (FEDWIRE3, hierarchical aggregation). An
	// edge aggregator joins the root on behalf of its whole child range
	// (msgTreeJoin), receives one batched broadcast per round
	// (msgTreeDispatch), and answers with either a pre-reduced aggregate
	// (msgAggUpdate) or the raw child updates bundled unreduced
	// (msgTreeUpdate, the passthrough for non-associative algorithms).
	// Layouts are documented on the encode helpers in wire_tree.go.
	msgTreeJoin
	msgTreeDispatch
	msgAggUpdate
	msgTreeUpdate
)

// join-message ints layout.
const (
	joinID = iota
	joinTrainSize
	joinFeatDim
	joinNumClasses
	joinNumParams
	joinNumClassifier
	joinIntCount
)

// welcome-message ints layout (shared by msgWelcome and msgResume).
// welToken carries the server-issued session token (a uint64 bit pattern
// in an int64 slot) the client presents when re-dialing after a
// connection loss. welHeartbeatMs/welDeadMs announce the server's
// failure discipline so both ends agree on what "hung" means.
const (
	welClients = iota
	welRounds
	welBatch
	welEvalEvery
	welToken
	welHeartbeatMs
	welDeadMs
	welIntCount
)

// wireMsg is one decoded protocol message.
type wireMsg struct {
	kind   uint32
	a, b   uint64
	name   string
	ints   []int64
	counts []int
	vecs   [][]float64
}

// f64bits / bitsF64 move float64 scalars through the b slot.
func f64bits(v float64) uint64 { return math.Float64bits(v) }
func bitsF64(b uint64) float64 { return math.Float64frombits(b) }

// encodeMsg serializes a message, framing payload vectors per the
// connection's wireCodec (nil = plain dense f64). Vectors are encoded
// straight into the message buffer — sized once from MarshalSpecBound —
// with the frame length patched in after the fact, so the envelope costs
// one allocation regardless of how many vectors it carries.
func encodeMsg(m *wireMsg, wc *wireCodec) []byte {
	size := 4 + 8 + 8 + 8 + len(m.name) + 8 + 8*len(m.ints) + 8 + 8*len(m.counts) + 8
	for _, v := range m.vecs {
		size++ // presence byte
		if v != nil {
			size += 8 + comm.MarshalSpecBound(wc.specFor(m.kind, len(v)), len(v))
		}
	}
	b := make([]byte, 0, size)
	var w [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:4], v)
		b = append(b, w[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		b = append(b, w[:]...)
	}
	u32(m.kind)
	u64(m.a)
	u64(m.b)
	u64(uint64(len(m.name)))
	b = append(b, m.name...)
	u64(uint64(len(m.ints)))
	for _, v := range m.ints {
		u64(uint64(v))
	}
	u64(uint64(len(m.counts)))
	for _, v := range m.counts {
		u64(uint64(int64(v)))
	}
	u64(uint64(len(m.vecs)))
	for i, v := range m.vecs {
		if v == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		lenAt := len(b)
		b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
		b = comm.MarshalSpecInto(b, wc.specFor(m.kind, len(v)), m.kind, v, wc.ref(m.kind, i, len(v)))
		binary.LittleEndian.PutUint64(b[lenAt:], uint64(len(b)-lenAt-8))
	}
	return b
}

// msgDecoder walks a message frame, latching the first error.
type msgDecoder struct {
	b   []byte
	off int
	err error
}

func (d *msgDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("fl: wire message: "+format, args...)
	}
}

func (d *msgDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at byte %d (want %d more)", d.off, n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *msgDecoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *msgDecoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// count reads a collection length bounded by the remaining bytes divided
// by the per-element encoded cost, so a hostile length field can never
// make the decoder allocate more memory than the frame itself occupies
// (a count of N int64s must be backed by 8N bytes, a count of vector
// slots by at least one presence byte each).
func (d *msgDecoder) count(elemBytes int) int {
	v := d.u64()
	if v > uint64((len(d.b)-d.off)/elemBytes) {
		d.fail("count %d exceeds the %d remaining bytes", v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}

// decodeMsg parses one message frame of the plain dense protocol.
func decodeMsg(frame []byte) (*wireMsg, error) {
	return decodeMsgWc(frame, nil)
}

// decodeMsgWc parses one message frame, resolving sparse and delta vector
// frames through the connection's wireCodec (nil accepts dense and top-k
// frames but rejects delta, which needs a negotiated basis).
func decodeMsgWc(frame []byte, wc *wireCodec) (*wireMsg, error) {
	d := &msgDecoder{b: frame}
	m := &wireMsg{}
	m.kind = d.u32()
	m.a = d.u64()
	m.b = d.u64()
	nameLen := d.count(1)
	m.name = string(d.take(nameLen))
	nInts := d.count(8)
	if nInts > 0 && d.err == nil {
		m.ints = make([]int64, nInts)
		for i := range m.ints {
			m.ints[i] = int64(d.u64())
		}
	}
	nCounts := d.count(8)
	if nCounts > 0 && d.err == nil {
		m.counts = make([]int, nCounts)
		for i := range m.counts {
			m.counts[i] = int(int64(d.u64()))
		}
	}
	nVecs := d.count(1)
	if nVecs > 0 && d.err == nil {
		// A vector slot costs one presence byte on the wire but 24 bytes
		// of slice header decoded, so the table grows with the bytes
		// actually parsed instead of trusting the declared count.
		m.vecs = make([][]float64, 0, min(nVecs, 64))
		for i := 0; i < nVecs; i++ {
			present := d.take(1)
			if present == nil {
				break
			}
			if present[0] == 0 {
				m.vecs = append(m.vecs, nil)
				continue
			}
			frameLen := d.count(1)
			vb := d.take(frameLen)
			if vb == nil {
				break
			}
			var ref *comm.DeltaRef
			if wc != nil {
				if _, _, n, err := comm.FrameInfo(vb); err == nil {
					ref = wc.ref(m.kind, i, n)
				}
			}
			tag, payload, err := comm.DecodeSpec(nil, vb, ref)
			if err != nil {
				d.fail("vector %d: %v", i, err)
				break
			}
			if tag != m.kind {
				d.fail("vector %d tagged %#x inside a %#x message", i, tag, m.kind)
				break
			}
			m.vecs = append(m.vecs, payload)
		}
		if d.err == nil && len(m.vecs) != nVecs {
			d.fail("message declared %d vectors, carried %d", nVecs, len(m.vecs))
		}
		if len(m.vecs) == 0 {
			m.vecs = nil
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("fl: wire message: %d trailing bytes", len(d.b)-d.off)
	}
	return m, nil
}

// WireJoin is a client's handshake-time declaration: its identity, data
// size and model geometry, plus the algorithm-specific init payload the
// server folds into its initial global state (initial classifier weights
// for FedClassAvg, the common model for FedAvg — whatever WireInit
// returns). The server node collects one per client before the first
// round.
type WireJoin struct {
	ID            int
	TrainSize     int
	FeatDim       int
	NumClasses    int
	NumParams     int
	NumClassifier int
	Init          [][]float64
}

// WireAlgorithm splits an algorithm across a process boundary. The server
// half (WireSetup, WireDispatch, WireApply, WireCommit) owns aggregation
// state — sharded accumulators, coefficient matrices, prototype tables —
// and never touches a client model. The client half (WireInit, WireLocal)
// owns one client's model, data and optimizer and never sees server state
// beyond the dispatch payload it is handed. In node mode a server process
// holds one instance running the server half, and every client process
// holds its own instance running the client half; the inproc engine keeps
// using the monolithic Algorithm/AsyncAlgorithm surface, whose numerics
// the wire halves reuse.
type WireAlgorithm interface {
	Algorithm
	// WireInit returns the client's join-time init payload (client half).
	WireInit(c *Client) ([][]float64, error)
	// WireSetup builds initial server state from the full fleet's joins,
	// ordered by client id (server half). It replaces Setup+AsyncSetup in
	// node mode.
	WireSetup(joins []WireJoin, shards int) error
	// WireDispatch encodes the broadcast payload for one client (server
	// half). A nil or empty result is a valid "nothing to send" broadcast
	// (the local-only baseline, KT-pFL before the first commit).
	WireDispatch(client int) ([][]float64, error)
	// WireLocal installs a decoded broadcast into the client, runs local
	// training and returns the upload (client half). The dispatch payload
	// arrives exactly as WireDispatch produced it, modulo codec
	// quantization.
	WireLocal(c *Client, batchSize int, dispatch [][]float64) (*Update, error)
	// WireApply folds one weighted update into the server's accumulators
	// (server half; u.Weight is final).
	WireApply(u *Update) error
	// WireCommit merges accumulated state into the committed globals,
	// completing one round (server half).
	WireCommit() error
}
