package fl

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// This file is the event-driven federation engine. The paper runs its
// federation synchronously over MPI across 15 GPU nodes, where every round
// waits for the slowest node; the engine generalizes the round loop into a
// discrete-event simulation of that cluster with three schedulers:
//
//   - SchedSync: the classic barrier. Executes exactly the legacy Run loop,
//     bit-identical to previous releases, and additionally books the
//     virtual makespan of each round.
//   - SchedAsyncBounded: FedBuff-style bounded-staleness async. Clients are
//     redispatched the moment they deliver; the server buffers
//     staleness-weighted updates in sharded accumulators and commits every
//     ⌈K·rate⌉ applied updates. Updates staler than MaxStaleness are
//     dropped.
//   - SchedSemiSync: K-of-N semi-synchronous rounds. A cohort is sampled
//     per round; the round commits after Quorum applied updates, and
//     straggler deliveries land in the next round with staleness weight.
//
// Time is virtual: every client has a cost (one local update's duration in
// arbitrary units) and the engine orders dispatches, deliveries and commits
// on a virtual clock over a fixed number of virtual worker nodes — the
// honest way to measure straggler effects on a host with any core count.
// Local training still executes eagerly and concurrently on the shared
// tensor worker pool; only the *ordering* of server-side state transitions
// follows the virtual clock, and every AsyncLocal consumes nothing but its
// dispatch-time snapshot. The engine is therefore deterministic for a fixed
// seed and cost vector regardless of real goroutine scheduling, while
// wall-clock time still scales with cores.

// SchedulerKind selects the federation schedule.
type SchedulerKind int

// The schedulers.
const (
	SchedSync SchedulerKind = iota
	SchedAsyncBounded
	SchedSemiSync
)

// String names the scheduler for flags and reports.
func (k SchedulerKind) String() string {
	switch k {
	case SchedSync:
		return "sync"
	case SchedAsyncBounded:
		return "async"
	case SchedSemiSync:
		return "semisync"
	}
	return fmt.Sprintf("scheduler(%d)", int(k))
}

// ParseScheduler maps a flag value ("sync" | "async" | "semisync") to a
// SchedulerKind.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "sync", "":
		return SchedSync, nil
	case "async", "async-bounded":
		return SchedAsyncBounded, nil
	case "semisync", "semi-sync", "k-of-n":
		return SchedSemiSync, nil
	}
	return SchedSync, fmt.Errorf("fl: unknown scheduler %q (want sync | async | semisync)", s)
}

// SchedulerConfig controls RunScheduled. The zero value is the sync
// scheduler with uniform client costs.
type SchedulerConfig struct {
	Kind SchedulerKind
	// Workers is the number of virtual server nodes executing client
	// updates concurrently (default: one node per client, the paper's MPI
	// layout).
	Workers int
	// MaxStaleness bounds async staleness: an update whose dispatch-time
	// model version is more than MaxStaleness commits old is dropped
	// (default 8).
	MaxStaleness int
	// Decay is the staleness decay α: an update that is s commits stale
	// aggregates with weight 1/(1+α·s). 0 disables decay.
	Decay float64
	// MixRate is the commit mixing λ: committed ← (1-λ)·committed +
	// λ·aggregate (default 1, which reproduces one-shot averaging).
	MixRate float64
	// Quorum is the semi-sync K: commit after K applied updates (default
	// ⌈participants/2⌉).
	Quorum int
	// QueueDepth is the buffered event-queue capacity between client
	// workers and the server loop (default 2·Workers).
	QueueDepth int
	// Shards is the server-state shard count for concurrent aggregation
	// (default tensor.Workers()).
	Shards int
	// Costs[i] is the virtual duration of one local update on client i
	// (nil or missing entries = 1). Stragglers get costs > 1.
	Costs []float64
	// Trace, when non-nil, records every dispatch/delivery/drop/commit so
	// runs can be compared event by event.
	Trace *Trace
	// LeaveProb injects client churn: each time the scheduler would engage
	// a client, the client has instead left the federation with this
	// probability, rejoining RejoinAfter virtual time units later. 0
	// disables churn (and consumes no RNG draws, preserving legacy runs).
	LeaveProb float64
	// RejoinAfter is how long, on the virtual clock, a departed client
	// stays away (default 2 — two uniform update durations).
	RejoinAfter float64
	// Checkpoint, when non-nil, receives a full engine snapshot at every
	// CheckpointEvery-th commit boundary (and, under the sync scheduler,
	// completed round). Taking a snapshot quiesces in-flight local updates
	// but never perturbs the schedule: a checkpointed run emits exactly
	// the metrics and trace of an unobserved one.
	Checkpoint func(*Snapshot) error
	// CheckpointEvery is the commit cadence of Checkpoint (default 1).
	CheckpointEvery int
	// Resume, when non-nil, restores engine, client, algorithm, ledger and
	// RNG state from a snapshot before the first scheduling decision, so
	// the run continues a checkpointed one byte-identically.
	Resume *Snapshot
}

// withDefaults fills structural zero fields.
func (c SchedulerConfig) withDefaults(sim *Simulation) SchedulerConfig {
	if c.Workers <= 0 {
		if sim.Lazy() {
			// One virtual node per client would make every scheduler array —
			// and sync-makespan packing — O(fleet); a lazy fleet defaults to
			// one node per cohort member instead.
			c.Workers = int(math.Ceil(float64(sim.NumClients()) * sim.Cfg.SampleRate))
			if c.Workers < 1 {
				c.Workers = 1
			}
		} else {
			c.Workers = len(sim.Clients)
		}
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 8
	}
	if c.MixRate <= 0 || c.MixRate > 1 {
		c.MixRate = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.Shards <= 0 {
		c.Shards = tensor.Workers()
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 2
	}
	// A client that always leaves can never be dispatched, which would
	// spin the rejoin clock forever; certainty of departure is clamped
	// just below it.
	if c.LeaveProb < 0 {
		c.LeaveProb = 0
	}
	if c.LeaveProb >= 1 {
		c.LeaveProb = 0.99
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// cost returns client i's virtual update duration.
func (c *SchedulerConfig) cost(i int) float64 {
	if i < len(c.Costs) && c.Costs[i] > 0 {
		return c.Costs[i]
	}
	return 1
}

// StalenessWeight returns the decay factor 1/(1+α·s) applied to an update
// that is s commits stale.
func (c *SchedulerConfig) StalenessWeight(staleness int) float64 {
	if staleness <= 0 || c.Decay <= 0 {
		return 1
	}
	return 1 / (1 + c.Decay*float64(staleness))
}

// Update is one client's contribution, delivered to the server through the
// event queue.
type Update struct {
	Client int
	// Version is the committed model version the client trained against
	// (stamped at dispatch).
	Version int
	// Staleness is commits-at-apply minus Version (stamped at apply).
	Staleness int
	// Scale is the algorithm-set data weight (typically |D_k|).
	Scale float64
	// Weight is the final aggregation weight Scale·StalenessWeight,
	// stamped by the engine before AsyncApply.
	Weight float64
	// Vecs carries the algorithm's payload vectors (flat weights,
	// per-class prototypes, soft predictions, ...). A nil Vecs with zero
	// Scale marks a communication-free update (the local-only baseline):
	// it advances the virtual round without touching server state.
	Vecs [][]float64
	// Counts carries optional per-vector sample counts (FedProto).
	Counts []int
	// UpFloats is the upload payload size in values. The engine records it
	// on the ledger when the update is delivered in virtual time — worker
	// goroutines must not touch the ledger's round attribution themselves,
	// or per-round byte counts would depend on real scheduling.
	UpFloats int
	// UpBytes is the exact upload frame size when spec framing (top-k or
	// delta) applies, as returned by Simulation.QuantizeUplink. When
	// non-zero it takes precedence over UpFloats' element-count pricing.
	UpBytes int64
}

// DataScale is the |D_k| aggregation weight algorithms attach to a
// client's update (1 for an empty client so its update still counts).
func DataScale(c *Client) float64 {
	if len(c.Train) == 0 {
		return 1
	}
	return float64(len(c.Train))
}

// AsyncAlgorithm is implemented by algorithms that can run under the async
// and semi-sync schedulers: the broadcast/train/aggregate round is split
// into dispatch, local, apply and commit steps.
type AsyncAlgorithm interface {
	Algorithm
	// AsyncSetup prepares sharded server state. Runs once, after Setup.
	AsyncSetup(sim *Simulation, sched *SchedulerConfig) error
	// AsyncDispatch snapshots server state down to one client (the
	// broadcast half of a round). Runs on the engine goroutine, strictly
	// ordered with commits, so the snapshot is consistent.
	AsyncDispatch(sim *Simulation, client int) error
	// AsyncLocal runs the client's local training and returns its non-nil
	// update. Runs concurrently with other clients (and with server-side
	// applies and commits) on the shared worker pool: it must touch only
	// client-local state and the snapshot taken by AsyncDispatch.
	AsyncLocal(sim *Simulation, client int) (*Update, error)
	// AsyncApply folds one staleness-weighted update into the server's
	// sharded accumulators (u.Weight is final). Engine goroutine.
	AsyncApply(sim *Simulation, u *Update) error
	// AsyncCommit merges accumulated shards into committed server state
	// and completes one virtual round. Engine goroutine.
	AsyncCommit(sim *Simulation) error
}

// TraceEventKind labels entries of a Trace.
type TraceEventKind uint8

// The trace event kinds.
const (
	TraceDispatch TraceEventKind = iota
	TraceDeliver
	TraceDrop
	TraceCommit
	TraceLeave
)

// String names the event kind for trace files.
func (k TraceEventKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceCommit:
		return "commit"
	case TraceLeave:
		return "leave"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// TraceEvent is one scheduling decision of the engine.
type TraceEvent struct {
	Kind    TraceEventKind
	Client  int
	Version int     // committed version at the event
	Time    float64 // virtual time of the event
}

// Trace records the engine's event sequence for reproducibility checks.
type Trace struct {
	Events []TraceEvent
}

func (t *Trace) add(k TraceEventKind, client, version int, vtime float64) {
	if t != nil {
		t.Events = append(t.Events, TraceEvent{Kind: k, Client: client, Version: version, Time: vtime})
	}
}

// asyncResult is what a client worker pushes onto the buffered event queue.
type asyncResult struct {
	client int
	u      *Update
	err    error
}

// flight is one in-flight client update: dispatched at a version, due at a
// virtual completion time, resolved through the shared event queue.
type flight struct {
	client  int
	version int
	vtime   float64 // virtual completion time
	seq     int     // dispatch order, breaks virtual-time ties
	res     *asyncResult
}

// flightHeap orders in-flight updates by (virtual time, dispatch order).
type flightHeap []*flight

func (h flightHeap) Len() int { return len(h) }
func (h flightHeap) Less(i, j int) bool {
	if h[i].vtime != h[j].vtime {
		return h[i].vtime < h[j].vtime
	}
	return h[i].seq < h[j].seq
}
func (h flightHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *flightHeap) Push(x any)   { *h = append(*h, x.(*flight)) }
func (h *flightHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// RunScheduled executes the algorithm under the given scheduler and returns
// the metrics history. SchedSync runs the legacy barrier loop (bit-identical
// metrics to Run in previous releases); the other schedulers require algo to
// implement AsyncAlgorithm.
func (s *Simulation) RunScheduled(algo Algorithm, sched SchedulerConfig) ([]RoundMetrics, error) {
	return s.RunScheduledContext(context.Background(), algo, sched)
}

// RunScheduledContext is RunScheduled under a context: cancellation stops
// the engine at the next scheduling decision and returns ctx.Err(). Local
// updates already dispatched to the worker pool are quiesced first (pool
// tasks are not preemptible), so no pool task or engine goroutine outlives
// the call — cancellation leaks nothing.
func (s *Simulation) RunScheduledContext(ctx context.Context, algo Algorithm, sched SchedulerConfig) ([]RoundMetrics, error) {
	sched = sched.withDefaults(s)
	s.setLossyUploads(algo)
	switch sched.Kind {
	case SchedSync:
		return s.runSync(ctx, algo, &sched)
	case SchedAsyncBounded, SchedSemiSync:
		aa, ok := algo.(AsyncAlgorithm)
		if !ok {
			return nil, fmt.Errorf("fl: %s does not support the %s scheduler (implement fl.AsyncAlgorithm)",
				algo.Name(), sched.Kind)
		}
		return s.runAsync(ctx, aa, &sched)
	}
	return nil, fmt.Errorf("fl: unknown scheduler %v", sched.Kind)
}

// runSync is the legacy lock-step loop plus virtual-time accounting: each
// round's virtual duration is the makespan of the participants' costs
// greedily packed onto the virtual worker nodes. With zero churn and no
// checkpointing it is byte-identical to previous releases.
func (s *Simulation) runSync(ctx context.Context, algo Algorithm, sched *SchedulerConfig) ([]RoundMetrics, error) {
	if err := algo.Setup(s); err != nil {
		return nil, fmt.Errorf("fl: %s setup: %w", algo.Name(), err)
	}
	var vtime float64
	start := 1
	away := make([]float64, s.NumClients())
	if sched.Resume != nil {
		snap := sched.Resume
		if snap.Kind != SchedSync {
			return nil, fmt.Errorf("fl: cannot resume a %s checkpoint under the sync scheduler", snap.Kind)
		}
		if snap.Round > s.Cfg.Rounds {
			return nil, fmt.Errorf("fl: checkpoint at round %d is past the configured %d rounds", snap.Round, s.Cfg.Rounds)
		}
		if len(snap.Away) != len(away) {
			return nil, fmt.Errorf("fl: checkpoint has %d clients' churn state, simulation has %d", len(snap.Away), len(away))
		}
		if err := s.restoreCommon(snap, algo, sched); err != nil {
			return nil, err
		}
		vtime = snap.Now
		copy(away, snap.Away)
		start = snap.Round + 1
	}
	for t := start; t <= s.Cfg.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		participants := s.sampleParticipants()
		if sched.LeaveProb > 0 {
			participants = s.churnParticipants(participants, away, vtime, t-1, sched)
		}
		if err := algo.Round(s, t, participants); err != nil {
			return nil, fmt.Errorf("fl: %s round %d: %w", algo.Name(), t, err)
		}
		vtime += syncMakespan(participants, sched)
		traffic := s.Ledger.EndRound(t)
		if t%s.Cfg.EvalEvery == 0 || t == s.Cfg.Rounds {
			m := s.evaluateWith(away, vtime)
			m.Round = t
			m.LocalEpochs = t * algo.EpochsPerRound()
			m.UpBytes = traffic.UpBytes
			m.DownBytes = traffic.DownBytes
			m.SimTime = vtime
			s.History = append(s.History, m)
		}
		if sched.Checkpoint != nil && t%sched.CheckpointEvery == 0 {
			snap := &Snapshot{Kind: SchedSync, Round: t, Now: vtime, Away: append([]float64(nil), away...)}
			if err := s.captureCommon(snap, algo, sched); err != nil {
				return nil, fmt.Errorf("fl: checkpoint at round %d: %w", t, err)
			}
			if err := sched.Checkpoint(snap); err != nil {
				return nil, fmt.Errorf("fl: checkpoint at round %d: %w", t, err)
			}
		}
		// Round boundary is a safe point: nothing is in flight, so any
		// resident client beyond the budget can spill.
		if s.store != nil {
			if err := s.store.EvictToBudget(nil); err != nil {
				return nil, fmt.Errorf("fl: evicting after round %d: %w", t, err)
			}
		}
	}
	return s.History, nil
}

// churnParticipants filters a sampled cohort through the churn model:
// clients still away are skipped silently, and each present client leaves
// with probability LeaveProb, rejoining RejoinAfter virtual time later.
func (s *Simulation) churnParticipants(participants []int, away []float64, vtime float64, version int, sched *SchedulerConfig) []int {
	kept := participants[:0]
	for _, id := range participants {
		if away[id] > vtime {
			continue
		}
		if s.Rng.Float64() < sched.LeaveProb {
			away[id] = vtime + sched.RejoinAfter
			sched.Trace.add(TraceLeave, id, version, vtime)
			continue
		}
		kept = append(kept, id)
	}
	return kept
}

// syncMakespan is the virtual duration of one barrier round: participants'
// costs packed greedily (in id order) onto Workers nodes; the round ends
// when the most loaded node finishes.
func syncMakespan(participants []int, sched *SchedulerConfig) float64 {
	if len(participants) == 0 {
		return 0
	}
	w := sched.Workers
	if w > len(participants) {
		w = len(participants)
	}
	loads := make([]float64, w)
	for _, id := range participants {
		min := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += sched.cost(id)
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// runAsync is the event-driven engine shared by the async-bounded and
// semi-sync schedulers.
func (s *Simulation) runAsync(ctx context.Context, algo AsyncAlgorithm, sched *SchedulerConfig) ([]RoundMetrics, error) {
	if s.NumClients() == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if err := algo.Setup(s); err != nil {
		return nil, fmt.Errorf("fl: %s setup: %w", algo.Name(), err)
	}
	if err := algo.AsyncSetup(s, sched); err != nil {
		return nil, fmt.Errorf("fl: %s async setup: %w", algo.Name(), err)
	}
	k := s.NumClients()
	// One virtual round's worth of updates: async commits every
	// ⌈K·rate⌉ applies, semi-sync at its quorum.
	cohortSize := int(math.Ceil(float64(k) * s.Cfg.SampleRate))
	if cohortSize < 1 {
		cohortSize = 1
	}
	if cohortSize > k {
		cohortSize = k
	}
	commitEvery := cohortSize
	if sched.Kind == SchedSemiSync {
		commitEvery = sched.Quorum
		if commitEvery <= 0 {
			commitEvery = (cohortSize + 1) / 2
		}
		if commitEvery > cohortSize {
			commitEvery = cohortSize
		}
	}

	// At most one flight exists per client, so a queue that can hold every
	// client's result guarantees workers never block on delivery while
	// holding a pool token — the engine may itself block on a token in
	// dispatch, and a worker stuck sending would deadlock it.
	depth := sched.QueueDepth
	if depth < k {
		depth = k
	}
	e := &Engine{
		sim:      s,
		algo:     algo,
		sched:    sched,
		queue:    make(chan asyncResult, depth),
		arrived:  make(map[int]*asyncResult, sched.Workers),
		idle:     make([]bool, k),
		away:     make([]float64, k),
		nodeFree: make([]float64, sched.Workers),
	}
	for i := range e.idle {
		e.idle[i] = true
	}
	if ga, ok := algo.(GroupLocalAlgorithm); ok && ga.GroupLocal() && CohortGrouping() {
		e.groupAlgo = ga
	}
	defer e.quiesce() // never leave a pool worker running on any exit path

	if sched.Resume != nil {
		if err := e.Restore(sched.Resume); err != nil {
			return nil, err
		}
	}
	if e.version < s.Cfg.Rounds {
		// The opening dispatch of a fresh run — and, after a restore, the
		// exact refill the uninterrupted run performed right after the
		// snapshot's commit boundary.
		e.refill(cohortSize)
	}
	for e.version < s.Cfg.Rounds {
		// Cancellation point: the deferred quiesce drains every in-flight
		// local update before the engine returns, so cancelling mid-run
		// leaves no pool task behind.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.heap.Len() == 0 {
			// Staleness drops can exhaust a semi-sync cohort below its
			// quorum; reopen the round rather than stall.
			e.refill(cohortSize)
			// Churn can have sent every live client away — and the one
			// client due back can churn out again on its rejoin roll, so
			// keep jumping the virtual clock to the next rejoin until a
			// dispatch sticks or nobody is ever coming back.
			for e.heap.Len() == 0 && e.advanceToRejoin() {
				e.refill(cohortSize)
			}
			if e.heap.Len() == 0 {
				break
			}
		}
		ft := heap.Pop(&e.heap).(*flight)
		e.now = ft.vtime
		res := e.resolve(ft)
		e.idle[ft.client] = true
		if res.err != nil {
			return nil, fmt.Errorf("fl: %s client %d: %w", algo.Name(), ft.client, res.err)
		}
		u := res.u
		// The upload reaches the server now (virtual delivery time); it
		// costs wire bytes even if the server then drops it.
		if u.UpBytes > 0 {
			s.Ledger.AddUp(s.ClientID(ft.client), u.UpBytes)
		} else if u.UpFloats > 0 {
			s.Ledger.RecordUp(s.ClientID(ft.client), u.UpFloats)
		}
		u.Staleness = e.version - ft.version
		if u.Staleness > sched.MaxStaleness {
			sched.Trace.add(TraceDrop, ft.client, e.version, e.now)
		} else if s.Cfg.DropProb > 0 && s.Rng.Float64() < s.Cfg.DropProb {
			// Failure injection: the update is lost in transit.
			sched.Trace.add(TraceDrop, ft.client, e.version, e.now)
		} else {
			u.Weight = u.Scale * sched.StalenessWeight(u.Staleness)
			sched.Trace.add(TraceDeliver, ft.client, e.version, e.now)
			if u.Vecs != nil {
				if err := algo.AsyncApply(s, u); err != nil {
					return nil, fmt.Errorf("fl: %s apply from client %d: %w", algo.Name(), ft.client, err)
				}
			}
			e.applied++
		}
		if e.applied >= commitEvery {
			e.applied = 0
			if err := algo.AsyncCommit(s); err != nil {
				return nil, fmt.Errorf("fl: %s commit: %w", algo.Name(), err)
			}
			e.version++
			sched.Trace.add(TraceCommit, -1, e.version, e.now)
			traffic := s.Ledger.EndRound(e.version)
			if e.version%s.Cfg.EvalEvery == 0 || e.version == s.Cfg.Rounds {
				e.quiesce()
				m := s.evaluateWith(e.away, e.now)
				m.Round = e.version
				m.LocalEpochs = e.version * algo.EpochsPerRound()
				m.UpBytes = traffic.UpBytes
				m.DownBytes = traffic.DownBytes
				m.SimTime = e.now
				s.History = append(s.History, m)
			}
			if sched.Checkpoint != nil && e.version%sched.CheckpointEvery == 0 {
				snap, err := e.Snapshot()
				if err != nil {
					return nil, fmt.Errorf("fl: checkpoint at round %d: %w", e.version, err)
				}
				if err := sched.Checkpoint(snap); err != nil {
					return nil, fmt.Errorf("fl: checkpoint at round %d: %w", e.version, err)
				}
			}
			if sched.Kind == SchedSemiSync && e.version < s.Cfg.Rounds {
				e.refill(cohortSize)
			}
		}
		if sched.Kind == SchedAsyncBounded && e.version < s.Cfg.Rounds {
			e.refill(cohortSize)
		}
		// Safe point: every client whose flight is still in the heap may have
		// local training running on the pool, so it stays pinned; anyone else
		// beyond the budget can spill.
		if s.store != nil {
			if err := s.store.EvictToBudget(e.pinned()); err != nil {
				return nil, fmt.Errorf("fl: evicting at version %d: %w", e.version, err)
			}
		}
	}
	return s.History, nil
}

// Engine holds the event-driven scheduler state. All fields are owned by
// the engine goroutine; client workers communicate only through the
// buffered event queue. Snapshot and Restore freeze and resume the full
// engine state at commit boundaries.
type Engine struct {
	sim   *Simulation
	algo  AsyncAlgorithm
	sched *SchedulerConfig

	now     float64
	seq     int
	version int
	applied int
	heap    flightHeap
	queue   chan asyncResult
	arrived map[int]*asyncResult
	idle    []bool
	// away[id] is the virtual time until which a churned-out client stays
	// departed; a client is schedulable when idle and away <= now.
	away []float64
	// nodeFree[n] is when virtual node n finishes its queued work; a
	// dispatch starts on the earliest-free node, so a cohort larger than
	// Workers serializes on the virtual cluster exactly like runSync's
	// makespan packing.
	nodeFree []float64
	// groupAlgo, when non-nil, batches same-configuration clients'
	// AsyncLocal calls into lockstep group tasks (cohort grouping). pending
	// buffers the clients dispatched in the current refill until
	// launchPending partitions and launches them; it is always drained
	// before the engine blocks or snapshots.
	groupAlgo GroupLocalAlgorithm
	pending   []int
}

// pinned returns an eviction guard over the clients whose flights are
// still in the heap — their local training may be running on the pool, so
// their state must not be captured until the flight resolves.
func (e *Engine) pinned() func(id int) bool {
	inflight := make(map[int]bool, e.heap.Len())
	for _, f := range e.heap {
		inflight[f.client] = true
	}
	return func(id int) bool { return inflight[id] }
}

// refill tops the virtual nodes back up: the async scheduler keeps every
// node busy with a randomly drawn present idle client; semi-sync opens a
// round by sampling a fresh cohort. The refill boundary is the cohort
// grouping safe point: every client dispatched in this refill is buffered
// and launched — partitioned into same-configuration lockstep groups — once
// the scheduling decisions are complete, so grouping never perturbs the
// dispatch order or the RNG stream.
func (e *Engine) refill(cohortSize int) {
	if e.sched.Kind == SchedSemiSync {
		e.dispatchCohort(cohortSize)
	} else {
		for e.heap.Len() < e.sched.Workers && e.dispatchRandomIdle() {
		}
	}
	e.launchPending()
}

// schedulable reports whether a client can be engaged now: idle and not
// churned away.
func (e *Engine) schedulable(id int) bool {
	return e.idle[id] && e.away[id] <= e.now
}

// leaves rolls the churn die for a client about to be engaged; on a leave
// it books the departure and reports true.
func (e *Engine) leaves(id int) bool {
	if e.sched.LeaveProb <= 0 || e.sim.Rng.Float64() >= e.sched.LeaveProb {
		return false
	}
	e.away[id] = e.now + e.sched.RejoinAfter
	e.sched.Trace.add(TraceLeave, id, e.version, e.now)
	return true
}

// advanceToRejoin jumps the virtual clock to the earliest rejoin time of a
// departed idle client; reports false when nobody is due back.
func (e *Engine) advanceToRejoin() bool {
	t := math.Inf(1)
	for id, ok := range e.idle {
		if ok && e.away[id] > e.now && e.away[id] < t {
			t = e.away[id]
		}
	}
	if math.IsInf(t, 1) {
		return false
	}
	e.now = t
	return true
}

// dispatchRandomIdle sends one uniformly drawn schedulable client into
// local training; reports false when none remains. Clients that churn out
// on the roll are skipped and another candidate is drawn.
func (e *Engine) dispatchRandomIdle() bool {
	for {
		n := 0
		for id := range e.idle {
			if e.schedulable(id) {
				n++
			}
		}
		if n == 0 {
			return false
		}
		pick := e.sim.Rng.Intn(n)
		chosen := -1
		for id := range e.idle {
			if !e.schedulable(id) {
				continue
			}
			if pick == 0 {
				chosen = id
				break
			}
			pick--
		}
		if e.leaves(chosen) {
			continue
		}
		e.dispatch(chosen)
		return true
	}
}

// dispatchCohort samples up to n schedulable clients without replacement
// and dispatches them in client-id order — the semi-sync round opening.
// Sampled clients may still churn out, shrinking the round's cohort.
func (e *Engine) dispatchCohort(n int) {
	avail := make([]int, 0, len(e.idle))
	for id := range e.idle {
		if e.schedulable(id) {
			avail = append(avail, id)
		}
	}
	if len(avail) == 0 {
		return
	}
	if n > len(avail) {
		n = len(avail)
	}
	idx := SamplePrefix(e.sim.Rng, len(avail), n)
	picked := make([]int, n)
	for i, p := range idx {
		picked[i] = avail[p]
	}
	sort.Ints(picked)
	for _, id := range picked {
		if e.leaves(id) {
			continue
		}
		e.dispatch(id)
	}
}

// dispatch snapshots server state down to the client and launches its local
// update as a persistent-pool task. The result is delivered through the
// buffered event queue and consumed when the update's virtual completion
// time is reached.
func (e *Engine) dispatch(id int) {
	e.idle[id] = false
	e.sched.Trace.add(TraceDispatch, id, e.version, e.now)
	// Start on the earliest-free virtual node, no sooner than now.
	node := 0
	for n := 1; n < len(e.nodeFree); n++ {
		if e.nodeFree[n] < e.nodeFree[node] {
			node = n
		}
	}
	start := e.now
	if e.nodeFree[node] > start {
		start = e.nodeFree[node]
	}
	ft := &flight{client: id, version: e.version, vtime: start + e.sched.cost(id), seq: e.seq}
	e.nodeFree[node] = ft.vtime
	e.seq++
	heap.Push(&e.heap, ft)
	if err := e.algo.AsyncDispatch(e.sim, id); err != nil {
		ft.res = &asyncResult{client: id, err: err}
		return
	}
	if e.groupAlgo != nil {
		// Deferred launch: the client joins the current refill's pending
		// set and starts training when launchPending partitions it.
		e.pending = append(e.pending, id)
		return
	}
	e.spawnLocal(id)
}

// spawnLocal launches one client's solo local update on the worker pool.
func (e *Engine) spawnLocal(id int) {
	sim, algo, queue := e.sim, e.algo, e.queue
	tensor.Spawn(func() {
		u, err := algo.AsyncLocal(sim, id)
		if err == nil && u == nil {
			err = fmt.Errorf("AsyncLocal returned a nil update")
		}
		queue <- asyncResult{client: id, u: u, err: err}
	})
}

// launchPending partitions the clients dispatched since the last launch into
// same-configuration groups and starts one lockstep task per group (solo
// tasks for singletons). A failing group task pushes a result for every
// member, so the engine's virtual-time resolution never deadlocks.
func (e *Engine) launchPending() {
	if e.groupAlgo == nil || len(e.pending) == 0 {
		return
	}
	ids := e.pending
	e.pending = nil
	for _, grp := range GroupCohort(e.sim, ids) {
		if len(grp) == 1 {
			e.spawnLocal(grp[0])
			continue
		}
		grp := grp
		sim, ga, queue := e.sim, e.groupAlgo, e.queue
		tensor.Spawn(func() {
			us, err := ga.AsyncLocalGroup(sim, grp)
			if err == nil && len(us) != len(grp) {
				err = fmt.Errorf("AsyncLocalGroup returned %d updates for %d clients", len(us), len(grp))
			}
			for i, id := range grp {
				if err != nil {
					queue <- asyncResult{client: id, err: err}
					continue
				}
				u := us[i]
				var uerr error
				if u == nil {
					uerr = fmt.Errorf("AsyncLocalGroup returned a nil update")
				}
				queue <- asyncResult{client: id, u: u, err: uerr}
			}
		})
	}
}

// resolve blocks until the flight's result has arrived on the event queue.
// Results arrive in real completion order; the engine files them by client
// and consumes them in virtual-time order.
func (e *Engine) resolve(f *flight) *asyncResult {
	for f.res == nil {
		if r, ok := e.arrived[f.client]; ok {
			delete(e.arrived, f.client)
			f.res = r
			break
		}
		r := <-e.queue
		rr := r
		e.arrived[rr.client] = &rr
	}
	return f.res
}

// quiesce waits for every in-flight local update to finish computing (filing
// results for later virtual-time delivery, without applying them) so client
// models can be read: evaluation and engine shutdown both pass through here.
func (e *Engine) quiesce() {
	for _, f := range e.heap {
		if f.res == nil {
			e.resolve(f)
		}
	}
}
