package fl

import (
	"math"
	"testing"

	"repro/internal/comm"
)

// corpusMsgs are well-formed envelopes of every message kind the protocol
// speaks — including the fault-tolerance kinds (heartbeat, resume,
// token-carrying welcome) — used both as fuzz seeds and by the checked-in
// corpus under testdata/fuzz/FuzzDecodeMsg.
func corpusMsgs() []*wireMsg {
	return []*wireMsg{
		{kind: msgJoin, ints: []int64{2, 1200, 64, 10, 5000, 650}, vecs: [][]float64{{0.5, -0.25, 1}}},
		{kind: msgWelcome, ints: []int64{4, 10, 32, 1, int64(-0x7fff3f0011ffffff), 1000, 5000}},
		{kind: msgDispatch, a: 3, vecs: [][]float64{{1, 2, 3}, nil, {-0.125}}},
		{kind: msgUpdate, a: 3, b: f64bits(0.25), counts: []int{7, 0, 2}, vecs: [][]float64{{0.5}, {}}},
		{kind: msgEvalReq, a: 4},
		{kind: msgEvalRes, a: 4, b: f64bits(0.8125)},
		{kind: msgStop},
		{kind: msgErr, name: "client 2: local training diverged"},
		{kind: msgHeartbeat, a: 9},
		{kind: msgResume, a: 6, name: "welcome-back", ints: []int64{4, 10, 32, 1, int64(-0x7fff3f0011ffffff), 1000, 5000}},
		{kind: msgStopAck},
		// Tree-topology kinds: an aggregator joining on behalf of children
		// [2, 4), a batched subtree dispatch, a pre-reduced aggregate with
		// per-vector weights, and a passthrough bundle of raw updates.
		{kind: msgTreeJoin, a: 1, name: "FedAvg", ints: []int64{2, 4,
			2, 1200, 64, 10, 5000, 650,
			3, 900, 64, 10, 5000, 650},
			counts: []int{1, 1}, vecs: [][]float64{{0.5, -0.25}, {1, 0}}},
		{kind: msgTreeDispatch, a: 3, ints: []int64{2, 3}, counts: []int{2, 1},
			vecs: [][]float64{{1, 2}, nil, {-0.125}}},
		{kind: msgAggUpdate, a: 3, b: f64bits(2.5),
			ints:   []int64{2, int64(f64bits(1.5)), int64(f64bits(1))},
			counts: []int{7, 2}, vecs: [][]float64{{0.5}, {0.25, -1}}},
		{kind: msgTreeUpdate, a: 3,
			ints:   []int64{2, int64(f64bits(0.5)), 1, 2, 3, int64(f64bits(0.25)), 1, 0},
			counts: []int{7, 1}, vecs: [][]float64{{0.5}, {-0.125}}},
	}
}

// FuzzDecodeMsg hardens the envelope decoder: arbitrary bytes must never
// panic or over-allocate, and any frame that decodes must survive an
// encode/decode round trip unchanged (no silent coercion of hostile
// input into a different message).
func FuzzDecodeMsg(f *testing.F) {
	for _, m := range corpusMsgs() {
		f.Add(encodeMsg(m, plainWire(comm.F64)))
		f.Add(encodeMsg(m, plainWire(comm.I8)))
	}
	// Sparse and delta framed updates: a top-k upload, a delta basis frame
	// and the delta residual that follows it. The harness decodes with a
	// plain codec, so the delta frames drive the basis-rejection path.
	sparse := newWireCodec(comm.NewSpec(comm.F32, 0.25, false), true)
	deltaEnc := newWireCodec(comm.NewSpec(comm.I8, 0, true), true)
	bigUpdate := func(seed float64) *wireMsg {
		v := make([]float64, 96)
		for i := range v {
			v[i] = seed * float64((i*7919)%101-50) / 37.0
		}
		return &wireMsg{kind: msgUpdate, a: 3, vecs: [][]float64{v}}
	}
	f.Add(encodeMsg(bigUpdate(1), sparse))
	f.Add(encodeMsg(bigUpdate(1), deltaEnc))
	f.Add(encodeMsg(bigUpdate(2), deltaEnc))
	// Malformed seeds steer the fuzzer at the error paths: truncation,
	// trailing bytes, hostile counts.
	f.Add([]byte{})
	f.Add(encodeMsg(&wireMsg{kind: msgHeartbeat, a: 1}, plainWire(comm.F64))[:8])
	f.Add(append(encodeMsg(&wireMsg{kind: msgStop}, plainWire(comm.F64)), 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMsg(data)
		if err != nil {
			return
		}
		// A decoded message re-encodes canonically (f64 frames are exact)
		// and decodes back to the same message.
		re, err := decodeMsg(encodeMsg(m, plainWire(comm.F64)))
		if err != nil {
			t.Fatalf("re-decoding a decoded message: %v", err)
		}
		if re.kind != m.kind || re.a != m.a || re.b != m.b || re.name != m.name {
			t.Fatalf("round trip changed the envelope: %+v vs %+v", m, re)
		}
		if len(re.ints) != len(m.ints) || len(re.counts) != len(m.counts) || len(re.vecs) != len(m.vecs) {
			t.Fatalf("round trip changed collection sizes: %+v vs %+v", m, re)
		}
		for i := range m.ints {
			if re.ints[i] != m.ints[i] {
				t.Fatalf("int %d: %d vs %d", i, m.ints[i], re.ints[i])
			}
		}
		for i := range m.counts {
			if re.counts[i] != m.counts[i] {
				t.Fatalf("count %d: %d vs %d", i, m.counts[i], re.counts[i])
			}
		}
		for i := range m.vecs {
			if (m.vecs[i] == nil) != (re.vecs[i] == nil) || len(m.vecs[i]) != len(re.vecs[i]) {
				t.Fatalf("vector %d shape changed: %v vs %v", i, m.vecs[i], re.vecs[i])
			}
			for j := range m.vecs[i] {
				if math.Float64bits(m.vecs[i][j]) != math.Float64bits(re.vecs[i][j]) {
					t.Fatalf("vector %d[%d]: %v vs %v", i, j, m.vecs[i][j], re.vecs[i][j])
				}
			}
		}
	})
}
