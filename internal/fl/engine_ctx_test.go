package fl

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelOnCommit is stubAsync plus a context cancellation fired from
// inside AsyncCommit — a deterministic mid-run cancellation point.
type cancelOnCommit struct {
	stubAsync
	cancel  context.CancelFunc
	atRound int
}

func (c *cancelOnCommit) AsyncCommit(sim *Simulation) error {
	if err := c.stubAsync.AsyncCommit(sim); err != nil {
		return err
	}
	if c.commits == c.atRound {
		c.cancel()
	}
	return nil
}

// cancelOnRound is the sync-scheduler counterpart.
type cancelOnRound struct {
	stubAsync
	cancel  context.CancelFunc
	atRound int
}

func (c *cancelOnRound) Round(sim *Simulation, round int, participants []int) error {
	if round == c.atRound {
		c.cancel()
	}
	return nil
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (goleak-style): a cancelled engine must leave no engine
// goroutine and no pool task behind (the persistent tensor pool itself is
// part of the baseline — it exists before and after).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestRunScheduledContextCancelledBeforeStart checks an already-cancelled
// context stops the engine at the first scheduling decision.
func TestRunScheduledContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []SchedulerKind{SchedSync, SchedAsyncBounded, SchedSemiSync} {
		sim := NewSimulation(bareClients(4), Config{Rounds: 5, Seed: 3})
		algo := &stubAsync{}
		_, err := sim.RunScheduledContext(ctx, algo, SchedulerConfig{Kind: kind})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", kind, err)
		}
		if algo.commits != 0 && kind != SchedSync {
			t.Fatalf("%v: engine committed %d rounds after pre-cancellation", kind, algo.commits)
		}
	}
}

// TestRunScheduledContextCancelMidRun cancels from inside a commit and
// checks the engine stops early, returns the context error, and leaves no
// goroutine or in-flight pool task behind.
func TestRunScheduledContextCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, kind := range []SchedulerKind{SchedAsyncBounded, SchedSemiSync} {
		ctx, cancel := context.WithCancel(context.Background())
		algo := &cancelOnCommit{cancel: cancel, atRound: 2}
		sim := NewSimulation(bareClients(6), Config{Rounds: 50, Seed: 3})
		_, err := sim.RunScheduledContext(ctx, algo, SchedulerConfig{Kind: kind})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", kind, err)
		}
		if algo.commits >= 50 || algo.commits < 2 {
			t.Fatalf("%v: engine ran %d commits before honouring cancellation", kind, algo.commits)
		}
		cancel()
	}
	// Sync scheduler.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	algo := &cancelOnRound{cancel: cancel, atRound: 2}
	sim := NewSimulation(bareClients(4), Config{Rounds: 50, Seed: 3})
	if _, err := sim.RunScheduledContext(ctx, algo, SchedulerConfig{Kind: SchedSync}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sync: err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, baseline)
}

// TestRunScheduledContextBackgroundUnchanged checks the context plumbing
// is invisible to uncancelled runs: Run and RunScheduledContext with a
// background context produce identical histories.
func TestRunScheduledContextBackgroundUnchanged(t *testing.T) {
	run := func(viaCtx bool) []RoundMetrics {
		sim := NewSimulation(bareClients(4), Config{Rounds: 4, Seed: 9})
		algo := &stubAsync{}
		var hist []RoundMetrics
		var err error
		if viaCtx {
			hist, err = sim.RunScheduledContext(context.Background(), algo, SchedulerConfig{Kind: SchedAsyncBounded})
		} else {
			hist, err = sim.RunScheduled(algo, SchedulerConfig{Kind: SchedAsyncBounded})
		}
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Round != b[i].Round || a[i].SimTime != b[i].SimTime || a[i].MeanAcc != b[i].MeanAcc {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
