// Fault-tolerance tests of the node runtime: async/semisync schedules
// over the wire, reconnect-and-resume with session tokens, server
// checkpoint restarts, chaos transports and goroutine hygiene — the
// wire-mode counterparts of the inproc engine's robustness suite.
package fl_test

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/transport"
)

// applySched returns a NodeConfig option selecting a wire scheduler.
func applySched(sched fl.SchedulerConfig) func(*fl.NodeConfig) {
	return func(cfg *fl.NodeConfig) { experiments.ApplyNodeSched(cfg, sched) }
}

// TestNodeAsyncWireParity runs the bounded-staleness schedule as real
// nodes and checks the final accuracy lands within tolerance of the
// inproc async engine at the same scale — the wire port of FedBuff must
// not change what the federation learns.
func TestNodeAsyncWireParity(t *testing.T) {
	s := nodeScale()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	sched := fl.SchedulerConfig{Kind: fl.SchedAsyncBounded, MaxStaleness: 4}
	want, err := experiments.RunScheduled(experiments.MethodProposed, experiments.Fashion, factory, s, 1.0, sched, comm.Spec{Value: comm.F64})
	if err != nil {
		t.Fatal(err)
	}

	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	got, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv",
		applySched(sched))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("wire async produced %d evaluation points, engine produced %d", len(got), len(want))
	}
	gf, wf := experiments.Final(got), experiments.Final(want)
	if d := math.Abs(gf.MeanAcc - wf.MeanAcc); d > 0.02 {
		t.Fatalf("wire async final %.4f vs engine %.4f (Δ %.4f > 0.02)", gf.MeanAcc, wf.MeanAcc, d)
	}
}

// TestNodeSemiSyncWireRuns drives the K-of-N quorum schedule over the
// wire end to end: every round commits and evaluates in range.
func TestNodeSemiSyncWireRuns(t *testing.T) {
	s := nodeScale()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	hist, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv",
		applySched(fl.SchedulerConfig{Kind: fl.SchedSemiSync, Quorum: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != s.Rounds {
		t.Fatalf("semisync wire run produced %d evaluation points, want %d", len(hist), s.Rounds)
	}
	fin := experiments.Final(hist)
	if fin.MeanAcc < 0 || fin.MeanAcc > 1 {
		t.Fatalf("accuracy out of range: %v", fin.MeanAcc)
	}
}

// TestNodeClientReconnectResume kills one client's connection mid-round
// over real TCP; the client re-dials with its session token, the server
// adopts the reconnect and resends what it is owed, and the federation
// finishes with every client evaluated — while the ledger still matches
// the instrumented socket byte counts, heartbeats and the re-handshake
// included.
func TestNodeClientReconnectResume(t *testing.T) {
	s := nodeScale()
	k := 3
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", k, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewTCP(transport.Options{})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var up, down int64
	counted := &countingListener{Listener: ln, up: &up, down: &down}

	algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, k)
	cfg.Heartbeat = 50 * time.Millisecond
	cfg.DeadAfter = 500 * time.Millisecond
	cfg.ReconnectWindow = 10 * time.Second
	srv := fl.NewServerNode(algo, cfg)

	type serveResult struct {
		hist []fl.RoundMetrics
		err  error
	}
	serveCh := make(chan serveResult, 1)
	go func() {
		h, serr := srv.Serve(ctx, counted)
		serveCh <- serveResult{h, serr}
	}()

	clientErr := make(chan error, k)
	for i := 0; i < k-1; i++ {
		go func(id int) {
			clientErr <- experiments.RunClientNode(ctx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, ln.Addr())
		}(i)
	}
	// The flaky client: its first connection dies after four received
	// frames (welcome, a dispatch, heartbeats); its Dialer then re-dials
	// with the granted token and the run continues on a healthy socket.
	// The TCP hello is answered by the server's accept loop, so the first
	// dial also goes through the retry helper rather than racing Serve.
	calgo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.DialRetry(ctx, tr, ln.Addr(), transport.RetryOptions{Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	var tokenSeen atomic.Uint64
	go func() {
		node := &fl.ClientNode{
			Client: build(k - 1),
			Algo:   calgo,
			Dialer: func(ctx context.Context, token uint64) (transport.Conn, error) {
				return transport.DialRetry(ctx, tr, ln.Addr(), transport.RetryOptions{Token: token, Seed: 99})
			},
			OnToken: func(tok uint64) { tokenSeen.Store(tok) },
		}
		clientErr <- node.Run(ctx, &dyingConn{Conn: conn, left: 4})
	}()

	res := <-serveCh
	hist, err := res.hist, res.err
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := <-clientErr; err != nil {
			t.Errorf("client: %v", err)
		}
	}
	if srv.Stats.Reconnects < 1 {
		t.Errorf("server adopted %d reconnects, want >= 1", srv.Stats.Reconnects)
	}
	if srv.Stats.Churned != 0 {
		t.Errorf("server churned %d sessions, want 0 (the client came back)", srv.Stats.Churned)
	}
	if tokenSeen.Load() == 0 {
		t.Error("flaky client never observed a session token")
	}
	if len(hist) != s.Rounds {
		t.Fatalf("federation produced %d evaluation points, want %d", len(hist), s.Rounds)
	}
	last := hist[len(hist)-1]
	for i := 0; i < k; i++ {
		if math.IsNaN(last.PerClient[i]) {
			t.Errorf("client %d has no final accuracy despite finishing", i)
		}
	}
	if got := srv.Ledger.TotalUp(); got != atomic.LoadInt64(&up) {
		t.Errorf("ledger uplink %d bytes, wire carried %d", got, up)
	}
	if got := srv.Ledger.TotalDown(); got != atomic.LoadInt64(&down) {
		t.Errorf("ledger downlink %d bytes, wire carried %d", got, down)
	}
}

// TestNodeServerCheckpointResume restarts the *server* mid-federation:
// the first incarnation checkpoints every commit and is cancelled after
// round 2; a second incarnation restores the latest snapshot on the same
// address, the still-running clients reconnect with their tokens, and
// the federation completes every remaining round with no committed-round
// gaps.
func TestNodeServerCheckpointResume(t *testing.T) {
	s := nodeScale()
	s.Rounds = 4
	const stopAfter = 2
	k := s.Clients
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", k, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	ln, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}

	var snaps []*fl.Snapshot
	algo1, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(ctx)
	cfg := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, k)
	cfg.Checkpoint = func(snap *fl.Snapshot) error {
		snaps = append(snaps, snap)
		if snap.Round >= stopAfter {
			kill() // the "SIGKILL": no goodbye to the clients
		}
		return nil
	}
	srv1 := fl.NewServerNode(algo1, cfg)

	clientErr := make(chan error, k)
	for i := 0; i < k; i++ {
		go func(id int) {
			clientErr <- experiments.RunClientNode(ctx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, "srv")
		}(i)
	}
	if _, err := srv1.Serve(ctx1, ln); err == nil {
		t.Fatal("killed server returned no error")
	}

	// Second incarnation: restore the latest snapshot, rebind the address
	// (Serve closed the first listener), let the clients' retry loops find
	// it. The algorithm instance is fresh — all its state comes from the
	// snapshot, exactly as a restarted process would rebuild it.
	last := snaps[len(snaps)-1]
	if last.Round != stopAfter {
		t.Fatalf("latest snapshot is round %d, want %d", last.Round, stopAfter)
	}
	ln2, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	algo2, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, k)
	cfg2.Resume = last
	srv2 := fl.NewServerNode(algo2, cfg2)
	hist, err := srv2.Serve(ctx, ln2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := <-clientErr; err != nil {
			t.Errorf("client: %v", err)
		}
	}
	// The snapshot carries the committed history, so the resumed server
	// returns the federation's full record: rounds 1..Rounds, gap-free.
	if len(hist) != s.Rounds {
		t.Fatalf("resumed server produced %d evaluation points, want %d", len(hist), s.Rounds)
	}
	for i, m := range hist {
		if want := i + 1; m.Round != want {
			t.Fatalf("resumed round sequence has a gap: point %d is round %d, want %d", i, m.Round, want)
		}
		if m.MeanAcc < 0 || m.MeanAcc > 1 {
			t.Fatalf("round %d accuracy out of range: %v", m.Round, m.MeanAcc)
		}
	}
	if srv2.Stats.Reconnects != k {
		t.Errorf("resumed server adopted %d reconnects, want %d (every client)", srv2.Stats.Reconnects, k)
	}
}

// TestNodeChaosFederation runs the federation over a fault-injecting
// transport — connection losses and duplicated frames on schedule — and
// checks every round still commits, with accuracy within tolerance of
// the clean run. This is the in-process shape of the CI chaos job.
func TestNodeChaosFederation(t *testing.T) {
	s := nodeScale()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}

	clean, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64},
		transport.NewInproc(transport.Options{}), "srv")
	if err != nil {
		t.Fatal(err)
	}

	chaos := transport.NewChaos(transport.NewInproc(transport.Options{}), transport.ChaosConfig{
		Seed:     42,
		Drop:     0.02,
		Dup:      0.05,
		Delay:    0.1,
		MaxDelay: 5 * time.Millisecond,
	})
	shaken, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64},
		chaos, "srv", func(cfg *fl.NodeConfig) {
			cfg.Heartbeat = 50 * time.Millisecond
			cfg.DeadAfter = 500 * time.Millisecond
			cfg.ReconnectWindow = 30 * time.Second
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(shaken) != len(clean) {
		t.Fatalf("chaos run produced %d evaluation points, clean run %d", len(shaken), len(clean))
	}
	cf, sf := experiments.Final(clean), experiments.Final(shaken)
	if d := math.Abs(cf.MeanAcc - sf.MeanAcc); d > 0.02 {
		t.Fatalf("chaos final %.4f vs clean %.4f (Δ %.4f > 0.02)", sf.MeanAcc, cf.MeanAcc, d)
	}
}

// settledGoroutines waits for the goroutine count to hold still briefly
// and returns it — the baseline for the leak checks below.
func settledGoroutines() int {
	last, stable := runtime.NumGoroutine(), 0
	for i := 0; i < 250 && stable < 10; i++ {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	return last
}

// waitNodeGoroutines polls until the goroutine count returns to the
// baseline — the node runtime must leave no reader, worker or accept
// goroutine behind however a run ends.
func waitNodeGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf)
}

// TestNodeGoroutineHygiene checks the server and client nodes shed every
// goroutine after (a) a clean run, (b) a mid-run cancellation and (c) a
// run with a mid-federation disconnect and reconnect.
func TestNodeGoroutineHygiene(t *testing.T) {
	s := nodeScale()
	s.Rounds = 2
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("clean", func(t *testing.T) {
		// Baselines are taken inside each subtest: t.Run's own runner
		// goroutine (and the parent blocked in t.Run) are part of the
		// steady state here, not a leak.
		baseline := settledGoroutines()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		tr := transport.NewInproc(transport.Options{})
		if _, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv"); err != nil {
			t.Fatal(err)
		}
		waitNodeGoroutines(t, baseline)
	})

	t.Run("cancelled", func(t *testing.T) {
		baseline := settledGoroutines()
		ctx, cancel := context.WithCancel(context.Background())
		tr := transport.NewInproc(transport.Options{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv")
		}()
		time.Sleep(150 * time.Millisecond) // into the first local rounds
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled node federation did not return")
		}
		waitNodeGoroutines(t, baseline)
	})

	t.Run("disconnect", func(t *testing.T) {
		baseline := settledGoroutines()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		tr := transport.NewInproc(transport.Options{})
		ln, err := tr.Listen("srv")
		if err != nil {
			t.Fatal(err)
		}
		algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, s.Clients)
		cfg.Heartbeat = 20 * time.Millisecond
		cfg.DeadAfter = 200 * time.Millisecond
		srv := fl.NewServerNode(algo, cfg)
		clientErr := make(chan error, s.Clients)
		for i := 0; i < s.Clients-1; i++ {
			go func(id int) {
				clientErr <- experiments.RunClientNode(ctx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, "srv")
			}(i)
		}
		calgo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := tr.Dial(ctx, "srv")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			node := &fl.ClientNode{
				Client: build(s.Clients - 1),
				Algo:   calgo,
				Dialer: func(ctx context.Context, token uint64) (transport.Conn, error) {
					return transport.DialRetry(ctx, tr, "srv", transport.RetryOptions{Token: token, Seed: 7})
				},
			}
			clientErr <- node.Run(ctx, &dyingConn{Conn: conn, left: 3})
		}()
		if _, err := srv.Serve(ctx, ln); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < s.Clients; i++ {
			if err := <-clientErr; err != nil {
				t.Errorf("client: %v", err)
			}
		}
		waitNodeGoroutines(t, baseline)
	})
}
