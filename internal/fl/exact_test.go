package fl

import (
	"math"
	"math/rand"
	"testing"
)

// nastyVec fills a vector with values spanning wide exponent ranges, mixed
// signs, and denormal-adjacent magnitudes — the inputs where plain float64
// summation is most grouping-sensitive.
func nastyVec(rng *rand.Rand, n int, f32Only bool) []float64 {
	v := make([]float64, n)
	scales := []float64{1e-300, 1e-30, 1e-8, 1, 1e8, 1e30, 1e300}
	if f32Only {
		scales = []float64{1e-30, 1e-8, 1, 1e8, 1e30}
	}
	for i := range v {
		x := (rng.Float64()*2 - 1) * scales[rng.Intn(len(scales))]
		if f32Only {
			x = float64(float32(x))
		}
		v[i] = x
	}
	return v
}

// groupings of 12 updates: every partition shape the tree can produce,
// including the flat one, singletons, and lopsided splits.
var groupings = [][]int{
	{12},
	{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
	{6, 6},
	{4, 4, 4},
	{1, 11},
	{3, 4, 5},
	{2, 2, 2, 2, 2, 2},
}

// The exactness claim the tree topology rests on: folding the same
// weighted updates under ANY grouping, then merging the group
// accumulators, is byte-identical to folding them all flat — for full-f64
// and f32-truncated values alike, and regardless of merge nesting.
func TestExactAccumulatorGroupingInvariance(t *testing.T) {
	const n, k = 64, 12
	for _, f32 := range []bool{false, true} {
		rng := rand.New(rand.NewSource(41))
		vecs := make([][]float64, k)
		ws := make([]float64, k)
		for c := 0; c < k; c++ {
			vecs[c] = nastyVec(rng, n, f32)
			// Weights stay within [1e-3, 1e3] so no product w·v can
			// overflow — a nonfinite product would (deliberately)
			// poison the accumulator into order-sensitive plain sums.
			w := (rng.Float64() + 1e-3) * []float64{1e-3, 1, 1e3}[rng.Intn(3)]
			if f32 {
				w = float64(float32(w))
			}
			ws[c] = w
		}

		flat := NewExactAccumulator(n)
		for c := 0; c < k; c++ {
			flat.Fold(vecs[c], ws[c])
		}
		if flat.poisoned {
			t.Fatalf("f32=%v: test inputs poisoned the accumulator", f32)
		}
		wantSum, wantW := flat.Round()

		for _, sizes := range groupings {
			// Fold each group separately...
			var groups []*ExactAccumulator
			c := 0
			for _, sz := range sizes {
				g := NewExactAccumulator(n)
				for j := 0; j < sz; j++ {
					g.Fold(vecs[c], ws[c])
					c++
				}
				groups = append(groups, g)
			}
			// ...then merge left-to-right and right-to-left: both
			// nestings must agree with the flat fold bit for bit.
			for _, reversed := range []bool{false, true} {
				root := NewExactAccumulator(n)
				if reversed {
					for i := len(groups) - 1; i >= 0; i-- {
						root.Merge(groups[i])
					}
				} else {
					for _, g := range groups {
						root.Merge(g)
					}
				}
				gotSum, gotW := root.Round()
				if math.Float64bits(gotW) != math.Float64bits(wantW) {
					t.Fatalf("f32=%v grouping %v reversed=%v: wsum %x != %x",
						f32, sizes, reversed, math.Float64bits(gotW), math.Float64bits(wantW))
				}
				for i := range gotSum {
					if math.Float64bits(gotSum[i]) != math.Float64bits(wantSum[i]) {
						t.Fatalf("f32=%v grouping %v reversed=%v: sum[%d] %x != %x",
							f32, sizes, reversed, i, math.Float64bits(gotSum[i]), math.Float64bits(wantSum[i]))
					}
				}
			}
		}
	}
}

// ShardedAccumulator.Merge is the root's half of the reduction: folding
// exact per-group sums into the sharded state must be byte-identical to
// flat Accumulate calls, across shard counts, all the way through
// CommitInto. Integer-valued data makes every float64 operation exact, so
// the comparison isolates the plumbing (weighting, shard bounds, commit
// normalization) rather than float rounding.
func TestShardedMergeMatchesFlatAccumulate(t *testing.T) {
	const n, k = 37, 12
	rng := rand.New(rand.NewSource(43))
	vecs := make([][]float64, k)
	ws := make([]float64, k)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(1024) - 512)
		}
		vecs[c] = v
		ws[c] = float64(1 + rng.Intn(8))
	}

	for _, shards := range []int{1, 2, 3, 8} {
		flat := NewSharded(n, shards)
		for c := 0; c < k; c++ {
			flat.Accumulate(vecs[c], ws[c])
		}
		wantDst := make([]float64, n)
		flat.CommitInto(wantDst, 1, nil)

		for _, sizes := range groupings {
			tree := NewSharded(n, shards)
			c := 0
			for _, sz := range sizes {
				g := NewExactAccumulator(n)
				for j := 0; j < sz; j++ {
					g.Fold(vecs[c], ws[c])
					c++
				}
				sum, wsum := g.Round()
				tree.Merge(sum, wsum)
			}
			gotDst := make([]float64, n)
			tree.CommitInto(gotDst, 1, nil)
			for i := range gotDst {
				if math.Float64bits(gotDst[i]) != math.Float64bits(wantDst[i]) {
					t.Fatalf("shards=%d grouping %v: commit[%d] = %v, want %v",
						shards, sizes, i, gotDst[i], wantDst[i])
				}
			}
		}
	}
}

// Segment shards behave the same way: exact per-segment group sums merged
// via MergeSegment commit byte-identically to flat AccumulateSegment.
func TestSegmentedMergeMatchesFlatAccumulate(t *testing.T) {
	segLens := []int{4, 7, 1, 16}
	rng := rand.New(rand.NewSource(47))
	const k = 6

	type contrib struct {
		segs [][]float64 // per segment, nil = not reported
		w    float64
	}
	contribs := make([]contrib, k)
	for c := range contribs {
		segs := make([][]float64, len(segLens))
		for s, l := range segLens {
			if rng.Intn(4) == 0 {
				continue // this client skips the segment
			}
			v := make([]float64, l)
			for i := range v {
				v[i] = float64(rng.Intn(256) - 128)
			}
			segs[s] = v
		}
		contribs[c] = contrib{segs: segs, w: float64(1 + rng.Intn(5))}
	}

	flat := NewSegmented(segLens)
	for _, ct := range contribs {
		for s, seg := range ct.segs {
			if seg != nil {
				flat.AccumulateSegment(s, seg, ct.w)
			}
		}
	}
	total := 0
	for _, l := range segLens {
		total += l
	}
	wantDst := make([]float64, total)
	flat.CommitInto(wantDst, 1, nil)

	tree := NewSegmented(segLens)
	for _, sizes := range [][]int{{6}, {3, 3}, {2, 2, 2}, {1, 5}} {
		c := 0
		for _, sz := range sizes {
			group := contribs[c : c+sz]
			c += sz
			for s, l := range segLens {
				g := NewExactAccumulator(l)
				any := false
				for _, ct := range group {
					if ct.segs[s] != nil {
						g.Fold(ct.segs[s], ct.w)
						any = true
					}
				}
				if !any {
					continue
				}
				sum, wsum := g.Round()
				tree.MergeSegment(s, sum, wsum)
			}
		}
		gotDst := make([]float64, total)
		tree.CommitInto(gotDst, 1, nil)
		for i := range gotDst {
			if math.Float64bits(gotDst[i]) != math.Float64bits(wantDst[i]) {
				t.Fatalf("grouping %v: commit[%d] = %v, want %v", sizes, i, gotDst[i], wantDst[i])
			}
		}
	}
}

// Nonfinite inputs must not panic the accumulator (big.Float has no NaN):
// they degrade it to plain float64 sums that propagate the garbage.
func TestExactAccumulatorNonfinite(t *testing.T) {
	e := NewExactAccumulator(2)
	e.Fold([]float64{1, 2}, 3)
	e.Fold([]float64{math.NaN(), 1}, 1)
	sum, _ := e.Round()
	if !math.IsNaN(sum[0]) {
		t.Fatalf("NaN input vanished: %v", sum)
	}
	if sum[1] != 7 {
		t.Fatalf("finite lane corrupted: %v", sum)
	}

	e = NewExactAccumulator(1)
	e.Fold([]float64{math.Inf(1)}, 1)
	e.Fold([]float64{math.Inf(-1)}, 1)
	sum, _ = e.Round()
	if !math.IsNaN(sum[0]) {
		t.Fatalf("Inf-Inf should be NaN, got %v", sum)
	}

	// A poisoned accumulator merged into a clean one poisons it too.
	clean := NewExactAccumulator(1)
	clean.Fold([]float64{5}, 1)
	clean.Merge(e)
	sum, _ = clean.Round()
	if !math.IsNaN(sum[0]) {
		t.Fatalf("poison did not propagate through Merge: %v", sum)
	}

	// Nonfinite weight poisons immediately.
	e = NewExactAccumulator(1)
	e.Fold([]float64{0}, math.Inf(1))
	sum, _ = e.Round()
	if !math.IsNaN(sum[0]) {
		t.Fatalf("Inf·0 weight should be NaN, got %v", sum)
	}
}
