package fl

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/transport"
)

// This file is the edge-aggregator role of the tree topology: an
// AggregatorNode faces a contiguous range of clients downstream — through
// the same PeerTable the root uses, so joins, heartbeats, reconnect
// windows and churn behave identically one level down — and is itself a
// client upstream: it dials the root, joins on behalf of its whole child
// range (msgTreeJoin), echoes heartbeats, re-dials with its session token
// after a connection loss, and answers each batched dispatch with either a
// pre-reduced aggregate (ReducibleWireAlgorithm + ExactAccumulator, exact
// regrouping of flat fan-in) or its children's raw updates bundled
// unreduced (the passthrough for non-associative algorithms like KT-pFL).
//
// The aggregator holds no round state worth checkpointing: every frame it
// owes upstream is cached and replayed on adoption, and if the process
// dies outright the root churns its whole subtree after the reconnect
// window — restart-from-scratch semantics, documented in DESIGN.md §11.
//
// Ledger accounting: the aggregator's ledger prices its downstream side
// (child joins, dispatch fan-out, uploads, heartbeats). Its upstream
// traffic is priced by the root's ledger — the uplink-reduction claim is
// verified there, where the bytes actually land.

// AggregatorConfig configures one edge aggregator.
type AggregatorConfig struct {
	// Index is this aggregator's position in [0, Aggregators); with
	// Clients it determines the child range via TreeSplit.
	Index int
	// Aggregators is the tree's total aggregator count (the root's
	// NodeConfig.Aggregators).
	Aggregators int
	// Clients is the full fleet size (the root's NodeConfig.Clients).
	Clients int
	// Codec frames payload vectors; it must match both transports' codec.
	Codec comm.Codec
	// TopK and Delta mirror NodeConfig's fields: they shape the child
	// uploads this aggregator decodes (the aggregator's own upstream
	// frames stay dense — pre-reduced aggregates are cached for replay,
	// which stateful framing could not survive). They must match both
	// transports' negotiated spec.
	TopK  float64
	Delta bool
	// Seed drives this aggregator's child session-token issuance. Give
	// each aggregator a distinct seed.
	Seed int64
	// Heartbeat/DeadAfter/ReconnectWindow are the downstream failure
	// discipline, defaulted exactly as NodeConfig defaults them. The
	// upstream discipline is learned from the root's welcome.
	Heartbeat       time.Duration
	DeadAfter       time.Duration
	ReconnectWindow time.Duration
	// PreReduce selects the reduction policy (auto reduces when the
	// algorithm supports it; force refuses to start without a sound
	// reduction; off always passes through).
	PreReduce PreReduceMode
	// Dialer establishes (and re-establishes) the upstream connection,
	// presenting the session token (transport.DialRetry with
	// RetryOptions.Token is the expected implementation).
	Dialer func(ctx context.Context, token uint64) (transport.Conn, error)
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5 * c.Heartbeat
	}
	if c.ReconnectWindow <= 0 {
		c.ReconnectWindow = DefaultReconnectWindow
	}
	return c
}

// WireSpec is the connection-level framing spec the config describes.
func (c AggregatorConfig) WireSpec() comm.Spec { return comm.NewSpec(c.Codec, c.TopK, c.Delta) }

// AggregatorNode runs one edge aggregator of a 2-level tree.
type AggregatorNode struct {
	cfg  AggregatorConfig
	algo WireAlgorithm
	// Ledger prices the aggregator's downstream traffic (see the file
	// comment for the accounting split).
	Ledger *comm.Ledger
	// Stats summarizes the downstream failure-path events once Run returns.
	Stats NodeStats
}

// NewAggregatorNode builds an edge aggregator.
func NewAggregatorNode(algo WireAlgorithm, cfg AggregatorConfig) *AggregatorNode {
	ledger := comm.NewLedger()
	ledger.SetCodec(cfg.Codec)
	return &AggregatorNode{cfg: cfg.withDefaults(), algo: algo, Ledger: ledger}
}

// dialResult is one upstream-dial delivery.
type dialResult struct {
	conn transport.Conn
	err  error
}

// upEvent is one upstream-reader delivery; gen stamps the connection
// incarnation like the PeerTable's inbound events.
type upEvent struct {
	gen   int
	frame []byte
	err   error
}

// aggRun is the single-goroutine event loop driving one Run call.
type aggRun struct {
	n   *AggregatorNode
	cfg AggregatorConfig
	ctx context.Context

	algo   WireAlgorithm
	lo, hi int
	// wc frames the aggregator's own encodes (downstream dispatch fan-out,
	// upstream aggregates) — all dense kinds, so cached replay frames stay
	// valid. Child upload decoding runs through each reader's
	// per-connection wireCodec in the PeerTable.
	wc *wireCodec

	pt    *PeerTable
	joins []WireJoin

	joined    int
	assembled bool

	// Upstream connection state. upDeadMs is the root-announced dead
	// interval, read by the upstream reader to bound each Recv (atomic:
	// the event loop stores it when the welcome arrives).
	up        transport.Conn
	upGen     int
	upToken   uint64
	upDialing bool
	upDeadMs  atomic.Int64
	upEvents  chan upEvent
	upDials   chan dialResult
	upWelcome []int64
	joinFrame []byte

	// Round state: the open dispatch being collected, and the cached
	// answer frame of the last finished round (a re-dispatched round the
	// root lost the answer to is resent, not recollected).
	version     uint64
	collecting  bool
	awaiting    map[int]bool
	updates     map[int]*Update
	haveLast    bool
	lastVersion uint64
	lastFrame   []byte

	// Evaluation state, with the same resend cache.
	evalVersion  uint64
	evalWait     map[int]bool
	evalAcc      map[int]uint64
	evalIDs      []int
	haveLastEval bool
	lastEvalVer  uint64
	lastEvalFrm  []byte

	stopping  bool
	stopFrame []byte

	fatal error
	done  bool
}

// Run accepts the child range's joins on the listener, joins the root on
// their behalf, and relays rounds until the root's stop (nil) or a fatal
// error. Cancelling ctx tears everything down and returns ctx.Err().
func (n *AggregatorNode) Run(ctx context.Context, ln transport.Listener) error {
	defer ln.Close()
	cfg := n.cfg
	if cfg.Aggregators <= 0 || cfg.Aggregators > cfg.Clients {
		return fmt.Errorf("fl: %d aggregators cannot front %d clients (need 1 <= aggregators <= clients)",
			cfg.Aggregators, cfg.Clients)
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Aggregators {
		return fmt.Errorf("fl: aggregator index %d out of range [0, %d)", cfg.Index, cfg.Aggregators)
	}
	if cfg.Dialer == nil {
		return fmt.Errorf("fl: aggregator %d needs an upstream dialer", cfg.Index)
	}
	if err := CheckPreReduce(n.algo, cfg.PreReduce); err != nil {
		return err
	}
	bounds := TreeSplit(cfg.Clients, cfg.Aggregators)
	lo, hi := bounds[cfg.Index], bounds[cfg.Index+1]
	g := &aggRun{
		n:        n,
		cfg:      cfg,
		ctx:      ctx,
		algo:     n.algo,
		lo:       lo,
		hi:       hi,
		wc:       newWireCodec(cfg.WireSpec(), lossyUploads(n.algo)),
		joins:    make([]WireJoin, hi-lo),
		upEvents: make(chan upEvent, 8),
		upDials:  make(chan dialResult, 1),
	}
	g.pt = newPeerTable(hi-lo, lo, cfg.WireSpec(), lossyUploads(n.algo), cfg.Heartbeat, cfg.DeadAfter, cfg.ReconnectWindow,
		cfg.Seed, n.Ledger, &n.Stats, func(m *wireMsg) bool {
			return m.kind == msgJoin && len(m.ints) == joinIntCount
		})
	defer g.pt.shutdown()
	defer g.closeUp()
	go g.pt.acceptLoop(ln)
	return g.loop(ctx)
}

func (g *aggRun) closeUp() {
	if g.up != nil {
		g.up.Close()
		g.up = nil
	}
}

// loop is the event loop: every state transition happens here.
func (g *aggRun) loop(ctx context.Context) error {
	interval := g.cfg.Heartbeat
	if g.cfg.DeadAfter < interval {
		interval = g.cfg.DeadAfter
	}
	if g.cfg.ReconnectWindow < interval {
		interval = g.cfg.ReconnectWindow
	}
	if interval /= 2; interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	g.pt.lastBeat = time.Now()
	for g.fatal == nil && !g.done {
		select {
		case ev := <-g.pt.events:
			g.handleChildInbound(ev)
		case ac := <-g.pt.conns:
			g.handleChildConn(ac)
		case dr := <-g.upDials:
			g.handleDialResult(dr)
		case ue := <-g.upEvents:
			g.handleUpEvent(ue)
		case <-ticker.C:
			g.handleTick()
		case <-ctx.Done():
			return ctx.Err()
		}
		if g.stopping && g.fatal == nil && !g.done && !g.pt.pendingStops() {
			// Every child is stopped or churned: acknowledge the root's stop
			// (best-effort if the upstream link is down — the root's reconnect
			// window resolves the session either way) and finish.
			g.sendUp(encodeMsg(&wireMsg{kind: msgStopAck}, g.wc))
			g.done = true
		}
	}
	return g.fatal
}

// fail reports a downstream failure upstream (so the root aborts the run
// with the cause) and ends this aggregator.
func (g *aggRun) fail(format string, args ...any) {
	err := fmt.Errorf(format, args...)
	g.sendUp(encodeMsg(&wireMsg{kind: msgErr, name: err.Error()}, g.wc))
	g.fatal = fmt.Errorf("fl: aggregator %d: %w", g.cfg.Index, err)
}

// ---- upstream side ----

// dialUpstream starts one asynchronous dial attempt, presenting whatever
// session token the aggregator holds.
func (g *aggRun) dialUpstream() {
	g.upDialing = true
	token := g.upToken
	go func() {
		conn, err := g.cfg.Dialer(g.ctx, token)
		select {
		case g.upDials <- dialResult{conn: conn, err: err}:
		case <-g.pt.stop:
			if conn != nil {
				conn.Close()
			}
		}
	}()
}

func (g *aggRun) handleDialResult(dr dialResult) {
	g.upDialing = false
	if dr.err != nil {
		if g.ctx.Err() != nil {
			g.fatal = g.ctx.Err()
			return
		}
		g.fatal = fmt.Errorf("fl: aggregator %d: upstream dial: %w", g.cfg.Index, dr.err)
		return
	}
	g.up = dr.conn
	g.upGen++
	go g.upReader(g.upGen, dr.conn)
	if g.upToken == 0 {
		// No session yet (first dial, or the join-phase connection died
		// before the welcome): a fresh tree join is idempotent pre-assembly
		// on the root, exactly like a client's re-join.
		if g.joinFrame == nil {
			g.joinFrame = encodeTreeJoin(g.cfg.Index, g.lo, g.hi, g.joins, g.algo.Name(), g.wc)
		}
		g.sendUp(g.joinFrame)
	}
}

// upReader pumps upstream frames into the event loop until the connection
// dies, bounding each read by the root-announced dead interval.
func (g *aggRun) upReader(gen int, conn transport.Conn) {
	deliver := func(ev upEvent) bool {
		select {
		case g.upEvents <- ev:
			return true
		case <-g.pt.stop:
			return false
		}
	}
	for {
		if d := g.upDeadMs.Load(); d > 0 {
			conn.SetReadDeadline(time.Now().Add(time.Duration(d) * time.Millisecond))
		}
		b, _, err := conn.Recv()
		if err != nil {
			deliver(upEvent{gen: gen, err: err})
			return
		}
		if !deliver(upEvent{gen: gen, frame: b}) {
			return
		}
	}
}

// sendUp writes one frame upstream, tearing the connection down (and
// triggering a re-dial) on failure. The frame stays owed: every upstream
// send is either re-derivable or cached for replay.
func (g *aggRun) sendUp(frame []byte) bool {
	if g.up == nil {
		return false
	}
	d := time.Duration(g.upDeadMs.Load()) * time.Millisecond
	if d <= 0 {
		d = g.cfg.DeadAfter
	}
	g.up.SetWriteDeadline(time.Now().Add(d))
	if _, err := g.up.Send(frame); err != nil {
		g.upLost()
		return false
	}
	g.up.SetWriteDeadline(time.Time{})
	return true
}

// upLost tears down the upstream connection and re-dials (unless the run
// is stopping — then the drain finishes and the root's reconnect window
// resolves the session).
func (g *aggRun) upLost() {
	if g.up != nil {
		g.up.Close()
		g.up = nil
	}
	g.upGen++
	if !g.stopping && !g.upDialing && g.fatal == nil {
		g.dialUpstream()
	}
}

func (g *aggRun) handleUpEvent(ue upEvent) {
	if ue.gen != g.upGen {
		return
	}
	if ue.err != nil {
		if g.ctx.Err() != nil {
			g.fatal = g.ctx.Err()
			return
		}
		g.upLost()
		return
	}
	m, err := decodeMsg(ue.frame)
	if err != nil {
		g.fatal = fmt.Errorf("fl: aggregator %d: upstream frame: %w", g.cfg.Index, err)
		return
	}
	g.handleUp(m)
}

// handleUp processes one root message.
func (g *aggRun) handleUp(m *wireMsg) {
	switch m.kind {
	case msgWelcome, msgResume:
		if len(m.ints) != welIntCount {
			g.fatal = fmt.Errorf("fl: aggregator %d: malformed welcome", g.cfg.Index)
			return
		}
		if m.name != g.algo.Name() {
			g.fatal = fmt.Errorf("fl: aggregator %d runs %q, server runs %q", g.cfg.Index, g.algo.Name(), m.name)
			return
		}
		g.upDeadMs.Store(m.ints[welDeadMs])
		if tok := uint64(m.ints[welToken]); tok != 0 {
			g.upToken = tok
		}
		g.upWelcome = m.ints
		if !g.assembled {
			g.welcomeChildren()
		}
	case msgHeartbeat:
		// Echo verbatim, like any client: traffic is the liveness signal.
		g.sendUp(encodeMsg(&wireMsg{kind: msgHeartbeat, a: m.a}, g.wc))
	case msgTreeDispatch:
		g.handleTreeDispatch(m)
	case msgEvalReq:
		g.handleUpEvalReq(m)
	case msgStop:
		g.beginStop()
	case msgErr:
		g.fatal = fmt.Errorf("fl: aggregator %d refused by server: %s", g.cfg.Index, m.name)
	default:
		g.n.Stats.Ignored++
	}
}

// welcomeChildren issues child tokens and relays the root's federation
// parameters downstream, substituting this aggregator's own token grants
// and liveness discipline — each tree edge has its own failure clocks.
func (g *aggRun) welcomeChildren() {
	g.pt.issueTokens()
	g.assembled = true
	for _, s := range g.pt.sessions {
		welcome := &wireMsg{kind: msgWelcome, name: g.algo.Name(), ints: g.childWelcomeInts(s)}
		if !g.pt.send(s, encodeMsg(welcome, g.wc)) {
			continue // the reconnect window (or churn) picks it up
		}
	}
}

func (g *aggRun) childWelcomeInts(s *peerSession) []int64 {
	return []int64{
		g.upWelcome[welClients], g.upWelcome[welRounds], g.upWelcome[welBatch], g.upWelcome[welEvalEvery],
		int64(s.token), g.cfg.Heartbeat.Milliseconds(), g.cfg.DeadAfter.Milliseconds(),
	}
}

// handleTreeDispatch fans one batched broadcast out to the subtree. A
// duplicate of the round being collected is already in hand; a duplicate
// of a finished round means the root lost the answer — resend the cached
// frame rather than retraining the subtree.
func (g *aggRun) handleTreeDispatch(m *wireMsg) {
	if g.collecting && m.a == g.version {
		g.n.Stats.Ignored++
		return
	}
	if !g.collecting && g.haveLast && m.a == g.lastVersion {
		g.n.Stats.Resends++
		g.sendUp(g.lastFrame)
		return
	}
	ids, payloads, err := decodeTreeDispatch(m)
	if err != nil {
		g.fatal = fmt.Errorf("fl: aggregator %d: %w", g.cfg.Index, err)
		return
	}
	g.version = m.a
	g.collecting = true
	g.awaiting = make(map[int]bool, len(ids))
	g.updates = make(map[int]*Update, len(ids))
	for i, id := range ids {
		if id < g.lo || id >= g.hi {
			g.fatal = fmt.Errorf("fl: aggregator %d: dispatch for client %d outside range [%d, %d)",
				g.cfg.Index, id, g.lo, g.hi)
			return
		}
		s := g.pt.sessionByID(id)
		if s.churned {
			continue
		}
		frame := encodeMsg(&wireMsg{kind: msgDispatch, a: m.a, vecs: payloads[i]}, g.wc)
		s.busy = true
		s.dispVersion = m.a
		s.pendingDispatch = frame
		g.awaiting[id] = true
		g.pt.send(s, frame) // a failed send leaves the dispatch owed on adoption
	}
	if len(g.awaiting) == 0 {
		g.finishRound()
	}
}

// finishRound answers the open round: pre-reduce the collected updates
// when the policy and the algorithm allow it, bundle them raw otherwise.
// The frame is cached before the send so an upstream loss replays it.
func (g *aggRun) finishRound() {
	g.collecting = false
	ids := make([]int, 0, len(g.updates))
	for id := range g.updates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ups := make([]*Update, len(ids))
	for i, id := range ids {
		ups[i] = g.updates[id]
	}
	var frame []byte
	if red, ok := g.algo.(ReducibleWireAlgorithm); ok && g.cfg.PreReduce != PreReduceOff {
		au, err := red.PreReduce(ups)
		if err != nil {
			g.fail("%s pre-reduce: %s", g.algo.Name(), err)
			return
		}
		au.Agg = g.cfg.Index
		frame = encodeAggUpdate(g.version, au, g.wc)
	} else {
		frame = encodeTreeUpdate(g.version, ups, g.wc)
	}
	g.lastFrame, g.lastVersion, g.haveLast = frame, g.version, true
	g.awaiting = nil
	g.updates = nil
	g.sendUp(frame)
}

// handleUpEvalReq fans an evaluation request out to the requested, live
// children, caching the per-child frame for replay on adoption.
func (g *aggRun) handleUpEvalReq(m *wireMsg) {
	if g.evalWait != nil && m.a == g.evalVersion {
		g.n.Stats.Ignored++
		return
	}
	if g.evalWait == nil && g.haveLastEval && m.a == g.lastEvalVer {
		g.n.Stats.Resends++
		g.sendUp(g.lastEvalFrm)
		return
	}
	g.evalVersion = m.a
	g.evalWait = make(map[int]bool, len(m.ints))
	g.evalAcc = make(map[int]uint64, len(m.ints))
	g.evalIDs = g.evalIDs[:0]
	frame := encodeMsg(&wireMsg{kind: msgEvalReq, a: m.a}, g.wc)
	for _, iv := range m.ints {
		id := int(iv)
		if id < g.lo || id >= g.hi {
			g.fatal = fmt.Errorf("fl: aggregator %d: evaluation request for client %d outside range [%d, %d)",
				g.cfg.Index, id, g.lo, g.hi)
			return
		}
		s := g.pt.sessionByID(id)
		if s.churned {
			continue
		}
		g.evalIDs = append(g.evalIDs, id)
		g.evalWait[id] = true
		s.pendingEval = frame
		g.pt.send(s, frame) // a failed send leaves the request owed on adoption
	}
	if len(g.evalWait) == 0 {
		g.finishEval()
	}
}

// finishEval relays the collected accuracies upstream as [id, bits] pairs
// — through the ints slot, never the vecs slot, so a lossy codec cannot
// quantize a metric. Children that churned mid-evaluation are simply
// absent; their root-side slots stay NaN.
func (g *aggRun) finishEval() {
	ids := make([]int, 0, len(g.evalAcc))
	for _, id := range g.evalIDs {
		if _, ok := g.evalAcc[id]; ok {
			ids = append(ids, id)
		}
	}
	frame := encodeMsg(&wireMsg{kind: msgEvalRes, a: g.evalVersion, ints: aggEvalInts(ids, g.evalAcc)}, g.wc)
	g.lastEvalFrm, g.lastEvalVer, g.haveLastEval = frame, g.evalVersion, true
	g.evalWait = nil
	g.evalAcc = nil
	g.evalIDs = nil
	g.sendUp(frame)
}

// beginStop relays the root's goodbye downstream; the loop's drain
// condition acknowledges upstream once every child session resolves.
func (g *aggRun) beginStop() {
	if g.stopping {
		return
	}
	g.stopping = true
	g.stopFrame = encodeMsg(&wireMsg{kind: msgStop}, g.wc)
	for _, s := range g.pt.sessions {
		if s.conn != nil && !s.churned {
			g.pt.send(s, g.stopFrame)
		}
	}
}

// ---- downstream side ----

// handleChildConn admits one accepted child connection, mirroring the
// root's flat join flow one level down.
func (g *aggRun) handleChildConn(ac acceptedConn) {
	if ac.err != nil {
		if g.joined < len(g.pt.sessions) {
			g.fail("listener closed with %d of %d clients joined: %s", g.joined, len(g.pt.sessions), ac.err)
		}
		return
	}
	g.pt.forgetEmbryo(ac.conn)
	if ac.token != 0 {
		sess := g.pt.findToken(ac.token)
		if sess == nil {
			g.pt.refuse(ac.conn, fmt.Sprintf("unknown session token %#x", ac.token))
			return
		}
		if sess.churned {
			g.pt.refuse(ac.conn, fmt.Sprintf("client %d session expired (reconnect window elapsed)", sess.id))
			return
		}
		if sess.conn != nil {
			g.pt.markDisconnected(sess)
		}
		g.adoptChild(sess, ac.conn, 0)
		return
	}
	m := ac.join
	id := int(m.ints[joinID])
	if id < g.lo || id >= g.hi {
		g.pt.refuse(ac.conn, fmt.Sprintf("client id %d outside this aggregator's range [%d, %d)", id, g.lo, g.hi))
		return
	}
	if m.name != g.algo.Name() {
		g.pt.refuse(ac.conn, fmt.Sprintf("client runs %q, aggregator runs %q", m.name, g.algo.Name()))
		return
	}
	sess := g.pt.sessionByID(id)
	if g.assembled {
		if sess.churned {
			g.pt.refuse(ac.conn, fmt.Sprintf("client %d session expired (reconnect window elapsed)", id))
			return
		}
		if sess.conn != nil {
			g.pt.markDisconnected(sess)
		}
		g.adoptChild(sess, ac.conn, ac.wire)
		return
	}
	if sess.conn != nil {
		g.pt.markDisconnected(sess)
	}
	g.joins[id-g.lo] = WireJoin{
		ID:            id,
		TrainSize:     int(m.ints[joinTrainSize]),
		FeatDim:       int(m.ints[joinFeatDim]),
		NumClasses:    int(m.ints[joinNumClasses]),
		NumParams:     int(m.ints[joinNumParams]),
		NumClassifier: int(m.ints[joinNumClassifier]),
		Init:          m.vecs,
	}
	g.pt.attach(sess, ac.conn, ac.wire)
	if !sess.joined {
		sess.joined = true
		g.joined++
	}
	if g.joined == len(g.pt.sessions) && g.up == nil && !g.upDialing {
		g.dialUpstream()
	}
}

// adoptChild attaches a reconnecting child and replays what it is owed.
func (g *aggRun) adoptChild(sess *peerSession, conn transport.Conn, joinWire int64) {
	sess.downAt = time.Time{}
	g.n.Stats.Reconnects++
	g.pt.attach(sess, conn, joinWire)
	resume := &wireMsg{kind: msgResume, a: g.version, name: g.algo.Name(), ints: g.childWelcomeInts(sess)}
	if !g.pt.send(sess, encodeMsg(resume, g.wc)) {
		return
	}
	if sess.busy && sess.pendingDispatch != nil {
		g.n.Stats.Resends++
		if !g.pt.send(sess, sess.pendingDispatch) {
			return
		}
	}
	if g.evalWait != nil && g.evalWait[sess.id] && sess.pendingEval != nil {
		g.n.Stats.Resends++
		if !g.pt.send(sess, sess.pendingEval) {
			return
		}
	}
	if g.stopping {
		g.pt.send(sess, g.stopFrame)
	}
}

// churnChild retires a child permanently; open barriers stop waiting for
// it (the round or evaluation completes without its contribution, exactly
// as the root completes without a churned flat client's).
func (g *aggRun) churnChild(s *peerSession) {
	if !g.pt.churnSession(s) {
		return
	}
	if g.awaiting != nil && g.awaiting[s.id] {
		delete(g.awaiting, s.id)
		if len(g.awaiting) == 0 && g.collecting {
			g.finishRound()
		}
	}
	if g.evalWait != nil && g.evalWait[s.id] {
		delete(g.evalWait, s.id)
		if len(g.evalWait) == 0 {
			g.finishEval()
		}
	}
}

// handleChildInbound processes one child reader delivery.
func (g *aggRun) handleChildInbound(ev inbound) {
	sess := g.pt.sessionByID(ev.id)
	if ev.err == nil {
		g.n.Ledger.AddUp(ev.id, ev.wire)
	}
	if ev.gen != sess.gen {
		return
	}
	if ev.err != nil {
		if sess.stopped {
			if sess.conn != nil {
				sess.conn.Close()
				sess.conn = nil
				sess.gen++
			}
			return
		}
		g.pt.markDisconnected(sess)
		return
	}
	sess.lastSeen = time.Now()
	m := ev.msg
	switch m.kind {
	case msgHeartbeat:
		// The arrival already refreshed lastSeen.
	case msgUpdate:
		g.handleChildUpdate(sess, m)
	case msgEvalRes:
		g.handleChildEvalRes(sess, m)
	case msgErr:
		g.fail("client %d failed: %s", ev.id, m.name)
	case msgStopAck:
		sess.stopped = true
	default:
		g.n.Stats.Ignored++
	}
}

// handleChildUpdate collects one child upload into the open round, with
// the same dedup rule the root applies: only the answer to the session's
// outstanding dispatch counts.
func (g *aggRun) handleChildUpdate(sess *peerSession, m *wireMsg) {
	if !sess.busy || sess.dispVersion != m.a {
		g.n.Stats.Ignored++
		return
	}
	sess.busy = false
	sess.pendingDispatch = nil
	if g.awaiting == nil || !g.awaiting[sess.id] {
		g.n.Stats.Ignored++
		return
	}
	scale := bitsF64(m.b)
	g.updates[sess.id] = &Update{
		Client:  sess.id,
		Version: int(m.a),
		Scale:   scale,
		// The sync barrier's final weight IS the scale (the root applies
		// the same rule on its flat path); pre-reduction folds by Weight.
		Weight: scale,
		Vecs:   m.vecs,
		Counts: m.counts,
	}
	delete(g.awaiting, sess.id)
	if len(g.awaiting) == 0 && g.collecting {
		g.finishRound()
	}
}

// handleChildEvalRes collects one child accuracy, relayed upstream bit-
// for-bit (the float64 pattern never leaves the integer slots).
func (g *aggRun) handleChildEvalRes(sess *peerSession, m *wireMsg) {
	if g.evalWait == nil || !g.evalWait[sess.id] {
		g.n.Stats.Ignored++
		return
	}
	g.evalAcc[sess.id] = m.b
	sess.pendingEval = nil
	delete(g.evalWait, sess.id)
	if len(g.evalWait) == 0 {
		g.finishEval()
	}
}

// handleTick runs the downstream failure discipline once the children are
// welcomed; expired reconnect windows churn the child (and the open
// barriers complete without it).
func (g *aggRun) handleTick() {
	if !g.assembled {
		return
	}
	g.pt.tick(g.version, g.churnChild)
}
