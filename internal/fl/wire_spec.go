package fl

import (
	"repro/internal/comm"
)

// This file is the per-connection codec seam of the node-mode protocol: a
// wireCodec resolves the connection's negotiated comm.Spec into a per-vector
// framing decision and owns the delta bases that decision creates.
//
// Policy: only client weight uploads (msgUpdate) ever sparsify or delta-
// frame, and only when the algorithm's uploads tolerate loss
// (LossyUploadWireAlgorithm). Dispatches, joins, evaluation traffic and the
// tree-topology bundles stay dense — those frames are cached and re-sent
// verbatim across reconnects (pendingDispatch, the aggregator's join and
// update frames), which a stateful delta frame could never survive, and
// prototype/soft-prediction payloads must stay lossless per the selector
// contract. Delta bases live strictly inside one connection: each side
// builds its wireCodec when the connection is established, so churn or
// reconnect discards the bases and the first frames of the new connection
// re-establish them densely — the fallback is the protocol, not a special
// case.

// vecSlot names one delta-tracked vector position: a message kind, the
// vector's index in the envelope, and its length. A geometry change (never
// expected within a session) lands on a different slot and starts a fresh
// basis rather than corrupting the old one.
type vecSlot struct {
	kind uint32
	idx  int
	n    int
}

// wireCodec is one connection's (or one simulated client's) codec state.
type wireCodec struct {
	sel  comm.Selector
	refs map[vecSlot]*comm.DeltaRef
}

// uploadKind gates sparse and delta framing to client weight uploads.
func uploadKind(kind uint32) bool { return kind == msgUpdate }

// plainWire is the dense-only wireCodec for a bare codec — control-plane
// encodes and every pre-spec call site.
func plainWire(c comm.Codec) *wireCodec {
	return &wireCodec{sel: comm.Selector{Spec: comm.Spec{Value: c}}}
}

// newWireCodec builds the codec state for one connection speaking spec.
// lossy reports whether the algorithm's uploads tolerate loss; when they
// do not (FedProto prototypes, KT-pFL soft predictions), the spec's
// sparsification and delta framing are dropped and only its value codec
// survives — both ends derive this identically from the algorithm name, so
// the connection stays in agreement.
func newWireCodec(spec comm.Spec, lossy bool) *wireCodec {
	if !lossy {
		return plainWire(spec.Value)
	}
	return &wireCodec{sel: comm.Selector{
		Spec:        spec,
		SparseKinds: uploadKind,
		DeltaKinds:  uploadKind,
	}}
}

// specFor resolves the framing of one vector. A nil wireCodec is the plain
// dense f64 protocol.
func (wc *wireCodec) specFor(kind uint32, n int) comm.Spec {
	if wc == nil {
		return comm.Spec{}
	}
	return wc.sel.For(kind, n)
}

// ref returns the delta basis for one vector slot, creating it on first
// use — nil when the slot's framing is not delta (including always for a
// nil wireCodec), which is exactly the ref argument comm's spec paths
// expect in the dense case.
func (wc *wireCodec) ref(kind uint32, idx, n int) *comm.DeltaRef {
	if wc == nil || !wc.sel.For(kind, n).Delta {
		return nil
	}
	if wc.refs == nil {
		wc.refs = make(map[vecSlot]*comm.DeltaRef)
	}
	s := vecSlot{kind: kind, idx: idx, n: n}
	r := wc.refs[s]
	if r == nil {
		r = &comm.DeltaRef{}
		wc.refs[s] = r
	}
	return r
}

// LossyUploadWireAlgorithm marks a wire algorithm whose client uploads are
// weight vectors that tolerate lossy framing (sparsification, delta
// residuals). Algorithms whose uploads are structural — prototype tables,
// soft-prediction rows — do not implement it and always upload densely.
type LossyUploadWireAlgorithm interface {
	WireAlgorithm
	LossyUploads() bool
}

// lossyUploads reports whether a's uploads may be sparsified.
func lossyUploads(a WireAlgorithm) bool {
	l, ok := a.(LossyUploadWireAlgorithm)
	return ok && l.LossyUploads()
}
