package fl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
)

// TestWireMessageRoundTrip pushes a fully loaded message through
// encode/decode and checks every field, including nil vector entries.
func TestWireMessageRoundTrip(t *testing.T) {
	m := &wireMsg{
		kind:   msgUpdate,
		a:      7,
		b:      f64bits(42.5),
		name:   "FedClassAvg",
		ints:   []int64{1, -2, 3},
		counts: []int{0, 9, 0, 4},
		vecs:   [][]float64{{1, 2, 3}, nil, {-0.5}},
	}
	got, err := decodeMsg(encodeMsg(m, plainWire(comm.F64)))
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != m.kind || got.a != m.a || bitsF64(got.b) != 42.5 || got.name != m.name {
		t.Fatalf("header fields corrupted: %+v", got)
	}
	if len(got.ints) != 3 || got.ints[1] != -2 {
		t.Fatalf("ints corrupted: %v", got.ints)
	}
	if len(got.counts) != 4 || got.counts[1] != 9 || got.counts[3] != 4 {
		t.Fatalf("counts corrupted: %v", got.counts)
	}
	if len(got.vecs) != 3 || got.vecs[1] != nil {
		t.Fatalf("vec shape corrupted: %v", got.vecs)
	}
	for i, v := range m.vecs[0] {
		if got.vecs[0][i] != v {
			t.Fatalf("vec[0][%d] = %v, want %v", i, got.vecs[0][i], v)
		}
	}
	if got.vecs[2][0] != -0.5 {
		t.Fatalf("vec[2] = %v", got.vecs[2])
	}
}

// TestWireMessageQuantizes checks that a lossy codec quantizes payload
// vectors exactly as comm.RoundTripInPlace would — the wire IS the codec.
func TestWireMessageQuantizes(t *testing.T) {
	v := []float64{0.123456789, -1.75, 3.0}
	m := &wireMsg{kind: msgDispatch, vecs: [][]float64{append([]float64(nil), v...)}}
	got, err := decodeMsg(encodeMsg(m, plainWire(comm.F32)))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), v...)
	comm.RoundTripInPlace(comm.F32, want)
	for i := range want {
		if got.vecs[0][i] != want[i] {
			t.Fatalf("f32 wire value[%d] = %v, want quantized %v", i, got.vecs[0][i], want[i])
		}
	}
}

// TestWireMessageEmpty round-trips the minimal control message.
func TestWireMessageEmpty(t *testing.T) {
	got, err := decodeMsg(encodeMsg(&wireMsg{kind: msgStop}, plainWire(comm.F64)))
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != msgStop || got.name != "" || got.ints != nil || got.vecs != nil {
		t.Fatalf("stop message round trip: %+v", got)
	}
}

// TestWireMessageRejectsCorruption checks truncation, tag mismatches,
// hostile counts and trailing bytes all fail cleanly.
func TestWireMessageRejectsCorruption(t *testing.T) {
	good := encodeMsg(&wireMsg{kind: msgUpdate, b: f64bits(1), vecs: [][]float64{{1, 2}}}, plainWire(comm.F64))
	if _, err := decodeMsg(good); err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeMsg(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Trailing garbage.
	if _, err := decodeMsg(append(append([]byte(nil), good...), 0xFF)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: %v", err)
	}
	// A vector tagged with a different message kind (decoder desync).
	evil := &wireMsg{kind: msgDispatch, vecs: [][]float64{{1}}}
	frame := encodeMsg(evil, plainWire(comm.F64))
	// Rewrite the outer kind without re-tagging the vec frame.
	frame[0], frame[1] = byte(msgUpdate&0xFF), byte(msgUpdate>>8)
	if _, err := decodeMsg(frame); err == nil || !strings.Contains(err.Error(), "tagged") {
		t.Fatalf("tag mismatch: %v", err)
	}
	// A hostile count field larger than the buffer.
	hostile := encodeMsg(&wireMsg{kind: msgJoin}, plainWire(comm.F64))
	for i := 0; i < 8; i++ {
		hostile[4+16+i] = 0xFF // nameLen u64 → absurd
	}
	if _, err := decodeMsg(hostile); err == nil {
		t.Fatal("hostile count must fail")
	}
}

// TestSampleCohortMatchesSimulation checks the extracted sampler consumes
// the simulation's RNG stream identically — the node scheduler's parity
// foundation.
func TestSampleCohortMatchesSimulation(t *testing.T) {
	sim := NewSimulation(bareClients(7), Config{Rounds: 1, SampleRate: 0.5, Seed: 11, DropProb: 0.2})
	var fromSim [][]int
	for i := 0; i < 5; i++ {
		fromSim = append(fromSim, append([]int(nil), sim.sampleParticipants()...))
	}
	sim2 := NewSimulation(bareClients(7), Config{Rounds: 1, SampleRate: 0.5, Seed: 11, DropProb: 0.2})
	for i := 0; i < 5; i++ {
		got := SampleCohort(sim2.Rng, 7, 0.5, 0.2)
		if len(got) != len(fromSim[i]) {
			t.Fatalf("draw %d: %v vs %v", i, got, fromSim[i])
		}
		for j := range got {
			if got[j] != fromSim[i][j] {
				t.Fatalf("draw %d: %v vs %v", i, got, fromSim[i])
			}
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("cohort not sorted: %v", got)
			}
		}
	}
	if n := len(SampleCohort(sim.Rng, 5, 1, 0)); n != 5 {
		t.Fatalf("full-rate cohort has %d of 5", n)
	}
}

// TestScaleBits checks the float64 bit-pattern slots carry negatives, NaN
// payloads aside.
func TestScaleBits(t *testing.T) {
	for _, v := range []float64{0, 1, -3.5, math.MaxFloat64} {
		if bitsF64(f64bits(v)) != v {
			t.Fatalf("bits round trip lost %v", v)
		}
	}
}
