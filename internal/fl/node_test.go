// End-to-end tests of the node runtime: server and client nodes speaking
// the wire protocol over real transports, compared against the in-process
// engine for parity. External test package so fleets and algorithms come
// from experiments/core/baselines without an import cycle.
package fl_test

import (
	"context"
	"io"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/transport"
)

func nodeScale() experiments.Scale {
	s := experiments.Tiny()
	s.Rounds = 3
	return s
}

// TestNodeFederationSyncParity runs FedClassAvg as one server node plus
// four client nodes over the inproc transport and checks every evaluation
// point lands within parity tolerance of the in-process sync engine at
// the same seed — the quickstart-parity contract of the node split.
func TestNodeFederationSyncParity(t *testing.T) {
	s := nodeScale()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Run(experiments.MethodProposed, experiments.Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	got, err := experiments.RunNodes(ctx, experiments.MethodProposed, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv")
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("node run has %d evaluation points, sync run has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Round != want[i].Round || got[i].LocalEpochs != want[i].LocalEpochs {
			t.Fatalf("point %d: round/epochs (%d, %d) vs sync (%d, %d)",
				i, got[i].Round, got[i].LocalEpochs, want[i].Round, want[i].LocalEpochs)
		}
		if d := math.Abs(got[i].MeanAcc - want[i].MeanAcc); d > 0.02 {
			t.Fatalf("round %d: node accuracy %.4f vs sync %.4f (Δ %.4f > 0.02)",
				got[i].Round, got[i].MeanAcc, want[i].MeanAcc, d)
		}
		for j := range got[i].PerClient {
			if d := math.Abs(got[i].PerClient[j] - want[i].PerClient[j]); d > 0.02 {
				t.Fatalf("round %d client %d: node %.4f vs sync %.4f", got[i].Round, j, got[i].PerClient[j], want[i].PerClient[j])
			}
		}
	}
}

// TestNodeAllMethodsRun drives every method of the evaluation through the
// node runtime end to end.
func TestNodeAllMethodsRun(t *testing.T) {
	s := nodeScale()
	s.Rounds = 2
	cases := []struct {
		method string
		fleet  string
	}{
		{experiments.MethodBaseline, "heterogeneous"},
		{experiments.MethodFedProto, "proto"},
		{experiments.MethodKTpFL, "heterogeneous"},
		{experiments.MethodProposed, "heterogeneous"},
		{experiments.MethodFedAvg, "homogeneous"},
		{experiments.MethodFedProx, "homogeneous"},
		{experiments.MethodKTpFLWeight, "homogeneous"},
		{experiments.MethodProposedWeight, "homogeneous"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, tc.fleet, s.Clients, s)
			if err != nil {
				t.Fatal(err)
			}
			tr := transport.NewInproc(transport.Options{})
			hist, err := experiments.RunNodes(ctx, tc.method, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64}, tr, "srv")
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != s.Rounds {
				t.Fatalf("history has %d points, want %d", len(hist), s.Rounds)
			}
			fin := experiments.Final(hist)
			if fin.MeanAcc < 0 || fin.MeanAcc > 1 {
				t.Fatalf("accuracy out of range: %v", fin.MeanAcc)
			}
			if fin.UpBytes < 0 || fin.DownBytes <= 0 {
				t.Fatalf("traffic accounting missing: up %d down %d", fin.UpBytes, fin.DownBytes)
			}
		})
	}
}

// countingListener wraps a transport listener so the test can observe the
// server's true wire traffic independently of the ledger.
type countingListener struct {
	transport.Listener
	up, down *int64
}

func (l *countingListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	hsSent, hsRecv := c.HandshakeBytes()
	atomic.AddInt64(l.down, hsSent)
	atomic.AddInt64(l.up, hsRecv)
	return &countingConn{Conn: c, up: l.up, down: l.down}, nil
}

type countingConn struct {
	transport.Conn
	up, down *int64
}

func (c *countingConn) Send(frame []byte) (int64, error) {
	n, err := c.Conn.Send(frame)
	if err == nil {
		// The ledger books only completed sends; a torn write on a dying
		// connection still reports partial bytes alongside its error.
		atomic.AddInt64(c.down, n)
	}
	return n, err
}

func (c *countingConn) Recv() ([]byte, int64, error) {
	b, n, err := c.Conn.Recv()
	if err == nil {
		atomic.AddInt64(c.up, n)
	}
	return b, n, err
}

// TestNodeLedgerMatchesWireBytes is the accounting regression test: over
// real TCP sockets, the server ledger's totals must equal the bytes that
// actually crossed the server's connections — message frames, transport
// length prefixes AND handshakes — as counted by an instrumented listener.
func TestNodeLedgerMatchesWireBytes(t *testing.T) {
	s := nodeScale()
	s.Rounds = 2
	k := 3
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", k, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewTCP(transport.Options{})
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var up, down int64
	counted := &countingListener{Listener: ln, up: &up, down: &down}

	algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	srv := fl.NewServerNode(algo, experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, k))
	clientErr := make(chan error, k)
	for i := 0; i < k; i++ {
		go func(id int) {
			clientErr <- experiments.RunClientNode(ctx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, ln.Addr())
		}(i)
	}
	if _, err := srv.Serve(ctx, counted); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := <-clientErr; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Ledger.TotalUp(); got != atomic.LoadInt64(&up) {
		t.Fatalf("ledger uplink %d bytes, wire carried %d", got, up)
	}
	if got := srv.Ledger.TotalDown(); got != atomic.LoadInt64(&down) {
		t.Fatalf("ledger downlink %d bytes, wire carried %d", got, down)
	}
	if up == 0 || down == 0 {
		t.Fatal("no traffic counted")
	}
}

// dyingConn kills the connection after a fixed number of received frames,
// simulating a client process dying mid-federation.
type dyingConn struct {
	transport.Conn
	left int
}

func (c *dyingConn) Recv() ([]byte, int64, error) {
	if c.left <= 0 {
		c.Conn.Close()
		return nil, 0, io.EOF
	}
	c.left--
	return c.Conn.Recv()
}

// TestNodeClientDeathChurn kills one of three clients after it has seen
// the welcome and one dispatch; the federation must finish every round
// with the survivors and report the dead client as NaN in PerClient.
func TestNodeClientDeathChurn(t *testing.T) {
	s := nodeScale()
	k := 3
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", k, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	ln, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, k)
	// A dead client without a reconnect attempt should degrade to churn
	// quickly; the defaults are sized for real deployments.
	cfg.Heartbeat = 20 * time.Millisecond
	cfg.DeadAfter = 200 * time.Millisecond
	cfg.ReconnectWindow = 300 * time.Millisecond
	srv := fl.NewServerNode(algo, cfg)

	survErr := make(chan error, k-1)
	for i := 0; i < k-1; i++ {
		go func(id int) {
			survErr <- experiments.RunClientNode(ctx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, "srv")
		}(i)
	}
	// The doomed client joins normally but its connection dies after two
	// received frames (welcome + round-1 dispatch).
	calgo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial(ctx, "srv")
	if err != nil {
		t.Fatal(err)
	}
	doomedErr := make(chan error, 1)
	go func() {
		node := &fl.ClientNode{Client: build(k - 1), Algo: calgo}
		doomedErr <- node.Run(ctx, &dyingConn{Conn: conn, left: 2})
	}()

	hist, err := srv.Serve(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k-1; i++ {
		if err := <-survErr; err != nil {
			t.Errorf("surviving client: %v", err)
		}
	}
	if err := <-doomedErr; err == nil {
		t.Error("doomed client finished cleanly")
	}
	if srv.Stats.Churned != 1 {
		t.Errorf("server churned %d sessions, want 1", srv.Stats.Churned)
	}
	if len(hist) != s.Rounds {
		t.Fatalf("churned federation produced %d evaluation points, want %d", len(hist), s.Rounds)
	}
	last := hist[len(hist)-1]
	if !math.IsNaN(last.PerClient[k-1]) {
		t.Fatalf("dead client %d still has accuracy %v", k-1, last.PerClient[k-1])
	}
	for i := 0; i < k-1; i++ {
		if math.IsNaN(last.PerClient[i]) {
			t.Fatalf("surviving client %d has no accuracy", i)
		}
	}
	if last.MeanAcc < 0 || last.MeanAcc > 1 {
		t.Fatalf("mean accuracy out of range: %v", last.MeanAcc)
	}
}

// TestServerNodeCancel cancels the context while the server is still
// waiting for joins; Serve must return promptly with the context error.
func TestServerNodeCancel(t *testing.T) {
	s := nodeScale()
	tr := transport.NewInproc(transport.Options{})
	ln, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	srv := fl.NewServerNode(algo, experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, 2))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx, ln)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Serve returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}
