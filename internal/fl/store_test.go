package fl

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/xrand"
)

// lazyTestBuilder returns a builder that constructs client i as a pure
// function of i — the contract NewLazySimulation requires — over a lazily
// partitioned synthetic dataset.
func lazyTestBuilder(t *testing.T, k int) func(int) *Client {
	t.Helper()
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	lp, err := data.NewLazyPartitioner(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return func(i int) *Client {
		part := lp.Client(i)
		m := models.New(models.Config{
			Arch: models.ArchMLP, InC: 1, InH: 12, InW: 12, FeatDim: 8, NumClasses: 10, Hidden: 16,
		}, xrand.New(int64(i+1)))
		rng, src := xrand.NewRand(int64(i) * 7919)
		return &Client{
			ID: i, Model: m, Train: part.Train, Test: part.Test,
			Aug:       data.NewAugmenter(1, 12, 12),
			Rng:       rng,
			Src:       src,
			Optimizer: opt.NewAdam(0.01),
		}
	}
}

// trainAlgo trains each participant for one epoch — under any scheduler —
// so client state actually mutates between spill cycles.
type trainAlgo struct{}

func (a *trainAlgo) Name() string                { return "train" }
func (a *trainAlgo) EpochsPerRound() int         { return 1 }
func (a *trainAlgo) Setup(sim *Simulation) error { return nil }
func (a *trainAlgo) Round(sim *Simulation, round int, participants []int) error {
	ParallelClients(len(participants), func(idx int) {
		sim.Client(participants[idx]).TrainEpochCE(sim.Cfg.BatchSize)
	})
	return nil
}
func (a *trainAlgo) AsyncSetup(sim *Simulation, sched *SchedulerConfig) error { return nil }
func (a *trainAlgo) AsyncDispatch(sim *Simulation, client int) error          { return nil }
func (a *trainAlgo) AsyncLocal(sim *Simulation, client int) (*Update, error) {
	sim.Client(client).TrainEpochCE(sim.Cfg.BatchSize)
	return &Update{Client: client}, nil
}
func (a *trainAlgo) AsyncApply(sim *Simulation, u *Update) error { return nil }
func (a *trainAlgo) AsyncCommit(sim *Simulation) error           { return nil }
func (a *trainAlgo) AlgoSnapshot(sim *Simulation) (*AlgoState, error) {
	return &AlgoState{}, nil
}
func (a *trainAlgo) AlgoRestore(sim *Simulation, st *AlgoState) error { return nil }

func TestSamplePrefixDrawsDistinctInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, n = 1000000, 40
	got := SamplePrefix(rng, k, n)
	if len(got) != n {
		t.Fatalf("drew %d ids, want %d", len(got), n)
	}
	seen := make(map[int]bool, n)
	for _, id := range got {
		if id < 0 || id >= k {
			t.Fatalf("id %d out of [0,%d)", id, k)
		}
		if seen[id] {
			t.Fatalf("id %d drawn twice", id)
		}
		seen[id] = true
	}
	// Same seed, same draw.
	again := SamplePrefix(rand.New(rand.NewSource(7)), k, n)
	if !reflect.DeepEqual(got, again) {
		t.Fatal("same seed produced different samples")
	}
	// Edge cases: n > k clamps, n <= 0 is empty.
	if got := SamplePrefix(rng, 3, 10); len(got) != 3 {
		t.Fatalf("n>k drew %d ids, want 3", len(got))
	}
	if got := SamplePrefix(rng, 3, 0); len(got) != 0 {
		t.Fatalf("n=0 drew %d ids", len(got))
	}
}

// SamplePrefix must produce exactly the first n slots of a full
// Fisher–Yates shuffle of the same stream — the property that makes the
// O(n) sampler a drop-in for small fleets and the basis of its uniformity.
func TestSamplePrefixMatchesFullShuffle(t *testing.T) {
	const k, n = 53, 17
	got := SamplePrefix(rand.New(rand.NewSource(21)), k, n)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < n; i++ {
		j := i + rng.Intn(k-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if !reflect.DeepEqual(got, perm[:n]) {
		t.Fatalf("prefix %v differs from full shuffle %v", got, perm[:n])
	}
}

func TestSampleCohortAscendingAndDeterministic(t *testing.T) {
	draw := func() []int {
		return SampleCohort(rand.New(rand.NewSource(5)), 100000, 0.0002, 0)
	}
	a, b := draw(), draw()
	if len(a) != 20 {
		t.Fatalf("cohort of %d, want ⌈100000·0.0002⌉ = 20", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("cohort not ascending: %v", a)
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different cohorts")
	}
}

// At rate·N ≪ N, draws must range over the whole id space, not cluster at
// the front — the failure mode of a truncated-permutation sampler.
func TestSampleCohortDistributionSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 100000
	max, rounds := 0, 50
	for r := 0; r < rounds; r++ {
		for _, id := range SampleCohort(rng, k, 0.0001, 0) {
			if id > max {
				max = id
			}
		}
	}
	// 500 uniform draws: P(all below k/2) = 2^-500.
	if max < k/2 {
		t.Fatalf("500 draws never exceeded id %d of %d — sampler is not uniform over the fleet", max, k)
	}
}

func TestSampleCohortDropProb(t *testing.T) {
	full := SampleCohort(rand.New(rand.NewSource(9)), 50, 0.8, 0)
	dropped := SampleCohort(rand.New(rand.NewSource(9)), 50, 0.8, 0.5)
	if len(dropped) >= len(full) {
		t.Fatalf("drop probability 0.5 kept %d of %d over repeated rounds", len(dropped), len(full))
	}
	// The kept cohort is an ascending subset of the drop-free draw: failure
	// injection consumes its own draws after sampling, never perturbing
	// which clients were picked.
	j := 0
	for _, id := range dropped {
		for j < len(full) && full[j] != id {
			j++
		}
		if j == len(full) {
			t.Fatalf("kept id %d was never picked: full %v, kept %v", id, full, dropped)
		}
	}
}

func TestMeanStdNaN(t *testing.T) {
	nan := math.NaN()
	if m, s := MeanStd([]float64{nan, nan, nan}); m != 0 || s != 0 {
		t.Fatalf("all-NaN MeanStd = %v, %v, want 0, 0", m, s)
	}
	// Mixed: NaN entries are excluded from both moments.
	m, s := MeanStd([]float64{1, nan, 2, 3, nan, 4})
	wantM, wantS := MeanStd([]float64{1, 2, 3, 4})
	if m != wantM || s != wantS {
		t.Fatalf("mixed MeanStd = %v, %v, want %v, %v", m, s, wantM, wantS)
	}
	if math.IsNaN(m) || math.IsNaN(s) {
		t.Fatal("NaN leaked into the moments")
	}
}

// Evicting a trained client and rehydrating it must reproduce its state
// bit for bit: parameters, buffers, RNG position and optimizer moments.
func TestClientStoreEvictRehydrateBitIdentical(t *testing.T) {
	build := lazyTestBuilder(t, 8)
	st := NewClientStore(8, build, 2)

	c := st.Get(3)
	c.TrainEpochCE(8)
	before, err := captureClientState(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Touch enough other clients to push 3 out, twice over, exercising the
	// buffer pool's recycle path.
	for _, id := range []int{0, 1, 2, 4, 5} {
		st.Get(id)
		if err := st.EvictToBudget(nil); err != nil {
			t.Fatal(err)
		}
	}
	if st.Resident() > 2 {
		t.Fatalf("%d clients resident over budget 2", st.Resident())
	}

	re := st.Get(3)
	if re == c {
		t.Fatal("client 3 was never evicted — test exercises nothing")
	}
	after, err := captureClientState(re, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("rehydrated client state differs from its pre-eviction state")
	}

	// And it keeps training identically: one more epoch on the rehydrated
	// client matches one more epoch on a never-evicted twin.
	twinStore := NewClientStore(8, build, 0)
	twin := twinStore.Get(3)
	twin.TrainEpochCE(8)
	lossA := re.TrainEpochCE(8)
	lossB := twin.TrainEpochCE(8)
	if lossA != lossB {
		t.Fatalf("post-rehydration training diverged: %g vs %g", lossA, lossB)
	}
}

// The determinism contract of the lazy fleet: any finite resident budget
// produces byte-identical metrics and trace to the unbounded run, under
// every scheduler.
func TestLazyBudgetByteIdentity(t *testing.T) {
	kinds := []struct {
		name string
		kind SchedulerKind
	}{
		{"sync", SchedSync},
		{"async", SchedAsyncBounded},
		{"semisync", SchedSemiSync},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			run := func(resident int) ([]RoundMetrics, *Trace) {
				tr := &Trace{}
				sim := NewLazySimulation(12, lazyTestBuilder(t, 12), resident, Config{
					Rounds: 4, SampleRate: 0.5, BatchSize: 8, Seed: 11,
				})
				hist, err := sim.RunScheduled(&trainAlgo{}, SchedulerConfig{Kind: tc.kind, Trace: tr})
				if err != nil {
					t.Fatal(err)
				}
				return hist, tr
			}
			unbounded, trU := run(0)
			budgeted, trB := run(2)
			if !reflect.DeepEqual(trU, trB) {
				t.Fatal("budget 2 produced a different scheduler trace than budget ∞")
			}
			if !reflect.DeepEqual(unbounded, budgeted) {
				t.Fatalf("budget 2 produced different metrics than budget ∞:\n%+v\nvs\n%+v", budgeted, unbounded)
			}
		})
	}
}

// A budgeted lazy run must checkpoint and resume byte-identically, with the
// checkpoint holding only the touched clients.
func TestLazySnapshotResumeByteIdentical(t *testing.T) {
	const k, rounds, killAt = 12, 4, 2
	sched := func() SchedulerConfig {
		return SchedulerConfig{Kind: SchedSync, Trace: &Trace{}}
	}
	newSim := func() *Simulation {
		return NewLazySimulation(k, lazyTestBuilder(t, k), 2, Config{
			Rounds: rounds, SampleRate: 0.5, BatchSize: 8, Seed: 11,
		})
	}

	// Uninterrupted run, snapshotting at every boundary.
	var atKill *Snapshot
	full := sched()
	full.Checkpoint = func(snap *Snapshot) error {
		if snap.Round == killAt {
			atKill = snap
		}
		return nil
	}
	wantHist, err := newSim().RunScheduled(&trainAlgo{}, full)
	if err != nil {
		t.Fatal(err)
	}
	if atKill == nil {
		t.Fatalf("no snapshot at round %d", killAt)
	}
	if atKill.FleetSize != k {
		t.Fatalf("snapshot fleet size %d, want %d", atKill.FleetSize, k)
	}
	if len(atKill.Clients) >= k {
		t.Fatalf("lazy snapshot holds %d clients — it must hold only the touched subset of %d", len(atKill.Clients), k)
	}

	// Resume from the mid-run snapshot and compare the full history.
	res := sched()
	res.Resume = atKill
	gotHist, err := newSim().RunScheduled(&trainAlgo{}, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantHist, gotHist) {
		t.Fatalf("resumed history differs:\n%+v\nvs\n%+v", gotHist, wantHist)
	}
	if !reflect.DeepEqual(full.Trace, res.Trace) {
		t.Fatal("resumed trace differs from the uninterrupted one")
	}
}

// Churned clients appear as NaN in PerClient and are excluded from the
// mean — the inproc engine's evaluation must match the node runtime's
// semantics (DESIGN.md §9).
func TestEvaluateChurnExclusion(t *testing.T) {
	clients := testFleet(t, 4)
	sim := NewSimulation(clients, Config{Rounds: 1, Seed: 1})
	away := []float64{0, 5, 0, 5} // clients 1 and 3 away past now=1
	m := sim.evaluateWith(away, 1)
	if len(m.PerClient) != 4 {
		t.Fatalf("PerClient has %d entries", len(m.PerClient))
	}
	if !math.IsNaN(m.PerClient[1]) || !math.IsNaN(m.PerClient[3]) {
		t.Fatalf("away clients not NaN: %v", m.PerClient)
	}
	wantMean, wantStd := MeanStd([]float64{m.PerClient[0], m.PerClient[2]})
	if m.MeanAcc != wantMean || m.StdAcc != wantStd {
		t.Fatalf("churned clients leaked into the moments: got %v ± %v, want %v ± %v",
			m.MeanAcc, m.StdAcc, wantMean, wantStd)
	}
	// Zero churn: identical to the churn-free evaluation, byte for byte.
	clean := sim.evaluateWith(make([]float64, 4), 1)
	plain := sim.Evaluate()
	if !reflect.DeepEqual(clean, plain) {
		t.Fatal("zero-churn evaluation differs from the churn-free path")
	}
}

// Sampled evaluation draws from its own RNG stream: it must not perturb
// cohort sampling, and the sample must be recorded in EvalIDs.
func TestEvalSampleStreamIsolated(t *testing.T) {
	cohorts := func(evalSample int) [][]int {
		sim := NewLazySimulation(20, lazyTestBuilder(t, 20), 0, Config{
			Rounds: 3, SampleRate: 0.25, BatchSize: 8, Seed: 11, EvalSample: evalSample,
		})
		var got [][]int
		for r := 0; r < 3; r++ {
			got = append(got, sim.sampleParticipants())
			m := sim.Evaluate()
			if evalSample > 0 {
				if len(m.EvalIDs) != evalSample || len(m.PerClient) != evalSample {
					t.Fatalf("eval sampled %d ids, %d accs; want %d", len(m.EvalIDs), len(m.PerClient), evalSample)
				}
			}
		}
		return got
	}
	if !reflect.DeepEqual(cohorts(3), cohorts(5)) {
		t.Fatal("changing EvalSample perturbed the cohort sampling stream")
	}
}
