package fl

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// This file is the checkpoint side of the federation engine: a Snapshot is
// the complete, serializable state of a run at a commit boundary — enough
// that a process killed immediately afterwards can be restarted and replay
// the remaining rounds byte-identically (metrics and scheduler trace) to an
// uninterrupted run at the same seed.
//
// What a boundary snapshot holds, and why it suffices:
//
//   - The scheduler: committed round, virtual clock, dispatch sequence
//     number, per-node busy times, idle/away flags, and every in-flight
//     update. In-flight local training is quiesced first, so each flight is
//     stored with its *computed* result; recomputation is never needed and
//     the result equals what the uninterrupted run would have delivered,
//     because AsyncLocal consumes only client-local state and its
//     dispatch-time snapshot.
//   - The RNG streams: the simulation's sampling stream plus every
//     client's private stream (augmentation, batch shuffling), captured
//     through the serializable xrand sources.
//   - Every client: flattened parameters, non-trainable buffers
//     (batch-norm running statistics) and optimizer state.
//   - The algorithm's server state, via CheckpointableAlgorithm.
//   - The traffic ledger, metrics history and trace so far.
//
// Per-client dispatch snapshots held by algorithms (proximal references,
// staged KT-pFL transfers) are deliberately NOT captured: after the
// quiesce, every dispatched local update has already consumed them, and the
// next dispatch overwrites them before their next read.

// ClientState is one client's checkpointed state.
type ClientState struct {
	ID int
	// Params is the model's flat parameter vector (nn.FlattenParams).
	Params []float64
	// Buffers is the model's flat non-trainable state (batch-norm running
	// statistics; nn.FlattenBuffers).
	Buffers []float64
	// Rng is the client's serializable RNG position.
	Rng uint64
	// Opt is the optimizer state (Adam moments, SGD velocity).
	Opt opt.State
}

// FlightState is one quiesced in-flight update: the dispatch bookkeeping
// plus the computed result awaiting virtual-time delivery.
type FlightState struct {
	Client  int
	Version int
	Seq     int
	VTime   float64
	Update  *Update
}

// AlgoState is the generic serializable container for algorithm server
// state. Each algorithm documents its own layout; nil entries of Vecs are
// preserved (FedProto uses them for never-reported classes).
type AlgoState struct {
	Ints []int64
	Vecs [][]float64
}

// CheckpointableAlgorithm is implemented by algorithms whose server state
// can be captured into a Snapshot and restored into a freshly constructed
// (Setup/AsyncSetup-completed) instance.
type CheckpointableAlgorithm interface {
	Algorithm
	// AlgoSnapshot captures the algorithm's server state. It runs on the
	// engine goroutine at a commit boundary, after in-flight local updates
	// have quiesced.
	AlgoSnapshot(sim *Simulation) (*AlgoState, error)
	// AlgoRestore overwrites the algorithm's server state from a snapshot.
	// Setup (and AsyncSetup, under async schedulers) has already run.
	AlgoRestore(sim *Simulation, st *AlgoState) error
}

// SessionState is one wire client's checkpointed session: the identity
// the server will honor across its own restart. Tokens are stable across
// a resume, so a client that outlives a crashed server reconnects with
// the token it already holds.
type SessionState struct {
	ID      int
	Token   uint64
	Churned bool
}

// Snapshot is the full federation state at a commit boundary.
type Snapshot struct {
	Kind    SchedulerKind
	Round   int     // committed rounds so far
	Now     float64 // virtual clock
	Seq     int     // dispatch sequence counter (async)
	Applied int     // applies since the last commit (async)
	Rng     uint64  // simulation sampling stream position
	EvalRng uint64  // sampled-evaluation stream position
	// FleetSize is the virtual fleet size. For a lazy fleet Clients holds
	// only the touched (ever-materialized) clients, so the resume-time
	// size check needs the fleet size recorded independently.
	FleetSize int
	// DType is the model element type the run trained in. Flat vectors in a
	// snapshot are always float64 bookkeeping (f32 values widen exactly),
	// but restoring into a fleet of a different dtype would silently change
	// the numerics, so resume rejects mismatches.
	DType tensor.DType

	NodeFree []float64 // virtual node busy times (async)
	Idle     []bool    // per-client idle flags (async)
	Away     []float64 // per-client churn rejoin times

	Flights []FlightState // quiesced in-flight updates, in dispatch order

	History []RoundMetrics
	Trace   []TraceEvent
	Ledger  comm.LedgerState
	Clients []ClientState
	Algo    *AlgoState

	// Node-mode (ServerNode) state. A server checkpoint has no ClientState
	// — client models live in other processes — but must preserve the
	// session table and the join-time declarations so a restarted server
	// can rebuild its algorithm state via WireSetup and honor reconnecting
	// clients' tokens.
	Sessions []SessionState
	Joins    []WireJoin
}

// cloneJoins deep-copies join declarations (their init payloads alias
// live state otherwise).
func cloneJoins(joins []WireJoin) []WireJoin {
	out := append([]WireJoin(nil), joins...)
	for i := range out {
		if joins[i].Init != nil {
			out[i].Init = make([][]float64, len(joins[i].Init))
			for j, v := range joins[i].Init {
				out[i].Init[j] = CloneVec(v)
			}
		}
	}
	return out
}

// CloneVec returns a nil-preserving copy of a float vector; algorithms use
// it to build and unpack AlgoState layouts.
func CloneVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}

// clone deep-copies an update so a snapshot cannot alias live engine state.
func (u *Update) clone() *Update {
	c := *u
	if u.Vecs != nil {
		c.Vecs = make([][]float64, len(u.Vecs))
		for i, v := range u.Vecs {
			c.Vecs[i] = CloneVec(v)
		}
	}
	if u.Counts != nil {
		c.Counts = append([]int(nil), u.Counts...)
	}
	return &c
}

func cloneHistory(hist []RoundMetrics) []RoundMetrics {
	out := append([]RoundMetrics(nil), hist...)
	for i := range out {
		out[i].PerClient = append([]float64(nil), hist[i].PerClient...)
		if hist[i].EvalIDs != nil {
			out[i].EvalIDs = append([]int(nil), hist[i].EvalIDs...)
		}
	}
	return out
}

// captureClientState freezes one client's mutable state — flat parameters,
// batch-norm buffers, RNG position and optimizer moments — into the
// compact buffer format both checkpoints and the lazy store's spill path
// use. The flat vectors are appended to the (cap-reused, length-reset)
// slices passed in, so spill cycles can recycle buffers.
func captureClientState(c *Client, params, buffers []float64) (ClientState, error) {
	if c.Src == nil {
		return ClientState{}, fmt.Errorf("fl: client %d has no serializable RNG (set fl.Client.Src via xrand.NewRand)", c.ID)
	}
	cs := ClientState{ID: c.ID, Rng: c.Src.State()}
	if c.Model != nil {
		cs.Params = nn.AppendFlatParams(params[:0], c.Model.Params())
		cs.Buffers = nn.AppendFlatBuffers(buffers[:0], c.Model.Buffers())
	}
	if c.Optimizer != nil {
		co, ok := c.Optimizer.(opt.Checkpointable)
		if !ok {
			return ClientState{}, fmt.Errorf("fl: client %d optimizer cannot be checkpointed (implement opt.Checkpointable)", c.ID)
		}
		cs.Opt = co.State()
	}
	return cs, nil
}

// restoreClientState is the inverse of captureClientState; the client's
// model/optimizer must already exist (restore copies into them, so the
// source buffers may be recycled afterwards).
func restoreClientState(c *Client, cs *ClientState) error {
	if c.ID != cs.ID {
		return fmt.Errorf("fl: state for client %d restored into client %d", cs.ID, c.ID)
	}
	if c.Src == nil {
		return fmt.Errorf("fl: client %d has no serializable RNG (set fl.Client.Src via xrand.NewRand)", c.ID)
	}
	c.Src.SetState(cs.Rng)
	if c.Model != nil {
		if err := nn.SetFlatParams(c.Model.Params(), cs.Params); err != nil {
			return fmt.Errorf("fl: restoring client %d parameters: %w", c.ID, err)
		}
		if err := nn.SetFlatBuffers(c.Model.Buffers(), cs.Buffers); err != nil {
			return fmt.Errorf("fl: restoring client %d buffers: %w", c.ID, err)
		}
	}
	if c.Optimizer != nil {
		co, ok := c.Optimizer.(opt.Checkpointable)
		if !ok {
			return fmt.Errorf("fl: client %d optimizer cannot be restored (implement opt.Checkpointable)", c.ID)
		}
		if err := co.SetState(cs.Opt); err != nil {
			return fmt.Errorf("fl: restoring client %d optimizer: %w", c.ID, err)
		}
	}
	return nil
}

// captureCommon fills the scheduler-independent parts of a snapshot: RNG
// streams, clients, algorithm state, ledger, history and trace.
func (s *Simulation) captureCommon(snap *Snapshot, algo Algorithm, sched *SchedulerConfig) error {
	ca, ok := algo.(CheckpointableAlgorithm)
	if !ok {
		return fmt.Errorf("fl: %s cannot be checkpointed (implement fl.CheckpointableAlgorithm)", algo.Name())
	}
	if s.src == nil {
		return fmt.Errorf("fl: simulation has no serializable RNG (use fl.NewSimulation)")
	}
	st, err := ca.AlgoSnapshot(s)
	if err != nil {
		return fmt.Errorf("fl: %s state snapshot: %w", algo.Name(), err)
	}
	snap.Algo = st
	snap.Rng = s.src.State()
	if s.evalSrc != nil {
		snap.EvalRng = s.evalSrc.State()
	}
	snap.FleetSize = s.NumClients()
	if s.store != nil {
		if c := s.Client(0); c.Model != nil {
			snap.DType = c.Model.DType()
		}
	} else {
		for _, c := range s.Clients {
			if c.Model != nil {
				snap.DType = c.Model.DType()
				break
			}
		}
	}
	snap.History = cloneHistory(s.History)
	if sched.Trace != nil {
		snap.Trace = append([]TraceEvent(nil), sched.Trace.Events...)
	}
	snap.Ledger = s.Ledger.Snapshot()
	if s.store != nil {
		// A lazy fleet checkpoints only the touched clients; everyone else is
		// reproduced exactly by the builder.
		states, err := s.store.CaptureTouched()
		if err != nil {
			return err
		}
		snap.Clients = states
		return nil
	}
	snap.Clients = make([]ClientState, len(s.Clients))
	for i, c := range s.Clients {
		cs, err := captureClientState(c, nil, nil)
		if err != nil {
			return err
		}
		snap.Clients[i] = cs
	}
	return nil
}

// restoreCommon is the inverse of captureCommon, overwriting simulation,
// client and algorithm state from a snapshot.
func (s *Simulation) restoreCommon(snap *Snapshot, algo Algorithm, sched *SchedulerConfig) error {
	ca, ok := algo.(CheckpointableAlgorithm)
	if !ok {
		return fmt.Errorf("fl: %s cannot restore a checkpoint (implement fl.CheckpointableAlgorithm)", algo.Name())
	}
	if s.src == nil {
		return fmt.Errorf("fl: simulation has no serializable RNG (use fl.NewSimulation)")
	}
	if s.store != nil {
		if snap.FleetSize != s.store.Len() {
			return fmt.Errorf("fl: checkpoint has a %d-client fleet, simulation has %d", snap.FleetSize, s.store.Len())
		}
		if c := s.Client(0); c.Model != nil && c.Model.DType() != snap.DType {
			return fmt.Errorf("fl: checkpoint was taken at dtype %s, fleet is %s (resume with the same -dtype)",
				snap.DType, c.Model.DType())
		}
	} else {
		if len(snap.Clients) != len(s.Clients) {
			return fmt.Errorf("fl: checkpoint has %d clients, simulation has %d", len(snap.Clients), len(s.Clients))
		}
		for _, c := range s.Clients {
			if c.Model != nil && c.Model.DType() != snap.DType {
				return fmt.Errorf("fl: checkpoint was taken at dtype %s, fleet is %s (resume with the same -dtype)",
					snap.DType, c.Model.DType())
			}
		}
	}
	s.src.SetState(snap.Rng)
	if s.evalSrc != nil {
		s.evalSrc.SetState(snap.EvalRng)
	}
	s.History = cloneHistory(snap.History)
	s.Ledger.Restore(snap.Ledger)
	if sched.Trace != nil {
		sched.Trace.Events = append(sched.Trace.Events[:0], snap.Trace...)
	}
	if s.store != nil {
		if err := s.store.RestoreTouched(snap.Clients); err != nil {
			return err
		}
	} else {
		for i := range snap.Clients {
			if err := restoreClientState(s.Clients[i], &snap.Clients[i]); err != nil {
				return err
			}
		}
	}
	if snap.Algo != nil {
		if err := ca.AlgoRestore(s, snap.Algo); err != nil {
			return fmt.Errorf("fl: %s state restore: %w", algo.Name(), err)
		}
	}
	return nil
}

// Snapshot captures the full engine state at the current commit boundary.
// It quiesces in-flight local updates (forcing their eager computation,
// which never changes results — each consumes only client-local state fixed
// at dispatch) and stores them with their computed payloads.
func (e *Engine) Snapshot() (*Snapshot, error) {
	e.quiesce()
	snap := &Snapshot{
		Kind:     e.sched.Kind,
		Round:    e.version,
		Now:      e.now,
		Seq:      e.seq,
		Applied:  e.applied,
		NodeFree: append([]float64(nil), e.nodeFree...),
		Idle:     append([]bool(nil), e.idle...),
		Away:     append([]float64(nil), e.away...),
	}
	flights := append(flightHeap(nil), e.heap...)
	sort.Slice(flights, func(a, b int) bool { return flights[a].seq < flights[b].seq })
	for _, f := range flights {
		if f.res == nil {
			return nil, fmt.Errorf("fl: checkpoint: client %d still in flight after quiesce", f.client)
		}
		if f.res.err != nil {
			return nil, fmt.Errorf("fl: checkpoint: client %d failed: %w", f.client, f.res.err)
		}
		snap.Flights = append(snap.Flights, FlightState{
			Client:  f.client,
			Version: f.version,
			Seq:     f.seq,
			VTime:   f.vtime,
			Update:  f.res.u.clone(),
		})
	}
	if err := e.sim.captureCommon(snap, e.algo, e.sched); err != nil {
		return nil, err
	}
	return snap, nil
}

// Restore overwrites the engine with a snapshot taken at a commit boundary
// under the same scheduler configuration; the run then continues exactly
// where the checkpointed one stopped.
func (e *Engine) Restore(snap *Snapshot) error {
	k := len(e.idle)
	if snap.Kind != e.sched.Kind {
		return fmt.Errorf("fl: cannot resume a %s checkpoint under the %s scheduler", snap.Kind, e.sched.Kind)
	}
	if snap.Round > e.sim.Cfg.Rounds {
		return fmt.Errorf("fl: checkpoint at round %d is past the configured %d rounds", snap.Round, e.sim.Cfg.Rounds)
	}
	if len(snap.Idle) != k {
		return fmt.Errorf("fl: checkpoint has %d clients' scheduler flags, simulation has %d", len(snap.Idle), k)
	}
	if len(snap.NodeFree) != len(e.nodeFree) {
		return fmt.Errorf("fl: checkpoint has %d virtual nodes, scheduler has %d (resume with the same workers setting)",
			len(snap.NodeFree), len(e.nodeFree))
	}
	if len(snap.Away) != k {
		return fmt.Errorf("fl: checkpoint has %d clients' churn state, simulation has %d", len(snap.Away), k)
	}
	if err := e.sim.restoreCommon(snap, e.algo, e.sched); err != nil {
		return err
	}
	e.version = snap.Round
	e.now = snap.Now
	e.seq = snap.Seq
	e.applied = snap.Applied
	copy(e.nodeFree, snap.NodeFree)
	copy(e.idle, snap.Idle)
	copy(e.away, snap.Away)
	e.heap = e.heap[:0]
	for i := range snap.Flights {
		fs := &snap.Flights[i]
		if fs.Client < 0 || fs.Client >= k {
			return fmt.Errorf("fl: checkpoint flight references client %d of %d", fs.Client, k)
		}
		if fs.Update == nil {
			return fmt.Errorf("fl: checkpoint flight for client %d has no result", fs.Client)
		}
		heap.Push(&e.heap, &flight{
			client:  fs.Client,
			version: fs.Version,
			vtime:   fs.VTime,
			seq:     fs.Seq,
			res:     &asyncResult{client: fs.Client, u: fs.Update.clone()},
		})
	}
	return nil
}
