package fl

import (
	"container/heap"
	"math"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// stubAsync is a communication-shaped no-op algorithm: every update carries
// one value so apply/commit bookkeeping is observable without training.
type stubAsync struct {
	applied int
	commits int
	weights []float64 // weights seen by AsyncApply, in order
}

func (s *stubAsync) Name() string                { return "stub" }
func (s *stubAsync) EpochsPerRound() int         { return 1 }
func (s *stubAsync) Setup(sim *Simulation) error { return nil }
func (s *stubAsync) Round(sim *Simulation, round int, participants []int) error {
	return nil
}
func (s *stubAsync) AsyncSetup(sim *Simulation, sched *SchedulerConfig) error { return nil }
func (s *stubAsync) AsyncDispatch(sim *Simulation, client int) error          { return nil }
func (s *stubAsync) AsyncLocal(sim *Simulation, client int) (*Update, error) {
	return &Update{Client: client, Scale: 1, Vecs: [][]float64{{1}}}, nil
}
func (s *stubAsync) AsyncApply(sim *Simulation, u *Update) error {
	s.applied++
	s.weights = append(s.weights, u.Weight)
	return nil
}
func (s *stubAsync) AsyncCommit(sim *Simulation) error {
	s.commits++
	return nil
}

func bareClients(k int) []*Client {
	clients := make([]*Client, k)
	for i := range clients {
		clients[i] = &Client{ID: i}
	}
	return clients
}

func TestAsyncEngineCommitsRounds(t *testing.T) {
	sim := NewSimulation(bareClients(4), Config{Rounds: 5, Seed: 3})
	algo := &stubAsync{}
	hist, err := sim.RunScheduled(algo, SchedulerConfig{Kind: SchedAsyncBounded})
	if err != nil {
		t.Fatal(err)
	}
	if algo.commits != 5 {
		t.Fatalf("commits %d, want 5", algo.commits)
	}
	if len(hist) != 5 {
		t.Fatalf("history %d entries", len(hist))
	}
	// Commit t folds ⌈K·rate⌉ = 4 updates.
	if algo.applied != 20 {
		t.Fatalf("applied %d updates, want 20", algo.applied)
	}
	for i, m := range hist {
		if m.Round != i+1 || m.SimTime <= 0 {
			t.Fatalf("metrics %+v", m)
		}
	}
}

func TestAsyncEngineIsDeterministic(t *testing.T) {
	run := func() (*Trace, []RoundMetrics, []float64) {
		sim := NewSimulation(bareClients(5), Config{Rounds: 6, Seed: 11, SampleRate: 0.6})
		algo := &stubAsync{}
		tr := &Trace{}
		hist, err := sim.RunScheduled(algo, SchedulerConfig{
			Kind:  SchedAsyncBounded,
			Costs: []float64{3, 1, 1, 2, 1},
			Decay: 0.5,
			Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, hist, algo.weights
	}
	tr1, h1, w1 := run()
	tr2, h2, w2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("same seed produced different event traces")
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same event trace produced different metrics")
	}
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("same event trace produced different apply weights")
	}
}

func TestAsyncStalenessWeightAndDrop(t *testing.T) {
	// One 10×-slow straggler among 4 clients on 4 nodes: its updates land
	// several commits stale. With MaxStaleness 1 some must be dropped, and
	// every applied weight must match 1/(1+α·s) ∈ {1, 1/(1+α)}.
	sim := NewSimulation(bareClients(4), Config{Rounds: 8, Seed: 2})
	algo := &stubAsync{}
	tr := &Trace{}
	sched := SchedulerConfig{
		Kind:         SchedAsyncBounded,
		Costs:        []float64{10, 1, 1, 1},
		MaxStaleness: 1,
		Decay:        1,
		Trace:        tr,
	}
	if _, err := sim.RunScheduled(algo, sched); err != nil {
		t.Fatal(err)
	}
	drops := 0
	for _, e := range tr.Events {
		if e.Kind == TraceDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("10x straggler with MaxStaleness 1 never dropped an update")
	}
	for _, w := range algo.weights {
		if w != 1 && w != 0.5 {
			t.Fatalf("apply weight %v not in {1, 1/2}", w)
		}
	}
}

func TestSemiSyncQuorumCommits(t *testing.T) {
	sim := NewSimulation(bareClients(6), Config{Rounds: 4, Seed: 7})
	algo := &stubAsync{}
	hist, err := sim.RunScheduled(algo, SchedulerConfig{
		Kind:   SchedSemiSync,
		Quorum: 4,
		Costs:  []float64{2, 1, 1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history %d entries", len(hist))
	}
	// Quorum 4 of 6: each round commits at the 4th delivery, so the 2×
	// straggler never gates a commit — virtual round duration stays 1.
	if got := hist[len(hist)-1].SimTime; got != 4 {
		t.Fatalf("semi-sync virtual time %v, want 4", got)
	}
}

// The headline scheduling claim: with a 2×-slow straggler and one virtual
// node per client, the async scheduler commits rounds ≥ 1.5× faster than
// the barrier, which pays the straggler's full cost every round.
func TestAsyncThroughputBeatsSyncWithStraggler(t *testing.T) {
	costs := []float64{2, 1, 1, 1, 1, 1}
	const rounds = 12
	runKind := func(kind SchedulerKind) float64 {
		sim := NewSimulation(bareClients(len(costs)), Config{Rounds: rounds, Seed: 5, EvalEvery: rounds})
		hist, err := sim.RunScheduled(&stubAsync{}, SchedulerConfig{Kind: kind, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		return hist[len(hist)-1].SimTime
	}
	syncT := runKind(SchedSync)
	asyncT := runKind(SchedAsyncBounded)
	if syncT != 2*rounds {
		t.Fatalf("sync virtual time %v, want %v (straggler gates every round)", syncT, 2*rounds)
	}
	ratio := syncT / asyncT
	if ratio < 1.5 {
		t.Fatalf("async round throughput only %.2fx sync (sync %v, async %v), want >= 1.5x", ratio, syncT, asyncT)
	}
	t.Logf("round throughput: async %.2fx sync (sync %.1f, async %.1f virtual units for %d rounds)", ratio, syncT, asyncT, rounds)
}

func TestRunScheduledRejectsNonAsyncAlgorithms(t *testing.T) {
	sim := NewSimulation(bareClients(2), Config{Rounds: 1, Seed: 1})
	if _, err := sim.RunScheduled(&countingAlgo{}, SchedulerConfig{Kind: SchedAsyncBounded}); err == nil {
		t.Fatal("sync-only algorithm must be rejected by the async scheduler")
	}
}

func TestParseScheduler(t *testing.T) {
	for s, want := range map[string]SchedulerKind{
		"sync": SchedSync, "": SchedSync,
		"async": SchedAsyncBounded, "async-bounded": SchedAsyncBounded,
		"semisync": SchedSemiSync, "k-of-n": SchedSemiSync,
	} {
		got, err := ParseScheduler(s)
		if err != nil || got != want {
			t.Fatalf("ParseScheduler(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScheduler("chaos"); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

func TestStalenessWeight(t *testing.T) {
	c := SchedulerConfig{Decay: 0.5}
	if w := c.StalenessWeight(0); w != 1 {
		t.Fatalf("fresh weight %v", w)
	}
	if w := c.StalenessWeight(2); math.Abs(w-0.5) > 1e-15 {
		t.Fatalf("stale weight %v, want 0.5", w)
	}
	if w := (&SchedulerConfig{}).StalenessWeight(5); w != 1 {
		t.Fatalf("no-decay weight %v", w)
	}
}

func TestSyncMakespan(t *testing.T) {
	sched := &SchedulerConfig{Workers: 2, Costs: []float64{3, 1, 1, 1}}
	// Greedy in id order on 2 nodes: [3] and [1,1,1] → makespan 3.
	if got := syncMakespan([]int{0, 1, 2, 3}, sched); got != 3 {
		t.Fatalf("makespan %v, want 3", got)
	}
	if got := syncMakespan(nil, sched); got != 0 {
		t.Fatalf("empty makespan %v", got)
	}
}

func TestShardedAccumulator(t *testing.T) {
	a := NewSharded(6, 3)
	a.Accumulate([]float64{1, 1, 2, 2, 3, 3}, 1)
	a.Accumulate([]float64{3, 3, 4, 4, 5, 5}, 3)
	dst := make([]float64, 6)
	a.CommitInto(dst, 1, nil)
	// Weighted mean: (1·v1 + 3·v2)/4.
	want := []float64{2.5, 2.5, 3.5, 3.5, 4.5, 4.5}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Accumulator reset: an empty commit leaves dst untouched.
	a.CommitInto(dst, 1, nil)
	if dst[0] != 2.5 {
		t.Fatal("empty commit must not touch dst")
	}
}

func TestShardedAccumulatorSegmentsAndMix(t *testing.T) {
	a := NewSegmented([]int{2, 2})
	a.AccumulateSegment(0, []float64{4, 4}, 2)
	dst := []float64{1, 1, 9, 9}
	touched := make([]bool, 2)
	a.CommitInto(dst, 0.5, touched)
	if !touched[0] || touched[1] {
		t.Fatalf("touched %v", touched)
	}
	// Segment 0 mixes 0.5·old + 0.5·mean; segment 1 untouched.
	if dst[0] != 2.5 || dst[1] != 2.5 || dst[2] != 9 || dst[3] != 9 {
		t.Fatalf("dst %v", dst)
	}
}

// Heavy churn must never terminate a run early: even when every live
// client is away and the lone rejoiner churns out again, the engine keeps
// advancing the virtual clock until all rounds commit.
func TestChurnHeavyStillCommitsAllRounds(t *testing.T) {
	const rounds = 12
	for _, kind := range []SchedulerKind{SchedAsyncBounded, SchedSemiSync} {
		sim := NewSimulation(bareClients(2), Config{Rounds: rounds, Seed: 13})
		algo := &stubAsync{}
		hist, err := sim.RunScheduled(algo, SchedulerConfig{
			Kind:        kind,
			LeaveProb:   0.9, // nearly every engagement churns out
			RejoinAfter: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(hist) != rounds {
			t.Fatalf("%v: heavy churn terminated after %d of %d rounds", kind, len(hist), rounds)
		}
	}
	// LeaveProb >= 1 must be clamped, not spin forever.
	sim := NewSimulation(bareClients(2), Config{Rounds: 3, Seed: 13})
	hist, err := sim.RunScheduled(&stubAsync{}, SchedulerConfig{Kind: SchedAsyncBounded, LeaveProb: 1})
	if err != nil || len(hist) != 3 {
		t.Fatalf("LeaveProb 1: %d rounds, err %v", len(hist), err)
	}
}

// A checkpoint taken on a box with one shard layout must restore onto
// another (the even split follows tensor.Workers()): uniform weights remap
// exactly, non-uniform segmented layouts must match or error.
func TestShardedAccumulatorRestoreAcrossLayouts(t *testing.T) {
	src := NewSharded(8, 8)
	vec := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	src.Accumulate(vec, 2)
	sum, wsum := src.Snapshot()

	dst := NewSharded(8, 2)
	if err := dst.RestoreState(sum, wsum); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 8)
	dst.CommitInto(out, 1, nil)
	for i, v := range vec {
		if math.Abs(out[i]-v) > 1e-12 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], v)
		}
	}

	// Non-uniform per-segment weights cannot remap.
	seg := NewSegmented([]int{2, 2})
	seg.AccumulateSegment(0, []float64{1, 1}, 1)
	seg.AccumulateSegment(1, []float64{2, 2}, 3)
	sSum, sW := seg.Snapshot()
	if err := NewSharded(4, 3).RestoreState(sSum, sW); err == nil {
		t.Fatal("non-uniform weights across a layout change must error")
	}
	// Same layout restores exactly.
	seg2 := NewSegmented([]int{2, 2})
	if err := seg2.RestoreState(sSum, sW); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 4)
	seg2.CommitInto(got, 1, nil)
	if got[0] != 1 || got[2] != 2 {
		t.Fatalf("segmented restore drifted: %v", got)
	}
	// Wrong element count always errors.
	if err := NewSharded(5, 1).RestoreState(sum, wsum); err == nil {
		t.Fatal("element-count mismatch must error")
	}
}

func TestShardedAccumulatorConcurrent(t *testing.T) {
	const n, folds = 1024, 64
	a := NewSharded(n, 8)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = float64(i%7) - 3
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for f := 0; f < folds/8; f++ {
				a.Accumulate(vec, 1)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	dst := make([]float64, n)
	a.CommitInto(dst, 1, nil)
	for i := range dst {
		if math.Abs(dst[i]-vec[i]) > 1e-9 {
			t.Fatalf("concurrent fold drifted at %d: %v vs %v", i, dst[i], vec[i])
		}
	}
}

// Steady-state allocation budgets for the new hot paths (the engine's event
// plumbing and the shard fold/merge), in the style of nn/alloc_test.go.

func shardDispatchBudget() float64 {
	// ParallelSharded costs the range closure, the loop closure and one
	// task closure per enlisted worker.
	return float64(4 + 2*tensor.Workers())
}

func TestShardAccumulateAllocs(t *testing.T) {
	a := NewSharded(4096, 8)
	vec := make([]float64, 4096)
	a.Accumulate(vec, 1) // warm up
	avg := testing.AllocsPerRun(50, func() {
		a.Accumulate(vec, 1)
	})
	if budget := shardDispatchBudget(); avg > budget {
		t.Fatalf("Accumulate allocates %.1f objects/op, want <= %.0f", avg, budget)
	}
}

func TestShardCommitAllocs(t *testing.T) {
	a := NewSharded(4096, 8)
	vec := make([]float64, 4096)
	dst := make([]float64, 4096)
	touched := make([]bool, a.Shards())
	avg := testing.AllocsPerRun(50, func() {
		a.Accumulate(vec, 1)
		a.CommitInto(dst, 1, touched)
	})
	if budget := 2 * shardDispatchBudget(); avg > budget {
		t.Fatalf("Accumulate+CommitInto allocates %.1f objects/op, want <= %.0f", avg, budget)
	}
}

func TestEventQueueDispatchAllocs(t *testing.T) {
	// One dispatch/delivery cycle: a flight pushed and popped on the heap
	// plus a result through the buffered queue. Budget: the flight, the
	// result copy filed in the arrived map, and interface boxing.
	queue := make(chan asyncResult, 8)
	arrived := make(map[int]*asyncResult, 8)
	var h flightHeap
	u := &Update{Client: 0, Scale: 1}
	heap.Push(&h, &flight{client: 0, vtime: 1}) // warm the heap's backing array
	heap.Pop(&h)
	avg := testing.AllocsPerRun(100, func() {
		ft := &flight{client: 0, vtime: 1}
		heap.Push(&h, ft)
		queue <- asyncResult{client: 0, u: u}
		r := <-queue
		arrived[r.client] = &r
		popped := heap.Pop(&h).(*flight)
		popped.res = arrived[popped.client]
		delete(arrived, popped.client)
	})
	if avg > 6 {
		t.Fatalf("event dispatch cycle allocates %.1f objects/op, want <= 6", avg)
	}
}
