// Sparse and delta wire-framing tests at the node and simulation level:
// ledger-vs-socket accounting, flat-vs-tree parity and the determinism and
// uplink-reduction contracts of the spec'd simulation paths.
package fl_test

import (
	"bytes"
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestNodeSparseLedgerMatchesWireBytes re-runs the accounting regression
// over real TCP sockets with sparse and delta framings negotiated in the
// handshake: the server ledger's totals must still equal the instrumented
// socket byte counts exactly — the ledger books the sparse frames the wire
// actually carried, not an element-count estimate.
func TestNodeSparseLedgerMatchesWireBytes(t *testing.T) {
	specs := []comm.Spec{
		comm.NewSpec(comm.F32, 0.25, false),
		comm.NewSpec(comm.I8, 0, true),
		comm.NewSpec(comm.F32, 0.25, true),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			s := nodeScale()
			s.Rounds = 2
			k := 3
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "homogeneous", k, s)
			if err != nil {
				t.Fatal(err)
			}
			tr := transport.NewTCP(transport.Options{Spec: spec})
			ln, err := tr.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			var up, down int64
			counted := &countingListener{Listener: ln, up: &up, down: &down}

			algo, err := experiments.WireAlgorithmFor(experiments.MethodFedAvg, experiments.Fashion, s)
			if err != nil {
				t.Fatal(err)
			}
			srv := fl.NewServerNode(algo, experiments.NodeConfigFor(s, 1.0, spec, k))
			clientErr := make(chan error, k)
			for i := 0; i < k; i++ {
				go func(id int) {
					clientErr <- experiments.RunClientNode(ctx, experiments.MethodFedAvg, experiments.Fashion, build, id, s, tr, ln.Addr())
				}(i)
			}
			if _, err := srv.Serve(ctx, counted); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := <-clientErr; err != nil {
					t.Fatal(err)
				}
			}
			if got := srv.Ledger.TotalUp(); got != atomic.LoadInt64(&up) {
				t.Fatalf("ledger uplink %d bytes, wire carried %d", got, up)
			}
			if got := srv.Ledger.TotalDown(); got != atomic.LoadInt64(&down) {
				t.Fatalf("ledger downlink %d bytes, wire carried %d", got, down)
			}
			if up == 0 || down == 0 {
				t.Fatal("no traffic counted")
			}
		})
	}
}

// TestTreeSparseParity is the grouping-invariance gate for sparse
// pre-reduction: with top-k+delta uploads, a 2-aggregator tree must
// reproduce the flat federation's metrics at the same seed — the sparse
// frames decode to identical dense vectors in both topologies, and the
// exact accumulator makes the regrouped fold order-invariant.
func TestTreeSparseParity(t *testing.T) {
	spec := comm.NewSpec(comm.F32, 0.25, true)
	cases := []struct {
		method string
		fleet  string
	}{
		{experiments.MethodFedAvg, "homogeneous"},
		{experiments.MethodProposed, "heterogeneous"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			s := nodeScale()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, tc.fleet, s.Clients, s)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := experiments.RunNodes(ctx, tc.method, experiments.Fashion, build, s.Clients, s, 1.0, spec,
				transport.NewInproc(transport.Options{Spec: spec}), "flat-sparse")
			if err != nil {
				t.Fatal(err)
			}
			tree, err := experiments.RunTreeNodes(ctx, tc.method, experiments.Fashion, build, s.Clients, 2, s, 1.0, spec,
				transport.NewInproc(transport.Options{Spec: spec}), "tree-sparse")
			if err != nil {
				t.Fatal(err)
			}
			if len(tree) != len(flat) {
				t.Fatalf("tree run has %d evaluation points, flat run has %d", len(tree), len(flat))
			}
			for i := range tree {
				if d := math.Abs(tree[i].MeanAcc - flat[i].MeanAcc); d > 0.02 {
					t.Fatalf("round %d: tree accuracy %.4f vs flat %.4f (Δ %.4f > 0.02)",
						tree[i].Round, tree[i].MeanAcc, flat[i].MeanAcc, d)
				}
				for j := range tree[i].PerClient {
					if d := math.Abs(tree[i].PerClient[j] - flat[i].PerClient[j]); d > 0.02 {
						t.Fatalf("round %d client %d: tree %.4f vs flat %.4f", tree[i].Round, j, tree[i].PerClient[j], flat[i].PerClient[j])
					}
				}
			}
		})
	}
}

// TestSparseGoldenAcrossWorkerCounts extends the sync golden to the
// sparse+delta simulation path: byte-identical RoundMetrics whether the
// worker pool is capped to one goroutine or uncapped — the per-client
// delta bases and the selector must never let parallelism into the
// arithmetic or the byte accounting.
func TestSparseGoldenAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []byte {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		sim := fl.NewSimulation(goldenFleet(t, 4), fl.Config{
			Rounds: 3, BatchSize: 8, Seed: 9, Codec: comm.F32, TopK: 0.25, Delta: true,
		})
		hist, err := sim.Run(baselines.NewFedAvg(1))
		if err != nil {
			t.Fatal(err)
		}
		return encodeHistory(t, hist)
	}
	serial := run(1)
	parallel := run(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("sparse sync RoundMetrics differ between 1 and N workers")
	}
}

// TestTopKSpecShrinksLedger is the headline uplink-reduction gate: top-k
// at 5% density over f32 values must shrink FedAvg's booked uplink at
// least 10x against dense f64, while training still produces a sane
// accuracy.
func TestTopKSpecShrinksLedger(t *testing.T) {
	run := func(spec comm.Spec) (int64, float64) {
		sim := fl.NewSimulation(goldenFleetDim(t, 4, 32), fl.Config{
			Rounds: 2, BatchSize: 8, Seed: 9,
			Codec: spec.Value, TopK: spec.Frac, Delta: spec.Delta,
		})
		hist, err := sim.Run(baselines.NewFedAvg(1))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Ledger.TotalUp(), hist[len(hist)-1].MeanAcc
	}
	f64Bytes, f64Acc := run(comm.Spec{Value: comm.F64})
	topkBytes, topkAcc := run(comm.NewSpec(comm.F32, 0.05, false))
	ratio := float64(f64Bytes) / float64(topkBytes)
	t.Logf("uplink bytes: f64 %d, topk5%% %d (%.2fx); acc f64 %.4f, topk %.4f", f64Bytes, topkBytes, ratio, f64Acc, topkAcc)
	if ratio < 10 {
		t.Fatalf("top-k 5%% shrank uplink only %.2fx, want >= 10x", ratio)
	}
	if math.IsNaN(topkAcc) || topkAcc < 0 || topkAcc > 1 {
		t.Fatalf("top-k training produced accuracy %v", topkAcc)
	}
}

// TestAsyncSparseUplinkBooked drives the async engine's UpBytes path: a
// bounded-staleness FedAvg run with top-k uploads must book its uplink
// from the exact sparse frame sizes — far below the dense run's books —
// and stay deterministic for a fixed seed.
func TestAsyncSparseUplinkBooked(t *testing.T) {
	run := func(spec comm.Spec) (int64, []byte) {
		sim := fl.NewSimulation(goldenFleetDim(t, 4, 32), fl.Config{
			Rounds: 2, BatchSize: 8, Seed: 9,
			Codec: spec.Value, TopK: spec.Frac, Delta: spec.Delta,
		})
		hist, err := sim.RunScheduled(baselines.NewFedAvg(1), fl.SchedulerConfig{Kind: fl.SchedAsyncBounded})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Ledger.TotalUp(), encodeHistory(t, hist)
	}
	denseBytes, _ := run(comm.Spec{Value: comm.F64})
	sparse := comm.NewSpec(comm.F32, 0.05, false)
	sparseBytes, h1 := run(sparse)
	_, h2 := run(sparse)
	if sparseBytes <= 0 || float64(denseBytes)/float64(sparseBytes) < 10 {
		t.Fatalf("async top-k uplink %d bytes vs dense %d — UpBytes path not booking sparse frames", sparseBytes, denseBytes)
	}
	if !bytes.Equal(h1, h2) {
		t.Fatal("async sparse run not deterministic for a fixed seed")
	}
}
