package fl

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/xrand"
)

func testClient(t *testing.T, id int, train, test []data.Example) *Client {
	t.Helper()
	m := models.New(models.Config{
		Arch: models.ArchMLP, InC: 1, InH: 12, InW: 12, FeatDim: 8, NumClasses: 10, Hidden: 16,
	}, xrand.New(int64(id+1)))
	return &Client{
		ID: id, Model: m, Train: train, Test: test,
		Aug:       data.NewAugmenter(1, 12, 12),
		Rng:       rand.New(rand.NewSource(int64(id + 100))),
		Optimizer: opt.NewAdam(0.01),
	}
}

func testFleet(t *testing.T, k int) []*Client {
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, k)
	for i := range clients {
		clients[i] = testClient(t, i, parts[i].Train, parts[i].Test)
	}
	return clients
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Fatalf("mean %v", m)
	}
	if math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestParallelClientsCoversAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	ParallelClients(100, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
	})
	if count != 100 {
		t.Fatalf("ran %d times", count)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d ran %d times", i, v)
		}
	}
	// n=0 and n=1 edge cases.
	ParallelClients(0, func(int) { t.Fatal("must not run") })
	ran := false
	ParallelClients(1, func(int) { ran = true })
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestTrainEpochCEImproves(t *testing.T) {
	clients := testFleet(t, 1)
	c := clients[0]
	first := c.TrainEpochCE(8)
	var last float64
	for e := 0; e < 15; e++ {
		last = c.TrainEpochCE(8)
	}
	if last >= first {
		t.Fatalf("CE loss did not improve: %g → %g", first, last)
	}
}

func TestEvalAccuracyBounds(t *testing.T) {
	clients := testFleet(t, 2)
	for _, c := range clients {
		acc := c.EvalAccuracy()
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy %v", acc)
		}
	}
	empty := testClient(t, 9, nil, nil)
	if empty.EvalAccuracy() != 0 {
		t.Fatal("empty test set should score 0")
	}
}

// countingAlgo records participants per round.
type countingAlgo struct {
	rounds       int
	participants [][]int
	failAt       int
}

func (a *countingAlgo) Name() string                { return "counting" }
func (a *countingAlgo) EpochsPerRound() int         { return 2 }
func (a *countingAlgo) Setup(sim *Simulation) error { return nil }
func (a *countingAlgo) Round(sim *Simulation, round int, participants []int) error {
	a.rounds++
	cp := append([]int(nil), participants...)
	a.participants = append(a.participants, cp)
	if a.failAt > 0 && round == a.failAt {
		return errors.New("injected failure")
	}
	return nil
}

func TestSimulationRunBasics(t *testing.T) {
	clients := testFleet(t, 4)
	sim := NewSimulation(clients, Config{Rounds: 5, SampleRate: 0.5, Seed: 9})
	algo := &countingAlgo{}
	hist, err := sim.Run(algo)
	if err != nil {
		t.Fatal(err)
	}
	if algo.rounds != 5 {
		t.Fatalf("ran %d rounds", algo.rounds)
	}
	if len(hist) != 5 {
		t.Fatalf("history %d entries", len(hist))
	}
	// SampleRate 0.5 of 4 clients = 2 participants per round.
	for _, p := range algo.participants {
		if len(p) != 2 {
			t.Fatalf("participants %v", p)
		}
	}
	// LocalEpochs uses EpochsPerRound.
	if hist[2].LocalEpochs != 3*2 {
		t.Fatalf("epochs axis %d, want 6", hist[2].LocalEpochs)
	}
}

func TestSimulationErrorPropagates(t *testing.T) {
	clients := testFleet(t, 2)
	sim := NewSimulation(clients, Config{Rounds: 5, Seed: 1})
	_, err := sim.Run(&countingAlgo{failAt: 2})
	if err == nil {
		t.Fatal("round error must propagate")
	}
}

func TestFailureInjectionDropsClients(t *testing.T) {
	clients := testFleet(t, 4)
	sim := NewSimulation(clients, Config{Rounds: 30, SampleRate: 1, DropProb: 0.5, Seed: 5})
	algo := &countingAlgo{}
	if _, err := sim.Run(algo); err != nil {
		t.Fatal(err)
	}
	full, dropped := 0, 0
	for _, p := range algo.participants {
		if len(p) == 4 {
			full++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("DropProb 0.5 never dropped anyone over 30 rounds")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() []float64 {
		clients := testFleet(t, 3)
		sim := NewSimulation(clients, Config{Rounds: 3, Seed: 11})
		algo := &countingAlgo{}
		hist, err := sim.Run(algo)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, m := range hist {
			out = append(out, m.MeanAcc)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic run: %v vs %v", a, b)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	sim := NewSimulation(nil, Config{})
	if sim.Cfg.Rounds != 1 || sim.Cfg.SampleRate != 1 || sim.Cfg.BatchSize != 32 || sim.Cfg.EvalEvery != 1 {
		t.Fatalf("defaults not applied: %+v", sim.Cfg)
	}
}

func TestAugmentedBatchWithoutAugmenter(t *testing.T) {
	clients := testFleet(t, 1)
	c := clients[0]
	c.Aug = nil
	x, y := c.AugmentedBatch(c.Train[:2])
	if x.Dim(0) != 2 || len(y) != 2 {
		t.Fatalf("shapes %v %v", x.Shape, y)
	}
	// Without augmenter the batch must be the raw pixels.
	for j := 0; j < 5; j++ {
		if x.Data[j] != c.Train[0].X[j] {
			t.Fatal("nil augmenter must pass raw input")
		}
	}
}
