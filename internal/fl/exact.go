package fl

import (
	"math"
	"math/big"
)

// ExactAccumulator is the grouping-invariant reduction behind hierarchical
// aggregation: a weighted vector sum computed in arbitrary-precision
// arithmetic so that folding the same updates in any order, under any
// grouping, produces byte-identical float64 results.
//
// The contract the tree topology rests on: each per-term product w·v[i] is
// rounded once in float64 (deterministic and independent of grouping), and
// the sum of those products is carried exactly — exactPrec mantissa bits
// hold any partial sum of float64 terms without rounding, because the
// terms' exponents span at most ~2100 bits and the term count adds only
// log2(N) more. Round then performs the single round-to-nearest-even back
// to float64. Fold-them-all-flat and fold-in-groups-then-Merge therefore
// agree bit for bit, which is what lets an edge aggregator pre-reduce its
// subtree and the parity argument stay exact at the reduction level.
//
// Nonfinite terms poison the accumulator: big.Float has no NaN and panics
// on Inf−Inf, so the first nonfinite product degrades the accumulator to
// plain float64 sums that propagate the nonfinite values faithfully —
// garbage stays loudly garbage instead of panicking the server.
type ExactAccumulator struct {
	cells []big.Float
	wcell big.Float
	// plain/plainW carry the degraded float64 sums once poisoned.
	poisoned bool
	plain    []float64
	plainW   float64
	scratch  big.Float
}

// exactPrec is the mantissa width of each cell. Partial sums of float64
// terms span binary exponents [-1074, 1023+log2(terms)], so 2304 bits
// absorb any federation-sized term count with no intermediate rounding.
const exactPrec = 2304

// NewExactAccumulator builds an exact accumulator over n elements.
func NewExactAccumulator(n int) *ExactAccumulator {
	e := &ExactAccumulator{cells: make([]big.Float, n)}
	for i := range e.cells {
		e.cells[i].SetPrec(exactPrec)
	}
	e.wcell.SetPrec(exactPrec)
	e.scratch.SetPrec(exactPrec)
	return e
}

// Len returns the element count.
func (e *ExactAccumulator) Len() int { return len(e.cells) }

// poison degrades the accumulator to plain float64 arithmetic,
// materializing the exact sums accumulated so far.
func (e *ExactAccumulator) poison() {
	if e.poisoned {
		return
	}
	e.poisoned = true
	e.plain = make([]float64, len(e.cells))
	for i := range e.cells {
		e.plain[i], _ = e.cells[i].Float64()
	}
	e.plainW, _ = e.wcell.Float64()
}

// Fold adds one weighted vector: cells[i] += fl64(w·vec[i]) exactly, and
// the weight sum gains w. The per-term product is rounded once in float64 —
// the same rounding every grouping performs — so the accumulated sum is a
// pure function of the multiset of (vec, w) pairs.
func (e *ExactAccumulator) Fold(vec []float64, w float64) {
	if len(vec) != len(e.cells) {
		panic("fl: ExactAccumulator.Fold length mismatch")
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		e.poison()
	}
	if e.poisoned {
		for i, v := range vec {
			e.plain[i] += w * v
		}
		e.plainW += w
		return
	}
	for i, v := range vec {
		t := w * v
		if math.IsNaN(t) || math.IsInf(t, 0) {
			e.poison()
			for j := i; j < len(vec); j++ {
				e.plain[j] += w * vec[j]
			}
			e.plainW += w
			return
		}
		if t == 0 {
			continue
		}
		e.scratch.SetFloat64(t)
		e.cells[i].Add(&e.cells[i], &e.scratch)
	}
	e.scratch.SetFloat64(w)
	e.wcell.Add(&e.wcell, &e.scratch)
}

// Merge folds another accumulator's exact state into this one. Adding two
// exact sums is itself exact, so merging group accumulators in any nesting
// is byte-identical to having folded every update flat.
func (e *ExactAccumulator) Merge(o *ExactAccumulator) {
	if o.Len() != e.Len() {
		panic("fl: ExactAccumulator.Merge length mismatch")
	}
	if o.poisoned {
		e.poison()
	}
	if e.poisoned {
		sum, wsum := o.Round()
		for i, v := range sum {
			e.plain[i] += v
		}
		e.plainW += wsum
		return
	}
	for i := range e.cells {
		e.cells[i].Add(&e.cells[i], &o.cells[i])
	}
	e.wcell.Add(&e.wcell, &o.wcell)
}

// Round returns the accumulated sums rounded to float64 — the single
// rounding of the whole reduction — plus the exact weight total. The
// accumulator is not reset; Round is a pure observation.
func (e *ExactAccumulator) Round() (sum []float64, wsum float64) {
	sum = make([]float64, len(e.cells))
	if e.poisoned {
		copy(sum, e.plain)
		return sum, e.plainW
	}
	for i := range e.cells {
		sum[i], _ = e.cells[i].Float64()
	}
	wsum, _ = e.wcell.Float64()
	return sum, wsum
}
