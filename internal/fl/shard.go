package fl

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// ShardedAccumulator is the server-side aggregation state of the async
// federation engine: a flat vector of length n split into contiguous
// shards, each with its own lock and weight total, so concurrent deliveries
// fold in parallel and a commit merges every shard at once. Two layouts are
// supported: an even split for monolithic weight vectors (NewSharded) and a
// segment-per-shard split for structured state such as per-class prototypes
// (NewSegmented), where each segment accumulates under its own weight.
type ShardedAccumulator struct {
	bounds []int // shard s covers [bounds[s], bounds[s+1])
	sum    []float64
	wsum   []float64
	locks  []sync.Mutex
}

// NewSharded builds an accumulator over n elements split into at most
// shards even contiguous ranges.
func NewSharded(n, shards int) *ShardedAccumulator {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if shards < 1 { // n == 0
		shards = 1
	}
	bounds := make([]int, shards+1)
	chunk := (n + shards - 1) / shards
	for s := 1; s < shards; s++ {
		hi := s * chunk
		if hi > n {
			hi = n
		}
		bounds[s] = hi
	}
	bounds[shards] = n
	return newFromBounds(bounds)
}

// NewSegmented builds an accumulator with one shard per segment; segment s
// has segLens[s] elements and its own aggregation weight.
func NewSegmented(segLens []int) *ShardedAccumulator {
	bounds := make([]int, len(segLens)+1)
	for s, l := range segLens {
		bounds[s+1] = bounds[s] + l
	}
	return newFromBounds(bounds)
}

func newFromBounds(bounds []int) *ShardedAccumulator {
	shards := len(bounds) - 1
	return &ShardedAccumulator{
		bounds: bounds,
		sum:    make([]float64, bounds[shards]),
		wsum:   make([]float64, shards),
		locks:  make([]sync.Mutex, shards),
	}
}

// Len returns the total element count.
func (a *ShardedAccumulator) Len() int { return len(a.sum) }

// Shards returns the shard count.
func (a *ShardedAccumulator) Shards() int { return len(a.wsum) }

// Accumulate folds one full-length weighted vector into every shard,
// processing shards concurrently on the worker pool. Safe against
// concurrent Accumulate and AccumulateSegment calls.
func (a *ShardedAccumulator) Accumulate(vec []float64, w float64) {
	if len(vec) != len(a.sum) {
		panic("fl: ShardedAccumulator.Accumulate length mismatch")
	}
	tensor.ParallelSharded(a.Shards(), a.Shards(), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			a.lockedFold(s, vec[a.bounds[s]:a.bounds[s+1]], w)
		}
	})
}

// AccumulateSegment folds a weighted vector into one segment shard (for
// example one class prototype). seg must have the shard's exact length.
func (a *ShardedAccumulator) AccumulateSegment(s int, seg []float64, w float64) {
	if len(seg) != a.bounds[s+1]-a.bounds[s] {
		panic("fl: ShardedAccumulator.AccumulateSegment length mismatch")
	}
	a.lockedFold(s, seg, w)
}

func (a *ShardedAccumulator) lockedFold(s int, seg []float64, w float64) {
	a.locks[s].Lock()
	sum := a.sum[a.bounds[s]:a.bounds[s+1]]
	for i, v := range seg {
		sum[i] += w * v
	}
	a.wsum[s] += w
	a.locks[s].Unlock()
}

// Merge folds a pre-weighted partial sum carrying weight w into every
// shard: sum[i] += vec[i], and each shard's weight total gains w. This is
// the root's half of hierarchical aggregation — an edge aggregator's
// PreReduce delivers Σ w_c·v_c with Σ w_c, already multiplied out, so the
// fold must not weight the vector again. The flat Accumulate path is the
// degenerate case Merge(w·v, w) computed exactly by the aggregator.
func (a *ShardedAccumulator) Merge(vec []float64, w float64) {
	if len(vec) != len(a.sum) {
		panic("fl: ShardedAccumulator.Merge length mismatch")
	}
	tensor.ParallelSharded(a.Shards(), a.Shards(), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			a.lockedMerge(s, vec[a.bounds[s]:a.bounds[s+1]], w)
		}
	})
}

// MergeSegment folds a pre-weighted partial sum into one segment shard,
// the segmented counterpart of Merge (per-class prototype sums arriving
// from an aggregator with their summed weights).
func (a *ShardedAccumulator) MergeSegment(s int, seg []float64, w float64) {
	if len(seg) != a.bounds[s+1]-a.bounds[s] {
		panic("fl: ShardedAccumulator.MergeSegment length mismatch")
	}
	a.lockedMerge(s, seg, w)
}

func (a *ShardedAccumulator) lockedMerge(s int, seg []float64, w float64) {
	a.locks[s].Lock()
	sum := a.sum[a.bounds[s]:a.bounds[s+1]]
	for i, v := range seg {
		sum[i] += v
	}
	a.wsum[s] += w
	a.locks[s].Unlock()
}

// Snapshot returns copies of the running sums and per-shard weights, the
// accumulator's full mutable state (the shard layout is structural and
// rebuilt from configuration). At a commit boundary both are all zero, but
// the checkpoint format stores them anyway so the representation never
// depends on where snapshots are taken.
func (a *ShardedAccumulator) Snapshot() (sum, wsum []float64) {
	sum = make([]float64, len(a.sum))
	wsum = make([]float64, len(a.wsum))
	for s := range a.locks {
		a.locks[s].Lock()
		copy(sum[a.bounds[s]:a.bounds[s+1]], a.sum[a.bounds[s]:a.bounds[s+1]])
		wsum[s] = a.wsum[s]
		a.locks[s].Unlock()
	}
	return sum, wsum
}

// RestoreState overwrites the running sums and per-shard weights from a
// snapshot. The element vector must match exactly; the shard count may
// differ (the even split follows tensor.Workers(), so a checkpoint taken
// on an 8-core box must restore on a 1-core one) as long as the source
// weights are uniform — full-vector Accumulate folds the same weight into
// every shard, so a uniform weight maps exactly onto any layout.
func (a *ShardedAccumulator) RestoreState(sum, wsum []float64) error {
	if len(sum) != len(a.sum) {
		return fmt.Errorf("fl: accumulator snapshot holds %d values, accumulator holds %d", len(sum), len(a.sum))
	}
	if len(wsum) != len(a.wsum) {
		uniform := len(wsum) > 0
		for _, w := range wsum[1:] {
			if w != wsum[0] {
				uniform = false
				break
			}
		}
		if !uniform {
			return fmt.Errorf("fl: accumulator snapshot has %d shards with non-uniform weights, accumulator has %d",
				len(wsum), len(a.wsum))
		}
		for s := range a.locks {
			a.locks[s].Lock()
			copy(a.sum[a.bounds[s]:a.bounds[s+1]], sum[a.bounds[s]:a.bounds[s+1]])
			a.wsum[s] = wsum[0]
			a.locks[s].Unlock()
		}
		return nil
	}
	for s := range a.locks {
		a.locks[s].Lock()
		copy(a.sum[a.bounds[s]:a.bounds[s+1]], sum[a.bounds[s]:a.bounds[s+1]])
		a.wsum[s] = wsum[s]
		a.locks[s].Unlock()
	}
	return nil
}

// CommitInto merges the accumulated weighted means into dst and resets the
// accumulator: for every shard with positive weight,
//
//	dst[i] = (1-mix)·dst[i] + mix·sum[i]/wsum
//
// Shards that received no weight leave dst untouched (so, for example,
// unseen prototype classes keep their previous value). When touched is
// non-nil it must have Shards() entries and is set to whether each shard
// committed. Shards merge concurrently on the worker pool; the per-element
// arithmetic is independent of the worker count, so commits are
// deterministic.
func (a *ShardedAccumulator) CommitInto(dst []float64, mix float64, touched []bool) {
	if len(dst) != len(a.sum) {
		panic("fl: ShardedAccumulator.CommitInto length mismatch")
	}
	tensor.ParallelSharded(a.Shards(), a.Shards(), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			a.locks[s].Lock()
			w := a.wsum[s]
			if touched != nil {
				touched[s] = w > 0
			}
			if w > 0 {
				inv := 1 / w
				keep := 1 - mix
				for i := a.bounds[s]; i < a.bounds[s+1]; i++ {
					dst[i] = keep*dst[i] + mix*a.sum[i]*inv
					a.sum[i] = 0
				}
				a.wsum[s] = 0
			}
			a.locks[s].Unlock()
		}
	})
}
