package fl

import (
	"container/list"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/nn"
)

// ClientStore backs a lazy virtual fleet: clients exist as a compact id
// space [0,n) and materialize on demand through a builder that constructs
// client i as a pure function of i (experiments.ClientBuilder). At most
// budget clients stay resident in an LRU; evicting one spills its mutable
// state — flat parameters, batch-norm buffers, RNG position, optimizer
// moments — into the checkpoint buffer format, and a later Get restores it
// bit-identically into a freshly built client. Spill buffers are recycled
// through a size-bucketed pool, so steady-state memory is proportional to
// residents + touched cohort, never the fleet.
//
// Every materialized client is treated as dirty (its state spills on
// eviction even if it only evaluated); tracking cleanliness would save
// spill space but risk missing a mutation path, and the spill set is
// bounded by the touched set — O(rounds · cohort) — regardless of n.
type ClientStore struct {
	mu       sync.Mutex
	n        int
	build    func(int) *Client
	budget   int // max resident clients; <= 0 means unbounded
	resident map[int]*list.Element
	lru      *list.List // of *Client; front = most recently used
	spill    map[int]*ClientState
	pool     bufferPool
}

// NewClientStore builds a store over n virtual clients.
func NewClientStore(n int, build func(int) *Client, budget int) *ClientStore {
	return &ClientStore{
		n:        n,
		build:    build,
		budget:   budget,
		resident: make(map[int]*list.Element),
		lru:      list.New(),
		spill:    make(map[int]*ClientState),
	}
}

// Len returns the virtual fleet size.
func (st *ClientStore) Len() int { return st.n }

// Resident returns how many clients are currently materialized.
func (st *ClientStore) Resident() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// Get returns client id, building it (and restoring any spilled state) if
// it is not resident. Safe to call concurrently for distinct ids — the
// pattern of every parallel client loop; a same-id race is resolved to a
// single client. The result stays resident at least until the next
// EvictToBudget.
func (st *ClientStore) Get(id int) *Client {
	if id < 0 || id >= st.n {
		panic(fmt.Sprintf("fl: client id %d out of fleet range [0,%d)", id, st.n))
	}
	st.mu.Lock()
	if el, ok := st.resident[id]; ok {
		st.lru.MoveToFront(el)
		c := el.Value.(*Client)
		st.mu.Unlock()
		return c
	}
	st.mu.Unlock()

	c := st.build(id) // heavy: runs outside the lock so cohorts build in parallel

	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.resident[id]; ok { // lost a same-id race; use the winner's
		st.lru.MoveToFront(el)
		return el.Value.(*Client)
	}
	if cs, ok := st.spill[id]; ok {
		if err := restoreClientState(c, cs); err != nil {
			// The builder is a pure function of id, so a shape/dtype mismatch
			// with state this store captured itself is an invariant violation,
			// not a recoverable condition.
			panic(fmt.Sprintf("fl: rehydrating client %d: %v", id, err))
		}
		delete(st.spill, id)
		st.pool.put(cs.Params)
		st.pool.put(cs.Buffers)
	}
	st.resident[id] = st.lru.PushFront(c)
	return c
}

// EvictToBudget spills least-recently-used clients until the resident
// count is within budget, skipping clients the scheduler still holds in
// flight (pinned). A nil pinned means nothing is pinned.
func (st *ClientStore) EvictToBudget(pinned func(id int) bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.budget <= 0 {
		return nil
	}
	for el := st.lru.Back(); el != nil && st.lru.Len() > st.budget; {
		prev := el.Prev()
		c := el.Value.(*Client)
		if pinned == nil || !pinned(c.ID) {
			if err := st.spillLocked(c); err != nil {
				return err
			}
			st.lru.Remove(el)
			delete(st.resident, c.ID)
		}
		el = prev
	}
	return nil
}

func (st *ClientStore) spillLocked(c *Client) error {
	var params, buffers []float64
	if c.Model != nil {
		params = st.pool.get(nn.NumParams(c.Model.Params()))
		buffers = st.pool.get(nn.NumBuffered(c.Model.Buffers()))
	}
	cs, err := captureClientState(c, params, buffers)
	if err != nil {
		return fmt.Errorf("fl: spilling client %d: %w", c.ID, err)
	}
	st.spill[c.ID] = &cs
	return nil
}

// CaptureTouched snapshots every client this store has ever materialized —
// resident ones freshly, spilled ones by copy — sorted by id, into
// unpooled buffers a checkpoint may own indefinitely. Untouched clients
// carry no state beyond their id (they are reproduced by the builder), so
// they are deliberately absent.
func (st *ClientStore) CaptureTouched() ([]ClientState, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ClientState, 0, len(st.resident)+len(st.spill))
	for _, cs := range st.spill {
		out = append(out, ClientState{
			ID:      cs.ID,
			Params:  CloneVec(cs.Params),
			Buffers: CloneVec(cs.Buffers),
			Rng:     cs.Rng,
			Opt:     cs.Opt,
		})
	}
	for el := st.lru.Front(); el != nil; el = el.Next() {
		cs, err := captureClientState(el.Value.(*Client), nil, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// RestoreTouched resets the store to hold exactly the given touched-client
// states (cloned into the spill map); every resident client is dropped, so
// the next Get of any id rebuilds and rehydrates from the checkpoint.
func (st *ClientStore) RestoreTouched(states []ClientState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, cs := range st.spill {
		st.pool.put(cs.Params)
		st.pool.put(cs.Buffers)
	}
	st.spill = make(map[int]*ClientState, len(states))
	st.resident = make(map[int]*list.Element)
	st.lru.Init()
	for i := range states {
		cs := &states[i]
		if cs.ID < 0 || cs.ID >= st.n {
			return fmt.Errorf("fl: checkpoint references client %d of a %d-client fleet", cs.ID, st.n)
		}
		st.spill[cs.ID] = &ClientState{
			ID:      cs.ID,
			Params:  CloneVec(cs.Params),
			Buffers: CloneVec(cs.Buffers),
			Rng:     cs.Rng,
			Opt:     cs.Opt,
		}
	}
	return nil
}

// bufferPool recycles spill vectors in power-of-two size buckets. Buffers
// are stored under the largest power of two not exceeding their capacity,
// so a get(n) hit always has capacity ≥ n. Callers hold the store lock.
type bufferPool struct {
	buckets map[int][][]float64
}

func (p *bufferPool) get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := 1 << bits.Len(uint(n-1)) // smallest power of two ≥ n
	if s := p.buckets[b]; len(s) > 0 {
		buf := s[len(s)-1]
		p.buckets[b] = s[:len(s)-1]
		return buf[:0]
	}
	return make([]float64, 0, b)
}

func (p *bufferPool) put(buf []float64) {
	c := cap(buf)
	if c == 0 {
		return
	}
	b := 1 << (bits.Len(uint(c)) - 1) // largest power of two ≤ cap
	if p.buckets == nil {
		p.buckets = make(map[int][][]float64)
	}
	p.buckets[b] = append(p.buckets[b], buf[:0])
}
