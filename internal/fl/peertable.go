package fl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/transport"
)

// PeerTable is the downstream-facing session machinery shared by every
// aggregating role — the root ServerNode and the edge AggregatorNode. It
// owns the accept loop, the handshake greeter, the per-connection reader
// goroutines, the session table with its reconnect-token identity, the
// liveness tick (heartbeats out, hung peers torn down, expired reconnect
// windows surfaced to the role) and the ledger booking of every frame.
// Policy — who may join, what a message means, when a session churns —
// stays with the role; the PeerTable moves bytes and tracks liveness.
//
// Everything here was extracted verbatim from the ServerNode event loop:
// the flat topology's behavior (and wire bytes) are identical to the
// pre-refactor server. All methods except the accept/greet/reader
// goroutines must be called from the role's single event-loop goroutine.
type PeerTable struct {
	// spec and lossy rebuild a fresh decode-side wireCodec for every
	// connection incarnation: delta bases live and die with one connection,
	// so a reconnect decodes densely until a new basis is established —
	// mirroring the peer's encoder, which is rebuilt the same way.
	spec      comm.Spec
	lossy     bool
	heartbeat time.Duration
	deadAfter time.Duration
	window    time.Duration
	ledger    *comm.Ledger
	stats     *NodeStats
	// base offsets session ids: session i carries id base+i (an edge
	// aggregator's sessions are its global child-id range).
	base int
	// validJoin classifies a fresh connection's first frame; anything
	// else is dropped by the greeter.
	validJoin func(*wireMsg) bool

	sessions []*peerSession
	events   chan inbound
	conns    chan acceptedConn
	stop     chan struct{}
	stopOnce sync.Once

	// embryos tracks accepted connections whose join frame has not arrived
	// yet, so shutdown can unblock their greeter goroutines.
	embryoMu sync.Mutex
	embryos  map[transport.Conn]struct{}

	tokenRng *rand.Rand
	lastBeat time.Time
}

// peerSession is one downstream peer's server-side session: the identity
// that survives connection loss. conn is nil while the peer is
// disconnected; gen increments every time the connection changes so stale
// reader events are recognizable.
type peerSession struct {
	id      int
	token   uint64
	conn    transport.Conn
	gen     int
	joined  bool
	churned bool
	// lastSeen is the last time any frame arrived (liveness).
	lastSeen time.Time
	// downAt is when the connection was lost (reconnect-window clock).
	downAt time.Time
	// busy marks an outstanding dispatch; dispVersion is the model version
	// it was stamped with, and pendingDispatch caches the encoded frame for
	// resend on adoption (WireDispatch may consume state — KT-pFL — so the
	// payload cannot be regenerated).
	busy            bool
	dispVersion     uint64
	pendingDispatch []byte
	// pendingEval caches an outstanding evaluation request for resend on
	// adoption when the frame carries more than the round number (the tree
	// roles' id lists); nil means re-encode the plain request.
	pendingEval []byte
	// stopped marks that the session's peer acknowledged its stop frame:
	// the session is complete, and a subsequent EOF from the closing peer
	// is an orderly goodbye, not a disconnect to wait out.
	stopped bool
}

// inbound is one reader-goroutine delivery: a decoded message or the error
// that ended the connection. gen stamps which incarnation of the session's
// connection produced it, so events from an abandoned connection are
// discarded instead of corrupting the session that replaced it.
type inbound struct {
	id   int
	gen  int
	msg  *wireMsg
	wire int64
	err  error
}

// acceptedConn is one accept-loop delivery: a handshaken connection with
// either its decoded join frame (fresh peer) or the session token it
// presented in the transport hello (reconnecting peer), or the error that
// ended accepting.
type acceptedConn struct {
	conn  transport.Conn
	token uint64
	join  *wireMsg
	wire  int64
	err   error
}

// newPeerTable builds a table of count sessions carrying ids base..base+count-1.
func newPeerTable(count, base int, spec comm.Spec, lossy bool, heartbeat, deadAfter, window time.Duration,
	tokenSeed int64, ledger *comm.Ledger, stats *NodeStats, validJoin func(*wireMsg) bool) *PeerTable {
	pt := &PeerTable{
		spec:      spec,
		lossy:     lossy,
		heartbeat: heartbeat,
		deadAfter: deadAfter,
		window:    window,
		ledger:    ledger,
		stats:     stats,
		base:      base,
		validJoin: validJoin,
		sessions:  make([]*peerSession, count),
		events:    make(chan inbound, 8*count+32),
		conns:     make(chan acceptedConn, count+8),
		stop:      make(chan struct{}),
		embryos:   make(map[transport.Conn]struct{}),
	}
	for i := range pt.sessions {
		pt.sessions[i] = &peerSession{id: base + i}
	}
	// Tokens come from a stream disjoint from cohort sampling, and the high
	// bit is forced so a token is never zero (zero means "fresh dial").
	pt.tokenRng = rand.New(rand.NewSource(tokenSeed ^ 0x746f6b656e)) // "token"
	return pt
}

// sessionByID maps a global peer id back to its session.
func (pt *PeerTable) sessionByID(id int) *peerSession { return pt.sessions[id-pt.base] }

// shutdown releases everything the event loop owns: the stop channel
// unblocks deliveries, closing embryo and session connections unblocks
// their goroutines' reads.
func (pt *PeerTable) shutdown() {
	pt.stopOnce.Do(func() { close(pt.stop) })
	pt.embryoMu.Lock()
	for c := range pt.embryos {
		c.Close()
	}
	pt.embryos = map[transport.Conn]struct{}{}
	pt.embryoMu.Unlock()
	for _, s := range pt.sessions {
		if s.conn != nil {
			s.conn.Close()
		}
	}
}

func (pt *PeerTable) trackEmbryo(c transport.Conn) {
	pt.embryoMu.Lock()
	pt.embryos[c] = struct{}{}
	pt.embryoMu.Unlock()
}

func (pt *PeerTable) forgetEmbryo(c transport.Conn) {
	pt.embryoMu.Lock()
	delete(pt.embryos, c)
	pt.embryoMu.Unlock()
}

// Accept-failure policy: one bad peer (failed handshake) is routine, but a
// stream of errors means the listener itself is sick — back off between
// failures and give up after a bound rather than spinning forever.
const (
	maxAcceptFailures = 1000
	acceptBackoff     = 10 * time.Millisecond
)

// acceptLoop feeds handshaken connections into the event loop until the
// listener dies.
func (pt *PeerTable) acceptLoop(ln transport.Listener) {
	failures := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				pt.deliverConn(acceptedConn{err: err})
				return
			}
			failures++
			if failures >= maxAcceptFailures {
				pt.deliverConn(acceptedConn{err: fmt.Errorf("fl: %d consecutive accept failures, last: %w", failures, err)})
				return
			}
			select {
			case <-time.After(acceptBackoff):
			case <-pt.stop:
				return
			}
			continue
		}
		failures = 0
		pt.trackEmbryo(conn)
		go pt.greet(conn)
	}
}

// greet classifies one accepted connection. A nonzero hello token is a
// reconnect claim, forwarded immediately; a fresh connection must produce
// a valid join frame within joinTimeout or be dropped (a
// handshaken-but-silent peer must not pin the federation).
func (pt *PeerTable) greet(conn transport.Conn) {
	if tok := conn.Hello().Token; tok != 0 {
		pt.deliverConn(acceptedConn{conn: conn, token: tok})
		return
	}
	conn.SetReadDeadline(time.Now().Add(joinTimeout))
	frame, wire, err := conn.Recv()
	if err != nil {
		pt.forgetEmbryo(conn)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	m, err := decodeMsg(frame)
	if err != nil || !pt.validJoin(m) {
		pt.forgetEmbryo(conn)
		conn.Close()
		return
	}
	pt.deliverConn(acceptedConn{conn: conn, join: m, wire: wire})
}

func (pt *PeerTable) deliverConn(ac acceptedConn) {
	select {
	case pt.conns <- ac:
	case <-pt.stop:
		if ac.conn != nil {
			pt.forgetEmbryo(ac.conn)
			ac.conn.Close()
		}
	}
}

// reader pumps one connection's messages into the event loop until the
// connection dies. Each reader owns a fresh wireCodec: the delta bases a
// connection's uploads accumulate are discarded with the connection, so an
// adopted reconnect starts dense — exactly as the peer's rebuilt encoder
// does.
func (pt *PeerTable) reader(id, gen int, conn transport.Conn) {
	wc := newWireCodec(pt.spec, pt.lossy)
	deliver := func(ev inbound) bool {
		select {
		case pt.events <- ev:
			return true
		case <-pt.stop:
			return false
		}
	}
	for {
		frame, wire, err := conn.Recv()
		if err != nil {
			deliver(inbound{id: id, gen: gen, err: err})
			return
		}
		m, err := decodeMsgWc(frame, wc)
		if err != nil {
			deliver(inbound{id: id, gen: gen, err: err})
			return
		}
		if !deliver(inbound{id: id, gen: gen, msg: m, wire: wire}) {
			return
		}
	}
}

// attach wires a handshaken connection to a session: connection ownership,
// generation bump, handshake-byte booking, reader spawn. Both the fresh
// join and the adoption path go through here.
func (pt *PeerTable) attach(s *peerSession, conn transport.Conn, joinWire int64) {
	s.conn = conn
	s.gen++
	s.lastSeen = time.Now()
	hsSent, hsRecv := conn.HandshakeBytes()
	pt.ledger.AddUp(s.id, joinWire+hsRecv)
	if hsSent > 0 {
		pt.ledger.AddDown(s.id, hsSent)
	}
	go pt.reader(s.id, s.gen, conn)
}

// issueTokens draws every session's reconnect token from the dedicated
// stream, in session order.
func (pt *PeerTable) issueTokens() {
	for _, s := range pt.sessions {
		s.token = pt.tokenRng.Uint64() | 1<<63
	}
}

func (pt *PeerTable) findToken(token uint64) *peerSession {
	for _, s := range pt.sessions {
		if s.joined && s.token == token {
			return s
		}
	}
	return nil
}

// refuse rejects a connection with an explanatory error message.
func (pt *PeerTable) refuse(conn transport.Conn, reason string) {
	conn.Send(encodeMsg(&wireMsg{kind: msgErr, name: reason}, nil))
	conn.Close()
}

// send writes one frame to a session, booking the wire bytes on success
// and downgrading the session to disconnected on failure. A write deadline
// bounds the attempt so a peer with a full socket buffer cannot wedge the
// event loop.
func (pt *PeerTable) send(s *peerSession, frame []byte) bool {
	if s.conn == nil {
		return false
	}
	s.conn.SetWriteDeadline(time.Now().Add(pt.deadAfter))
	wire, err := s.conn.Send(frame)
	if err != nil {
		pt.markDisconnected(s)
		return false
	}
	s.conn.SetWriteDeadline(time.Time{})
	pt.ledger.AddDown(s.id, wire)
	return true
}

// markDisconnected tears down a session's connection, starting its
// reconnect-window clock. Owed state (pending dispatch, eval slot) is
// preserved for replay on adoption.
func (pt *PeerTable) markDisconnected(s *peerSession) {
	if s.conn == nil {
		return
	}
	s.conn.Close()
	s.conn = nil
	s.gen++
	s.downAt = time.Now()
	pt.stats.Disconnects++
}

// churnSession permanently retires a session: cohorts skip it, its
// evaluation slot stays NaN. Returns false if it was already churned.
// Role-level cleanup (open barriers, subtree bookkeeping) is the caller's.
func (pt *PeerTable) churnSession(s *peerSession) bool {
	if s.churned {
		return false
	}
	s.churned = true
	pt.stats.Churned++
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.gen++
	}
	s.busy = false
	s.pendingDispatch = nil
	s.pendingEval = nil
	return true
}

// pendingStops reports whether any live session still owes its peer a
// stop frame.
func (pt *PeerTable) pendingStops() bool {
	for _, s := range pt.sessions {
		if !s.churned && !s.stopped {
			return true
		}
	}
	return false
}

// tick runs the failure discipline: heartbeats out (stamped with the
// role's committed version), hung peers torn down, expired reconnect
// windows surfaced to the role's churn policy.
func (pt *PeerTable) tick(version uint64, onChurn func(*peerSession)) {
	now := time.Now()
	beat := now.Sub(pt.lastBeat) >= pt.heartbeat
	if beat {
		pt.lastBeat = now
	}
	var hb []byte
	for _, s := range pt.sessions {
		if s.churned || s.stopped {
			continue
		}
		if s.conn != nil {
			if now.Sub(s.lastSeen) > pt.deadAfter {
				// Silent past the dead interval: hung, not slow — a slow peer
				// would at least be echoing heartbeats.
				pt.markDisconnected(s)
			} else if beat {
				if hb == nil {
					hb = encodeMsg(&wireMsg{kind: msgHeartbeat, a: version}, nil)
				}
				pt.send(s, hb)
			}
		}
		if s.conn == nil && !s.downAt.IsZero() && now.Sub(s.downAt) > pt.window {
			onChurn(s)
		}
	}
}
