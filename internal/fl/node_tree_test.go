// End-to-end tests of the 2-level aggregation tree: a root server node,
// edge aggregators and client nodes over the inproc transport, compared
// against the flat node federation at the same seed. External test
// package so fleets and algorithms come from experiments/core/baselines
// without an import cycle.
package fl_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/transport"
)

// runFlatAndTree runs the same federation flat and as a 2-aggregator tree
// at the same seed and returns both histories.
func runFlatAndTree(t *testing.T, method, fleet string, s experiments.Scale, aggs int) (flat, tree []fl.RoundMetrics) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, fleet, s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	flat, err = experiments.RunNodes(ctx, method, experiments.Fashion, build, s.Clients, s, 1.0, comm.Spec{Value: comm.F64},
		transport.NewInproc(transport.Options{}), "flat")
	if err != nil {
		t.Fatal(err)
	}
	tree, err = experiments.RunTreeNodes(ctx, method, experiments.Fashion, build, s.Clients, aggs, s, 1.0, comm.Spec{Value: comm.F64},
		transport.NewInproc(transport.Options{}), "tree")
	if err != nil {
		t.Fatal(err)
	}
	return flat, tree
}

// TestTreeParityAllMethods is the tentpole's acceptance gate: for every
// method of the evaluation, a 2-level tree (two edge aggregators) must
// reproduce the flat federation's metrics at the same seed within the
// repo-wide 0.02 parity tolerance, per round and per client. The
// associative methods pre-reduce on the aggregators (exact regrouping via
// the ExactAccumulator); KT-pFL passes its updates through unreduced.
func TestTreeParityAllMethods(t *testing.T) {
	cases := []struct {
		method string
		fleet  string
	}{
		{experiments.MethodFedAvg, "homogeneous"},
		{experiments.MethodFedProx, "homogeneous"},
		{experiments.MethodProposed, "heterogeneous"},
		{experiments.MethodFedProto, "proto"},
		{experiments.MethodKTpFL, "heterogeneous"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			s := nodeScale()
			flat, tree := runFlatAndTree(t, tc.method, tc.fleet, s, 2)
			if len(tree) != len(flat) {
				t.Fatalf("tree run has %d evaluation points, flat run has %d", len(tree), len(flat))
			}
			for i := range tree {
				if tree[i].Round != flat[i].Round || tree[i].LocalEpochs != flat[i].LocalEpochs {
					t.Fatalf("point %d: round/epochs (%d, %d) vs flat (%d, %d)",
						i, tree[i].Round, tree[i].LocalEpochs, flat[i].Round, flat[i].LocalEpochs)
				}
				if d := math.Abs(tree[i].MeanAcc - flat[i].MeanAcc); d > 0.02 {
					t.Fatalf("round %d: tree accuracy %.4f vs flat %.4f (Δ %.4f > 0.02)",
						tree[i].Round, tree[i].MeanAcc, flat[i].MeanAcc, d)
				}
				for j := range tree[i].PerClient {
					if d := math.Abs(tree[i].PerClient[j] - flat[i].PerClient[j]); d > 0.02 {
						t.Fatalf("round %d client %d: tree %.4f vs flat %.4f", tree[i].Round, j, tree[i].PerClient[j], flat[i].PerClient[j])
					}
				}
			}
		})
	}
}

// TestTreeKTpFLPassthroughParity pins the passthrough contract for the
// non-associative algorithm: KT-pFL's tree run must match the flat run to
// floating-point noise (1e-9), because the aggregators forward the exact
// updates and the contiguous child ranges make the root's apply order
// identical to flat sorted-id order.
func TestTreeKTpFLPassthroughParity(t *testing.T) {
	s := nodeScale()
	flat, tree := runFlatAndTree(t, experiments.MethodKTpFL, "heterogeneous", s, 2)
	if len(tree) != len(flat) {
		t.Fatalf("tree run has %d evaluation points, flat run has %d", len(tree), len(flat))
	}
	for i := range tree {
		if d := math.Abs(tree[i].MeanAcc - flat[i].MeanAcc); d > 1e-9 {
			t.Fatalf("round %d: tree accuracy %v vs flat %v (Δ %v > 1e-9)",
				tree[i].Round, tree[i].MeanAcc, flat[i].MeanAcc, d)
		}
		for j := range tree[i].PerClient {
			if d := math.Abs(tree[i].PerClient[j] - flat[i].PerClient[j]); d > 1e-9 {
				t.Fatalf("round %d client %d: tree %v vs flat %v", tree[i].Round, j, tree[i].PerClient[j], flat[i].PerClient[j])
			}
		}
	}
}

// TestTreeRootUplinkShrinks verifies the uplink-reduction claim on the
// root's ledger (RoundMetrics books it per round): with two aggregators
// pre-reducing a six-client FedAvg fleet, the root's steady-state uplink
// must shrink by at least the ~fan-in factor margin. Round 1 is excluded
// — it carries the join handshakes, which the tree pays too.
func TestTreeRootUplinkShrinks(t *testing.T) {
	s := nodeScale()
	s.Clients = 6
	flat, tree := runFlatAndTree(t, experiments.MethodFedAvg, "homogeneous", s, 2)
	for i := 1; i < len(tree); i++ {
		if tree[i].UpBytes <= 0 || flat[i].UpBytes <= 0 {
			t.Fatalf("round %d: no uplink booked (tree %d, flat %d)", tree[i].Round, tree[i].UpBytes, flat[i].UpBytes)
		}
		if float64(tree[i].UpBytes) > 0.6*float64(flat[i].UpBytes) {
			t.Fatalf("round %d: tree root uplink %d bytes vs flat %d — reduction below the fan-in margin",
				tree[i].Round, tree[i].UpBytes, flat[i].UpBytes)
		}
	}
}

// TestTreeAggregatorDeathChurnsSubtree kills one of two aggregators after
// the first committed round; the root must churn the whole subtree after
// the reconnect window and still commit every round with the surviving
// aggregator, reporting the dead subtree's clients as NaN.
func TestTreeAggregatorDeathChurnsSubtree(t *testing.T) {
	s := nodeScale()
	s.Clients = 6
	const aggs = 2
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// Doomed-subtree clients redial their dead aggregator until this
	// context is cancelled once the federation is over.
	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	aggCtx0, killAgg0 := context.WithCancel(ctx)
	defer killAgg0()

	build, _, err := experiments.NewFleetBuilder(experiments.Fashion, data.Dirichlet, "heterogeneous", s.Clients, s)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewInproc(transport.Options{})
	rootLn, err := tr.Listen("root")
	if err != nil {
		t.Fatal(err)
	}
	aggLns := make([]transport.Listener, aggs)
	for a := range aggLns {
		if aggLns[a], err = tr.Listen("root-agg" + string(rune('0'+a))); err != nil {
			t.Fatal(err)
		}
	}
	discipline := func(cfg *fl.AggregatorConfig) {
		cfg.Heartbeat = 20 * time.Millisecond
		cfg.DeadAfter = 200 * time.Millisecond
		cfg.ReconnectWindow = 300 * time.Millisecond
	}
	aggErr := make(chan error, aggs)
	bounds := fl.TreeSplit(s.Clients, aggs)
	for a := 0; a < aggs; a++ {
		cfg := fl.AggregatorConfig{Index: a, Aggregators: aggs, Clients: s.Clients, Codec: comm.F64, Seed: s.Seed + int64(a)}
		discipline(&cfg)
		runCtx := ctx
		if a == 0 {
			runCtx = aggCtx0
		}
		go func(runCtx context.Context, a int, cfg fl.AggregatorConfig) {
			aggErr <- experiments.RunAggregatorNode(runCtx, experiments.MethodProposed, experiments.Fashion, s, cfg, tr, "root", aggLns[a])
		}(runCtx, a, cfg)
	}
	clientErr := make(chan error, s.Clients)
	for a := 0; a < aggs; a++ {
		for id := bounds[a]; id < bounds[a+1]; id++ {
			go func(id, a int) {
				clientErr <- experiments.RunClientNode(clientCtx, experiments.MethodProposed, experiments.Fashion, build, id, s, tr, "root-agg"+string(rune('0'+a)))
			}(id, a)
		}
	}

	srv, hist, err := experiments.ServeNode(ctx, experiments.MethodProposed, experiments.Fashion, s, 1.0, comm.Spec{Value: comm.F64}, s.Clients, rootLn,
		func(cfg *fl.NodeConfig) {
			cfg.Aggregators = aggs
			cfg.Heartbeat = 20 * time.Millisecond
			cfg.DeadAfter = 200 * time.Millisecond
			cfg.ReconnectWindow = 300 * time.Millisecond
			cfg.OnRound = func(m fl.RoundMetrics) {
				if m.Round == 1 {
					killAgg0()
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	stopClients()
	if srv.Stats.Churned != 1 {
		t.Errorf("root churned %d aggregator sessions, want 1", srv.Stats.Churned)
	}
	if len(hist) != s.Rounds {
		t.Fatalf("churned tree produced %d evaluation points, want %d", len(hist), s.Rounds)
	}
	last := hist[len(hist)-1]
	for id := bounds[0]; id < bounds[1]; id++ {
		if !math.IsNaN(last.PerClient[id]) {
			t.Fatalf("dead subtree client %d still has accuracy %v", id, last.PerClient[id])
		}
	}
	for id := bounds[1]; id < bounds[2]; id++ {
		if math.IsNaN(last.PerClient[id]) {
			t.Fatalf("surviving client %d has no accuracy", id)
		}
	}
	// The killed aggregator reports its cancellation; the survivor and its
	// clients must finish cleanly. The dead subtree's clients lose their
	// aggregator mid-run and may exit with any error once released.
	sawKilled := false
	for i := 0; i < aggs; i++ {
		if err := <-aggErr; err != nil {
			if sawKilled {
				t.Errorf("second aggregator failed too: %v", err)
			}
			sawKilled = true
		}
	}
	if !sawKilled {
		t.Error("killed aggregator exited without error")
	}
	clean := 0
	for i := 0; i < s.Clients; i++ {
		if err := <-clientErr; err == nil {
			clean++
		}
	}
	if clean < bounds[2]-bounds[1] {
		t.Errorf("only %d clients finished cleanly, want at least the surviving subtree's %d", clean, bounds[2]-bounds[1])
	}
}

// TestTreeConfigInterlocks pins the NodeConfig validation for the tree
// topology: more aggregators than clients, a non-sync scheduler, and
// checkpointing are all refused before any connection is accepted.
func TestTreeConfigInterlocks(t *testing.T) {
	s := nodeScale()
	algo, err := experiments.WireAlgorithmFor(experiments.MethodProposed, experiments.Fashion, s)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*fl.NodeConfig)
	}{
		{"more aggregators than clients", func(cfg *fl.NodeConfig) { cfg.Aggregators = cfg.Clients + 1 }},
		{"async scheduler", func(cfg *fl.NodeConfig) { cfg.Aggregators = 2; cfg.Sched = fl.SchedAsyncBounded }},
		{"checkpointing", func(cfg *fl.NodeConfig) {
			cfg.Aggregators = 2
			cfg.Checkpoint = func(*fl.Snapshot) error { return nil }
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewInproc(transport.Options{})
			ln, err := tr.Listen("interlock-" + tc.name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := experiments.NodeConfigFor(s, 1.0, comm.Spec{Value: comm.F64}, s.Clients)
			tc.mut(&cfg)
			if _, err := fl.NewServerNode(algo, cfg).Serve(context.Background(), ln); err == nil {
				t.Fatal("invalid tree config accepted")
			}
		})
	}
}
