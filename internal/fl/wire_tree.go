package fl

import (
	"fmt"
	"math"
)

// This file is the hierarchical half of the wire protocol: the message
// layouts an edge aggregator speaks upstream (tree join, batched dispatch,
// pre-reduced or passthrough updates) and the ReducibleWireAlgorithm
// contract that decides which algorithms may be pre-reduced at the edge.
// The envelope is the ordinary wireMsg — no protocol fork — so every tree
// frame decodes with decodeMsg and prices through the same ledger.

// AggUpdate is one aggregator's pre-reduced round contribution: the
// weighted sums of its children's update vectors (already multiplied out,
// exactly, by an ExactAccumulator) plus the summed weights the root needs
// to normalize identically to flat fan-in.
type AggUpdate struct {
	// Agg is the sending aggregator's index (set by the receiver from the
	// session; not trusted from the frame).
	Agg int
	// Version is the round the reduction answers.
	Version int
	// Children is how many child updates were folded in. Zero means the
	// whole subtree sat this round out (an empty aggregate still closes
	// the root's barrier).
	Children int
	// Weight is the exact sum of the children's update weights.
	Weight float64
	// Vecs are the pre-weighted vector sums, Σ_c w_c·v_c per slot. Nil
	// entries are first-class (unreported prototype classes).
	Vecs [][]float64
	// VecWeights carries a per-slot weight sum for segmented algorithms
	// whose slots accumulate under independent weights (FedProto's
	// per-class prototypes). Nil for monolithic algorithms, where Weight
	// governs every slot.
	VecWeights []float64
	// Counts are the children's integer counts summed slot-wise.
	Counts []int
}

// ReducibleWireAlgorithm extends WireAlgorithm for algorithms whose
// aggregation is associative: an edge aggregator may fold a subtree of
// updates into one AggUpdate (PreReduce, client side of the edge) and the
// root folds aggregates instead of updates (WireApplyAggregate). The
// contract is exactness — PreReduce must use grouping-invariant sums
// (ExactAccumulator) so that tree and flat fan-in agree bit for bit at the
// reduction level. FedAvg, FedProx, FedClassAvg and FedProto qualify;
// KT-pFL's similarity matrix needs every client's individual payload and
// deliberately does not implement this interface, so aggregators pass its
// updates through unreduced.
type ReducibleWireAlgorithm interface {
	WireAlgorithm
	// PreReduce folds a subtree's updates (ascending client id) into one
	// aggregate. It must not mutate server-half state: aggregators run
	// only the client-facing reduction.
	PreReduce(updates []*Update) (*AggUpdate, error)
	// WireApplyAggregate folds one aggregate into the server's
	// accumulators, the tree counterpart of WireApply.
	WireApplyAggregate(u *AggUpdate) error
}

// PreReduceMode selects an aggregator's reduction policy.
type PreReduceMode int

const (
	// PreReduceAuto reduces when the algorithm supports it and passes
	// updates through otherwise.
	PreReduceAuto PreReduceMode = iota
	// PreReduceForce requires a sound reduction and refuses to start
	// without one.
	PreReduceForce
	// PreReduceOff always passes updates through unreduced.
	PreReduceOff
)

// String names the mode the way ParsePreReduce spells it.
func (m PreReduceMode) String() string {
	switch m {
	case PreReduceForce:
		return "force"
	case PreReduceOff:
		return "off"
	}
	return "auto"
}

// ParsePreReduce parses a -prereduce flag value.
func ParsePreReduce(s string) (PreReduceMode, error) {
	switch s {
	case "", "auto":
		return PreReduceAuto, nil
	case "force":
		return PreReduceForce, nil
	case "off":
		return PreReduceOff, nil
	}
	return PreReduceAuto, fmt.Errorf("fl: unknown prereduce mode %q (want auto | force | off)", s)
}

// CheckPreReduce is the startup guard against configuring a reduction
// where none is sound: forcing pre-reduction on a non-associative
// algorithm is refused before any client connects.
func CheckPreReduce(algo WireAlgorithm, mode PreReduceMode) error {
	if _, ok := algo.(ReducibleWireAlgorithm); !ok && mode == PreReduceForce {
		return fmt.Errorf("fl: %s has no sound pre-reduction (its aggregation is not associative); use -prereduce auto or off", algo.Name())
	}
	return nil
}

// TreeSplit partitions k clients across aggs edge aggregators into
// contiguous balanced ranges: aggregator a owns [bounds[a], bounds[a+1]).
// Every range is non-empty for aggs ≤ k, and contiguity is what keeps the
// root's passthrough apply order identical to flat sorted-id order.
func TreeSplit(k, aggs int) []int {
	bounds := make([]int, aggs+1)
	for a := 1; a < aggs; a++ {
		bounds[a] = a * k / aggs
	}
	bounds[aggs] = k
	return bounds
}

// encodeTreeJoin frames an aggregator's handshake: it joins the root on
// behalf of its whole child range once every child has joined it.
//
//	a      = aggregator index
//	ints   = [lo, hi, then joinIntCount ints per child]
//	counts = per-child init-vector count
//	vecs   = the children's init payloads, concatenated
func encodeTreeJoin(agg, lo, hi int, joins []WireJoin, name string, wc *wireCodec) []byte {
	m := &wireMsg{kind: msgTreeJoin, a: uint64(agg), name: name}
	m.ints = append(m.ints, int64(lo), int64(hi))
	for _, j := range joins {
		m.ints = append(m.ints, int64(j.ID), int64(j.TrainSize), int64(j.FeatDim),
			int64(j.NumClasses), int64(j.NumParams), int64(j.NumClassifier))
		m.counts = append(m.counts, len(j.Init))
		m.vecs = append(m.vecs, j.Init...)
	}
	return encodeMsg(m, wc)
}

// decodeTreeJoin parses a tree handshake and rebuilds the per-child joins.
func decodeTreeJoin(m *wireMsg) (agg, lo, hi int, joins []WireJoin, err error) {
	fail := func(format string, args ...any) (int, int, int, []WireJoin, error) {
		return 0, 0, 0, nil, fmt.Errorf("fl: tree join: "+format, args...)
	}
	if len(m.ints) < 2 {
		return fail("missing child range")
	}
	agg, lo, hi = int(m.a), int(m.ints[0]), int(m.ints[1])
	children := hi - lo
	if lo < 0 || children <= 0 {
		return fail("bad child range [%d,%d)", lo, hi)
	}
	if len(m.ints) != 2+children*joinIntCount {
		return fail("%d children declared, %d ints carried", children, len(m.ints)-2)
	}
	if len(m.counts) != children {
		return fail("%d children declared, %d init counts carried", children, len(m.counts))
	}
	joins = make([]WireJoin, children)
	off := 0
	for i := range joins {
		ji := m.ints[2+i*joinIntCount:]
		joins[i] = WireJoin{
			ID:            int(ji[joinID]),
			TrainSize:     int(ji[joinTrainSize]),
			FeatDim:       int(ji[joinFeatDim]),
			NumClasses:    int(ji[joinNumClasses]),
			NumParams:     int(ji[joinNumParams]),
			NumClassifier: int(ji[joinNumClassifier]),
		}
		if joins[i].ID != lo+i {
			return fail("child %d carries id %d, want %d", i, joins[i].ID, lo+i)
		}
		n := m.counts[i]
		if n < 0 || off+n > len(m.vecs) {
			return fail("init vectors overrun: child %d wants %d of %d", i, n, len(m.vecs)-off)
		}
		joins[i].Init = m.vecs[off : off+n]
		off += n
	}
	if off != len(m.vecs) {
		return fail("%d trailing init vectors", len(m.vecs)-off)
	}
	return agg, lo, hi, joins, nil
}

// encodeTreeDispatch frames one round's batched broadcast for a subtree:
// the root calls WireDispatch once per cohort member and ships the
// payloads to the member's aggregator in one frame.
//
//	a      = round version
//	ints   = cohort member ids (ascending)
//	counts = per-member payload vector count
//	vecs   = the members' dispatch payloads, concatenated
func encodeTreeDispatch(version uint64, members []int, payloads [][][]float64, wc *wireCodec) []byte {
	m := &wireMsg{kind: msgTreeDispatch, a: version}
	for i, id := range members {
		m.ints = append(m.ints, int64(id))
		m.counts = append(m.counts, len(payloads[i]))
		m.vecs = append(m.vecs, payloads[i]...)
	}
	return encodeMsg(m, wc)
}

// decodeTreeDispatch parses a batched broadcast back into per-member
// payloads.
func decodeTreeDispatch(m *wireMsg) (ids []int, payloads [][][]float64, err error) {
	if len(m.counts) != len(m.ints) {
		return nil, nil, fmt.Errorf("fl: tree dispatch: %d members, %d payload counts", len(m.ints), len(m.counts))
	}
	ids = make([]int, len(m.ints))
	payloads = make([][][]float64, len(m.ints))
	off := 0
	for i, iv := range m.ints {
		ids[i] = int(iv)
		n := m.counts[i]
		if n < 0 || off+n > len(m.vecs) {
			return nil, nil, fmt.Errorf("fl: tree dispatch: payload vectors overrun at member %d", i)
		}
		payloads[i] = m.vecs[off : off+n]
		off += n
	}
	if off != len(m.vecs) {
		return nil, nil, fmt.Errorf("fl: tree dispatch: %d trailing vectors", len(m.vecs)-off)
	}
	return ids, payloads, nil
}

// encodeAggUpdate frames a pre-reduced aggregate.
//
//	a      = round version
//	b      = summed weight (float64 bits)
//	ints   = [children] or [children, per-vec weight bits...] when the
//	         algorithm accumulates slots under independent weights
//	counts = slot-wise summed integer counts
//	vecs   = pre-weighted vector sums (nil slots allowed)
func encodeAggUpdate(version uint64, au *AggUpdate, wc *wireCodec) []byte {
	m := &wireMsg{kind: msgAggUpdate, a: version, b: f64bits(au.Weight)}
	m.ints = append(m.ints, int64(au.Children))
	for _, w := range au.VecWeights {
		m.ints = append(m.ints, int64(f64bits(w)))
	}
	m.counts = au.Counts
	m.vecs = au.Vecs
	return encodeMsg(m, wc)
}

// decodeAggUpdate parses a pre-reduced aggregate.
func decodeAggUpdate(m *wireMsg) (*AggUpdate, error) {
	if len(m.ints) < 1 {
		return nil, fmt.Errorf("fl: aggregated update: missing child count")
	}
	au := &AggUpdate{
		Version:  int(m.a),
		Children: int(m.ints[0]),
		Weight:   bitsF64(m.b),
		Vecs:     m.vecs,
		Counts:   m.counts,
	}
	if au.Children < 0 {
		return nil, fmt.Errorf("fl: aggregated update: negative child count %d", au.Children)
	}
	if len(m.ints) > 1 {
		if len(m.ints) != 1+len(m.vecs) {
			return nil, fmt.Errorf("fl: aggregated update: %d per-vector weights for %d vectors", len(m.ints)-1, len(m.vecs))
		}
		au.VecWeights = make([]float64, len(m.vecs))
		for i := range au.VecWeights {
			au.VecWeights[i] = bitsF64(uint64(m.ints[1+i]))
		}
	}
	return au, nil
}

// encodeTreeUpdate frames a subtree's raw updates unreduced — the
// passthrough path for algorithms with no sound pre-reduction. The root
// applies the bundled updates in ascending id order, which (ranges being
// contiguous) reproduces flat fan-in's sorted apply order exactly.
//
//	a      = round version
//	ints   = per update: [client id, scale bits, nVecs, nCounts]
//	counts = the updates' integer counts, concatenated
//	vecs   = the updates' vectors, concatenated
func encodeTreeUpdate(version uint64, ups []*Update, wc *wireCodec) []byte {
	m := &wireMsg{kind: msgTreeUpdate, a: version}
	for _, u := range ups {
		m.ints = append(m.ints, int64(u.Client), int64(f64bits(u.Scale)),
			int64(len(u.Vecs)), int64(len(u.Counts)))
		m.counts = append(m.counts, u.Counts...)
		m.vecs = append(m.vecs, u.Vecs...)
	}
	return encodeMsg(m, wc)
}

// decodeTreeUpdate parses a passthrough bundle back into updates. Weight
// is set to Scale, matching the sync scheduler's flat path.
func decodeTreeUpdate(m *wireMsg) ([]*Update, error) {
	if len(m.ints)%4 != 0 {
		return nil, fmt.Errorf("fl: tree update: %d header ints, want a multiple of 4", len(m.ints))
	}
	ups := make([]*Update, 0, len(m.ints)/4)
	vOff, cOff := 0, 0
	for i := 0; i < len(m.ints); i += 4 {
		scale := bitsF64(uint64(m.ints[i+1]))
		nVecs, nCounts := int(m.ints[i+2]), int(m.ints[i+3])
		if nVecs < 0 || vOff+nVecs > len(m.vecs) {
			return nil, fmt.Errorf("fl: tree update: vectors overrun at update %d", i/4)
		}
		if nCounts < 0 || cOff+nCounts > len(m.counts) {
			return nil, fmt.Errorf("fl: tree update: counts overrun at update %d", i/4)
		}
		u := &Update{
			Client:  int(m.ints[i]),
			Version: int(m.a),
			Scale:   scale,
			Weight:  scale,
			Vecs:    m.vecs[vOff : vOff+nVecs],
			Counts:  m.counts[cOff : cOff+nCounts],
		}
		if len(u.Vecs) == 0 {
			u.Vecs = nil
		}
		if len(u.Counts) == 0 {
			u.Counts = nil
		}
		vOff += nVecs
		cOff += nCounts
		ups = append(ups, u)
	}
	if vOff != len(m.vecs) || cOff != len(m.counts) {
		return nil, fmt.Errorf("fl: tree update: %d trailing vectors, %d trailing counts", len(m.vecs)-vOff, len(m.counts)-cOff)
	}
	return ups, nil
}

// aggEvalInts packs per-client accuracies for the tree evaluation reply:
// [id, accuracy bits] pairs in the ints slot, never the vecs slot, so a
// lossy codec cannot quantize a metric.
func aggEvalInts(ids []int, accs map[int]uint64) []int64 {
	ints := make([]int64, 0, 2*len(ids))
	for _, id := range ids {
		ints = append(ints, int64(id), int64(accs[id]))
	}
	return ints
}

// parseAggEvalInts unpacks a tree evaluation reply.
func parseAggEvalInts(ints []int64) (map[int]float64, error) {
	if len(ints)%2 != 0 {
		return nil, fmt.Errorf("fl: tree eval reply: odd int count %d", len(ints))
	}
	accs := make(map[int]float64, len(ints)/2)
	for i := 0; i+1 < len(ints); i += 2 {
		accs[int(ints[i])] = math.Float64frombits(uint64(ints[i+1]))
	}
	return accs, nil
}
