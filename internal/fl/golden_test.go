// Determinism and scheduler-coverage tests over real algorithms, run as an
// external test package so the fleet can be built from baselines and core
// without an import cycle.
package fl_test

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// goldenFleet builds k identically seeded MLP clients over a non-iid
// Fashion-MNIST stand-in split. Homogeneous models keep every algorithm
// (including the +weight variants) runnable.
func goldenFleet(t *testing.T, k int) []*fl.Client {
	return goldenFleetDim(t, k, 8)
}

func goldenFleetDim(t *testing.T, k, featDim int) []*fl.Client {
	t.Helper()
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, k)
	for i := range clients {
		m := models.New(models.Config{
			Arch: models.ArchMLP, InC: ds.C, InH: ds.H, InW: ds.W,
			FeatDim: featDim, NumClasses: ds.NumClasses, Hidden: 16,
		}, xrand.New(int64(i+1)))
		clients[i] = &fl.Client{
			ID: i, Model: m, Train: parts[i].Train, Test: parts[i].Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rand.New(rand.NewSource(int64(i + 100))),
			Optimizer: opt.NewAdam(0.01),
		}
	}
	return clients
}

func encodeHistory(t *testing.T, hist []fl.RoundMetrics) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(hist); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The sync-scheduler golden: for a fixed seed, Simulation.Run must produce
// byte-identical RoundMetrics whether the worker pool is capped to one
// goroutine or left at full width — client-level parallelism must never
// leak into the arithmetic.
func TestSyncGoldenAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []byte {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		sim := fl.NewSimulation(goldenFleet(t, 4), fl.Config{Rounds: 3, BatchSize: 8, Seed: 9})
		hist, err := sim.Run(baselines.NewFedAvg(1))
		if err != nil {
			t.Fatal(err)
		}
		return encodeHistory(t, hist)
	}
	serial := run(1)
	parallel := run(0) // 0 = uncapped
	if !bytes.Equal(serial, parallel) {
		t.Fatal("sync RoundMetrics differ between 1 and N workers")
	}
}

// The async seeded-reproducibility golden: two runs from the same seed must
// produce the same event trace, and the same trace must yield byte-identical
// metrics — the engine's virtual clock, not goroutine scheduling, decides
// every apply.
func TestAsyncSeededReproducibility(t *testing.T) {
	run := func() (*fl.Trace, []byte) {
		sim := fl.NewSimulation(goldenFleet(t, 4), fl.Config{Rounds: 3, BatchSize: 8, Seed: 9})
		tr := &fl.Trace{}
		hist, err := sim.RunScheduled(baselines.NewFedAvg(1), fl.SchedulerConfig{
			Kind:  fl.SchedAsyncBounded,
			Costs: []float64{2, 1, 1, 1},
			Decay: 0.5,
			Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, encodeHistory(t, hist)
	}
	tr1, h1 := run()
	tr2, h2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("same seed produced different async event traces")
	}
	if !bytes.Equal(h1, h2) {
		t.Fatal("same event trace produced different async metrics")
	}
}

// Every algorithm of the evaluation must run under every scheduler.
func TestAllAlgorithmsRunUnderAllSchedulers(t *testing.T) {
	ds := data.SynthFashion(6, 4, 3)
	makeAlgo := map[string]func() fl.Algorithm{
		"Local":    func() fl.Algorithm { return baselines.NewLocalOnly(1) },
		"FedAvg":   func() fl.Algorithm { return baselines.NewFedAvg(1) },
		"FedProx":  func() fl.Algorithm { return baselines.NewFedProx(1, 0.1) },
		"FedProto": func() fl.Algorithm { return baselines.NewFedProto(1, 1.0) },
		"KT-pFL": func() fl.Algorithm {
			k := baselines.NewKTpFL(1, 1, 8)
			k.SetPublic(data.PublicSplit(ds, 8, 5), 1, 12, 12)
			return k
		},
		"KT-pFL+weight": func() fl.Algorithm { return baselines.NewKTpFLWeights(1) },
		"FedClassAvg":   func() fl.Algorithm { return core.New(core.DefaultOptions()) },
		"FedClassAvg+wgt": func() fl.Algorithm {
			o := core.DefaultOptions()
			o.ShareAllWeights = true
			return core.New(o)
		},
	}
	for name, mk := range makeAlgo {
		for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
			sim := fl.NewSimulation(goldenFleet(t, 4), fl.Config{Rounds: 2, BatchSize: 8, Seed: 4, Codec: comm.F32})
			hist, err := sim.RunScheduled(mk(), fl.SchedulerConfig{Kind: kind, Costs: []float64{2, 1, 1, 1}})
			if err != nil {
				t.Fatalf("%s under %s: %v", name, kind, err)
			}
			if len(hist) != 2 {
				t.Fatalf("%s under %s: %d history entries", name, kind, len(hist))
			}
			final := hist[len(hist)-1]
			if final.MeanAcc < 0 || final.MeanAcc > 1 || math.IsNaN(final.MeanAcc) {
				t.Fatalf("%s under %s: accuracy %v", name, kind, final.MeanAcc)
			}
		}
	}
}

// Bounded staleness must not wreck accuracy: async with staleness ≤ 2 and
// a 2× straggler stays close to the sync result on the same fleet.
func TestAsyncAccuracyParity(t *testing.T) {
	run := func(kind fl.SchedulerKind) float64 {
		sim := fl.NewSimulation(goldenFleet(t, 4), fl.Config{Rounds: 8, BatchSize: 8, Seed: 9, EvalEvery: 8})
		hist, err := sim.RunScheduled(core.New(core.DefaultOptions()), fl.SchedulerConfig{
			Kind:         kind,
			Costs:        []float64{2, 1, 1, 1},
			MaxStaleness: 2,
			Decay:        0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist[len(hist)-1].MeanAcc
	}
	syncAcc := run(fl.SchedSync)
	asyncAcc := run(fl.SchedAsyncBounded)
	t.Logf("sync %.4f vs async %.4f", syncAcc, asyncAcc)
	if asyncAcc < syncAcc-0.10 {
		t.Fatalf("async accuracy %.4f fell more than 10 points below sync %.4f", asyncAcc, syncAcc)
	}
}

// Lossy codecs shrink the ledger without breaking training: int8 must cut
// uplink bytes ≥ 7× versus float64 on the classifier-exchange scenario.
func TestInt8CodecShrinksLedger(t *testing.T) {
	run := func(codec comm.Codec) (int64, float64) {
		// FeatDim 32 matches the communication example's classifier payload
		// (32·10 + 10 floats).
		sim := fl.NewSimulation(goldenFleetDim(t, 4, 32), fl.Config{Rounds: 2, BatchSize: 8, Seed: 9, Codec: codec})
		hist, err := sim.Run(core.New(core.DefaultOptions()))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Ledger.TotalUp(), hist[len(hist)-1].MeanAcc
	}
	f64Bytes, _ := run(comm.F64)
	i8Bytes, i8Acc := run(comm.I8)
	ratio := float64(f64Bytes) / float64(i8Bytes)
	t.Logf("uplink bytes: f64 %d, i8 %d (%.2fx), i8 acc %.4f", f64Bytes, i8Bytes, ratio, i8Acc)
	if ratio < 7 {
		t.Fatalf("int8 codec shrank uplink only %.2fx, want >= 7x", ratio)
	}
	if math.IsNaN(i8Acc) || i8Acc < 0 || i8Acc > 1 {
		t.Fatalf("int8 training produced accuracy %v", i8Acc)
	}
}
